// Numerical helpers: compensated summation and streaming moments.
//
// The paper's error formulas (Proposition 3.1) are sums of squares and
// variances over bucket frequencies; with relation sizes up to 10^6 and
// skewed Zipf frequencies, naive summation loses precision, so everything
// here uses Kahan compensation.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace hops {

/// \brief Compensated summation accumulator (Neumaier / Kahan-Babuška
/// variant, which also survives the case where the new term is larger in
/// magnitude than the running sum).
class KahanSum {
 public:
  void Add(double x) {
    double t = sum_ + x;
    if ((sum_ >= 0 ? sum_ : -sum_) >= (x >= 0 ? x : -x)) {
      compensation_ += (sum_ - t) + x;
    } else {
      compensation_ += (x - t) + sum_;
    }
    sum_ = t;
  }
  double Value() const { return sum_ + compensation_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// \brief Sums \p values with Kahan compensation.
double Sum(std::span<const double> values);

/// \brief Sum of squares of \p values with Kahan compensation.
double SumOfSquares(std::span<const double> values);

/// \brief Arithmetic mean; returns 0 for an empty span.
double Mean(std::span<const double> values);

/// \brief Population variance (divides by N, as in the paper's V_i);
/// returns 0 for an empty span.
double PopulationVariance(std::span<const double> values);

/// \brief One-pass aggregate of count / sum / sum-of-squares over a stream.
///
/// Exposes exactly the bucket statistics used throughout the paper:
/// P (count), T (sum), V (population variance), and T^2/P.
class BucketMoments {
 public:
  void Add(double x) {
    ++count_;
    sum_.Add(x);
    sum_sq_.Add(x * x);
  }

  size_t count() const { return count_; }
  double sum() const { return sum_.Value(); }
  double sum_of_squares() const { return sum_sq_.Value(); }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_.Value() / static_cast<double>(count_);
  }
  /// Population variance V = E[x^2] - E[x]^2, clamped at 0 against roundoff.
  double population_variance() const;
  /// T^2 / P — a serial bucket's contribution to the approximate self-join
  /// size (Proposition 3.1). Returns 0 for an empty bucket.
  double square_over_count() const {
    return count_ == 0
               ? 0.0
               : sum_.Value() * sum_.Value() / static_cast<double>(count_);
  }

 private:
  size_t count_ = 0;
  KahanSum sum_;
  KahanSum sum_sq_;
};

/// \brief True if |a-b| <= abs_tol + rel_tol*max(|a|,|b|).
bool AlmostEqual(double a, double b, double rel_tol = 1e-9,
                 double abs_tol = 1e-12);

}  // namespace hops
