// Combinatorial helpers used by the exhaustive V-OptHist construction
// (Section 4.1): enumerating all partitions of a sorted frequency set into
// beta non-empty contiguous buckets = choosing beta-1 split points among the
// M-1 gaps, i.e. C(M-1, beta-1) candidates.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/status.h"

namespace hops {

/// \brief C(n, k), saturating at UINT64_MAX on overflow.
uint64_t BinomialCoefficient(uint64_t n, uint64_t k);

/// \brief Enumerates all ways of splitting the index range [0, num_items)
/// into num_parts non-empty contiguous parts, in lexicographic order of the
/// split points.
///
/// Each state is a vector of part boundaries `ends` with
/// ends[num_parts-1] == num_items; part i covers [ends[i-1], ends[i]) with
/// ends[-1] taken as 0. Usage:
///
///   ContiguousPartitionEnumerator e(M, beta);
///   do {
///     Use(e.part_ends());
///   } while (e.Advance());
class ContiguousPartitionEnumerator {
 public:
  /// Requires 1 <= num_parts <= num_items.
  ContiguousPartitionEnumerator(size_t num_items, size_t num_parts);

  /// Exclusive end index of each part; size() == num_parts.
  const std::vector<size_t>& part_ends() const { return ends_; }

  /// Moves to the next partition; returns false after the last one.
  bool Advance();

  /// Total number of partitions, C(num_items-1, num_parts-1), saturating.
  uint64_t TotalCount() const;

  size_t num_items() const { return num_items_; }
  size_t num_parts() const { return num_parts_; }

 private:
  size_t num_items_;
  size_t num_parts_;
  std::vector<size_t> ends_;
};

/// \brief Validates (num_items, num_parts) for partition enumeration.
Status ValidatePartitionArgs(size_t num_items, size_t num_parts);

/// \brief Enumerates all k-element subsets of {0, ..., n-1} in lexicographic
/// order. k == 0 yields exactly one (empty) combination.
class CombinationEnumerator {
 public:
  /// Requires k <= n.
  CombinationEnumerator(size_t n, size_t k);

  /// The current combination, ascending. Empty when k == 0.
  const std::vector<size_t>& current() const { return items_; }

  /// Moves to the next combination; returns false after the last one.
  bool Advance();

  /// C(n, k), saturating.
  uint64_t TotalCount() const;

 private:
  size_t n_;
  size_t k_;
  std::vector<size_t> items_;
};

}  // namespace hops
