#include "util/csv_reader.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace hops {

namespace {

// Splits CSV text into records of cells; handles quoting.
Result<std::vector<std::vector<std::string>>> Tokenize(
    std::string_view text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string cell;
  bool in_quotes = false;
  bool cell_was_quoted = false;
  size_t i = 0;
  auto end_cell = [&]() {
    record.push_back(std::move(cell));
    cell.clear();
    cell_was_quoted = false;
  };
  auto end_record = [&]() {
    end_cell();
    records.push_back(std::move(record));
    record.clear();
  };
  while (i < text.size()) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"') {
      if (!cell.empty() || cell_was_quoted) {
        return Status::InvalidArgument(
            "unexpected quote inside unquoted cell");
      }
      in_quotes = true;
      cell_was_quoted = true;
    } else if (c == ',') {
      end_cell();
    } else if (c == '\n') {
      end_record();
    } else if (c == '\r') {
      // Swallow; \r\n handled by the \n branch next iteration.
    } else {
      cell += c;
    }
    ++i;
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted cell");
  }
  // Final record without trailing newline.
  if (!cell.empty() || cell_was_quoted || !record.empty()) {
    end_record();
  }
  return records;
}

}  // namespace

Result<CsvDocument> ParseCsv(std::string_view text, bool has_header) {
  HOPS_ASSIGN_OR_RETURN(auto records, Tokenize(text));
  if (records.empty()) {
    return Status::InvalidArgument("CSV input is empty");
  }
  CsvDocument doc;
  size_t first_row = 0;
  if (has_header) {
    doc.header = records[0];
    first_row = 1;
  } else {
    for (size_t c = 0; c < records[0].size(); ++c) {
      doc.header.push_back("c" + std::to_string(c));
    }
  }
  const size_t width = doc.header.size();
  for (size_t r = first_row; r < records.size(); ++r) {
    if (records[r].size() > width) {
      return Status::InvalidArgument(
          "row " + std::to_string(r) + " has " +
          std::to_string(records[r].size()) + " cells but the header has " +
          std::to_string(width));
    }
    records[r].resize(width);
    doc.rows.push_back(std::move(records[r]));
  }
  return doc;
}

Result<CsvDocument> ReadCsvFile(const std::string& path, bool has_header) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open CSV file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsv(buf.str(), has_header);
}

Result<int64_t> ParseInt64Cell(const std::string& cell) {
  if (cell.empty()) {
    return Status::InvalidArgument("empty cell is not an int64");
  }
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(cell.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("int64 overflow: " + cell);
  }
  if (end != cell.c_str() + cell.size()) {
    return Status::InvalidArgument("not an int64: '" + cell + "'");
  }
  return static_cast<int64_t>(v);
}

bool ColumnIsInt64(const CsvDocument& doc, size_t col) {
  if (col >= doc.header.size()) return false;
  for (const auto& row : doc.rows) {
    if (row[col].empty()) continue;
    if (!ParseInt64Cell(row[col]).ok()) return false;
  }
  return true;
}

}  // namespace hops
