// Durable snapshot files for the refresh subsystem's catalog state
// (DESIGN.md §13). A snapshot is one self-describing, checksummed binary
// image of a RefreshDurableState (refresh/durable_state.h): everything
// needed to warm-restart the serving stack with bit-identical estimates.
//
// File `snapshot-<seq:016x>.hsnp`, all integers little-endian:
//
//   header (32 bytes)
//     u32 magic        "HSNP"
//     u32 version      1
//     u64 seq          monotonically increasing snapshot number
//     u64 high_water   largest LSN whose effects are inside this image
//     u32 num_sections
//     u32 header_crc   CRC32C of the 28 bytes above ++ the section table
//   section table (num_sections × 32 bytes)
//     u32 kind, u32 reserved, u64 offset, u64 length, u32 crc32c, u32 pad
//   section payloads (at their recorded offsets)
//
// Sections keep the column data in struct-of-arrays form: kColumns holds
// one fixed-width record per column with (offset, count) cursors into the
// kExplicitValues/kExplicitFreqs and kIdealValues/kIdealCounts arrays, and
// kNames holds the length-prefixed table/column strings. Fixed offsets and
// raw packed arrays make the payload mmap-friendly; the read path here
// simply loads and validates. Read views (prefix sums, Eytzinger layouts)
// are deliberately NOT persisted — they are deterministic functions of the
// histogram, rebuilt on load (histogram/compiled.h).
//
// Integrity: the header CRC covers the header and section table; every
// section carries its own CRC over its exact payload bytes. The reader
// rejects — with a Status, never a crash — any truncation, bit flip, bad
// magic/version, out-of-bounds section, or malformed cursor
// (tests/storage/corruption_matrix_test.cc walks every section and
// boundary). Writes are crash-atomic via temp file + fsync + rename
// (storage/io.h), so a torn write leaves the previous snapshot intact.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "refresh/durable_state.h"
#include "util/status.h"

namespace hops::storage {

inline constexpr uint32_t kSnapshotMagic = 0x504E5348u;  // file starts "HSNP"
inline constexpr uint32_t kSnapshotVersion = 1;

/// \brief Section kinds; values are stable on-disk identifiers.
enum class SnapshotSection : uint32_t {
  kMeta = 1,            ///< u64 num_columns
  kNames = 2,           ///< per column: u32 table_len, u32 column_len, bytes
  kColumns = 3,         ///< fixed-width per-column records (see .cc)
  kExplicitValues = 4,  ///< i64[] — all columns' explicit values, packed
  kExplicitFreqs = 5,   ///< f64[] — parallel to kExplicitValues
  kIdealValues = 6,     ///< i64[] — all columns' ideal-tracker values
  kIdealCounts = 7,     ///< f64[] — parallel to kIdealValues
};

/// \brief Identity of one snapshot file, readable from its header alone.
struct SnapshotFileInfo {
  std::string path;
  uint64_t seq = 0;
  uint64_t high_water_lsn = 0;
};

/// `snapshot-<seq:016x>.hsnp`.
std::string SnapshotFileName(uint64_t seq);

/// Parses a SnapshotFileName; false for anything else.
bool ParseSnapshotFileName(std::string_view name, uint64_t* seq);

/// \brief Serializes \p state into the format above (no I/O).
std::string EncodeSnapshot(uint64_t seq, const RefreshDurableState& state);

/// \brief Inverse of EncodeSnapshot with full validation; \p seq_out
/// (optional) receives the header's sequence number.
Result<RefreshDurableState> DecodeSnapshot(std::string_view bytes,
                                           uint64_t* seq_out = nullptr);

/// \brief Writes `snapshot-<seq>.hsnp` into \p dir crash-atomically.
/// Returns the final path.
Result<std::string> WriteSnapshotFile(const std::string& dir, uint64_t seq,
                                      const RefreshDurableState& state);

/// \brief Loads and validates one snapshot file.
Result<RefreshDurableState> ReadSnapshotFile(const std::string& path,
                                             uint64_t* seq_out = nullptr);

/// \brief Validates only the header + section table of \p path (cheap) and
/// returns its identity. Rejects corrupt headers with a Status.
Result<SnapshotFileInfo> ReadSnapshotInfo(const std::string& path);

/// \brief Snapshot files in \p dir by name, sorted by seq ascending.
/// Headers are NOT validated here (a corrupt latest snapshot must still be
/// listed so recovery can fall back past it); high_water_lsn is 0.
Result<std::vector<SnapshotFileInfo>> ListSnapshotFiles(const std::string& dir);

}  // namespace hops::storage
