#ifndef _GNU_SOURCE
#define _GNU_SOURCE  // sync_file_range
#endif

#include "storage/wal.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "storage/io.h"
#include "telemetry/trace.h"
#include "util/crc32c.h"
#include "util/stopwatch.h"

namespace hops::storage {

namespace {

template <typename T>
void AppendPod(std::string* out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
void WritePod(char* out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::memcpy(out, &v, sizeof(v));
}

template <typename T>
bool ReadPod(std::string_view* in, T* v) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (in->size() < sizeof(T)) return false;
  std::memcpy(v, in->data(), sizeof(T));
  in->remove_prefix(sizeof(T));
  return true;
}

constexpr uint32_t kFrameDeltaBatch = 1;
constexpr uint32_t kFrameRegistration = 2;
constexpr size_t kSegmentHeaderBytes = 24;
constexpr size_t kFrameHeaderBytes = 8;  // payload_len + payload_crc
// One appended frame may not exceed this (a corrupted length field must not
// drive a multi-gigabyte allocation on replay).
constexpr uint32_t kMaxFramePayload = 64u << 20;

telemetry::LatencyHistogram* FsyncHistogram() {
  static telemetry::LatencyHistogram* histogram =
      telemetry::MetricRegistry::Global().GetHistogram(
          "hops_wal_fsync_seconds", "WAL fsync latency",
          telemetry::LogBucketSpec::Latency());
  return histogram;
}

}  // namespace

std::string WalSegmentFileName(uint64_t first_lsn) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "wal-%016llx.wal",
                static_cast<unsigned long long>(first_lsn));
  return buf;
}

bool ParseWalSegmentFileName(std::string_view name, uint64_t* first_lsn) {
  constexpr std::string_view kPrefix = "wal-";
  constexpr std::string_view kSuffix = ".wal";
  if (name.size() != kPrefix.size() + 16 + kSuffix.size()) return false;
  if (name.substr(0, kPrefix.size()) != kPrefix) return false;
  if (name.substr(kPrefix.size() + 16) != kSuffix) return false;
  uint64_t value = 0;
  for (char c : name.substr(kPrefix.size(), 16)) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else return false;
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  if (first_lsn != nullptr) *first_lsn = value;
  return true;
}

WalWriter::WalWriter(std::string dir, uint64_t next_lsn, WalOptions options)
    : dir_(std::move(dir)), options_(options), next_lsn_(next_lsn) {}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(std::string dir,
                                                   uint64_t next_lsn,
                                                   WalOptions options) {
  if (next_lsn == 0) next_lsn = 1;  // LSN 0 means "not persisted"
  HOPS_RETURN_NOT_OK(EnsureDir(dir));
  std::unique_ptr<WalWriter> writer(
      new WalWriter(std::move(dir), next_lsn, options));
  std::lock_guard<std::mutex> lock(writer->mutex_);
  HOPS_RETURN_NOT_OK(writer->OpenSegmentLocked());
  return writer;
}

WalWriter::~WalWriter() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    (void)SyncLocked();  // best-effort final flush; destructor cannot fail
    ::close(fd_);
    fd_ = -1;
  }
}

Status WalWriter::OpenSegmentLocked() {
  if (fd_ >= 0) {
    HOPS_RETURN_NOT_OK(SyncLocked());
    ::close(fd_);
    fd_ = -1;
  }
  segment_first_lsn_ = next_lsn_;
  const std::string path = dir_ + "/" + WalSegmentFileName(segment_first_lsn_);
  fd_ = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY | O_APPEND | O_CLOEXEC,
               0644);
  if (fd_ < 0 && errno == EEXIST) {
    // A leftover segment at exactly next_lsn is frameless: every frame it
    // could hold has LSN >= next_lsn, and next_lsn was chosen past every
    // replayed (Open) or appended (rotation) record. A clean shutdown's
    // final rotation leaves exactly this header-only file. Replace it.
    HOPS_RETURN_NOT_OK(RemoveFileDurable(dir_, WalSegmentFileName(
                                                   segment_first_lsn_)));
    fd_ = ::open(path.c_str(),
                 O_CREAT | O_EXCL | O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
  }
  if (fd_ < 0) {
    return Status::Internal("open WAL segment " + path + ": " +
                            ::strerror(errno));
  }
  std::string header;
  header.reserve(kSegmentHeaderBytes);
  AppendPod<uint32_t>(&header, kWalMagic);
  AppendPod<uint32_t>(&header, kWalVersion);
  AppendPod<uint64_t>(&header, segment_first_lsn_);
  AppendPod<uint32_t>(&header, Crc32c(header.data(), header.size()));
  AppendPod<uint32_t>(&header, 0);  // padding
  const char* data = header.data();
  size_t size = header.size();
  while (size > 0) {
    const ssize_t n = ::write(fd_, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("write WAL header: " +
                              std::string(::strerror(errno)));
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  // The segment must exist durably before anything in it is acknowledged
  // under kEvery/kBatch; the directory fsync covers the new entry.
  if (options_.fsync != WalFsync::kNone) {
    HOPS_RETURN_NOT_OK(FsyncDir(dir_));
  }
  segment_bytes_written_ = kSegmentHeaderBytes;
  unsynced_bytes_ = kSegmentHeaderBytes;
  segments_created_.Increment();
  return Status::OK();
}

Status WalWriter::AppendFrameLocked(std::string_view payload, size_t records) {
  frame_scratch_.clear();
  frame_scratch_.append(kFrameHeaderBytes, '\0');
  frame_scratch_.append(payload);
  return CommitFrameLocked(records);
}

// Frames whatever AppendDeltas/AppendFrameLocked left in frame_scratch_
// after a kFrameHeaderBytes gap, patches len+crc into the gap, writes the
// whole frame with one write(2), and runs the flush/rotation policy.
Status WalWriter::CommitFrameLocked(size_t records) {
  static telemetry::SpanSite& append_site =
      telemetry::GetSpanSite("Storage.WalAppend");
  telemetry::TraceSpan span(append_site);
  const size_t payload_size = frame_scratch_.size() - kFrameHeaderBytes;
  if (payload_size > kMaxFramePayload) {
    return Status::InvalidArgument("WAL frame payload too large: " +
                                   std::to_string(payload_size));
  }
  WritePod<uint32_t>(frame_scratch_.data(),
                     static_cast<uint32_t>(payload_size));
  WritePod<uint32_t>(
      frame_scratch_.data() + 4,
      Crc32c(frame_scratch_.data() + kFrameHeaderBytes, payload_size));
  const char* data = frame_scratch_.data();
  size_t size = frame_scratch_.size();
  while (size > 0) {
    const ssize_t n = ::write(fd_, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("write WAL frame: " +
                              std::string(::strerror(errno)));
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  segment_bytes_written_ += frame_scratch_.size();
  unsynced_bytes_ += frame_scratch_.size();
  unkicked_bytes_ += frame_scratch_.size();
  frames_appended_.Increment();
  records_appended_.Increment(records);
  bytes_appended_.Increment(frame_scratch_.size());

  switch (options_.fsync) {
    case WalFsync::kEvery:
      HOPS_RETURN_NOT_OK(SyncLocked());
      break;
    case WalFsync::kBatch:
      if (unkicked_bytes_ >= options_.batch_bytes) {
        HOPS_RETURN_NOT_OK(KickWritebackLocked());
      }
      break;
    case WalFsync::kNone:
      break;
  }
  if (segment_bytes_written_ >= options_.segment_bytes) {
    HOPS_RETURN_NOT_OK(OpenSegmentLocked());
  }
  return Status::OK();
}

Status WalWriter::SyncLocked() {
  if (unsynced_bytes_ == 0 || fd_ < 0) return Status::OK();
  Stopwatch stopwatch;
  if (::fsync(fd_) != 0) {
    return Status::Internal("fsync WAL segment: " +
                            std::string(::strerror(errno)));
  }
  FsyncHistogram()->Record(stopwatch.ElapsedSeconds());
  fsyncs_.Increment();
  unsynced_bytes_ = 0;
  unkicked_bytes_ = 0;
  return Status::OK();
}

Status WalWriter::KickWritebackLocked() {
  if (unkicked_bytes_ == 0 || fd_ < 0) return Status::OK();
#ifdef __linux__
  // Initiate writeback without waiting for it. kBatch only bounds the
  // OS-crash dirty window — acknowledgments never promised power-loss
  // durability (write(2)-before-ack already covers process kills) — so a
  // blocking fsync on the accept path would buy nothing but a stall.
  // unsynced_bytes_ stays up, so an explicit Sync() still really fsyncs.
  if (::sync_file_range(fd_, 0, 0, SYNC_FILE_RANGE_WRITE) != 0) {
    return Status::Internal("sync_file_range WAL segment: " +
                            std::string(::strerror(errno)));
  }
  writeback_kicks_.Increment();
  unkicked_bytes_ = 0;
  return Status::OK();
#else
  return SyncLocked();
#endif
}

Status WalWriter::AppendDeltas(std::span<UpdateRecord> records) {
  if (records.empty()) return Status::OK();
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t first_lsn = next_lsn_;
  // This is the hot accept path: serialize straight into the frame buffer
  // (header patched by CommitFrameLocked) with raw stores — field-by-field
  // string appends and a second payload copy both show up at WAL rates.
  frame_scratch_.resize(kFrameHeaderBytes + 16 + records.size() * 20);
  char* p = frame_scratch_.data() + kFrameHeaderBytes;
  WritePod<uint32_t>(p, kFrameDeltaBatch);
  WritePod<uint32_t>(p + 4, static_cast<uint32_t>(records.size()));
  WritePod<uint64_t>(p + 8, first_lsn);
  p += 16;
  for (size_t i = 0; i < records.size(); ++i, p += 20) {
    records[i].lsn = first_lsn + i;
    WritePod<uint32_t>(p, records[i].column);
    WritePod<int64_t>(p + 4, records[i].value);
    WritePod<double>(p + 12, records[i].weight);
  }
  HOPS_RETURN_NOT_OK(CommitFrameLocked(records.size()));
  next_lsn_ = first_lsn + records.size();
  return Status::OK();
}

Status WalWriter::AppendRegistration(RefreshColumnId id,
                                     const std::string& table,
                                     const std::string& column,
                                     std::span<const int64_t> values,
                                     std::span<const double> frequencies,
                                     uint64_t* lsn_out) {
  if (values.size() != frequencies.size()) {
    return Status::InvalidArgument(
        "registration values/frequencies size mismatch");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t lsn = next_lsn_;
  std::string payload;
  payload.reserve(32 + table.size() + column.size() + values.size() * 16);
  AppendPod<uint32_t>(&payload, kFrameRegistration);
  AppendPod<uint32_t>(&payload, id);
  AppendPod<uint64_t>(&payload, lsn);
  AppendPod<uint32_t>(&payload, static_cast<uint32_t>(table.size()));
  AppendPod<uint32_t>(&payload, static_cast<uint32_t>(column.size()));
  AppendPod<uint64_t>(&payload, values.size());
  payload += table;
  payload += column;
  for (int64_t value : values) AppendPod<int64_t>(&payload, value);
  for (double freq : frequencies) AppendPod<double>(&payload, freq);
  HOPS_RETURN_NOT_OK(AppendFrameLocked(payload, 1));
  next_lsn_ = lsn + 1;
  if (lsn_out != nullptr) *lsn_out = lsn;
  return Status::OK();
}

Status WalWriter::Sync() {
  std::lock_guard<std::mutex> lock(mutex_);
  return SyncLocked();
}

Status WalWriter::Rotate() {
  std::lock_guard<std::mutex> lock(mutex_);
  // A frameless active segment is already the rotation target: recreating
  // wal-<next_lsn> under O_EXCL would collide with itself.
  if (fd_ >= 0 && segment_first_lsn_ == next_lsn_) return Status::OK();
  return OpenSegmentLocked();
}

Result<size_t> WalWriter::RetireThrough(uint64_t lsn) {
  std::lock_guard<std::mutex> lock(mutex_);
  HOPS_ASSIGN_OR_RETURN(const std::vector<std::string> names, ListDir(dir_));
  std::vector<std::pair<uint64_t, std::string>> segments;
  for (const std::string& name : names) {
    uint64_t first = 0;
    if (ParseWalSegmentFileName(name, &first)) segments.emplace_back(first, name);
  }
  std::sort(segments.begin(), segments.end());
  size_t retired = 0;
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    // A segment's records all precede its successor's first LSN; it is
    // fully covered iff that successor starts at or below lsn + 1. The
    // active segment (last) never retires.
    if (segments[i].first >= segment_first_lsn_) break;
    if (segments[i + 1].first > lsn + 1) break;
    HOPS_RETURN_NOT_OK(RemoveFileDurable(dir_, segments[i].second));
    segments_retired_.Increment();
    ++retired;
  }
  return retired;
}

uint64_t WalWriter::next_lsn() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_lsn_;
}

WalWriterStats WalWriter::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  WalWriterStats s;
  s.records_appended = records_appended_.Value();
  s.frames_appended = frames_appended_.Value();
  s.bytes_appended = bytes_appended_.Value();
  s.fsyncs = fsyncs_.Value();
  s.writeback_kicks = writeback_kicks_.Value();
  s.segments_created = segments_created_.Value();
  s.segments_retired = segments_retired_.Value();
  s.next_lsn = next_lsn_;
  return s;
}

namespace {

Status ReplaySegment(const std::string& dir, const std::string& name,
                     bool is_last, const WalDeltaHandler& on_deltas,
                     const WalRegistrationHandler& on_registration,
                     WalReplayReport* report) {
  const std::string path = dir + "/" + name;
  // Bound as a reference into the Result (not moved into a local) to dodge
  // gcc-12's -Wmaybe-uninitialized false positive on the SSO union.
  Result<std::string> file = ReadFileToString(path);
  HOPS_RETURN_NOT_OK(file.status());
  const std::string& bytes = *file;
  std::string_view cursor = bytes;
  uint32_t magic, version, header_crc, padding;
  uint64_t first_lsn;
  if (!ReadPod(&cursor, &magic) || !ReadPod(&cursor, &version) ||
      !ReadPod(&cursor, &first_lsn) || !ReadPod(&cursor, &header_crc) ||
      !ReadPod(&cursor, &padding)) {
    return Status::Internal("WAL segment " + path + ": truncated header");
  }
  if (magic != kWalMagic || version != kWalVersion ||
      Crc32c(bytes.data(), 16) != header_crc) {
    return Status::Internal("WAL segment " + path + ": corrupt header");
  }

  size_t offset = kSegmentHeaderBytes;
  while (offset < bytes.size()) {
    // Frame boundary: anything short or checksum-broken here is a torn
    // tail if (and only if) this is the final segment.
    bool torn = false;
    uint32_t payload_len = 0, payload_crc = 0;
    std::string_view frame = std::string_view(bytes).substr(offset);
    if (!ReadPod(&frame, &payload_len) || !ReadPod(&frame, &payload_crc) ||
        frame.size() < payload_len || payload_len > kMaxFramePayload) {
      torn = true;
    } else if (Crc32c(frame.data(), payload_len) != payload_crc) {
      torn = true;
    }
    if (torn) {
      if (!is_last) {
        return Status::Internal("WAL segment " + path +
                                ": corrupt frame at offset " +
                                std::to_string(offset));
      }
      // Torn tail of the final segment: the crash interrupted the last
      // append, which was never acknowledged. Truncate so future replays
      // (and byte-level tools) see a clean segment.
      report->torn_tail_truncated = true;
      report->torn_tail_bytes = bytes.size() - offset;
      if (::truncate(path.c_str(), static_cast<off_t>(offset)) != 0) {
        return Status::Internal("truncate torn WAL tail of " + path + ": " +
                                ::strerror(errno));
      }
      return Status::OK();
    }

    std::string_view payload = frame.substr(0, payload_len);
    uint32_t type = 0;
    if (!ReadPod(&payload, &type)) {
      return Status::Internal("WAL segment " + path + ": empty frame payload");
    }
    if (type == kFrameDeltaBatch) {
      uint32_t count = 0;
      WalDeltaBatch batch;
      if (!ReadPod(&payload, &count) || !ReadPod(&payload, &batch.first_lsn) ||
          payload.size() != static_cast<size_t>(count) * 20) {
        return Status::Internal("WAL segment " + path +
                                ": malformed delta batch");
      }
      batch.records.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        UpdateRecord& r = batch.records[i];
        ReadPod(&payload, &r.column);
        ReadPod(&payload, &r.value);
        ReadPod(&payload, &r.weight);
        r.lsn = batch.first_lsn + i;
      }
      report->delta_records += count;
      if (count > 0) {
        report->max_lsn =
            std::max(report->max_lsn, batch.first_lsn + count - 1);
      }
      if (on_deltas) HOPS_RETURN_NOT_OK(on_deltas(batch));
    } else if (type == kFrameRegistration) {
      WalRegistration reg;
      uint32_t table_len = 0, column_len = 0;
      uint64_t count = 0;
      if (!ReadPod(&payload, &reg.id) || !ReadPod(&payload, &reg.lsn) ||
          !ReadPod(&payload, &table_len) || !ReadPod(&payload, &column_len) ||
          !ReadPod(&payload, &count) ||
          payload.size() != static_cast<size_t>(table_len) + column_len +
                                count * 16) {
        return Status::Internal("WAL segment " + path +
                                ": malformed registration");
      }
      reg.table.assign(payload.substr(0, table_len));
      payload.remove_prefix(table_len);
      reg.column.assign(payload.substr(0, column_len));
      payload.remove_prefix(column_len);
      reg.values.resize(count);
      reg.frequencies.resize(count);
      std::memcpy(reg.values.data(), payload.data(), count * 8);
      payload.remove_prefix(count * 8);
      std::memcpy(reg.frequencies.data(), payload.data(), count * 8);
      report->registrations += 1;
      report->max_lsn = std::max(report->max_lsn, reg.lsn);
      if (on_registration) HOPS_RETURN_NOT_OK(on_registration(reg));
    } else {
      return Status::Internal("WAL segment " + path + ": unknown frame type " +
                              std::to_string(type));
    }
    report->frames += 1;
    offset += kFrameHeaderBytes + payload_len;
  }
  return Status::OK();
}

}  // namespace

Result<WalReplayReport> ReplayWalDir(
    const std::string& dir, uint64_t min_lsn, const WalDeltaHandler& on_deltas,
    const WalRegistrationHandler& on_registration) {
  static telemetry::SpanSite& replay_site =
      telemetry::GetSpanSite("Storage.WalReplay");
  telemetry::TraceSpan span(replay_site);
  WalReplayReport report;
  HOPS_ASSIGN_OR_RETURN(const std::vector<std::string> names, ListDir(dir));
  std::vector<std::pair<uint64_t, std::string>> segments;
  for (const std::string& name : names) {
    uint64_t first = 0;
    if (ParseWalSegmentFileName(name, &first)) segments.emplace_back(first, name);
  }
  std::sort(segments.begin(), segments.end());
  for (size_t i = 0; i < segments.size(); ++i) {
    // Skip segments wholly at or below min_lsn (successor proves the bound).
    if (i + 1 < segments.size() && segments[i + 1].first <= min_lsn + 1) {
      report.segments_skipped += 1;
      continue;
    }
    report.segments_scanned += 1;
    HOPS_RETURN_NOT_OK(ReplaySegment(dir, segments[i].second,
                                     i + 1 == segments.size(), on_deltas,
                                     on_registration, &report));
  }
  return report;
}

}  // namespace hops::storage
