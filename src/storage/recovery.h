// Crash-safe warm restarts (DESIGN.md §13): the RecoveryManager stitches
// the snapshot files (storage/snapshot_file.h) and the WAL (storage/wal.h)
// into one durable catalog store and implements the refresh layer's
// DurabilityHook (refresh/durability.h).
//
// Startup (RecoverAndAttach):
//   1. load the newest snapshot that validates, falling back across
//      corrupt/truncated ones (retention keeps enough WAL for that);
//   2. RestoreDurableState into the RefreshManager — catalog statistics
//      come back bit-identical, so warm /estimate answers match pre-crash;
//   3. replay WAL records past the snapshot's high-water mark (torn tails
//      are truncated; registrations re-register, deltas re-apply);
//   4. open the WAL writer at max(high_water, replayed LSNs) + 1 and
//      attach as the durability hook — only now do new writes persist, so
//      replay never re-appends what the WAL already holds.
//
// Checkpoint (WriteSnapshot): export the manager (which drains the queue,
// making the high-water mark contiguous), write snapshot seq+1 atomically,
// rotate the WAL, drop snapshots beyond keep_snapshots, and retire WAL
// segments covered by the OLDEST retained snapshot — falling back past a
// corrupt newest snapshot therefore never needs retired records.
//
// The ShardedRefreshManager is NOT yet covered: it owns per-shard managers
// with independent queues; persisting it needs per-shard WAL streams and a
// snapshot barrier across shards (ROADMAP). Single-manager stacks — the
// serving example and the ServingStack — are fully supported.

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>

#include "refresh/durability.h"
#include "refresh/refresh_manager.h"
#include "storage/wal.h"
#include "util/status.h"

namespace hops::storage {

struct StorageOptions {
  std::string data_dir;
  /// WAL flush policy. Process-kill durability is identical for all modes
  /// (frames are written before the ack); this knob is about OS crashes.
  WalFsync durability = WalFsync::kBatch;
  /// Snapshots retained after a checkpoint (>= 1). Two means one corrupt
  /// newest snapshot still leaves a recoverable older one with its WAL.
  size_t keep_snapshots = 2;
  WalOptions wal;
};

/// \brief What recovery found, for logs/metrics.
struct RecoveryReport {
  bool snapshot_loaded = false;
  uint64_t snapshot_seq = 0;
  uint64_t snapshot_high_water = 0;
  size_t snapshots_skipped = 0;  ///< newer snapshots that failed validation
  size_t wal_segments_scanned = 0;
  size_t wal_delta_records = 0;    ///< delta records seen past the snapshot
  size_t wal_registrations = 0;    ///< registrations seen past the snapshot
  bool wal_torn_tail_truncated = false;
  double seconds = 0;
};

/// \brief Durable store + recovery driver. Thread-safe where it must be:
/// the DurabilityHook methods race with each other and with WriteSnapshot
/// (the WalWriter serializes appends; checkpointing takes its own mutex).
class RecoveryManager final : public DurabilityHook {
 public:
  /// Creates the data dir if needed. No I/O beyond that until
  /// RecoverAndAttach.
  static Result<std::unique_ptr<RecoveryManager>> Open(StorageOptions options);

  ~RecoveryManager() override;

  RecoveryManager(const RecoveryManager&) = delete;
  RecoveryManager& operator=(const RecoveryManager&) = delete;

  /// Runs the startup sequence above against \p manager (which must be
  /// empty) and attaches this store as its durability hook. \p manager
  /// must outlive this object or Detach() first.
  Status RecoverAndAttach(RefreshManager* manager);

  /// Checkpoint: snapshot + rotate + retire (see file comment). Callable
  /// any time after RecoverAndAttach, including concurrently with writes.
  Status WriteSnapshot();

  /// Final checkpoint + WAL sync, then detaches the hook. Idempotent; used
  /// by the serving stack's post-drain shutdown stage.
  Status CloseAndSnapshot();

  // DurabilityHook — called by UpdateLog / RefreshManager write paths.
  Status PersistDeltas(std::span<UpdateRecord> records) override;
  Status PersistRegistration(RefreshColumnId id, const std::string& table,
                             const std::string& column,
                             std::span<const int64_t> value_ids,
                             std::span<const double> frequencies,
                             uint64_t* lsn_out) override;

  const RecoveryReport& report() const { return report_; }
  const StorageOptions& options() const { return options_; }
  /// Live WAL statistics (zeroed before RecoverAndAttach).
  WalWriterStats wal_stats() const;

 private:
  explicit RecoveryManager(StorageOptions options);

  const StorageOptions options_;
  RefreshManager* manager_ = nullptr;
  std::unique_ptr<WalWriter> wal_;
  RecoveryReport report_;
  uint64_t last_snapshot_seq_ = 0;
  std::mutex checkpoint_mutex_;  // serializes WriteSnapshot/CloseAndSnapshot
  bool closed_ = false;          // guarded by checkpoint_mutex_
};

}  // namespace hops::storage
