#include "storage/recovery.h"

#include <algorithm>
#include <utility>

#include "storage/io.h"
#include "storage/snapshot_file.h"
#include "telemetry/log.h"
#include "telemetry/trace.h"
#include "util/stopwatch.h"

namespace hops::storage {

namespace {

telemetry::Counter* RecoveryRuns() {
  static telemetry::Counter* counter =
      telemetry::MetricRegistry::Global().GetCounter(
          "hops_recovery_runs_total", "Warm-restart recoveries performed");
  return counter;
}

telemetry::Counter* RecoveryReplayedRecords() {
  static telemetry::Counter* counter =
      telemetry::MetricRegistry::Global().GetCounter(
          "hops_recovery_wal_records_replayed_total",
          "WAL delta records replayed past the snapshot high-water mark");
  return counter;
}

telemetry::Gauge* RecoverySeconds() {
  static telemetry::Gauge* gauge =
      telemetry::MetricRegistry::Global().GetGauge(
          "hops_recovery_last_seconds", "Duration of the last recovery");
  return gauge;
}

telemetry::Counter* WalRecordsTotal() {
  static telemetry::Counter* counter =
      telemetry::MetricRegistry::Global().GetCounter(
          "hops_wal_records_total",
          "Records persisted to the WAL (deltas + registrations)");
  return counter;
}

telemetry::Counter* SnapshotWrites() {
  static telemetry::Counter* counter =
      telemetry::MetricRegistry::Global().GetCounter(
          "hops_storage_snapshot_writes_total", "Snapshot files written");
  return counter;
}

telemetry::Gauge* SnapshotLastBytes() {
  static telemetry::Gauge* gauge =
      telemetry::MetricRegistry::Global().GetGauge(
          "hops_storage_snapshot_last_bytes",
          "Size of the most recently written snapshot file");
  return gauge;
}

}  // namespace

RecoveryManager::RecoveryManager(StorageOptions options)
    : options_(std::move(options)) {}

Result<std::unique_ptr<RecoveryManager>> RecoveryManager::Open(
    StorageOptions options) {
  if (options.data_dir.empty()) {
    return Status::InvalidArgument("storage data_dir must not be empty");
  }
  if (options.keep_snapshots == 0) options.keep_snapshots = 1;
  options.wal.fsync = options.durability;
  HOPS_RETURN_NOT_OK(EnsureDir(options.data_dir));
  return std::unique_ptr<RecoveryManager>(
      new RecoveryManager(std::move(options)));
}

RecoveryManager::~RecoveryManager() {
  if (manager_ != nullptr) manager_->AttachDurability(nullptr);
}

Status RecoveryManager::RecoverAndAttach(RefreshManager* manager) {
  if (manager == nullptr) {
    return Status::InvalidArgument("manager must not be null");
  }
  static telemetry::SpanSite& recover_site =
      telemetry::GetSpanSite("Storage.Recover");
  telemetry::TraceSpan span(recover_site);
  Stopwatch stopwatch;
  report_ = RecoveryReport{};

  // 1–2: newest snapshot that validates, restored into the manager.
  HOPS_ASSIGN_OR_RETURN(std::vector<SnapshotFileInfo> snapshots,
                        ListSnapshotFiles(options_.data_dir));
  RefreshDurableState state;
  for (auto it = snapshots.rbegin(); it != snapshots.rend(); ++it) {
    uint64_t seq = 0;
    Result<RefreshDurableState> loaded = ReadSnapshotFile(it->path, &seq);
    if (!loaded.ok()) {
      // Corrupt or torn snapshot: fall back to the previous one. Retention
      // keeps the WAL back through the oldest retained snapshot, so older
      // state plus replay still reaches the present.
      report_.snapshots_skipped += 1;
      continue;
    }
    state = std::move(*loaded);
    report_.snapshot_loaded = true;
    report_.snapshot_seq = seq;
    report_.snapshot_high_water = state.high_water_lsn;
    last_snapshot_seq_ = seq;
    break;
  }
  if (report_.snapshot_loaded) {
    HOPS_RETURN_NOT_OK(manager->RestoreDurableState(state));
  }

  // 3: replay the WAL past the snapshot's high-water mark. Handlers feed
  // the refresh manager directly; it skips records at or below its mark.
  const uint64_t min_lsn = state.high_water_lsn;
  HOPS_ASSIGN_OR_RETURN(
      WalReplayReport replay,
      ReplayWalDir(
          options_.data_dir, min_lsn,
          [manager](const WalDeltaBatch& batch) {
            return manager->ApplyRecoveredDeltas(batch.records).status();
          },
          [manager](const WalRegistration& reg) {
            return manager->ReplayRegistration(
                reg.lsn, reg.id, reg.table, reg.column, reg.values,
                reg.frequencies);
          }));
  report_.wal_segments_scanned = replay.segments_scanned;
  report_.wal_delta_records = replay.delta_records;
  report_.wal_registrations = replay.registrations;
  report_.wal_torn_tail_truncated = replay.torn_tail_truncated;

  // 4: open the writer past everything ever assigned, then attach.
  const uint64_t next_lsn = std::max(min_lsn, replay.max_lsn) + 1;
  HOPS_ASSIGN_OR_RETURN(wal_,
                        WalWriter::Open(options_.data_dir, next_lsn,
                                        options_.wal));
  manager_ = manager;
  manager_->AttachDurability(this);

  report_.seconds = stopwatch.ElapsedSeconds();
  RecoveryRuns()->Increment();
  RecoveryReplayedRecords()->Increment(replay.delta_records);
  RecoverySeconds()->Set(report_.seconds);
  HOPS_LOG(telemetry::LogLevel::kInfo, "storage", "recovery complete",
           {"warm_restart", report_.snapshot_loaded},
           {"snapshot_seq", report_.snapshot_seq},
           {"replayed_deltas", report_.wal_delta_records},
           {"replayed_registrations", report_.wal_registrations},
           {"seconds", report_.seconds});
  return Status::OK();
}

Status RecoveryManager::WriteSnapshot() {
  std::lock_guard<std::mutex> lock(checkpoint_mutex_);
  if (manager_ == nullptr || wal_ == nullptr) {
    return Status::InvalidArgument(
        "WriteSnapshot requires a recovered, attached manager");
  }
  // Checkpoints usually run from the maintenance daemon's timer thread,
  // outside any request — root a fresh (head-sampled) trace when no context
  // is installed so checkpoint latency shows up in /debug/tracez.
  telemetry::TraceContext write_context = telemetry::CurrentTraceContext();
  if (!write_context.valid() && telemetry::Enabled()) {
    if (telemetry::TraceRecorder* recorder =
            telemetry::TraceRecorder::Current()) {
      write_context = telemetry::MintTraceContext();
      write_context.sampled = recorder->ShouldSample(write_context.trace_hi,
                                                     write_context.trace_lo);
    }
  }
  telemetry::TraceContextScope write_scope(write_context);
  static telemetry::SpanSite& snapshot_site =
      telemetry::GetSpanSite("Storage.SnapshotWrite");
  telemetry::TraceSpan span(snapshot_site);

  // Export drains the update queue, so the image's high-water mark covers
  // every acknowledged record up to this instant; concurrent producers keep
  // appending past it into the (about to be rotated) WAL.
  HOPS_ASSIGN_OR_RETURN(const RefreshDurableState state,
                        manager_->ExportDurableState());
  const uint64_t seq = last_snapshot_seq_ + 1;
  const std::string bytes = EncodeSnapshot(seq, state);
  HOPS_RETURN_NOT_OK(WriteFileAtomic(options_.data_dir, SnapshotFileName(seq),
                                     bytes, true));
  last_snapshot_seq_ = seq;
  SnapshotWrites()->Increment();
  SnapshotLastBytes()->Set(static_cast<double>(bytes.size()));

  // Rotate so the pre-snapshot segment can retire once fully covered.
  HOPS_RETURN_NOT_OK(wal_->Rotate());

  // Retention: newest keep_snapshots stay; WAL retires only through the
  // OLDEST retained snapshot's mark, keeping the fallback chain sound.
  HOPS_ASSIGN_OR_RETURN(std::vector<SnapshotFileInfo> snapshots,
                        ListSnapshotFiles(options_.data_dir));
  while (snapshots.size() > options_.keep_snapshots) {
    const std::string name = SnapshotFileName(snapshots.front().seq);
    HOPS_RETURN_NOT_OK(RemoveFileDurable(options_.data_dir, name));
    snapshots.erase(snapshots.begin());
  }
  uint64_t retire_through = state.high_water_lsn;
  for (const SnapshotFileInfo& info : snapshots) {
    Result<SnapshotFileInfo> header = ReadSnapshotInfo(info.path);
    // An unreadable retained snapshot pins the whole WAL (conservative).
    retire_through =
        std::min(retire_through, header.ok() ? header->high_water_lsn : 0);
  }
  HOPS_RETURN_NOT_OK(wal_->RetireThrough(retire_through).status());
  HOPS_LOG(telemetry::LogLevel::kInfo, "storage", "snapshot written",
           {"seq", seq}, {"bytes", static_cast<uint64_t>(bytes.size())},
           {"retire_through_lsn", retire_through});
  return Status::OK();
}

Status RecoveryManager::CloseAndSnapshot() {
  {
    std::lock_guard<std::mutex> lock(checkpoint_mutex_);
    if (closed_) return Status::OK();
    closed_ = true;
  }
  Status snapshot_status = WriteSnapshot();
  if (wal_ != nullptr) {
    const Status sync_status = wal_->Sync();
    if (snapshot_status.ok()) snapshot_status = sync_status;
  }
  if (manager_ != nullptr) {
    manager_->AttachDurability(nullptr);
    manager_ = nullptr;
  }
  return snapshot_status;
}

Status RecoveryManager::PersistDeltas(std::span<UpdateRecord> records) {
  if (wal_ == nullptr) {
    return Status::InvalidArgument("durability hook used before recovery");
  }
  HOPS_RETURN_NOT_OK(wal_->AppendDeltas(records));
  WalRecordsTotal()->Increment(records.size());
  return Status::OK();
}

Status RecoveryManager::PersistRegistration(
    RefreshColumnId id, const std::string& table, const std::string& column,
    std::span<const int64_t> value_ids, std::span<const double> frequencies,
    uint64_t* lsn_out) {
  if (wal_ == nullptr) {
    return Status::InvalidArgument("durability hook used before recovery");
  }
  HOPS_RETURN_NOT_OK(wal_->AppendRegistration(id, table, column, value_ids,
                                              frequencies, lsn_out));
  WalRecordsTotal()->Increment();
  return Status::OK();
}

WalWriterStats RecoveryManager::wal_stats() const {
  return wal_ != nullptr ? wal_->stats() : WalWriterStats{};
}

}  // namespace hops::storage
