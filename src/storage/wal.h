// Write-ahead log for the refresh subsystem's update stream (DESIGN.md
// §13). Between snapshots, every accepted delta batch and column
// registration is appended here BEFORE the producer's call returns, so a
// crash after an acknowledgment loses nothing the caller was told succeeded.
//
// Segment file `wal-<first_lsn:016x>.wal`, all integers little-endian:
//
//   segment header (24 bytes)
//     u32 magic       "HWAL"
//     u32 version     1
//     u64 first_lsn   LSN of the first record this segment may hold
//     u32 header_crc  CRC32C of the 16 bytes above
//     u32 padding
//   frames, back to back until EOF:
//     u32 payload_len
//     u32 payload_crc  CRC32C of the payload bytes
//     payload
//
// Frame payloads (first field u32 `type`):
//   type 1 — delta batch: u32 type, u32 count, u64 first_lsn, then
//     count × (u32 column, i64 value, f64 weight); record i carries LSN
//     first_lsn + i.
//   type 2 — registration: u32 type, u32 column_id, u64 lsn,
//     u32 table_len, u32 column_len, u64 value_count, table bytes,
//     column bytes, value_count × i64 values, value_count × f64 freqs.
//
// LSNs are assigned by the writer's single atomic counter, so file order
// equals LSN order within and across frame types.
//
// Crash semantics: a frame is appended with one write(2) before the caller
// is acknowledged. A killed process (kill -9) therefore loses nothing —
// the page cache survives the process. The fsync knob only widens the
// guarantee to OS crashes / power loss: kEvery fsyncs per append, kBatch
// initiates asynchronous writeback once `batch_bytes` are unsynced
// (bounding the OS-crash dirty window without stalling the accept path),
// kNone leaves flushing to the OS. A torn final frame (crash mid-write or mid-page-loss) is
// detected by length/CRC on replay and truncated away; corruption anywhere
// except the tail of the LAST segment is an error, never a silent skip.
//
// Retirement: once a snapshot's high-water mark covers every record of a
// segment AND its successor segment exists (successor first_lsn <=
// high_water + 1 proves it), the segment is deleted. The recovery manager
// retires only through the OLDEST retained snapshot's mark, so falling
// back past a corrupt newest snapshot never needs retired records.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "refresh/update_log.h"
#include "util/status.h"

namespace hops::storage {

inline constexpr uint32_t kWalMagic = 0x4C415748u;  // file starts "HWAL"
inline constexpr uint32_t kWalVersion = 1;

/// \brief When appended frames reach the disk (see file comment — the
/// process-kill guarantee is identical across all three).
enum class WalFsync {
  kNone,   ///< never fsync; OS flushes at its leisure
  kBatch,  ///< kick async writeback once batch_bytes accumulate unsynced
  kEvery,  ///< fsync after every append
};

struct WalOptions {
  WalFsync fsync = WalFsync::kBatch;
  /// kBatch: fsync once this many unsynced bytes accumulate.
  size_t batch_bytes = 1 << 20;
  /// Start a new segment once the current one exceeds this size.
  size_t segment_bytes = 8 << 20;
};

struct WalWriterStats {
  uint64_t records_appended = 0;  ///< delta records + registrations
  uint64_t frames_appended = 0;
  uint64_t bytes_appended = 0;
  uint64_t fsyncs = 0;
  uint64_t writeback_kicks = 0;  ///< kBatch async flushes (sync_file_range)
  uint64_t segments_created = 0;
  uint64_t segments_retired = 0;
  uint64_t next_lsn = 0;
};

/// `wal-<first_lsn:016x>.wal`.
std::string WalSegmentFileName(uint64_t first_lsn);

/// Parses a WalSegmentFileName; false for anything else.
bool ParseWalSegmentFileName(std::string_view name, uint64_t* first_lsn);

/// \brief Appender. Thread-safe: the UpdateLog accept path (log mutex) and
/// RegisterColumn (manager mutex) call concurrently; one internal mutex
/// serializes them.
class WalWriter {
 public:
  /// Opens \p dir for appending; the next record gets \p next_lsn. Always
  /// starts a fresh segment — existing segments are replay-only, so a
  /// writer never appends into a file a previous recovery may truncate.
  static Result<std::unique_ptr<WalWriter>> Open(std::string dir,
                                                 uint64_t next_lsn,
                                                 WalOptions options = {});
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one delta-batch frame, stamping each record's `lsn`.
  Status AppendDeltas(std::span<UpdateRecord> records);

  /// Appends one registration frame; \p lsn_out receives its LSN.
  Status AppendRegistration(RefreshColumnId id, const std::string& table,
                            const std::string& column,
                            std::span<const int64_t> values,
                            std::span<const double> frequencies,
                            uint64_t* lsn_out);

  /// fsyncs the active segment now (regardless of mode).
  Status Sync();

  /// Cuts over to a new segment starting at the current next_lsn. Called
  /// by the recovery manager right after a snapshot, so the old segment
  /// becomes retirable once the snapshot chain covers it.
  Status Rotate();

  /// Deletes every non-active segment all of whose records are <= \p lsn
  /// (proved by its successor's first_lsn <= lsn + 1). Returns how many.
  Result<size_t> RetireThrough(uint64_t lsn);

  uint64_t next_lsn() const;
  WalWriterStats stats() const;

 private:
  WalWriter(std::string dir, uint64_t next_lsn, WalOptions options);

  Status OpenSegmentLocked();
  Status AppendFrameLocked(std::string_view payload, size_t records);
  Status CommitFrameLocked(size_t records);
  Status SyncLocked();
  Status KickWritebackLocked();

  const std::string dir_;
  const WalOptions options_;

  mutable std::mutex mutex_;
  int fd_ = -1;
  uint64_t next_lsn_ = 1;
  uint64_t segment_first_lsn_ = 1;
  size_t segment_bytes_written_ = 0;
  size_t unsynced_bytes_ = 0;  ///< since the last real fsync
  size_t unkicked_bytes_ = 0;  ///< since the last fsync OR writeback kick
  std::string frame_scratch_;
  // Accounting mirrors UpdateLog: telemetry counters, exact under mutex_.
  telemetry::Counter records_appended_;
  telemetry::Counter frames_appended_;
  telemetry::Counter bytes_appended_;
  telemetry::Counter fsyncs_;
  telemetry::Counter writeback_kicks_;
  telemetry::Counter segments_created_;
  telemetry::Counter segments_retired_;
};

/// \brief One replayed delta batch; records carry their stamped LSNs.
struct WalDeltaBatch {
  uint64_t first_lsn = 0;
  std::vector<UpdateRecord> records;
};

/// \brief One replayed registration.
struct WalRegistration {
  uint64_t lsn = 0;
  RefreshColumnId id = 0;
  std::string table;
  std::string column;
  std::vector<int64_t> values;
  std::vector<double> frequencies;
};

struct WalReplayReport {
  size_t segments_scanned = 0;
  size_t segments_skipped = 0;  ///< entirely covered by min_lsn
  size_t frames = 0;
  size_t delta_records = 0;
  size_t registrations = 0;
  uint64_t max_lsn = 0;
  bool torn_tail_truncated = false;
  uint64_t torn_tail_bytes = 0;
};

using WalDeltaHandler = std::function<Status(const WalDeltaBatch&)>;
using WalRegistrationHandler = std::function<Status(const WalRegistration&)>;

/// \brief Replays every segment of \p dir in LSN order, invoking the
/// handlers in log order. Segments wholly covered by \p min_lsn (successor
/// first_lsn <= min_lsn + 1) are skipped without reading; finer filtering
/// is the caller's job (the refresh manager skips by record LSN). A torn
/// tail in the LAST segment is truncated from the file (so later replays
/// are clean); any other corruption is an Internal error.
Result<WalReplayReport> ReplayWalDir(const std::string& dir, uint64_t min_lsn,
                                     const WalDeltaHandler& on_deltas,
                                     const WalRegistrationHandler& on_registration);

}  // namespace hops::storage
