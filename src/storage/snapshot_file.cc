#include "storage/snapshot_file.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "storage/io.h"
#include "util/crc32c.h"

namespace hops::storage {

namespace {

// Little-endian POD append/read, the same idiom as engine/catalog.cc. The
// supported platforms are little-endian; a big-endian port would byteswap
// here and nowhere else.
template <typename T>
void AppendPod(std::string* out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool ReadPod(std::string_view* in, T* v) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (in->size() < sizeof(T)) return false;
  std::memcpy(v, in->data(), sizeof(T));
  in->remove_prefix(sizeof(T));
  return true;
}

template <typename T>
void AppendArray(std::string* out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out->append(reinterpret_cast<const char*>(v.data()), v.size() * sizeof(T));
}

constexpr size_t kHeaderBytes = 32;
constexpr size_t kSectionEntryBytes = 32;

// One fixed-width kColumns record: 19 packed fields (see Append below).
constexpr size_t kColumnRecordBytes =
    8 * 15 +  // doubles / u64 / i64 fields
    4 +       // u32 flags
    8 * 4;    // explicit/ideal offset+count cursors

constexpr uint32_t kFlagHotValid = 1u << 0;
constexpr uint32_t kFlagHasFeedback = 1u << 1;

struct SectionEntry {
  uint32_t kind = 0;
  uint64_t offset = 0;
  uint64_t length = 0;
  uint32_t crc = 0;
};

Status Corrupt(const std::string& what) {
  return Status::Internal("snapshot corrupt: " + what);
}

}  // namespace

std::string SnapshotFileName(uint64_t seq) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "snapshot-%016llx.hsnp",
                static_cast<unsigned long long>(seq));
  return buf;
}

bool ParseSnapshotFileName(std::string_view name, uint64_t* seq) {
  constexpr std::string_view kPrefix = "snapshot-";
  constexpr std::string_view kSuffix = ".hsnp";
  if (name.size() != kPrefix.size() + 16 + kSuffix.size()) return false;
  if (name.substr(0, kPrefix.size()) != kPrefix) return false;
  if (name.substr(kPrefix.size() + 16) != kSuffix) return false;
  uint64_t value = 0;
  for (char c : name.substr(kPrefix.size(), 16)) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else return false;
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  if (seq != nullptr) *seq = value;
  return true;
}

std::string EncodeSnapshot(uint64_t seq, const RefreshDurableState& state) {
  // Build every section payload, then lay them out behind the table.
  std::string meta;
  AppendPod<uint64_t>(&meta, state.columns.size());

  std::string names;
  std::string columns;
  std::vector<int64_t> explicit_values;
  std::vector<double> explicit_freqs;
  std::vector<int64_t> ideal_values;
  std::vector<double> ideal_counts;
  for (const ColumnDurableState& c : state.columns) {
    AppendPod<uint32_t>(&names, static_cast<uint32_t>(c.table.size()));
    AppendPod<uint32_t>(&names, static_cast<uint32_t>(c.column.size()));
    names += c.table;
    names += c.column;

    AppendPod<double>(&columns, c.default_frequency);
    AppendPod<uint64_t>(&columns, c.num_default_values);
    AppendPod<double>(&columns, c.maintainer.num_tuples);
    AppendPod<double>(&columns, c.maintainer.tuples_at_build);
    AppendPod<uint64_t>(&columns, c.maintainer.updates_applied);
    AppendPod<double>(&columns, c.maintainer.drift);
    AppendPod<int64_t>(&columns, c.maintainer.hot_value);
    AppendPod<double>(&columns, c.maintainer.hot_count);
    AppendPod<double>(&columns, c.tuples_at_build);
    AppendPod<int64_t>(&columns, c.min_value);
    AppendPod<int64_t>(&columns, c.max_value);
    AppendPod<uint64_t>(&columns, c.distinct);
    AppendPod<double>(&columns, c.feedback_ewma);
    AppendPod<uint64_t>(&columns, c.deltas_since_rebuild);
    AppendPod<uint64_t>(&columns, c.rebuilds);
    uint32_t flags = 0;
    if (c.maintainer.hot_valid) flags |= kFlagHotValid;
    if (c.has_feedback) flags |= kFlagHasFeedback;
    AppendPod<uint32_t>(&columns, flags);
    AppendPod<uint64_t>(&columns, explicit_values.size());
    AppendPod<uint64_t>(&columns, c.explicit_values.size());
    AppendPod<uint64_t>(&columns, ideal_values.size());
    AppendPod<uint64_t>(&columns, c.ideal_values.size());

    explicit_values.insert(explicit_values.end(), c.explicit_values.begin(),
                           c.explicit_values.end());
    explicit_freqs.insert(explicit_freqs.end(), c.explicit_freqs.begin(),
                          c.explicit_freqs.end());
    ideal_values.insert(ideal_values.end(), c.ideal_values.begin(),
                        c.ideal_values.end());
    ideal_counts.insert(ideal_counts.end(), c.ideal_counts.begin(),
                        c.ideal_counts.end());
  }
  std::string explicit_values_bytes;
  AppendArray(&explicit_values_bytes, explicit_values);
  std::string explicit_freqs_bytes;
  AppendArray(&explicit_freqs_bytes, explicit_freqs);
  std::string ideal_values_bytes;
  AppendArray(&ideal_values_bytes, ideal_values);
  std::string ideal_counts_bytes;
  AppendArray(&ideal_counts_bytes, ideal_counts);

  const std::pair<SnapshotSection, const std::string*> sections[] = {
      {SnapshotSection::kMeta, &meta},
      {SnapshotSection::kNames, &names},
      {SnapshotSection::kColumns, &columns},
      {SnapshotSection::kExplicitValues, &explicit_values_bytes},
      {SnapshotSection::kExplicitFreqs, &explicit_freqs_bytes},
      {SnapshotSection::kIdealValues, &ideal_values_bytes},
      {SnapshotSection::kIdealCounts, &ideal_counts_bytes},
  };
  const uint32_t num_sections = static_cast<uint32_t>(std::size(sections));

  std::string out;
  out.reserve(kHeaderBytes + num_sections * kSectionEntryBytes + meta.size() +
              names.size() + columns.size() + explicit_values_bytes.size() +
              explicit_freqs_bytes.size() + ideal_values_bytes.size() +
              ideal_counts_bytes.size());
  AppendPod<uint32_t>(&out, kSnapshotMagic);
  AppendPod<uint32_t>(&out, kSnapshotVersion);
  AppendPod<uint64_t>(&out, seq);
  AppendPod<uint64_t>(&out, state.high_water_lsn);
  AppendPod<uint32_t>(&out, num_sections);
  // header_crc placeholder — patched once the section table is in place.
  const size_t crc_pos = out.size();
  AppendPod<uint32_t>(&out, 0);

  uint64_t payload_offset =
      kHeaderBytes + static_cast<uint64_t>(num_sections) * kSectionEntryBytes;
  for (const auto& [kind, payload] : sections) {
    AppendPod<uint32_t>(&out, static_cast<uint32_t>(kind));
    AppendPod<uint32_t>(&out, 0);  // reserved
    AppendPod<uint64_t>(&out, payload_offset);
    AppendPod<uint64_t>(&out, payload->size());
    AppendPod<uint32_t>(&out, Crc32c(payload->data(), payload->size()));
    AppendPod<uint32_t>(&out, 0);  // padding
    payload_offset += payload->size();
  }
  // The header CRC covers the first 28 bytes plus the whole section table,
  // skipping its own 4-byte slot.
  uint32_t header_crc = Crc32c(out.data(), crc_pos);
  header_crc = Crc32cExtend(header_crc, out.data() + kHeaderBytes,
                            out.size() - kHeaderBytes);
  std::memcpy(out.data() + crc_pos, &header_crc, sizeof(header_crc));

  for (const auto& [kind, payload] : sections) out += *payload;
  return out;
}

namespace {

// Validates the header + section table of `bytes`; fills `entries`.
Status ParseHeader(std::string_view bytes, uint64_t* seq, uint64_t* high_water,
                   std::vector<SectionEntry>* entries) {
  std::string_view cursor = bytes;
  uint32_t magic, version, num_sections, header_crc;
  uint64_t seq_value, high_water_value;
  if (!ReadPod(&cursor, &magic) || !ReadPod(&cursor, &version) ||
      !ReadPod(&cursor, &seq_value) || !ReadPod(&cursor, &high_water_value) ||
      !ReadPod(&cursor, &num_sections) || !ReadPod(&cursor, &header_crc)) {
    return Corrupt("truncated header");
  }
  if (magic != kSnapshotMagic) return Corrupt("bad magic");
  if (version != kSnapshotVersion) {
    return Corrupt("unsupported version " + std::to_string(version));
  }
  const uint64_t table_bytes =
      static_cast<uint64_t>(num_sections) * kSectionEntryBytes;
  if (bytes.size() < kHeaderBytes + table_bytes) {
    return Corrupt("truncated section table");
  }
  uint32_t expected = Crc32c(bytes.data(), kHeaderBytes - sizeof(uint32_t));
  expected = Crc32cExtend(expected, bytes.data() + kHeaderBytes, table_bytes);
  if (expected != header_crc) return Corrupt("header checksum mismatch");

  entries->clear();
  entries->reserve(num_sections);
  for (uint32_t i = 0; i < num_sections; ++i) {
    SectionEntry entry;
    uint32_t reserved, pad;
    if (!ReadPod(&cursor, &entry.kind) || !ReadPod(&cursor, &reserved) ||
        !ReadPod(&cursor, &entry.offset) || !ReadPod(&cursor, &entry.length) ||
        !ReadPod(&cursor, &entry.crc) || !ReadPod(&cursor, &pad)) {
      return Corrupt("truncated section table");
    }
    if (entry.offset > bytes.size() ||
        entry.length > bytes.size() - entry.offset) {
      return Corrupt("section " + std::to_string(entry.kind) +
                     " out of bounds");
    }
    entries->push_back(entry);
  }
  // Sections are laid out back to back after the table, so the image must
  // end exactly where the last one does — trailing bytes are corruption.
  const uint64_t end = entries->empty()
                           ? kHeaderBytes + table_bytes
                           : entries->back().offset + entries->back().length;
  if (end != bytes.size()) return Corrupt("trailing bytes after sections");
  if (seq != nullptr) *seq = seq_value;
  if (high_water != nullptr) *high_water = high_water_value;
  return Status::OK();
}

// Finds a section, validates its checksum, and returns its payload view.
Result<std::string_view> SectionPayload(std::string_view bytes,
                                        const std::vector<SectionEntry>& table,
                                        SnapshotSection kind) {
  for (const SectionEntry& entry : table) {
    if (entry.kind != static_cast<uint32_t>(kind)) continue;
    const std::string_view payload = bytes.substr(entry.offset, entry.length);
    if (Crc32c(payload.data(), payload.size()) != entry.crc) {
      return Corrupt("section " + std::to_string(entry.kind) +
                     " checksum mismatch");
    }
    return payload;
  }
  return Corrupt("missing section " +
                 std::to_string(static_cast<uint32_t>(kind)));
}

template <typename T>
Status CopyArraySection(std::string_view payload, std::vector<T>* out,
                        const char* what) {
  if (payload.size() % sizeof(T) != 0) {
    return Corrupt(std::string(what) + " length not a multiple of " +
                   std::to_string(sizeof(T)));
  }
  out->resize(payload.size() / sizeof(T));
  std::memcpy(out->data(), payload.data(), payload.size());
  return Status::OK();
}

}  // namespace

Result<RefreshDurableState> DecodeSnapshot(std::string_view bytes,
                                           uint64_t* seq_out) {
  std::vector<SectionEntry> table;
  uint64_t seq = 0;
  RefreshDurableState state;
  HOPS_RETURN_NOT_OK(ParseHeader(bytes, &seq, &state.high_water_lsn, &table));

  HOPS_ASSIGN_OR_RETURN(std::string_view meta,
                        SectionPayload(bytes, table, SnapshotSection::kMeta));
  uint64_t num_columns = 0;
  if (!ReadPod(&meta, &num_columns)) return Corrupt("truncated meta");
  // A column contributes at least its two name-length prefixes, so this
  // bound rejects absurd counts before any allocation.
  HOPS_ASSIGN_OR_RETURN(std::string_view names,
                        SectionPayload(bytes, table, SnapshotSection::kNames));
  HOPS_ASSIGN_OR_RETURN(
      std::string_view columns,
      SectionPayload(bytes, table, SnapshotSection::kColumns));
  if (num_columns > names.size() / 8 + 1 ||
      columns.size() != num_columns * kColumnRecordBytes) {
    return Corrupt("column count disagrees with section sizes");
  }

  std::vector<int64_t> explicit_values;
  std::vector<double> explicit_freqs;
  std::vector<int64_t> ideal_values;
  std::vector<double> ideal_counts;
  {
    HOPS_ASSIGN_OR_RETURN(
        std::string_view payload,
        SectionPayload(bytes, table, SnapshotSection::kExplicitValues));
    HOPS_RETURN_NOT_OK(
        CopyArraySection(payload, &explicit_values, "explicit values"));
    HOPS_ASSIGN_OR_RETURN(
        payload, SectionPayload(bytes, table, SnapshotSection::kExplicitFreqs));
    HOPS_RETURN_NOT_OK(
        CopyArraySection(payload, &explicit_freqs, "explicit freqs"));
    HOPS_ASSIGN_OR_RETURN(
        payload, SectionPayload(bytes, table, SnapshotSection::kIdealValues));
    HOPS_RETURN_NOT_OK(CopyArraySection(payload, &ideal_values, "ideal values"));
    HOPS_ASSIGN_OR_RETURN(
        payload, SectionPayload(bytes, table, SnapshotSection::kIdealCounts));
    HOPS_RETURN_NOT_OK(CopyArraySection(payload, &ideal_counts, "ideal counts"));
  }
  if (explicit_values.size() != explicit_freqs.size()) {
    return Corrupt("explicit arrays disagree in length");
  }
  if (ideal_values.size() != ideal_counts.size()) {
    return Corrupt("ideal arrays disagree in length");
  }

  state.columns.resize(num_columns);
  for (uint64_t i = 0; i < num_columns; ++i) {
    ColumnDurableState& c = state.columns[i];
    uint32_t table_len, column_len;
    if (!ReadPod(&names, &table_len) || !ReadPod(&names, &column_len) ||
        names.size() < static_cast<size_t>(table_len) + column_len) {
      return Corrupt("truncated names");
    }
    c.table.assign(names.substr(0, table_len));
    names.remove_prefix(table_len);
    c.column.assign(names.substr(0, column_len));
    names.remove_prefix(column_len);

    uint32_t flags = 0;
    uint64_t explicit_offset, explicit_count, ideal_offset, ideal_count;
    bool ok = ReadPod(&columns, &c.default_frequency) &&
              ReadPod(&columns, &c.num_default_values) &&
              ReadPod(&columns, &c.maintainer.num_tuples) &&
              ReadPod(&columns, &c.maintainer.tuples_at_build) &&
              ReadPod(&columns, &c.maintainer.updates_applied) &&
              ReadPod(&columns, &c.maintainer.drift) &&
              ReadPod(&columns, &c.maintainer.hot_value) &&
              ReadPod(&columns, &c.maintainer.hot_count) &&
              ReadPod(&columns, &c.tuples_at_build) &&
              ReadPod(&columns, &c.min_value) &&
              ReadPod(&columns, &c.max_value) &&
              ReadPod(&columns, &c.distinct) &&
              ReadPod(&columns, &c.feedback_ewma) &&
              ReadPod(&columns, &c.deltas_since_rebuild) &&
              ReadPod(&columns, &c.rebuilds) && ReadPod(&columns, &flags) &&
              ReadPod(&columns, &explicit_offset) &&
              ReadPod(&columns, &explicit_count) &&
              ReadPod(&columns, &ideal_offset) &&
              ReadPod(&columns, &ideal_count);
    if (!ok) return Corrupt("truncated column record");
    c.maintainer.hot_valid = (flags & kFlagHotValid) != 0;
    c.has_feedback = (flags & kFlagHasFeedback) != 0;

    if (explicit_offset > explicit_values.size() ||
        explicit_count > explicit_values.size() - explicit_offset) {
      return Corrupt("explicit cursor of " + c.table + "." + c.column +
                     " out of bounds");
    }
    if (ideal_offset > ideal_values.size() ||
        ideal_count > ideal_values.size() - ideal_offset) {
      return Corrupt("ideal cursor of " + c.table + "." + c.column +
                     " out of bounds");
    }
    c.explicit_values.assign(
        explicit_values.begin() + static_cast<ptrdiff_t>(explicit_offset),
        explicit_values.begin() +
            static_cast<ptrdiff_t>(explicit_offset + explicit_count));
    c.explicit_freqs.assign(
        explicit_freqs.begin() + static_cast<ptrdiff_t>(explicit_offset),
        explicit_freqs.begin() +
            static_cast<ptrdiff_t>(explicit_offset + explicit_count));
    c.ideal_values.assign(
        ideal_values.begin() + static_cast<ptrdiff_t>(ideal_offset),
        ideal_values.begin() +
            static_cast<ptrdiff_t>(ideal_offset + ideal_count));
    c.ideal_counts.assign(
        ideal_counts.begin() + static_cast<ptrdiff_t>(ideal_offset),
        ideal_counts.begin() +
            static_cast<ptrdiff_t>(ideal_offset + ideal_count));
  }
  if (seq_out != nullptr) *seq_out = seq;
  return state;
}

Result<std::string> WriteSnapshotFile(const std::string& dir, uint64_t seq,
                                      const RefreshDurableState& state) {
  const std::string name = SnapshotFileName(seq);
  HOPS_RETURN_NOT_OK(
      WriteFileAtomic(dir, name, EncodeSnapshot(seq, state), true));
  return dir + "/" + name;
}

Result<RefreshDurableState> ReadSnapshotFile(const std::string& path,
                                             uint64_t* seq_out) {
  HOPS_ASSIGN_OR_RETURN(const std::string bytes, ReadFileToString(path));
  return DecodeSnapshot(bytes, seq_out);
}

Result<SnapshotFileInfo> ReadSnapshotInfo(const std::string& path) {
  HOPS_ASSIGN_OR_RETURN(const std::string bytes, ReadFileToString(path));
  SnapshotFileInfo info;
  info.path = path;
  std::vector<SectionEntry> table;
  HOPS_RETURN_NOT_OK(
      ParseHeader(bytes, &info.seq, &info.high_water_lsn, &table));
  return info;
}

Result<std::vector<SnapshotFileInfo>> ListSnapshotFiles(
    const std::string& dir) {
  HOPS_ASSIGN_OR_RETURN(const std::vector<std::string> names, ListDir(dir));
  std::vector<SnapshotFileInfo> out;
  for (const std::string& name : names) {
    uint64_t seq = 0;
    if (!ParseSnapshotFileName(name, &seq)) continue;
    SnapshotFileInfo info;
    info.path = dir + "/" + name;
    info.seq = seq;
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(),
            [](const SnapshotFileInfo& a, const SnapshotFileInfo& b) {
              return a.seq < b.seq;
            });
  return out;
}

}  // namespace hops::storage
