// POSIX file plumbing shared by the durable storage layer (DESIGN.md §13):
// whole-file reads, crash-atomic writes (temp file + fsync + rename + parent
// directory fsync), and directory listing. Kept apart from the format code
// so snapshot_file.cc and wal.cc stay about bytes, not syscalls.

#pragma once

#include <string>
#include <vector>

#include "util/status.h"

namespace hops::storage {

/// \brief Reads the whole file at \p path. NotFound when absent; Internal
/// on any other I/O failure.
Result<std::string> ReadFileToString(const std::string& path);

/// \brief Writes \p bytes to `dir/filename` atomically: a hidden temp file
/// in \p dir is written, fsynced (when \p fsync_file), renamed over the
/// target, and the directory entry is fsynced. Readers see either the old
/// complete file or the new complete file, never a torn one.
Status WriteFileAtomic(const std::string& dir, const std::string& filename,
                       std::string_view bytes, bool fsync_file = true);

/// \brief fsyncs the directory itself, making renames/unlinks in it durable.
Status FsyncDir(const std::string& dir);

/// \brief Creates \p dir (one level) if absent.
Status EnsureDir(const std::string& dir);

/// \brief Regular-file names (not paths) in \p dir, unsorted.
Result<std::vector<std::string>> ListDir(const std::string& dir);

/// \brief Deletes `dir/filename` and fsyncs the directory. Missing file OK.
Status RemoveFileDurable(const std::string& dir, const std::string& filename);

}  // namespace hops::storage
