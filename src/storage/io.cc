#include "storage/io.h"

#include <dirent.h>
#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cstdio>

namespace hops::storage {

namespace {

std::string Errno(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + ::strerror(errno);
}

Status WriteAll(int fd, const char* data, size_t size,
                const std::string& path) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("write", path));
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Result<std::string> ReadFileToString(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Status::Internal(Errno("open", path));
  }
  std::string out;
  struct stat st;
  if (::fstat(fd, &st) == 0 && st.st_size > 0) {
    out.reserve(static_cast<size_t>(st.st_size));
  }
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = Status::Internal(Errno("read", path));
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status WriteFileAtomic(const std::string& dir, const std::string& filename,
                       std::string_view bytes, bool fsync_file) {
  const std::string tmp_name = ".tmp-" + filename;
  const std::string tmp_path = dir + "/" + tmp_name;
  const std::string final_path = dir + "/" + filename;
  const int fd = ::open(tmp_path.c_str(),
                        O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) return Status::Internal(Errno("open", tmp_path));
  Status status = WriteAll(fd, bytes.data(), bytes.size(), tmp_path);
  if (status.ok() && fsync_file && ::fsync(fd) != 0) {
    status = Status::Internal(Errno("fsync", tmp_path));
  }
  if (::close(fd) != 0 && status.ok()) {
    status = Status::Internal(Errno("close", tmp_path));
  }
  if (!status.ok()) {
    ::unlink(tmp_path.c_str());
    return status;
  }
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    const Status rename_status = Status::Internal(Errno("rename", final_path));
    ::unlink(tmp_path.c_str());
    return rename_status;
  }
  return FsyncDir(dir);
}

Status FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Status::Internal(Errno("open dir", dir));
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::Internal(Errno("fsync dir", dir));
  return Status::OK();
}

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return Status::OK();
  return Status::Internal(Errno("mkdir", dir));
}

Result<std::vector<std::string>> ListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Status::Internal(Errno("opendir", dir));
  std::vector<std::string> names;
  for (;;) {
    errno = 0;
    struct dirent* entry = ::readdir(d);
    if (entry == nullptr) {
      if (errno != 0) {
        const Status status = Status::Internal(Errno("readdir", dir));
        ::closedir(d);
        return status;
      }
      break;
    }
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    struct stat st;
    if (::stat((dir + "/" + name).c_str(), &st) == 0 && S_ISREG(st.st_mode)) {
      names.push_back(name);
    }
  }
  ::closedir(d);
  return names;
}

Status RemoveFileDurable(const std::string& dir, const std::string& filename) {
  const std::string path = dir + "/" + filename;
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::Internal(Errno("unlink", path));
  }
  return FsyncDir(dir);
}

}  // namespace hops::storage
