// Chain equality-join queries (Section 2.2).
//
//   Q := (R0.a1 = R1.a1 and R1.a2 = R2.a2 and ... and R_{N-1}.aN = RN.aN)
//
// Relation Rj is represented by its frequency matrix over the domains of its
// two join attributes; R0 and RN by horizontal/vertical vectors. Selections
// are the special case where an end relation is an indicator vector over the
// selected values (Section 2.2's R0-singleton trick).

#pragma once

#include <span>
#include <vector>

#include "histogram/bucketization.h"
#include "histogram/histogram.h"
#include "stats/frequency_matrix.h"
#include "util/status.h"

namespace hops {

/// \brief A validated chain query over frequency matrices.
class ChainQuery {
 public:
  ChainQuery() = default;

  /// Takes the per-relation frequency matrices F0 .. FN in chain order.
  /// Validates the vector/matrix shape contract and adjacent-domain
  /// agreement.
  static Result<ChainQuery> Make(std::vector<FrequencyMatrix> matrices);

  size_t num_relations() const { return matrices_.size(); }
  /// N — the number of join predicates.
  size_t num_joins() const { return matrices_.size() - 1; }

  const std::vector<FrequencyMatrix>& matrices() const { return matrices_; }
  const FrequencyMatrix& matrix(size_t j) const { return matrices_[j]; }

  /// Exact result size S (Theorem 2.1).
  Result<double> ExactResultSize() const;

 private:
  explicit ChainQuery(std::vector<FrequencyMatrix> matrices)
      : matrices_(std::move(matrices)) {}
  std::vector<FrequencyMatrix> matrices_;
};

/// \brief Indicator vector representing the disjunctive equality selection
/// "a = v for some v in selected" over a domain of \p domain_size values
/// (Example 2.2's (1 0 1) trick). \p vertical selects the MN x 1 shape.
Result<FrequencyMatrix> SelectionIndicatorVector(
    size_t domain_size, std::span<const size_t> selected_values,
    bool vertical);

}  // namespace hops
