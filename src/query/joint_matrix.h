// The joint-frequency matrix of a chain query (Section 2.2).
//
// Conceptually: join the tables representing every relation's frequency
// matrix on their shared domain columns, keeping all columns — a
// (2N+1)-column table with N domain columns and N+1 frequency columns
// (Example 2.2's quintuples). The query's result size is the sum over rows
// of the product of the frequency columns. Building it requires touching
// every relation's full contents, which is exactly why the paper deems the
// full-knowledge setting impractical (Section 3.3, algorithm JointMatrix);
// we materialize it only for small domains (tests, the arrangement study).

#pragma once

#include <cstdint>
#include <vector>

#include "query/chain_query.h"
#include "util/status.h"

namespace hops {

/// \brief One row of the joint-frequency table: the joined domain values
/// d1..dN and the corresponding frequencies f0..fN.
struct JointFrequencyRow {
  std::vector<size_t> domain_values;  ///< size N.
  std::vector<double> frequencies;    ///< size N+1.

  /// The row's contribution to the result size: product of frequencies.
  double Product() const;
};

/// \brief Materialized joint-frequency table.
class JointFrequencyTable {
 public:
  /// Builds the table for \p query, skipping rows whose frequency product is
  /// zero. Fails with ResourceExhausted if more than \p max_rows non-zero
  /// rows would be produced.
  static Result<JointFrequencyTable> Build(const ChainQuery& query,
                                           uint64_t max_rows = 1u << 22);

  const std::vector<JointFrequencyRow>& rows() const { return rows_; }

  /// Sum over rows of the frequency products — must equal the chain-product
  /// result size (cross-checked in tests).
  double ResultSize() const;

 private:
  std::vector<JointFrequencyRow> rows_;
};

}  // namespace hops
