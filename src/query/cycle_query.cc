#include "query/cycle_query.h"

#include "histogram/matrix_histogram.h"
#include "util/math.h"

namespace hops {

Result<CycleQuery> CycleQuery::Make(std::vector<FrequencyMatrix> matrices) {
  if (matrices.size() < 2) {
    return Status::InvalidArgument("cycle query needs at least two relations");
  }
  for (size_t j = 0; j < matrices.size(); ++j) {
    size_t next = (j + 1) % matrices.size();
    if (matrices[j].cols() != matrices[next].rows()) {
      return Status::InvalidArgument(
          "join domain mismatch between relations " + std::to_string(j) +
          " and " + std::to_string(next) + ": " +
          std::to_string(matrices[j].cols()) + " vs " +
          std::to_string(matrices[next].rows()));
    }
  }
  return CycleQuery(std::move(matrices));
}

namespace {

Result<double> TraceOfProduct(std::span<const FrequencyMatrix> ms) {
  FrequencyMatrix acc = ms.front();
  for (size_t j = 1; j < ms.size(); ++j) {
    HOPS_ASSIGN_OR_RETURN(acc, acc.Multiply(ms[j]));
  }
  // acc is square (F0.rows x F0.rows) by cycle validation.
  KahanSum trace;
  for (size_t d = 0; d < acc.rows(); ++d) trace.Add(acc.At(d, d));
  return trace.Value();
}

}  // namespace

Result<double> CycleQuery::ExactResultSize() const {
  return TraceOfProduct(matrices_);
}

Result<double> CycleQuery::EstimateResultSize(
    std::span<const Bucketization> bucketizations,
    BucketAverageMode mode) const {
  if (bucketizations.size() != matrices_.size()) {
    return Status::InvalidArgument(
        "need one bucketization per relation: got " +
        std::to_string(bucketizations.size()) + " for " +
        std::to_string(matrices_.size()));
  }
  std::vector<FrequencyMatrix> approx;
  approx.reserve(matrices_.size());
  for (size_t j = 0; j < matrices_.size(); ++j) {
    HOPS_ASSIGN_OR_RETURN(
        MatrixHistogram mh,
        MatrixHistogram::Make(matrices_[j], bucketizations[j]));
    HOPS_ASSIGN_OR_RETURN(FrequencyMatrix am, mh.ApproximateMatrix(mode));
    approx.push_back(std::move(am));
  }
  return TraceOfProduct(approx);
}

Result<double> CycleQuery::BruteForceResultSize() const {
  // Odometer over the joint domain (d0, d1, ..., d_{k-1}) where dj indexes
  // the join attribute between R_{j-1} and R_j; relation j contributes
  // F_j(d_j, d_{j+1 mod k}).
  const size_t k = matrices_.size();
  std::vector<size_t> extents(k);
  for (size_t j = 0; j < k; ++j) extents[j] = matrices_[j].rows();
  std::vector<size_t> idx(k, 0);
  KahanSum total;
  while (true) {
    double product = 1.0;
    for (size_t j = 0; j < k && product != 0; ++j) {
      product *= matrices_[j].At(idx[j], idx[(j + 1) % k]);
    }
    total.Add(product);
    size_t d = k;
    bool done = false;
    while (d > 0) {
      --d;
      if (++idx[d] < extents[d]) break;
      idx[d] = 0;
      if (d == 0) done = true;
    }
    if (done) return total.Value();
  }
}

}  // namespace hops
