#include "query/joint_matrix.h"

#include "util/math.h"

namespace hops {

double JointFrequencyRow::Product() const {
  double p = 1.0;
  for (double f : frequencies) p *= f;
  return p;
}

Result<JointFrequencyTable> JointFrequencyTable::Build(
    const ChainQuery& query, uint64_t max_rows) {
  JointFrequencyTable table;
  const size_t n = query.num_joins();
  if (n == 0) {
    // Single relation, 1x1 scalar: one row with no domain columns.
    JointFrequencyRow row;
    row.frequencies.push_back(query.matrix(0).At(0, 0));
    if (row.frequencies[0] != 0) table.rows_.push_back(std::move(row));
    return table;
  }
  // Depth-first enumeration over the N join-domain columns, pruning zero
  // products (a zero frequency in any relation kills the whole subtree).
  std::vector<size_t> values(n, 0);
  std::vector<double> freqs(n + 1, 0.0);

  // Recurse over join positions. At position j we have fixed d1..dj and the
  // frequencies f0..f_{j-1}; we pick dj+1 next.
  struct Frame {
    size_t depth;
    size_t value;
  };
  // Iterative DFS to avoid std::function recursion overhead.
  // freqs[j] = frequency of relation j given (d_j, d_{j+1}).
  // Relation 0 is 1 x M1: f0 = F0(0, d1). Relation j (1<=j<n): Fj(d_j,
  // d_{j+1}). Relation n: Fn(d_n, 0).
  std::vector<size_t> cursor(n, 0);
  size_t depth = 0;
  while (true) {
    if (cursor[depth] >= query.matrix(depth).cols()) {
      // Exhausted this level; pop.
      if (depth == 0) break;
      --depth;
      ++cursor[depth];
      continue;
    }
    size_t d = cursor[depth];
    values[depth] = d;
    double f;
    if (depth == 0) {
      f = query.matrix(0).At(0, d);
    } else {
      f = query.matrix(depth).At(values[depth - 1], d);
    }
    freqs[depth] = f;
    if (f == 0) {
      ++cursor[depth];
      continue;
    }
    if (depth + 1 == n) {
      // Close the row with the last relation's vertical vector.
      double fn = query.matrix(n).At(d, 0);
      if (fn != 0) {
        JointFrequencyRow row;
        row.domain_values.assign(values.begin(), values.end());
        row.frequencies.assign(freqs.begin(), freqs.begin() +
                                                   static_cast<long>(n));
        row.frequencies.push_back(fn);
        table.rows_.push_back(std::move(row));
        if (table.rows_.size() > max_rows) {
          return Status::ResourceExhausted(
              "joint-frequency table exceeds max_rows=" +
              std::to_string(max_rows));
        }
      }
      ++cursor[depth];
    } else {
      ++depth;
      cursor[depth] = 0;
    }
  }
  return table;
}

double JointFrequencyTable::ResultSize() const {
  KahanSum acc;
  for (const auto& row : rows_) acc.Add(row.Product());
  return acc.Value();
}

}  // namespace hops
