#include "query/star_query.h"

#include "util/math.h"

namespace hops {

Result<StarQuery> StarQuery::Make(
    FrequencyTensor center, std::vector<std::vector<Frequency>> leaves) {
  if (center.rank() == 0) {
    return Status::InvalidArgument("star center must have rank >= 1");
  }
  if (leaves.size() != center.rank()) {
    return Status::InvalidArgument(
        "star query needs one leaf per center dimension: got " +
        std::to_string(leaves.size()) + " for rank " +
        std::to_string(center.rank()));
  }
  for (size_t d = 0; d < leaves.size(); ++d) {
    if (leaves[d].size() != center.shape()[d]) {
      return Status::InvalidArgument(
          "leaf " + std::to_string(d) + " has length " +
          std::to_string(leaves[d].size()) + " but center dimension has " +
          std::to_string(center.shape()[d]) + " values");
    }
    for (Frequency f : leaves[d]) {
      if (!(f >= 0)) {
        return Status::InvalidArgument("leaf frequencies must be >= 0");
      }
    }
  }
  return StarQuery(std::move(center), std::move(leaves));
}

Result<double> StarQuery::ExactResultSize() const {
  FrequencyTensor acc = center_;
  // Always contract dimension 0 of the shrinking tensor; after contracting
  // leaf d, former dimension d+1 becomes dimension 0... contract in order.
  for (size_t d = 0; d < leaves_.size(); ++d) {
    HOPS_ASSIGN_OR_RETURN(acc, acc.ContractDimension(0, leaves_[d]));
  }
  return acc.ScalarValue();
}

Result<double> StarQuery::EstimateResultSize(
    const Bucketization& center_buckets,
    std::span<const Bucketization> leaf_buckets,
    BucketAverageMode mode) const {
  if (leaf_buckets.size() != leaves_.size()) {
    return Status::InvalidArgument(
        "need one bucketization per leaf relation");
  }
  // Approximate center tensor.
  HOPS_ASSIGN_OR_RETURN(
      Histogram center_hist,
      Histogram::Make(center_.ToFrequencySet(), center_buckets));
  HOPS_ASSIGN_OR_RETURN(FrequencyTensor approx_center,
                        FrequencyTensor::Zero(center_.shape()));
  for (size_t flat = 0; flat < center_.num_cells(); ++flat) {
    approx_center.SetFlat(flat, center_hist.ApproxFrequency(flat, mode));
  }
  // Approximate leaves, then contract.
  FrequencyTensor acc = std::move(approx_center);
  for (size_t d = 0; d < leaves_.size(); ++d) {
    HOPS_ASSIGN_OR_RETURN(FrequencySet leaf_set,
                          FrequencySet::Make(leaves_[d]));
    HOPS_ASSIGN_OR_RETURN(Histogram leaf_hist,
                          Histogram::Make(std::move(leaf_set),
                                          leaf_buckets[d]));
    std::vector<Frequency> approx_leaf = leaf_hist.ApproximateFrequencies(
        mode);
    HOPS_ASSIGN_OR_RETURN(acc, acc.ContractDimension(0, approx_leaf));
  }
  return acc.ScalarValue();
}

Result<double> StarQuery::BruteForceResultSize() const {
  // Enumerate the joint index space with an odometer.
  const auto& shape = center_.shape();
  std::vector<size_t> idx(shape.size(), 0);
  KahanSum total;
  while (true) {
    double product = center_.At(idx);
    for (size_t d = 0; d < shape.size() && product != 0; ++d) {
      product *= leaves_[d][idx[d]];
    }
    total.Add(product);
    // Advance odometer.
    size_t d = shape.size();
    while (d > 0) {
      --d;
      if (++idx[d] < shape[d]) break;
      idx[d] = 0;
      if (d == 0) return total.Value();
    }
  }
}

}  // namespace hops
