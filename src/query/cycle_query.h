// Cyclic equality-join queries — the first item on the paper's future-work
// list ("identifying optimal histograms for completely different types of
// queries (e.g., cyclic joins ...)").
//
//   Q := (R0.a1 = R1.a1 and R1.a2 = R2.a2 and ... and R_{k}.a0 = R0.a0)
//
// Every relation is interior (two join attributes), the chain closes on
// itself, and the exact result size becomes the *trace* of the frequency-
// matrix product instead of a vector-bounded product:
//   S = tr(F0 * F1 * ... * Fk).
// The histogram machinery applies unchanged (bucketize each matrix's
// cells); the library provides the substrate so the open question can be
// studied empirically (see tests and the cyclic sweep in the experiments).

#pragma once

#include <span>
#include <vector>

#include "histogram/bucketization.h"
#include "histogram/histogram.h"
#include "stats/frequency_matrix.h"
#include "util/status.h"

namespace hops {

/// \brief A validated cycle query over frequency matrices.
class CycleQuery {
 public:
  CycleQuery() = default;

  /// Takes the per-relation matrices F0..Fk in cycle order. Adjacent inner
  /// dimensions must agree, and Fk's column count must match F0's row count
  /// (the closing join). At least two relations.
  static Result<CycleQuery> Make(std::vector<FrequencyMatrix> matrices);

  size_t num_relations() const { return matrices_.size(); }
  /// A cycle of n relations has n join predicates.
  size_t num_joins() const { return matrices_.size(); }

  const std::vector<FrequencyMatrix>& matrices() const { return matrices_; }
  const FrequencyMatrix& matrix(size_t j) const { return matrices_[j]; }

  /// Exact result size: trace of the matrix product.
  Result<double> ExactResultSize() const;

  /// Estimated size when relation j's cells are bucketized by
  /// \p bucketizations[j].
  Result<double> EstimateResultSize(
      std::span<const Bucketization> bucketizations,
      BucketAverageMode mode = BucketAverageMode::kExact) const;

  /// Brute-force size by enumerating the joint domain (tests only).
  Result<double> BruteForceResultSize() const;

 private:
  explicit CycleQuery(std::vector<FrequencyMatrix> matrices)
      : matrices_(std::move(matrices)) {}
  std::vector<FrequencyMatrix> matrices_;
};

}  // namespace hops
