#include "query/result_size.h"

#include <cmath>
#include <limits>

#include "histogram/matrix_histogram.h"

namespace hops {

Result<double> EstimateResultSize(
    const ChainQuery& query, std::span<const Bucketization> bucketizations,
    BucketAverageMode mode) {
  if (bucketizations.size() != query.num_relations()) {
    return Status::InvalidArgument(
        "need one bucketization per relation: got " +
        std::to_string(bucketizations.size()) + " for " +
        std::to_string(query.num_relations()) + " relations");
  }
  std::vector<FrequencyMatrix> approx;
  approx.reserve(query.num_relations());
  for (size_t j = 0; j < query.num_relations(); ++j) {
    HOPS_ASSIGN_OR_RETURN(
        MatrixHistogram mh,
        MatrixHistogram::Make(query.matrix(j), bucketizations[j]));
    HOPS_ASSIGN_OR_RETURN(FrequencyMatrix am, mh.ApproximateMatrix(mode));
    approx.push_back(std::move(am));
  }
  return ChainResultSize(approx);
}

Result<double> EstimateResultSizeFromMatrices(
    std::span<const FrequencyMatrix> approximate_matrices) {
  return ChainResultSize(approximate_matrices);
}

Result<SizeEstimate> EvaluateEstimate(
    const ChainQuery& query, std::span<const Bucketization> bucketizations,
    BucketAverageMode mode) {
  SizeEstimate out;
  HOPS_ASSIGN_OR_RETURN(out.exact, query.ExactResultSize());
  HOPS_ASSIGN_OR_RETURN(out.estimated,
                        EstimateResultSize(query, bucketizations, mode));
  out.error = out.exact - out.estimated;
  out.absolute_error = std::fabs(out.error);
  if (out.exact > 0) {
    out.relative_error = out.absolute_error / out.exact;
  } else {
    out.relative_error = out.estimated == 0
                             ? 0.0
                             : std::numeric_limits<double>::infinity();
  }
  return out;
}

std::vector<Result<SizeEstimate>> EvaluateEstimateBatch(
    const ChainQuery& query,
    std::span<const std::vector<Bucketization>> candidates,
    BucketAverageMode mode, ThreadPool* pool) {
  std::vector<Result<SizeEstimate>> results(
      candidates.size(),
      Result<SizeEstimate>(Status::Internal("not estimated")));
  if (candidates.empty()) return results;
  // The exact size S depends only on the query: compute it once, share it
  // across every candidate (the computation is deterministic, so this is
  // the same value a per-candidate recomputation would produce).
  Result<double> exact = query.ExactResultSize();
  if (!exact.ok()) {
    for (auto& r : results) r = exact.status();
    return results;
  }
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::Global();
  // Candidate evaluations are coarse (a MatrixHistogram build plus a chain
  // product each): grain 1. Each index writes only its own slot.
  p.ParallelFor(0, candidates.size(), 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      Result<double> estimated = EstimateResultSize(query, candidates[i], mode);
      if (!estimated.ok()) {
        results[i] = estimated.status();
        continue;
      }
      SizeEstimate out;
      out.exact = *exact;
      out.estimated = *estimated;
      out.error = out.exact - out.estimated;
      out.absolute_error = std::fabs(out.error);
      if (out.exact > 0) {
        out.relative_error = out.absolute_error / out.exact;
      } else {
        out.relative_error = out.estimated == 0
                                 ? 0.0
                                 : std::numeric_limits<double>::infinity();
      }
      results[i] = out;
    }
  });
  return results;
}

}  // namespace hops
