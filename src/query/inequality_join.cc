#include "query/inequality_join.h"

#include "util/math.h"

namespace hops {

const char* JoinComparisonToString(JoinComparison op) {
  switch (op) {
    case JoinComparison::kLess:
      return "<";
    case JoinComparison::kLessEqual:
      return "<=";
    case JoinComparison::kGreater:
      return ">";
    case JoinComparison::kGreaterEqual:
      return ">=";
    case JoinComparison::kNotEqual:
      return "!=";
    case JoinComparison::kEqual:
      return "=";
  }
  return "?";
}

Result<double> ThetaJoinSize(std::span<const Frequency> left,
                             std::span<const Frequency> right,
                             JoinComparison op) {
  if (left.size() != right.size()) {
    return Status::InvalidArgument(
        "theta join needs a shared domain: " + std::to_string(left.size()) +
        " vs " + std::to_string(right.size()) + " values");
  }
  for (Frequency f : left) {
    if (!(f >= 0)) return Status::InvalidArgument("negative frequency");
  }
  for (Frequency f : right) {
    if (!(f >= 0)) return Status::InvalidArgument("negative frequency");
  }
  const size_t m = left.size();
  // right_suffix[v] = sum_{w >= v} right[w]; computed once, every operator
  // below is a single pass.
  std::vector<double> right_suffix(m + 1, 0.0);
  for (size_t v = m; v-- > 0;) {
    right_suffix[v] = right_suffix[v + 1] + right[v];
  }
  KahanSum total;
  switch (op) {
    case JoinComparison::kLess:
      for (size_t u = 0; u < m; ++u) {
        total.Add(left[u] * right_suffix[u + 1]);
      }
      break;
    case JoinComparison::kLessEqual:
      for (size_t u = 0; u < m; ++u) {
        total.Add(left[u] * right_suffix[u]);
      }
      break;
    case JoinComparison::kGreater:
      for (size_t u = 0; u < m; ++u) {
        total.Add(left[u] * (right_suffix[0] - right_suffix[u]));
      }
      break;
    case JoinComparison::kGreaterEqual:
      for (size_t u = 0; u < m; ++u) {
        total.Add(left[u] * (right_suffix[0] - right_suffix[u + 1]));
      }
      break;
    case JoinComparison::kNotEqual:
      for (size_t u = 0; u < m; ++u) {
        total.Add(left[u] * (right_suffix[0] - right[u]));
      }
      break;
    case JoinComparison::kEqual:
      for (size_t u = 0; u < m; ++u) {
        total.Add(left[u] * right[u]);
      }
      break;
  }
  return total.Value();
}

}  // namespace hops
