// Estimated result sizes of chain queries under per-relation histograms.
//
// Given a bucketization of each relation's frequency matrix cells, the
// optimizer sees the *approximate* matrices (Section 2.3's histogram
// matrices) and computes the chain product over those. The error |S - S'| of
// that estimate is what the paper's experiments measure.

#pragma once

#include <span>
#include <vector>

#include "histogram/bucketization.h"
#include "histogram/histogram.h"
#include "query/chain_query.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace hops {

/// \brief Estimated size S' when relation j's matrix cells are bucketized by
/// \p bucketizations[j]. Requires one bucketization per relation with the
/// right item count.
Result<double> EstimateResultSize(
    const ChainQuery& query, std::span<const Bucketization> bucketizations,
    BucketAverageMode mode = BucketAverageMode::kExact);

/// \brief Estimated size S' from already-approximate matrices.
Result<double> EstimateResultSizeFromMatrices(
    std::span<const FrequencyMatrix> approximate_matrices);

/// \brief Both sizes and their errors for one query instance.
struct SizeEstimate {
  double exact = 0.0;        ///< S.
  double estimated = 0.0;    ///< S'.
  double error = 0.0;        ///< S - S' (signed).
  double absolute_error = 0.0;
  /// |S - S'| / S; 0 when S == 0 and S' == 0, infinity when only S == 0.
  double relative_error = 0.0;
};

/// \brief Convenience: computes exact and estimated size plus error metrics.
Result<SizeEstimate> EvaluateEstimate(
    const ChainQuery& query, std::span<const Bucketization> bucketizations,
    BucketAverageMode mode = BucketAverageMode::kExact);

/// \brief Evaluates many candidate bucketization sets against one query —
/// the inner loop of the paper's error experiments — fanning independent
/// evaluations across \p pool (nullptr = the global pool). The exact size S
/// is computed once and shared; each candidate's S' and errors are
/// bit-identical to a serial EvaluateEstimate call. Results align with
/// candidates; per-candidate failures do not abort the batch.
std::vector<Result<SizeEstimate>> EvaluateEstimateBatch(
    const ChainQuery& query,
    std::span<const std::vector<Bucketization>> candidates,
    BucketAverageMode mode = BucketAverageMode::kExact,
    ThreadPool* pool = nullptr);

}  // namespace hops
