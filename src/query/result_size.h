// Estimated result sizes of chain queries under per-relation histograms.
//
// Given a bucketization of each relation's frequency matrix cells, the
// optimizer sees the *approximate* matrices (Section 2.3's histogram
// matrices) and computes the chain product over those. The error |S - S'| of
// that estimate is what the paper's experiments measure.

#pragma once

#include <span>
#include <vector>

#include "histogram/bucketization.h"
#include "histogram/histogram.h"
#include "query/chain_query.h"
#include "util/status.h"

namespace hops {

/// \brief Estimated size S' when relation j's matrix cells are bucketized by
/// \p bucketizations[j]. Requires one bucketization per relation with the
/// right item count.
Result<double> EstimateResultSize(
    const ChainQuery& query, std::span<const Bucketization> bucketizations,
    BucketAverageMode mode = BucketAverageMode::kExact);

/// \brief Estimated size S' from already-approximate matrices.
Result<double> EstimateResultSizeFromMatrices(
    std::span<const FrequencyMatrix> approximate_matrices);

/// \brief Both sizes and their errors for one query instance.
struct SizeEstimate {
  double exact = 0.0;        ///< S.
  double estimated = 0.0;    ///< S'.
  double error = 0.0;        ///< S - S' (signed).
  double absolute_error = 0.0;
  /// |S - S'| / S; 0 when S == 0 and S' == 0, infinity when only S == 0.
  double relative_error = 0.0;
};

/// \brief Convenience: computes exact and estimated size plus error metrics.
Result<SizeEstimate> EvaluateEstimate(
    const ChainQuery& query, std::span<const Bucketization> bucketizations,
    BucketAverageMode mode = BucketAverageMode::kExact);

}  // namespace hops
