// Star (tree) equality-join queries via tensor contraction — the paper's
// Section 2.2 generalization beyond chains.
//
//   Q := (R0.a1 = C.a1 and R1.a2 = C.a2 and ... and R_{D-1}.aD = C.aD)
//
// The center relation C carries a D-dimensional frequency tensor over its D
// join attributes; each leaf Rj carries a frequency vector over attribute
// a_{j+1}'s domain. By (the tensor form of) Theorem 2.1 the result size is
// the full contraction of the center tensor with every leaf vector. Any tree
// query decomposes into such contractions bottom-up; the star is the
// primitive step.
//
// Histograms bucketize the center tensor's flattened cells exactly as they
// bucketize matrices, so every construction in histogram/builders.h applies
// unchanged — including the v-optimality result: the per-relation self-join
// optimum remains the right choice.

#pragma once

#include <vector>

#include "histogram/bucketization.h"
#include "histogram/histogram.h"
#include "stats/frequency_tensor.h"
#include "util/status.h"

namespace hops {

/// \brief A validated star query: one center tensor, one leaf vector per
/// center dimension.
class StarQuery {
 public:
  StarQuery() = default;

  /// \p leaves[d] joins the center's dimension d; its length must equal the
  /// center's extent in that dimension.
  static Result<StarQuery> Make(FrequencyTensor center,
                                std::vector<std::vector<Frequency>> leaves);

  size_t num_leaves() const { return leaves_.size(); }
  const FrequencyTensor& center() const { return center_; }
  const std::vector<Frequency>& leaf(size_t d) const { return leaves_[d]; }

  /// Exact result size: contract every dimension with its leaf.
  Result<double> ExactResultSize() const;

  /// Estimated result size when the center's cells are bucketized by
  /// \p center_buckets and each leaf d by \p leaf_buckets[d].
  Result<double> EstimateResultSize(
      const Bucketization& center_buckets,
      std::span<const Bucketization> leaf_buckets,
      BucketAverageMode mode = BucketAverageMode::kExact) const;

  /// Brute-force result size by enumerating the full joint index space —
  /// O(prod of extents); used to cross-check the contraction in tests.
  Result<double> BruteForceResultSize() const;

 private:
  StarQuery(FrequencyTensor center,
            std::vector<std::vector<Frequency>> leaves)
      : center_(std::move(center)), leaves_(std::move(leaves)) {}

  FrequencyTensor center_;
  std::vector<std::vector<Frequency>> leaves_;
};

}  // namespace hops
