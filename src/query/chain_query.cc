#include "query/chain_query.h"

namespace hops {

Result<ChainQuery> ChainQuery::Make(std::vector<FrequencyMatrix> matrices) {
  if (matrices.empty()) {
    return Status::InvalidArgument("chain query needs at least one relation");
  }
  if (matrices.front().rows() != 1) {
    return Status::InvalidArgument(
        "R0's frequency matrix must be a horizontal vector (1 x M1)");
  }
  if (matrices.back().cols() != 1) {
    return Status::InvalidArgument(
        "RN's frequency matrix must be a vertical vector (MN x 1)");
  }
  for (size_t j = 0; j + 1 < matrices.size(); ++j) {
    if (matrices[j].cols() != matrices[j + 1].rows()) {
      return Status::InvalidArgument(
          "join domain mismatch between relations " + std::to_string(j) +
          " and " + std::to_string(j + 1) + ": " +
          std::to_string(matrices[j].cols()) + " vs " +
          std::to_string(matrices[j + 1].rows()));
    }
  }
  return ChainQuery(std::move(matrices));
}

Result<double> ChainQuery::ExactResultSize() const {
  return ChainResultSize(matrices_);
}

Result<FrequencyMatrix> SelectionIndicatorVector(
    size_t domain_size, std::span<const size_t> selected_values,
    bool vertical) {
  if (domain_size == 0) {
    return Status::InvalidArgument("domain must be non-empty");
  }
  std::vector<Frequency> data(domain_size, 0.0);
  for (size_t v : selected_values) {
    if (v >= domain_size) {
      return Status::OutOfRange("selected value index " + std::to_string(v) +
                                " outside domain of size " +
                                std::to_string(domain_size));
    }
    data[v] = 1.0;
  }
  return vertical ? FrequencyMatrix::VerticalVector(std::move(data))
                  : FrequencyMatrix::HorizontalVector(std::move(data));
}

}  // namespace hops
