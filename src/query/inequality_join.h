// Non-equality joins — the paper's other open future-work query class.
//
// For two relations with frequency vectors f, g over *ordered* domains, the
// result size of R.a <op> S.b decomposes over value pairs:
//   S_< = sum_{u < v} f(u) g(v),   S_<= , S_> , S_>= analogous,
//   S_!= = |R| |S| - sum_v f(v) g(v)   (complement of the equi-join,
//                                       Section 6's # operator).
// All are computable in O(M) with prefix sums, both exactly and under
// histogram approximations (replace f, g by their bucket averages laid out
// in value order) — which is what lets the experiments measure how serial
// histograms fare on these operators.

#pragma once

#include <span>

#include "stats/frequency_set.h"
#include "util/status.h"

namespace hops {

/// \brief Comparison operator of the join predicate R.a <op> S.b.
enum class JoinComparison {
  kLess,
  kLessEqual,
  kGreater,
  kGreaterEqual,
  kNotEqual,
  kEqual,
};

const char* JoinComparisonToString(JoinComparison op);

/// \brief Result size of the theta-join of two frequency vectors over the
/// SAME ordered domain: position i of both spans is domain value i.
/// Fails if the spans' lengths differ or any frequency is negative.
Result<double> ThetaJoinSize(std::span<const Frequency> left,
                             std::span<const Frequency> right,
                             JoinComparison op);

}  // namespace hops
