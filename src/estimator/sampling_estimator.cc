#include "estimator/sampling_estimator.h"

#include <algorithm>
#include <unordered_map>

#include "util/math.h"
#include "util/random.h"

namespace hops {

Result<SamplingJoinEstimate> EstimateJoinSizeBySampling(
    const Relation& left, const std::string& column_left,
    const Relation& right, const std::string& column_right,
    const SamplingJoinOptions& options) {
  HOPS_ASSIGN_OR_RETURN(size_t lcol,
                        left.schema().ColumnIndex(column_left));
  HOPS_ASSIGN_OR_RETURN(size_t rcol,
                        right.schema().ColumnIndex(column_right));
  if (left.num_tuples() == 0 || right.num_tuples() == 0) {
    return SamplingJoinEstimate{};
  }
  if (options.left_sample == 0 || options.right_sample == 0) {
    return Status::InvalidArgument("sample sizes must be positive");
  }
  const size_t nl = std::min(options.left_sample, left.num_tuples());
  const size_t nr = std::min(options.right_sample, right.num_tuples());
  Rng rng(options.seed);
  std::vector<size_t> lrows =
      rng.SampleWithoutReplacement(left.num_tuples(), nl);
  std::vector<size_t> rrows =
      rng.SampleWithoutReplacement(right.num_tuples(), nr);

  std::unordered_map<Value, double, ValueHash> build;
  build.reserve(nl);
  for (size_t row : lrows) {
    build[left.tuple(row)[lcol]] += 1.0;
  }
  KahanSum matches;
  for (size_t row : rrows) {
    auto it = build.find(right.tuple(row)[rcol]);
    if (it != build.end()) matches.Add(it->second);
  }
  SamplingJoinEstimate out;
  out.sample_matches = matches.Value();
  out.left_sampled = nl;
  out.right_sampled = nr;
  const double scale =
      (static_cast<double>(left.num_tuples()) / static_cast<double>(nl)) *
      (static_cast<double>(right.num_tuples()) / static_cast<double>(nr));
  out.estimate = out.sample_matches * scale;
  return out;
}

std::vector<Result<SamplingJoinEstimate>> EstimateJoinSizesBySampling(
    std::span<const SamplingJoinRequest> requests, ThreadPool* pool) {
  std::vector<Result<SamplingJoinEstimate>> results(
      requests.size(),
      Result<SamplingJoinEstimate>(Status::Internal("not estimated")));
  if (requests.empty()) return results;
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::Global();
  // Sampling joins are coarse units of work (two sample draws plus a hash
  // join per request): grain 1, one request per task. Each request owns its
  // seeded Rng and its results slot, so any pool size matches a serial loop
  // bit for bit.
  p.ParallelFor(0, requests.size(), 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const SamplingJoinRequest& req = requests[i];
      if (req.left == nullptr || req.right == nullptr) {
        results[i] = Status::InvalidArgument(
            "sampling join request " + std::to_string(i) +
            " has a null relation");
        continue;
      }
      results[i] =
          EstimateJoinSizeBySampling(*req.left, req.column_left, *req.right,
                                     req.column_right, req.options);
    }
  });
  return results;
}

}  // namespace hops
