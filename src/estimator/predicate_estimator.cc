#include "estimator/predicate_estimator.h"

#include <algorithm>
#include <limits>

#include "engine/joint_statistics.h"
#include "estimator/selectivity.h"
#include "estimator/serving.h"

namespace hops {

namespace {

// Bounds of a single ordered comparison; ok() only for ordered operators.
Result<RangeBounds> OrderedComparisonBounds(const Comparison& cmp) {
  if (!cmp.literal.is_int64()) {
    return Status::InvalidArgument(
        "ordered comparison on column '" + cmp.column +
        "' needs an int64 literal");
  }
  const int64_t v = cmp.literal.AsInt64();
  switch (cmp.op) {
    case PredicateOp::kLess:
      return RangeBounds{std::numeric_limits<int64_t>::min(), v, true, false};
    case PredicateOp::kLessEqual:
      return RangeBounds{std::numeric_limits<int64_t>::min(), v, true, true};
    case PredicateOp::kGreater:
      return RangeBounds{v, std::numeric_limits<int64_t>::max(), false, true};
    case PredicateOp::kGreaterEqual:
      return RangeBounds{v, std::numeric_limits<int64_t>::max(), true, true};
    default:
      return Status::Internal("unhandled comparison operator");
  }
}

// Cardinality of a single comparison from its column statistics.
Result<double> ComparisonCardinality(const ColumnStatistics& stats,
                                     const Comparison& cmp) {
  switch (cmp.op) {
    case PredicateOp::kEqual:
      return EstimateEqualitySelection(stats, cmp.literal);
    case PredicateOp::kNotEqual:
      return EstimateNotEqualsSelection(stats, cmp.literal);
    case PredicateOp::kIn:
      return EstimateDisjunctiveSelection(stats, cmp.in_list);
    default:
      break;
  }
  HOPS_ASSIGN_OR_RETURN(RangeBounds bounds, OrderedComparisonBounds(cmp));
  return EstimateRangeSelection(stats, bounds);
}

// Compiled twin of the above — same dispatch, serving-layer estimators.
Result<double> ComparisonCardinality(const CompiledColumnStats& stats,
                                     const Comparison& cmp) {
  switch (cmp.op) {
    case PredicateOp::kEqual:
      return EstimateEqualitySelection(stats, cmp.literal);
    case PredicateOp::kNotEqual:
      return EstimateNotEqualsSelection(stats, cmp.literal);
    case PredicateOp::kIn:
      return EstimateDisjunctiveSelection(stats, cmp.in_list);
    default:
      break;
  }
  HOPS_ASSIGN_OR_RETURN(RangeBounds bounds, OrderedComparisonBounds(cmp));
  return EstimateRangeSelection(stats, bounds);
}

}  // namespace

Result<double> EstimatePredicateCardinality(const Catalog& catalog,
                                            const std::string& table,
                                            const Predicate& predicate) {
  if (predicate.empty()) {
    return Status::InvalidArgument("empty predicate");
  }
  const auto& comparisons = predicate.comparisons();
  std::vector<bool> consumed(comparisons.size(), false);

  double relation_size = -1.0;
  double cardinality = -1.0;  // running estimate, starts at first factor
  auto apply_factor = [&](double count) {
    if (cardinality < 0) {
      cardinality = count;
    } else {
      // Independence: multiply by the factor's selectivity.
      cardinality *= relation_size > 0 ? count / relation_size : 0.0;
    }
  };

  // First pass: equality pairs served by joint statistics.
  for (size_t i = 0; i < comparisons.size(); ++i) {
    if (consumed[i] || comparisons[i].op != PredicateOp::kEqual) continue;
    for (size_t j = i + 1; j < comparisons.size(); ++j) {
      if (consumed[j] || comparisons[j].op != PredicateOp::kEqual) continue;
      auto joint = catalog.GetColumnStatistics(
          table, JointStatisticsColumnKey(comparisons[i].column,
                                          comparisons[j].column));
      if (!joint.ok()) {
        joint = catalog.GetColumnStatistics(
            table, JointStatisticsColumnKey(comparisons[j].column,
                                            comparisons[i].column));
        if (joint.ok()) {
          // Stored with swapped roles: swap the probe order too.
          if (relation_size < 0) relation_size = joint->num_tuples;
          apply_factor(EstimateConjunctiveEquality(
              *joint, comparisons[j].literal, comparisons[i].literal));
          consumed[i] = consumed[j] = true;
          break;
        }
        continue;
      }
      if (relation_size < 0) relation_size = joint->num_tuples;
      apply_factor(EstimateConjunctiveEquality(
          *joint, comparisons[i].literal, comparisons[j].literal));
      consumed[i] = consumed[j] = true;
      break;
    }
  }

  // Second pass: the remaining comparisons, independently.
  for (size_t i = 0; i < comparisons.size(); ++i) {
    if (consumed[i]) continue;
    HOPS_ASSIGN_OR_RETURN(
        ColumnStatistics stats,
        catalog.GetColumnStatistics(table, comparisons[i].column));
    if (relation_size < 0) relation_size = stats.num_tuples;
    HOPS_ASSIGN_OR_RETURN(double count,
                          ComparisonCardinality(stats, comparisons[i]));
    apply_factor(count);
  }
  return std::max(0.0, cardinality);
}

Result<double> EstimatePredicateCardinality(const CatalogSnapshot& snapshot,
                                            const std::string& table,
                                            const Predicate& predicate) {
  if (predicate.empty()) {
    return Status::InvalidArgument("empty predicate");
  }
  const auto& comparisons = predicate.comparisons();
  std::vector<bool> consumed(comparisons.size(), false);

  double relation_size = -1.0;
  double cardinality = -1.0;  // running estimate, starts at first factor
  auto apply_factor = [&](double count) {
    if (cardinality < 0) {
      cardinality = count;
    } else {
      // Independence: multiply by the factor's selectivity.
      cardinality *= relation_size > 0 ? count / relation_size : 0.0;
    }
  };

  // First pass: equality pairs served by joint statistics. Pairing order
  // matches the Catalog overload exactly so the factor association (and
  // therefore the floating-point result) is identical.
  for (size_t i = 0; i < comparisons.size(); ++i) {
    if (consumed[i] || comparisons[i].op != PredicateOp::kEqual) continue;
    for (size_t j = i + 1; j < comparisons.size(); ++j) {
      if (consumed[j] || comparisons[j].op != PredicateOp::kEqual) continue;
      auto joint = snapshot.Resolve(
          table, JointStatisticsColumnKey(comparisons[i].column,
                                          comparisons[j].column));
      if (!joint.ok()) {
        joint = snapshot.Resolve(
            table, JointStatisticsColumnKey(comparisons[j].column,
                                            comparisons[i].column));
        if (joint.ok()) {
          // Stored with swapped roles: swap the probe order too.
          const CompiledColumnStats& js = snapshot.stats(*joint);
          if (relation_size < 0) relation_size = js.num_tuples;
          apply_factor(EstimateConjunctiveEquality(
              js, comparisons[j].literal, comparisons[i].literal));
          consumed[i] = consumed[j] = true;
          break;
        }
        continue;
      }
      const CompiledColumnStats& js = snapshot.stats(*joint);
      if (relation_size < 0) relation_size = js.num_tuples;
      apply_factor(EstimateConjunctiveEquality(
          js, comparisons[i].literal, comparisons[j].literal));
      consumed[i] = consumed[j] = true;
      break;
    }
  }

  // Second pass: the remaining comparisons, independently.
  for (size_t i = 0; i < comparisons.size(); ++i) {
    if (consumed[i]) continue;
    HOPS_ASSIGN_OR_RETURN(ColumnId id,
                          snapshot.Resolve(table, comparisons[i].column));
    const CompiledColumnStats& stats = snapshot.stats(id);
    if (relation_size < 0) relation_size = stats.num_tuples;
    HOPS_ASSIGN_OR_RETURN(double count,
                          ComparisonCardinality(stats, comparisons[i]));
    apply_factor(count);
  }
  return std::max(0.0, cardinality);
}

}  // namespace hops
