// Snapshot-based estimation serving (DESIGN.md §7 "Serving path").
//
// These are the entry points an optimizer hits thousands of times per
// workload. They operate on a CatalogSnapshot (engine/catalog_snapshot.h):
// statistics are already decoded and compiled, columns are addressed by
// dense interned ids, and the whole snapshot is immutable — so estimates
// are lock-free, allocation-light, and safe to fan across threads.
//
// Determinism contract: every function here is bit-identical to its
// Catalog/ColumnStatistics counterpart in selectivity.h / join_estimator.h
// on the same statistics. The serving layer changes the data layout and the
// asymptotics (O(log n) range lookups via compiled prefix sums), never the
// estimate. bench/bench_estimation.cc enforces this with a fingerprint
// check against the frozen linear-scan reference.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "engine/catalog_snapshot.h"
#include "engine/value.h"
#include "estimator/join_estimator.h"
#include "estimator/selectivity.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace hops {

/// \brief Estimated |sigma_{col = value}(R)| — binary search on the dense
/// compiled key array.
double EstimateEqualitySelection(const CompiledColumnStats& stats,
                                 const Value& value);

/// \brief Estimated |sigma_{col != value}(R)|.
double EstimateNotEqualsSelection(const CompiledColumnStats& stats,
                                  const Value& value);

/// \brief Estimated disjunctive selection (col IN (...)); duplicates are
/// counted once (stack-friendly sort-unique, first-occurrence order).
double EstimateDisjunctiveSelection(const CompiledColumnStats& stats,
                                    std::span<const Value> values);

/// \brief Estimated range selection: two binary searches bound the explicit
/// span; its mass is a prefix-sum difference when the histogram's
/// prefix_exact() fast path is valid (O(log n) total), and a Kahan scan of
/// just the in-range entries otherwise (O(log n + k)).
Result<double> EstimateRangeSelection(const CompiledColumnStats& stats,
                                      const RangeBounds& bounds);

/// \brief Estimated |R ⋈ S| from both sides' compiled histograms — the same
/// sorted-merge as the CatalogHistogram version over the denser
/// struct-of-arrays layout.
double EstimateEquiJoinSize(const CompiledColumnStats& left,
                            const CompiledColumnStats& right);

/// \brief What a single batched estimate computes.
enum class EstimateKind {
  kEquality,     ///< column = literal
  kNotEquals,    ///< column != literal
  kDisjunctive,  ///< column IN (in_list)
  kRange,        ///< bounds.low (<|<=) column (<|<=) bounds.high
  kJoin,         ///< join_left ⋈ join_right (single equi-join)
  kChain,        ///< chain of equi-joins over `chain`
};

/// \brief One estimate of a mixed batch, fully resolved against a snapshot
/// (ids, not names — resolve once per plan with CatalogSnapshot::Resolve /
/// ResolveChain).
struct EstimateSpec {
  EstimateKind kind = EstimateKind::kEquality;
  ColumnId column = 0;                   ///< equality / not-equals / in / range
  Value literal;                         ///< equality / not-equals
  std::vector<Value> in_list;            ///< disjunctive
  RangeBounds bounds;                    ///< range
  ColumnId join_left = 0;                ///< join
  ColumnId join_right = 0;               ///< join
  std::vector<SnapshotChainStep> chain;  ///< chain

  static EstimateSpec Equality(ColumnId column, Value literal);
  static EstimateSpec NotEquals(ColumnId column, Value literal);
  static EstimateSpec In(ColumnId column, std::vector<Value> in_list);
  static EstimateSpec Range(ColumnId column, RangeBounds bounds);
  static EstimateSpec Join(ColumnId left, ColumnId right);
  static EstimateSpec Chain(std::vector<SnapshotChainStep> steps);
};

namespace internal {

/// Multi-probe Eytzinger search kernels — the heart of the §12 batched fast
/// lane. Compute out[i] = h.LowerBound(needles[i]) (resp. UpperBound) by
/// walking kProbeLanes interleaved fixed-depth Eytzinger descents per loop
/// iteration with a per-level prefetch, so independent probes hide each
/// other's cache misses (one lone branchy search per probe cannot: its
/// loads are a serialized dependency chain). Bit-identical indices by
/// construction; exposed for tests and bench_estimation's
/// eytzinger_vs_lower_bound sweep.
void MultiProbeLowerBounds(const CompiledHistogram& histogram,
                           std::span<const int64_t> needles, size_t* out);
void MultiProbeUpperBounds(const CompiledHistogram& histogram,
                           std::span<const int64_t> needles, size_t* out);

}  // namespace internal

/// \brief Runs one spec against \p snapshot. InvalidArgument on ids outside
/// the snapshot or malformed specs. Always computes from the compiled
/// statistics — the memoized fast lane (snapshot.estimate_cache()) is
/// consulted only by EstimateBatch, keeping this the uncached reference.
Result<double> EstimateOne(const CatalogSnapshot& snapshot,
                           const EstimateSpec& spec);

/// \brief Batched estimation: runs every spec against the (immutable)
/// snapshot, fanning independent estimates across \p pool (nullptr = the
/// global pool). Results align with specs; per-spec failures do not abort
/// the batch. Bit-identical to a serial EstimateOne loop at any pool size
/// (each index is computed independently — the thread pool's determinism
/// contract, DESIGN.md §6).
///
/// This is the batched probe fast lane (DESIGN.md §12): point and range
/// specs are grouped by column and routed through the interleaved Eytzinger
/// multi-probe kernel; exactly-keyable specs are memoized in the snapshot's
/// EstimateCache (hits return the exact bits the miss path computed, so the
/// determinism contract is unaffected); identical chain specs within one
/// batch are estimated once. Telemetry: hops_estimate_cache_{hits,misses}_
/// total, aggregated per batch.
std::vector<Result<double>> EstimateBatch(const CatalogSnapshot& snapshot,
                                          std::span<const EstimateSpec> specs,
                                          ThreadPool* pool = nullptr);

/// \brief One column's share of an observed estimation outcome, carrying
/// enough predicate shape for the self-tuning layer (refresh/self_tuner.h)
/// to know *where* in the value domain the error happened — an ST-histogram
/// update needs the probed point or range, not just the error magnitude.
struct PredicateOutcome {
  EstimateKind kind = EstimateKind::kEquality;
  /// Closed value interval the predicate touched on this column, when the
  /// spec pins one down (equality/not-equals: lo == hi == the literal's
  /// catalog key; range: the normalized closed bounds). Joins, IN-lists and
  /// chains report has_range == false — their error is not attributable to
  /// one interval.
  bool has_range = false;
  int64_t lo = 0;
  int64_t hi = 0;
  double estimated = 0.0;
  double actual = 0.0;
};

/// \brief Receiver of observed estimation outcomes — the serving layer's
/// feedback hook into the adaptive refresh subsystem (src/refresh/,
/// DESIGN.md §8). Callers that later learn a query's true result size
/// report (estimated, actual) per column; the refresh subsystem's
/// StalenessAdvisor folds an EWMA of the relative error into its rebuild
/// priority, and the SelfTuner folds the predicate-shaped form into
/// in-place histogram adjustments, closing the query-feedback loop of
/// self-tuning histograms. Implementations must be thread-safe: estimates
/// (and therefore reports) fan across threads.
class EstimationFeedbackSink {
 public:
  virtual ~EstimationFeedbackSink() = default;

  /// Reports one observed outcome for (table, column). \p estimated is the
  /// served estimate, \p actual the true result size once known.
  virtual void ReportEstimationError(std::string_view table,
                                     std::string_view column,
                                     double estimated, double actual) = 0;

  /// Predicate-shaped form of the same report. The default implementation
  /// forwards to ReportEstimationError, so sinks that only care about the
  /// error magnitude need not override it; the self-tuning refresh manager
  /// overrides it to route the predicate interval into its tuner.
  virtual void ReportPredicateOutcome(std::string_view table,
                                      std::string_view column,
                                      const PredicateOutcome& outcome) {
    ReportEstimationError(table, column, outcome.estimated, outcome.actual);
  }
};

/// \brief Maps \p spec back to the columns it consulted (selection column,
/// both join sides, every chain step) via the snapshot's interned names and
/// reports the outcome to \p sink once per distinct column (through
/// ReportPredicateOutcome, so predicate-aware sinks see the probed
/// interval). InvalidArgument on a null sink, ids outside the snapshot, or
/// non-finite / negative estimated/actual — invalid magnitudes must be
/// rejected at this boundary, before they can poison any sink's q-error
/// EWMA.
Status ReportEstimateOutcome(const CatalogSnapshot& snapshot,
                             const EstimateSpec& spec, double estimated,
                             double actual, EstimationFeedbackSink* sink);

}  // namespace hops
