// Run-time sampling-based join-size estimation — the third technique family
// of Section 1 (Haas & Swami; Lipton, Naughton & Schneider). "Sampling is
// quite expensive and, therefore, its practicality is questionable ...
// Nevertheless, it often results in highly accurate estimates even in a
// high-update environment and avoids storing any statistical information."
// Implemented so the experiments can put numbers on that trade-off against
// catalog histograms.

#pragma once

#include <cstdint>
#include <string>

#include "engine/relation.h"
#include "util/status.h"

namespace hops {

/// \brief Controls for cross-sample join estimation.
struct SamplingJoinOptions {
  size_t left_sample = 200;
  size_t right_sample = 200;
  uint64_t seed = 0x5a31;
};

/// \brief Estimate and its precision statistics.
struct SamplingJoinEstimate {
  double estimate = 0.0;      ///< Scaled cross-sample join count.
  double sample_matches = 0;  ///< Raw matches between the two samples.
  size_t left_sampled = 0;
  size_t right_sampled = 0;
};

/// \brief Estimates |R ⋈ S| on R.column_left = S.column_right by joining
/// uniform samples of both sides and scaling by the inverse sampling
/// fractions (unbiased: every matching tuple pair survives into the sample
/// join with probability (n_l/N_l)(n_r/N_r)).
Result<SamplingJoinEstimate> EstimateJoinSizeBySampling(
    const Relation& left, const std::string& column_left,
    const Relation& right, const std::string& column_right,
    const SamplingJoinOptions& options = {});

}  // namespace hops
