// Run-time sampling-based join-size estimation — the third technique family
// of Section 1 (Haas & Swami; Lipton, Naughton & Schneider). "Sampling is
// quite expensive and, therefore, its practicality is questionable ...
// Nevertheless, it often results in highly accurate estimates even in a
// high-update environment and avoids storing any statistical information."
// Implemented so the experiments can put numbers on that trade-off against
// catalog histograms.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "engine/relation.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace hops {

/// \brief Controls for cross-sample join estimation.
struct SamplingJoinOptions {
  size_t left_sample = 200;
  size_t right_sample = 200;
  uint64_t seed = 0x5a31;
};

/// \brief Estimate and its precision statistics.
struct SamplingJoinEstimate {
  double estimate = 0.0;      ///< Scaled cross-sample join count.
  double sample_matches = 0;  ///< Raw matches between the two samples.
  size_t left_sampled = 0;
  size_t right_sampled = 0;
};

/// \brief Estimates |R ⋈ S| on R.column_left = S.column_right by joining
/// uniform samples of both sides and scaling by the inverse sampling
/// fractions (unbiased: every matching tuple pair survives into the sample
/// join with probability (n_l/N_l)(n_r/N_r)).
Result<SamplingJoinEstimate> EstimateJoinSizeBySampling(
    const Relation& left, const std::string& column_left,
    const Relation& right, const std::string& column_right,
    const SamplingJoinOptions& options = {});

/// \brief One join of a batched sampling request. The relations must
/// outlive the batch call.
struct SamplingJoinRequest {
  const Relation* left = nullptr;
  std::string column_left;
  const Relation* right = nullptr;
  std::string column_right;
  SamplingJoinOptions options;
};

/// \brief Runs every request, fanning independent estimates across \p pool
/// (nullptr = the global pool). Each request draws from its own seeded Rng,
/// so results are bit-identical to a serial loop at any pool size. Results
/// align with requests; per-request failures do not abort the batch.
std::vector<Result<SamplingJoinEstimate>> EstimateJoinSizesBySampling(
    std::span<const SamplingJoinRequest> requests, ThreadPool* pool = nullptr);

}  // namespace hops
