// Cardinality estimation for conjunctive predicates from catalog
// statistics: per-comparison selectivities from the column histograms,
// combined under the classical attribute-independence assumption (unless a
// joint statistic for a column pair is available in the catalog, in which
// case equality pairs use it — correlation-aware, Muralikrishna & DeWitt
// style).

#pragma once

#include <string>

#include "engine/catalog.h"
#include "engine/catalog_snapshot.h"
#include "engine/predicate.h"
#include "util/status.h"

namespace hops {

/// \brief Estimated |sigma_predicate(table)|.
///
/// Every referenced column needs statistics in the catalog. Equality pairs
/// over columns (a, b) with joint statistics stored under "a+b" are
/// estimated jointly; every remaining comparison contributes an independent
/// selectivity factor. Ordered comparisons require int64 columns.
Result<double> EstimatePredicateCardinality(const Catalog& catalog,
                                            const std::string& table,
                                            const Predicate& predicate);

/// \brief As above, over a compiled snapshot (estimator/serving.h): same
/// joint-statistics pairing and factor order, so the estimate is
/// bit-identical to the Catalog overload on the same statistics, with zero
/// histogram decodes per call.
Result<double> EstimatePredicateCardinality(const CatalogSnapshot& snapshot,
                                            const std::string& table,
                                            const Predicate& predicate);

}  // namespace hops
