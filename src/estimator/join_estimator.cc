#include "estimator/join_estimator.h"

#include "estimator/selectivity.h"
#include "estimator/serving.h"

namespace hops {

Result<ChainJoinEstimateDetail> ExplainChainJoinSize(
    const Catalog& catalog, std::span<const ChainJoinSpec> specs) {
  if (specs.size() < 2) {
    return Status::InvalidArgument("chain join needs at least two relations");
  }
  if (!specs.front().left_column.empty() ||
      !specs.back().right_column.empty()) {
    return Status::InvalidArgument(
        "first/last chain relations must not declare outer join columns");
  }
  ChainJoinEstimateDetail detail;
  double running = 0.0;
  double prev_relation_size = 0.0;
  for (size_t i = 0; i + 1 < specs.size(); ++i) {
    const std::string& left_col = specs[i].right_column;
    const std::string& right_col = specs[i + 1].left_column;
    if (left_col.empty() || right_col.empty()) {
      return Status::InvalidArgument(
          "interior join columns must be non-empty (join " +
          std::to_string(i) + ")");
    }
    HOPS_ASSIGN_OR_RETURN(
        ColumnStatistics ls,
        catalog.GetColumnStatistics(specs[i].table, left_col));
    HOPS_ASSIGN_OR_RETURN(
        ColumnStatistics rs,
        catalog.GetColumnStatistics(specs[i + 1].table, right_col));
    double pairwise = EstimateEquiJoinSize(ls, rs);
    detail.pairwise_sizes.push_back(pairwise);
    if (i == 0) {
      running = pairwise;
    } else {
      // Attribute independence: the intermediate result keeps the previous
      // relation's distribution on the next join attribute, scaled by how
      // much of that relation survived.
      double scale =
          prev_relation_size > 0 ? running / prev_relation_size : 0.0;
      running = pairwise * scale;
    }
    // The next iteration scales by relation i+1's size (the right side of
    // this join becomes the left side of the next one).
    prev_relation_size = rs.num_tuples;
    detail.running_sizes.push_back(running);
  }
  detail.final_size = running;
  return detail;
}

Result<double> EstimateChainJoinSize(const Catalog& catalog,
                                     std::span<const ChainJoinSpec> specs) {
  HOPS_ASSIGN_OR_RETURN(ChainJoinEstimateDetail detail,
                        ExplainChainJoinSize(catalog, specs));
  return detail.final_size;
}

Result<std::vector<SnapshotChainStep>> ResolveChain(
    const CatalogSnapshot& snapshot, std::span<const ChainJoinSpec> specs) {
  if (specs.size() < 2) {
    return Status::InvalidArgument("chain join needs at least two relations");
  }
  if (!specs.front().left_column.empty() ||
      !specs.back().right_column.empty()) {
    return Status::InvalidArgument(
        "first/last chain relations must not declare outer join columns");
  }
  std::vector<SnapshotChainStep> steps;
  steps.reserve(specs.size() - 1);
  for (size_t i = 0; i + 1 < specs.size(); ++i) {
    const std::string& left_col = specs[i].right_column;
    const std::string& right_col = specs[i + 1].left_column;
    if (left_col.empty() || right_col.empty()) {
      return Status::InvalidArgument(
          "interior join columns must be non-empty (join " +
          std::to_string(i) + ")");
    }
    SnapshotChainStep step;
    HOPS_ASSIGN_OR_RETURN(step.left,
                          snapshot.Resolve(specs[i].table, left_col));
    HOPS_ASSIGN_OR_RETURN(step.right,
                          snapshot.Resolve(specs[i + 1].table, right_col));
    steps.push_back(step);
  }
  return steps;
}

Result<ChainJoinEstimateDetail> ExplainChainJoinSize(
    const CatalogSnapshot& snapshot,
    std::span<const SnapshotChainStep> steps) {
  if (steps.empty()) {
    return Status::InvalidArgument("chain join needs at least one join step");
  }
  for (const SnapshotChainStep& step : steps) {
    if (step.left >= snapshot.num_columns() ||
        step.right >= snapshot.num_columns()) {
      return Status::InvalidArgument(
          "chain step references a column id outside the snapshot");
    }
  }
  // Same arithmetic, double for double, as the Catalog overload above —
  // only the statistics lookup changed (dense ids, compiled histograms).
  ChainJoinEstimateDetail detail;
  double running = 0.0;
  double prev_relation_size = 0.0;
  for (size_t i = 0; i < steps.size(); ++i) {
    const CompiledColumnStats& ls = snapshot.stats(steps[i].left);
    const CompiledColumnStats& rs = snapshot.stats(steps[i].right);
    double pairwise = EstimateEquiJoinSize(ls, rs);
    detail.pairwise_sizes.push_back(pairwise);
    if (i == 0) {
      running = pairwise;
    } else {
      double scale =
          prev_relation_size > 0 ? running / prev_relation_size : 0.0;
      running = pairwise * scale;
    }
    prev_relation_size = rs.num_tuples;
    detail.running_sizes.push_back(running);
  }
  detail.final_size = running;
  return detail;
}

Result<double> EstimateChainJoinSize(const CatalogSnapshot& snapshot,
                                     std::span<const SnapshotChainStep> steps) {
  HOPS_ASSIGN_OR_RETURN(ChainJoinEstimateDetail detail,
                        ExplainChainJoinSize(snapshot, steps));
  return detail.final_size;
}

}  // namespace hops
