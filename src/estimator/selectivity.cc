#include "estimator/selectivity.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "histogram/tuning.h"
#include "util/math.h"

namespace hops {

double EstimateEqualitySelection(const ColumnStatistics& stats,
                                 const Value& value) {
  return stats.histogram.LookupFrequency(CatalogKeyFor(value));
}

double EstimateNotEqualsSelection(const ColumnStatistics& stats,
                                  const Value& value) {
  double eq = EstimateEqualitySelection(stats, value);
  return std::max(0.0, stats.num_tuples - eq);
}

size_t UniqueCatalogKeysFirstOccurrence(std::span<const Value> values,
                                        int64_t* out) {
  // Sort-unique over (key, position) pairs: sort once, keep the smallest
  // position of every key run, then restore first-occurrence order by
  // sorting the survivors on position. Two sorts of a small span beat a
  // heap-allocating hash set on every optimizer probe; spans up to kInline
  // never touch the heap.
  constexpr size_t kInline = 64;
  using KeyAt = std::pair<int64_t, uint32_t>;
  KeyAt inline_buffer[kInline];
  std::vector<KeyAt> heap_buffer;
  KeyAt* keyed = inline_buffer;
  if (values.size() > kInline) {
    heap_buffer.resize(values.size());
    keyed = heap_buffer.data();
  }
  for (size_t i = 0; i < values.size(); ++i) {
    keyed[i] = {CatalogKeyFor(values[i]), static_cast<uint32_t>(i)};
  }
  std::sort(keyed, keyed + values.size());
  // Equal keys sort by ascending position, so the first element of every
  // run is the key's first occurrence.
  size_t unique = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i == 0 || keyed[i].first != keyed[i - 1].first) {
      keyed[unique++] = keyed[i];
    }
  }
  std::sort(keyed, keyed + unique,
            [](const KeyAt& a, const KeyAt& b) { return a.second < b.second; });
  for (size_t i = 0; i < unique; ++i) out[i] = keyed[i].first;
  return unique;
}

double EstimateDisjunctiveSelection(const ColumnStatistics& stats,
                                    std::span<const Value> values) {
  constexpr size_t kInline = 64;
  int64_t inline_keys[kInline];
  std::vector<int64_t> heap_keys;
  int64_t* keys = inline_keys;
  if (values.size() > kInline) {
    heap_keys.resize(values.size());
    keys = heap_keys.data();
  }
  const size_t unique = UniqueCatalogKeysFirstOccurrence(values, keys);
  KahanSum total;
  for (size_t i = 0; i < unique; ++i) {
    total.Add(stats.histogram.LookupFrequency(keys[i]));
  }
  return total.Value();
}

namespace internal {

double FinishRangeEstimate(double num_tuples, int64_t min_value,
                           int64_t max_value, double default_frequency,
                           uint64_t num_default_values, int64_t lo, int64_t hi,
                           int64_t explicit_in_range, KahanSum total) {
  return FinishRangeEstimate(num_tuples, min_value, max_value,
                             default_frequency, num_default_values, lo, hi,
                             explicit_in_range, total, nullptr);
}

double FinishRangeEstimate(double num_tuples, int64_t min_value,
                           int64_t max_value, double default_frequency,
                           uint64_t num_default_values, int64_t lo, int64_t hi,
                           int64_t explicit_in_range, KahanSum total,
                           const BucketRefinementTree* refinement) {
  // Default-bucket contribution: default values assumed uniformly spread
  // over the column's [min, max] domain — unless a self-tuning refinement
  // tree has learned a better intra-bucket density from range feedback. A
  // still-uniform tree falls back to the historical arithmetic so an
  // installed-but-untouched tree stays bit-identical to no tree.
  if (num_default_values > 0 && max_value >= min_value) {
    const double domain_span =
        static_cast<double>(max_value - min_value) + 1.0;
    const int64_t clamped_lo = std::max(lo, min_value);
    const int64_t clamped_hi = std::min(hi, max_value);
    if (clamped_lo <= clamped_hi) {
      const double overlap =
          static_cast<double>(clamped_hi - clamped_lo) + 1.0;
      double values_in_range;
      if (refinement != nullptr && !refinement->IsUniform()) {
        values_in_range =
            static_cast<double>(num_default_values) *
            refinement->FractionInRange(clamped_lo, clamped_hi);
      } else {
        values_in_range =
            static_cast<double>(num_default_values) * overlap / domain_span;
      }
      // Do not double count the explicit values already summed.
      values_in_range = std::min(
          values_in_range,
          std::max(0.0, overlap - static_cast<double>(explicit_in_range)));
      total.Add(values_in_range * default_frequency);
    }
  }
  return std::min(total.Value(), num_tuples);
}

}  // namespace internal

Result<double> EstimateRangeSelection(const ColumnStatistics& stats,
                                      const RangeBounds& bounds) {
  // Normalize to a closed interval [lo, hi].
  int64_t lo = bounds.low + (bounds.include_low ? 0 : 1);
  int64_t hi = bounds.high - (bounds.include_high ? 0 : 1);
  if (lo > hi) return 0.0;

  // The explicit entries are sorted by value: two binary searches bound the
  // in-range span, and only its entries are summed (same ascending order and
  // accumulator as the linear reference -> bit-identical).
  const auto& entries = stats.histogram.explicit_entries();
  auto begin = std::lower_bound(
      entries.begin(), entries.end(), lo,
      [](const auto& entry, int64_t v) { return entry.first < v; });
  auto end = std::upper_bound(
      entries.begin(), entries.end(), hi,
      [](int64_t v, const auto& entry) { return v < entry.first; });
  KahanSum total;
  int64_t explicit_in_range = 0;
  for (auto it = begin; it != end; ++it) {
    total.Add(it->second);
    ++explicit_in_range;
  }
  return internal::FinishRangeEstimate(
      stats.num_tuples, stats.min_value, stats.max_value,
      stats.histogram.default_frequency(),
      stats.histogram.num_default_values(), lo, hi, explicit_in_range, total,
      stats.histogram.refinement().get());
}

Result<double> EstimateRangeSelectionLinear(const ColumnStatistics& stats,
                                            const RangeBounds& bounds) {
  // Frozen reference: the original full scan. Kept bit-for-bit as the
  // determinism oracle for the O(log n) paths; do not optimize.
  int64_t lo = bounds.low + (bounds.include_low ? 0 : 1);
  int64_t hi = bounds.high - (bounds.include_high ? 0 : 1);
  if (lo > hi) return 0.0;

  const CatalogHistogram& hist = stats.histogram;
  KahanSum total;
  int64_t explicit_in_range = 0;
  for (const auto& [value, freq] : hist.explicit_entries()) {
    if (value >= lo && value <= hi) {
      total.Add(freq);
      ++explicit_in_range;
    }
  }
  return internal::FinishRangeEstimate(
      stats.num_tuples, stats.min_value, stats.max_value,
      hist.default_frequency(), hist.num_default_values(), lo, hi,
      explicit_in_range, total, hist.refinement().get());
}

double EstimateEquiJoinSize(const ColumnStatistics& left,
                            const ColumnStatistics& right) {
  const CatalogHistogram& hl = left.histogram;
  const CatalogHistogram& hr = right.histogram;
  KahanSum total;
  // Merge the two sorted explicit-entry lists.
  const auto& el = hl.explicit_entries();
  const auto& er = hr.explicit_entries();
  size_t i = 0, j = 0;
  size_t matched_explicit = 0;
  while (i < el.size() && j < er.size()) {
    if (el[i].first < er[j].first) {
      total.Add(el[i].second * hr.default_frequency());
      ++i;
    } else if (er[j].first < el[i].first) {
      total.Add(er[j].second * hl.default_frequency());
      ++j;
    } else {
      total.Add(el[i].second * er[j].second);
      ++matched_explicit;
      ++i;
      ++j;
    }
  }
  for (; i < el.size(); ++i) total.Add(el[i].second * hr.default_frequency());
  for (; j < er.size(); ++j) total.Add(er[j].second * hl.default_frequency());

  // Default-default mass: the values of the shared domain explicit in
  // neither histogram. With |EL| + |ER| - matched explicit values consumed
  // out of a shared universe of max(num_values) values:
  const double universe = static_cast<double>(
      std::max(hl.num_values(), hr.num_values()));
  const double consumed = static_cast<double>(el.size() + er.size() -
                                              matched_explicit);
  const double default_common = std::max(0.0, universe - consumed);
  total.Add(default_common * hl.default_frequency() *
            hr.default_frequency());
  return total.Value();
}

}  // namespace hops
