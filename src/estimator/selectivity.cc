#include "estimator/selectivity.h"

#include <algorithm>
#include <unordered_set>

#include "util/math.h"

namespace hops {

double EstimateEqualitySelection(const ColumnStatistics& stats,
                                 const Value& value) {
  return stats.histogram.LookupFrequency(CatalogKeyFor(value));
}

double EstimateNotEqualsSelection(const ColumnStatistics& stats,
                                  const Value& value) {
  double eq = EstimateEqualitySelection(stats, value);
  return std::max(0.0, stats.num_tuples - eq);
}

double EstimateDisjunctiveSelection(const ColumnStatistics& stats,
                                    std::span<const Value> values) {
  std::unordered_set<int64_t> seen;
  KahanSum total;
  for (const Value& v : values) {
    int64_t key = CatalogKeyFor(v);
    if (!seen.insert(key).second) continue;
    total.Add(stats.histogram.LookupFrequency(key));
  }
  return total.Value();
}

Result<double> EstimateRangeSelection(const ColumnStatistics& stats,
                                      const RangeBounds& bounds) {
  // Normalize to a closed interval [lo, hi].
  int64_t lo = bounds.low + (bounds.include_low ? 0 : 1);
  int64_t hi = bounds.high - (bounds.include_high ? 0 : 1);
  if (lo > hi) return 0.0;

  const CatalogHistogram& hist = stats.histogram;
  KahanSum total;
  int64_t explicit_in_range = 0;
  for (const auto& [value, freq] : hist.explicit_entries()) {
    if (value >= lo && value <= hi) {
      total.Add(freq);
      ++explicit_in_range;
    }
  }
  // Default-bucket contribution: default values assumed uniformly spread
  // over the column's [min, max] domain.
  if (hist.num_default_values() > 0 && stats.max_value >= stats.min_value) {
    const double domain_span =
        static_cast<double>(stats.max_value - stats.min_value) + 1.0;
    const int64_t clamped_lo = std::max(lo, stats.min_value);
    const int64_t clamped_hi = std::min(hi, stats.max_value);
    if (clamped_lo <= clamped_hi) {
      const double overlap =
          static_cast<double>(clamped_hi - clamped_lo) + 1.0;
      double values_in_range =
          static_cast<double>(hist.num_default_values()) * overlap /
          domain_span;
      // Do not double count the explicit values already summed.
      values_in_range = std::min(
          values_in_range,
          std::max(0.0, overlap - static_cast<double>(explicit_in_range)));
      total.Add(values_in_range * hist.default_frequency());
    }
  }
  return std::min(total.Value(), stats.num_tuples);
}

double EstimateEquiJoinSize(const ColumnStatistics& left,
                            const ColumnStatistics& right) {
  const CatalogHistogram& hl = left.histogram;
  const CatalogHistogram& hr = right.histogram;
  KahanSum total;
  // Merge the two sorted explicit-entry lists.
  const auto& el = hl.explicit_entries();
  const auto& er = hr.explicit_entries();
  size_t i = 0, j = 0;
  size_t matched_explicit = 0;
  while (i < el.size() && j < er.size()) {
    if (el[i].first < er[j].first) {
      total.Add(el[i].second * hr.default_frequency());
      ++i;
    } else if (er[j].first < el[i].first) {
      total.Add(er[j].second * hl.default_frequency());
      ++j;
    } else {
      total.Add(el[i].second * er[j].second);
      ++matched_explicit;
      ++i;
      ++j;
    }
  }
  for (; i < el.size(); ++i) total.Add(el[i].second * hr.default_frequency());
  for (; j < er.size(); ++j) total.Add(er[j].second * hl.default_frequency());

  // Default-default mass: the values of the shared domain explicit in
  // neither histogram. With |EL| + |ER| - matched explicit values consumed
  // out of a shared universe of max(num_values) values:
  const double universe = static_cast<double>(
      std::max(hl.num_values(), hr.num_values()));
  const double consumed = static_cast<double>(el.size() + er.size() -
                                              matched_explicit);
  const double default_common = std::max(0.0, universe - consumed);
  total.Add(default_common * hl.default_frequency() *
            hr.default_frequency());
  return total.Value();
}

}  // namespace hops
