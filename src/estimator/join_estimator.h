// Chain-join size estimation from catalog statistics — the estimate a
// System-R-style optimizer derives while costing access plans.

#pragma once

#include <span>
#include <string>
#include <vector>

#include "engine/catalog.h"
#include "util/status.h"

namespace hops {

/// \brief One relation of a chain-join estimation request. Mirrors
/// ChainJoinStep but by catalog names instead of live relations.
struct ChainJoinSpec {
  std::string table;
  std::string left_column;   ///< Empty on the first relation.
  std::string right_column;  ///< Empty on the last relation.
};

/// \brief Estimates |R0 ⋈ R1 ⋈ ... ⋈ RN| from per-column histograms.
///
/// Pairwise join sizes come from EstimateEquiJoinSize; chains longer than
/// one join use the classical attribute-independence assumption: joining the
/// intermediate result with the next relation scales the next pairwise
/// estimate by (intermediate size / previous relation size).
Result<double> EstimateChainJoinSize(const Catalog& catalog,
                                     std::span<const ChainJoinSpec> specs);

/// \brief Per-join breakdown of a chain estimate, for EXPLAIN-style output.
struct ChainJoinEstimateDetail {
  std::vector<double> pairwise_sizes;  ///< Histogram estimate per join.
  std::vector<double> running_sizes;   ///< Estimated size after each join.
  double final_size = 0.0;
};

/// \brief As EstimateChainJoinSize, but with the intermediate breakdown.
Result<ChainJoinEstimateDetail> ExplainChainJoinSize(
    const Catalog& catalog, std::span<const ChainJoinSpec> specs);

}  // namespace hops
