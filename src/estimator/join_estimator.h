// Chain-join size estimation from catalog statistics — the estimate a
// System-R-style optimizer derives while costing access plans.

#pragma once

#include <span>
#include <string>
#include <vector>

#include "engine/catalog.h"
#include "engine/catalog_snapshot.h"
#include "util/status.h"

namespace hops {

/// \brief One relation of a chain-join estimation request. Mirrors
/// ChainJoinStep but by catalog names instead of live relations.
struct ChainJoinSpec {
  std::string table;
  std::string left_column;   ///< Empty on the first relation.
  std::string right_column;  ///< Empty on the last relation.
};

/// \brief Estimates |R0 ⋈ R1 ⋈ ... ⋈ RN| from per-column histograms.
///
/// Pairwise join sizes come from EstimateEquiJoinSize; chains longer than
/// one join use the classical attribute-independence assumption: joining the
/// intermediate result with the next relation scales the next pairwise
/// estimate by (intermediate size / previous relation size).
Result<double> EstimateChainJoinSize(const Catalog& catalog,
                                     std::span<const ChainJoinSpec> specs);

/// \brief Per-join breakdown of a chain estimate, for EXPLAIN-style output.
struct ChainJoinEstimateDetail {
  std::vector<double> pairwise_sizes;  ///< Histogram estimate per join.
  std::vector<double> running_sizes;   ///< Estimated size after each join.
  double final_size = 0.0;
};

/// \brief As EstimateChainJoinSize, but with the intermediate breakdown.
Result<ChainJoinEstimateDetail> ExplainChainJoinSize(
    const Catalog& catalog, std::span<const ChainJoinSpec> specs);

/// \brief One interior join of a chain, pre-resolved against a snapshot:
/// `left` is (relation i, its right-facing column), `right` is
/// (relation i+1, its left-facing column).
struct SnapshotChainStep {
  ColumnId left = 0;
  ColumnId right = 0;
};

/// \brief Interns a name-based chain spec against \p snapshot: the same
/// validation as the Catalog overloads, performed once per plan. The
/// returned steps are then estimated with zero string comparisons and zero
/// histogram decodes per estimate.
Result<std::vector<SnapshotChainStep>> ResolveChain(
    const CatalogSnapshot& snapshot, std::span<const ChainJoinSpec> specs);

/// \brief Chain estimate over a compiled snapshot. Bit-identical to the
/// Catalog overload on the same statistics — the serving layer changes the
/// data layout, never the estimate.
Result<ChainJoinEstimateDetail> ExplainChainJoinSize(
    const CatalogSnapshot& snapshot, std::span<const SnapshotChainStep> steps);

/// \brief As the snapshot ExplainChainJoinSize, final size only.
Result<double> EstimateChainJoinSize(const CatalogSnapshot& snapshot,
                                     std::span<const SnapshotChainStep> steps);

}  // namespace hops
