// Optimizer-facing cardinality estimation over catalog statistics.
//
// Covers the query shapes the paper claims serial histograms serve well
// (Sections 2.2 and 6): equality selection, disjunctive equality selection,
// not-equals (complement), range selection (a disjunctive selection over the
// values in the range), and two-relation equality join.

#pragma once

#include <cstdint>
#include <span>

#include "engine/catalog.h"
#include "util/math.h"
#include "util/status.h"

namespace hops {

/// \brief Estimated |sigma_{col = value}(R)|.
double EstimateEqualitySelection(const ColumnStatistics& stats,
                                 const Value& value);

/// \brief Estimated |sigma_{col != value}(R)| — the complement of equality.
double EstimateNotEqualsSelection(const ColumnStatistics& stats,
                                  const Value& value);

/// \brief Estimated size of the disjunctive selection
/// (col = v1 or col = v2 or ...). Duplicate values are counted once.
/// Deduplication is a stack-friendly sort-unique over the key span (no
/// per-call hash-set allocation); frequencies are summed in first-occurrence
/// order, matching the historical hash-set implementation bit-for-bit.
double EstimateDisjunctiveSelection(const ColumnStatistics& stats,
                                    std::span<const Value> values);

/// \brief Writes the catalog keys of \p values into \p out (capacity must be
/// >= values.size()), deduplicated, in first-occurrence order; returns the
/// unique count. Shared by the legacy and the compiled serving paths so both
/// sum the same keys in the same association. Allocation-free for spans of
/// up to 64 values.
size_t UniqueCatalogKeysFirstOccurrence(std::span<const Value> values,
                                        int64_t* out);

/// \brief Inclusive/exclusive bounds for range estimation.
struct RangeBounds {
  int64_t low = 0;
  int64_t high = 0;
  bool include_low = true;
  bool include_high = true;
};

/// \brief Estimated |sigma_{low (<|<=) col (<|<=) high}(R)| for an int64
/// column: explicit histogram entries inside the range contribute exactly;
/// the implicit default bucket contributes its average frequency times the
/// estimated number of default values in the range (default values assumed
/// uniformly spread over [min_value, max_value]).
///
/// The explicit entries are sorted, so the in-range span is located with two
/// binary searches and only its k entries are summed — O(log n + k), not the
/// historical O(n) scan. Bit-identical to EstimateRangeSelectionLinear (the
/// property tests in tests/estimator/ enforce this). The snapshot serving
/// path (estimator/serving.h) goes further: with compiled prefix sums the
/// explicit mass is O(log n) outright.
Result<double> EstimateRangeSelection(const ColumnStatistics& stats,
                                      const RangeBounds& bounds);

/// \brief Frozen reference implementation of range estimation: the original
/// linear scan over every explicit entry. Kept verbatim as the determinism
/// oracle — the O(log n) paths above and the compiled serving path must
/// reproduce its results bit-for-bit. Do not "optimize" this function.
Result<double> EstimateRangeSelectionLinear(const ColumnStatistics& stats,
                                            const RangeBounds& bounds);

namespace internal {

/// \brief Shared tail of range estimation: the default-bucket contribution
/// (average frequency x estimated default values in range, uniform-spread
/// assumption) plus the relation-size clamp, applied to the accumulator
/// already holding the explicit in-range mass. Every range path — linear
/// reference, binary-search, compiled serving — funnels through this one
/// function so the floating-point association is pinned in exactly one
/// place.
///
/// The second overload consults a self-tuning refinement tree
/// (histogram/tuning.h) for the default values' in-range share instead of
/// the uniform-spread assumption. A null (or still-uniform) tree computes
/// the exact same arithmetic as the first overload, bit for bit — that is
/// the tuning-off determinism contract. Pass the histogram's own tree so
/// the legacy, binary-search, and compiled paths keep agreeing on tuned
/// histograms too.
double FinishRangeEstimate(double num_tuples, int64_t min_value,
                           int64_t max_value, double default_frequency,
                           uint64_t num_default_values, int64_t lo, int64_t hi,
                           int64_t explicit_in_range, KahanSum total);
double FinishRangeEstimate(double num_tuples, int64_t min_value,
                           int64_t max_value, double default_frequency,
                           uint64_t num_default_values, int64_t lo, int64_t hi,
                           int64_t explicit_in_range, KahanSum total,
                           const BucketRefinementTree* refinement);

}  // namespace internal

/// \brief Estimated |R ⋈ S| on one attribute, from both sides' compact
/// histograms. Assumes the two attributes share a value domain (the paper's
/// model): explicit-explicit pairs match exactly; values explicit on only
/// one side meet the other side's default frequency; the remaining
/// default-default mass pairs the leftover value counts.
double EstimateEquiJoinSize(const ColumnStatistics& left,
                            const ColumnStatistics& right);

}  // namespace hops
