// Optimizer-facing cardinality estimation over catalog statistics.
//
// Covers the query shapes the paper claims serial histograms serve well
// (Sections 2.2 and 6): equality selection, disjunctive equality selection,
// not-equals (complement), range selection (a disjunctive selection over the
// values in the range), and two-relation equality join.

#pragma once

#include <cstdint>
#include <span>

#include "engine/catalog.h"
#include "util/status.h"

namespace hops {

/// \brief Estimated |sigma_{col = value}(R)|.
double EstimateEqualitySelection(const ColumnStatistics& stats,
                                 const Value& value);

/// \brief Estimated |sigma_{col != value}(R)| — the complement of equality.
double EstimateNotEqualsSelection(const ColumnStatistics& stats,
                                  const Value& value);

/// \brief Estimated size of the disjunctive selection
/// (col = v1 or col = v2 or ...). Duplicate values are counted once.
double EstimateDisjunctiveSelection(const ColumnStatistics& stats,
                                    std::span<const Value> values);

/// \brief Inclusive/exclusive bounds for range estimation.
struct RangeBounds {
  int64_t low = 0;
  int64_t high = 0;
  bool include_low = true;
  bool include_high = true;
};

/// \brief Estimated |sigma_{low (<|<=) col (<|<=) high}(R)| for an int64
/// column: explicit histogram entries inside the range contribute exactly;
/// the implicit default bucket contributes its average frequency times the
/// estimated number of default values in the range (default values assumed
/// uniformly spread over [min_value, max_value]).
Result<double> EstimateRangeSelection(const ColumnStatistics& stats,
                                      const RangeBounds& bounds);

/// \brief Estimated |R ⋈ S| on one attribute, from both sides' compact
/// histograms. Assumes the two attributes share a value domain (the paper's
/// model): explicit-explicit pairs match exactly; values explicit on only
/// one side meet the other side's default frequency; the remaining
/// default-default mass pairs the leftover value counts.
double EstimateEquiJoinSize(const ColumnStatistics& left,
                            const ColumnStatistics& right);

}  // namespace hops
