#include "estimator/serving.h"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "engine/catalog.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/math.h"

namespace hops {

double EstimateEqualitySelection(const CompiledColumnStats& stats,
                                 const Value& value) {
  return stats.histogram->LookupFrequency(CatalogKeyFor(value));
}

double EstimateNotEqualsSelection(const CompiledColumnStats& stats,
                                  const Value& value) {
  double eq = EstimateEqualitySelection(stats, value);
  return std::max(0.0, stats.num_tuples - eq);
}

double EstimateDisjunctiveSelection(const CompiledColumnStats& stats,
                                    std::span<const Value> values) {
  // Same dedupe + summation association as the Catalog path
  // (estimator/selectivity.cc) so both produce identical bits.
  constexpr size_t kInline = 64;
  int64_t inline_keys[kInline];
  std::vector<int64_t> heap_keys;
  int64_t* keys = inline_keys;
  if (values.size() > kInline) {
    heap_keys.resize(values.size());
    keys = heap_keys.data();
  }
  const size_t unique = UniqueCatalogKeysFirstOccurrence(values, keys);
  KahanSum total;
  for (size_t i = 0; i < unique; ++i) {
    total.Add(stats.histogram->LookupFrequency(keys[i]));
  }
  return total.Value();
}

Result<double> EstimateRangeSelection(const CompiledColumnStats& stats,
                                      const RangeBounds& bounds) {
  // Normalize to a closed interval [lo, hi] — same as the Catalog path.
  int64_t lo = bounds.low + (bounds.include_low ? 0 : 1);
  int64_t hi = bounds.high - (bounds.include_high ? 0 : 1);
  if (lo > hi) return 0.0;

  const CompiledHistogram& h = *stats.histogram;
  const auto [begin, end] = h.ExplicitRange(lo, hi);
  KahanSum total;
  if (h.prefix_exact()) {
    // Exact-integer regime: the prefix difference is the same bits as a
    // fresh Kahan scan of the subrange, and adding it to a fresh KahanSum
    // leaves the accumulator in the same (sum, compensation) state the
    // legacy scan reaches. O(log n) total.
    if (end > begin) total.Add(h.ExplicitMass(begin, end));
  } else {
    // Fallback: element-wise Kahan over just the in-range entries, same
    // ascending order and accumulator as the linear reference. O(log n + k).
    const std::span<const double> freqs = h.frequencies();
    for (size_t i = begin; i < end; ++i) total.Add(freqs[i]);
  }
  return internal::FinishRangeEstimate(
      stats.num_tuples, stats.min_value, stats.max_value,
      h.default_frequency(), h.num_default_values(), lo, hi,
      static_cast<int64_t>(end - begin), total);
}

double EstimateEquiJoinSize(const CompiledColumnStats& left,
                            const CompiledColumnStats& right) {
  const CompiledHistogram& hl = *left.histogram;
  const CompiledHistogram& hr = *right.histogram;
  KahanSum total;
  // Merge the two sorted key streams — operation for operation the same as
  // the CatalogHistogram version, over the denser struct-of-arrays layout.
  const std::span<const int64_t> kl = hl.keys();
  const std::span<const int64_t> kr = hr.keys();
  const std::span<const double> fl = hl.frequencies();
  const std::span<const double> fr = hr.frequencies();
  size_t i = 0, j = 0;
  size_t matched_explicit = 0;
  while (i < kl.size() && j < kr.size()) {
    if (kl[i] < kr[j]) {
      total.Add(fl[i] * hr.default_frequency());
      ++i;
    } else if (kr[j] < kl[i]) {
      total.Add(fr[j] * hl.default_frequency());
      ++j;
    } else {
      total.Add(fl[i] * fr[j]);
      ++matched_explicit;
      ++i;
      ++j;
    }
  }
  for (; i < kl.size(); ++i) total.Add(fl[i] * hr.default_frequency());
  for (; j < kr.size(); ++j) total.Add(fr[j] * hl.default_frequency());

  const double universe =
      static_cast<double>(std::max(hl.num_values(), hr.num_values()));
  const double consumed =
      static_cast<double>(kl.size() + kr.size() - matched_explicit);
  const double default_common = std::max(0.0, universe - consumed);
  total.Add(default_common * hl.default_frequency() * hr.default_frequency());
  return total.Value();
}

EstimateSpec EstimateSpec::Equality(ColumnId column, Value literal) {
  EstimateSpec spec;
  spec.kind = EstimateKind::kEquality;
  spec.column = column;
  spec.literal = std::move(literal);
  return spec;
}

EstimateSpec EstimateSpec::NotEquals(ColumnId column, Value literal) {
  EstimateSpec spec;
  spec.kind = EstimateKind::kNotEquals;
  spec.column = column;
  spec.literal = std::move(literal);
  return spec;
}

EstimateSpec EstimateSpec::In(ColumnId column, std::vector<Value> in_list) {
  EstimateSpec spec;
  spec.kind = EstimateKind::kDisjunctive;
  spec.column = column;
  spec.in_list = std::move(in_list);
  return spec;
}

EstimateSpec EstimateSpec::Range(ColumnId column, RangeBounds bounds) {
  EstimateSpec spec;
  spec.kind = EstimateKind::kRange;
  spec.column = column;
  spec.bounds = bounds;
  return spec;
}

EstimateSpec EstimateSpec::Join(ColumnId left, ColumnId right) {
  EstimateSpec spec;
  spec.kind = EstimateKind::kJoin;
  spec.join_left = left;
  spec.join_right = right;
  return spec;
}

EstimateSpec EstimateSpec::Chain(std::vector<SnapshotChainStep> steps) {
  EstimateSpec spec;
  spec.kind = EstimateKind::kChain;
  spec.chain = std::move(steps);
  return spec;
}

namespace {

Status CheckColumn(const CatalogSnapshot& snapshot, ColumnId id,
                   const char* role) {
  if (id >= snapshot.num_columns()) {
    return Status::InvalidArgument(
        std::string(role) + " column id " + std::to_string(id) +
        " is outside the snapshot (" +
        std::to_string(snapshot.num_columns()) + " columns)");
  }
  return Status::OK();
}

}  // namespace

Result<double> EstimateOne(const CatalogSnapshot& snapshot,
                           const EstimateSpec& spec) {
  switch (spec.kind) {
    case EstimateKind::kEquality:
      HOPS_RETURN_NOT_OK(CheckColumn(snapshot, spec.column, "equality"));
      return EstimateEqualitySelection(snapshot.stats(spec.column),
                                       spec.literal);
    case EstimateKind::kNotEquals:
      HOPS_RETURN_NOT_OK(CheckColumn(snapshot, spec.column, "not-equals"));
      return EstimateNotEqualsSelection(snapshot.stats(spec.column),
                                        spec.literal);
    case EstimateKind::kDisjunctive:
      HOPS_RETURN_NOT_OK(CheckColumn(snapshot, spec.column, "disjunctive"));
      return EstimateDisjunctiveSelection(snapshot.stats(spec.column),
                                          spec.in_list);
    case EstimateKind::kRange:
      HOPS_RETURN_NOT_OK(CheckColumn(snapshot, spec.column, "range"));
      return EstimateRangeSelection(snapshot.stats(spec.column), spec.bounds);
    case EstimateKind::kJoin:
      HOPS_RETURN_NOT_OK(CheckColumn(snapshot, spec.join_left, "join left"));
      HOPS_RETURN_NOT_OK(CheckColumn(snapshot, spec.join_right, "join right"));
      return EstimateEquiJoinSize(snapshot.stats(spec.join_left),
                                  snapshot.stats(spec.join_right));
    case EstimateKind::kChain:
      return EstimateChainJoinSize(snapshot, spec.chain);
  }
  return Status::InvalidArgument("unknown estimate kind");
}

std::vector<Result<double>> EstimateBatch(const CatalogSnapshot& snapshot,
                                          std::span<const EstimateSpec> specs,
                                          ThreadPool* pool) {
  std::vector<Result<double>> results(
      specs.size(), Result<double>(Status::Internal("not estimated")));
  if (specs.empty()) return results;
  // Telemetry (DESIGN.md §9): one span + one sharded counter add per
  // *batch*, never per spec — the per-estimate fast path stays untouched,
  // keeping instrumented overhead within the ≤2% contract measured by
  // bench_estimation's telemetry_overhead block.
  static telemetry::SpanSite& span_site =
      telemetry::GetSpanSite("Serving.EstimateBatch");
  telemetry::TraceSpan span(span_site);
  if (span.recording()) {
    static telemetry::Counter* estimates_total =
        telemetry::MetricRegistry::Global().GetCounter(
            "hops_estimates_total",
            "Estimate specs served through EstimateBatch.");
    static telemetry::Counter* batches_total =
        telemetry::MetricRegistry::Global().GetCounter(
            "hops_estimate_batches_total",
            "EstimateBatch invocations against a catalog snapshot.");
    estimates_total->Increment(specs.size());
    batches_total->Increment();
  }
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::Global();
  // Index-range decomposition: each index is computed independently and
  // written to its own slot, so any pool size (including a serial run)
  // produces the same bits — the thread pool's determinism contract.
  const size_t grain = std::max<size_t>(
      1, specs.size() / (8 * std::max<size_t>(1, p.num_threads())));
  p.ParallelFor(0, specs.size(), grain, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      results[i] = EstimateOne(snapshot, specs[i]);
    }
  });
  return results;
}

Status ReportEstimateOutcome(const CatalogSnapshot& snapshot,
                             const EstimateSpec& spec, double estimated,
                             double actual, EstimationFeedbackSink* sink) {
  if (sink == nullptr) {
    return Status::InvalidArgument("feedback sink must not be null");
  }
  // Collect the distinct columns the spec consulted (tiny spans: a chain of
  // j joins touches 2j ids).
  ColumnId inline_ids[8];
  std::vector<ColumnId> heap_ids;
  ColumnId* ids = inline_ids;
  size_t count = 0;
  switch (spec.kind) {
    case EstimateKind::kEquality:
    case EstimateKind::kNotEquals:
    case EstimateKind::kDisjunctive:
    case EstimateKind::kRange:
      ids[count++] = spec.column;
      break;
    case EstimateKind::kJoin:
      ids[count++] = spec.join_left;
      ids[count++] = spec.join_right;
      break;
    case EstimateKind::kChain: {
      if (2 * spec.chain.size() > 8) {
        heap_ids.resize(2 * spec.chain.size());
        ids = heap_ids.data();
      }
      for (const SnapshotChainStep& step : spec.chain) {
        ids[count++] = step.left;
        ids[count++] = step.right;
      }
      break;
    }
  }
  std::sort(ids, ids + count);
  count = static_cast<size_t>(std::unique(ids, ids + count) - ids);
  for (size_t i = 0; i < count; ++i) {
    HOPS_RETURN_NOT_OK(CheckColumn(snapshot, ids[i], "feedback"));
  }
  for (size_t i = 0; i < count; ++i) {
    const CompiledColumnStats& stats = snapshot.stats(ids[i]);
    sink->ReportEstimationError(stats.table, stats.column, estimated, actual);
  }
  return Status::OK();
}

}  // namespace hops
