#include "estimator/serving.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <utility>

#include "engine/catalog.h"
#include "engine/estimate_cache.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/math.h"

namespace hops {

double EstimateEqualitySelection(const CompiledColumnStats& stats,
                                 const Value& value) {
  return stats.histogram->LookupFrequency(CatalogKeyFor(value));
}

double EstimateNotEqualsSelection(const CompiledColumnStats& stats,
                                  const Value& value) {
  double eq = EstimateEqualitySelection(stats, value);
  return std::max(0.0, stats.num_tuples - eq);
}

double EstimateDisjunctiveSelection(const CompiledColumnStats& stats,
                                    std::span<const Value> values) {
  // Same dedupe + summation association as the Catalog path
  // (estimator/selectivity.cc) so both produce identical bits.
  constexpr size_t kInline = 64;
  int64_t inline_keys[kInline];
  std::vector<int64_t> heap_keys;
  int64_t* keys = inline_keys;
  if (values.size() > kInline) {
    heap_keys.resize(values.size());
    keys = heap_keys.data();
  }
  const size_t unique = UniqueCatalogKeysFirstOccurrence(values, keys);
  KahanSum total;
  for (size_t i = 0; i < unique; ++i) {
    total.Add(stats.histogram->LookupFrequency(keys[i]));
  }
  return total.Value();
}

Result<double> EstimateRangeSelection(const CompiledColumnStats& stats,
                                      const RangeBounds& bounds) {
  // Normalize to a closed interval [lo, hi] — same as the Catalog path.
  int64_t lo = bounds.low + (bounds.include_low ? 0 : 1);
  int64_t hi = bounds.high - (bounds.include_high ? 0 : 1);
  if (lo > hi) return 0.0;

  const CompiledHistogram& h = *stats.histogram;
  const auto [begin, end] = h.ExplicitRange(lo, hi);
  KahanSum total;
  if (h.prefix_exact()) {
    // Exact-integer regime: the prefix difference is the same bits as a
    // fresh Kahan scan of the subrange, and adding it to a fresh KahanSum
    // leaves the accumulator in the same (sum, compensation) state the
    // legacy scan reaches. O(log n) total.
    if (end > begin) total.Add(h.ExplicitMass(begin, end));
  } else {
    // Fallback: element-wise Kahan over just the in-range entries, same
    // ascending order and accumulator as the linear reference. O(log n + k).
    const std::span<const double> freqs = h.frequencies();
    for (size_t i = begin; i < end; ++i) total.Add(freqs[i]);
  }
  return internal::FinishRangeEstimate(
      stats.num_tuples, stats.min_value, stats.max_value,
      h.default_frequency(), h.num_default_values(), lo, hi,
      static_cast<int64_t>(end - begin), total, h.refinement());
}

double EstimateEquiJoinSize(const CompiledColumnStats& left,
                            const CompiledColumnStats& right) {
  const CompiledHistogram& hl = *left.histogram;
  const CompiledHistogram& hr = *right.histogram;
  KahanSum total;
  // Merge the two sorted key streams — operation for operation the same as
  // the CatalogHistogram version, over the denser struct-of-arrays layout.
  const std::span<const int64_t> kl = hl.keys();
  const std::span<const int64_t> kr = hr.keys();
  const std::span<const double> fl = hl.frequencies();
  const std::span<const double> fr = hr.frequencies();
  size_t i = 0, j = 0;
  size_t matched_explicit = 0;
  while (i < kl.size() && j < kr.size()) {
    if (kl[i] < kr[j]) {
      total.Add(fl[i] * hr.default_frequency());
      ++i;
    } else if (kr[j] < kl[i]) {
      total.Add(fr[j] * hl.default_frequency());
      ++j;
    } else {
      total.Add(fl[i] * fr[j]);
      ++matched_explicit;
      ++i;
      ++j;
    }
  }
  for (; i < kl.size(); ++i) total.Add(fl[i] * hr.default_frequency());
  for (; j < kr.size(); ++j) total.Add(fr[j] * hl.default_frequency());

  const double universe =
      static_cast<double>(std::max(hl.num_values(), hr.num_values()));
  const double consumed =
      static_cast<double>(kl.size() + kr.size() - matched_explicit);
  const double default_common = std::max(0.0, universe - consumed);
  total.Add(default_common * hl.default_frequency() * hr.default_frequency());
  return total.Value();
}

EstimateSpec EstimateSpec::Equality(ColumnId column, Value literal) {
  EstimateSpec spec;
  spec.kind = EstimateKind::kEquality;
  spec.column = column;
  spec.literal = std::move(literal);
  return spec;
}

EstimateSpec EstimateSpec::NotEquals(ColumnId column, Value literal) {
  EstimateSpec spec;
  spec.kind = EstimateKind::kNotEquals;
  spec.column = column;
  spec.literal = std::move(literal);
  return spec;
}

EstimateSpec EstimateSpec::In(ColumnId column, std::vector<Value> in_list) {
  EstimateSpec spec;
  spec.kind = EstimateKind::kDisjunctive;
  spec.column = column;
  spec.in_list = std::move(in_list);
  return spec;
}

EstimateSpec EstimateSpec::Range(ColumnId column, RangeBounds bounds) {
  EstimateSpec spec;
  spec.kind = EstimateKind::kRange;
  spec.column = column;
  spec.bounds = bounds;
  return spec;
}

EstimateSpec EstimateSpec::Join(ColumnId left, ColumnId right) {
  EstimateSpec spec;
  spec.kind = EstimateKind::kJoin;
  spec.join_left = left;
  spec.join_right = right;
  return spec;
}

EstimateSpec EstimateSpec::Chain(std::vector<SnapshotChainStep> steps) {
  EstimateSpec spec;
  spec.kind = EstimateKind::kChain;
  spec.chain = std::move(steps);
  return spec;
}

namespace {

Status CheckColumn(const CatalogSnapshot& snapshot, ColumnId id,
                   const char* role) {
  if (id >= snapshot.num_columns()) {
    return Status::InvalidArgument(
        std::string(role) + " column id " + std::to_string(id) +
        " is outside the snapshot (" +
        std::to_string(snapshot.num_columns()) + " columns)");
  }
  return Status::OK();
}

// ---------- Batched probe fast lane (DESIGN.md §12) ----------

// Interleaved searches per kernel iteration. Eight lanes keep the cursors
// and needles in registers while giving the memory system eight independent
// in-flight misses per level — enough to cover DRAM latency on the deep
// levels that fall out of cache.
constexpr size_t kProbeLanes = 8;

// How many specs ahead the cache-lookup and kernel-finish passes prefetch:
// slot lines, and the keys/freqs/prefix entries the probe indices landed
// on. Without this the finish loop is a serial chain of random accesses —
// exactly the latency wall the kernel exists to avoid.
constexpr size_t kCacheLookahead = 16;

// Batch-local chain dedupe is O(unique x chains) pairwise compares; past
// this many distinct chains in one batch, later ones skip the memo.
constexpr size_t kMaxChainDedupe = 512;

template <bool kUpper>
void MultiProbeBoundsImpl(const CompiledHistogram& h,
                          std::span<const int64_t> needles, size_t* out) {
  const size_t n = h.num_explicit();
  const uint32_t depth = h.eytzinger_depth();
  if (depth == 0) {
    std::fill(out, out + needles.size(), size_t{0});
    return;
  }
  const int64_t* e = h.eytzinger_keys().data();
  const uint32_t* ranks = h.eytzinger_ranks().data();
  size_t i = 0;
  for (; i + kProbeLanes <= needles.size(); i += kProbeLanes) {
    size_t k[kProbeLanes];
    int64_t x[kProbeLanes];
    for (size_t lane = 0; lane < kProbeLanes; ++lane) {
      k[lane] = 1;
      x[lane] = needles[i + lane];
    }
    // All lanes descend in lockstep: every level issues kProbeLanes
    // independent loads, so one lane's cache miss overlaps the others'
    // instead of serializing the way a lone search's dependency chain does.
    // The prefetch pulls the line holding nodes 8k..8k+7 — every possible
    // descendant THREE levels below the lane's next node — so a deep
    // level's miss is issued ~3*kProbeLanes lane-steps before its use
    // (Khuong & Morin's B-ahead trick). The mask keeps the hint in bounds
    // on the last levels, where the 3-below generation doesn't exist.
    const size_t node_mask = (size_t{1} << depth) - 1;
    for (uint32_t level = 0; level + 1 < depth; ++level) {
      for (size_t lane = 0; lane < kProbeLanes; ++lane) {
        const bool right =
            kUpper ? (e[k[lane]] <= x[lane]) : (e[k[lane]] < x[lane]);
        k[lane] = 2 * k[lane] + static_cast<size_t>(right);
        __builtin_prefetch(e + ((8 * k[lane]) & node_mask));
      }
    }
    for (size_t lane = 0; lane < kProbeLanes; ++lane) {
      const bool right =
          kUpper ? (e[k[lane]] <= x[lane]) : (e[k[lane]] < x[lane]);
      k[lane] = 2 * k[lane] + static_cast<size_t>(right);
    }
    for (size_t lane = 0; lane < kProbeLanes; ++lane) {
      const size_t node = k[lane] >> (std::countr_one(k[lane]) + 1);
      out[i + lane] = node == 0 ? n : static_cast<size_t>(ranks[node]);
    }
  }
  for (; i < needles.size(); ++i) {
    out[i] = kUpper ? h.EytzingerUpperBound(needles[i])
                    : h.EytzingerLowerBound(needles[i]);
  }
}

// Exact cache keys (engine/estimate_cache.h): kind_col packs the estimate
// kind with the primary column id; a/b carry the literal payload. Only
// fixed-size predicates are keyed — chains and IN-lists are variable-length
// and stay uncached (a hashed key could collide, and the serving layer's
// contract is bit-identical, never probably-identical).
EstimateCache::Key PointCacheKey(EstimateKind kind, ColumnId column,
                                 int64_t catalog_key) {
  return {(static_cast<uint64_t>(kind) << 32) | column,
          static_cast<uint64_t>(catalog_key), 0};
}

EstimateCache::Key RangeCacheKey(ColumnId column, int64_t lo, int64_t hi) {
  return {(static_cast<uint64_t>(EstimateKind::kRange) << 32) | column,
          static_cast<uint64_t>(lo), static_cast<uint64_t>(hi)};
}

EstimateCache::Key JoinCacheKey(ColumnId left, ColumnId right) {
  return {(static_cast<uint64_t>(EstimateKind::kJoin) << 32) | left, right, 0};
}

// What the classification pass decided for one spec.
enum class LaneClass : uint8_t {
  kDone,        // result already written (error, empty range, or cache hit)
  kPoint,       // equality / not-equals -> one lower-bound probe
  kRangeProbe,  // non-empty range -> lower(lo) + upper(hi) probes
  kCachedMisc,  // EstimateOne, but cacheable (join)
  kMisc,        // EstimateOne, uncached (IN-list, overflow chains)
  kChainRep,    // chain, first occurrence in this batch (EstimateOne)
  kChainAlias,  // chain, identical to an earlier one -> copy its result
};

// Kept to 32 bytes — the classify pass streams one of these per spec, and a
// fat plan would evict the very cache lines the probe kernel wants hot.
// Cache keys are recomputed from the payload at lookup/insert time (pure
// ALU) instead of being stored.
struct SpecPlan {
  int64_t a = 0;       // kPoint: catalog key; kRangeProbe: lo; kCachedMisc:
                       // join left. For kChainAlias: representative index.
  int64_t b = 0;       // kRangeProbe: hi; kCachedMisc: join right
  ColumnId column = 0;
  LaneClass cls = LaneClass::kMisc;
  bool negate = false;  // kPoint: not-equals
  bool cacheable = false;
};

EstimateCache::Key PlanCacheKey(const SpecPlan& plan) {
  switch (plan.cls) {
    case LaneClass::kPoint:
      return PointCacheKey(
          plan.negate ? EstimateKind::kNotEquals : EstimateKind::kEquality,
          plan.column, plan.a);
    case LaneClass::kRangeProbe:
      return RangeCacheKey(plan.column, plan.a, plan.b);
    default:  // kCachedMisc (join)
      return JoinCacheKey(static_cast<ColumnId>(plan.a),
                          static_cast<ColumnId>(plan.b));
  }
}

}  // namespace

namespace internal {

void MultiProbeLowerBounds(const CompiledHistogram& histogram,
                           std::span<const int64_t> needles, size_t* out) {
  MultiProbeBoundsImpl<false>(histogram, needles, out);
}

void MultiProbeUpperBounds(const CompiledHistogram& histogram,
                           std::span<const int64_t> needles, size_t* out) {
  MultiProbeBoundsImpl<true>(histogram, needles, out);
}

}  // namespace internal

Result<double> EstimateOne(const CatalogSnapshot& snapshot,
                           const EstimateSpec& spec) {
  switch (spec.kind) {
    case EstimateKind::kEquality:
      HOPS_RETURN_NOT_OK(CheckColumn(snapshot, spec.column, "equality"));
      return EstimateEqualitySelection(snapshot.stats(spec.column),
                                       spec.literal);
    case EstimateKind::kNotEquals:
      HOPS_RETURN_NOT_OK(CheckColumn(snapshot, spec.column, "not-equals"));
      return EstimateNotEqualsSelection(snapshot.stats(spec.column),
                                        spec.literal);
    case EstimateKind::kDisjunctive:
      HOPS_RETURN_NOT_OK(CheckColumn(snapshot, spec.column, "disjunctive"));
      return EstimateDisjunctiveSelection(snapshot.stats(spec.column),
                                          spec.in_list);
    case EstimateKind::kRange:
      HOPS_RETURN_NOT_OK(CheckColumn(snapshot, spec.column, "range"));
      return EstimateRangeSelection(snapshot.stats(spec.column), spec.bounds);
    case EstimateKind::kJoin:
      HOPS_RETURN_NOT_OK(CheckColumn(snapshot, spec.join_left, "join left"));
      HOPS_RETURN_NOT_OK(CheckColumn(snapshot, spec.join_right, "join right"));
      return EstimateEquiJoinSize(snapshot.stats(spec.join_left),
                                  snapshot.stats(spec.join_right));
    case EstimateKind::kChain:
      return EstimateChainJoinSize(snapshot, spec.chain);
  }
  return Status::InvalidArgument("unknown estimate kind");
}

std::vector<Result<double>> EstimateBatch(const CatalogSnapshot& snapshot,
                                          std::span<const EstimateSpec> specs,
                                          ThreadPool* pool) {
  std::vector<Result<double>> results(
      specs.size(), Result<double>(Status::Internal("not estimated")));
  if (specs.empty()) return results;
  // Telemetry (DESIGN.md §9): one span + one sharded counter add per
  // *batch*, never per spec — the per-estimate fast path stays untouched,
  // keeping instrumented overhead within the ≤2% contract measured by
  // bench_estimation's telemetry_overhead block.
  static telemetry::SpanSite& span_site =
      telemetry::GetSpanSite("Serving.EstimateBatch");
  telemetry::TraceSpan span(span_site);
  if (span.recording()) {
    static telemetry::Counter* estimates_total =
        telemetry::MetricRegistry::Global().GetCounter(
            "hops_estimates_total",
            "Estimate specs served through EstimateBatch.");
    static telemetry::Counter* batches_total =
        telemetry::MetricRegistry::Global().GetCounter(
            "hops_estimate_batches_total",
            "EstimateBatch invocations against a catalog snapshot.");
    estimates_total->Increment(specs.size());
    batches_total->Increment();
  }
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::Global();
  const EstimateCache& cache = snapshot.estimate_cache();

  // Pass 1 — classify (serial, pure ALU): resolve each spec to a lane and
  // precompute its cache key. Identical chain specs are deduped here with
  // exact (not hashed) comparison; the first occurrence becomes the
  // representative, later ones copy its result after execution.
  std::vector<SpecPlan> plans(specs.size());
  std::vector<size_t> chain_reps;
  for (size_t i = 0; i < specs.size(); ++i) {
    const EstimateSpec& spec = specs[i];
    SpecPlan& plan = plans[i];
    switch (spec.kind) {
      case EstimateKind::kEquality:
      case EstimateKind::kNotEquals: {
        Status check = CheckColumn(snapshot, spec.column,
                                   spec.kind == EstimateKind::kEquality
                                       ? "equality"
                                       : "not-equals");
        if (!check.ok()) {
          results[i] = std::move(check);
          plan.cls = LaneClass::kDone;
          break;
        }
        plan.cls = LaneClass::kPoint;
        plan.negate = spec.kind == EstimateKind::kNotEquals;
        plan.column = spec.column;
        plan.a = CatalogKeyFor(spec.literal);
        plan.cacheable = true;
        break;
      }
      case EstimateKind::kRange: {
        Status check = CheckColumn(snapshot, spec.column, "range");
        if (!check.ok()) {
          results[i] = std::move(check);
          plan.cls = LaneClass::kDone;
          break;
        }
        // Same closed-interval normalization as EstimateRangeSelection;
        // empty ranges short-circuit to 0.0 without probing.
        const int64_t lo = spec.bounds.low + (spec.bounds.include_low ? 0 : 1);
        const int64_t hi =
            spec.bounds.high - (spec.bounds.include_high ? 0 : 1);
        if (lo > hi) {
          results[i] = 0.0;
          plan.cls = LaneClass::kDone;
          break;
        }
        plan.cls = LaneClass::kRangeProbe;
        plan.column = spec.column;
        plan.a = lo;
        plan.b = hi;
        plan.cacheable = true;
        break;
      }
      case EstimateKind::kJoin:
        plan.cls = LaneClass::kCachedMisc;
        plan.a = spec.join_left;
        plan.b = spec.join_right;
        plan.cacheable = true;
        break;
      case EstimateKind::kDisjunctive:
        plan.cls = LaneClass::kMisc;
        break;
      case EstimateKind::kChain: {
        plan.cls = LaneClass::kChainRep;
        for (size_t rep : chain_reps) {
          const auto& mine = spec.chain;
          const auto& theirs = specs[rep].chain;
          if (mine.size() != theirs.size()) continue;
          bool equal = true;
          for (size_t s = 0; s < mine.size(); ++s) {
            if (mine[s].left != theirs[s].left ||
                mine[s].right != theirs[s].right) {
              equal = false;
              break;
            }
          }
          if (equal) {
            plan.cls = LaneClass::kChainAlias;
            plan.a = static_cast<int64_t>(rep);
            break;
          }
        }
        if (plan.cls == LaneClass::kChainRep) {
          if (chain_reps.size() < kMaxChainDedupe) {
            chain_reps.push_back(i);
          } else {
            plan.cls = LaneClass::kMisc;  // memo full: estimate it directly
          }
        }
        break;
      }
    }
  }

  // Pass 2 — memo lookup (serial): probe the snapshot's estimate cache for
  // every exactly-keyed spec, prefetching slot lines a few specs ahead so
  // the random-access table doesn't serialize the pass on memory latency.
  // Misses fall through to the probe/misc lanes below.
  std::vector<size_t> point_idx, range_idx, misc_idx;
  point_idx.reserve(specs.size());
  size_t cache_lookups = 0, cache_hits = 0;
  for (size_t i = 0; i < specs.size(); ++i) {
    const size_t ahead = i + kCacheLookahead;
    if (ahead < specs.size() && plans[ahead].cacheable) {
      cache.Prefetch(PlanCacheKey(plans[ahead]));
    }
    SpecPlan& plan = plans[i];
    if (plan.cacheable) {
      ++cache_lookups;
      double value;
      if (cache.Lookup(PlanCacheKey(plan), &value)) {
        ++cache_hits;
        results[i] = value;  // exact bits the miss path computed (purity)
        plan.cls = LaneClass::kDone;
        continue;
      }
    }
    switch (plan.cls) {
      case LaneClass::kPoint:
        point_idx.push_back(i);
        break;
      case LaneClass::kRangeProbe:
        range_idx.push_back(i);
        break;
      case LaneClass::kCachedMisc:
      case LaneClass::kMisc:
      case LaneClass::kChainRep:
        misc_idx.push_back(i);
        break;
      case LaneClass::kDone:
      case LaneClass::kChainAlias:
        break;
    }
  }
  if (span.recording() && cache_lookups > 0) {
    static telemetry::Counter* cache_hits_total =
        telemetry::MetricRegistry::Global().GetCounter(
            "hops_estimate_cache_hits_total",
            "EstimateBatch specs served from the snapshot estimate cache.");
    static telemetry::Counter* cache_misses_total =
        telemetry::MetricRegistry::Global().GetCounter(
            "hops_estimate_cache_misses_total",
            "EstimateBatch cache lookups that fell through to computation.");
    if (cache_hits > 0) cache_hits_total->Increment(cache_hits);
    if (cache_lookups > cache_hits) {
      cache_misses_total->Increment(cache_lookups - cache_hits);
    }
  }
  if (span.emitting()) {
    span.SetDetail("specs=" + std::to_string(specs.size()) +
                   " cache_hits=" + std::to_string(cache_hits) +
                   " cache_misses=" +
                   std::to_string(cache_lookups - cache_hits));
  }
  // Workers install the batch span's child context so kernel spans opened
  // on pool threads join this request's trace tree (DESIGN.md §14). When
  // the batch is not being traced this is a cheap invalid context and the
  // per-lane spans skip event emission entirely.
  const telemetry::TraceContext lane_context = span.ChildContext();

  // Pass 3 — group the kernel-eligible probes by column with a stable
  // counting bucket (comparison sort is O(n log n) indirections through the
  // plans array and degenerates exactly on the common one-hot-column batch).
  // Every spec still writes only its own result slot, so pool size never
  // changes the bits.
  struct Segment {
    size_t begin;
    size_t end;
  };
  std::vector<uint32_t> column_counts;
  auto bucket_by_column = [&](std::vector<size_t>& idx,
                              std::vector<Segment>* segments) {
    if (idx.empty()) return;
    column_counts.assign(snapshot.num_columns(), 0);
    for (size_t i : idx) ++column_counts[plans[i].column];
    std::vector<size_t> offsets(snapshot.num_columns());
    size_t running = 0;
    for (size_t c = 0; c < column_counts.size(); ++c) {
      offsets[c] = running;
      if (column_counts[c] > 0) {
        segments->push_back(Segment{running, running + column_counts[c]});
      }
      running += column_counts[c];
    }
    std::vector<size_t> bucketed(idx.size());
    for (size_t i : idx) bucketed[offsets[plans[i].column]++] = i;
    idx.swap(bucketed);
  };
  std::vector<Segment> point_segments, range_segments;
  bucket_by_column(point_idx, &point_segments);
  bucket_by_column(range_idx, &range_segments);

  // Pass 4 — execute. Same-column probes run through the multi-probe
  // Eytzinger kernel; everything else goes through EstimateOne. Each lane
  // finishes with arithmetic operation-for-operation identical to the
  // scalar path, then publishes exactly-keyed results to the memo.
  if (!misc_idx.empty()) {
    const size_t grain = std::max<size_t>(
        1, misc_idx.size() / (8 * std::max<size_t>(1, p.num_threads())));
    p.ParallelFor(0, misc_idx.size(), grain, [&](size_t begin, size_t end) {
      telemetry::TraceContextScope lane_scope(lane_context);
      static telemetry::SpanSite& misc_site =
          telemetry::GetSpanSite("Serving.MiscLane");
      telemetry::TraceSpan lane_span(misc_site);
      if (lane_span.emitting()) {
        lane_span.SetDetail("specs=" + std::to_string(end - begin));
      }
      for (size_t j = begin; j < end; ++j) {
        const size_t i = misc_idx[j];
        results[i] = EstimateOne(snapshot, specs[i]);
        if (plans[i].cacheable && results[i].ok()) {
          cache.Insert(PlanCacheKey(plans[i]), *results[i]);
        }
      }
    });
  }
  auto run_point_segment = [&](const Segment& segment) {
    const ColumnId column = plans[point_idx[segment.begin]].column;
    const CompiledColumnStats& stats = snapshot.stats(column);
    const CompiledHistogram& h = *stats.histogram;
    const size_t count = segment.end - segment.begin;
    std::vector<int64_t> needles(count);
    std::vector<size_t> found(count);
    for (size_t j = 0; j < count; ++j) {
      needles[j] = plans[point_idx[segment.begin + j]].a;
    }
    internal::MultiProbeLowerBounds(h, needles, found.data());
    const std::span<const int64_t> keys = h.keys();
    const std::span<const double> freqs = h.frequencies();
    for (size_t j = 0; j < count; ++j) {
      const size_t look = j + kCacheLookahead;
      if (look < count) {
        const size_t look_at = found[look];
        if (look_at < keys.size()) {
          __builtin_prefetch(&keys[look_at]);
          __builtin_prefetch(&freqs[look_at]);
        }
        cache.Prefetch(PlanCacheKey(plans[point_idx[segment.begin + look]]));
      }
      const size_t i = point_idx[segment.begin + j];
      const size_t at = found[j];
      // Same association as LookupFrequency + EstimateNotEqualsSelection.
      const double eq = (at < keys.size() && keys[at] == needles[j])
                            ? freqs[at]
                            : h.default_frequency();
      const double value =
          plans[i].negate ? std::max(0.0, stats.num_tuples - eq) : eq;
      results[i] = value;
      cache.Insert(PlanCacheKey(plans[i]), value);
    }
  };
  auto run_range_segment = [&](const Segment& segment) {
    const ColumnId column = plans[range_idx[segment.begin]].column;
    const CompiledColumnStats& stats = snapshot.stats(column);
    const CompiledHistogram& h = *stats.histogram;
    const size_t count = segment.end - segment.begin;
    std::vector<int64_t> lo_needles(count), hi_needles(count);
    std::vector<size_t> lower(count), upper(count);
    for (size_t j = 0; j < count; ++j) {
      const SpecPlan& plan = plans[range_idx[segment.begin + j]];
      lo_needles[j] = plan.a;
      hi_needles[j] = plan.b;
    }
    internal::MultiProbeLowerBounds(h, lo_needles, lower.data());
    internal::MultiProbeUpperBounds(h, hi_needles, upper.data());
    const std::span<const double> freqs = h.frequencies();
    const std::span<const double> prefix = h.prefix_sums();
    for (size_t j = 0; j < count; ++j) {
      const size_t look = j + kCacheLookahead;
      if (look < count) {
        __builtin_prefetch(&prefix[lower[look]]);
        __builtin_prefetch(&prefix[upper[look]]);
        cache.Prefetch(PlanCacheKey(plans[range_idx[segment.begin + look]]));
      }
      const size_t i = range_idx[segment.begin + j];
      const SpecPlan& plan = plans[i];
      // Mirrors EstimateRangeSelection after normalization (which pass 1
      // already applied): ExplicitRange's clamp, then the exact-prefix or
      // Kahan-subrange accumulation, then the shared FinishRangeEstimate.
      const size_t begin = lower[j];
      const size_t end = upper[j] < begin ? begin : upper[j];
      KahanSum total;
      if (h.prefix_exact()) {
        if (end > begin) total.Add(h.ExplicitMass(begin, end));
      } else {
        for (size_t at = begin; at < end; ++at) total.Add(freqs[at]);
      }
      const double value = internal::FinishRangeEstimate(
          stats.num_tuples, stats.min_value, stats.max_value,
          h.default_frequency(), h.num_default_values(), plan.a, plan.b,
          static_cast<int64_t>(end - begin), total, h.refinement());
      results[i] = value;
      cache.Insert(PlanCacheKey(plan), value);
    }
  };
  if (!point_segments.empty()) {
    p.ParallelFor(0, point_segments.size(), 1, [&](size_t begin, size_t end) {
      telemetry::TraceContextScope lane_scope(lane_context);
      static telemetry::SpanSite& point_site =
          telemetry::GetSpanSite("Serving.PointKernel");
      telemetry::TraceSpan lane_span(point_site);
      if (lane_span.emitting()) {
        size_t probes = 0;
        for (size_t s = begin; s < end; ++s) {
          probes += point_segments[s].end - point_segments[s].begin;
        }
        lane_span.SetDetail("segments=" + std::to_string(end - begin) +
                            " probes=" + std::to_string(probes));
      }
      for (size_t s = begin; s < end; ++s) run_point_segment(point_segments[s]);
    });
  }
  if (!range_segments.empty()) {
    p.ParallelFor(0, range_segments.size(), 1, [&](size_t begin, size_t end) {
      telemetry::TraceContextScope lane_scope(lane_context);
      static telemetry::SpanSite& range_site =
          telemetry::GetSpanSite("Serving.RangeKernel");
      telemetry::TraceSpan lane_span(range_site);
      if (lane_span.emitting()) {
        size_t probes = 0;
        for (size_t s = begin; s < end; ++s) {
          probes += range_segments[s].end - range_segments[s].begin;
        }
        lane_span.SetDetail("segments=" + std::to_string(end - begin) +
                            " probes=" + std::to_string(probes));
      }
      for (size_t s = begin; s < end; ++s) run_range_segment(range_segments[s]);
    });
  }

  // Pass 5 — fan deduped chain results out to their aliases.
  for (size_t i = 0; i < specs.size(); ++i) {
    if (plans[i].cls == LaneClass::kChainAlias) {
      results[i] = results[static_cast<size_t>(plans[i].a)];
    }
  }
  return results;
}

Status ReportEstimateOutcome(const CatalogSnapshot& snapshot,
                             const EstimateSpec& spec, double estimated,
                             double actual, EstimationFeedbackSink* sink) {
  if (sink == nullptr) {
    return Status::InvalidArgument("feedback sink must not be null");
  }
  // Validate the magnitudes at the boundary: a single NaN or infinity
  // forwarded into a sink's EWMA sticks there forever (alpha*x + (1-a)*inf
  // stays inf), and a negative "actual" is a caller bug, not a result size.
  if (!std::isfinite(estimated) || estimated < 0) {
    return Status::InvalidArgument(
        "estimated result size must be finite and >= 0");
  }
  if (!std::isfinite(actual) || actual < 0) {
    return Status::InvalidArgument(
        "actual result size must be finite and >= 0");
  }
  static telemetry::SpanSite& span_site =
      telemetry::GetSpanSite("Serving.ReportOutcome");
  telemetry::TraceSpan span(span_site);
  // Collect the distinct columns the spec consulted (tiny spans: a chain of
  // j joins touches 2j ids).
  ColumnId inline_ids[8];
  std::vector<ColumnId> heap_ids;
  ColumnId* ids = inline_ids;
  size_t count = 0;
  switch (spec.kind) {
    case EstimateKind::kEquality:
    case EstimateKind::kNotEquals:
    case EstimateKind::kDisjunctive:
    case EstimateKind::kRange:
      ids[count++] = spec.column;
      break;
    case EstimateKind::kJoin:
      ids[count++] = spec.join_left;
      ids[count++] = spec.join_right;
      break;
    case EstimateKind::kChain: {
      if (2 * spec.chain.size() > 8) {
        heap_ids.resize(2 * spec.chain.size());
        ids = heap_ids.data();
      }
      for (const SnapshotChainStep& step : spec.chain) {
        ids[count++] = step.left;
        ids[count++] = step.right;
      }
      break;
    }
  }
  std::sort(ids, ids + count);
  count = static_cast<size_t>(std::unique(ids, ids + count) - ids);
  for (size_t i = 0; i < count; ++i) {
    HOPS_RETURN_NOT_OK(CheckColumn(snapshot, ids[i], "feedback"));
  }
  // Predicate shape for the self-tuning layer: point and range specs pin a
  // closed interval on their (single) column; everything else reports only
  // the magnitudes.
  PredicateOutcome outcome;
  outcome.kind = spec.kind;
  outcome.estimated = estimated;
  outcome.actual = actual;
  switch (spec.kind) {
    case EstimateKind::kEquality:
    case EstimateKind::kNotEquals:
      outcome.lo = outcome.hi = CatalogKeyFor(spec.literal);
      outcome.has_range = spec.kind == EstimateKind::kEquality;
      break;
    case EstimateKind::kRange: {
      const int64_t lo = spec.bounds.low + (spec.bounds.include_low ? 0 : 1);
      const int64_t hi = spec.bounds.high - (spec.bounds.include_high ? 0 : 1);
      if (lo <= hi) {
        outcome.lo = lo;
        outcome.hi = hi;
        outcome.has_range = true;
      }
      break;
    }
    default:
      break;
  }
  for (size_t i = 0; i < count; ++i) {
    const CompiledColumnStats& stats = snapshot.stats(ids[i]);
    sink->ReportPredicateOutcome(stats.table, stats.column, outcome);
  }
  return Status::OK();
}

}  // namespace hops
