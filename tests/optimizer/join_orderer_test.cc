#include "optimizer/join_orderer.h"

#include <gtest/gtest.h>

#include "engine/statistics.h"
#include "util/random.h"

namespace hops {
namespace {

// Builds the classic selective-chain scenario: R0 is large, R1 filters
// heavily, R2 is large — joining R0 with R1 first is much cheaper than
// forming the R0 x R2 cross product.
struct ChainFixture {
  Relation r0, r1, r2;
  Catalog catalog;
  std::vector<ChainRelationSpec> specs;

  static ChainFixture Make() {
    ChainFixture f;
    auto one = Schema::Make({{"a", ValueType::kInt64}});
    auto two = Schema::Make({{"a", ValueType::kInt64},
                             {"b", ValueType::kInt64}});
    f.r0 = *Relation::Make("R0", *one);
    f.r1 = *Relation::Make("R1", *two);
    auto oneb = Schema::Make({{"b", ValueType::kInt64}});
    f.r2 = *Relation::Make("R2", *oneb);
    Rng rng(6);
    for (int i = 0; i < 400; ++i) {
      f.r0.AppendUnchecked({Value(static_cast<int64_t>(rng.NextBounded(20)))});
      f.r2.AppendUnchecked({Value(static_cast<int64_t>(rng.NextBounded(20)))});
    }
    // R1: only 10 tuples, matching a narrow slice.
    for (int i = 0; i < 10; ++i) {
      f.r1.AppendUnchecked({Value(static_cast<int64_t>(i % 3)),
                            Value(static_cast<int64_t>(i % 2))});
    }
    StatisticsOptions options;
    options.num_buckets = 8;
    AnalyzeAndStore(f.r0, "a", &f.catalog, options).Check();
    AnalyzeAndStore(f.r1, "a", &f.catalog, options).Check();
    AnalyzeAndStore(f.r1, "b", &f.catalog, options).Check();
    AnalyzeAndStore(f.r2, "b", &f.catalog, options).Check();
    f.specs = {{"R0", "", "a", &f.r0},
               {"R1", "a", "b", &f.r1},
               {"R2", "b", "", &f.r2}};
    return f;
  }
};

TEST(JoinOrdererTest, SegmentSizesDiagonalIsRelationSize) {
  ChainFixture f = ChainFixture::Make();
  auto est = SegmentSizes::Estimate(f.catalog, f.specs);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->Segment(0, 0), 400.0);
  EXPECT_DOUBLE_EQ(est->Segment(1, 1), 10.0);
  auto exact = SegmentSizes::Execute(f.specs);
  ASSERT_TRUE(exact.ok());
  EXPECT_DOUBLE_EQ(exact->Segment(2, 2), 400.0);
}

TEST(JoinOrdererTest, SubsetSizeMultipliesDisconnectedSegments) {
  ChainFixture f = ChainFixture::Make();
  auto exact = SegmentSizes::Execute(f.specs);
  ASSERT_TRUE(exact.ok());
  // {R0, R2} is a cross product of the two base relations.
  std::vector<bool> member = {true, false, true};
  EXPECT_DOUBLE_EQ(exact->SubsetSize(member), 400.0 * 400.0);
  // {R0, R1} is the true join size of the prefix.
  member = {true, true, false};
  EXPECT_DOUBLE_EQ(exact->SubsetSize(member), exact->Segment(0, 1));
  member = {false, false, false};
  EXPECT_DOUBLE_EQ(exact->SubsetSize(member), 0.0);
}

TEST(JoinOrdererTest, OrderCostPenalizesCrossProducts) {
  ChainFixture f = ChainFixture::Make();
  auto exact = SegmentSizes::Execute(f.specs);
  ASSERT_TRUE(exact.ok());
  std::vector<size_t> adjacent = {0, 1, 2};
  std::vector<size_t> cross = {0, 2, 1};  // R0 x R2 first
  auto c_adjacent = exact->OrderCost(adjacent);
  auto c_cross = exact->OrderCost(cross);
  ASSERT_TRUE(c_adjacent.ok() && c_cross.ok());
  EXPECT_LT(*c_adjacent, *c_cross);
}

TEST(JoinOrdererTest, OrderCostValidation) {
  ChainFixture f = ChainFixture::Make();
  auto exact = SegmentSizes::Execute(f.specs);
  ASSERT_TRUE(exact.ok());
  std::vector<size_t> short_order = {0, 1};
  EXPECT_FALSE(exact->OrderCost(short_order).ok());
  std::vector<size_t> dup = {0, 0, 1};
  EXPECT_FALSE(exact->OrderCost(dup).ok());
}

TEST(JoinOrdererTest, RankEnumeratesAllOrders) {
  ChainFixture f = ChainFixture::Make();
  auto exact = SegmentSizes::Execute(f.specs);
  ASSERT_TRUE(exact.ok());
  auto plans = RankLeftDeepOrders(*exact);
  ASSERT_TRUE(plans.ok());
  EXPECT_EQ(plans->size(), 6u);  // 3!
  for (size_t i = 0; i + 1 < plans->size(); ++i) {
    EXPECT_LE((*plans)[i].cost, (*plans)[i + 1].cost);
  }
}

TEST(JoinOrdererTest, RankRespectsRelationCap) {
  ChainFixture f = ChainFixture::Make();
  auto exact = SegmentSizes::Execute(f.specs);
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(RankLeftDeepOrders(*exact, 2).status().IsResourceExhausted());
}

TEST(JoinOrdererTest, GoodStatisticsAvoidTheCrossProduct) {
  ChainFixture f = ChainFixture::Make();
  auto plan = ChooseLeftDeepOrder(f.catalog, f.specs);
  ASSERT_TRUE(plan.ok());
  // The chosen plan must start by joining the selective R1 with one of its
  // neighbours — never R0 with R2 (the cross product).
  std::vector<size_t> first_two = {plan->order[0], plan->order[1]};
  std::sort(first_two.begin(), first_two.end());
  EXPECT_FALSE(first_two == (std::vector<size_t>{0, 2}));
}

TEST(JoinOrdererTest, EstimatedChoiceIsTrulyGood) {
  // The estimate-chosen order's TRUE cost is within a small factor of the
  // truly optimal order's cost.
  ChainFixture f = ChainFixture::Make();
  auto plan = ChooseLeftDeepOrder(f.catalog, f.specs);
  ASSERT_TRUE(plan.ok());
  auto exact = SegmentSizes::Execute(f.specs);
  ASSERT_TRUE(exact.ok());
  auto true_plans = RankLeftDeepOrders(*exact);
  ASSERT_TRUE(true_plans.ok());
  auto chosen_true_cost = exact->OrderCost(plan->order);
  ASSERT_TRUE(chosen_true_cost.ok());
  EXPECT_LE(*chosen_true_cost, 2.0 * true_plans->front().cost + 1e-9);
}

TEST(JoinOrdererTest, SpecValidation) {
  Catalog empty;
  std::vector<ChainRelationSpec> one = {{"R", "", "", nullptr}};
  EXPECT_FALSE(SegmentSizes::Estimate(empty, one).ok());
  std::vector<ChainRelationSpec> no_live = {{"R0", "", "a", nullptr},
                                            {"R1", "a", "", nullptr}};
  EXPECT_TRUE(SegmentSizes::Execute(no_live).status().IsInvalidArgument());
}

}  // namespace
}  // namespace hops
