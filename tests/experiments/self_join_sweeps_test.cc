#include "experiments/self_join_sweeps.h"

#include <gtest/gtest.h>

#include "stats/zipf.h"

namespace hops {
namespace {

FrequencySet ZipfSet(double z, size_t m = 100, double total = 1000.0) {
  auto set = ZipfFrequencySet({total, m, z});
  EXPECT_TRUE(set.ok());
  return *std::move(set);
}

TEST(SelfJoinSweepsTest, TypeNamesAreStable) {
  EXPECT_STREQ(HistogramTypeToString(HistogramType::kTrivial), "trivial");
  EXPECT_STREQ(HistogramTypeToString(HistogramType::kVOptSerial), "serial");
  EXPECT_STREQ(HistogramTypeToString(HistogramType::kVOptEndBiased),
               "end-biased");
}

TEST(SelfJoinSweepsTest, BuildDispatchesToEveryType) {
  FrequencySet set = ZipfSet(1.0, 30);
  for (auto type : {HistogramType::kTrivial, HistogramType::kEquiWidth,
                    HistogramType::kEquiDepth, HistogramType::kVOptEndBiased,
                    HistogramType::kVOptSerial,
                    HistogramType::kVOptSerialDP}) {
    auto h = BuildHistogramOfType(set, type, 3);
    ASSERT_TRUE(h.ok()) << HistogramTypeToString(type) << ": " << h.status();
    if (type == HistogramType::kTrivial) {
      EXPECT_EQ(h->num_buckets(), 1u);
    } else {
      EXPECT_EQ(h->num_buckets(), 3u);
    }
  }
}

TEST(SelfJoinSweepsTest, SigmaIsDeterministicForFrequencyBasedTypes) {
  FrequencySet set = ZipfSet(1.0, 50);
  SelfJoinSigmaOptions a, b;
  a.seed = 1;
  b.seed = 999;  // seed must not matter for these types
  for (auto type : {HistogramType::kTrivial, HistogramType::kVOptEndBiased,
                    HistogramType::kVOptSerialDP}) {
    auto sa = SelfJoinSigma(set, type, 5, a);
    auto sb = SelfJoinSigma(set, type, 5, b);
    ASSERT_TRUE(sa.ok() && sb.ok());
    EXPECT_DOUBLE_EQ(*sa, *sb) << HistogramTypeToString(type);
  }
}

TEST(SelfJoinSweepsTest, PaperRankingHoldsOnZipf) {
  // The Figure 3/5 ranking: serial <= end-biased <= equi-depth <=
  // equi-width ~ trivial (with a margin for Monte-Carlo noise).
  FrequencySet set = ZipfSet(1.0, 100);
  const size_t beta = 5;
  auto serial = SelfJoinSigma(set, HistogramType::kVOptSerial, beta);
  auto biased = SelfJoinSigma(set, HistogramType::kVOptEndBiased, beta);
  auto depth = SelfJoinSigma(set, HistogramType::kEquiDepth, beta);
  auto width = SelfJoinSigma(set, HistogramType::kEquiWidth, beta);
  auto trivial = SelfJoinSigma(set, HistogramType::kTrivial, beta);
  ASSERT_TRUE(serial.ok() && biased.ok() && depth.ok() && width.ok() &&
              trivial.ok());
  EXPECT_LE(*serial, *biased + 1e-9);
  EXPECT_LT(*biased, *depth);
  EXPECT_LE(*depth, *width * 1.05);
  EXPECT_LE(*width, *trivial * 1.05);
}

TEST(SelfJoinSweepsTest, EndBiasedWithinTwiceSerialAtHighSkew) {
  // "The error of the optimal end-biased histogram is usually less than
  // twice the error of the optimal serial histogram." This holds where the
  // paper's experiments live (skewed Zipf data, where the extreme
  // frequencies carry the variance); on smooth low-skew distributions the
  // single multivalued bucket costs more relative to serial — but there the
  // absolute errors are small (see the Figure 5 bench).
  for (double z : {2.0, 2.5, 3.0}) {
    FrequencySet set = ZipfSet(z, 100);
    auto serial = SelfJoinSigma(set, HistogramType::kVOptSerialDP, 5);
    auto biased = SelfJoinSigma(set, HistogramType::kVOptEndBiased, 5);
    ASSERT_TRUE(serial.ok() && biased.ok());
    EXPECT_LE(*biased, 2.0 * *serial + 1e-6) << "z=" << z;
  }
}

TEST(SelfJoinSweepsTest, EndBiasedFarBelowEquiDepthEverywhere) {
  // The companion claim: "much less than half the error of the equi-depth
  // histogram".
  for (double z : {0.5, 1.0, 2.0}) {
    FrequencySet set = ZipfSet(z, 100);
    auto biased = SelfJoinSigma(set, HistogramType::kVOptEndBiased, 5);
    auto depth = SelfJoinSigma(set, HistogramType::kEquiDepth, 5);
    ASSERT_TRUE(biased.ok() && depth.ok());
    EXPECT_LT(*biased, 0.5 * *depth) << "z=" << z;
  }
}

TEST(SelfJoinSweepsTest, MoreBucketsNeverHurtVOptTypes) {
  FrequencySet set = ZipfSet(1.5, 80);
  for (auto type :
       {HistogramType::kVOptEndBiased, HistogramType::kVOptSerialDP}) {
    double prev = -1;
    for (size_t beta = 1; beta <= 10; ++beta) {
      auto s = SelfJoinSigma(set, type, beta);
      ASSERT_TRUE(s.ok());
      if (prev >= 0) {
        EXPECT_LE(*s, prev + 1e-9);
      }
      prev = *s;
    }
  }
}

TEST(SelfJoinSweepsTest, UniformDistributionHasZeroSigmaEverywhere) {
  auto set = ZipfFrequencySet({1000.0, 50, 0.0});
  ASSERT_TRUE(set.ok());
  for (auto type : {HistogramType::kTrivial, HistogramType::kEquiWidth,
                    HistogramType::kEquiDepth,
                    HistogramType::kVOptEndBiased}) {
    auto s = SelfJoinSigma(*set, type, 5);
    ASSERT_TRUE(s.ok());
    EXPECT_NEAR(*s, 0.0, 1e-6) << HistogramTypeToString(type);
  }
}

TEST(SelfJoinSweepsTest, TrivialIgnoresBucketCount) {
  FrequencySet set = ZipfSet(1.0, 40);
  auto s1 = SelfJoinSigma(set, HistogramType::kTrivial, 1);
  auto s9 = SelfJoinSigma(set, HistogramType::kTrivial, 9);
  ASSERT_TRUE(s1.ok() && s9.ok());
  EXPECT_DOUBLE_EQ(*s1, *s9);
}

TEST(SelfJoinSweepsTest, ValidationErrors) {
  FrequencySet set = ZipfSet(1.0, 10);
  SelfJoinSigmaOptions options;
  options.num_arrangements = 0;
  EXPECT_FALSE(
      SelfJoinSigma(set, HistogramType::kEquiDepth, 3, options).ok());
  EXPECT_FALSE(SelfJoinSigma(set, HistogramType::kEquiDepth, 100).ok());
}

}  // namespace
}  // namespace hops
