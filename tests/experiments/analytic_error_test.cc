#include "experiments/analytic_error.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "histogram/builders.h"
#include "util/random.h"

namespace hops {
namespace {

// Brute-force moments by enumerating every relative arrangement.
JoinErrorMoments Enumerate(const std::vector<double>& x,
                           const std::vector<double>& p,
                           const std::vector<double>& y,
                           const std::vector<double>& q) {
  const size_t m = x.size();
  std::vector<size_t> perm(m);
  std::iota(perm.begin(), perm.end(), size_t{0});
  double sum = 0, sum_sq = 0;
  size_t count = 0;
  do {
    double err = 0;
    for (size_t v = 0; v < m; ++v) {
      err += x[v] * y[perm[v]] - p[v] * q[perm[v]];
    }
    sum += err;
    sum_sq += err * err;
    ++count;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return {sum / static_cast<double>(count),
          sum_sq / static_cast<double>(count)};
}

std::vector<double> ApproxOf(const std::vector<double>& freqs, size_t beta) {
  auto set = FrequencySet::Make(freqs);
  EXPECT_TRUE(set.ok());
  auto h = BuildVOptSerialDP(*set, beta);
  EXPECT_TRUE(h.ok());
  return h->ApproximateFrequencies();
}

TEST(AnalyticErrorTest, MatchesEnumerationOnRandomInputs) {
  Rng rng(505);
  for (int trial = 0; trial < 15; ++trial) {
    size_t m = 2 + rng.NextBounded(5);  // 2..6 values
    std::vector<double> x(m), y(m), p(m), q(m);
    for (size_t i = 0; i < m; ++i) {
      x[i] = static_cast<double>(rng.NextBounded(10));
      y[i] = static_cast<double>(rng.NextBounded(10));
      // Arbitrary (not even total-preserving) approximations.
      p[i] = static_cast<double>(rng.NextBounded(10));
      q[i] = static_cast<double>(rng.NextBounded(10));
    }
    auto analytic = ExpectedJoinErrorMoments(x, p, y, q);
    ASSERT_TRUE(analytic.ok());
    JoinErrorMoments brute = Enumerate(x, p, y, q);
    EXPECT_NEAR(analytic->mean, brute.mean,
                1e-9 * (1 + std::abs(brute.mean)))
        << "trial " << trial;
    EXPECT_NEAR(analytic->mean_square, brute.mean_square,
                1e-9 * (1 + brute.mean_square))
        << "trial " << trial;
  }
}

TEST(AnalyticErrorTest, Theorem32MeanIsZeroForBucketAverages) {
  // Bucket averages preserve totals, so E[S-S'] = 0 exactly.
  Rng rng(606);
  std::vector<double> x(40), y(40);
  for (auto& v : x) v = static_cast<double>(rng.NextBounded(100));
  for (auto& v : y) v = static_cast<double>(rng.NextBounded(100));
  auto moments =
      ExpectedJoinErrorMoments(x, ApproxOf(x, 4), y, ApproxOf(y, 4));
  ASSERT_TRUE(moments.ok());
  EXPECT_NEAR(moments->mean, 0.0, 1e-6);
  EXPECT_GT(moments->mean_square, 0.0);
}

TEST(AnalyticErrorTest, Theorem33OnLargeDomains) {
  // The self-join-optimal pair minimizes E[(S-S')^2] among hundreds of
  // random histogram pairs on a 30-value domain — far beyond what
  // permutation enumeration could check.
  Rng rng(707);
  const size_t m = 30, beta = 4;
  std::vector<double> x(m), y(m);
  for (auto& v : x) {
    v = static_cast<double>(
        std::min(rng.NextBounded(80), rng.NextBounded(80)));
  }
  for (auto& v : y) {
    v = static_cast<double>(
        std::min(rng.NextBounded(80), rng.NextBounded(80)));
  }
  auto vopt = ExpectedJoinErrorMoments(x, ApproxOf(x, beta), y,
                                       ApproxOf(y, beta));
  ASSERT_TRUE(vopt.ok());

  auto random_approx = [&](const std::vector<double>& f) {
    // Random 4-bucket assignment -> bucket averages.
    std::vector<uint32_t> assign(m);
    for (auto& a : assign) {
      a = static_cast<uint32_t>(rng.NextBounded(beta));
    }
    for (uint32_t b = 0; b < beta; ++b) assign[b] = b;  // non-empty
    double sum[beta] = {0}, cnt[beta] = {0};
    for (size_t i = 0; i < m; ++i) {
      sum[assign[i]] += f[i];
      cnt[assign[i]] += 1;
    }
    std::vector<double> out(m);
    for (size_t i = 0; i < m; ++i) out[i] = sum[assign[i]] / cnt[assign[i]];
    return out;
  };
  for (int trial = 0; trial < 300; ++trial) {
    auto candidate =
        ExpectedJoinErrorMoments(x, random_approx(x), y, random_approx(y));
    ASSERT_TRUE(candidate.ok());
    EXPECT_GE(candidate->mean_square,
              vopt->mean_square - 1e-6 * (1 + vopt->mean_square))
        << "trial " << trial;
  }
  // And the named baselines cannot beat it either.
  for (auto make : {+[](const std::vector<double>& f, size_t b) {
                      auto set = FrequencySet::Make(f);
                      return BuildEquiWidthHistogram(*set, b);
                    },
                    +[](const std::vector<double>& f, size_t b) {
                      auto set = FrequencySet::Make(f);
                      return BuildEquiDepthHistogram(*set, b);
                    },
                    +[](const std::vector<double>& f, size_t b) {
                      auto set = FrequencySet::Make(f);
                      return BuildVOptEndBiased(*set, b, nullptr);
                    }}) {
    auto hx = make(x, beta);
    auto hy = make(y, beta);
    ASSERT_TRUE(hx.ok() && hy.ok());
    auto candidate = ExpectedJoinErrorMoments(
        x, hx->ApproximateFrequencies(), y, hy->ApproximateFrequencies());
    ASSERT_TRUE(candidate.ok());
    EXPECT_GE(candidate->mean_square,
              vopt->mean_square - 1e-6 * (1 + vopt->mean_square));
  }
}

TEST(AnalyticErrorTest, SingleValueDomainIsDeterministic) {
  std::vector<double> x = {4}, p = {3}, y = {5}, q = {5};
  auto moments = ExpectedJoinErrorMoments(x, p, y, q);
  ASSERT_TRUE(moments.ok());
  EXPECT_DOUBLE_EQ(moments->mean, 4 * 5 - 3 * 5);
  EXPECT_DOUBLE_EQ(moments->mean_square, 25.0);
}

TEST(AnalyticErrorTest, Validation) {
  std::vector<double> a = {1, 2}, b = {1};
  EXPECT_FALSE(ExpectedJoinErrorMoments(a, b, a, a).ok());
  std::vector<double> empty;
  EXPECT_FALSE(ExpectedJoinErrorMoments(empty, empty, empty, empty).ok());
}

}  // namespace
}  // namespace hops
