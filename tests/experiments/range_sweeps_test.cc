#include "experiments/range_sweeps.h"

#include <gtest/gtest.h>

#include "stats/zipf.h"

namespace hops {
namespace {

FrequencySet ZipfSet(double z, size_t m = 100) {
  auto set = ZipfFrequencySet({1000.0, m, z}, /*integer_valued=*/true);
  EXPECT_TRUE(set.ok());
  return *std::move(set);
}

TEST(RangeSweepsTest, UniformSetHasZeroError) {
  auto set = ZipfFrequencySet({1000.0, 50, 0.0});
  ASSERT_TRUE(set.ok());
  for (auto type : {HistogramType::kTrivial, HistogramType::kVOptEndBiased,
                    HistogramType::kEquiDepth}) {
    RangeExperimentConfig config;
    config.histogram_type = type;
    auto rmse = RangeSelectionRmse(*set, config);
    ASSERT_TRUE(rmse.ok());
    EXPECT_NEAR(*rmse, 0.0, 1e-6) << HistogramTypeToString(type);
  }
}

TEST(RangeSweepsTest, DeterministicForSeed) {
  FrequencySet set = ZipfSet(1.0);
  RangeExperimentConfig config;
  auto a = RangeSelectionRmse(set, config);
  auto b = RangeSelectionRmse(set, config);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(*a, *b);
}

TEST(RangeSweepsTest, SerialBeatsTrivialAndValueOrderSchemes) {
  // Section 6: serial histograms are v-optimal for range selections too.
  FrequencySet set = ZipfSet(1.5);
  RangeExperimentConfig config;
  config.num_buckets = 5;
  auto get = [&](HistogramType type) {
    config.histogram_type = type;
    auto r = RangeSelectionRmse(set, config);
    EXPECT_TRUE(r.ok());
    return *r;
  };
  double serial = get(HistogramType::kVOptSerialDP);
  double biased = get(HistogramType::kVOptEndBiased);
  double trivial = get(HistogramType::kTrivial);
  double width = get(HistogramType::kEquiWidth);
  EXPECT_LT(serial, trivial);
  EXPECT_LT(biased, trivial);
  EXPECT_LT(serial, width);
  EXPECT_LE(serial, biased * 1.6);  // close subclasses
}

TEST(RangeSweepsTest, MoreBucketsReduceRangeError) {
  FrequencySet set = ZipfSet(1.0);
  RangeExperimentConfig config;
  config.histogram_type = HistogramType::kVOptSerialDP;
  config.num_buckets = 2;
  auto coarse = RangeSelectionRmse(set, config);
  config.num_buckets = 10;
  auto fine = RangeSelectionRmse(set, config);
  ASSERT_TRUE(coarse.ok() && fine.ok());
  EXPECT_LT(*fine, *coarse);
}

TEST(RangeSweepsTest, Validation) {
  FrequencySet set = ZipfSet(1.0, 10);
  RangeExperimentConfig config;
  config.num_arrangements = 0;
  EXPECT_FALSE(RangeSelectionRmse(set, config).ok());
  config = RangeExperimentConfig{};
  config.num_ranges = 0;
  EXPECT_FALSE(RangeSelectionRmse(set, config).ok());
  auto empty = FrequencySet::Make({});
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(RangeSelectionRmse(*empty, RangeExperimentConfig{}).ok());
}

TEST(RangeSweepsTest, FullDomainRangeIsExactForExactTotals) {
  // A range covering everything counts T; every histogram preserves T, so
  // full-domain ranges contribute zero error. Check via a 1-value domain.
  auto set = FrequencySet::Make({42});
  ASSERT_TRUE(set.ok());
  RangeExperimentConfig config;
  config.num_buckets = 1;
  auto rmse = RangeSelectionRmse(*set, config);
  ASSERT_TRUE(rmse.ok());
  EXPECT_DOUBLE_EQ(*rmse, 0.0);
}

}  // namespace
}  // namespace hops
