#include "experiments/join_sweeps.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hops {
namespace {

JoinExperimentConfig SmallConfig() {
  JoinExperimentConfig config;
  config.num_joins = 2;
  config.num_buckets = 5;
  config.domain_size = 6;
  config.num_arrangements = 8;
  config.seed = 11;
  return config;
}

TEST(JoinSweepsTest, SkewClassNamesAndCandidates) {
  EXPECT_STREQ(SkewClassToString(SkewClass::kLow), "low");
  EXPECT_STREQ(SkewClassToString(SkewClass::kMixed), "mixed");
  EXPECT_STREQ(SkewClassToString(SkewClass::kHigh), "high");
  EXPECT_EQ(SkewCandidates(SkewClass::kLow).size(), 4u);
  EXPECT_EQ(SkewCandidates(SkewClass::kMixed).size(), 10u);
  EXPECT_EQ(SkewCandidates(SkewClass::kHigh).size(), 5u);
  for (double z : SkewCandidates(SkewClass::kHigh)) EXPECT_GE(z, 1.0);
  for (double z : SkewCandidates(SkewClass::kLow)) EXPECT_LE(z, 0.5);
}

TEST(JoinSweepsTest, RunProducesFiniteErrors) {
  auto result = RunJoinExperiment(SmallConfig());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->arrangements_used, 0u);
  EXPECT_GE(result->mean_relative_error, 0.0);
  EXPECT_TRUE(std::isfinite(result->mean_relative_error));
  EXPECT_EQ(result->skews.size(), 3u);  // N+1 relations
}

TEST(JoinSweepsTest, DeterministicForSeed) {
  auto a = RunJoinExperiment(SmallConfig());
  auto b = RunJoinExperiment(SmallConfig());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->mean_relative_error, b->mean_relative_error);
  EXPECT_EQ(a->skews, b->skews);
}

TEST(JoinSweepsTest, PerfectHistogramsGiveZeroError) {
  JoinExperimentConfig config = SmallConfig();
  config.num_buckets = 1000;  // capped at set size -> exact per relation
  config.histogram_type = HistogramType::kVOptSerialDP;
  auto result = RunJoinExperiment(config);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->mean_relative_error, 0.0, 1e-9);
}

TEST(JoinSweepsTest, SerialBeatsTrivialOnHighSkew) {
  JoinExperimentConfig config = SmallConfig();
  config.skew_class = SkewClass::kHigh;
  config.num_arrangements = 12;
  config.histogram_type = HistogramType::kVOptSerialDP;
  auto serial = RunJoinExperiment(config);
  config.histogram_type = HistogramType::kTrivial;
  auto trivial = RunJoinExperiment(config);
  ASSERT_TRUE(serial.ok() && trivial.ok());
  EXPECT_LT(serial->mean_relative_error, trivial->mean_relative_error);
}

TEST(JoinSweepsTest, ErrorsGrowWithJoins) {
  // Figure 6's first conclusion: errors increase with the number of joins.
  // Compare 1 join against 6 joins under high skew with few buckets.
  JoinExperimentConfig config;
  config.domain_size = 6;
  config.num_buckets = 2;
  config.skew_class = SkewClass::kHigh;
  config.num_arrangements = 15;
  config.seed = 21;
  config.histogram_type = HistogramType::kVOptEndBiased;
  config.num_joins = 1;
  auto short_chain = RunJoinExperiment(config);
  config.num_joins = 6;
  auto long_chain = RunJoinExperiment(config);
  ASSERT_TRUE(short_chain.ok() && long_chain.ok());
  EXPECT_GT(long_chain->mean_relative_error,
            short_chain->mean_relative_error);
}

TEST(JoinSweepsTest, MoreBucketsReduceError) {
  // Figure 7's first conclusion: errors decrease with the number of
  // buckets.
  JoinExperimentConfig config = SmallConfig();
  config.skew_class = SkewClass::kHigh;
  config.num_arrangements = 15;
  config.num_buckets = 1;
  auto coarse = RunJoinExperiment(config);
  config.num_buckets = 5;
  auto fine = RunJoinExperiment(config);
  ASSERT_TRUE(coarse.ok() && fine.ok());
  EXPECT_LT(fine->mean_relative_error, coarse->mean_relative_error);
}

TEST(JoinSweepsTest, MultipleQueryInstancesAggregateAllArrangements) {
  JoinExperimentConfig config = SmallConfig();
  config.num_queries = 3;
  auto result = RunJoinExperiment(config);
  ASSERT_TRUE(result.ok());
  // 3 instances x (N+1) relations of skews; arrangements pooled.
  EXPECT_EQ(result->skews.size(), 9u);
  EXPECT_LE(result->arrangements_used, 3u * config.num_arrangements);
  EXPECT_GT(result->arrangements_used, 0u);
}

TEST(JoinSweepsTest, Validation) {
  JoinExperimentConfig config = SmallConfig();
  config.num_joins = 0;
  EXPECT_FALSE(RunJoinExperiment(config).ok());
  config = SmallConfig();
  config.domain_size = 0;
  EXPECT_FALSE(RunJoinExperiment(config).ok());
  config = SmallConfig();
  config.num_arrangements = 0;
  EXPECT_FALSE(RunJoinExperiment(config).ok());
  config = SmallConfig();
  config.num_queries = 0;
  EXPECT_FALSE(RunJoinExperiment(config).ok());
}

}  // namespace
}  // namespace hops
