#include "experiments/construction_cost.h"

#include <gtest/gtest.h>

namespace hops {
namespace {

TEST(ConstructionCostTest, SmallRunProducesTimedRows) {
  ConstructionCostConfig config;
  config.cardinalities = {50, 200};
  config.serial_bucket_counts = {3};
  config.end_biased_buckets = 10;
  auto rows = MeasureConstructionCosts(config);
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 2u);
  for (const auto& row : *rows) {
    ASSERT_EQ(row.serial_seconds.size(), 1u);
    ASSERT_TRUE(row.serial_seconds[0].has_value());
    EXPECT_GE(*row.serial_seconds[0], 0.0);
    EXPECT_GE(row.end_biased_seconds, 0.0);
  }
}

TEST(ConstructionCostTest, InfeasibleCellsAreSkipped) {
  ConstructionCostConfig config;
  config.cardinalities = {2000};
  config.serial_bucket_counts = {5};
  config.max_serial_candidates = 1000;  // force the skip
  auto rows = MeasureConstructionCosts(config);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_FALSE((*rows)[0].serial_seconds[0].has_value());
  EXPECT_GE((*rows)[0].end_biased_seconds, 0.0);  // always measured
}

TEST(ConstructionCostTest, EndBiasedIsFarCheaperThanSerial) {
  // The Table 1 shape: at M = 500, exhaustive serial (beta=3 ~ 124k
  // candidates) must cost much more than the near-linear end-biased build.
  ConstructionCostConfig config;
  config.cardinalities = {500};
  config.serial_bucket_counts = {3};
  auto rows = MeasureConstructionCosts(config);
  ASSERT_TRUE(rows.ok());
  const auto& row = (*rows)[0];
  ASSERT_TRUE(row.serial_seconds[0].has_value());
  EXPECT_GT(*row.serial_seconds[0], row.end_biased_seconds);
}

TEST(ConstructionCostTest, BetaLargerThanMSkipsCell) {
  ConstructionCostConfig config;
  config.cardinalities = {4};
  config.serial_bucket_counts = {5};
  config.end_biased_buckets = 10;
  auto rows = MeasureConstructionCosts(config);
  ASSERT_TRUE(rows.ok());
  EXPECT_FALSE((*rows)[0].serial_seconds[0].has_value());
}

}  // namespace
}  // namespace hops
