#include "experiments/arrangement_study.h"

#include <gtest/gtest.h>

namespace hops {
namespace {

ArrangementStudyConfig SmallConfig() {
  ArrangementStudyConfig config;
  config.domain_size = 8;
  config.num_buckets = 3;
  config.num_arrangements = 30;
  config.seed = 42;
  return config;
}

TEST(ArrangementStudyTest, RunsAndCountsAreConsistent) {
  auto result = RunArrangementStudy(SmallConfig());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->num_arrangements, 30u);
  EXPECT_LE(result->both_end_biased, result->at_least_one_end_biased);
  EXPECT_LE(result->at_least_one_end_biased, result->num_arrangements);
  EXPECT_LE(result->same_values_in_univalued, result->num_arrangements);
}

TEST(ArrangementStudyTest, FractionsInUnitInterval) {
  auto result = RunArrangementStudy(SmallConfig());
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->FractionAtLeastOne(), 0.0);
  EXPECT_LE(result->FractionAtLeastOne(), 1.0);
  EXPECT_GE(result->FractionBoth(), 0.0);
  EXPECT_LE(result->FractionBoth(), result->FractionAtLeastOne());
}

TEST(ArrangementStudyTest, MostArrangementsFavorEndBiased) {
  // The Section 3.1 observation: a large majority of arrangements have at
  // least one end-biased optimum (paper: ~90% on Zipf data). Allow slack
  // for our sampled reproduction.
  ArrangementStudyConfig config = SmallConfig();
  config.domain_size = 10;
  config.num_arrangements = 60;
  auto result = RunArrangementStudy(config);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->FractionAtLeastOne(), 0.5);
}

TEST(ArrangementStudyTest, DeterministicForSeed) {
  auto a = RunArrangementStudy(SmallConfig());
  auto b = RunArrangementStudy(SmallConfig());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->at_least_one_end_biased, b->at_least_one_end_biased);
  EXPECT_EQ(a->both_end_biased, b->both_end_biased);
}

TEST(ArrangementStudyTest, RejectsHugeSearchSpace) {
  ArrangementStudyConfig config;
  config.domain_size = 100;
  config.num_buckets = 8;  // C(100, 7) is astronomically large
  EXPECT_TRUE(
      RunArrangementStudy(config).status().IsResourceExhausted());
}

TEST(ArrangementStudyTest, Validation) {
  ArrangementStudyConfig config = SmallConfig();
  config.domain_size = 0;
  EXPECT_FALSE(RunArrangementStudy(config).ok());
  config = SmallConfig();
  config.num_buckets = 0;
  EXPECT_FALSE(RunArrangementStudy(config).ok());
  config = SmallConfig();
  config.num_buckets = config.domain_size + 1;
  EXPECT_FALSE(RunArrangementStudy(config).ok());
}

TEST(ArrangementStudyTest, TrivialBucketsAlwaysEndBiased) {
  // With beta = 1 there are no singletons; every "choice" is vacuously
  // end-biased on both sides.
  ArrangementStudyConfig config = SmallConfig();
  config.num_buckets = 1;
  config.num_arrangements = 5;
  auto result = RunArrangementStudy(config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->both_end_biased, 5u);
}

}  // namespace
}  // namespace hops
