#include "estimator/predicate_estimator.h"

#include <gtest/gtest.h>

#include "engine/joint_statistics.h"
#include "engine/statistics.h"
#include "util/random.h"

namespace hops {
namespace {

struct Fixture {
  Relation rel;
  Catalog catalog;

  static Fixture Make(bool with_joint) {
    Fixture f;
    f.rel = *Relation::Make(
        "R", *Schema::Make({{"a", ValueType::kInt64},
                            {"b", ValueType::kInt64}}));
    Rng rng(44);
    for (int i = 0; i < 2000; ++i) {
      int64_t a = static_cast<int64_t>(
          std::min(rng.NextBounded(10), rng.NextBounded(10)));
      // b correlates strongly with a.
      int64_t b = rng.NextDouble() < 0.8
                      ? a
                      : static_cast<int64_t>(rng.NextBounded(10));
      f.rel.AppendUnchecked({Value(a), Value(b)});
    }
    StatisticsOptions options;
    options.num_buckets = 11;
    AnalyzeAndStore(f.rel, "a", &f.catalog, options).Check();
    AnalyzeAndStore(f.rel, "b", &f.catalog, options).Check();
    if (with_joint) {
      JointStatisticsOptions joint;
      joint.num_buckets = 16;
      AnalyzeAndStorePair(f.rel, "a", "b", &f.catalog, joint).Check();
    }
    return f;
  }
};

double Truth(const Relation& rel, const std::string& text) {
  auto p = Predicate::Parse(text);
  EXPECT_TRUE(p.ok());
  auto c = CountWhere(rel, *p);
  EXPECT_TRUE(c.ok());
  return *c;
}

Result<double> Estimate(const Fixture& f, const std::string& text) {
  auto p = Predicate::Parse(text);
  EXPECT_TRUE(p.ok());
  return EstimatePredicateCardinality(f.catalog, "R", *p);
}

TEST(PredicateEstimatorTest, SingleEqualityIsHistogramLookup) {
  Fixture f = Fixture::Make(false);
  auto est = Estimate(f, "a = 0");
  ASSERT_TRUE(est.ok());
  // Value 0 is the heavy hitter; end-biased statistics store it exactly.
  EXPECT_DOUBLE_EQ(*est, Truth(f.rel, "a = 0"));
}

TEST(PredicateEstimatorTest, RangePredicate) {
  Fixture f = Fixture::Make(false);
  auto est = Estimate(f, "a <= 2");
  ASSERT_TRUE(est.ok());
  double truth = Truth(f.rel, "a <= 2");
  EXPECT_NEAR(*est, truth, 0.25 * truth);
}

TEST(PredicateEstimatorTest, IndependenceUnderestimatesCorrelatedPair) {
  Fixture f = Fixture::Make(false);
  auto est = Estimate(f, "a = 0 AND b = 0");
  ASSERT_TRUE(est.ok());
  double truth = Truth(f.rel, "a = 0 AND b = 0");
  EXPECT_LT(*est, 0.7 * truth);  // the classical mistake
}

TEST(PredicateEstimatorTest, JointStatisticsFixCorrelatedPair) {
  Fixture f = Fixture::Make(true);
  auto est = Estimate(f, "a = 0 AND b = 0");
  ASSERT_TRUE(est.ok());
  double truth = Truth(f.rel, "a = 0 AND b = 0");
  EXPECT_NEAR(*est, truth, 0.15 * truth);
}

TEST(PredicateEstimatorTest, JointLookupWorksInEitherColumnOrder) {
  Fixture f = Fixture::Make(true);
  auto ab = Estimate(f, "a = 3 AND b = 3");
  auto ba = Estimate(f, "b = 3 AND a = 3");
  ASSERT_TRUE(ab.ok() && ba.ok());
  EXPECT_DOUBLE_EQ(*ab, *ba);
}

TEST(PredicateEstimatorTest, MixedConjunctionCombinesFactors) {
  Fixture f = Fixture::Make(true);
  auto est = Estimate(f, "a = 0 AND b = 0 AND a >= 0");
  ASSERT_TRUE(est.ok());
  // a >= 0 is always true, so the answer should stay near the joint pair
  // estimate.
  auto pair_only = Estimate(f, "a = 0 AND b = 0");
  ASSERT_TRUE(pair_only.ok());
  EXPECT_NEAR(*est, *pair_only, 0.15 * *pair_only + 1.0);
}

TEST(PredicateEstimatorTest, InListSumsExplicitFrequencies) {
  Fixture f = Fixture::Make(false);
  auto est = Estimate(f, "a IN (0, 1)");
  ASSERT_TRUE(est.ok());
  double truth = Truth(f.rel, "a = 0") + Truth(f.rel, "a = 1");
  // Both heavy hitters are explicit in the end-biased histogram.
  EXPECT_NEAR(*est, truth, 0.05 * truth);
}

TEST(PredicateEstimatorTest, Validation) {
  Fixture f = Fixture::Make(false);
  EXPECT_TRUE(EstimatePredicateCardinality(f.catalog, "R", Predicate())
                  .status()
                  .IsInvalidArgument());
  auto p = Predicate::Parse("zzz = 1");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(EstimatePredicateCardinality(f.catalog, "R", *p)
                  .status()
                  .IsNotFound());
  auto str_range = Predicate::Parse("a < 'x'");
  ASSERT_TRUE(str_range.ok());
  EXPECT_TRUE(EstimatePredicateCardinality(f.catalog, "R", *str_range)
                  .status()
                  .IsInvalidArgument());
}

TEST(PredicateEstimatorTest, EstimateIsNonNegative) {
  Fixture f = Fixture::Make(false);
  auto est = Estimate(f, "a = 999 AND b = 999");  // absent values
  ASSERT_TRUE(est.ok());
  EXPECT_GE(*est, 0.0);
}

}  // namespace
}  // namespace hops
