// Serving-path estimators: every compiled function must be bit-identical to
// its Catalog/ColumnStatistics counterpart, and EstimateOne/EstimateBatch
// must validate ids and preserve spec order.

#include "estimator/serving.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "engine/catalog.h"
#include "engine/catalog_snapshot.h"
#include "engine/predicate.h"
#include "estimator/join_estimator.h"
#include "estimator/predicate_estimator.h"
#include "estimator/selectivity.h"

namespace hops {
namespace {

ColumnStatistics MakeStats(double num_tuples,
                           std::vector<std::pair<int64_t, double>> entries,
                           double default_frequency, uint64_t num_default,
                           int64_t min_value, int64_t max_value) {
  ColumnStatistics stats;
  stats.num_tuples = num_tuples;
  stats.num_distinct = entries.size() + num_default;
  stats.min_value = min_value;
  stats.max_value = max_value;
  stats.histogram = *CatalogHistogram::Make(std::move(entries),
                                            default_frequency, num_default);
  return stats;
}

struct Fixture {
  Catalog catalog;
  std::shared_ptr<const CatalogSnapshot> snapshot;
  ColumnStatistics r_a, r_b, s_a, s_b;
  ColumnId r_a_id = 0, r_b_id = 0, s_a_id = 0, s_b_id = 0;

  Fixture() {
    r_a = MakeStats(100.0, {{1, 30.0}, {2, 20.0}, {7, 6.0}}, 6.25, 8, 1, 10);
    // Fractional frequencies: exercises the non-exact prefix fallback.
    r_b = MakeStats(90.0, {{3, 40.5}, {5, 10.25}}, 3.125, 12, 0, 15);
    s_a = MakeStats(60.0, {{2, 25.0}, {7, 9.0}}, 2.0, 13, 1, 20);
    s_b = MakeStats(60.0, {{4, 12.0}}, 4.0, 11, 0, 12);
    catalog.PutColumnStatistics("R", "a", r_a).Check();
    catalog.PutColumnStatistics("R", "b", r_b).Check();
    catalog.PutColumnStatistics("S", "a", s_a).Check();
    catalog.PutColumnStatistics("S", "b", s_b).Check();
    snapshot = *CatalogSnapshot::Compile(catalog);
    r_a_id = *snapshot->Resolve("R", "a");
    r_b_id = *snapshot->Resolve("R", "b");
    s_a_id = *snapshot->Resolve("S", "a");
    s_b_id = *snapshot->Resolve("S", "b");
  }
};

TEST(ServingTest, EqualityMatchesLegacyBitForBit) {
  Fixture f;
  for (int64_t v = -3; v <= 25; ++v) {
    const Value probe(v);
    EXPECT_EQ(EstimateEqualitySelection(f.snapshot->stats(f.r_a_id), probe),
              EstimateEqualitySelection(f.r_a, probe))
        << v;
    EXPECT_EQ(EstimateNotEqualsSelection(f.snapshot->stats(f.r_b_id), probe),
              EstimateNotEqualsSelection(f.r_b, probe))
        << v;
  }
}

TEST(ServingTest, DisjunctiveMatchesLegacyBitForBit) {
  Fixture f;
  std::vector<Value> values = {Value(int64_t{2}), Value(int64_t{9}),
                               Value(int64_t{2}), Value(int64_t{1}),
                               Value(int64_t{9}), Value(int64_t{-4})};
  EXPECT_EQ(EstimateDisjunctiveSelection(f.snapshot->stats(f.r_a_id), values),
            EstimateDisjunctiveSelection(f.r_a, values));
  EXPECT_EQ(EstimateDisjunctiveSelection(f.snapshot->stats(f.r_b_id), values),
            EstimateDisjunctiveSelection(f.r_b, values));
}

TEST(ServingTest, RangeMatchesLegacyBitForBit) {
  Fixture f;
  for (int64_t lo = -2; lo <= 12; ++lo) {
    for (int64_t hi = lo - 1; hi <= 14; ++hi) {
      for (int mask = 0; mask < 4; ++mask) {
        const RangeBounds bounds{lo, hi, (mask & 1) != 0, (mask & 2) != 0};
        for (auto [stats, id] :
             {std::pair{&f.r_a, f.r_a_id}, std::pair{&f.r_b, f.r_b_id}}) {
          auto legacy = EstimateRangeSelectionLinear(*stats, bounds);
          auto serving =
              EstimateRangeSelection(f.snapshot->stats(id), bounds);
          ASSERT_EQ(legacy.ok(), serving.ok());
          if (legacy.ok()) {
            EXPECT_EQ(*legacy, *serving)
                << "[" << lo << "," << hi << "] mask " << mask;
          }
        }
      }
    }
  }
}

TEST(ServingTest, EquiJoinMatchesLegacyBitForBit) {
  Fixture f;
  EXPECT_EQ(EstimateEquiJoinSize(f.snapshot->stats(f.r_a_id),
                                 f.snapshot->stats(f.s_a_id)),
            EstimateEquiJoinSize(f.r_a, f.s_a));
  EXPECT_EQ(EstimateEquiJoinSize(f.snapshot->stats(f.r_b_id),
                                 f.snapshot->stats(f.s_b_id)),
            EstimateEquiJoinSize(f.r_b, f.s_b));
}

TEST(ServingTest, ChainMatchesLegacyBitForBit) {
  Fixture f;
  std::vector<ChainJoinSpec> specs = {
      {"R", "", "b"}, {"S", "a", "b"}, {"R", "a", ""}};
  auto legacy = ExplainChainJoinSize(f.catalog, specs);
  ASSERT_TRUE(legacy.ok());

  auto steps = ResolveChain(*f.snapshot, specs);
  ASSERT_TRUE(steps.ok());
  auto served = ExplainChainJoinSize(*f.snapshot, *steps);
  ASSERT_TRUE(served.ok());
  ASSERT_EQ(legacy->pairwise_sizes.size(), served->pairwise_sizes.size());
  for (size_t i = 0; i < legacy->pairwise_sizes.size(); ++i) {
    EXPECT_EQ(legacy->pairwise_sizes[i], served->pairwise_sizes[i]);
    EXPECT_EQ(legacy->running_sizes[i], served->running_sizes[i]);
  }
  EXPECT_EQ(legacy->final_size, served->final_size);
}

TEST(ServingTest, ResolveChainValidatesLikeLegacy) {
  Fixture f;
  // Too short.
  std::vector<ChainJoinSpec> one = {{"R", "", ""}};
  EXPECT_FALSE(ResolveChain(*f.snapshot, one).ok());
  // Outer columns must be empty.
  std::vector<ChainJoinSpec> outer = {{"R", "a", "b"}, {"S", "a", ""}};
  EXPECT_FALSE(ResolveChain(*f.snapshot, outer).ok());
  // Interior columns must be non-empty.
  std::vector<ChainJoinSpec> interior = {{"R", "", ""}, {"S", "a", ""}};
  EXPECT_FALSE(ResolveChain(*f.snapshot, interior).ok());
  // Unknown column.
  std::vector<ChainJoinSpec> unknown = {{"R", "", "zzz"}, {"S", "a", ""}};
  EXPECT_FALSE(ResolveChain(*f.snapshot, unknown).ok());
}

TEST(ServingTest, EstimateOneRejectsBadIds) {
  Fixture f;
  const ColumnId bad = static_cast<ColumnId>(f.snapshot->num_columns());
  EXPECT_FALSE(
      EstimateOne(*f.snapshot, EstimateSpec::Equality(bad, Value(int64_t{1})))
          .ok());
  EXPECT_FALSE(
      EstimateOne(*f.snapshot, EstimateSpec::Join(f.r_a_id, bad)).ok());
  EXPECT_FALSE(EstimateOne(*f.snapshot,
                           EstimateSpec::Chain({SnapshotChainStep{bad, bad}}))
                   .ok());
  EXPECT_FALSE(EstimateOne(*f.snapshot, EstimateSpec::Chain({})).ok());
}

TEST(ServingTest, EstimateBatchMatchesSerialLoop) {
  Fixture f;
  std::vector<EstimateSpec> specs;
  specs.push_back(EstimateSpec::Equality(f.r_a_id, Value(int64_t{2})));
  specs.push_back(EstimateSpec::NotEquals(f.r_b_id, Value(int64_t{3})));
  specs.push_back(EstimateSpec::In(
      f.r_a_id, {Value(int64_t{1}), Value(int64_t{7}), Value(int64_t{1})}));
  specs.push_back(EstimateSpec::Range(f.r_a_id, RangeBounds{1, 8, true, false}));
  specs.push_back(EstimateSpec::Join(f.r_a_id, f.s_a_id));
  std::vector<ChainJoinSpec> chain_specs = {
      {"R", "", "b"}, {"S", "a", "b"}, {"R", "a", ""}};
  specs.push_back(EstimateSpec::Chain(*ResolveChain(*f.snapshot, chain_specs)));
  // One failing spec in the middle: the batch must not abort.
  specs.insert(specs.begin() + 2,
               EstimateSpec::Equality(static_cast<ColumnId>(999),
                                      Value(int64_t{0})));

  std::vector<Result<double>> batched = EstimateBatch(*f.snapshot, specs);
  ASSERT_EQ(batched.size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    Result<double> serial = EstimateOne(*f.snapshot, specs[i]);
    ASSERT_EQ(serial.ok(), batched[i].ok()) << "spec " << i;
    if (serial.ok()) {
      EXPECT_EQ(*serial, *batched[i]) << "spec " << i;
    }
  }
  EXPECT_FALSE(batched[2].ok());
}

TEST(ServingTest, EstimateBatchEmptyAndExplicitPool) {
  Fixture f;
  EXPECT_TRUE(EstimateBatch(*f.snapshot, {}).empty());
  ThreadPool pool(2);
  std::vector<EstimateSpec> specs(
      37, EstimateSpec::Equality(f.r_a_id, Value(int64_t{1})));
  std::vector<Result<double>> results = EstimateBatch(*f.snapshot, specs, &pool);
  ASSERT_EQ(results.size(), specs.size());
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, 30.0);
  }
}

TEST(ServingTest, PredicateCardinalityMatchesCatalogOverload) {
  Fixture f;
  Predicate predicate = Predicate::Of(
      {Comparison{"a", PredicateOp::kEqual, Value(int64_t{2}), {}},
       Comparison{"b", PredicateOp::kLess, Value(int64_t{9}), {}}});
  auto legacy = EstimatePredicateCardinality(f.catalog, "R", predicate);
  auto served = EstimatePredicateCardinality(*f.snapshot, "R", predicate);
  ASSERT_TRUE(legacy.ok());
  ASSERT_TRUE(served.ok());
  EXPECT_EQ(*legacy, *served);
}

// --- Feedback hook (EstimationFeedbackSink / ReportEstimateOutcome) -------

class RecordingSink : public EstimationFeedbackSink {
 public:
  struct Report {
    std::string table;
    std::string column;
    double estimated;
    double actual;
  };

  void ReportEstimationError(std::string_view table, std::string_view column,
                             double estimated, double actual) override {
    reports.push_back(Report{std::string(table), std::string(column),
                             estimated, actual});
  }

  std::vector<Report> reports;
};

TEST(ServingFeedbackTest, SelectionReportsItsColumn) {
  Fixture f;
  RecordingSink sink;
  EstimateSpec spec = EstimateSpec::Equality(f.r_a_id, Value(int64_t{2}));
  ASSERT_TRUE(
      ReportEstimateOutcome(*f.snapshot, spec, 20.0, 25.0, &sink).ok());
  ASSERT_EQ(sink.reports.size(), 1u);
  EXPECT_EQ(sink.reports[0].table, "R");
  EXPECT_EQ(sink.reports[0].column, "a");
  EXPECT_DOUBLE_EQ(sink.reports[0].estimated, 20.0);
  EXPECT_DOUBLE_EQ(sink.reports[0].actual, 25.0);
}

TEST(ServingFeedbackTest, JoinReportsBothSidesOnce) {
  Fixture f;
  RecordingSink sink;
  EstimateSpec spec = EstimateSpec::Join(f.r_a_id, f.s_a_id);
  ASSERT_TRUE(
      ReportEstimateOutcome(*f.snapshot, spec, 100.0, 80.0, &sink).ok());
  ASSERT_EQ(sink.reports.size(), 2u);
  // Ids are deduplicated and reported in id order.
  EXPECT_EQ(sink.reports[0].table, "R");
  EXPECT_EQ(sink.reports[1].table, "S");

  // A self-join consults one column: exactly one report.
  sink.reports.clear();
  EstimateSpec self_join = EstimateSpec::Join(f.r_a_id, f.r_a_id);
  ASSERT_TRUE(
      ReportEstimateOutcome(*f.snapshot, self_join, 9.0, 9.0, &sink).ok());
  EXPECT_EQ(sink.reports.size(), 1u);
}

TEST(ServingFeedbackTest, ChainReportsEveryDistinctColumn) {
  Fixture f;
  RecordingSink sink;
  std::vector<SnapshotChainStep> steps = {{f.r_a_id, f.s_a_id},
                                          {f.s_b_id, f.r_b_id}};
  EstimateSpec spec = EstimateSpec::Chain(std::move(steps));
  ASSERT_TRUE(
      ReportEstimateOutcome(*f.snapshot, spec, 50.0, 60.0, &sink).ok());
  EXPECT_EQ(sink.reports.size(), 4u);
}

TEST(ServingFeedbackTest, ValidatesSinkAndIds) {
  Fixture f;
  RecordingSink sink;
  EstimateSpec spec = EstimateSpec::Equality(f.r_a_id, Value(int64_t{2}));
  EXPECT_TRUE(ReportEstimateOutcome(*f.snapshot, spec, 1.0, 1.0, nullptr)
                  .IsInvalidArgument());
  EstimateSpec bad = EstimateSpec::Equality(
      static_cast<ColumnId>(f.snapshot->num_columns()), Value(int64_t{2}));
  EXPECT_TRUE(ReportEstimateOutcome(*f.snapshot, bad, 1.0, 1.0, &sink)
                  .IsInvalidArgument());
  EXPECT_TRUE(sink.reports.empty());  // nothing reported on failure
}

TEST(ServingFeedbackTest, RejectsNonFiniteAndNegativeMagnitudes) {
  // Regression: a NaN or infinity forwarded into a sink's EWMA poisons it
  // permanently (alpha*x + (1-alpha)*inf stays inf), so the boundary must
  // reject bad magnitudes before any sink sees them.
  Fixture f;
  RecordingSink sink;
  EstimateSpec spec = EstimateSpec::Equality(f.r_a_id, Value(int64_t{2}));
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  for (double bad : {nan, inf, -inf, -1.0}) {
    EXPECT_TRUE(ReportEstimateOutcome(*f.snapshot, spec, bad, 25.0, &sink)
                    .IsInvalidArgument());
    EXPECT_TRUE(ReportEstimateOutcome(*f.snapshot, spec, 20.0, bad, &sink)
                    .IsInvalidArgument());
  }
  EXPECT_TRUE(sink.reports.empty());  // the sink never saw a bad value

  // Zero is a legitimate result size (empty result), not an error; the
  // q-error tracker clamps it to the one-tuple floor downstream.
  EXPECT_TRUE(ReportEstimateOutcome(*f.snapshot, spec, 0.0, 0.0, &sink).ok());
  EXPECT_EQ(sink.reports.size(), 1u);
}

}  // namespace
}  // namespace hops
