// Property tests for the estimation fast paths: over randomized Zipf-ish
// catalogs, the O(log n) range path (binary-searched Catalog form and
// compiled prefix-sum serving form alike) must reproduce the frozen
// linear-scan reference bit for bit, and the sort-unique disjunctive
// deduplication must reproduce the historical hash-set implementation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <unordered_set>
#include <vector>

#include "engine/catalog.h"
#include "engine/catalog_snapshot.h"
#include "estimator/selectivity.h"
#include "estimator/serving.h"
#include "util/math.h"
#include "util/random.h"

namespace hops {
namespace {

// Frozen reference for the disjunctive path: the historical unordered_set
// dedupe (first-occurrence order falls out of insertion order). Kept local
// so the library implementation can never drift along with it.
double DisjunctiveReference(const ColumnStatistics& stats,
                            std::span<const Value> values) {
  std::unordered_set<int64_t> seen;
  KahanSum total;
  for (const Value& value : values) {
    int64_t key = CatalogKeyFor(value);
    if (seen.insert(key).second) {
      total.Add(stats.histogram.LookupFrequency(key));
    }
  }
  return total.Value();
}

// Random Zipf-flavored statistics: n explicit entries with skewed
// frequencies (integer-valued with probability 1/2, exercising both the
// exact-prefix and the Kahan-fallback compiled regimes), random default
// bucket, random domain bounds.
ColumnStatistics RandomStats(Rng* rng) {
  const size_t n = static_cast<size_t>(rng->NextBounded(60));
  std::vector<int64_t> keys;
  keys.reserve(n);
  std::unordered_set<int64_t> used;
  while (keys.size() < n) {
    int64_t k = rng->NextInt(-100, 100);
    if (used.insert(k).second) keys.push_back(k);
  }
  std::sort(keys.begin(), keys.end());
  const bool integer_valued = rng->NextBounded(2) == 0;
  const double skew = rng->NextDouble(0.2, 1.5);
  std::vector<std::pair<int64_t, double>> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double f = 1000.0 / std::pow(static_cast<double>(i + 1), skew);
    if (integer_valued) f = std::floor(f) + 1.0;
    entries.emplace_back(keys[i], f);
  }
  // Frequencies were assigned in rank order to sorted keys; shuffle the
  // association so value order and frequency order are uncorrelated.
  for (size_t i = n; i > 1; --i) {
    std::swap(entries[i - 1].second,
              entries[rng->NextBounded(i)].second);
  }
  ColumnStatistics stats;
  const uint64_t num_default = rng->NextBounded(50);
  const double default_frequency =
      integer_valued ? static_cast<double>(rng->NextBounded(5))
                     : rng->NextDouble(0.0, 4.0);
  stats.histogram =
      *CatalogHistogram::Make(std::move(entries), default_frequency,
                              num_default);
  stats.num_distinct = n + num_default;
  stats.min_value = rng->NextInt(-150, 0);
  stats.max_value = rng->NextInt(stats.min_value, 150);
  double total = stats.histogram.EstimatedTotal();
  // Sometimes clamp: num_tuples below the histogram mass exercises the
  // relation-size clamp in FinishRangeEstimate.
  stats.num_tuples =
      rng->NextBounded(4) == 0 ? total * rng->NextDouble(0.3, 0.9) : total;
  return stats;
}

RangeBounds RandomBounds(Rng* rng) {
  RangeBounds bounds;
  switch (rng->NextBounded(8)) {
    case 0:  // extreme low edge; keep include_low to avoid lo+1 overflow
      bounds.low = std::numeric_limits<int64_t>::min();
      bounds.high = rng->NextInt(-150, 150);
      bounds.include_low = true;
      bounds.include_high = rng->NextBounded(2) == 0;
      return bounds;
    case 1:  // extreme high edge; keep include_high to avoid hi-1 overflow
      bounds.low = rng->NextInt(-150, 150);
      bounds.high = std::numeric_limits<int64_t>::max();
      bounds.include_low = rng->NextBounded(2) == 0;
      bounds.include_high = true;
      return bounds;
    case 2: {  // degenerate single-point / inverted
      int64_t v = rng->NextInt(-150, 150);
      bounds.low = v;
      bounds.high = v + static_cast<int64_t>(rng->NextBounded(3)) - 1;
      break;
    }
    default:
      bounds.low = rng->NextInt(-200, 200);
      bounds.high = rng->NextInt(-200, 200);
      if (bounds.low > bounds.high) std::swap(bounds.low, bounds.high);
      break;
  }
  bounds.include_low = rng->NextBounded(2) == 0;
  bounds.include_high = rng->NextBounded(2) == 0;
  return bounds;
}

TEST(EstimationPropertyTest, RangePathsMatchLinearReferenceBitForBit) {
  Rng rng(0xbeef01);
  for (int trial = 0; trial < 300; ++trial) {
    ColumnStatistics stats = RandomStats(&rng);
    CompiledColumnStats compiled;
    compiled.num_tuples = stats.num_tuples;
    compiled.num_distinct = stats.num_distinct;
    compiled.min_value = stats.min_value;
    compiled.max_value = stats.max_value;
    compiled.histogram = stats.histogram.compiled_shared();
    for (int q = 0; q < 40; ++q) {
      RangeBounds bounds = RandomBounds(&rng);
      auto reference = EstimateRangeSelectionLinear(stats, bounds);
      auto binary = EstimateRangeSelection(stats, bounds);
      auto serving = EstimateRangeSelection(compiled, bounds);
      ASSERT_TRUE(reference.ok());
      ASSERT_TRUE(binary.ok());
      ASSERT_TRUE(serving.ok());
      // Bitwise equality, not approximate: the serving layer's contract.
      EXPECT_EQ(*reference, *binary)
          << "trial " << trial << " [" << bounds.low << "," << bounds.high
          << "] " << bounds.include_low << bounds.include_high;
      EXPECT_EQ(*reference, *serving)
          << "trial " << trial << " [" << bounds.low << "," << bounds.high
          << "] " << bounds.include_low << bounds.include_high;
    }
  }
}

TEST(EstimationPropertyTest, DisjunctiveMatchesHashSetReferenceBitForBit) {
  Rng rng(0xbeef02);
  for (int trial = 0; trial < 200; ++trial) {
    ColumnStatistics stats = RandomStats(&rng);
    CompiledColumnStats compiled;
    compiled.num_tuples = stats.num_tuples;
    compiled.histogram = stats.histogram.compiled_shared();
    // Spans above and below the 64-entry inline buffer.
    const size_t len = 1 + rng.NextBounded(trial % 5 == 0 ? 200 : 40);
    std::vector<Value> values;
    values.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      values.emplace_back(rng.NextInt(-110, 110));  // duplicates likely
    }
    const double reference = DisjunctiveReference(stats, values);
    EXPECT_EQ(reference, EstimateDisjunctiveSelection(stats, values))
        << "trial " << trial;
    EXPECT_EQ(reference, EstimateDisjunctiveSelection(compiled, values))
        << "trial " << trial;
  }
}

TEST(EstimationPropertyTest, PointAndJoinServingMatchLegacyBitForBit) {
  Rng rng(0xbeef03);
  for (int trial = 0; trial < 200; ++trial) {
    ColumnStatistics left = RandomStats(&rng);
    ColumnStatistics right = RandomStats(&rng);
    CompiledColumnStats cl, cr;
    cl.num_tuples = left.num_tuples;
    cl.histogram = left.histogram.compiled_shared();
    cr.num_tuples = right.num_tuples;
    cr.histogram = right.histogram.compiled_shared();
    for (int q = 0; q < 20; ++q) {
      const Value probe(rng.NextInt(-120, 120));
      EXPECT_EQ(EstimateEqualitySelection(left, probe),
                EstimateEqualitySelection(cl, probe));
      EXPECT_EQ(EstimateNotEqualsSelection(left, probe),
                EstimateNotEqualsSelection(cl, probe));
    }
    EXPECT_EQ(EstimateEquiJoinSize(left, right), EstimateEquiJoinSize(cl, cr))
        << "trial " << trial;
  }
}

TEST(EstimationPropertyTest, UniqueKeysKeepFirstOccurrenceOrder) {
  Rng rng(0xbeef04);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t len = 1 + rng.NextBounded(120);
    std::vector<Value> values;
    for (size_t i = 0; i < len; ++i) {
      values.emplace_back(rng.NextInt(-20, 20));
    }
    std::vector<int64_t> got(len);
    const size_t unique = UniqueCatalogKeysFirstOccurrence(values, got.data());
    got.resize(unique);
    // Reference: insertion-ordered dedupe.
    std::vector<int64_t> want;
    std::unordered_set<int64_t> seen;
    for (const Value& v : values) {
      int64_t k = CatalogKeyFor(v);
      if (seen.insert(k).second) want.push_back(k);
    }
    EXPECT_EQ(got, want) << "trial " << trial;
  }
}

}  // namespace
}  // namespace hops
