// The §12 batched probe fast lane: the multi-probe Eytzinger kernel must
// agree index-for-index with the scalar searches on every shape (bulk,
// remainder lanes, empty), EstimateBatch must stay bit-identical to a
// serial EstimateOne loop on mixed workloads (the determinism contract),
// and the per-snapshot EstimateCache must return exactly the bits the miss
// path computed — including across repeated batches where later calls are
// pure hit traffic.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "engine/catalog.h"
#include "engine/catalog_snapshot.h"
#include "engine/estimate_cache.h"
#include "estimator/serving.h"
#include "util/random.h"

namespace hops {
namespace {

ColumnStatistics MakeStats(double num_tuples,
                           std::vector<std::pair<int64_t, double>> entries,
                           double default_frequency, uint64_t num_default,
                           int64_t min_value, int64_t max_value) {
  ColumnStatistics stats;
  stats.num_tuples = num_tuples;
  stats.num_distinct = entries.size() + num_default;
  stats.min_value = min_value;
  stats.max_value = max_value;
  stats.histogram = *CatalogHistogram::Make(std::move(entries),
                                            default_frequency, num_default);
  return stats;
}

// A column with enough keys that the kernel runs full 8-lane blocks plus a
// remainder, with uneven gaps between keys.
ColumnStatistics BigColumn(size_t n, uint64_t salt) {
  std::vector<std::pair<int64_t, double>> entries;
  entries.reserve(n);
  int64_t key = -50;
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double f = static_cast<double>(1 + (i * 13 + salt) % 17);
    entries.emplace_back(key, f);
    total += f;
    key += 1 + static_cast<int64_t>((i * 3 + salt) % 7);
  }
  ColumnStatistics stats;
  stats.num_tuples = total + 2.0 * 25.0;
  stats.num_distinct = n + 25;
  stats.min_value = -50;
  stats.max_value = key + 10;
  stats.histogram = *CatalogHistogram::Make(std::move(entries), 2.0, 25);
  return stats;
}

struct Fixture {
  Catalog catalog;
  std::shared_ptr<const CatalogSnapshot> snapshot;
  ColumnId big = 0, frac = 0, small = 0;

  Fixture() {
    catalog.PutColumnStatistics("T", "big", BigColumn(300, 5)).Check();
    // Fractional frequencies: the Kahan (non-exact-prefix) range path.
    catalog
        .PutColumnStatistics(
            "T", "frac",
            MakeStats(90.0, {{3, 40.5}, {5, 10.25}, {9, 1.5}}, 3.125, 12, 0,
                      15))
        .Check();
    catalog
        .PutColumnStatistics(
            "T", "small", MakeStats(50.0, {{1, 10.0}, {4, 20.0}}, 4.0, 5, 0, 9))
        .Check();
    snapshot = *CatalogSnapshot::Compile(catalog);
    big = *snapshot->Resolve("T", "big");
    frac = *snapshot->Resolve("T", "frac");
    small = *snapshot->Resolve("T", "small");
  }
};

// ------------------------------------------------------ multi-probe kernel

void CheckKernelAgainstScalar(const CompiledHistogram& histogram,
                              const std::vector<int64_t>& needles) {
  std::vector<size_t> lower(needles.size()), upper(needles.size());
  internal::MultiProbeLowerBounds(histogram, needles, lower.data());
  internal::MultiProbeUpperBounds(histogram, needles, upper.data());
  for (size_t i = 0; i < needles.size(); ++i) {
    EXPECT_EQ(lower[i], histogram.LowerBound(needles[i]))
        << "lower, needle " << needles[i];
    EXPECT_EQ(upper[i], histogram.UpperBound(needles[i]))
        << "upper, needle " << needles[i];
  }
}

TEST(ProbeKernelTest, MatchesScalarOnBulkAndRemainderLanes) {
  Fixture f;
  const CompiledHistogram& histogram = *f.snapshot->stats(f.big).histogram;
  Rng rng(0x5eed);
  // 259 = 32 full 8-lane blocks + a 3-lane remainder.
  std::vector<int64_t> needles;
  for (size_t i = 0; i < 259; ++i) {
    needles.push_back(static_cast<int64_t>(rng.NextBounded(2000)) - 500);
  }
  CheckKernelAgainstScalar(histogram, needles);
}

TEST(ProbeKernelTest, HandlesFewerNeedlesThanLanes) {
  Fixture f;
  const CompiledHistogram& histogram = *f.snapshot->stats(f.small).histogram;
  CheckKernelAgainstScalar(histogram, {-5, 0, 1, 2});
  CheckKernelAgainstScalar(histogram, {4});
  CheckKernelAgainstScalar(histogram, {});
}

TEST(ProbeKernelTest, EmptyHistogramYieldsZeroRanks) {
  CatalogHistogram empty = *CatalogHistogram::Make({}, 2.0, 10);
  const CompiledHistogram compiled = CompiledHistogram::Compile(empty);
  std::vector<int64_t> needles = {-1, 0, 7};
  std::vector<size_t> lower(needles.size(), 99), upper(needles.size(), 99);
  internal::MultiProbeLowerBounds(compiled, needles, lower.data());
  internal::MultiProbeUpperBounds(compiled, needles, upper.data());
  for (size_t i = 0; i < needles.size(); ++i) {
    EXPECT_EQ(lower[i], 0u);
    EXPECT_EQ(upper[i], 0u);
  }
}

// ----------------------------------------------- batch vs EstimateOne loop

std::vector<EstimateSpec> MixedSpecs(const Fixture& f) {
  std::vector<EstimateSpec> specs;
  // Point probes: hits, misses, and the not-equals complement, across
  // columns so the kernel's per-column segments interleave.
  for (int64_t v = -60; v <= 60; v += 3) {
    specs.push_back(EstimateSpec::Equality(f.big, Value(v)));
    specs.push_back(EstimateSpec::NotEquals(f.big, Value(v + 1)));
    specs.push_back(EstimateSpec::Equality(f.frac, Value(v % 16)));
  }
  // A string literal routes through the hashed catalog key.
  specs.push_back(EstimateSpec::Equality(f.small, Value(std::string("x"))));
  // Ranges: inclusive/exclusive mixes, inverted (empty), single point, and
  // the fractional column's Kahan path.
  for (int mask = 0; mask < 4; ++mask) {
    specs.push_back(EstimateSpec::Range(
        f.big, RangeBounds{-10, 200, (mask & 1) != 0, (mask & 2) != 0}));
    specs.push_back(EstimateSpec::Range(
        f.frac, RangeBounds{2, 9, (mask & 1) != 0, (mask & 2) != 0}));
  }
  specs.push_back(EstimateSpec::Range(f.big, RangeBounds{50, 40, true, true}));
  specs.push_back(EstimateSpec::Range(f.big, RangeBounds{7, 7, true, true}));
  // IN-lists (the uncached misc lane), joins, and duplicate chains (the
  // batch-local dedupe).
  specs.push_back(EstimateSpec::In(
      f.big, {Value(int64_t{1}), Value(int64_t{2}), Value(int64_t{1})}));
  specs.push_back(EstimateSpec::Join(f.big, f.frac));
  specs.push_back(EstimateSpec::Chain(
      {SnapshotChainStep{f.big, f.frac}, SnapshotChainStep{f.frac, f.small}}));
  specs.push_back(EstimateSpec::Chain(
      {SnapshotChainStep{f.big, f.frac}, SnapshotChainStep{f.frac, f.small}}));
  // Failures keep their slots: an id outside the snapshot.
  specs.push_back(EstimateSpec::Equality(ColumnId{999}, Value(int64_t{1})));
  specs.push_back(EstimateSpec::Range(ColumnId{999},
                                      RangeBounds{0, 1, true, true}));
  return specs;
}

void ExpectBatchMatchesSerialLoop(const CatalogSnapshot& snapshot,
                                  const std::vector<EstimateSpec>& specs) {
  const std::vector<Result<double>> batched = EstimateBatch(snapshot, specs);
  ASSERT_EQ(batched.size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    const Result<double> one = EstimateOne(snapshot, specs[i]);
    ASSERT_EQ(batched[i].ok(), one.ok()) << "spec " << i;
    if (one.ok()) {
      // Bit-identical, not just equal.
      const double a = *batched[i];
      const double b = *one;
      EXPECT_EQ(std::memcmp(&a, &b, sizeof(a)), 0) << "spec " << i;
    } else {
      EXPECT_EQ(batched[i].status().code(), one.status().code())
          << "spec " << i;
    }
  }
}

TEST(ProbeKernelTest, BatchIsBitIdenticalToSerialLoop) {
  Fixture f;
  const std::vector<EstimateSpec> specs = MixedSpecs(f);
  // Twice: the first batch populates the snapshot's memo cache, the second
  // is dominated by hits — both must reproduce the uncached references.
  ExpectBatchMatchesSerialLoop(*f.snapshot, specs);
  ExpectBatchMatchesSerialLoop(*f.snapshot, specs);
}

TEST(ProbeKernelTest, RepeatedBatchesReturnIdenticalBits) {
  Fixture f;
  const std::vector<EstimateSpec> specs = MixedSpecs(f);
  const std::vector<Result<double>> first = EstimateBatch(*f.snapshot, specs);
  const std::vector<Result<double>> second = EstimateBatch(*f.snapshot, specs);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    ASSERT_EQ(first[i].ok(), second[i].ok()) << i;
    if (first[i].ok()) {
      const double a = *first[i];
      const double b = *second[i];
      EXPECT_EQ(std::memcmp(&a, &b, sizeof(a)), 0) << i;
    }
  }
}

// --------------------------------------------------------- EstimateCache

TEST(EstimateCacheTest, RoundTripsExactBits) {
  EstimateCache cache(64);
  const EstimateCache::Key key{1, 2, 3};
  double out = 0;
  EXPECT_FALSE(cache.Lookup(key, &out));
  // 0.1 + 0.2 != 0.3 in doubles: a hit must return the stored bits, not a
  // recomputation.
  const double value = 0.1 + 0.2;
  cache.Insert(key, value);
  ASSERT_TRUE(cache.Lookup(key, &out));
  EXPECT_EQ(std::memcmp(&out, &value, sizeof(value)), 0);
  // -0.0 and 0.0 differ in bits; the cache must preserve the sign.
  const EstimateCache::Key zero_key{4, 5, 6};
  cache.Insert(zero_key, -0.0);
  ASSERT_TRUE(cache.Lookup(zero_key, &out));
  EXPECT_TRUE(std::signbit(out));
}

TEST(EstimateCacheTest, FullKeyCompareRejectsPartialMatches) {
  EstimateCache cache(64);
  cache.Insert(EstimateCache::Key{1, 2, 3}, 7.0);
  double out = 0;
  EXPECT_FALSE(cache.Lookup(EstimateCache::Key{1, 2, 4}, &out));
  EXPECT_FALSE(cache.Lookup(EstimateCache::Key{1, 4, 3}, &out));
  EXPECT_FALSE(cache.Lookup(EstimateCache::Key{4, 2, 3}, &out));
}

TEST(EstimateCacheTest, ZeroCapacityCacheIsInert) {
  EstimateCache cache;
  EXPECT_EQ(cache.capacity(), 0u);
  cache.Insert(EstimateCache::Key{1, 2, 3}, 7.0);  // no-op, no crash
  double out = 0;
  EXPECT_FALSE(cache.Lookup(EstimateCache::Key{1, 2, 3}, &out));
}

TEST(EstimateCacheTest, AdmissionStopsAtHalfLoad) {
  EstimateCache cache(8);
  ASSERT_EQ(cache.capacity(), 8u);
  // Admit 4 (50%), then refuse.
  for (uint64_t i = 0; i < 8; ++i) {
    cache.Insert(EstimateCache::Key{i, i, i}, static_cast<double>(i));
  }
  size_t hits = 0;
  double out = 0;
  for (uint64_t i = 0; i < 8; ++i) {
    if (cache.Lookup(EstimateCache::Key{i, i, i}, &out)) ++hits;
  }
  EXPECT_EQ(hits, 4u);
}

TEST(EstimateCacheTest, ReinsertingSameKeyIsIdempotent) {
  EstimateCache cache(64);
  const EstimateCache::Key key{9, 9, 9};
  cache.Insert(key, 1.5);
  cache.Insert(key, 1.5);
  double out = 0;
  ASSERT_TRUE(cache.Lookup(key, &out));
  EXPECT_EQ(out, 1.5);
}

TEST(ProbeKernelTest, SnapshotCarriesASizedCache) {
  Fixture f;
  EXPECT_GT(f.snapshot->estimate_cache().capacity(), 0u);
  // Power of two (the open-addressing mask invariant).
  const size_t capacity = f.snapshot->estimate_cache().capacity();
  EXPECT_EQ(capacity & (capacity - 1), 0u);
}

}  // namespace
}  // namespace hops
