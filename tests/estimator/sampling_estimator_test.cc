#include "estimator/sampling_estimator.h"

#include <gtest/gtest.h>

#include "engine/hash_join.h"
#include "util/random.h"

namespace hops {
namespace {

Relation IntRelation(const std::string& name, std::vector<int64_t> values) {
  auto schema = Schema::Make({{"a", ValueType::kInt64}});
  auto rel = Relation::Make(name, *std::move(schema));
  EXPECT_TRUE(rel.ok());
  for (int64_t v : values) {
    rel->AppendUnchecked({Value(v)});
  }
  return *std::move(rel);
}

TEST(SamplingEstimatorTest, FullSampleIsExact) {
  Relation r = IntRelation("R", {1, 1, 2, 3});
  Relation s = IntRelation("S", {1, 2, 2, 4});
  SamplingJoinOptions options;
  options.left_sample = 100;  // clamped to full relations
  options.right_sample = 100;
  auto est = EstimateJoinSizeBySampling(r, "a", s, "a", options);
  ASSERT_TRUE(est.ok());
  auto truth = HashJoinCount(r, "a", s, "a");
  ASSERT_TRUE(truth.ok());
  EXPECT_DOUBLE_EQ(est->estimate, *truth);
  EXPECT_EQ(est->left_sampled, 4u);
  EXPECT_EQ(est->right_sampled, 4u);
}

TEST(SamplingEstimatorTest, AccurateWithinNoiseOnLargeJoin) {
  Rng rng(515);
  std::vector<int64_t> lv, rv;
  for (int i = 0; i < 5000; ++i) {
    lv.push_back(static_cast<int64_t>(
        std::min(rng.NextBounded(50), rng.NextBounded(50))));
    rv.push_back(static_cast<int64_t>(rng.NextBounded(50)));
  }
  Relation r = IntRelation("R", lv);
  Relation s = IntRelation("S", rv);
  auto truth = HashJoinCount(r, "a", s, "a");
  ASSERT_TRUE(truth.ok());
  // Average several seeds: the estimator is unbiased, so the mean should
  // land close to truth.
  double sum = 0;
  const int reps = 10;
  for (int rep = 0; rep < reps; ++rep) {
    SamplingJoinOptions options;
    options.left_sample = 500;
    options.right_sample = 500;
    options.seed = 1000 + rep;
    auto est = EstimateJoinSizeBySampling(r, "a", s, "a", options);
    ASSERT_TRUE(est.ok());
    sum += est->estimate;
  }
  EXPECT_NEAR(sum / reps, *truth, 0.15 * *truth);
}

TEST(SamplingEstimatorTest, EmptyRelationsEstimateZero) {
  auto schema = Schema::Make({{"a", ValueType::kInt64}});
  auto empty = Relation::Make("E", *schema);
  ASSERT_TRUE(empty.ok());
  Relation s = IntRelation("S", {1});
  auto est = EstimateJoinSizeBySampling(*empty, "a", s, "a");
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->estimate, 0.0);
}

TEST(SamplingEstimatorTest, Validation) {
  Relation r = IntRelation("R", {1});
  Relation s = IntRelation("S", {1});
  SamplingJoinOptions options;
  options.left_sample = 0;
  EXPECT_TRUE(EstimateJoinSizeBySampling(r, "a", s, "a", options)
                  .status()
                  .IsInvalidArgument());
  EXPECT_FALSE(EstimateJoinSizeBySampling(r, "zzz", s, "a").ok());
}

TEST(SamplingEstimatorTest, DeterministicForSeed) {
  Relation r = IntRelation("R", {1, 2, 3, 4, 5, 6, 7, 8});
  Relation s = IntRelation("S", {2, 4, 6, 8, 10, 12, 14, 16});
  SamplingJoinOptions options;
  options.left_sample = 4;
  options.right_sample = 4;
  options.seed = 5;
  auto a = EstimateJoinSizeBySampling(r, "a", s, "a", options);
  auto b = EstimateJoinSizeBySampling(r, "a", s, "a", options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->estimate, b->estimate);
}

TEST(SamplingEstimatorTest, BatchMatchesSerialLoop) {
  Relation r = IntRelation("R", {1, 2, 3, 4, 5, 6, 7, 8});
  Relation s = IntRelation("S", {2, 4, 6, 8, 10, 12, 14, 16});
  std::vector<SamplingJoinRequest> requests;
  for (uint64_t seed = 0; seed < 9; ++seed) {
    SamplingJoinRequest req;
    req.left = &r;
    req.column_left = "a";
    req.right = &s;
    req.column_right = "a";
    req.options.left_sample = 4;
    req.options.right_sample = 4;
    req.options.seed = seed;
    requests.push_back(req);
  }
  // One failing request in the middle must not abort the batch.
  requests[4].column_left = "zzz";

  std::vector<Result<SamplingJoinEstimate>> batched =
      EstimateJoinSizesBySampling(requests);
  ASSERT_EQ(batched.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    auto serial = EstimateJoinSizeBySampling(
        *requests[i].left, requests[i].column_left, *requests[i].right,
        requests[i].column_right, requests[i].options);
    ASSERT_EQ(serial.ok(), batched[i].ok()) << "request " << i;
    if (serial.ok()) {
      EXPECT_EQ(serial->estimate, batched[i]->estimate) << "request " << i;
      EXPECT_EQ(serial->sample_matches, batched[i]->sample_matches);
    }
  }
  EXPECT_FALSE(batched[4].ok());
}

TEST(SamplingEstimatorTest, BatchRejectsNullRelations) {
  std::vector<SamplingJoinRequest> requests(1);
  auto results = EstimateJoinSizesBySampling(requests);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].status().IsInvalidArgument());
  EXPECT_TRUE(EstimateJoinSizesBySampling({}).empty());
}

}  // namespace
}  // namespace hops
