#include "estimator/join_estimator.h"

#include <gtest/gtest.h>

#include "engine/executor.h"
#include "engine/statistics.h"

namespace hops {
namespace {

Relation OneCol(const std::string& name, const std::string& col,
                std::vector<int64_t> values) {
  auto schema = Schema::Make({{col, ValueType::kInt64}});
  auto rel = Relation::Make(name, *std::move(schema));
  EXPECT_TRUE(rel.ok());
  for (int64_t v : values) {
    EXPECT_TRUE(rel->Append({Value(v)}).ok());
  }
  return *std::move(rel);
}

Relation TwoCol(const std::string& name,
                std::vector<std::pair<int64_t, int64_t>> rows) {
  auto schema = Schema::Make({{"l", ValueType::kInt64},
                              {"r", ValueType::kInt64}});
  auto rel = Relation::Make(name, *std::move(schema));
  EXPECT_TRUE(rel.ok());
  for (auto [l, r] : rows) {
    EXPECT_TRUE(rel->Append({Value(l), Value(r)}).ok());
  }
  return *std::move(rel);
}

TEST(JoinEstimatorTest, ExactWithFullResolutionHistograms) {
  // With beta = num_distinct, per-value frequencies are exact and a 2-way
  // estimate equals the true join size.
  Relation r0 = OneCol("R0", "a", {1, 1, 1, 2, 3});
  Relation r1 = OneCol("R1", "a", {1, 2, 2, 2, 4});
  Catalog catalog;
  StatisticsOptions options;
  options.histogram_class = StatisticsHistogramClass::kVOptEndBiased;
  options.num_buckets = 10;  // capped at distinct counts
  ASSERT_TRUE(AnalyzeAndStore(r0, "a", &catalog, options).ok());
  ASSERT_TRUE(AnalyzeAndStore(r1, "a", &catalog, options).ok());

  std::vector<ChainJoinSpec> specs = {{"R0", "", "a"}, {"R1", "a", ""}};
  auto est = EstimateChainJoinSize(catalog, specs);
  ASSERT_TRUE(est.ok());

  std::vector<ChainJoinStep> steps = {{&r0, "", "a"}, {&r1, "a", ""}};
  auto truth = ExecuteChainJoinCount(steps);
  ASSERT_TRUE(truth.ok());
  // 3*1 + 1*3 = 6. Note the estimator assumes a shared value universe, so
  // values 3 and 4 (present on one side only, frequency 1 against default 0)
  // contribute nothing extra here because both histograms are exact and
  // default frequency is the multivalued-bucket average.
  EXPECT_NEAR(*est, *truth, 0.35 * *truth);
}

TEST(JoinEstimatorTest, ExplainBreaksDownChain) {
  Relation r0 = OneCol("R0", "a", {1, 1, 2});
  Relation r1 = TwoCol("R1", {{1, 5}, {2, 5}, {2, 6}});
  Relation r2 = OneCol("R2", "b", {5, 6, 6});
  Catalog catalog;
  StatisticsOptions options;
  options.num_buckets = 8;
  ASSERT_TRUE(AnalyzeAndStore(r0, "a", &catalog, options).ok());
  ASSERT_TRUE(AnalyzeAndStore(r1, "l", &catalog, options).ok());
  ASSERT_TRUE(AnalyzeAndStore(r1, "r", &catalog, options).ok());
  ASSERT_TRUE(AnalyzeAndStore(r2, "b", &catalog, options).ok());

  std::vector<ChainJoinSpec> specs = {
      {"R0", "", "a"}, {"R1", "l", "r"}, {"R2", "b", ""}};
  auto detail = ExplainChainJoinSize(catalog, specs);
  ASSERT_TRUE(detail.ok());
  EXPECT_EQ(detail->pairwise_sizes.size(), 2u);
  EXPECT_EQ(detail->running_sizes.size(), 2u);
  EXPECT_DOUBLE_EQ(detail->final_size, detail->running_sizes.back());
  EXPECT_GT(detail->final_size, 0.0);
}

TEST(JoinEstimatorTest, ChainEstimateTracksTruthWithinFactor) {
  // A skewed 3-relation chain; the independence-scaled estimate should land
  // within a small factor of the executed truth when histograms are exact
  // per column.
  std::vector<int64_t> a_vals;
  for (int v = 0; v < 10; ++v) {
    for (int i = 0; i <= v; ++i) a_vals.push_back(v);
  }
  Relation r0 = OneCol("R0", "a", a_vals);
  std::vector<std::pair<int64_t, int64_t>> pairs;
  for (int v = 0; v < 10; ++v) pairs.push_back({v, v % 3});
  Relation r1 = TwoCol("R1", pairs);
  Relation r2 = OneCol("R2", "b", {0, 0, 1, 1, 1, 2});
  Catalog catalog;
  StatisticsOptions options;
  options.num_buckets = 16;
  ASSERT_TRUE(AnalyzeAndStore(r0, "a", &catalog, options).ok());
  ASSERT_TRUE(AnalyzeAndStore(r1, "l", &catalog, options).ok());
  ASSERT_TRUE(AnalyzeAndStore(r1, "r", &catalog, options).ok());
  ASSERT_TRUE(AnalyzeAndStore(r2, "b", &catalog, options).ok());

  std::vector<ChainJoinSpec> specs = {
      {"R0", "", "a"}, {"R1", "l", "r"}, {"R2", "b", ""}};
  auto est = EstimateChainJoinSize(catalog, specs);
  ASSERT_TRUE(est.ok());
  std::vector<ChainJoinStep> steps = {
      {&r0, "", "a"}, {&r1, "l", "r"}, {&r2, "b", ""}};
  auto truth = ExecuteChainJoinCount(steps);
  ASSERT_TRUE(truth.ok());
  ASSERT_GT(*truth, 0.0);
  EXPECT_GT(*est, *truth * 0.3);
  EXPECT_LT(*est, *truth * 3.0);
}

TEST(JoinEstimatorTest, Validation) {
  Catalog catalog;
  std::vector<ChainJoinSpec> one = {{"R", "", ""}};
  EXPECT_TRUE(
      EstimateChainJoinSize(catalog, one).status().IsInvalidArgument());
  std::vector<ChainJoinSpec> bad_outer = {{"R", "x", "a"}, {"S", "a", ""}};
  EXPECT_TRUE(EstimateChainJoinSize(catalog, bad_outer)
                  .status()
                  .IsInvalidArgument());
  std::vector<ChainJoinSpec> missing_stats = {{"R", "", "a"},
                                              {"S", "a", ""}};
  EXPECT_TRUE(
      EstimateChainJoinSize(catalog, missing_stats).status().IsNotFound());
  std::vector<ChainJoinSpec> gap = {{"R", "", ""}, {"S", "a", ""}};
  EXPECT_TRUE(
      EstimateChainJoinSize(catalog, gap).status().IsInvalidArgument());
}

}  // namespace
}  // namespace hops
