#include "estimator/selectivity.h"

#include <gtest/gtest.h>

namespace hops {
namespace {

// Stats for a column over values 1..10, 100 tuples: values 1 and 2 stored
// explicitly (30 and 20 tuples), the remaining 8 values average 6.25.
ColumnStatistics SampleStats() {
  ColumnStatistics stats;
  stats.num_tuples = 100.0;
  stats.num_distinct = 10;
  stats.min_value = 1;
  stats.max_value = 10;
  stats.histogram =
      *CatalogHistogram::Make({{1, 30.0}, {2, 20.0}}, 6.25, 8);
  return stats;
}

TEST(SelectivityTest, EqualityUsesExplicitOrDefault) {
  ColumnStatistics stats = SampleStats();
  EXPECT_DOUBLE_EQ(EstimateEqualitySelection(stats, Value(int64_t{1})),
                   30.0);
  EXPECT_DOUBLE_EQ(EstimateEqualitySelection(stats, Value(int64_t{7})),
                   6.25);
}

TEST(SelectivityTest, NotEqualsIsComplement) {
  ColumnStatistics stats = SampleStats();
  EXPECT_DOUBLE_EQ(EstimateNotEqualsSelection(stats, Value(int64_t{1})),
                   70.0);
  EXPECT_DOUBLE_EQ(EstimateNotEqualsSelection(stats, Value(int64_t{7})),
                   93.75);
}

TEST(SelectivityTest, NotEqualsClampedAtZero) {
  ColumnStatistics stats = SampleStats();
  stats.num_tuples = 10.0;  // inconsistent on purpose
  EXPECT_DOUBLE_EQ(EstimateNotEqualsSelection(stats, Value(int64_t{1})),
                   0.0);
}

TEST(SelectivityTest, DisjunctionSumsDistinctValues) {
  ColumnStatistics stats = SampleStats();
  std::vector<Value> values = {Value(int64_t{1}), Value(int64_t{2}),
                               Value(int64_t{1})};  // duplicate 1
  EXPECT_DOUBLE_EQ(EstimateDisjunctiveSelection(stats, values), 50.0);
}

TEST(SelectivityTest, RangeCoversExplicitAndDefaults) {
  ColumnStatistics stats = SampleStats();
  // [1, 2]: both explicit -> 50 exactly (no default values in range beyond
  // the explicit ones: overlap 2 - 2 explicit = 0).
  RangeBounds r12{1, 2, true, true};
  auto e = EstimateRangeSelection(stats, r12);
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(*e, 50.0);
  // Full domain [1, 10]: everything -> 100.
  RangeBounds all{1, 10, true, true};
  e = EstimateRangeSelection(stats, all);
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(*e, 100.0, 1e-9);
}

TEST(SelectivityTest, RangeDefaultOnlySegment) {
  ColumnStatistics stats = SampleStats();
  // [5, 8]: 4 of the 8 default values (uniform spread assumption: 8 * 4/10
  // = 3.2 values, capped at 4 non-explicit slots) -> 3.2 * 6.25 = 20.
  RangeBounds r{5, 8, true, true};
  auto e = EstimateRangeSelection(stats, r);
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(*e, 20.0);
}

TEST(SelectivityTest, ExclusiveBoundsShrinkRange) {
  ColumnStatistics stats = SampleStats();
  RangeBounds open{1, 3, false, false};  // -> [2, 2]
  auto e = EstimateRangeSelection(stats, open);
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(*e, 20.0);
}

TEST(SelectivityTest, EmptyRangeIsZero) {
  ColumnStatistics stats = SampleStats();
  RangeBounds r{5, 4, true, true};
  auto e = EstimateRangeSelection(stats, r);
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(*e, 0.0);
  RangeBounds collapsed{5, 5, false, true};  // (5,5] empty
  e = EstimateRangeSelection(stats, collapsed);
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(*e, 0.0);
}

TEST(SelectivityTest, RangeNeverExceedsRelationSize) {
  ColumnStatistics stats = SampleStats();
  RangeBounds wide{-1000, 1000, true, true};
  auto e = EstimateRangeSelection(stats, wide);
  ASSERT_TRUE(e.ok());
  EXPECT_LE(*e, stats.num_tuples);
}

TEST(JoinEstimateTest, ExplicitExplicitPairsMatchExactly) {
  // Both sides fully explicit over the same 3 values.
  ColumnStatistics a, b;
  a.num_tuples = 60;
  a.num_distinct = 3;
  a.histogram =
      *CatalogHistogram::Make({{1, 30.0}, {2, 20.0}, {3, 10.0}}, 0.0, 0);
  b.num_tuples = 6;
  b.num_distinct = 3;
  b.histogram =
      *CatalogHistogram::Make({{1, 1.0}, {2, 2.0}, {3, 3.0}}, 0.0, 0);
  EXPECT_DOUBLE_EQ(EstimateEquiJoinSize(a, b), 30 + 40 + 30);
}

TEST(JoinEstimateTest, DefaultMassPairsLeftoverValues) {
  // No explicit entries at all: S ~= universe * dA * dB.
  ColumnStatistics a, b;
  a.histogram = *CatalogHistogram::Make({}, 5.0, 10);
  b.histogram = *CatalogHistogram::Make({}, 2.0, 10);
  EXPECT_DOUBLE_EQ(EstimateEquiJoinSize(a, b), 10 * 5.0 * 2.0);
}

TEST(JoinEstimateTest, MixedExplicitAndDefault) {
  // a explicit at value 1 (100 tuples) among 4 values; b all default.
  ColumnStatistics a, b;
  a.histogram = *CatalogHistogram::Make({{1, 100.0}}, 10.0, 3);
  b.histogram = *CatalogHistogram::Make({}, 2.0, 4);
  // 100*2 (value 1) + 3 remaining * 10 * 2 = 200 + 60.
  EXPECT_DOUBLE_EQ(EstimateEquiJoinSize(a, b), 260.0);
}

TEST(JoinEstimateTest, SelfJoinEstimateMatchesPropositionFormula) {
  // Joining a histogram with itself reproduces sum T_i^2/P_i when all
  // buckets are explicit-or-default consistent.
  ColumnStatistics a;
  a.histogram = *CatalogHistogram::Make({{1, 9.0}, {2, 7.0}}, 2.0, 5);
  // 81 + 49 + 5 * 4 = 150.
  EXPECT_DOUBLE_EQ(EstimateEquiJoinSize(a, a), 150.0);
}

}  // namespace
}  // namespace hops
