// TraceRecorder concurrency and correctness tests (telemetry/
// trace_recorder.h). The concurrency cases here are the reason this is its
// own binary: scripts/check.sh --tsan runs it under ThreadSanitizer, which
// must see the seqlock ring protocol as race-free BY THE MEMORY MODEL (all
// slot traffic is relaxed/acq-rel atomics), not via suppressions.

#include "telemetry/trace_recorder.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/trace_context.h"
#include "util/json.h"

namespace hops::telemetry {
namespace {

TraceEvent MakeEvent(uint64_t seq, const char* name = "Test.Span") {
  TraceEvent event;
  event.trace_hi = 0x1111111111111111ull;
  event.trace_lo = seq;  // payload the tests check for tearing
  event.span_id = seq;
  event.parent_span_id = seq / 2;
  event.start_nanos = static_cast<int64_t>(seq * 1000);
  event.end_nanos = static_cast<int64_t>(seq * 1000 + 500);
  std::snprintf(event.name, sizeof(event.name), "%s", name);
  std::snprintf(event.detail, sizeof(event.detail), "seq=%llu",
                static_cast<unsigned long long>(seq));
  return event;
}

TEST(TraceRecorderTest, RecordsAndCollects) {
  TraceRecorder recorder(TraceRecorder::Options{.ring_capacity = 64});
  for (uint64_t i = 1; i <= 10; ++i) recorder.Record(MakeEvent(i));
  const std::vector<TraceEvent> events = recorder.Collect();
  ASSERT_EQ(events.size(), 10u);
  // Oldest-first within the ring.
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(events[i].trace_lo, i + 1);
    EXPECT_STREQ(events[i].name, "Test.Span");
    EXPECT_EQ(std::string(events[i].detail),
              "seq=" + std::to_string(i + 1));
  }
  EXPECT_EQ(recorder.events_recorded(), 10u);
}

TEST(TraceRecorderTest, WraparoundKeepsNewestEvents) {
  TraceRecorder recorder(TraceRecorder::Options{.ring_capacity = 16});
  const uint64_t total = 100;
  for (uint64_t i = 1; i <= total; ++i) recorder.Record(MakeEvent(i));
  const std::vector<TraceEvent> events = recorder.Collect();
  ASSERT_EQ(events.size(), 16u);
  // The ring retains exactly the newest capacity events, oldest-first.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].trace_lo, total - 16 + 1 + i);
  }
  EXPECT_EQ(recorder.events_recorded(), total);
}

TEST(TraceRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  TraceRecorder recorder(TraceRecorder::Options{.ring_capacity = 5});
  for (uint64_t i = 1; i <= 64; ++i) recorder.Record(MakeEvent(i));
  EXPECT_EQ(recorder.Collect().size(), 8u);
}

TEST(TraceRecorderTest, PerThreadRingsConcatenate) {
  TraceRecorder recorder(TraceRecorder::Options{.ring_capacity = 64});
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 10;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        recorder.Record(MakeEvent(static_cast<uint64_t>(t) * 1000 + i + 1));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const std::vector<TraceEvent> events = recorder.Collect();
  ASSERT_EQ(events.size(), kThreads * kPerThread);
  std::set<uint64_t> seen;
  std::set<uint32_t> thread_ids;
  for (const TraceEvent& event : events) {
    seen.insert(event.trace_lo);
    thread_ids.insert(event.thread_id);
  }
  EXPECT_EQ(seen.size(), kThreads * kPerThread) << "no event lost or torn";
  EXPECT_EQ(thread_ids.size(), static_cast<size_t>(kThreads));
}

// The TSan centerpiece: writers hammer small rings (constant wraparound)
// while readers Collect concurrently. Correctness bar: no torn snapshot is
// ever returned — every collected event's payload words must be mutually
// consistent — and TSan must be silent.
TEST(TraceRecorderTest, ConcurrentEmitVersusCollect) {
  TraceRecorder recorder(TraceRecorder::Options{.ring_capacity = 8});
  constexpr int kWriters = 3;
  constexpr uint64_t kEventsPerWriter = 20000;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  std::atomic<uint64_t> collected{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      // do-while: even if this thread is scheduled only after the writers
      // finish (loaded CI box), it still collects the ring's final state.
      do {
        const std::vector<TraceEvent> events = recorder.Collect();
        collected.fetch_add(events.size(), std::memory_order_relaxed);
        for (const TraceEvent& event : events) {
          // Every writer stamps span_id == trace_lo and detail "seq=<lo>":
          // a torn copy (old payload mixed with new) breaks one of these.
          if (event.span_id != event.trace_lo ||
              std::string(event.detail) !=
                  "seq=" + std::to_string(event.trace_lo) ||
              event.end_nanos - event.start_nanos != 500) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
        }
      } while (!stop.load(std::memory_order_relaxed));
    });
  }
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&recorder, w] {
      for (uint64_t i = 1; i <= kEventsPerWriter; ++i) {
        recorder.Record(MakeEvent(static_cast<uint64_t>(w) * kEventsPerWriter + i));
      }
    });
  }
  for (std::thread& thread : writers) thread.join();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& thread : readers) thread.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(collected.load(), 0u) << "readers overlapped the writers";
  EXPECT_EQ(recorder.events_recorded(), kWriters * kEventsPerWriter);
}

TEST(TraceRecorderTest, SamplingIsDeterministicInTheTraceId) {
  TraceRecorder recorder(TraceRecorder::Options{.sample_one_in = 64});
  // Same id, same verdict, every time.
  const bool first = recorder.ShouldSample(0x1234, 0x5678);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(recorder.ShouldSample(0x1234, 0x5678), first);
  }
  // Rate roughly 1/64 over many minted ids (binomial; generous bounds).
  int sampled = 0;
  const int kTrials = 64 * 200;
  for (int i = 0; i < kTrials; ++i) {
    const TraceContext context = MintTraceContext();
    if (recorder.ShouldSample(context.trace_hi, context.trace_lo)) ++sampled;
  }
  EXPECT_GT(sampled, 50);
  EXPECT_LT(sampled, 500);
}

TEST(TraceRecorderTest, SamplingEdgeRates) {
  TraceRecorder all(TraceRecorder::Options{.sample_one_in = 1});
  TraceRecorder none(TraceRecorder::Options{.sample_one_in = 0});
  for (int i = 0; i < 100; ++i) {
    const TraceContext context = MintTraceContext();
    EXPECT_TRUE(all.ShouldSample(context.trace_hi, context.trace_lo));
    EXPECT_FALSE(none.ShouldSample(context.trace_hi, context.trace_lo));
  }
}

TEST(TraceRecorderTest, InstallCurrentUninstall) {
  EXPECT_EQ(TraceRecorder::Current(), nullptr);
  {
    TraceRecorder recorder;
    TraceRecorder::Install(&recorder);
    EXPECT_EQ(TraceRecorder::Current(), &recorder);
    // Destructor uninstalls itself if still current.
  }
  EXPECT_EQ(TraceRecorder::Current(), nullptr);
}

TEST(TraceRecorderTest, ChromeExportIsValidAndSorted) {
  TraceRecorder recorder(TraceRecorder::Options{.ring_capacity = 64});
  // Record out of start-time order; the export must sort.
  recorder.Record(MakeEvent(30, "Z.Late"));
  recorder.Record(MakeEvent(10, "A.Early"));
  recorder.Record(MakeEvent(20, "M.Middle"));
  const std::string json = recorder.ExportChromeTrace();

  Result<JsonValue> parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->AsArray().size(), 3u);
  double last_ts = -1;
  for (const JsonValue& event : events->AsArray()) {
    EXPECT_EQ(event.GetString("ph").ValueOrDie(), "X");
    EXPECT_EQ(event.GetString("cat").ValueOrDie(), "hops");
    const double ts = event.GetNumber("ts").ValueOrDie();
    EXPECT_GE(event.GetNumber("dur").ValueOrDie(), 0.0);
    EXPECT_GE(ts, last_ts) << "events must sort by start time";
    last_ts = ts;
    const JsonValue* args = event.Find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_EQ(args->GetString("trace_id").ValueOrDie().size(), 32u);
    EXPECT_EQ(args->GetString("span_id").ValueOrDie().size(), 16u);
  }
  EXPECT_EQ(events->AsArray()[0].GetString("name").ValueOrDie(), "A.Early");
}

TEST(TraceRecorderTest, DumpToFileWritesTheExport) {
  TraceRecorder recorder;
  recorder.Record(MakeEvent(1));
  const std::string path = ::testing::TempDir() + "/trace_dump_test.json";
  ASSERT_TRUE(recorder.DumpToFile(path).ok());
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string contents(1 << 16, '\0');
  contents.resize(std::fread(contents.data(), 1, contents.size(), file));
  std::fclose(file);
  EXPECT_EQ(contents, recorder.ExportChromeTrace());
  ASSERT_TRUE(ParseJson(contents).ok());
  std::remove(path.c_str());
}

TEST(TraceRecorderTest, DumpToBadPathFails) {
  TraceRecorder recorder;
  EXPECT_FALSE(recorder.DumpToFile("/nonexistent-dir/trace.json").ok());
}

TEST(TraceRecorderTest, EnvOptionsReadsSampleRate) {
  // No env var set in tests: defaults hold.
  const TraceRecorder::Options options = TraceRecorder::EnvOptions();
  EXPECT_EQ(options.sample_one_in, 64u);
  EXPECT_EQ(options.ring_capacity, 4096u);
}

}  // namespace
}  // namespace hops::telemetry
