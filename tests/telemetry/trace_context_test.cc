// Trace identity tests (telemetry/trace_context.h): W3C traceparent
// parsing/formatting round-trips, mint uniqueness, and the thread-local
// scope's install/restore discipline.

#include "telemetry/trace_context.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

namespace hops::telemetry {
namespace {

TEST(TraceContextTest, DefaultIsInvalid) {
  TraceContext context;
  EXPECT_FALSE(context.valid());
  EXPECT_EQ(FormatTraceId(context), "");
}

TEST(TraceContextTest, MintProducesValidUniqueContexts) {
  std::set<std::pair<uint64_t, uint64_t>> trace_ids;
  std::set<uint64_t> span_ids;
  for (int i = 0; i < 1000; ++i) {
    const TraceContext context = MintTraceContext();
    ASSERT_TRUE(context.valid());
    ASSERT_NE(context.span_id, 0u);
    EXPECT_FALSE(context.sampled) << "sampling is the caller's decision";
    trace_ids.insert({context.trace_hi, context.trace_lo});
    span_ids.insert(context.span_id);
  }
  EXPECT_EQ(trace_ids.size(), 1000u);
  EXPECT_EQ(span_ids.size(), 1000u);
}

TEST(TraceContextTest, MintSpanIdNeverZero) {
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NE(MintSpanId(), 0u);
  }
}

TEST(TraceContextTest, ParsesCanonicalTraceparent) {
  TraceContext context;
  ASSERT_TRUE(ParseTraceparent(
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", &context));
  EXPECT_EQ(context.trace_hi, 0x0af7651916cd43ddull);
  EXPECT_EQ(context.trace_lo, 0x8448eb211c80319cull);
  EXPECT_EQ(context.span_id, 0xb7ad6b7169203331ull);
  EXPECT_TRUE(context.sampled);
}

TEST(TraceContextTest, ParsesUnsampledFlag) {
  TraceContext context;
  ASSERT_TRUE(ParseTraceparent(
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00", &context));
  EXPECT_FALSE(context.sampled);
}

TEST(TraceContextTest, ParseAcceptsUppercaseHexNowhere) {
  TraceContext context;
  EXPECT_FALSE(ParseTraceparent(
      "00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01", &context));
}

TEST(TraceContextTest, ParseRejectsMalformedValues) {
  TraceContext context;
  // Wrong lengths / separators / fields.
  EXPECT_FALSE(ParseTraceparent("", &context));
  EXPECT_FALSE(ParseTraceparent("00", &context));
  EXPECT_FALSE(ParseTraceparent(
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331", &context));
  EXPECT_FALSE(ParseTraceparent(
      "00-0af7651916cd43dd8448eb211c80319-b7ad6b7169203331-01", &context));
  EXPECT_FALSE(ParseTraceparent(
      "000af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", &context));
  EXPECT_FALSE(ParseTraceparent(
      "zz-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", &context));
  // Zero trace id and zero parent span id are invalid per the spec.
  EXPECT_FALSE(ParseTraceparent(
      "00-00000000000000000000000000000000-b7ad6b7169203331-01", &context));
  EXPECT_FALSE(ParseTraceparent(
      "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", &context));
  // Version ff is forbidden.
  EXPECT_FALSE(ParseTraceparent(
      "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", &context));
}

TEST(TraceContextTest, ParseFutureVersionLeniently) {
  // Per the W3C spec, a longer value with a higher version parses as long
  // as the first four fields are well-formed and '-' follows.
  TraceContext context;
  ASSERT_TRUE(ParseTraceparent(
      "cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extrafield",
      &context));
  EXPECT_EQ(context.span_id, 0xb7ad6b7169203331ull);
  // ...but trailing garbage without the separator is malformed.
  EXPECT_FALSE(ParseTraceparent(
      "cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01extrafield",
      &context));
}

TEST(TraceContextTest, FormatRoundTrips) {
  TraceContext context;
  context.trace_hi = 0x0af7651916cd43ddull;
  context.trace_lo = 0x8448eb211c80319cull;
  context.span_id = 0xb7ad6b7169203331ull;
  context.sampled = true;
  const std::string header = FormatTraceparent(context);
  EXPECT_EQ(header, "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01");
  TraceContext parsed;
  ASSERT_TRUE(ParseTraceparent(header, &parsed));
  EXPECT_EQ(parsed.trace_hi, context.trace_hi);
  EXPECT_EQ(parsed.trace_lo, context.trace_lo);
  EXPECT_EQ(parsed.span_id, context.span_id);
  EXPECT_EQ(parsed.sampled, context.sampled);
}

TEST(TraceContextTest, FormatTraceIdIs32LowercaseHex) {
  TraceContext context;
  context.trace_hi = 0xABCDEF00ull;
  context.trace_lo = 0x12ull;
  EXPECT_EQ(FormatTraceId(context), "00000000abcdef000000000000000012");
  EXPECT_EQ(FormatSpanId(0x1ull), "0000000000000001");
}

TEST(TraceContextTest, ScopeInstallsAndRestores) {
  EXPECT_FALSE(CurrentTraceContext().valid());
  TraceContext outer = MintTraceContext();
  {
    TraceContextScope outer_scope(outer);
    EXPECT_EQ(CurrentTraceContext().trace_lo, outer.trace_lo);
    TraceContext inner = MintTraceContext();
    {
      TraceContextScope inner_scope(inner);
      EXPECT_EQ(CurrentTraceContext().trace_lo, inner.trace_lo);
    }
    EXPECT_EQ(CurrentTraceContext().trace_lo, outer.trace_lo);
  }
  EXPECT_FALSE(CurrentTraceContext().valid());
}

TEST(TraceContextTest, ContextIsPerThread) {
  TraceContext mine = MintTraceContext();
  TraceContextScope scope(mine);
  bool other_thread_saw_invalid = false;
  std::thread worker([&] {
    other_thread_saw_invalid = !CurrentTraceContext().valid();
  });
  worker.join();
  EXPECT_TRUE(other_thread_saw_invalid);
  EXPECT_EQ(CurrentTraceContext().trace_lo, mine.trace_lo);
}

TEST(TraceContextTest, Mix64IsABijectionOnSamples) {
  // Sanity: distinct inputs keep distinct outputs (SplitMix64's finalizer
  // is invertible, so collisions would be a transcription bug).
  std::set<uint64_t> outputs;
  for (uint64_t x = 0; x < 4096; ++x) {
    outputs.insert(internal::Mix64(x));
  }
  EXPECT_EQ(outputs.size(), 4096u);
}

}  // namespace
}  // namespace hops::telemetry
