// AccuracyTracker: q-error math, per-column distributions, and sink
// chaining (DESIGN.md §9).

#include "telemetry/accuracy.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "telemetry/metrics.h"

namespace hops::telemetry {
namespace {

TEST(QErrorTest, SymmetricMultiplicativeError) {
  EXPECT_DOUBLE_EQ(QError(10.0, 10.0), 1.0);   // perfect
  EXPECT_DOUBLE_EQ(QError(10.0, 100.0), 10.0);  // 10x under
  EXPECT_DOUBLE_EQ(QError(100.0, 10.0), 10.0);  // 10x over: symmetric
  EXPECT_DOUBLE_EQ(QError(2.0, 3.0), 1.5);
}

TEST(QErrorTest, ClampsAtOneTuple) {
  // Sub-tuple magnitudes count as exact: max(e,1)/max(a,1).
  EXPECT_DOUBLE_EQ(QError(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(QError(0.2, 0.9), 1.0);
  EXPECT_DOUBLE_EQ(QError(0.0, 50.0), 50.0);
  EXPECT_DOUBLE_EQ(QError(50.0, 0.0), 50.0);
  EXPECT_DOUBLE_EQ(QError(-3.0, 4.0), 4.0);  // negatives clamp to 1 too
}

TEST(QErrorTest, NonFiniteInputsReturnOne) {
  EXPECT_DOUBLE_EQ(QError(std::nan(""), 10.0), 1.0);
  EXPECT_DOUBLE_EQ(QError(10.0, std::numeric_limits<double>::infinity()), 1.0);
}

TEST(QErrorTest, AlwaysAtLeastOne) {
  for (double e : {0.0, 0.5, 1.0, 3.0, 1e6}) {
    for (double a : {0.0, 0.5, 1.0, 3.0, 1e6}) {
      EXPECT_GE(QError(e, a), 1.0) << "e=" << e << " a=" << a;
    }
  }
}

TEST(AccuracyTrackerTest, TracksUnderAndOverEstimates) {
  MetricRegistry registry;
  AccuracyTracker tracker(&registry);
  tracker.ReportEstimationError("t0", "a", /*estimated=*/10, /*actual=*/100);
  tracker.ReportEstimationError("t0", "a", /*estimated=*/100, /*actual=*/10);
  tracker.ReportEstimationError("t0", "a", /*estimated=*/40, /*actual=*/40);
  EXPECT_EQ(tracker.num_columns(), 1u);

  const Result<ColumnAccuracy> report = tracker.ColumnReport("t0", "a");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->table, "t0");
  EXPECT_EQ(report->column, "a");
  EXPECT_EQ(report->reports, 3u);
  EXPECT_EQ(report->underestimates, 1u);
  EXPECT_EQ(report->overestimates, 1u);
  EXPECT_DOUBLE_EQ(report->max_qerror, 10.0);
  // Mean of {10, 10, 1}.
  EXPECT_DOUBLE_EQ(report->mean_qerror, 7.0);
  // p50 rank 2 of sorted {1, 10, 10}: true value 10, bucket boundary 16,
  // clamped to the observed max 10.
  EXPECT_DOUBLE_EQ(report->p50_qerror, 10.0);
  EXPECT_DOUBLE_EQ(report->p99_qerror, 10.0);
}

TEST(AccuracyTrackerTest, ColumnsAreIndependentAndSorted) {
  MetricRegistry registry;
  AccuracyTracker tracker(&registry);
  tracker.ReportEstimationError("t1", "b", 1, 1);
  tracker.ReportEstimationError("t0", "a", 5, 10);
  tracker.ReportEstimationError("t0", "a", 5, 10);
  const std::vector<ColumnAccuracy> all = tracker.Report();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].table, "t0");
  EXPECT_EQ(all[0].column, "a");
  EXPECT_EQ(all[0].reports, 2u);
  EXPECT_EQ(all[0].underestimates, 2u);
  EXPECT_EQ(all[1].table, "t1");
  EXPECT_EQ(all[1].reports, 1u);
  EXPECT_EQ(all[1].underestimates, 0u);
  EXPECT_EQ(all[1].overestimates, 0u);
}

TEST(AccuracyTrackerTest, UnknownColumnIsNotFound) {
  MetricRegistry registry;
  AccuracyTracker tracker(&registry);
  const Result<ColumnAccuracy> report = tracker.ColumnReport("t9", "z");
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kNotFound);
}

TEST(AccuracyTrackerTest, RegistersLabeledFamilies) {
  MetricRegistry registry;
  AccuracyTracker tracker(&registry);
  tracker.ReportEstimationError("orders", "price", 8, 64);
  const MetricsSnapshot snap = registry.Collect();
  const LabelSet labels = {{"table", "orders"}, {"column", "price"}};
  const MetricSnapshot* reports =
      snap.Find("hops_estimate_feedback_total", labels);
  ASSERT_NE(reports, nullptr);
  EXPECT_DOUBLE_EQ(reports->value, 1.0);
  const MetricSnapshot* qerror = snap.Find("hops_estimate_qerror", labels);
  ASSERT_NE(qerror, nullptr);
  EXPECT_EQ(qerror->histogram.count, 1u);
  EXPECT_DOUBLE_EQ(qerror->histogram.max, 8.0);
}

// A recording sink that remembers every report, to prove chaining.
class RecordingSink : public EstimationFeedbackSink {
 public:
  void ReportEstimationError(std::string_view table, std::string_view column,
                             double estimated, double actual) override {
    reports.push_back({std::string(table), std::string(column), estimated,
                       actual});
  }
  struct Report {
    std::string table, column;
    double estimated, actual;
  };
  std::vector<Report> reports;
};

TEST(AccuracyTrackerTest, ForwardsEveryReportToTheNextSink) {
  MetricRegistry registry;
  RecordingSink next;
  AccuracyTracker tracker(&registry, &next);
  tracker.ReportEstimationError("t0", "a", 10, 20);
  // Non-finite reports are not *recorded* but still forwarded (the next
  // sink decides its own policy).
  tracker.ReportEstimationError("t0", "a", std::nan(""), 20);
  ASSERT_EQ(next.reports.size(), 2u);
  EXPECT_EQ(next.reports[0].table, "t0");
  EXPECT_DOUBLE_EQ(next.reports[0].estimated, 10.0);
  EXPECT_DOUBLE_EQ(next.reports[0].actual, 20.0);
  const Result<ColumnAccuracy> report = tracker.ColumnReport("t0", "a");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->reports, 1u);  // the NaN report was skipped here
}

}  // namespace
}  // namespace hops::telemetry
