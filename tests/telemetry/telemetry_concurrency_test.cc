// Telemetry under concurrency: N writer threads against sharded counters /
// histograms with exact-sum reconciliation after join, collectors racing
// writers, and spans on many threads. Run under ThreadSanitizer by
// scripts/check.sh (the §9 "TSan-clean" acceptance gate, next to the
// snapshot and refresh-daemon suites).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/accuracy.h"
#include "telemetry/exporters.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace hops::telemetry {
namespace {

constexpr int kThreads = 8;

TEST(TelemetryConcurrencyTest, CounterReconcilesExactlyAfterJoin) {
  Counter counter;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& w : writers) w.join();
  // The contract: relaxed increments may be invisible to a concurrent
  // reader, but once writers quiesce the shard sum is exact.
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(TelemetryConcurrencyTest, CounterReadsAreMonotonicUnderWriters) {
  Counter counter;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) counter.Increment();
    });
  }
  uint64_t last = 0;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t now = counter.Value();
    EXPECT_GE(now, last);
    last = now;
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& w : writers) w.join();
}

TEST(TelemetryConcurrencyTest, GaugeFoldsAreAtomic) {
  Gauge gauge;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) gauge.Add(1.0);
    });
  }
  for (std::thread& w : writers) w.join();
  // Every CAS-looped Add lands exactly once (integers up to 8e4 are exact
  // in double).
  EXPECT_DOUBLE_EQ(gauge.Value(), static_cast<double>(kThreads * kPerThread));
}

TEST(TelemetryConcurrencyTest, HistogramReconcilesExactlyAfterJoin) {
  LatencyHistogram hist(LogBucketSpec{1.0, 2.0, 8});
  constexpr int kPerThread = 10000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      // Thread t records the constant value 2^t: lands in bucket t
      // (boundary-inclusive), so per-bucket counts are checkable exactly.
      const double value = static_cast<double>(uint64_t{1} << t);
      for (int i = 0; i < kPerThread; ++i) hist.Record(value);
    });
  }
  for (std::thread& w : writers) w.join();
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(snap.counts[static_cast<size_t>(t)],
              static_cast<uint64_t>(kPerThread))
        << "bucket " << t;
  }
  EXPECT_DOUBLE_EQ(snap.max, static_cast<double>(uint64_t{1} << (kThreads - 1)));
  // Integer-valued observations: the per-shard double folds are exact.
  double expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    expected_sum += static_cast<double>(kPerThread) *
                    static_cast<double>(uint64_t{1} << t);
  }
  EXPECT_DOUBLE_EQ(snap.sum, expected_sum);
}

TEST(TelemetryConcurrencyTest, RegistryGetOrCreateRaces) {
  MetricRegistry registry;
  std::vector<std::thread> threads;
  std::vector<Counter*> seen(kThreads, nullptr);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // All threads race to create the same families and distinct ones.
      seen[static_cast<size_t>(t)] =
          registry.GetCounter("shared_total", "Shared.");
      registry.GetCounter("per_thread_total", "Per-thread.",
                          {{"t", std::to_string(t)}})
          ->Increment();
      registry.GetHistogram("shared_seconds", "Shared histogram.",
                            LogBucketSpec{1.0, 2.0, 4})
          ->Record(1.0);
    });
  }
  for (std::thread& w : threads) w.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<size_t>(t)], seen[0]);
  }
  // shared_total + shared_seconds + kThreads per-thread children.
  EXPECT_EQ(registry.num_metrics(), static_cast<size_t>(2 + kThreads));
  const MetricsSnapshot snap = registry.Collect();
  const MetricSnapshot* shared = snap.Find("shared_seconds");
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared->histogram.count, static_cast<uint64_t>(kThreads));
}

TEST(TelemetryConcurrencyTest, CollectAndRenderRaceWriters) {
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("busy_total", "Busy.");
  LatencyHistogram* hist = registry.GetHistogram(
      "busy_seconds", "Busy histogram.", LogBucketSpec{1e-3, 2.0, 16});
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      double v = 1e-3;
      while (!stop.load(std::memory_order_relaxed)) {
        counter->Increment();
        hist->Record(v);
        v = v < 10.0 ? v * 1.1 : 1e-3;
      }
    });
  }
  // Collector thread: snapshot + render both formats while writers run.
  for (int i = 0; i < 50; ++i) {
    const MetricsSnapshot snap = registry.Collect();
    const std::string prom = RenderPrometheus(snap);
    const std::string json = RenderJson(snap);
    EXPECT_NE(prom.find("busy_total"), std::string::npos);
    EXPECT_NE(json.find("busy_seconds"), std::string::npos);
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& w : writers) w.join();
  // Quiesced: count in a fresh snapshot equals the counter exactly.
  EXPECT_EQ(registry.Collect().Find("busy_seconds")->histogram.count,
            hist->Count());
}

TEST(TelemetryConcurrencyTest, SpansOnManyThreadsAreIndependentRoots) {
  const bool was_enabled = Enabled();
  SetEnabled(true);
  MetricRegistry registry;
  SpanSite& site = GetSpanSite("Concurrency.ManyThreads", &registry);
  constexpr int kSpansPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan outer(site);
        TraceSpan inner(site);  // nested on the same thread
      }
    });
  }
  for (std::thread& w : threads) w.join();
  EXPECT_EQ(site.count->Value(),
            static_cast<uint64_t>(kThreads) * 2 * kSpansPerThread);
  EXPECT_EQ(site.duration_seconds->Count(), site.count->Value());
  // Self time never exceeds total time.
  EXPECT_LE(site.self_nanos->Value(), site.total_nanos->Value());
  SetEnabled(was_enabled);
}

TEST(TelemetryConcurrencyTest, AccuracyTrackerConcurrentReports) {
  MetricRegistry registry;
  AccuracyTracker tracker(&registry);
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string column = "c" + std::to_string(t % 2);
      for (int i = 0; i < kPerThread; ++i) {
        // Alternate 2x under / 2x over.
        if (i % 2 == 0) {
          tracker.ReportEstimationError("t0", column, 10, 20);
        } else {
          tracker.ReportEstimationError("t0", column, 20, 10);
        }
      }
    });
  }
  for (std::thread& w : threads) w.join();
  EXPECT_EQ(tracker.num_columns(), 2u);
  uint64_t total_reports = 0;
  for (const ColumnAccuracy& column : tracker.Report()) {
    total_reports += column.reports;
    EXPECT_EQ(column.underestimates + column.overestimates, column.reports);
    EXPECT_DOUBLE_EQ(column.max_qerror, 2.0);
  }
  EXPECT_EQ(total_reports, static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(TelemetryConcurrencyTest, SinkWritesWhileWritersRecord) {
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("sinked_total", "Sinked.");
  TelemetrySinkOptions options;
  options.path = ::testing::TempDir() + "/hops_sink_race.prom";
  options.registry = &registry;
  options.write_interval_micros = 500;
  TelemetrySink sink(options);
  ASSERT_TRUE(sink.Start().ok());
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) counter->Increment();
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& w : writers) w.join();
  ASSERT_TRUE(sink.Stop().ok());
  EXPECT_GE(sink.writes(), 1u);
}


// The atomic-publication regression (ISSUE §10 satellite): a fixed metric
// set renders identically every time, so a concurrent scraper reading the
// sink's path must see exactly that byte string on every read — never a
// prefix, never an interleaving of two writes. Before the temp-file +
// rename() fix, the sink truncated the target in place and a concurrent
// reader could observe a half-written export.
TEST(TelemetryConcurrencyTest, SinkScrapersNeverSeeATornExport) {
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("stable_total", "Stable.");
  counter->Increment(123456789);
  Gauge* gauge = registry.GetGauge("stable_gauge", "Also stable.");
  gauge->Set(3.25);

  TelemetrySinkOptions options;
  options.path = ::testing::TempDir() + "/hops_sink_atomic.prom";
  options.registry = &registry;
  // Freeze the process gauges: this test's detector is "every complete
  // export is byte-identical", which needs the registry truly fixed.
  options.update_process_metrics = false;
  TelemetrySink sink(options);

  // The metrics never change, so every complete export is byte-identical.
  ASSERT_TRUE(sink.WriteOnce().ok());
  std::ifstream golden_in(options.path);
  const std::string golden((std::istreambuf_iterator<char>(golden_in)),
                           std::istreambuf_iterator<char>());
  ASSERT_FALSE(golden.empty());

  std::atomic<bool> stop{false};
  std::atomic<int> torn_reads{0};
  std::atomic<int> complete_reads{0};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 2; ++t) {
    scrapers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        std::ifstream in(options.path);
        if (!in) continue;  // rename window on some filesystems
        const std::string content((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
        if (content == golden) {
          complete_reads.fetch_add(1, std::memory_order_relaxed);
        } else {
          torn_reads.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(sink.WriteOnce().ok());
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& s : scrapers) s.join();
  writer.join();

  EXPECT_EQ(torn_reads.load(), 0);
  EXPECT_GT(complete_reads.load(), 0);
  EXPECT_GE(sink.writes(), 1u);
}

}  // namespace
}  // namespace hops::telemetry

