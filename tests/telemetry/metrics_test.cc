// Metrics core: sharded counters, gauges, log-bucket latency histograms,
// and the labeled registry (DESIGN.md §9).

#include "telemetry/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "util/random.h"

namespace hops::telemetry {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(CounterTest, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(Counter(1).num_shards(), 1u);
  EXPECT_EQ(Counter(2).num_shards(), 2u);
  EXPECT_EQ(Counter(3).num_shards(), 4u);
  EXPECT_EQ(Counter(5).num_shards(), 8u);
  // 0 = the process default, itself a power of two in [1, 64].
  const size_t d = Counter(0).num_shards();
  EXPECT_GE(d, 1u);
  EXPECT_LE(d, 64u);
  EXPECT_EQ(d & (d - 1), 0u);
}

TEST(GaugeTest, SetAddSetMax) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.Add(-1.0);
  EXPECT_DOUBLE_EQ(g.Value(), 1.5);
  g.SetMax(1.0);  // below: no-op
  EXPECT_DOUBLE_EQ(g.Value(), 1.5);
  g.SetMax(7.0);  // above: raises
  EXPECT_DOUBLE_EQ(g.Value(), 7.0);
}

TEST(LogBucketSpecTest, BoundsAreLogSpaced) {
  LogBucketSpec spec{/*first_upper=*/1.0, /*growth=*/2.0, /*num_buckets=*/5};
  const std::vector<double> bounds = spec.UpperBounds();
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[1], 2.0);
  EXPECT_DOUBLE_EQ(bounds[4], 16.0);
}

TEST(LogBucketSpecTest, QErrorSpecStartsAtOne) {
  const std::vector<double> bounds = LogBucketSpec::QError().UpperBounds();
  ASSERT_FALSE(bounds.empty());
  EXPECT_DOUBLE_EQ(bounds.front(), 1.0);  // q-error is always >= 1
  EXPECT_GT(bounds.back(), 1e6);
}

TEST(LatencyHistogramTest, EmptySnapshot) {
  LatencyHistogram h;
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 0.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(snap.Mean(), 0.0);
}

TEST(LatencyHistogramTest, RecordsIntoCorrectBuckets) {
  // Buckets: (..,1], (1,2], (2,4], (4,8], overflow (8,..).
  LatencyHistogram h(LogBucketSpec{1.0, 2.0, 4});
  h.Record(0.5);   // bucket 0 (<= first_upper)
  h.Record(1.0);   // bucket 0 (boundary is inclusive)
  h.Record(1.5);   // bucket 1
  h.Record(8.0);   // bucket 3
  h.Record(100.0);  // overflow
  const HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.counts.size(), 5u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 0u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.counts[4], 1u);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.sum, 111.0);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
  EXPECT_EQ(h.Count(), 5u);
}

TEST(LatencyHistogramTest, NonFiniteValuesAreIgnored) {
  LatencyHistogram h(LogBucketSpec{1.0, 2.0, 4});
  h.Record(std::nan(""));
  h.Record(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.Count(), 0u);
}

// The quantile contract: the answer is the upper bound of the log-spaced
// bucket containing the true order statistic (never above the observed
// max); the overflow bucket answers with the observed max. Checked against
// a sorted-sample oracle.
TEST(LatencyHistogramTest, QuantileMatchesSortedSampleOracle) {
  const LogBucketSpec spec{1e-6, 2.0, 30};
  LatencyHistogram h(spec);
  const std::vector<double> bounds = spec.UpperBounds();

  Rng rng(1234);
  std::vector<double> samples;
  samples.reserve(5000);
  for (int i = 0; i < 5000; ++i) {
    // Log-uniform over ~8 decades, inside the finite bucket range.
    const double v = 1e-6 * std::pow(10.0, 8.0 * rng.NextDouble());
    samples.push_back(v);
    h.Record(v);
  }
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const double observed_max = sorted.back();

  const HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.count, samples.size());
  for (double q : {0.0, 0.01, 0.10, 0.50, 0.90, 0.95, 0.99, 1.0}) {
    // Oracle: the true order statistic at rank ceil(q * n) (1-based).
    const size_t rank = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(q * static_cast<double>(sorted.size()))));
    const double truth = sorted[rank - 1];
    // Expected answer: the bucket boundary covering the truth, clamped to
    // the observed max.
    const auto it = std::lower_bound(bounds.begin(), bounds.end(), truth);
    ASSERT_NE(it, bounds.end());  // samples stay inside the finite range
    const double expected = std::min(*it, observed_max);
    EXPECT_DOUBLE_EQ(snap.Quantile(q), expected) << "q = " << q;
    // And the boundary answer brackets the truth to within one growth step.
    EXPECT_GE(snap.Quantile(q), std::min(truth, observed_max)) << "q = " << q;
    EXPECT_LE(snap.Quantile(q), truth * spec.growth) << "q = " << q;
  }
  EXPECT_DOUBLE_EQ(snap.max, observed_max);
  // Mean is exact (sum is folded exactly per shard, modulo fp addition).
  double sum = 0;
  for (double v : samples) sum += v;
  EXPECT_NEAR(snap.Mean(), sum / static_cast<double>(samples.size()),
              1e-9 * sum);
}

TEST(LatencyHistogramTest, OverflowBucketAnswersWithObservedMax) {
  LatencyHistogram h(LogBucketSpec{1.0, 2.0, 2});  // finite range (.., 2]
  h.Record(50.0);
  h.Record(75.0);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 75.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 75.0);
}

TEST(LatencyHistogramTest, QuantileNeverExceedsObservedMax) {
  LatencyHistogram h(LogBucketSpec{1.0, 2.0, 8});
  h.Record(1.1);  // bucket (1, 2] — boundary 2 exceeds the observation
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 1.1);
}

TEST(MetricRegistryTest, GetOrCreateReturnsStablePointers) {
  MetricRegistry registry;
  Counter* a = registry.GetCounter("hits_total", "Hits.");
  Counter* b = registry.GetCounter("hits_total", "Hits.");
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.num_metrics(), 1u);
  // Different labels → different child, same family.
  Counter* c =
      registry.GetCounter("hits_total", "Hits.", {{"table", "t0"}});
  EXPECT_NE(a, c);
  EXPECT_EQ(registry.num_metrics(), 2u);
}

TEST(MetricRegistryTest, CollectIsSortedAndTyped) {
  MetricRegistry registry;
  registry.GetCounter("b_total", "B.")->Increment(3);
  registry.GetGauge("a_depth", "A.")->Set(1.5);
  registry.GetHistogram("c_seconds", "C.", LogBucketSpec{1.0, 2.0, 4})
      ->Record(3.0);
  const MetricsSnapshot snap = registry.Collect();
  ASSERT_EQ(snap.metrics.size(), 3u);
  EXPECT_EQ(snap.metrics[0].name, "a_depth");
  EXPECT_EQ(snap.metrics[0].type, MetricType::kGauge);
  EXPECT_DOUBLE_EQ(snap.metrics[0].value, 1.5);
  EXPECT_EQ(snap.metrics[1].name, "b_total");
  EXPECT_EQ(snap.metrics[1].type, MetricType::kCounter);
  EXPECT_DOUBLE_EQ(snap.metrics[1].value, 3.0);
  EXPECT_EQ(snap.metrics[2].name, "c_seconds");
  EXPECT_EQ(snap.metrics[2].type, MetricType::kHistogram);
  EXPECT_EQ(snap.metrics[2].histogram.count, 1u);
}

TEST(MetricRegistryTest, FindLocatesChildrenByLabels) {
  MetricRegistry registry;
  registry.GetCounter("x_total", "X.", {{"k", "a"}})->Increment(1);
  registry.GetCounter("x_total", "X.", {{"k", "b"}})->Increment(2);
  const MetricsSnapshot snap = registry.Collect();
  ASSERT_NE(snap.Find("x_total"), nullptr);
  const MetricSnapshot* b = snap.Find("x_total", {{"k", "b"}});
  ASSERT_NE(b, nullptr);
  EXPECT_DOUBLE_EQ(b->value, 2.0);
  EXPECT_EQ(snap.Find("missing"), nullptr);
  EXPECT_EQ(snap.Find("x_total", {{"k", "z"}}), nullptr);
}

TEST(ExemplarReservoirTest, KeepsTheKLargestObservations) {
  ExemplarReservoir reservoir(3);
  EXPECT_EQ(reservoir.capacity(), 3u);
  reservoir.Offer(1.0, "a");
  reservoir.Offer(5.0, "b");
  reservoir.Offer(3.0, "c");
  // Full: 0.5 loses to the current minimum (1.0) and is rejected on the
  // atomic-threshold fast path; 9.0 displaces the minimum.
  reservoir.Offer(0.5, "loser");
  reservoir.Offer(9.0, "winner");
  const std::vector<Exemplar> snap = reservoir.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_DOUBLE_EQ(snap[0].value, 9.0);
  EXPECT_EQ(snap[0].detail, "winner");
  EXPECT_DOUBLE_EQ(snap[1].value, 5.0);
  EXPECT_DOUBLE_EQ(snap[2].value, 3.0);
  EXPECT_GT(snap[0].unix_nanos, 0);
}

TEST(ExemplarReservoirTest, TiesAtTheThresholdAreRejected) {
  ExemplarReservoir reservoir(2);
  reservoir.Offer(2.0, "a");
  reservoir.Offer(2.0, "b");
  reservoir.Offer(2.0, "c");  // equal to the retained minimum: not admitted
  EXPECT_EQ(reservoir.Snapshot().size(), 2u);
}

TEST(LatencyHistogramTest, RecordWithExemplarAttachesToSnapshot) {
  LatencyHistogram histogram(LogBucketSpec{1.0, 2.0, 4}, 1);
  histogram.Record(0.5);  // plain Record never creates exemplars
  EXPECT_TRUE(histogram.Snapshot().exemplars.empty());
  histogram.RecordWithExemplar(3.0, "POST /estimate n=64");
  histogram.RecordWithExemplar(7.0, "POST /estimate n=4096");
  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 3u);
  ASSERT_EQ(snap.exemplars.size(), 2u);
  EXPECT_DOUBLE_EQ(snap.exemplars[0].value, 7.0);
  EXPECT_EQ(snap.exemplars[0].detail, "POST /estimate n=4096");
}

TEST(ExemplarReservoirTest, ConcurrentOffersKeepGlobalMaxima) {
  ExemplarReservoir reservoir(4);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reservoir, t] {
      for (int i = 0; i < kPerThread; ++i) {
        reservoir.Offer(t * kPerThread + i, "v");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const std::vector<Exemplar> snap = reservoir.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  // The four largest values overall must have survived every interleaving.
  EXPECT_DOUBLE_EQ(snap[0].value, kThreads * kPerThread - 1);
  EXPECT_DOUBLE_EQ(snap[3].value, kThreads * kPerThread - 4);
}

TEST(EnabledTest, SetEnabledtogglesTheKillSwitch) {
  const bool before = Enabled();
  SetEnabled(false);
  EXPECT_FALSE(Enabled());
  SetEnabled(true);
  EXPECT_TRUE(Enabled());
  SetEnabled(before);
}

}  // namespace
}  // namespace hops::telemetry
