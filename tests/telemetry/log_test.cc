// Structured logger tests (telemetry/log.h): JSON line shape, level
// filtering, trace-id correlation, the per-site rate limit with its
// "suppressed" carryover, and LogBuffer ring semantics.

#include "telemetry/log.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "telemetry/trace_context.h"
#include "util/json.h"

namespace hops::telemetry {
namespace {

// Same formula the logger's admission window uses; lets tests pin a
// LogSite's window to "now" and exhaust its budget deterministically.
int64_t SteadySecondsNow() {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string LastGlobalLine() {
  const std::vector<std::string> lines = LogBuffer::Global().Snapshot(1);
  return lines.empty() ? std::string() : lines.back();
}

TEST(LogTest, RendersOneJsonObjectPerLineWithTypedFields) {
  SetMinLogLevel(LogLevel::kInfo);
  LogRecord(LogLevel::kWarn, "test", "typed fields",
            {{"s", LogValue("text")},
             {"i", LogValue(int64_t{-7})},
             {"u", LogValue(uint64_t{42})},
             {"d", LogValue(3.5)},
             {"b", LogValue(true)}});
  Result<JsonValue> parsed = ParseJson(LastGlobalLine());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->GetString("level").ValueOrDie(), "warn");
  EXPECT_EQ(parsed->GetString("component").ValueOrDie(), "test");
  EXPECT_EQ(parsed->GetString("message").ValueOrDie(), "typed fields");
  EXPECT_GT(parsed->GetNumber("ts").ValueOrDie(), 0.0);
  EXPECT_EQ(parsed->GetString("s").ValueOrDie(), "text");
  EXPECT_EQ(parsed->GetInt("i").ValueOrDie(), -7);
  EXPECT_EQ(parsed->GetInt("u").ValueOrDie(), 42);
  EXPECT_EQ(parsed->GetNumber("d").ValueOrDie(), 3.5);
  EXPECT_EQ(parsed->GetBool("b").ValueOrDie(), true);
  // No trace scope on this thread: no trace_id key.
  EXPECT_EQ(parsed->Find("trace_id"), nullptr);
  EXPECT_EQ(parsed->Find("suppressed"), nullptr);
}

TEST(LogTest, LevelFilterDropsLinesBelowTheMinimum) {
  SetMinLogLevel(LogLevel::kWarn);
  EXPECT_FALSE(ShouldLog(LogLevel::kDebug));
  EXPECT_FALSE(ShouldLog(LogLevel::kInfo));
  EXPECT_TRUE(ShouldLog(LogLevel::kWarn));
  EXPECT_TRUE(ShouldLog(LogLevel::kError));
  EXPECT_EQ(MinLogLevel(), LogLevel::kWarn);

  const uint64_t before = LogBuffer::Global().total_lines();
  LogRecord(LogLevel::kInfo, "test", "filtered out");
  EXPECT_EQ(LogBuffer::Global().total_lines(), before);
  LogRecord(LogLevel::kError, "test", "admitted");
  EXPECT_EQ(LogBuffer::Global().total_lines(), before + 1);

  SetMinLogLevel(LogLevel::kInfo);  // restore the default for other tests
}

TEST(LogTest, AttachesTheCurrentTraceId) {
  SetMinLogLevel(LogLevel::kInfo);
  TraceContext context = MintTraceContext();
  {
    TraceContextScope scope(context);
    LogRecord(LogLevel::kInfo, "test", "inside a trace");
  }
  Result<JsonValue> parsed = ParseJson(LastGlobalLine());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->GetString("trace_id").ValueOrDie(),
            FormatTraceId(context));
}

TEST(LogTest, RateLimitSuppressesAndCarriesTheCount) {
  SetMinLogLevel(LogLevel::kInfo);
  LogSite site;
  // Pin the site's window to the current second with the budget exhausted,
  // so the next line is dropped. If the clock rolls to a new second between
  // the pin and the call the window resets and the line is admitted —
  // retry until a drop lands (each attempt has the whole second to win).
  uint64_t dropped = 0;
  for (int attempt = 0; attempt < 100 && dropped == 0; ++attempt) {
    site.window_start_sec.store(SteadySecondsNow());
    site.admitted_in_window.store(1000);
    const uint64_t before = LogBuffer::Global().total_lines();
    LogRecord(LogLevel::kInfo, "test", "over budget", {}, &site);
    if (LogBuffer::Global().total_lines() == before) {
      dropped = site.suppressed.load();
    }
  }
  ASSERT_GT(dropped, 0u) << "budget-exhausted line was never dropped";

  // The next admitted line from the same site carries the drop count.
  site.window_start_sec.store(SteadySecondsNow());
  site.admitted_in_window.store(0);
  const uint64_t before = LogBuffer::Global().total_lines();
  LogRecord(LogLevel::kInfo, "test", "after suppression", {}, &site);
  ASSERT_EQ(LogBuffer::Global().total_lines(), before + 1);
  Result<JsonValue> parsed = ParseJson(LastGlobalLine());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->GetInt("suppressed").ValueOrDie(),
            static_cast<int64_t>(dropped));
  EXPECT_EQ(site.suppressed.load(), 0u) << "carryover drains the counter";
}

TEST(LogTest, NullSiteIsNeverRateLimited) {
  SetMinLogLevel(LogLevel::kInfo);
  const uint64_t before = LogBuffer::Global().total_lines();
  for (int i = 0; i < 50; ++i) {
    LogRecord(LogLevel::kInfo, "test", "unlimited", {}, nullptr);
  }
  EXPECT_EQ(LogBuffer::Global().total_lines(), before + 50);
}

TEST(LogTest, MacroLogsWithFieldsAndShortCircuitsOnLevel) {
  SetMinLogLevel(LogLevel::kInfo);
  const uint64_t before = LogBuffer::Global().total_lines();
  HOPS_LOG(LogLevel::kInfo, "test", "macro line",
           {"answer", LogValue(int64_t{41})});
  EXPECT_EQ(LogBuffer::Global().total_lines(), before + 1);
  Result<JsonValue> parsed = ParseJson(LastGlobalLine());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->GetInt("answer").ValueOrDie(), 41);

  SetMinLogLevel(LogLevel::kError);
  HOPS_LOG(LogLevel::kInfo, "test", "filtered macro line");
  EXPECT_EQ(LogBuffer::Global().total_lines(), before + 1);
  SetMinLogLevel(LogLevel::kInfo);
}

TEST(LogTest, BufferKeepsTheNewestLinesOldestFirst) {
  LogBuffer buffer(/*capacity=*/4);
  for (int i = 1; i <= 6; ++i) buffer.Push(std::to_string(i));
  EXPECT_EQ(buffer.total_lines(), 6u);
  const std::vector<std::string> all = buffer.Snapshot();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all.front(), "3");
  EXPECT_EQ(all.back(), "6");
  const std::vector<std::string> two = buffer.Snapshot(2);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two.front(), "5");
  EXPECT_EQ(two.back(), "6");
}

}  // namespace
}  // namespace hops::telemetry
