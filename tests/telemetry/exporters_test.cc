// Exporters: Prometheus text-format and JSON golden outputs, escaping, and
// the TelemetrySink periodic file writer (DESIGN.md §9).

#include "telemetry/exporters.h"

#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "telemetry/metrics.h"
#include "util/json.h"

namespace hops::telemetry {
namespace {

// One registry with all three metric types, fully deterministic.
void PopulateDemoRegistry(MetricRegistry* registry) {
  registry->GetCounter("hops_demo_total", "Demo counter.")->Increment(3);
  registry->GetGauge("hops_queue_depth", "Queue depth.")->Set(2.5);
  LatencyHistogram* hist = registry->GetHistogram(
      "hops_demo_seconds", "Demo histogram.", LogBucketSpec{1.0, 2.0, 3},
      {{"phase", "x"}});
  hist->Record(0.5);    // bucket (.., 1]
  hist->Record(3.0);    // bucket (2, 4]
  hist->Record(100.0);  // overflow
}

TEST(PrometheusExportTest, GoldenOutput) {
  MetricRegistry registry;
  PopulateDemoRegistry(&registry);
  const std::string got = RenderPrometheus(registry.Collect());
  const std::string want =
      "# HELP hops_demo_seconds Demo histogram.\n"
      "# TYPE hops_demo_seconds histogram\n"
      "hops_demo_seconds_bucket{phase=\"x\",le=\"1\"} 1\n"
      "hops_demo_seconds_bucket{phase=\"x\",le=\"2\"} 1\n"
      "hops_demo_seconds_bucket{phase=\"x\",le=\"4\"} 2\n"
      "hops_demo_seconds_bucket{phase=\"x\",le=\"+Inf\"} 3\n"
      "hops_demo_seconds_sum{phase=\"x\"} 103.5\n"
      "hops_demo_seconds_count{phase=\"x\"} 3\n"
      "# HELP hops_demo_total Demo counter.\n"
      "# TYPE hops_demo_total counter\n"
      "hops_demo_total 3\n"
      "# HELP hops_queue_depth Queue depth.\n"
      "# TYPE hops_queue_depth gauge\n"
      "hops_queue_depth 2.5\n";
  EXPECT_EQ(got, want);
}

TEST(PrometheusExportTest, MultipleChildrenShareOneHeader) {
  MetricRegistry registry;
  registry.GetCounter("hits_total", "Hits.", {{"k", "a"}})->Increment(1);
  registry.GetCounter("hits_total", "Hits.", {{"k", "b"}})->Increment(2);
  const std::string got = RenderPrometheus(registry.Collect());
  const std::string want =
      "# HELP hits_total Hits.\n"
      "# TYPE hits_total counter\n"
      "hits_total{k=\"a\"} 1\n"
      "hits_total{k=\"b\"} 2\n";
  EXPECT_EQ(got, want);
}

TEST(PrometheusExportTest, EscapesLabelValuesAndHelp) {
  MetricRegistry registry;
  registry
      .GetCounter("odd_total", "Help with \\ and\nnewline.",
                  {{"name", "quote\"back\\slash\nnl"}})
      ->Increment(1);
  const std::string got = RenderPrometheus(registry.Collect());
  const std::string want =
      "# HELP odd_total Help with \\\\ and\\nnewline.\n"
      "# TYPE odd_total counter\n"
      "odd_total{name=\"quote\\\"back\\\\slash\\nnl\"} 1\n";
  EXPECT_EQ(got, want);
}

TEST(JsonExportTest, GoldenOutput) {
  MetricRegistry registry;
  PopulateDemoRegistry(&registry);
  const std::string got = RenderJson(registry.Collect());
  const std::string want =
      "{\"hops_demo_seconds\":{\"type\":\"histogram\",\"help\":\"Demo "
      "histogram.\",\"children\":[{\"labels\":{\"phase\":\"x\"},\"count\":3,"
      "\"sum\":103.5,\"max\":100,\"p50\":4,\"p95\":100,\"p99\":100,"
      "\"buckets\":[{\"le\":1,\"count\":1},{\"le\":2,\"count\":0},"
      "{\"le\":4,\"count\":1},{\"le\":\"+Inf\",\"count\":1}]}]},"
      "\"hops_demo_total\":{\"type\":\"counter\",\"help\":\"Demo "
      "counter.\",\"children\":[{\"labels\":{},\"value\":3}]},"
      "\"hops_queue_depth\":{\"type\":\"gauge\",\"help\":\"Queue "
      "depth.\",\"children\":[{\"labels\":{},\"value\":2.5}]}}";
  EXPECT_EQ(got, want);
}

TEST(JsonExportTest, EmptyRegistryRendersEmptyObject) {
  MetricRegistry registry;
  EXPECT_EQ(RenderJson(registry.Collect()), "{}");
  EXPECT_EQ(RenderPrometheus(registry.Collect()), "");
}

TEST(JsonExportTest, EscapesStrings) {
  MetricRegistry registry;
  registry.GetCounter("odd_total", "tab\there", {{"k", "a\"b\\c\nd"}})
      ->Increment(1);
  const std::string got = RenderJson(registry.Collect());
  const std::string want =
      "{\"odd_total\":{\"type\":\"counter\",\"help\":\"tab\\there\","
      "\"children\":[{\"labels\":{\"k\":\"a\\\"b\\\\c\\nd\"},"
      "\"value\":1}]}}";
  EXPECT_EQ(got, want);
}

TEST(JsonExportTest, HistogramExemplarsAppearOnlyWhenSampled) {
  MetricRegistry registry;
  LatencyHistogram* histogram = registry.GetHistogram(
      "hops_req_seconds", "Latency.", LogBucketSpec{1.0, 2.0, 2});
  histogram->Record(0.5);
  // No exemplars sampled: the key is absent (keeps golden outputs stable).
  EXPECT_EQ(RenderJson(registry.Collect()).find("exemplars"),
            std::string::npos);

  histogram->RecordWithExemplar(3.5, "POST /estimate \"n\"=64");
  const std::string got = RenderJson(registry.Collect());
  EXPECT_NE(got.find("\"exemplars\":[{\"value\":3.5,"
                     "\"detail\":\"POST /estimate \\\"n\\\"=64\","
                     "\"unix_nanos\":"),
            std::string::npos)
      << got;
  // Still one valid JSON document.
  EXPECT_TRUE(ParseJson(got).ok());
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(TelemetrySinkTest, WriteOnceProducesACompleteSnapshot) {
  MetricRegistry registry;
  PopulateDemoRegistry(&registry);
  TelemetrySinkOptions options;
  options.path = ::testing::TempDir() + "/hops_sink_once.prom";
  options.registry = &registry;
  TelemetrySink sink(options);
  ASSERT_TRUE(sink.WriteOnce().ok());
  EXPECT_EQ(sink.writes(), 1u);
  const std::string contents = ReadFile(options.path);
  EXPECT_EQ(contents, RenderPrometheus(registry.Collect()));
}

TEST(TelemetrySinkTest, JsonFormatAppendsTrailingNewline) {
  MetricRegistry registry;
  registry.GetCounter("one_total", "One.")->Increment(1);
  TelemetrySinkOptions options;
  options.path = ::testing::TempDir() + "/hops_sink_once.json";
  options.format = ExportFormat::kJson;
  options.registry = &registry;
  TelemetrySink sink(options);
  ASSERT_TRUE(sink.WriteOnce().ok());
  const std::string contents = ReadFile(options.path);
  EXPECT_EQ(contents, RenderJson(registry.Collect()) + "\n");
}

TEST(TelemetrySinkTest, UnwritablePathFails) {
  MetricRegistry registry;
  TelemetrySinkOptions options;
  options.path = "/nonexistent-dir/hops.prom";
  options.registry = &registry;
  TelemetrySink sink(options);
  EXPECT_FALSE(sink.WriteOnce().ok());
}

TEST(TelemetrySinkTest, StartStopLifecycle) {
  MetricRegistry registry;
  registry.GetCounter("alive_total", "Alive.")->Increment(1);
  TelemetrySinkOptions options;
  options.path = ::testing::TempDir() + "/hops_sink_periodic.prom";
  options.registry = &registry;
  options.write_interval_micros = 1000;  // 1ms: several periodic writes
  TelemetrySink sink(options);
  EXPECT_FALSE(sink.running());
  ASSERT_TRUE(sink.Start().ok());
  EXPECT_TRUE(sink.running());
  EXPECT_FALSE(sink.Start().ok());  // AlreadyExists
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(sink.Stop().ok());
  EXPECT_FALSE(sink.running());
  EXPECT_GE(sink.writes(), 1u);  // at least the final write landed
  const std::string contents = ReadFile(options.path);
  EXPECT_EQ(contents, RenderPrometheus(registry.Collect()));
  EXPECT_TRUE(sink.Stop().ok());  // idempotent
}

}  // namespace
}  // namespace hops::telemetry
