// TraceSpan: scoped timers, parent/child self-time accounting, and the
// kill-switch fast path (DESIGN.md §9).

#include "telemetry/trace.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "telemetry/metrics.h"

namespace hops::telemetry {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = Enabled();
    SetEnabled(true);
  }
  void TearDown() override { SetEnabled(was_enabled_); }

  MetricRegistry registry_;
  bool was_enabled_ = true;
};

TEST_F(TraceTest, SiteIsStableAndMaterializesFamilies) {
  SpanSite& a = GetSpanSite("Test.SiteStable", &registry_);
  SpanSite& b = GetSpanSite("Test.SiteStable", &registry_);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.name, "Test.SiteStable");
  ASSERT_NE(a.count, nullptr);
  ASSERT_NE(a.total_nanos, nullptr);
  ASSERT_NE(a.self_nanos, nullptr);
  ASSERT_NE(a.duration_seconds, nullptr);
  // The four families exist in the registry, labeled by span name.
  const MetricsSnapshot snap = registry_.Collect();
  const LabelSet labels = {{"span", "Test.SiteStable"}};
  EXPECT_NE(snap.Find("hops_span_total", labels), nullptr);
  EXPECT_NE(snap.Find("hops_span_duration_nanos_total", labels), nullptr);
  EXPECT_NE(snap.Find("hops_span_self_nanos_total", labels), nullptr);
  EXPECT_NE(snap.Find("hops_span_duration_seconds", labels), nullptr);
}

TEST_F(TraceTest, SpanCountsAndTimes) {
  SpanSite& site = GetSpanSite("Test.CountsAndTimes", &registry_);
  for (int i = 0; i < 3; ++i) {
    TraceSpan span(site);
    EXPECT_TRUE(span.recording());
  }
  EXPECT_EQ(site.count->Value(), 3u);
  EXPECT_EQ(site.duration_seconds->Count(), 3u);
  // Total and self agree when there are no children.
  EXPECT_EQ(site.total_nanos->Value(), site.self_nanos->Value());
}

TEST_F(TraceTest, NestedSpansChargeChildTimeToParent) {
  SpanSite& outer = GetSpanSite("Test.Nested.Outer", &registry_);
  SpanSite& inner = GetSpanSite("Test.Nested.Inner", &registry_);
  {
    TraceSpan parent(outer);
    {
      TraceSpan child(inner);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  EXPECT_EQ(outer.count->Value(), 1u);
  EXPECT_EQ(inner.count->Value(), 1u);
  // The child slept >= 2ms, so its total is substantial...
  EXPECT_GE(inner.total_nanos->Value(), 1'000'000u);
  // ...the parent's total covers the child's...
  EXPECT_GE(outer.total_nanos->Value(), inner.total_nanos->Value());
  // ...and the parent's *self* time excludes it.
  EXPECT_EQ(outer.self_nanos->Value(),
            outer.total_nanos->Value() - inner.total_nanos->Value());
  // The child has no children: self == total.
  EXPECT_EQ(inner.self_nanos->Value(), inner.total_nanos->Value());
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  SpanSite& site = GetSpanSite("Test.Disabled", &registry_);
  SetEnabled(false);
  {
    TraceSpan span(site);
    EXPECT_FALSE(span.recording());
  }
  EXPECT_EQ(site.count->Value(), 0u);
  EXPECT_EQ(site.total_nanos->Value(), 0u);
  EXPECT_EQ(site.duration_seconds->Count(), 0u);
}

TEST_F(TraceTest, DisabledChildUnderEnabledParentIsTransparent) {
  SpanSite& outer = GetSpanSite("Test.MixedOuter", &registry_);
  SpanSite& inner = GetSpanSite("Test.MixedInner", &registry_);
  {
    TraceSpan parent(outer);
    SetEnabled(false);
    {
      TraceSpan child(inner);  // not recording: must not corrupt the stack
    }
    SetEnabled(true);
  }
  EXPECT_EQ(outer.count->Value(), 1u);
  EXPECT_EQ(inner.count->Value(), 0u);
  // No child was recorded, so the parent's self time equals its total.
  EXPECT_EQ(outer.self_nanos->Value(), outer.total_nanos->Value());
}

TEST_F(TraceTest, SitesAreScopedPerRegistry) {
  MetricRegistry other;
  SpanSite& a = GetSpanSite("Test.PerRegistry", &registry_);
  SpanSite& b = GetSpanSite("Test.PerRegistry", &other);
  EXPECT_NE(&a, &b);
  { TraceSpan span(a); }
  EXPECT_EQ(a.count->Value(), 1u);
  EXPECT_EQ(b.count->Value(), 0u);
}

}  // namespace
}  // namespace hops::telemetry
