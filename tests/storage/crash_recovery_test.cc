// The crash-recovery proof (ISSUE acceptance): a real child process
// (storage_crash_child.cc, path injected via HOPS_CRASH_CHILD_PATH) churns
// delta batches against a durable store and is SIGKILLed mid-stride —
// twice, so the second run also exercises recover-then-keep-writing. After
// every kill the parent recovers in-process and checks the write-ahead
// invariant:
//
//   acked <= WAL delta records replayed <= attempted
//
// i.e. nothing the child was told succeeded is ever lost, and nothing is
// invented. The child's counter files are page-cache-backed just like the
// WAL, so they survive the kill with the same guarantee under test.

#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "engine/catalog.h"
#include "engine/catalog_snapshot.h"
#include "refresh/refresh_manager.h"
#include "storage/recovery.h"

#ifndef HOPS_CRASH_CHILD_PATH
#error "build must define HOPS_CRASH_CHILD_PATH"
#endif

namespace hops::storage {
namespace {

std::string MakeTempDir(const std::string& tag) {
  std::string templ = ::testing::TempDir() + "hops_" + tag + "_XXXXXX";
  const char* dir = ::mkdtemp(templ.data());
  EXPECT_NE(dir, nullptr);
  return templ;
}

uint64_t ReadCounter(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  uint64_t value = 0;
  if (std::fread(&value, sizeof(value), 1, f) != 1) value = 0;
  std::fclose(f);
  return value;
}

// Runs the child until it prints "churning", lets it write for a while,
// then SIGKILLs it mid-stride and reaps it.
void RunChildAndKill(const std::string& data_dir,
                     const std::string& counter_dir, useconds_t churn_usec) {
  int out[2];
  ASSERT_EQ(::pipe(out), 0);

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::close(out[0]);
    ::dup2(out[1], STDOUT_FILENO);
    ::close(out[1]);
    ::execl(HOPS_CRASH_CHILD_PATH, HOPS_CRASH_CHILD_PATH, data_dir.c_str(),
            counter_dir.c_str(), static_cast<char*>(nullptr));
    std::perror("execl");
    ::_exit(127);
  }
  ::close(out[1]);

  // Wait for the ready line so the kill always lands mid-churn, never
  // mid-recovery.
  std::string banner;
  char c = 0;
  while (banner.find('\n') == std::string::npos &&
         ::read(out[0], &c, 1) == 1) {
    banner.push_back(c);
  }
  ::close(out[0]);
  ASSERT_NE(banner.find("churning"), std::string::npos)
      << "child never came up: " << banner;

  ::usleep(churn_usec);
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus));
  ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);
}

// Recovers the store into a fresh manager and returns the report.
RecoveryReport RecoverFresh(const std::string& data_dir) {
  Catalog catalog;
  SnapshotStore store;
  RefreshManager manager(&catalog, &store);

  StorageOptions options;
  options.data_dir = data_dir;
  auto opened = RecoveryManager::Open(options);
  EXPECT_TRUE(opened.ok()) << opened.status().message();
  std::unique_ptr<RecoveryManager> durable = std::move(opened).ValueOrDie();
  const Status recovered = durable->RecoverAndAttach(&manager);
  EXPECT_TRUE(recovered.ok()) << recovered.message();
  EXPECT_EQ(manager.num_columns(), 1u);
  return durable->report();
}

TEST(CrashRecovery, SigkillMidChurnLosesNoAckedRecordsAcrossTwoCycles) {
  const std::string data_dir = MakeTempDir("crashdata");
  const std::string counter_dir = MakeTempDir("crashcount");

  uint64_t previous_replayed = 0;
  for (int cycle = 0; cycle < 2; ++cycle) {
    SCOPED_TRACE("cycle " + std::to_string(cycle));
    RunChildAndKill(data_dir, counter_dir, /*churn_usec=*/200 * 1000);

    const uint64_t attempted = ReadCounter(counter_dir + "/attempted");
    const uint64_t acked = ReadCounter(counter_dir + "/acked");
    ASSERT_GT(acked, 0u) << "child made no progress";
    ASSERT_GE(attempted, acked);

    const RecoveryReport report = RecoverFresh(data_dir);
    // No snapshot was ever written, so the replay count is the cumulative
    // record count — directly comparable to the cumulative counters.
    EXPECT_FALSE(report.snapshot_loaded);
    EXPECT_EQ(report.wal_registrations, 1u);
    EXPECT_GE(report.wal_delta_records, acked)
        << "acked records lost after kill -9";
    EXPECT_LE(report.wal_delta_records, attempted)
        << "replay invented records";
    EXPECT_GE(report.wal_delta_records, previous_replayed)
        << "second run lost the first run's records";
    previous_replayed = report.wal_delta_records;
  }
}

}  // namespace
}  // namespace hops::storage
