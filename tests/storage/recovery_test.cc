// RecoveryManager integration (src/storage/recovery.h): the full durable
// lifecycle against real RefreshManagers — cold start, checkpoint, clean
// shutdown, crash-without-snapshot, snapshot fallback, retention, and the
// headline guarantee that a warm restart answers estimates bit-identically.

#include "storage/recovery.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "engine/catalog.h"
#include "engine/catalog_snapshot.h"
#include "estimator/serving.h"
#include "storage/io.h"
#include "storage/snapshot_file.h"

namespace hops::storage {
namespace {

std::string MakeTempDir(const std::string& tag) {
  std::string templ = ::testing::TempDir() + "hops_" + tag + "_XXXXXX";
  const char* dir = ::mkdtemp(templ.data());
  EXPECT_NE(dir, nullptr);
  return templ;
}

// One serving stack's worth of state, constructible repeatedly to model
// process restarts against the same data directory.
struct Stack {
  Catalog catalog;
  SnapshotStore store;
  std::unique_ptr<RefreshManager> manager;

  Stack() {
    RefreshOptions options;
    options.statistics.num_buckets = 8;
    manager = std::make_unique<RefreshManager>(&catalog, &store, options);
  }

  void RegisterDemoColumns() {
    std::vector<int64_t> values;
    std::vector<double> uniform, skewed;
    for (int64_t v = 0; v < 40; ++v) {
      values.push_back(v);
      uniform.push_back(25.0);
      skewed.push_back(static_cast<double>(v + 1));
    }
    ASSERT_TRUE(
        manager->RegisterColumn("orders", "customer_id", values, uniform)
            .ok());
    ASSERT_TRUE(
        manager->RegisterColumn("orders", "item_id", values, skewed).ok());
  }

  // Equality estimates over a probe set, from the published RCU snapshot —
  // the exact bytes a /estimate response would be computed from.
  std::vector<double> Estimates() {
    const std::shared_ptr<const CatalogSnapshot> snapshot = store.Current();
    std::vector<EstimateSpec> specs;
    for (const char* column : {"customer_id", "item_id"}) {
      Result<ColumnId> id = snapshot->Resolve("orders", column);
      EXPECT_TRUE(id.ok());
      for (int64_t v : {0, 7, 23, 39}) {
        specs.push_back(EstimateSpec::Equality(*id, Value(v)));
      }
    }
    std::vector<Result<double>> results =
        EstimateBatch(*snapshot, specs, nullptr);
    std::vector<double> values;
    for (const Result<double>& r : results) {
      EXPECT_TRUE(r.ok());
      values.push_back(r.ok() ? r.ValueOrDie() : -1);
    }
    return values;
  }
};

std::unique_ptr<RecoveryManager> OpenStore(const std::string& dir,
                                           size_t keep_snapshots = 2) {
  StorageOptions options;
  options.data_dir = dir;
  options.keep_snapshots = keep_snapshots;
  auto opened = RecoveryManager::Open(options);
  EXPECT_TRUE(opened.ok()) << opened.status().message();
  return std::move(opened).ValueOrDie();
}

std::vector<UpdateRecord> Churn(RefreshColumnId column, int n, int seed) {
  std::vector<UpdateRecord> records;
  for (int i = 0; i < n; ++i) {
    UpdateRecord r;
    r.column = column;
    r.value = (seed + 7 * i) % 40;
    r.weight = (i % 5 == 0) ? -1.0 : +1.0;
    records.push_back(r);
  }
  return records;
}

TEST(RecoveryTest, CleanShutdownThenWarmRestartIsBitIdentical) {
  const std::string dir = MakeTempDir("recclean");
  std::vector<double> before;
  {
    Stack stack;
    auto store = OpenStore(dir);
    ASSERT_TRUE(store->RecoverAndAttach(stack.manager.get()).ok());
    EXPECT_FALSE(store->report().snapshot_loaded);  // cold start
    stack.RegisterDemoColumns();

    const RefreshColumnId id =
        stack.manager->Lookup("orders", "customer_id").ValueOrDie();
    ASSERT_TRUE(stack.manager->RecordBatch(Churn(id, 100, 3)).ok());
    ASSERT_TRUE(stack.manager->ApplyPendingDeltas().ok());
    before = stack.Estimates();

    ASSERT_TRUE(store->CloseAndSnapshot().ok());
    ASSERT_TRUE(store->CloseAndSnapshot().ok());  // idempotent
  }
  {
    Stack stack;
    auto store = OpenStore(dir);
    ASSERT_TRUE(store->RecoverAndAttach(stack.manager.get()).ok());
    const RecoveryReport& report = store->report();
    EXPECT_TRUE(report.snapshot_loaded);
    EXPECT_EQ(report.wal_delta_records, 0u);  // snapshot covered everything
    EXPECT_EQ(stack.manager->num_columns(), 2u);

    // The headline guarantee, bit-for-bit (EXPECT_EQ on doubles, not NEAR).
    EXPECT_EQ(before, stack.Estimates());
  }
}

TEST(RecoveryTest, CrashWithoutSnapshotReplaysEverythingFromWal) {
  const std::string dir = MakeTempDir("reccrash");
  std::vector<double> before;
  {
    Stack stack;
    auto store = OpenStore(dir);
    ASSERT_TRUE(store->RecoverAndAttach(stack.manager.get()).ok());
    stack.RegisterDemoColumns();
    const RefreshColumnId id =
        stack.manager->Lookup("orders", "item_id").ValueOrDie();
    ASSERT_TRUE(stack.manager->RecordBatch(Churn(id, 64, 11)).ok());
    ASSERT_TRUE(stack.manager->ApplyPendingDeltas().ok());
    before = stack.Estimates();
    // No CloseAndSnapshot: the RecoveryManager is simply destroyed, like a
    // process that died. Every acknowledged record is already in the WAL.
  }
  {
    Stack stack;
    auto store = OpenStore(dir);
    ASSERT_TRUE(store->RecoverAndAttach(stack.manager.get()).ok());
    const RecoveryReport& report = store->report();
    EXPECT_FALSE(report.snapshot_loaded);
    EXPECT_EQ(report.wal_registrations, 2u);
    EXPECT_EQ(report.wal_delta_records, 64u);
    EXPECT_EQ(stack.manager->num_columns(), 2u);
    EXPECT_EQ(before, stack.Estimates());
  }
}

TEST(RecoveryTest, DeltasAfterCheckpointComeFromWalNotSnapshot) {
  const std::string dir = MakeTempDir("rectail");
  std::vector<double> before;
  {
    Stack stack;
    auto store = OpenStore(dir);
    ASSERT_TRUE(store->RecoverAndAttach(stack.manager.get()).ok());
    stack.RegisterDemoColumns();
    const RefreshColumnId id =
        stack.manager->Lookup("orders", "customer_id").ValueOrDie();
    ASSERT_TRUE(stack.manager->RecordBatch(Churn(id, 32, 1)).ok());
    ASSERT_TRUE(store->WriteSnapshot().ok());
    // Post-checkpoint records must survive a crash via WAL replay alone.
    ASSERT_TRUE(stack.manager->RecordBatch(Churn(id, 16, 2)).ok());
    ASSERT_TRUE(stack.manager->ApplyPendingDeltas().ok());
    before = stack.Estimates();
  }
  {
    Stack stack;
    auto store = OpenStore(dir);
    ASSERT_TRUE(store->RecoverAndAttach(stack.manager.get()).ok());
    const RecoveryReport& report = store->report();
    EXPECT_TRUE(report.snapshot_loaded);
    EXPECT_EQ(report.wal_delta_records, 16u);
    EXPECT_EQ(before, stack.Estimates());
  }
}

TEST(RecoveryTest, FallsBackPastCorruptNewestSnapshot) {
  const std::string dir = MakeTempDir("recfall");
  std::vector<double> before;
  uint64_t newest_seq = 0;
  {
    Stack stack;
    auto store = OpenStore(dir);
    ASSERT_TRUE(store->RecoverAndAttach(stack.manager.get()).ok());
    stack.RegisterDemoColumns();
    const RefreshColumnId id =
        stack.manager->Lookup("orders", "item_id").ValueOrDie();
    ASSERT_TRUE(stack.manager->RecordBatch(Churn(id, 32, 5)).ok());
    ASSERT_TRUE(store->WriteSnapshot().ok());  // seq 1
    ASSERT_TRUE(stack.manager->RecordBatch(Churn(id, 32, 6)).ok());
    ASSERT_TRUE(store->WriteSnapshot().ok());  // seq 2
    ASSERT_TRUE(stack.manager->ApplyPendingDeltas().ok());
    before = stack.Estimates();

    Result<std::vector<SnapshotFileInfo>> snapshots = ListSnapshotFiles(dir);
    ASSERT_TRUE(snapshots.ok());
    ASSERT_EQ(snapshots->size(), 2u);
    newest_seq = snapshots->back().seq;

    // Flip one payload byte of the newest snapshot: its section CRC breaks.
    std::fstream file(snapshots->back().path,
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekg(0, std::ios::end);
    const std::streamoff size = file.tellg();
    file.seekg(size / 2);
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    file.seekp(size / 2);
    file.write(&byte, 1);
  }
  {
    Stack stack;
    auto store = OpenStore(dir);
    ASSERT_TRUE(store->RecoverAndAttach(stack.manager.get()).ok());
    const RecoveryReport& report = store->report();
    EXPECT_TRUE(report.snapshot_loaded);
    EXPECT_EQ(report.snapshots_skipped, 1u);
    EXPECT_LT(report.snapshot_seq, newest_seq);
    // Retention retired the WAL only through the OLDEST retained snapshot,
    // so the older image plus replay still reaches the present state.
    EXPECT_GT(report.wal_delta_records, 0u);
    EXPECT_EQ(before, stack.Estimates());
  }
}

TEST(RecoveryTest, RetentionKeepsConfiguredSnapshotCount) {
  const std::string dir = MakeTempDir("reckeep");
  Stack stack;
  auto store = OpenStore(dir, /*keep_snapshots=*/2);
  ASSERT_TRUE(store->RecoverAndAttach(stack.manager.get()).ok());
  stack.RegisterDemoColumns();
  const RefreshColumnId id =
      stack.manager->Lookup("orders", "customer_id").ValueOrDie();
  for (int round = 0; round < 5; ++round) {
    ASSERT_TRUE(stack.manager->RecordBatch(Churn(id, 8, round)).ok());
    ASSERT_TRUE(store->WriteSnapshot().ok());
  }
  Result<std::vector<SnapshotFileInfo>> snapshots = ListSnapshotFiles(dir);
  ASSERT_TRUE(snapshots.ok());
  ASSERT_EQ(snapshots->size(), 2u);
  EXPECT_EQ(snapshots->front().seq, 4u);
  EXPECT_EQ(snapshots->back().seq, 5u);
  // Covered WAL segments retired along the way.
  EXPECT_GT(store->wal_stats().segments_retired, 0u);
}

TEST(RecoveryTest, LsnsContinueAcrossRestarts) {
  const std::string dir = MakeTempDir("reclsn");
  uint64_t next_before = 0;
  {
    Stack stack;
    auto store = OpenStore(dir);
    ASSERT_TRUE(store->RecoverAndAttach(stack.manager.get()).ok());
    stack.RegisterDemoColumns();
    const RefreshColumnId id =
        stack.manager->Lookup("orders", "customer_id").ValueOrDie();
    ASSERT_TRUE(stack.manager->RecordBatch(Churn(id, 10, 0)).ok());
    next_before = store->wal_stats().next_lsn;
    EXPECT_EQ(next_before, 13u);  // 2 registrations + 10 deltas + 1
  }
  {
    Stack stack;
    auto store = OpenStore(dir);
    ASSERT_TRUE(store->RecoverAndAttach(stack.manager.get()).ok());
    // A restarted writer never reuses an assigned LSN.
    EXPECT_EQ(store->wal_stats().next_lsn, next_before);
    const RefreshColumnId id =
        stack.manager->Lookup("orders", "customer_id").ValueOrDie();
    ASSERT_TRUE(stack.manager->RecordBatch(Churn(id, 1, 0)).ok());
    EXPECT_EQ(store->wal_stats().next_lsn, next_before + 1);
  }
}

TEST(RecoveryTest, RecoveryIsIdempotentAcrossRepeatedRestarts) {
  const std::string dir = MakeTempDir("recidem");
  std::vector<double> before;
  {
    Stack stack;
    auto store = OpenStore(dir);
    ASSERT_TRUE(store->RecoverAndAttach(stack.manager.get()).ok());
    stack.RegisterDemoColumns();
    const RefreshColumnId id =
        stack.manager->Lookup("orders", "item_id").ValueOrDie();
    ASSERT_TRUE(stack.manager->RecordBatch(Churn(id, 48, 9)).ok());
    ASSERT_TRUE(stack.manager->ApplyPendingDeltas().ok());
    before = stack.Estimates();
  }
  // Three crash/recover cycles without new writes: state must not drift.
  for (int cycle = 0; cycle < 3; ++cycle) {
    Stack stack;
    auto store = OpenStore(dir);
    ASSERT_TRUE(store->RecoverAndAttach(stack.manager.get()).ok());
    EXPECT_EQ(before, stack.Estimates()) << "cycle " << cycle;
  }
}

TEST(RecoveryTest, OpenRejectsEmptyDataDir) {
  StorageOptions options;
  EXPECT_FALSE(RecoveryManager::Open(options).ok());
}

TEST(RecoveryTest, WriteSnapshotBeforeRecoverIsRefused) {
  const std::string dir = MakeTempDir("recearly");
  auto store = OpenStore(dir);
  EXPECT_FALSE(store->WriteSnapshot().ok());
}

}  // namespace
}  // namespace hops::storage
