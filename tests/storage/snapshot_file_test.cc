// Snapshot serialization (src/storage/snapshot_file.h): byte-level round
// trips of RefreshDurableState, file naming, crash-atomic write + read,
// header-only info, and directory listing order. Corruption rejection is
// covered exhaustively by corruption_matrix_test.cc.

#include "storage/snapshot_file.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "storage/io.h"

namespace hops::storage {
namespace {

std::string MakeTempDir(const std::string& tag) {
  std::string templ = ::testing::TempDir() + "hops_" + tag + "_XXXXXX";
  const char* dir = ::mkdtemp(templ.data());
  EXPECT_NE(dir, nullptr);
  return templ;
}

// Two columns with deliberately awkward doubles (non-dyadic fractions,
// negative weights, huge counters) so round-trip equality is a real
// bit-level check, plus one empty-ideal column and one empty-explicit one.
RefreshDurableState MakeState() {
  RefreshDurableState state;
  state.high_water_lsn = 0x1234567890ABCDEFull;

  ColumnDurableState a;
  a.table = "orders";
  a.column = "customer_id";
  a.explicit_values = {-5, 3, 1000000007};
  a.explicit_freqs = {0.1, 2.0 / 3.0, 123456.789};
  a.default_frequency = 1.0 / 7.0;
  a.num_default_values = 94;
  a.maintainer = {1234.5, 1000.25, 77, -0.125, 42, 17.5, true};
  a.ideal_values = {-5, 0, 3, 9};
  a.ideal_counts = {1.5, 0.0, 2.0 / 3.0, 8.0};
  a.tuples_at_build = 1000.25;
  a.min_value = -5;
  a.max_value = 1000000007;
  a.distinct = 97;
  a.feedback_ewma = 0.3333333333333333;
  a.has_feedback = true;
  a.deltas_since_rebuild = 12;
  a.rebuilds = 3;
  state.columns.push_back(a);

  ColumnDurableState b;
  b.table = "orders";
  b.column = "item_id";
  b.default_frequency = 4.25;
  b.num_default_values = 10;
  b.maintainer = {42.0, 42.0, 0, 0.0, 0, 0.0, false};
  b.tuples_at_build = 42.0;
  b.min_value = 0;
  b.max_value = 9;
  b.distinct = 10;
  state.columns.push_back(b);

  return state;
}

void ExpectStatesEqual(const RefreshDurableState& x,
                       const RefreshDurableState& y) {
  ASSERT_EQ(x.high_water_lsn, y.high_water_lsn);
  ASSERT_EQ(x.columns.size(), y.columns.size());
  for (size_t i = 0; i < x.columns.size(); ++i) {
    const ColumnDurableState& a = x.columns[i];
    const ColumnDurableState& b = y.columns[i];
    EXPECT_EQ(a.table, b.table);
    EXPECT_EQ(a.column, b.column);
    EXPECT_EQ(a.explicit_values, b.explicit_values);
    EXPECT_EQ(a.explicit_freqs, b.explicit_freqs);  // exact, not approx
    EXPECT_EQ(a.default_frequency, b.default_frequency);
    EXPECT_EQ(a.num_default_values, b.num_default_values);
    EXPECT_EQ(a.maintainer.num_tuples, b.maintainer.num_tuples);
    EXPECT_EQ(a.maintainer.tuples_at_build, b.maintainer.tuples_at_build);
    EXPECT_EQ(a.maintainer.updates_applied, b.maintainer.updates_applied);
    EXPECT_EQ(a.maintainer.drift, b.maintainer.drift);
    EXPECT_EQ(a.maintainer.hot_value, b.maintainer.hot_value);
    EXPECT_EQ(a.maintainer.hot_count, b.maintainer.hot_count);
    EXPECT_EQ(a.maintainer.hot_valid, b.maintainer.hot_valid);
    EXPECT_EQ(a.ideal_values, b.ideal_values);
    EXPECT_EQ(a.ideal_counts, b.ideal_counts);
    EXPECT_EQ(a.tuples_at_build, b.tuples_at_build);
    EXPECT_EQ(a.min_value, b.min_value);
    EXPECT_EQ(a.max_value, b.max_value);
    EXPECT_EQ(a.distinct, b.distinct);
    EXPECT_EQ(a.feedback_ewma, b.feedback_ewma);
    EXPECT_EQ(a.has_feedback, b.has_feedback);
    EXPECT_EQ(a.deltas_since_rebuild, b.deltas_since_rebuild);
    EXPECT_EQ(a.rebuilds, b.rebuilds);
  }
}

TEST(SnapshotFileName, RoundTrips) {
  EXPECT_EQ(SnapshotFileName(1), "snapshot-0000000000000001.hsnp");
  uint64_t seq = 0;
  EXPECT_TRUE(ParseSnapshotFileName("snapshot-00000000000000ff.hsnp", &seq));
  EXPECT_EQ(seq, 0xffu);
  EXPECT_TRUE(ParseSnapshotFileName(SnapshotFileName(0xDEADBEEFull), &seq));
  EXPECT_EQ(seq, 0xDEADBEEFull);
  EXPECT_FALSE(ParseSnapshotFileName("snapshot-xyz.hsnp", &seq));
  EXPECT_FALSE(ParseSnapshotFileName("wal-0000000000000001.wal", &seq));
  EXPECT_FALSE(ParseSnapshotFileName("snapshot-0000000000000001.hsnp~", &seq));
}

TEST(SnapshotEncode, RoundTripsExactly) {
  const RefreshDurableState state = MakeState();
  const std::string bytes = EncodeSnapshot(7, state);
  uint64_t seq = 0;
  Result<RefreshDurableState> decoded = DecodeSnapshot(bytes, &seq);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(seq, 7u);
  ExpectStatesEqual(state, *decoded);
}

TEST(SnapshotEncode, EmptyStateRoundTrips) {
  RefreshDurableState state;
  state.high_water_lsn = 5;
  const std::string bytes = EncodeSnapshot(1, state);
  Result<RefreshDurableState> decoded = DecodeSnapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded->high_water_lsn, 5u);
  EXPECT_TRUE(decoded->columns.empty());
}

TEST(SnapshotEncode, EncodingIsDeterministic) {
  const RefreshDurableState state = MakeState();
  EXPECT_EQ(EncodeSnapshot(3, state), EncodeSnapshot(3, state));
}

TEST(SnapshotFile, WriteReadAndInfo) {
  const std::string dir = MakeTempDir("snap");
  const RefreshDurableState state = MakeState();

  Result<std::string> path = WriteSnapshotFile(dir, 9, state);
  ASSERT_TRUE(path.ok()) << path.status().message();
  EXPECT_EQ(*path, dir + "/" + SnapshotFileName(9));

  uint64_t seq = 0;
  Result<RefreshDurableState> loaded = ReadSnapshotFile(*path, &seq);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(seq, 9u);
  ExpectStatesEqual(state, *loaded);

  // Header-only validation reads identity without decoding payloads.
  Result<SnapshotFileInfo> info = ReadSnapshotInfo(*path);
  ASSERT_TRUE(info.ok()) << info.status().message();
  EXPECT_EQ(info->seq, 9u);
  EXPECT_EQ(info->high_water_lsn, state.high_water_lsn);
}

TEST(SnapshotFile, ReadMissingFileIsNotFound) {
  const std::string dir = MakeTempDir("snapmiss");
  Result<RefreshDurableState> loaded =
      ReadSnapshotFile(dir + "/" + SnapshotFileName(1));
  EXPECT_FALSE(loaded.ok());
}

TEST(SnapshotFile, ListSortsBySeqAndIgnoresForeignFiles) {
  const std::string dir = MakeTempDir("snaplist");
  const RefreshDurableState state = MakeState();
  ASSERT_TRUE(WriteSnapshotFile(dir, 12, state).ok());
  ASSERT_TRUE(WriteSnapshotFile(dir, 3, state).ok());
  ASSERT_TRUE(WriteSnapshotFile(dir, 7, state).ok());
  // Foreign files (WAL segments, junk) must not be listed — and a corrupt
  // snapshot must still be listed so recovery can fall back past it.
  ASSERT_TRUE(WriteFileAtomic(dir, "wal-0000000000000001.wal", "junk", false)
                  .ok());
  ASSERT_TRUE(WriteFileAtomic(dir, "notes.txt", "hi", false).ok());
  ASSERT_TRUE(
      WriteFileAtomic(dir, SnapshotFileName(20), "corrupt", false).ok());

  Result<std::vector<SnapshotFileInfo>> listed = ListSnapshotFiles(dir);
  ASSERT_TRUE(listed.ok()) << listed.status().message();
  ASSERT_EQ(listed->size(), 4u);
  EXPECT_EQ((*listed)[0].seq, 3u);
  EXPECT_EQ((*listed)[1].seq, 7u);
  EXPECT_EQ((*listed)[2].seq, 12u);
  EXPECT_EQ((*listed)[3].seq, 20u);  // corrupt but listed
}

}  // namespace
}  // namespace hops::storage
