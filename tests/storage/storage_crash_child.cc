// Child process for crash_recovery_test: opens the durable store over
// <data_dir>, recovers, then churns delta batches forever, bumping an
// "attempted" counter file BEFORE each RecordBatch and an "acked" one
// AFTER it returns OK — until the parent SIGKILLs it mid-stride. The
// parent then proves the WAL holds every acked record:
//
//   acked <= replayed delta records <= attempted
//
// Counters are plain 8-byte little-endian pwrites at offset 0; like the
// WAL itself they survive a process kill via the page cache, so the parent
// reads a consistent "how far did it get" even though the child never
// fsyncs them.
//
// Usage: storage_crash_child <data_dir> <counter_dir>

#include <fcntl.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "engine/catalog.h"
#include "engine/catalog_snapshot.h"
#include "refresh/refresh_manager.h"
#include "storage/recovery.h"

namespace {

int OpenCounter(const std::string& path, uint64_t* initial) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    std::perror("open counter");
    std::exit(2);
  }
  uint64_t value = 0;
  if (::pread(fd, &value, sizeof(value), 0) == sizeof(value)) {
    *initial = value;
  }
  return fd;
}

void WriteCounter(int fd, uint64_t value) {
  if (::pwrite(fd, &value, sizeof(value), 0) != sizeof(value)) {
    std::perror("pwrite counter");
    std::exit(2);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <data_dir> <counter_dir>\n", argv[0]);
    return 2;
  }
  const std::string data_dir = argv[1];
  const std::string counter_dir = argv[2];

  // Counters continue across restarts, like the WAL they mirror.
  uint64_t attempted = 0;
  uint64_t acked = 0;
  const int attempted_fd = OpenCounter(counter_dir + "/attempted", &attempted);
  const int acked_fd = OpenCounter(counter_dir + "/acked", &acked);

  hops::Catalog catalog;
  hops::SnapshotStore store;
  hops::RefreshManager manager(&catalog, &store);

  hops::storage::StorageOptions options;
  options.data_dir = data_dir;
  options.durability = hops::storage::WalFsync::kNone;  // kill(2)-safe anyway
  auto opened = hops::storage::RecoveryManager::Open(options);
  if (!opened.ok()) {
    std::fprintf(stderr, "open: %s\n",
                 std::string(opened.status().message()).c_str());
    return 2;
  }
  std::unique_ptr<hops::storage::RecoveryManager> durable =
      std::move(opened).ValueOrDie();
  if (hops::Status status = durable->RecoverAndAttach(&manager);
      !status.ok()) {
    std::fprintf(stderr, "recover: %s\n",
                 std::string(status.message()).c_str());
    return 2;
  }

  if (manager.num_columns() == 0) {
    std::vector<int64_t> values(64);
    std::vector<double> freqs(64, 25.0);
    for (int i = 0; i < 64; ++i) values[i] = i;
    auto id = manager.RegisterColumn("orders", "customer_id", values, freqs);
    if (!id.ok()) {
      std::fprintf(stderr, "register: %s\n",
                   std::string(id.status().message()).c_str());
      return 2;
    }
  }
  const hops::RefreshColumnId column =
      manager.Lookup("orders", "customer_id").ValueOrDie();

  // Tell the parent we are past recovery and churning; it kills us only
  // after this so every run makes forward progress.
  std::printf("churning\n");
  std::fflush(stdout);

  for (uint64_t batch = 0;; ++batch) {
    std::vector<hops::UpdateRecord> records(8);
    for (size_t i = 0; i < records.size(); ++i) {
      records[i].column = column;
      records[i].value = static_cast<int64_t>((attempted + i) % 64);
      records[i].weight = (i % 5 == 4) ? -1.0 : +1.0;
    }
    attempted += records.size();
    WriteCounter(attempted_fd, attempted);
    if (hops::Status status = manager.RecordBatch(records); !status.ok()) {
      // Backpressure would break the counter invariant; drain and keep the
      // attempted counter honest by not acking.
      (void)manager.ApplyPendingDeltas();
      continue;
    }
    acked += records.size();
    WriteCounter(acked_fd, acked);
    if (batch % 64 == 63) (void)manager.ApplyPendingDeltas();
  }
}
