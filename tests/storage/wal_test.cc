// WAL writer/replay (src/storage/wal.h): LSN stamping, frame round trips,
// segment rotation and retirement, min_lsn segment skipping, torn-tail
// truncation, and the reopen-after-clean-shutdown path. Byte-level
// corruption is walked exhaustively by corruption_matrix_test.cc.

#include "storage/wal.h"

#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

namespace hops::storage {
namespace {

std::string MakeTempDir(const std::string& tag) {
  std::string templ = ::testing::TempDir() + "hops_" + tag + "_XXXXXX";
  const char* dir = ::mkdtemp(templ.data());
  EXPECT_NE(dir, nullptr);
  return templ;
}

std::vector<UpdateRecord> MakeDeltas(size_t n, RefreshColumnId column) {
  std::vector<UpdateRecord> records(n);
  for (size_t i = 0; i < n; ++i) {
    records[i].column = column;
    records[i].value = static_cast<int64_t>(i) - 2;
    records[i].weight = (i % 2 == 0) ? +1.0 : -0.5;
  }
  return records;
}

struct Replayed {
  std::vector<WalDeltaBatch> batches;
  std::vector<WalRegistration> registrations;
};

Result<WalReplayReport> Replay(const std::string& dir, uint64_t min_lsn,
                               Replayed* out) {
  return ReplayWalDir(
      dir, min_lsn,
      [out](const WalDeltaBatch& batch) {
        out->batches.push_back(batch);
        return Status::OK();
      },
      [out](const WalRegistration& reg) {
        out->registrations.push_back(reg);
        return Status::OK();
      });
}

TEST(WalSegmentFileNameTest, RoundTrips) {
  EXPECT_EQ(WalSegmentFileName(1), "wal-0000000000000001.wal");
  uint64_t lsn = 0;
  EXPECT_TRUE(ParseWalSegmentFileName(WalSegmentFileName(0xABCDu), &lsn));
  EXPECT_EQ(lsn, 0xABCDu);
  EXPECT_FALSE(ParseWalSegmentFileName("wal-1.wal", &lsn));
  EXPECT_FALSE(
      ParseWalSegmentFileName("snapshot-0000000000000001.hsnp", &lsn));
}

TEST(WalWriterTest, StampsLsnsAndReplaysInOrder) {
  const std::string dir = MakeTempDir("wal");
  {
    auto writer = WalWriter::Open(dir, /*next_lsn=*/0);
    ASSERT_TRUE(writer.ok()) << writer.status().message();
    uint64_t reg_lsn = 0;
    std::vector<int64_t> values = {1, 2, 3};
    std::vector<double> freqs = {4.0, 5.5, 6.25};
    ASSERT_TRUE((*writer)
                    ->AppendRegistration(0, "orders", "customer_id", values,
                                         freqs, &reg_lsn)
                    .ok());
    EXPECT_EQ(reg_lsn, 1u);  // LSN 0 means "not persisted"; writer clamps

    std::vector<UpdateRecord> deltas = MakeDeltas(3, 0);
    ASSERT_TRUE((*writer)->AppendDeltas(deltas).ok());
    EXPECT_EQ(deltas[0].lsn, 2u);  // stamped in place
    EXPECT_EQ(deltas[2].lsn, 4u);
    EXPECT_EQ((*writer)->next_lsn(), 5u);

    const WalWriterStats stats = (*writer)->stats();
    EXPECT_EQ(stats.records_appended, 4u);
    EXPECT_EQ(stats.frames_appended, 2u);
    EXPECT_EQ(stats.segments_created, 1u);
  }

  Replayed replayed;
  Result<WalReplayReport> report = Replay(dir, 0, &replayed);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_EQ(report->segments_scanned, 1u);
  EXPECT_EQ(report->registrations, 1u);
  EXPECT_EQ(report->delta_records, 3u);
  EXPECT_EQ(report->max_lsn, 4u);
  EXPECT_FALSE(report->torn_tail_truncated);

  ASSERT_EQ(replayed.registrations.size(), 1u);
  const WalRegistration& reg = replayed.registrations[0];
  EXPECT_EQ(reg.lsn, 1u);
  EXPECT_EQ(reg.table, "orders");
  EXPECT_EQ(reg.column, "customer_id");
  EXPECT_EQ(reg.values, (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(reg.frequencies, (std::vector<double>{4.0, 5.5, 6.25}));

  ASSERT_EQ(replayed.batches.size(), 1u);
  const WalDeltaBatch& batch = replayed.batches[0];
  EXPECT_EQ(batch.first_lsn, 2u);
  ASSERT_EQ(batch.records.size(), 3u);
  EXPECT_EQ(batch.records[1].value, -1);
  EXPECT_EQ(batch.records[1].weight, -0.5);
  EXPECT_EQ(batch.records[1].lsn, 3u);
}

TEST(WalWriterTest, RotateCutsSegmentsAndMinLsnSkipsCoveredOnes) {
  const std::string dir = MakeTempDir("walrot");
  auto writer = WalWriter::Open(dir, 1);
  ASSERT_TRUE(writer.ok());
  std::vector<UpdateRecord> first = MakeDeltas(4, 0);   // LSNs 1..4
  ASSERT_TRUE((*writer)->AppendDeltas(first).ok());
  ASSERT_TRUE((*writer)->Rotate().ok());
  std::vector<UpdateRecord> second = MakeDeltas(2, 1);  // LSNs 5..6
  ASSERT_TRUE((*writer)->AppendDeltas(second).ok());

  // min_lsn=4 covers the whole first segment (successor starts at 5 <= 4+1):
  // it is skipped without reading.
  Replayed replayed;
  Result<WalReplayReport> report = Replay(dir, /*min_lsn=*/4, &replayed);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_EQ(report->segments_skipped, 1u);
  EXPECT_EQ(report->segments_scanned, 1u);
  EXPECT_EQ(report->delta_records, 2u);
  ASSERT_EQ(replayed.batches.size(), 1u);
  EXPECT_EQ(replayed.batches[0].first_lsn, 5u);

  // min_lsn=3 does NOT cover it; both segments replay.
  Replayed all;
  report = Replay(dir, /*min_lsn=*/3, &all);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->segments_skipped, 0u);
  EXPECT_EQ(report->delta_records, 6u);
}

TEST(WalWriterTest, RetireThroughSparesActiveAndUncoveredSegments) {
  const std::string dir = MakeTempDir("walret");
  auto writer = WalWriter::Open(dir, 1);
  ASSERT_TRUE(writer.ok());
  std::vector<UpdateRecord> a = MakeDeltas(4, 0);  // segment 1: LSNs 1..4
  ASSERT_TRUE((*writer)->AppendDeltas(a).ok());
  ASSERT_TRUE((*writer)->Rotate().ok());
  std::vector<UpdateRecord> b = MakeDeltas(4, 0);  // segment 5: LSNs 5..8
  ASSERT_TRUE((*writer)->AppendDeltas(b).ok());
  ASSERT_TRUE((*writer)->Rotate().ok());
  std::vector<UpdateRecord> c = MakeDeltas(1, 0);  // segment 9 (active)
  ASSERT_TRUE((*writer)->AppendDeltas(c).ok());

  // LSN 3 covers no whole segment; LSN 4 covers exactly segment 1.
  Result<size_t> retired = (*writer)->RetireThrough(3);
  ASSERT_TRUE(retired.ok());
  EXPECT_EQ(*retired, 0u);
  retired = (*writer)->RetireThrough(4);
  ASSERT_TRUE(retired.ok());
  EXPECT_EQ(*retired, 1u);
  {
    Replayed replayed;
    Result<WalReplayReport> report = Replay(dir, 0, &replayed);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->delta_records, 5u);  // segments 5 and 9 remain
  }
  // LSN 100 covers everything, but the active segment never retires.
  retired = (*writer)->RetireThrough(100);
  ASSERT_TRUE(retired.ok());
  EXPECT_EQ(*retired, 1u);
  Replayed replayed;
  Result<WalReplayReport> report = Replay(dir, 0, &replayed);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->delta_records, 1u);  // only the active segment remains
}

// Regression: rotating a frameless active segment must not collide with
// itself (it IS the rotation target), and reopening a directory whose last
// segment is the header-only leftover of a clean shutdown must succeed.
TEST(WalWriterTest, EmptySegmentRotateAndReopenAreSafe) {
  const std::string dir = MakeTempDir("walempty");
  {
    auto writer = WalWriter::Open(dir, 1);
    ASSERT_TRUE(writer.ok());
    std::vector<UpdateRecord> a = MakeDeltas(2, 0);  // LSNs 1..2
    ASSERT_TRUE((*writer)->AppendDeltas(a).ok());
    ASSERT_TRUE((*writer)->Rotate().ok());  // opens frameless wal-3
    ASSERT_TRUE((*writer)->Rotate().ok());  // no-op, must not fail
    EXPECT_EQ((*writer)->stats().segments_created, 2u);
  }
  {
    // Replay sees 2 records; reopen at next_lsn=3 replaces the header-only
    // leftover segment instead of failing O_EXCL.
    Replayed replayed;
    Result<WalReplayReport> report = Replay(dir, 0, &replayed);
    ASSERT_TRUE(report.ok()) << report.status().message();
    EXPECT_EQ(report->delta_records, 2u);
    EXPECT_EQ(report->max_lsn, 2u);

    auto writer = WalWriter::Open(dir, 3);
    ASSERT_TRUE(writer.ok()) << writer.status().message();
    std::vector<UpdateRecord> b = MakeDeltas(1, 0);
    ASSERT_TRUE((*writer)->AppendDeltas(b).ok());
    EXPECT_EQ(b[0].lsn, 3u);
  }
  Replayed replayed;
  Result<WalReplayReport> report = Replay(dir, 0, &replayed);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->delta_records, 3u);
}

TEST(WalWriterTest, SizeTriggeredRotationSplitsSegments) {
  const std::string dir = MakeTempDir("walsize");
  WalOptions options;
  options.fsync = WalFsync::kNone;
  options.segment_bytes = 256;  // tiny: a few batches per segment
  auto writer = WalWriter::Open(dir, 1, options);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 20; ++i) {
    std::vector<UpdateRecord> batch = MakeDeltas(3, 0);
    ASSERT_TRUE((*writer)->AppendDeltas(batch).ok());
  }
  EXPECT_GT((*writer)->stats().segments_created, 2u);

  Replayed replayed;
  Result<WalReplayReport> report = Replay(dir, 0, &replayed);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->delta_records, 60u);
  EXPECT_EQ(report->max_lsn, 60u);
  // Frames arrive in LSN order across the segment boundary.
  uint64_t last = 0;
  for (const WalDeltaBatch& batch : replayed.batches) {
    EXPECT_GT(batch.first_lsn, last);
    last = batch.first_lsn;
  }
}

TEST(WalReplayTest, TornTailOfLastSegmentIsTruncatedOnceThenClean) {
  const std::string dir = MakeTempDir("waltear");
  {
    auto writer = WalWriter::Open(dir, 1);
    ASSERT_TRUE(writer.ok());
    std::vector<UpdateRecord> a = MakeDeltas(3, 0);
    ASSERT_TRUE((*writer)->AppendDeltas(a).ok());
    std::vector<UpdateRecord> b = MakeDeltas(3, 0);
    ASSERT_TRUE((*writer)->AppendDeltas(b).ok());
  }
  // Tear the last few bytes of the final frame (crash mid-write).
  const std::string path = dir + "/" + WalSegmentFileName(1);
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_EQ(::truncate(path.c_str(),
                       static_cast<off_t>(bytes.size() - 5)),
            0);

  Replayed replayed;
  Result<WalReplayReport> report = Replay(dir, 0, &replayed);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_TRUE(report->torn_tail_truncated);
  EXPECT_EQ(report->delta_records, 3u);  // the acknowledged first batch

  // The tear was truncated away: the next replay is clean.
  Replayed again;
  report = Replay(dir, 0, &again);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->torn_tail_truncated);
  EXPECT_EQ(report->delta_records, 3u);
}

TEST(WalReplayTest, CorruptionInNonLastSegmentIsAnError) {
  const std::string dir = MakeTempDir("walmid");
  {
    auto writer = WalWriter::Open(dir, 1);
    ASSERT_TRUE(writer.ok());
    std::vector<UpdateRecord> a = MakeDeltas(3, 0);
    ASSERT_TRUE((*writer)->AppendDeltas(a).ok());
    ASSERT_TRUE((*writer)->Rotate().ok());
    std::vector<UpdateRecord> b = MakeDeltas(3, 0);
    ASSERT_TRUE((*writer)->AppendDeltas(b).ok());
  }
  // Flip one payload byte in the FIRST (non-last) segment: that is silent
  // data loss territory, so replay must fail loudly, not skip.
  const std::string path = dir + "/" + WalSegmentFileName(1);
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(40);
  char byte = 0;
  file.seekg(40);
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x01);
  file.seekp(40);
  file.write(&byte, 1);
  file.close();

  Replayed replayed;
  Result<WalReplayReport> report = Replay(dir, 0, &replayed);
  EXPECT_FALSE(report.ok());
}

TEST(WalReplayTest, HandlerErrorAbortsReplay) {
  const std::string dir = MakeTempDir("walerr");
  {
    auto writer = WalWriter::Open(dir, 1);
    ASSERT_TRUE(writer.ok());
    std::vector<UpdateRecord> a = MakeDeltas(2, 0);
    ASSERT_TRUE((*writer)->AppendDeltas(a).ok());
  }
  Result<WalReplayReport> report = ReplayWalDir(
      dir, 0,
      [](const WalDeltaBatch&) { return Status::Internal("handler refuses"); },
      nullptr);
  EXPECT_FALSE(report.ok());
}

TEST(WalReplayTest, EmptyDirReplaysNothing) {
  const std::string dir = MakeTempDir("walnone");
  Replayed replayed;
  Result<WalReplayReport> report = Replay(dir, 0, &replayed);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_EQ(report->segments_scanned, 0u);
  EXPECT_EQ(report->max_lsn, 0u);
}

}  // namespace
}  // namespace hops::storage
