// The corruption matrix (ISSUE satellite): walk EVERY byte of a snapshot
// and a WAL segment with truncations and bit flips and prove the readers
// reject with a Status — never crash, never silently accept damaged data.
//
// Coverage argument: snapshot sections are contiguous (header ++ section
// table ++ payloads), the header CRC covers the header and table, and every
// payload byte is covered by its section CRC — so every single-bit flip
// must be detected (CRC32C detects all single-bit errors). The WAL's frame
// CRCs cover payloads and the segment CRC covers the header's first 16
// bytes; flips in the 4 padding bytes (offsets 20..23) are the one
// documented don't-care region.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "storage/io.h"
#include "storage/snapshot_file.h"
#include "storage/wal.h"

namespace hops::storage {
namespace {

std::string MakeTempDir(const std::string& tag) {
  std::string templ = ::testing::TempDir() + "hops_" + tag + "_XXXXXX";
  const char* dir = ::mkdtemp(templ.data());
  EXPECT_NE(dir, nullptr);
  return templ;
}

RefreshDurableState SmallState() {
  RefreshDurableState state;
  state.high_water_lsn = 17;
  for (int c = 0; c < 2; ++c) {
    ColumnDurableState column;
    column.table = "t";
    column.column = c == 0 ? "a" : "b";
    column.explicit_values = {1, 5, 9};
    column.explicit_freqs = {2.5, 1.0, 0.25};
    column.default_frequency = 0.5;
    column.num_default_values = 4;
    column.maintainer = {30.0, 28.0, 5, 0.1, 5, 3.0, true};
    column.ideal_values = {1, 5, 9, 12};
    column.ideal_counts = {2.5, 1.0, 0.25, 0.0};
    column.tuples_at_build = 28.0;
    column.min_value = 1;
    column.max_value = 12;
    column.distinct = 7;
    state.columns.push_back(column);
  }
  return state;
}

// ------------------------------------------------------------- snapshots

TEST(CorruptionMatrix, SnapshotRejectsEveryTruncation) {
  const std::string bytes = EncodeSnapshot(3, SmallState());
  ASSERT_GT(bytes.size(), 64u);
  for (size_t len = 0; len < bytes.size(); ++len) {
    Result<RefreshDurableState> decoded =
        DecodeSnapshot(std::string_view(bytes).substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "truncation to " << len << " bytes of "
                               << bytes.size() << " validated";
  }
  // And a sanity anchor: the untouched image decodes.
  EXPECT_TRUE(DecodeSnapshot(bytes).ok());
}

TEST(CorruptionMatrix, SnapshotRejectsEverySingleBitFlip) {
  const std::string bytes = EncodeSnapshot(3, SmallState());
  std::string damaged = bytes;
  for (size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      damaged[i] = static_cast<char>(bytes[i] ^ (1 << bit));
      Result<RefreshDurableState> decoded = DecodeSnapshot(damaged);
      EXPECT_FALSE(decoded.ok())
          << "flip of byte " << i << " bit " << bit << " validated";
    }
    damaged[i] = bytes[i];
  }
}

TEST(CorruptionMatrix, SnapshotRejectsTrailingGarbage) {
  std::string bytes = EncodeSnapshot(3, SmallState());
  bytes += "extra";
  EXPECT_FALSE(DecodeSnapshot(bytes).ok());
}

// --------------------------------------------------------------- the WAL

// A segment with one registration + two delta batches, as written by the
// real writer.
std::string BuildSegment(const std::string& dir) {
  auto writer = WalWriter::Open(dir, 1);
  EXPECT_TRUE(writer.ok());
  std::vector<int64_t> values = {1, 2};
  std::vector<double> freqs = {3.0, 4.0};
  uint64_t lsn = 0;
  EXPECT_TRUE(
      (*writer)->AppendRegistration(0, "t", "a", values, freqs, &lsn).ok());
  for (int batch = 0; batch < 2; ++batch) {
    std::vector<UpdateRecord> records(3);
    for (int i = 0; i < 3; ++i) {
      records[i].column = 0;
      records[i].value = i;
      records[i].weight = 1.0;
    }
    EXPECT_TRUE((*writer)->AppendDeltas(records).ok());
  }
  std::ifstream in(dir + "/" + WalSegmentFileName(1), std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

struct ReplayCounts {
  size_t deltas = 0;
  size_t registrations = 0;
};

Result<WalReplayReport> ReplayBytes(const std::string& dir,
                                    const std::string& name,
                                    const std::string& bytes,
                                    ReplayCounts* counts) {
  EXPECT_TRUE(WriteFileAtomic(dir, name, bytes, false).ok());
  return ReplayWalDir(
      dir, 0,
      [counts](const WalDeltaBatch& batch) {
        counts->deltas += batch.records.size();
        return Status::OK();
      },
      [counts](const WalRegistration&) {
        counts->registrations += 1;
        return Status::OK();
      });
}

// Every truncation of the (sole, hence last) segment either fails with a
// Status (header cut) or succeeds having dropped the torn tail — and a
// repeated replay of the truncated file is clean. Never a crash, never
// more records than were written.
TEST(CorruptionMatrix, WalToleratesEveryTruncationOfTheLastSegment) {
  const std::string build_dir = MakeTempDir("walbuild");
  const std::string bytes = BuildSegment(build_dir);
  ASSERT_GT(bytes.size(), 24u);

  const size_t full_records = 7;  // 1 registration + 6 deltas
  for (size_t len = 0; len < bytes.size(); ++len) {
    const std::string dir = MakeTempDir("waltrunc");
    ReplayCounts counts;
    Result<WalReplayReport> report = ReplayBytes(
        dir, WalSegmentFileName(1), bytes.substr(0, len), &counts);
    if (len < 24) {
      // Not even a valid header: reject.
      EXPECT_FALSE(report.ok()) << "header truncation to " << len;
    } else {
      ASSERT_TRUE(report.ok()) << "truncation to " << len << ": "
                               << report.status().message();
      EXPECT_LE(counts.deltas + counts.registrations, full_records);
      if (len < bytes.size()) {
        EXPECT_TRUE(report->torn_tail_truncated || counts.deltas +
                        counts.registrations < full_records ||
                    len == bytes.size())
            << "truncation to " << len << " replayed everything";
      }
      // Second replay of the repaired file is clean.
      ReplayCounts again;
      Result<WalReplayReport> second = ReplayWalDir(
          dir, 0,
          [&again](const WalDeltaBatch& batch) {
            again.deltas += batch.records.size();
            return Status::OK();
          },
          [&again](const WalRegistration&) {
            again.registrations += 1;
            return Status::OK();
          });
      ASSERT_TRUE(second.ok());
      EXPECT_FALSE(second->torn_tail_truncated);
      EXPECT_EQ(again.deltas, counts.deltas);
      EXPECT_EQ(again.registrations, counts.registrations);
    }
  }
}

// Bit flips in the last segment: flips in the header (minus its padding)
// reject; flips anywhere in the frame stream are either caught as a torn
// tail (frame CRC/length) or — only for the 4 header padding bytes — are
// a documented don't-care. Replay must never crash and never produce more
// records than were written.
TEST(CorruptionMatrix, WalSurvivesEverySingleBitFlipOfTheLastSegment) {
  const std::string build_dir = MakeTempDir("walbuild2");
  const std::string bytes = BuildSegment(build_dir);
  const size_t full_records = 7;

  for (size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = bytes;
      damaged[i] = static_cast<char>(bytes[i] ^ (1 << bit));
      const std::string dir = MakeTempDir("walflip");
      ReplayCounts counts;
      Result<WalReplayReport> report =
          ReplayBytes(dir, WalSegmentFileName(1), damaged, &counts);
      if (i < 20) {
        EXPECT_FALSE(report.ok())
            << "header flip at byte " << i << " bit " << bit << " validated";
      } else if (i < 24) {
        // Header padding: not covered, by design.
        EXPECT_TRUE(report.ok());
      } else {
        ASSERT_TRUE(report.ok()) << "flip at byte " << i << " bit " << bit
                                 << ": " << report.status().message();
        EXPECT_LE(counts.deltas + counts.registrations, full_records);
        EXPECT_LT(counts.deltas + counts.registrations, full_records)
            << "flip at byte " << i << " bit " << bit
            << " replayed everything intact";
      }
    }
  }
}

// The same corruption in a NON-last segment is a hard error: replay may
// only repair the tail of the log, never skip damage in the middle.
TEST(CorruptionMatrix, WalRejectsFrameCorruptionInNonLastSegments) {
  const std::string build_dir = MakeTempDir("walbuild3");
  const std::string bytes = BuildSegment(build_dir);

  // Sample a flip inside each frame region (header flips already covered).
  for (size_t i : {size_t{24}, size_t{40}, bytes.size() / 2,
                   bytes.size() - 2}) {
    std::string damaged = bytes;
    damaged[i] = static_cast<char>(bytes[i] ^ 0x10);
    const std::string dir = MakeTempDir("walmidflip");
    ASSERT_TRUE(
        WriteFileAtomic(dir, WalSegmentFileName(1), damaged, false).ok());
    // A later (empty but valid-headered) segment makes the damaged one
    // non-last.
    auto successor = WalWriter::Open(dir, 1000);
    ASSERT_TRUE(successor.ok());
    successor->reset();

    Result<WalReplayReport> report = ReplayWalDir(
        dir, 0, [](const WalDeltaBatch&) { return Status::OK(); },
        [](const WalRegistration&) { return Status::OK(); });
    EXPECT_FALSE(report.ok()) << "mid-log flip at byte " << i << " skipped";
  }
}

}  // namespace
}  // namespace hops::storage
