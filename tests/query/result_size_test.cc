#include "query/result_size.h"

#include <gtest/gtest.h>

#include <cmath>

#include "histogram/builders.h"

namespace hops {
namespace {

ChainQuery TwoWayQuery() {
  auto r0 = FrequencyMatrix::HorizontalVector({10, 20, 30, 40});
  auto r1 = FrequencyMatrix::VerticalVector({4, 3, 2, 1});
  EXPECT_TRUE(r0.ok() && r1.ok());
  auto q = ChainQuery::Make({*r0, *r1});
  EXPECT_TRUE(q.ok());
  return *std::move(q);
}

TEST(ResultSizeTest, PerfectHistogramsReproduceExactSize) {
  ChainQuery q = TwoWayQuery();
  // One bucket per cell: the approximation is exact.
  std::vector<Bucketization> bz;
  bz.push_back(*Bucketization::FromAssignments({0, 1, 2, 3}, 4));
  bz.push_back(*Bucketization::FromAssignments({0, 1, 2, 3}, 4));
  auto est = EstimateResultSize(q, bz);
  ASSERT_TRUE(est.ok());
  auto exact = q.ExactResultSize();
  ASSERT_TRUE(exact.ok());
  EXPECT_DOUBLE_EQ(*est, *exact);
}

TEST(ResultSizeTest, TrivialHistogramsUseUniformAssumption) {
  ChainQuery q = TwoWayQuery();
  std::vector<Bucketization> bz;
  bz.push_back(*Bucketization::SingleBucket(4));
  bz.push_back(*Bucketization::SingleBucket(4));
  auto est = EstimateResultSize(q, bz);
  ASSERT_TRUE(est.ok());
  // Uniform: each cell of R0 -> 25, each of R1 -> 2.5: S' = 4 * 62.5.
  EXPECT_DOUBLE_EQ(*est, 250.0);
}

TEST(ResultSizeTest, WrongBucketizationCountFails) {
  ChainQuery q = TwoWayQuery();
  std::vector<Bucketization> bz;
  bz.push_back(*Bucketization::SingleBucket(4));
  EXPECT_TRUE(EstimateResultSize(q, bz).status().IsInvalidArgument());
}

TEST(ResultSizeTest, WrongBucketizationSizeFails) {
  ChainQuery q = TwoWayQuery();
  std::vector<Bucketization> bz;
  bz.push_back(*Bucketization::SingleBucket(4));
  bz.push_back(*Bucketization::SingleBucket(3));
  EXPECT_FALSE(EstimateResultSize(q, bz).ok());
}

TEST(ResultSizeTest, EvaluateEstimateComputesErrorMetrics) {
  ChainQuery q = TwoWayQuery();
  std::vector<Bucketization> bz;
  bz.push_back(*Bucketization::SingleBucket(4));
  bz.push_back(*Bucketization::SingleBucket(4));
  auto ev = EvaluateEstimate(q, bz);
  ASSERT_TRUE(ev.ok());
  EXPECT_DOUBLE_EQ(ev->exact, 200.0);  // 40+60+60+40
  EXPECT_DOUBLE_EQ(ev->estimated, 250.0);
  EXPECT_DOUBLE_EQ(ev->error, -50.0);
  EXPECT_DOUBLE_EQ(ev->absolute_error, 50.0);
  EXPECT_DOUBLE_EQ(ev->relative_error, 0.25);
}

TEST(ResultSizeTest, ZeroExactSizeHandled) {
  auto r0 = FrequencyMatrix::HorizontalVector({1, 0});
  auto r1 = FrequencyMatrix::VerticalVector({0, 1});
  auto q = ChainQuery::Make({*r0, *r1});
  ASSERT_TRUE(q.ok());
  std::vector<Bucketization> bz;
  bz.push_back(*Bucketization::SingleBucket(2));
  bz.push_back(*Bucketization::SingleBucket(2));
  auto ev = EvaluateEstimate(*q, bz);
  ASSERT_TRUE(ev.ok());
  EXPECT_DOUBLE_EQ(ev->exact, 0.0);
  EXPECT_TRUE(std::isinf(ev->relative_error));
}

TEST(ResultSizeTest, RoundingModeChangesEstimate) {
  // Cells {1, 2} in one bucket: exact avg 1.5, rounded avg 2.
  auto r0 = FrequencyMatrix::HorizontalVector({1, 2});
  auto r1 = FrequencyMatrix::VerticalVector({1, 1});
  auto q = ChainQuery::Make({*r0, *r1});
  ASSERT_TRUE(q.ok());
  std::vector<Bucketization> bz;
  bz.push_back(*Bucketization::SingleBucket(2));
  bz.push_back(*Bucketization::SingleBucket(2));
  auto exact_mode = EstimateResultSize(*q, bz, BucketAverageMode::kExact);
  auto round_mode =
      EstimateResultSize(*q, bz, BucketAverageMode::kRoundToInteger);
  ASSERT_TRUE(exact_mode.ok());
  ASSERT_TRUE(round_mode.ok());
  EXPECT_DOUBLE_EQ(*exact_mode, 3.0);
  EXPECT_DOUBLE_EQ(*round_mode, 4.0);
}

TEST(ResultSizeTest, FromMatricesPassThrough) {
  std::vector<FrequencyMatrix> ms;
  ms.push_back(*FrequencyMatrix::HorizontalVector({2, 2}));
  ms.push_back(*FrequencyMatrix::VerticalVector({3, 3}));
  auto s = EstimateResultSizeFromMatrices(ms);
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(*s, 12.0);
}

TEST(ResultSizeTest, EvaluateEstimateBatchMatchesSerial) {
  auto r0 = FrequencyMatrix::HorizontalVector({5, 3, 2, 1});
  auto r1 = FrequencyMatrix::VerticalVector({4, 2, 2, 1});
  auto q = ChainQuery::Make({*r0, *r1});
  ASSERT_TRUE(q.ok());

  std::vector<std::vector<Bucketization>> candidates;
  for (size_t b = 1; b <= 4; ++b) {
    std::vector<uint32_t> bucket_of(4);
    for (size_t i = 0; i < 4; ++i) {
      bucket_of[i] = static_cast<uint32_t>(i * b / 4);
    }
    std::vector<Bucketization> bz;
    bz.push_back(*Bucketization::FromAssignments(bucket_of, b));
    bz.push_back(*Bucketization::FromAssignments(bucket_of, b));
    candidates.push_back(std::move(bz));
  }
  // A malformed candidate (wrong relation count) must fail alone.
  candidates.push_back({*Bucketization::SingleBucket(4)});

  std::vector<Result<SizeEstimate>> batched =
      EvaluateEstimateBatch(*q, candidates);
  ASSERT_EQ(batched.size(), candidates.size());
  for (size_t i = 0; i + 1 < candidates.size(); ++i) {
    auto serial = EvaluateEstimate(*q, candidates[i]);
    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(batched[i].ok()) << "candidate " << i;
    EXPECT_EQ(serial->exact, batched[i]->exact);
    EXPECT_EQ(serial->estimated, batched[i]->estimated);
    EXPECT_EQ(serial->error, batched[i]->error);
    EXPECT_EQ(serial->relative_error, batched[i]->relative_error);
  }
  EXPECT_FALSE(batched.back().ok());
  EXPECT_TRUE(EvaluateEstimateBatch(*q, {}).empty());
}

}  // namespace
}  // namespace hops
