#include "query/chain_query.h"

#include <gtest/gtest.h>

namespace hops {
namespace {

FrequencyMatrix H(std::vector<Frequency> v) {
  return *FrequencyMatrix::HorizontalVector(std::move(v));
}
FrequencyMatrix V(std::vector<Frequency> v) {
  return *FrequencyMatrix::VerticalVector(std::move(v));
}
FrequencyMatrix M(size_t r, size_t c, std::vector<Frequency> v) {
  return *FrequencyMatrix::Make(r, c, std::move(v));
}

TEST(ChainQueryTest, ValidTwoWayJoin) {
  auto q = ChainQuery::Make({H({1, 2}), V({3, 4})});
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->num_relations(), 2u);
  EXPECT_EQ(q->num_joins(), 1u);
  auto s = q->ExactResultSize();
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(*s, 11.0);
}

TEST(ChainQueryTest, ThreeWayChain) {
  auto q = ChainQuery::Make({H({1, 1}), M(2, 2, {1, 0, 0, 1}), V({5, 7})});
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->num_joins(), 2u);
  auto s = q->ExactResultSize();
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(*s, 12.0);
}

TEST(ChainQueryTest, RejectsEmpty) {
  EXPECT_TRUE(ChainQuery::Make({}).status().IsInvalidArgument());
}

TEST(ChainQueryTest, RejectsNonVectorEnds) {
  EXPECT_FALSE(ChainQuery::Make({M(2, 2, {1, 2, 3, 4}), V({1, 2})}).ok());
  EXPECT_FALSE(ChainQuery::Make({H({1, 2}), M(2, 2, {1, 2, 3, 4})}).ok());
}

TEST(ChainQueryTest, RejectsDomainMismatch) {
  EXPECT_FALSE(ChainQuery::Make({H({1, 2, 3}), V({1, 2})}).ok());
  EXPECT_FALSE(
      ChainQuery::Make({H({1, 2}), M(3, 2, {1, 2, 3, 4, 5, 6}), V({1, 2})})
          .ok());
}

TEST(SelectionIndicatorTest, BuildsZeroOneVector) {
  std::vector<size_t> selected = {0, 2};
  auto v = SelectionIndicatorVector(4, selected, /*vertical=*/true);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->rows(), 4u);
  EXPECT_EQ(v->At(0, 0), 1.0);
  EXPECT_EQ(v->At(1, 0), 0.0);
  EXPECT_EQ(v->At(2, 0), 1.0);
  EXPECT_EQ(v->At(3, 0), 0.0);
}

TEST(SelectionIndicatorTest, HorizontalShape) {
  std::vector<size_t> selected = {1};
  auto v = SelectionIndicatorVector(3, selected, /*vertical=*/false);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->rows(), 1u);
  EXPECT_EQ(v->cols(), 3u);
}

TEST(SelectionIndicatorTest, OutOfRangeValueFails) {
  std::vector<size_t> selected = {5};
  EXPECT_TRUE(SelectionIndicatorVector(4, selected, true)
                  .status()
                  .IsOutOfRange());
}

TEST(SelectionIndicatorTest, SelectionAsJoinComputesSelectedCount) {
  // "R1.a1 = c" modeled as joining with a singleton indicator: the result
  // size is the frequency of c in R1.
  FrequencyMatrix r1 = H({10, 20, 30});
  std::vector<size_t> c = {1};
  auto sel = SelectionIndicatorVector(3, c, /*vertical=*/true);
  ASSERT_TRUE(sel.ok());
  auto q = ChainQuery::Make({r1, *sel});
  ASSERT_TRUE(q.ok());
  auto s = q->ExactResultSize();
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(*s, 20.0);
}

}  // namespace
}  // namespace hops
