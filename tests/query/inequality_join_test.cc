#include "query/inequality_join.h"

#include <gtest/gtest.h>

#include "histogram/builders.h"
#include "util/random.h"

namespace hops {
namespace {

TEST(ThetaJoinTest, HandComputedSizes) {
  std::vector<Frequency> f = {2, 3, 1};  // values 0, 1, 2
  std::vector<Frequency> g = {4, 5, 6};
  // S_= : 8 + 15 + 6 = 29.
  auto eq = ThetaJoinSize(f, g, JoinComparison::kEqual);
  ASSERT_TRUE(eq.ok());
  EXPECT_DOUBLE_EQ(*eq, 29.0);
  // S_< : 2*(5+6) + 3*6 + 0 = 40.
  auto lt = ThetaJoinSize(f, g, JoinComparison::kLess);
  ASSERT_TRUE(lt.ok());
  EXPECT_DOUBLE_EQ(*lt, 40.0);
  // S_<= = S_< + S_= = 69.
  auto le = ThetaJoinSize(f, g, JoinComparison::kLessEqual);
  ASSERT_TRUE(le.ok());
  EXPECT_DOUBLE_EQ(*le, 69.0);
  // S_> : 3*4 + 1*(4+5) = 21.
  auto gt = ThetaJoinSize(f, g, JoinComparison::kGreater);
  ASSERT_TRUE(gt.ok());
  EXPECT_DOUBLE_EQ(*gt, 21.0);
  // S_>= = 21 + 29 = 50.
  auto ge = ThetaJoinSize(f, g, JoinComparison::kGreaterEqual);
  ASSERT_TRUE(ge.ok());
  EXPECT_DOUBLE_EQ(*ge, 50.0);
  // S_!= = |R||S| - S_= = 6*15 - 29 = 61.
  auto ne = ThetaJoinSize(f, g, JoinComparison::kNotEqual);
  ASSERT_TRUE(ne.ok());
  EXPECT_DOUBLE_EQ(*ne, 61.0);
}

TEST(ThetaJoinTest, OperatorsPartitionTheCrossProduct) {
  // S_< + S_= + S_> must equal |R| * |S| on any input.
  Rng rng(121);
  for (int trial = 0; trial < 20; ++trial) {
    size_t m = 1 + rng.NextBounded(30);
    std::vector<Frequency> f(m), g(m);
    double tf = 0, tg = 0;
    for (size_t i = 0; i < m; ++i) {
      f[i] = static_cast<double>(rng.NextBounded(20));
      g[i] = static_cast<double>(rng.NextBounded(20));
      tf += f[i];
      tg += g[i];
    }
    auto lt = ThetaJoinSize(f, g, JoinComparison::kLess);
    auto eq = ThetaJoinSize(f, g, JoinComparison::kEqual);
    auto gt = ThetaJoinSize(f, g, JoinComparison::kGreater);
    ASSERT_TRUE(lt.ok() && eq.ok() && gt.ok());
    EXPECT_NEAR(*lt + *eq + *gt, tf * tg, 1e-9 * (1 + tf * tg));
    // And the complements line up.
    auto le = ThetaJoinSize(f, g, JoinComparison::kLessEqual);
    auto ne = ThetaJoinSize(f, g, JoinComparison::kNotEqual);
    ASSERT_TRUE(le.ok() && ne.ok());
    EXPECT_NEAR(*le, *lt + *eq, 1e-9 * (1 + *le));
    EXPECT_NEAR(*ne, tf * tg - *eq, 1e-9 * (1 + *ne));
  }
}

TEST(ThetaJoinTest, Validation) {
  std::vector<Frequency> f = {1, 2};
  std::vector<Frequency> g = {1};
  EXPECT_TRUE(ThetaJoinSize(f, g, JoinComparison::kLess)
                  .status()
                  .IsInvalidArgument());
  std::vector<Frequency> neg = {1, -2};
  EXPECT_TRUE(ThetaJoinSize(f, neg, JoinComparison::kLess)
                  .status()
                  .IsInvalidArgument());
}

TEST(ThetaJoinTest, OperatorNames) {
  EXPECT_STREQ(JoinComparisonToString(JoinComparison::kLess), "<");
  EXPECT_STREQ(JoinComparisonToString(JoinComparison::kNotEqual), "!=");
  EXPECT_STREQ(JoinComparisonToString(JoinComparison::kGreaterEqual), ">=");
}

TEST(ThetaJoinTest, HistogramApproximationOfNotEquals) {
  // Section 6: serial histograms serve the != operator because it is the
  // complement of the equi-join; histogram totals are preserved, so only
  // the equi-join part carries error. Check that the != estimate error
  // equals the = estimate error in magnitude.
  Rng rng(222);
  std::vector<Frequency> f(40), g(40);
  for (size_t i = 0; i < 40; ++i) {
    f[i] = static_cast<double>(
        std::min(rng.NextBounded(50), rng.NextBounded(50)));
    g[i] = static_cast<double>(
        std::min(rng.NextBounded(50), rng.NextBounded(50)));
  }
  auto fs = FrequencySet::Make(f);
  auto gs = FrequencySet::Make(g);
  ASSERT_TRUE(fs.ok() && gs.ok());
  auto hf = BuildVOptEndBiased(*fs, 5);
  auto hg = BuildVOptEndBiased(*gs, 5);
  ASSERT_TRUE(hf.ok() && hg.ok());
  std::vector<Frequency> af = hf->ApproximateFrequencies();
  std::vector<Frequency> ag = hg->ApproximateFrequencies();

  auto exact_eq = ThetaJoinSize(f, g, JoinComparison::kEqual);
  auto approx_eq = ThetaJoinSize(af, ag, JoinComparison::kEqual);
  auto exact_ne = ThetaJoinSize(f, g, JoinComparison::kNotEqual);
  auto approx_ne = ThetaJoinSize(af, ag, JoinComparison::kNotEqual);
  ASSERT_TRUE(exact_eq.ok() && approx_eq.ok() && exact_ne.ok() &&
              approx_ne.ok());
  EXPECT_NEAR(std::abs(*exact_ne - *approx_ne),
              std::abs(*exact_eq - *approx_eq),
              1e-6 * (1 + std::abs(*exact_eq - *approx_eq)));
}

TEST(ThetaJoinTest, SerialBeatsTrivialOnInequalityJoins) {
  // Empirical probe of the open non-equality-join question: averaged over
  // random skewed vectors and random value arrangements, the serial
  // histogram estimates S_< better than the uniform assumption.
  Rng rng(333);
  double err_serial = 0, err_trivial = 0;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Frequency> f(30), g(30);
    for (size_t i = 0; i < 30; ++i) {
      f[i] = static_cast<double>(
          std::min({rng.NextBounded(40), rng.NextBounded(40),
                    rng.NextBounded(40)}));
      g[i] = static_cast<double>(
          std::min({rng.NextBounded(40), rng.NextBounded(40),
                    rng.NextBounded(40)}));
    }
    auto fs = FrequencySet::Make(f);
    auto gs = FrequencySet::Make(g);
    ASSERT_TRUE(fs.ok() && gs.ok());
    auto hs_f = BuildVOptSerialDP(*fs, 5);
    auto hs_g = BuildVOptSerialDP(*gs, 5);
    auto ht_f = BuildTrivialHistogram(*fs);
    auto ht_g = BuildTrivialHistogram(*gs);
    ASSERT_TRUE(hs_f.ok() && hs_g.ok() && ht_f.ok() && ht_g.ok());
    auto exact = ThetaJoinSize(f, g, JoinComparison::kLess);
    auto serial =
        ThetaJoinSize(hs_f->ApproximateFrequencies(),
                      hs_g->ApproximateFrequencies(), JoinComparison::kLess);
    auto trivial =
        ThetaJoinSize(ht_f->ApproximateFrequencies(),
                      ht_g->ApproximateFrequencies(), JoinComparison::kLess);
    ASSERT_TRUE(exact.ok() && serial.ok() && trivial.ok());
    err_serial += std::abs(*exact - *serial);
    err_trivial += std::abs(*exact - *trivial);
  }
  EXPECT_LT(err_serial, err_trivial);
}

}  // namespace
}  // namespace hops
