#include "query/cycle_query.h"

#include <gtest/gtest.h>

#include "histogram/builders.h"
#include "util/random.h"

namespace hops {
namespace {

FrequencyMatrix M(size_t r, size_t c, std::vector<Frequency> v) {
  return *FrequencyMatrix::Make(r, c, std::move(v));
}

TEST(CycleQueryTest, TwoRelationCycleIsJoinOnBothAttributes) {
  // A 2-cycle R0(a, b) |x| R1(b, a): tuples match on BOTH columns, so
  // S = sum_{u,v} F0(u,v) * F1(v,u).
  auto q = CycleQuery::Make(
      {M(2, 2, {1, 2, 3, 4}), M(2, 2, {5, 6, 7, 8})});
  ASSERT_TRUE(q.ok());
  auto s = q->ExactResultSize();
  ASSERT_TRUE(s.ok());
  // tr(F0*F1) = (1*5+2*7) + (3*6+4*8) = 19 + 50.
  EXPECT_DOUBLE_EQ(*s, 69.0);
}

TEST(CycleQueryTest, ExactMatchesBruteForce) {
  Rng rng(40404);
  for (int trial = 0; trial < 10; ++trial) {
    size_t k = 2 + rng.NextBounded(3);  // 2..4 relations
    std::vector<size_t> dims(k);
    for (auto& d : dims) d = 2 + rng.NextBounded(3);
    std::vector<FrequencyMatrix> ms;
    for (size_t j = 0; j < k; ++j) {
      size_t rows = dims[j];
      size_t cols = dims[(j + 1) % k];
      std::vector<Frequency> cells(rows * cols);
      for (auto& c : cells) c = static_cast<double>(rng.NextBounded(5));
      ms.push_back(M(rows, cols, std::move(cells)));
    }
    auto q = CycleQuery::Make(ms);
    ASSERT_TRUE(q.ok());
    auto fast = q->ExactResultSize();
    auto brute = q->BruteForceResultSize();
    ASSERT_TRUE(fast.ok() && brute.ok());
    EXPECT_NEAR(*fast, *brute, 1e-9 * (1 + *brute)) << "trial " << trial;
  }
}

TEST(CycleQueryTest, Validation) {
  // Too few relations.
  EXPECT_FALSE(CycleQuery::Make({M(2, 2, {1, 2, 3, 4})}).ok());
  // Interior mismatch.
  EXPECT_FALSE(
      CycleQuery::Make({M(2, 3, {1, 2, 3, 4, 5, 6}), M(2, 2, {1, 2, 3, 4})})
          .ok());
  // Closing-join mismatch: F1 must end where F0 begins.
  EXPECT_FALSE(
      CycleQuery::Make({M(2, 3, {1, 2, 3, 4, 5, 6}),
                        M(3, 3, std::vector<Frequency>(9, 1.0))})
          .ok());
}

TEST(CycleQueryTest, PerfectHistogramsEstimateExactly) {
  auto q = CycleQuery::Make(
      {M(2, 2, {9, 1, 0, 4}), M(2, 2, {2, 2, 5, 1})});
  ASSERT_TRUE(q.ok());
  std::vector<Bucketization> bz = {
      *Bucketization::FromAssignments({0, 1, 2, 3}, 4),
      *Bucketization::FromAssignments({0, 1, 2, 3}, 4)};
  auto est = q->EstimateResultSize(bz);
  auto exact = q->ExactResultSize();
  ASSERT_TRUE(est.ok() && exact.ok());
  EXPECT_DOUBLE_EQ(*est, *exact);
}

TEST(CycleQueryTest, BucketizationCountValidated) {
  auto q = CycleQuery::Make(
      {M(2, 2, {1, 1, 1, 1}), M(2, 2, {1, 1, 1, 1})});
  ASSERT_TRUE(q.ok());
  std::vector<Bucketization> one = {*Bucketization::SingleBucket(4)};
  EXPECT_TRUE(q->EstimateResultSize(one).status().IsInvalidArgument());
}

TEST(CycleQueryTest, SerialHistogramsBeatValueOrderOnSkewedCycles) {
  // Empirical probe of the paper's open question: on skewed cyclic joins,
  // do serial histograms still dominate? Average |S - S'| over random
  // skewed 3-cycles.
  Rng rng(777);
  double err_serial = 0, err_width = 0;
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<FrequencyMatrix> ms;
    for (int j = 0; j < 3; ++j) {
      std::vector<Frequency> cells(16);
      for (auto& c : cells) {
        // Heavy-tailed cells.
        c = static_cast<double>(
            std::min({rng.NextBounded(60), rng.NextBounded(60),
                      rng.NextBounded(60)}));
      }
      ms.push_back(M(4, 4, std::move(cells)));
    }
    auto q = CycleQuery::Make(ms);
    ASSERT_TRUE(q.ok());
    std::vector<Bucketization> serial_bz, width_bz;
    for (int j = 0; j < 3; ++j) {
      auto set = ms[j].ToFrequencySet();
      auto hs = BuildVOptSerialDP(set, 4);
      auto hw = BuildEquiWidthHistogram(set, 4);
      ASSERT_TRUE(hs.ok() && hw.ok());
      serial_bz.push_back(hs->bucketization());
      width_bz.push_back(hw->bucketization());
    }
    auto exact = q->ExactResultSize();
    auto es = q->EstimateResultSize(serial_bz);
    auto ew = q->EstimateResultSize(width_bz);
    ASSERT_TRUE(exact.ok() && es.ok() && ew.ok());
    err_serial += std::abs(*exact - *es);
    err_width += std::abs(*exact - *ew);
  }
  EXPECT_LT(err_serial, err_width);
}

}  // namespace
}  // namespace hops
