// Worked examples lifted from the paper, reproduced end to end.

#include <gtest/gtest.h>

#include "query/chain_query.h"
#include "query/joint_matrix.h"

namespace hops {
namespace {

// Example 2.2: Q := (R0.a1 = R1.a1 and R1.a2 = R2.a2) with
//   R0 over {v1, v2}: v1 -> 20, v2 -> 15;
//   R1 a (2 x 3) matrix over {v1,v2} x {u1,u2,u3};
//   R2 over {u1, u2, u3}: u1 -> 21, u2 -> 16, u3 -> 5.
// The paper lists the joint-frequency quintuples <v1,u1,20,25,21>,
// <v1,u2,20,10,16>, <v2,u3,15,3,5> and reports S = T0*T1*T2 = 19,265.
// We complete R1's unlisted entries consistently with that result size.
ChainQuery Example22Query() {
  auto r0 = FrequencyMatrix::HorizontalVector({20, 15});
  auto r1 = FrequencyMatrix::Make(2, 3, {25, 10, 12, 4, 12, 3});
  auto r2 = FrequencyMatrix::VerticalVector({21, 16, 5});
  EXPECT_TRUE(r0.ok() && r1.ok() && r2.ok());
  auto q = ChainQuery::Make({*r0, *r1, *r2});
  EXPECT_TRUE(q.ok());
  return *std::move(q);
}

TEST(PaperExamplesTest, Example22ResultSizeIs19265) {
  ChainQuery q = Example22Query();
  auto s = q.ExactResultSize();
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(*s, 19265.0);
}

TEST(PaperExamplesTest, Example22JointFrequencyQuintuples) {
  ChainQuery q = Example22Query();
  auto table = JointFrequencyTable::Build(q);
  ASSERT_TRUE(table.ok());
  // Every row is a quintuple <d1, d2, f0, f1, f2>; the three the paper
  // prints must be present.
  auto has_row = [&](size_t d1, size_t d2, double f0, double f1, double f2) {
    for (const auto& row : table->rows()) {
      if (row.domain_values == std::vector<size_t>{d1, d2} &&
          row.frequencies == std::vector<double>{f0, f1, f2}) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(has_row(0, 0, 20, 25, 21));  // <v1, u1, 20, 25, 21>
  EXPECT_TRUE(has_row(0, 1, 20, 10, 16));  // <v1, u2, 20, 10, 16>
  EXPECT_TRUE(has_row(1, 2, 15, 3, 5));    // <v2, u3, 15, 3, 5>
  // And the whole table reproduces the result size.
  EXPECT_DOUBLE_EQ(table->ResultSize(), 19265.0);
}

TEST(PaperExamplesTest, Example22DisjunctiveSelection) {
  // Q := (R0.a1 = R1.a1 and (R1.a2 = u1 or R1.a2 = u3)): replace R2 by the
  // transpose of (1 0 1).
  auto r0 = FrequencyMatrix::HorizontalVector({20, 15});
  auto r1 = FrequencyMatrix::Make(2, 3, {25, 10, 12, 4, 12, 3});
  std::vector<size_t> selected = {0, 2};
  auto sel = SelectionIndicatorVector(3, selected, /*vertical=*/true);
  ASSERT_TRUE(r0.ok() && r1.ok() && sel.ok());
  auto q = ChainQuery::Make({*r0, *r1, *sel});
  ASSERT_TRUE(q.ok());
  auto s = q->ExactResultSize();
  ASSERT_TRUE(s.ok());
  // 20*(25 + 12) + 15*(4 + 3) = 740 + 105.
  EXPECT_DOUBLE_EQ(*s, 845.0);
}

TEST(PaperExamplesTest, Figure2WorksForFrequencyMatrix) {
  // Example 2.3: WorksFor(dname, year) with four departments and five
  // years. Totals must be consistent however the matrix is bucketized.
  auto m = FrequencyMatrix::Make(4, 5,
                                 {10, 5, 4, 0, 0,   //
                                  8,  6, 0, 0, 0,   //
                                  4,  2, 2, 0, 0,   //
                                  9,  5, 3, 2, 0});
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->Total(), 60.0);
  FrequencySet cells = m->ToFrequencySet();
  EXPECT_EQ(cells.size(), 20u);
  EXPECT_DOUBLE_EQ(cells.Max(), 10.0);
}

TEST(PaperExamplesTest, SingletonRelationModelsEqualitySelection) {
  // Section 2.2: "if R0 is singleton and a1 = c is its sole tuple, then Q is
  // equivalent to a query that contains the selection R1.a1 = c".
  // R1.a1 frequencies: c -> 7 among {c, c2, c3}.
  auto r0 = FrequencyMatrix::HorizontalVector({1, 0, 0});
  auto r1 = FrequencyMatrix::VerticalVector({7, 3, 2});
  ASSERT_TRUE(r0.ok() && r1.ok());
  auto q = ChainQuery::Make({*r0, *r1});
  ASSERT_TRUE(q.ok());
  auto s = q->ExactResultSize();
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(*s, 7.0);
}

}  // namespace
}  // namespace hops
