#include "query/star_query.h"

#include <gtest/gtest.h>

#include "histogram/builders.h"
#include "util/random.h"

namespace hops {
namespace {

StarQuery MustStar(std::vector<size_t> shape, std::vector<Frequency> cells,
                   std::vector<std::vector<Frequency>> leaves) {
  auto center = FrequencyTensor::Make(std::move(shape), std::move(cells));
  EXPECT_TRUE(center.ok());
  auto q = StarQuery::Make(*std::move(center), std::move(leaves));
  EXPECT_TRUE(q.ok()) << q.status();
  return *std::move(q);
}

TEST(StarQueryTest, TwoLeafStarExactSize) {
  // Center 2x2 with leaves — a 3-relation star (equivalently a chain).
  StarQuery q = MustStar({2, 2}, {1, 2, 3, 4}, {{2, 1}, {1, 3}});
  auto s = q.ExactResultSize();
  ASSERT_TRUE(s.ok());
  // 2*(1*1 + 2*3) + 1*(3*1 + 4*3) = 14 + 15.
  EXPECT_DOUBLE_EQ(*s, 29.0);
}

TEST(StarQueryTest, ExactMatchesBruteForce) {
  Rng rng(9090);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<size_t> shape = {2 + rng.NextBounded(3),
                                 2 + rng.NextBounded(3),
                                 2 + rng.NextBounded(3)};
    size_t cells = shape[0] * shape[1] * shape[2];
    std::vector<Frequency> data(cells);
    for (auto& f : data) f = static_cast<double>(rng.NextBounded(6));
    std::vector<std::vector<Frequency>> leaves;
    for (size_t d = 0; d < 3; ++d) {
      std::vector<Frequency> leaf(shape[d]);
      for (auto& f : leaf) f = static_cast<double>(rng.NextBounded(6));
      leaves.push_back(std::move(leaf));
    }
    StarQuery q = MustStar(shape, data, leaves);
    auto fast = q.ExactResultSize();
    auto brute = q.BruteForceResultSize();
    ASSERT_TRUE(fast.ok() && brute.ok());
    EXPECT_NEAR(*fast, *brute, 1e-9 * (1 + *brute)) << "trial " << trial;
  }
}

TEST(StarQueryTest, Validation) {
  auto center = FrequencyTensor::Make({2, 2}, {1, 2, 3, 4});
  ASSERT_TRUE(center.ok());
  // Wrong leaf count.
  EXPECT_TRUE(StarQuery::Make(*center, {{1, 2}})
                  .status()
                  .IsInvalidArgument());
  // Wrong leaf length.
  EXPECT_TRUE(StarQuery::Make(*center, {{1, 2}, {1, 2, 3}})
                  .status()
                  .IsInvalidArgument());
  // Rank-0 center.
  auto scalar = FrequencyTensor::Make({}, {1});
  ASSERT_TRUE(scalar.ok());
  EXPECT_TRUE(StarQuery::Make(*scalar, {}).status().IsInvalidArgument());
}

TEST(StarQueryTest, PerfectHistogramsEstimateExactly) {
  StarQuery q = MustStar({2, 2}, {5, 1, 2, 8}, {{3, 1}, {2, 2}});
  // One bucket per cell/value everywhere.
  auto cb = Bucketization::FromAssignments({0, 1, 2, 3}, 4);
  auto lb = Bucketization::FromAssignments({0, 1}, 2);
  ASSERT_TRUE(cb.ok() && lb.ok());
  std::vector<Bucketization> leaves = {*lb, *lb};
  auto est = q.EstimateResultSize(*cb, leaves);
  auto exact = q.ExactResultSize();
  ASSERT_TRUE(est.ok() && exact.ok());
  EXPECT_DOUBLE_EQ(*est, *exact);
}

TEST(StarQueryTest, TrivialHistogramsUseUniformAssumption) {
  StarQuery q = MustStar({2, 2}, {4, 0, 0, 4}, {{2, 2}, {3, 3}});
  auto cb = Bucketization::SingleBucket(4);
  auto lb = Bucketization::SingleBucket(2);
  ASSERT_TRUE(cb.ok() && lb.ok());
  std::vector<Bucketization> leaves = {*lb, *lb};
  auto est = q.EstimateResultSize(*cb, leaves);
  ASSERT_TRUE(est.ok());
  // Uniform center avg 2, leaves exact (already uniform): 4 cells * 2 * 2 *
  // 3 = 48, same as exact here.
  EXPECT_DOUBLE_EQ(*est, 48.0);
}

TEST(StarQueryTest, SerialCenterHistogramBeatsValueOrderBucketing) {
  // Skewed center: v-optimal serial bucketization of the flattened cells
  // estimates the star size better than a value-order (equi-width-style)
  // split, averaged over leaf shuffles.
  Rng rng(11);
  std::vector<Frequency> cells = {100, 90, 2, 1, 3, 1, 2, 1, 1};
  auto center = FrequencyTensor::Make({3, 3}, cells);
  ASSERT_TRUE(center.ok());
  auto set = FrequencySet::Make(cells);
  ASSERT_TRUE(set.ok());
  auto serial = BuildVOptSerialDP(*set, 3);
  auto width = BuildEquiWidthHistogram(*set, 3);
  ASSERT_TRUE(serial.ok() && width.ok());

  double err_serial = 0, err_width = 0;
  for (int rep = 0; rep < 20; ++rep) {
    std::vector<std::vector<Frequency>> leaves;
    for (size_t d = 0; d < 2; ++d) {
      std::vector<Frequency> leaf(3);
      for (auto& f : leaf) f = static_cast<double>(rng.NextBounded(10));
      leaves.push_back(std::move(leaf));
    }
    StarQuery q = StarQuery::Make(*center, leaves).ValueOrDie();
    std::vector<Bucketization> leaf_buckets = {
        *Bucketization::FromAssignments({0, 1, 2}, 3),
        *Bucketization::FromAssignments({0, 1, 2}, 3)};
    auto exact = q.ExactResultSize();
    ASSERT_TRUE(exact.ok());
    auto es = q.EstimateResultSize(serial->bucketization(), leaf_buckets);
    auto ew = q.EstimateResultSize(width->bucketization(), leaf_buckets);
    ASSERT_TRUE(es.ok() && ew.ok());
    err_serial += std::abs(*exact - *es);
    err_width += std::abs(*exact - *ew);
  }
  EXPECT_LT(err_serial, err_width);
}

}  // namespace
}  // namespace hops
