#include "query/joint_matrix.h"

#include <gtest/gtest.h>

#include "stats/arrangement.h"
#include "stats/zipf.h"
#include "util/random.h"

namespace hops {
namespace {

TEST(JointMatrixTest, TwoWayJoinRows) {
  auto r0 = FrequencyMatrix::HorizontalVector({2, 0, 3});
  auto r1 = FrequencyMatrix::VerticalVector({5, 7, 0});
  auto q = ChainQuery::Make({*r0, *r1});
  ASSERT_TRUE(q.ok());
  auto table = JointFrequencyTable::Build(*q);
  ASSERT_TRUE(table.ok());
  // Only d=0 survives: (2, 5). d=1 has f0=0; d=2 has f1=0.
  ASSERT_EQ(table->rows().size(), 1u);
  EXPECT_EQ(table->rows()[0].domain_values, std::vector<size_t>{0});
  EXPECT_EQ(table->rows()[0].frequencies, (std::vector<double>{2, 5}));
  EXPECT_DOUBLE_EQ(table->ResultSize(), 10.0);
}

TEST(JointMatrixTest, RowProduct) {
  JointFrequencyRow row;
  row.frequencies = {2, 3, 4};
  EXPECT_DOUBLE_EQ(row.Product(), 24.0);
}

TEST(JointMatrixTest, MatchesChainProductOnRandomChains) {
  Rng rng(314);
  for (int trial = 0; trial < 10; ++trial) {
    size_t m = 3 + static_cast<size_t>(rng.NextBounded(3));
    size_t joins = 1 + static_cast<size_t>(rng.NextBounded(3));
    std::vector<FrequencyMatrix> ms;
    for (size_t j = 0; j <= joins; ++j) {
      size_t rows = (j == 0) ? 1 : m;
      size_t cols = (j == joins) ? 1 : m;
      std::vector<Frequency> cells(rows * cols);
      for (auto& c : cells) {
        c = static_cast<double>(rng.NextBounded(5));  // zeros included
      }
      ms.push_back(*FrequencyMatrix::Make(rows, cols, std::move(cells)));
    }
    auto q = ChainQuery::Make(ms);
    ASSERT_TRUE(q.ok());
    auto table = JointFrequencyTable::Build(*q);
    ASSERT_TRUE(table.ok());
    auto s = q->ExactResultSize();
    ASSERT_TRUE(s.ok());
    EXPECT_NEAR(table->ResultSize(), *s, 1e-9 * (1 + *s))
        << "trial " << trial;
  }
}

TEST(JointMatrixTest, SingleRelationScalar) {
  auto m = FrequencyMatrix::Make(1, 1, {6});
  auto q = ChainQuery::Make({*m});
  ASSERT_TRUE(q.ok());
  auto table = JointFrequencyTable::Build(*q);
  ASSERT_TRUE(table.ok());
  EXPECT_DOUBLE_EQ(table->ResultSize(), 6.0);
  auto zero = FrequencyMatrix::Make(1, 1, {0});
  auto qz = ChainQuery::Make({*zero});
  ASSERT_TRUE(qz.ok());
  auto tz = JointFrequencyTable::Build(*qz);
  ASSERT_TRUE(tz.ok());
  EXPECT_TRUE(tz->rows().empty());
}

TEST(JointMatrixTest, MaxRowsLimitEnforced) {
  // A dense 5-way chain over a 4-value domain: 4^2 = 16 rows per level...
  // build a chain guaranteed to exceed a tiny limit.
  size_t m = 4;
  std::vector<FrequencyMatrix> ms;
  ms.push_back(*FrequencyMatrix::HorizontalVector({1, 1, 1, 1}));
  ms.push_back(
      *FrequencyMatrix::Make(m, m, std::vector<Frequency>(m * m, 1.0)));
  ms.push_back(*FrequencyMatrix::VerticalVector({1, 1, 1, 1}));
  auto q = ChainQuery::Make(ms);
  ASSERT_TRUE(q.ok());
  auto table = JointFrequencyTable::Build(*q, /*max_rows=*/4);
  EXPECT_TRUE(table.status().IsResourceExhausted());
}

TEST(JointMatrixTest, ZeroPruningSkipsDeadSubtrees) {
  // R1's first row is all zero, so no row may carry d1 = 0.
  auto r0 = FrequencyMatrix::HorizontalVector({9, 1});
  auto r1 = FrequencyMatrix::Make(2, 2, {0, 0, 2, 3});
  auto r2 = FrequencyMatrix::VerticalVector({1, 1});
  auto q = ChainQuery::Make({*r0, *r1, *r2});
  ASSERT_TRUE(q.ok());
  auto table = JointFrequencyTable::Build(*q);
  ASSERT_TRUE(table.ok());
  for (const auto& row : table->rows()) {
    EXPECT_NE(row.domain_values[0], 0u);
  }
  EXPECT_DOUBLE_EQ(table->ResultSize(), 1 * 2 * 1 + 1 * 3 * 1);
}

}  // namespace
}  // namespace hops
