// RefreshDaemon: lifecycle, tick driving, drain semantics — and the
// subsystem's concurrency soak: writer threads recording deltas, reader
// threads serving EstimateBatch from published snapshots, and the daemon
// applying/rebuilding/republishing, all at once. Run under
// -DHOPS_SANITIZE=thread in CI (scripts/check.sh --tsan); the assertions
// below additionally prove readers never observe a torn snapshot.
//
// This suite is its own binary so the sanitizer job can run exactly the
// concurrency-sensitive tests (see tests/CMakeLists.txt).

#include "refresh/refresh_daemon.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "estimator/serving.h"
#include "refresh/refresh_manager.h"

namespace hops {
namespace {

using namespace std::chrono_literals;

struct Fixture {
  Catalog catalog;
  SnapshotStore store;
};

Result<RefreshColumnId> RegisterSkewed(RefreshManager* manager,
                                       const std::string& table,
                                       const std::string& column) {
  std::vector<int64_t> values;
  std::vector<double> freqs;
  for (int64_t v = 1; v <= 20; ++v) {
    values.push_back(v);
    freqs.push_back(v == 1 ? 400.0 : v == 2 ? 200.0 : 10.0);
  }
  return manager->RegisterColumn(table, column, values, freqs);
}

// Polls \p done every millisecond for up to \p budget. Returns whether the
// predicate turned true (tests assert on it — no raw sleeps).
template <typename Predicate>
bool WaitFor(Predicate done, std::chrono::milliseconds budget = 10'000ms) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (!done()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(1ms);
  }
  return true;
}

TEST(RefreshDaemonTest, StartStopLifecycle) {
  Fixture f;
  RefreshManager manager(&f.catalog, &f.store);
  RefreshDaemon daemon(&manager);
  EXPECT_FALSE(daemon.running());
  ASSERT_TRUE(daemon.Start().ok());
  EXPECT_TRUE(daemon.running());
  ASSERT_TRUE(daemon.Stop().ok());
  EXPECT_FALSE(daemon.running());
  // Stop is idempotent; restart works.
  ASSERT_TRUE(daemon.Stop().ok());
  ASSERT_TRUE(daemon.Start().ok());
  EXPECT_TRUE(daemon.running());
  ASSERT_TRUE(daemon.Stop().ok());
}

TEST(RefreshDaemonTest, DoubleStartIsAlreadyExists) {
  Fixture f;
  RefreshManager manager(&f.catalog, &f.store);
  RefreshDaemon daemon(&manager);
  ASSERT_TRUE(daemon.Start().ok());
  EXPECT_TRUE(daemon.Start().IsAlreadyExists());
  ASSERT_TRUE(daemon.Stop().ok());
}

TEST(RefreshDaemonTest, NullManagerIsRejected) {
  RefreshDaemon daemon(nullptr);
  EXPECT_TRUE(daemon.Start().IsInvalidArgument());
  EXPECT_FALSE(daemon.running());
}

TEST(RefreshDaemonTest, PeriodicTicksRunWithoutWork) {
  Fixture f;
  RefreshManager manager(&f.catalog, &f.store);
  RefreshDaemonOptions options;
  options.tick_interval_micros = 200;
  RefreshDaemon daemon(&manager, options);
  ASSERT_TRUE(daemon.Start().ok());
  EXPECT_TRUE(WaitFor([&] { return daemon.ticks() >= 3; }));
  ASSERT_TRUE(daemon.Stop().ok());
  EXPECT_TRUE(daemon.last_tick_status().ok());
  EXPECT_EQ(manager.stats().ticks, daemon.ticks());
}

TEST(RefreshDaemonTest, RequestTickAppliesQueuedDeltas) {
  Fixture f;
  RefreshManager manager(&f.catalog, &f.store);
  auto id = RegisterSkewed(&manager, "orders", "customer_id");
  ASSERT_TRUE(id.ok());

  RefreshDaemonOptions options;
  options.tick_interval_micros = 60'000'000;  // periodic path effectively off
  RefreshDaemon daemon(&manager, options);
  ASSERT_TRUE(daemon.Start().ok());

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(manager.RecordInsert(*id, 1).ok());
  }
  daemon.RequestTick();
  EXPECT_TRUE(WaitFor([&] { return manager.stats().deltas_applied >= 10; }));
  ASSERT_TRUE(daemon.Stop().ok());

  auto stats = f.catalog.GetColumnStatistics("orders", "customer_id");
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats->histogram.LookupFrequency(1), 410.0);
}

TEST(RefreshDaemonTest, DrainAndStopAppliesEverythingEnqueued) {
  Fixture f;
  RefreshManager manager(&f.catalog, &f.store);
  auto id = RegisterSkewed(&manager, "orders", "customer_id");
  ASSERT_TRUE(id.ok());

  RefreshDaemonOptions options;
  options.tick_interval_micros = 60'000'000;
  RefreshDaemon daemon(&manager, options);
  ASSERT_TRUE(daemon.Start().ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(manager.RecordInsert(*id, 2).ok());
  }
  ASSERT_TRUE(daemon.DrainAndStop().ok());
  EXPECT_FALSE(daemon.running());
  EXPECT_EQ(manager.update_log().depth(), 0u);
  EXPECT_EQ(manager.stats().deltas_applied, 200u);
  auto stats = f.catalog.GetColumnStatistics("orders", "customer_id");
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats->histogram.LookupFrequency(2), 400.0);
}

// The headline concurrency soak (ISSUE acceptance): writers push deltas
// through the bounded log, readers serve batched estimates from whatever
// snapshot is published, the daemon ticks fast enough to apply, rebuild,
// and republish continuously. Invariants checked from the reader side:
//   1. source_version is monotone (RCU publication never goes backwards);
//   2. every snapshot is internally consistent — each column's scalar
//      num_tuples matches its compiled histogram's total mass (a torn
//      publish or a mid-mutation compile would break this);
//   3. estimates are finite and nonnegative.
TEST(RefreshDaemonTest, SoakWritersReadersDaemon) {
  Fixture f;
  RefreshOptions options;
  options.queue_capacity = 1024;  // exercise backpressure
  options.maintenance.rebuild_drift_fraction = 0.02;  // rebuild often
  RefreshManager manager(&f.catalog, &f.store, options);
  auto left = RegisterSkewed(&manager, "fact", "key");
  auto right = RegisterSkewed(&manager, "dim", "key");
  ASSERT_TRUE(left.ok());
  ASSERT_TRUE(right.ok());

  RefreshDaemonOptions daemon_options;
  daemon_options.tick_interval_micros = 200;
  RefreshDaemon daemon(&manager, daemon_options);
  ASSERT_TRUE(daemon.Start().ok());

  constexpr int kWriters = 3;
  constexpr int kOpsPerWriter = 2000;
  std::atomic<bool> writers_done{false};
  std::atomic<int> reader_failures{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      const RefreshColumnId column = (w % 2 == 0) ? *left : *right;
      const int64_t owned = 100 + w;  // each writer owns a fresh value
      int net = 0;
      for (int i = 0; i < kOpsPerWriter; ++i) {
        // Two inserts then a delete: net growth, never below zero for the
        // owned value, so maintained mass tracks ideal mass exactly.
        if (i % 3 == 2 && net > 0) {
          ASSERT_TRUE(manager.RecordDelete(column, owned).ok());
          --net;
        } else {
          ASSERT_TRUE(manager.RecordInsert(column, owned).ok());
          ++net;
        }
      }
    });
  }

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      uint64_t last_version = 0;
      while (!writers_done.load(std::memory_order_acquire)) {
        std::shared_ptr<const CatalogSnapshot> snapshot = f.store.Current();
        // (1) Monotone publication.
        if (snapshot->source_version() < last_version) {
          ++reader_failures;
          return;
        }
        last_version = snapshot->source_version();
        // (2) Internal consistency of every column.
        for (ColumnId id = 0; id < snapshot->num_columns(); ++id) {
          const CompiledColumnStats& stats = snapshot->stats(id);
          if (stats.histogram == nullptr) {
            ++reader_failures;
            return;
          }
          const double mass = stats.histogram->EstimatedTotal();
          if (std::fabs(mass - stats.num_tuples) >
              1e-6 * (1.0 + stats.num_tuples)) {
            ++reader_failures;
            return;
          }
        }
        // (3) Batched estimates over the snapshot stay well-formed.
        auto fact = snapshot->Resolve("fact", "key");
        auto dim = snapshot->Resolve("dim", "key");
        if (!fact.ok() || !dim.ok()) {
          ++reader_failures;
          return;
        }
        std::vector<EstimateSpec> specs;
        specs.push_back(EstimateSpec::Equality(*fact, Value(int64_t{1})));
        specs.push_back(EstimateSpec::Equality(*fact, Value(int64_t{100})));
        specs.push_back(EstimateSpec::Equality(*dim, Value(int64_t{101})));
        specs.push_back(EstimateSpec::Join(*fact, *dim));
        std::vector<Result<double>> estimates =
            EstimateBatch(*snapshot, specs);
        for (const Result<double>& estimate : estimates) {
          if (!estimate.ok() || !std::isfinite(*estimate) || *estimate < 0) {
            ++reader_failures;
            return;
          }
        }
      }
    });
  }

  for (auto& thread : writers) thread.join();
  writers_done.store(true, std::memory_order_release);
  for (auto& thread : readers) thread.join();

  ASSERT_TRUE(daemon.DrainAndStop().ok());
  EXPECT_EQ(reader_failures.load(), 0);
  EXPECT_EQ(manager.update_log().depth(), 0u);

  RefreshStats stats = manager.stats();
  EXPECT_EQ(stats.deltas_applied,
            static_cast<uint64_t>(kWriters * kOpsPerWriter));
  EXPECT_EQ(stats.unknown_column_records, 0u);
  EXPECT_GE(stats.republish_count, 1u);
  EXPECT_GT(stats.ticks, 0u);

  // Final catalog mass equals initial mass plus the writers' net growth —
  // no delta was lost or double-applied anywhere in the pipeline.
  const double initial_mass = 400.0 + 200.0 + 18 * 10.0;
  double expected_left = initial_mass;
  double expected_right = initial_mass;
  for (int w = 0; w < kWriters; ++w) {
    int net = 0;
    for (int i = 0; i < kOpsPerWriter; ++i) {
      if (i % 3 == 2 && net > 0) {
        --net;
      } else {
        ++net;
      }
    }
    (w % 2 == 0 ? expected_left : expected_right) += net;
  }
  auto fact_stats = f.catalog.GetColumnStatistics("fact", "key");
  auto dim_stats = f.catalog.GetColumnStatistics("dim", "key");
  ASSERT_TRUE(fact_stats.ok());
  ASSERT_TRUE(dim_stats.ok());
  EXPECT_NEAR(fact_stats->num_tuples, expected_left, 1e-6 * expected_left);
  EXPECT_NEAR(dim_stats->num_tuples, expected_right, 1e-6 * expected_right);

  // The drift policy must have fired at least once under this much churn.
  EXPECT_GE(stats.rebuilds_total, 1u);
}

}  // namespace
}  // namespace hops
