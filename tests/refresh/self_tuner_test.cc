#include "refresh/self_tuner.h"

#include <gtest/gtest.h>

#include <cmath>

#include "histogram/serialization.h"
#include "histogram/tuning.h"

namespace hops {
namespace {

SelfTuneOptions EnabledOptions() {
  SelfTuneOptions options;
  options.enabled = true;
  return options;
}

PredicateOutcome PointOutcome(int64_t value, double estimated, double actual) {
  PredicateOutcome outcome;
  outcome.kind = EstimateKind::kEquality;
  outcome.has_range = true;
  outcome.lo = value;
  outcome.hi = value;
  outcome.estimated = estimated;
  outcome.actual = actual;
  return outcome;
}

PredicateOutcome RangeOutcome(int64_t lo, int64_t hi, double estimated,
                              double actual) {
  PredicateOutcome outcome;
  outcome.kind = EstimateKind::kRange;
  outcome.has_range = true;
  outcome.lo = lo;
  outcome.hi = hi;
  outcome.estimated = estimated;
  outcome.actual = actual;
  return outcome;
}

TEST(SelfTunerTest, DisabledObservesNothing) {
  SelfTuner tuner;  // default options: disabled
  SelfTuneColumnState state;
  EXPECT_FALSE(tuner.Observe(&state, PointOutcome(5, 10.0, 100.0)));
  EXPECT_TRUE(state.pending.empty());
  EXPECT_EQ(state.observations, 0u);
}

TEST(SelfTunerTest, ObserveFiltersNoiseAndIntervalFreeOutcomes) {
  SelfTuner tuner(EnabledOptions());
  SelfTuneColumnState state;
  // Accurate estimates (q-error < min_qerror) are noise.
  EXPECT_FALSE(tuner.Observe(&state, PointOutcome(5, 100.0, 101.0)));
  // Joins and chains carry no interval.
  PredicateOutcome join;
  join.kind = EstimateKind::kJoin;
  join.has_range = false;
  join.estimated = 10.0;
  join.actual = 1000.0;
  EXPECT_FALSE(tuner.Observe(&state, join));
  // Non-finite magnitudes never queue (defense in depth behind the serving
  // boundary validation).
  EXPECT_FALSE(
      tuner.Observe(&state, PointOutcome(5, std::nan(""), 100.0)));
  EXPECT_FALSE(tuner.Observe(&state, PointOutcome(5, 10.0, -3.0)));
  EXPECT_EQ(state.observations, 0u);
  // A genuinely wrong estimate queues.
  EXPECT_TRUE(tuner.Observe(&state, PointOutcome(5, 10.0, 100.0)));
  EXPECT_EQ(state.observations, 1u);
  EXPECT_EQ(state.pending.size(), 1u);
}

TEST(SelfTunerTest, ObserveBoundsThePendingBuffer) {
  SelfTuneOptions options = EnabledOptions();
  options.max_pending = 2;
  SelfTuner tuner(options);
  SelfTuneColumnState state;
  EXPECT_TRUE(tuner.Observe(&state, PointOutcome(1, 1.0, 100.0)));
  EXPECT_TRUE(tuner.Observe(&state, PointOutcome(2, 1.0, 100.0)));
  EXPECT_FALSE(tuner.Observe(&state, PointOutcome(3, 1.0, 100.0)));
  EXPECT_EQ(state.pending.size(), 2u);
  EXPECT_EQ(state.dropped, 1u);
}

TEST(SelfTunerTest, PointFeedbackNudgesExplicitEntryDamped) {
  SelfTuner tuner(EnabledOptions());  // damping 0.4
  SelfTuneColumnState state;
  auto h = CatalogHistogram::Make({{10, 100.0}}, 2.0, 50);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(tuner.Observe(&state, PointOutcome(10, 100.0, 200.0)));
  auto report = tuner.TuneColumn(&state, &*h, 0, 999);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->adjustments, 1u);
  // 100 + 0.4 * (200 - 100) = 140 — damped, not snapped to the actual.
  EXPECT_DOUBLE_EQ(h->LookupFrequency(10), 140.0);
  EXPECT_TRUE(state.pending.empty());
  EXPECT_DOUBLE_EQ(state.recency, 1.0);
}

TEST(SelfTunerTest, HotDefaultValuePromotesBoundedPerTick) {
  SelfTuneOptions options = EnabledOptions();
  options.max_promotions_per_tick = 2;
  SelfTuner tuner(options);
  SelfTuneColumnState state;
  auto h = CatalogHistogram::Make({{0, 500.0}}, 2.0, 100);
  ASSERT_TRUE(h.ok());
  // Three hot default values observed; the per-tick cap admits two.
  ASSERT_TRUE(tuner.Observe(&state, PointOutcome(11, 2.0, 50.0)));
  ASSERT_TRUE(tuner.Observe(&state, PointOutcome(22, 2.0, 60.0)));
  ASSERT_TRUE(tuner.Observe(&state, PointOutcome(33, 2.0, 70.0)));
  auto report = tuner.TuneColumn(&state, &*h, 0, 999);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->promotions, 2u);
  bool is_explicit = false;
  h->LookupFrequency(11, &is_explicit);
  EXPECT_TRUE(is_explicit);
  h->LookupFrequency(22, &is_explicit);
  EXPECT_TRUE(is_explicit);
  h->LookupFrequency(33, &is_explicit);
  EXPECT_FALSE(is_explicit);  // third hit the cap; its default got nudged
  EXPECT_EQ(state.promotions, 2u);
}

TEST(SelfTunerTest, LukewarmDefaultValueNudgesTheAverage) {
  SelfTuner tuner(EnabledOptions());  // promotion_ratio 4.0
  SelfTuneColumnState state;
  auto h = CatalogHistogram::Make({{0, 500.0}}, 10.0, 100);
  ASSERT_TRUE(h.ok());
  // actual 20 < 4 * default(10): below the promotion bar, so the error is
  // spread over the default bucket instead.
  ASSERT_TRUE(tuner.Observe(&state, PointOutcome(7, 10.0, 20.0)));
  auto report = tuner.TuneColumn(&state, &*h, 0, 999);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->promotions, 0u);
  EXPECT_EQ(report->adjustments, 1u);
  // 10 + 0.4 * (20 - 10) / 100 = 10.04
  EXPECT_DOUBLE_EQ(h->default_frequency(), 10.04);
}

TEST(SelfTunerTest, RangeFeedbackInstallsAndRefinesTree) {
  SelfTuner tuner(EnabledOptions());
  SelfTuneColumnState state;
  auto h = CatalogHistogram::Make({{500, 50.0}}, 2.0, 400);
  ASSERT_TRUE(h.ok());
  ASSERT_EQ(h->refinement(), nullptr);
  // The served estimate undershot 5x over [0, 99].
  ASSERT_TRUE(tuner.Observe(&state, RangeOutcome(0, 99, 40.0, 200.0)));
  auto report = tuner.TuneColumn(&state, &*h, 0, 999);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->changed());
  ASSERT_NE(h->refinement(), nullptr);
  EXPECT_FALSE(h->refinement()->IsUniform());
  // Density moved toward the under-estimated range.
  EXPECT_GT(h->refinement()->FractionInRange(0, 99), 0.1);
}

TEST(SelfTunerTest, RangeScaleFactorIsClamped) {
  SelfTuneOptions options = EnabledOptions();
  options.max_scale = 2.0;
  options.damping = 1.0;
  SelfTuner tuner(options);
  SelfTuneColumnState state;
  auto h = CatalogHistogram::Make({{50, 10.0}}, 2.0, 100);
  ASSERT_TRUE(h.ok());
  // A 1000x error still scales the explicit entry by at most max_scale.
  ASSERT_TRUE(tuner.Observe(&state, RangeOutcome(40, 60, 10.0, 10000.0)));
  auto report = tuner.TuneColumn(&state, &*h, 0, 999);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(h->LookupFrequency(50), 20.0);
}

TEST(SelfTunerTest, RecencyDecaysToExactZero) {
  SelfTuner tuner(EnabledOptions());  // recency_decay 0.9
  SelfTuneColumnState state;
  state.recency = 1.0;
  for (int i = 0; i < 100; ++i) tuner.DecayRecency(&state);
  EXPECT_EQ(state.recency, 0.0);  // snaps exactly, not just approaches
}

TEST(SelfTunerTest, OnRebuildDropsPendingKeepsCounters) {
  SelfTuner tuner(EnabledOptions());
  SelfTuneColumnState state;
  ASSERT_TRUE(tuner.Observe(&state, PointOutcome(1, 1.0, 100.0)));
  state.adjustments = 7;
  state.recency = 0.5;
  state.OnRebuild();
  EXPECT_TRUE(state.pending.empty());
  EXPECT_DOUBLE_EQ(state.recency, 0.0);
  EXPECT_EQ(state.adjustments, 7u);
  EXPECT_EQ(state.observations, 1u);
}

}  // namespace
}  // namespace hops
