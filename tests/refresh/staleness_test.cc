// StalenessAdvisor: ideal-frequency moments, the Proposition 3.1 self-join
// staleness error, and the scoring policy.

#include "refresh/staleness.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "histogram/serialization.h"

namespace hops {
namespace {

CatalogHistogram MakeHistogram(
    std::vector<std::pair<int64_t, double>> explicit_entries,
    double default_frequency, uint64_t num_default) {
  return *CatalogHistogram::Make(std::move(explicit_entries),
                                 default_frequency, num_default);
}

TEST(IdealMomentsTest, ClassifiesExplicitVersusDefault) {
  // Values 10 and 20 are explicit (singleton buckets); 1, 2, 3 default.
  CatalogHistogram histogram =
      MakeHistogram({{10, 50.0}, {20, 40.0}}, 5.0, 3);
  std::vector<std::pair<int64_t, double>> ideal = {
      {1, 4.0}, {2, 5.0}, {3, 6.0}, {10, 50.0}, {20, 40.0}};
  IdealColumnMoments moments = ComputeIdealMoments(histogram, ideal);
  EXPECT_DOUBLE_EQ(moments.default_count, 3.0);
  EXPECT_DOUBLE_EQ(moments.default_sum, 15.0);
  EXPECT_DOUBLE_EQ(moments.default_sum_sq, 16.0 + 25.0 + 36.0);
  EXPECT_DOUBLE_EQ(moments.total_sum_sq,
                   16.0 + 25.0 + 36.0 + 2500.0 + 1600.0);
}

TEST(IdealMomentsTest, EmptyIdealSetIsAllZero) {
  CatalogHistogram histogram = MakeHistogram({{1, 2.0}}, 0.0, 0);
  IdealColumnMoments moments = ComputeIdealMoments(histogram, {});
  EXPECT_DOUBLE_EQ(moments.default_count, 0.0);
  EXPECT_DOUBLE_EQ(moments.total_sum_sq, 0.0);
  EXPECT_DOUBLE_EQ(SelfJoinStalenessError(moments), 0.0);
}

TEST(SelfJoinStalenessErrorTest, MatchesPropositionThreeOne) {
  // Default bucket holds frequencies {4, 5, 6}: P = 3, mean = 5,
  // V = ((4-5)^2 + 0 + (6-5)^2) / 3 = 2/3, so P*V = 2.
  IdealColumnMoments moments;
  moments.default_count = 3;
  moments.default_sum = 15;
  moments.default_sum_sq = 77;
  moments.total_sum_sq = 77;
  EXPECT_DOUBLE_EQ(SelfJoinStalenessError(moments), 77.0 - 225.0 / 3.0);
}

TEST(SelfJoinStalenessErrorTest, UniformDefaultBucketIsExact) {
  // Equal frequencies in the default bucket: V = 0 → zero error. This is
  // the v-optimal invariant right after a rebuild.
  IdealColumnMoments moments;
  moments.default_count = 4;
  moments.default_sum = 20;      // four values of frequency 5
  moments.default_sum_sq = 100;  // 4 * 25
  moments.total_sum_sq = 100;
  EXPECT_DOUBLE_EQ(SelfJoinStalenessError(moments), 0.0);
}

TEST(SelfJoinStalenessErrorTest, ClampsFloatingPointCancellation) {
  IdealColumnMoments moments;
  moments.default_count = 3;
  moments.default_sum = 15;
  moments.default_sum_sq = 75.0 - 1e-9;  // just below sum^2 / count
  EXPECT_DOUBLE_EQ(SelfJoinStalenessError(moments), 0.0);
}

TEST(StalenessAdvisorTest, CleanColumnScoresZero) {
  StalenessAdvisor advisor;
  StalenessScore score = advisor.Score(StalenessSignals{});
  EXPECT_DOUBLE_EQ(score.total, 0.0);
  EXPECT_FALSE(score.rebuild_recommended);
  EXPECT_EQ(score.reason, RebuildReason::kNone);
}

TEST(StalenessAdvisorTest, TotalIsWeightedSumOfNormalizedSignals) {
  StalenessOptions options;
  options.weight_drift = 2.0;
  options.weight_self_join = 3.0;
  options.weight_feedback = 5.0;
  StalenessAdvisor advisor(options);
  StalenessSignals signals;
  signals.drift_fraction = 0.01;
  signals.self_join_relative = 0.02;
  signals.feedback_error = 0.03;
  StalenessScore score = advisor.Score(signals);
  EXPECT_NEAR(score.total, 2.0 * 0.01 + 3.0 * 0.02 + 5.0 * 0.03, 1e-12);
}

TEST(StalenessAdvisorTest, ThresholdGatesTheRecommendation) {
  StalenessOptions options;
  options.rebuild_score_threshold = 0.10;
  StalenessAdvisor advisor(options);

  StalenessSignals below;
  below.drift_fraction = 0.09;
  EXPECT_FALSE(advisor.Score(below).rebuild_recommended);

  StalenessSignals at;
  at.drift_fraction = 0.10;
  StalenessScore score = advisor.Score(at);
  EXPECT_TRUE(score.rebuild_recommended);
  EXPECT_EQ(score.reason, RebuildReason::kDrift);
}

TEST(StalenessAdvisorTest, MaintainerVerdictForcesRecommendation) {
  StalenessAdvisor advisor;
  StalenessSignals signals;
  signals.maintainer_wants_rebuild = true;  // legacy drift policy fires
  StalenessScore score = advisor.Score(signals);
  EXPECT_TRUE(score.rebuild_recommended);
  EXPECT_EQ(score.reason, RebuildReason::kDrift);
}

TEST(StalenessAdvisorTest, ReasonTracksTheDominantWeightedSignal) {
  StalenessAdvisor advisor;  // unit weights, threshold 0.10

  StalenessSignals self_join_heavy;
  self_join_heavy.drift_fraction = 0.05;
  self_join_heavy.self_join_relative = 0.20;
  EXPECT_EQ(advisor.Score(self_join_heavy).reason, RebuildReason::kSelfJoin);

  StalenessSignals feedback_heavy;
  feedback_heavy.drift_fraction = 0.05;
  feedback_heavy.feedback_error = 0.30;
  EXPECT_EQ(advisor.Score(feedback_heavy).reason, RebuildReason::kFeedback);

  StalenessSignals drift_heavy;
  drift_heavy.drift_fraction = 0.40;
  drift_heavy.self_join_relative = 0.01;
  EXPECT_EQ(advisor.Score(drift_heavy).reason, RebuildReason::kDrift);
}

TEST(StalenessAdvisorTest, WeightsCanDisableASignal) {
  StalenessOptions options;
  options.weight_feedback = 0.0;
  StalenessAdvisor advisor(options);
  StalenessSignals signals;
  signals.feedback_error = 100.0;  // huge, but weighted out
  StalenessScore score = advisor.Score(signals);
  EXPECT_DOUBLE_EQ(score.total, 0.0);
  EXPECT_FALSE(score.rebuild_recommended);
}

TEST(StalenessAdvisorTest, TuningRecencyRelievesTheScore) {
  StalenessAdvisor advisor;  // tuning_relief 0.5
  StalenessSignals signals;
  signals.drift_fraction = 0.20;

  const double untouched = advisor.Score(signals).total;
  EXPECT_DOUBLE_EQ(untouched, 0.20);

  // A column tuned this instant (recency 1) scores at half priority; a
  // half-decayed one at three quarters. Zero recency is exactly untouched.
  signals.tuning_recency = 1.0;
  EXPECT_DOUBLE_EQ(advisor.Score(signals).total, 0.10);
  signals.tuning_recency = 0.5;
  EXPECT_DOUBLE_EQ(advisor.Score(signals).total, 0.15);
  signals.tuning_recency = 0.0;
  EXPECT_DOUBLE_EQ(advisor.Score(signals).total, untouched);
}

TEST(StalenessAdvisorTest, TuningReliefIsBoundedAndOptional) {
  // Relief never drives a score negative, and weighting it to zero turns
  // the mechanism off entirely.
  StalenessOptions options;
  options.tuning_relief = 5.0;  // aggressive: clamped at full relief
  StalenessAdvisor aggressive(options);
  StalenessSignals signals;
  signals.drift_fraction = 0.20;
  signals.tuning_recency = 1.0;
  EXPECT_DOUBLE_EQ(aggressive.Score(signals).total, 0.0);

  options.tuning_relief = 0.0;
  StalenessAdvisor disabled(options);
  EXPECT_DOUBLE_EQ(disabled.Score(signals).total, 0.20);
}

// ------------------------------------- joint rebuild budgeting (DESIGN §10)

TEST(AllocateRebuildBudgetTest, NoPressureGrantsEveryDemand) {
  std::vector<double> heat = {0.1, 5.0, 0.0};
  std::vector<size_t> demand = {2, 3, 1};
  std::vector<size_t> grants = AllocateRebuildBudget(heat, demand, 10);
  EXPECT_EQ(grants, (std::vector<size_t>{2, 3, 1}));
}

TEST(AllocateRebuildBudgetTest, PressureSplitsProportionallyToHeat) {
  // Heat 3:1 over a budget of 4 -> 3 and 1.
  std::vector<double> heat = {3.0, 1.0};
  std::vector<size_t> demand = {10, 10};
  std::vector<size_t> grants = AllocateRebuildBudget(heat, demand, 4);
  EXPECT_EQ(grants, (std::vector<size_t>{3, 1}));
}

TEST(AllocateRebuildBudgetTest, LargestRemainderBreaksFractions) {
  // Shares of budget 1 at heat {0.9, 0.2}: floors are 0, the leftover slot
  // goes to the larger fractional remainder (shard 0).
  std::vector<double> heat = {0.9, 0.2};
  std::vector<size_t> demand = {1, 1};
  std::vector<size_t> grants = AllocateRebuildBudget(heat, demand, 1);
  EXPECT_EQ(grants, (std::vector<size_t>{1, 0}));
}

TEST(AllocateRebuildBudgetTest, DemandCapsEveryGrant) {
  // Shard 0 is very hot but only wants one slot: its surplus spills to the
  // cooler shard instead of evaporating.
  std::vector<double> heat = {100.0, 1.0};
  std::vector<size_t> demand = {1, 5};
  std::vector<size_t> grants = AllocateRebuildBudget(heat, demand, 4);
  EXPECT_EQ(grants[0], 1u);
  EXPECT_EQ(grants[1], 3u);
}

TEST(AllocateRebuildBudgetTest, AllZeroHeatFallsBackToDemandProportional) {
  // No heat signal at all: split by demand so no shard is starved FIFO-style.
  std::vector<double> heat = {0.0, 0.0};
  std::vector<size_t> demand = {6, 2};
  std::vector<size_t> grants = AllocateRebuildBudget(heat, demand, 4);
  EXPECT_EQ(grants, (std::vector<size_t>{3, 1}));
}

TEST(AllocateRebuildBudgetTest, TiesGoToTheLowerIndexDeterministically) {
  std::vector<double> heat = {1.0, 1.0, 1.0};
  std::vector<size_t> demand = {2, 2, 2};
  // Budget 4 over equal heat: floors 1 each, one leftover -> shard 0.
  std::vector<size_t> grants = AllocateRebuildBudget(heat, demand, 4);
  EXPECT_EQ(grants, (std::vector<size_t>{2, 1, 1}));
  // Determinism: same inputs, same answer.
  EXPECT_EQ(AllocateRebuildBudget(heat, demand, 4), grants);
}

TEST(AllocateRebuildBudgetTest, ZeroBudgetAndZeroDemandEdgeCases) {
  std::vector<double> heat = {1.0, 2.0};
  std::vector<size_t> zero_demand = {0, 0};
  EXPECT_EQ(AllocateRebuildBudget(heat, zero_demand, 8),
            (std::vector<size_t>{0, 0}));
  std::vector<size_t> demand = {3, 3};
  EXPECT_EQ(AllocateRebuildBudget(heat, demand, 0),
            (std::vector<size_t>{0, 0}));
  EXPECT_TRUE(AllocateRebuildBudget({}, {}, 5).empty());
}

TEST(AllocateRebuildBudgetTest, SingleShardDegeneratesToTruncation) {
  // The shards = 1 identity: one shard always receives min(demand, budget),
  // exactly RefreshManager's own per-tick cap.
  std::vector<double> heat = {0.0};
  std::vector<size_t> demand = {7};
  EXPECT_EQ(AllocateRebuildBudget(heat, demand, 4),
            (std::vector<size_t>{4}));
  EXPECT_EQ(AllocateRebuildBudget(heat, demand, 9),
            (std::vector<size_t>{7}));
}

TEST(RebuildReasonTest, StringNamesAreStable) {
  EXPECT_STREQ(RebuildReasonToString(RebuildReason::kNone), "none");
  EXPECT_STREQ(RebuildReasonToString(RebuildReason::kDrift), "drift");
  EXPECT_STREQ(RebuildReasonToString(RebuildReason::kSelfJoin), "self_join");
  EXPECT_STREQ(RebuildReasonToString(RebuildReason::kFeedback), "feedback");
  EXPECT_STREQ(RebuildReasonToString(RebuildReason::kForced), "forced");
}

}  // namespace
}  // namespace hops
