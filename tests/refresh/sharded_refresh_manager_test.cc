// ShardedRefreshManager (DESIGN.md §10): hash routing, global id
// registration, per-shard write paths, joint staleness budgeting, and the
// single-publication-per-tick contract. The shards=1 identity test pins the
// headline guarantee: one shard reproduces RefreshManager behavior exactly,
// down to bit-identical published estimates.

#include "refresh/sharded_refresh_manager.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "estimator/serving.h"
#include "stats/zipf.h"
#include "telemetry/metrics.h"

namespace hops {
namespace {

std::vector<int64_t> TailValues(int64_t first, size_t count) {
  std::vector<int64_t> values;
  values.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    values.push_back(first + static_cast<int64_t>(i));
  }
  return values;
}

// Values 1..20: value 1 -> 400, value 2 -> 200, values 3..20 -> 10 each.
Result<RefreshColumnId> RegisterSkewed(ShardedRefreshManager* manager,
                                       const std::string& table,
                                       const std::string& column) {
  std::vector<int64_t> values = TailValues(1, 20);
  std::vector<double> freqs(20, 10.0);
  freqs[0] = 400.0;
  freqs[1] = 200.0;
  return manager->RegisterColumn(table, column, values, freqs);
}

constexpr double kSkewedMass = 400.0 + 200.0 + 18 * 10.0;

TEST(ShardedRefreshManagerTest, ShardsClampToAtLeastOne) {
  SnapshotStore store;
  ShardedRefreshOptions options;
  options.shards = 0;
  ShardedRefreshManager manager(&store, options);
  EXPECT_EQ(manager.shards(), 1u);
}

TEST(ShardedRefreshManagerTest, RegisterLookupAndPublishAcrossShards) {
  SnapshotStore store;
  ShardedRefreshOptions options;
  options.shards = 3;
  ShardedRefreshManager manager(&store, options);
  EXPECT_EQ(manager.shards(), 3u);

  std::vector<RefreshColumnId> ids;
  for (int c = 0; c < 6; ++c) {
    auto id = RegisterSkewed(&manager, "t" + std::to_string(c % 2),
                             "col" + std::to_string(c));
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, static_cast<RefreshColumnId>(c));  // dense global ids
    ids.push_back(*id);
  }
  EXPECT_EQ(manager.num_columns(), 6u);

  // Lookup round-trips every global id, regardless of owning shard.
  for (int c = 0; c < 6; ++c) {
    auto looked_up =
        manager.Lookup("t" + std::to_string(c % 2), "col" + std::to_string(c));
    ASSERT_TRUE(looked_up.ok());
    EXPECT_EQ(*looked_up, ids[static_cast<size_t>(c)]);
  }
  EXPECT_TRUE(manager.Lookup("t0", "missing").status().IsNotFound());

  // The published snapshot merges every shard's catalog.
  auto snapshot = store.Current();
  for (int c = 0; c < 6; ++c) {
    EXPECT_TRUE(snapshot->Contains("t" + std::to_string(c % 2),
                                   "col" + std::to_string(c)));
  }

  // Duplicate registration is rejected globally, not just on the shard the
  // new id would hash to.
  EXPECT_TRUE(
      RegisterSkewed(&manager, "t0", "col0").status().IsAlreadyExists());

  // Malformed input is rejected by the owning shard's validation.
  std::vector<int64_t> values = {1, 2};
  std::vector<double> short_freqs = {1.0};
  EXPECT_TRUE(manager.RegisterColumn("t9", "bad", values, short_freqs)
                  .status()
                  .IsInvalidArgument());
}

TEST(ShardedRefreshManagerTest, RecordsRouteToTheOwningShardLog) {
  SnapshotStore store;
  ShardedRefreshOptions options;
  options.shards = 4;
  ShardedRefreshManager manager(&store, options);

  std::vector<RefreshColumnId> ids;
  for (int c = 0; c < 8; ++c) {
    auto id = RegisterSkewed(&manager, "t", "col" + std::to_string(c));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }

  std::vector<size_t> expected_depth(manager.shards(), 0);
  for (RefreshColumnId id : ids) {
    ASSERT_TRUE(manager.RecordInsert(id, 1).ok());
    ASSERT_TRUE(manager.RecordDelete(id, 3).ok());
    expected_depth[manager.ShardOfColumn(id)] += 2;
  }
  size_t total = 0;
  for (size_t s = 0; s < manager.shards(); ++s) {
    EXPECT_EQ(manager.update_log(s).depth(), expected_depth[s]) << "shard "
                                                                << s;
    total += expected_depth[s];
  }
  EXPECT_EQ(manager.pending_update_records(), total);

  // One tick drains every shard and applies everything.
  auto report = manager.Tick();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->deltas_applied, total);
  EXPECT_EQ(manager.pending_update_records(), 0u);
  EXPECT_EQ(manager.stats().total.deltas_applied, total);
}

TEST(ShardedRefreshManagerTest, RecordBatchRoutesAndAppliesByShard) {
  SnapshotStore store;
  ShardedRefreshOptions options;
  options.shards = 2;
  ShardedRefreshManager manager(&store, options);
  auto a = RegisterSkewed(&manager, "t", "a");
  auto b = RegisterSkewed(&manager, "t", "b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  std::vector<UpdateRecord> batch = {
      UpdateRecord{*a, 2, +5.0}, UpdateRecord{*b, 1, -2.0},
      UpdateRecord{*a, 1, +1.0}, UpdateRecord{*b, 2, +3.0}};
  ASSERT_TRUE(manager.RecordBatch(batch).ok());
  EXPECT_EQ(manager.pending_update_records(), 4u);

  auto report = manager.Tick();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->deltas_applied, 4u);

  // Published statistics reflect the weighted folds on both columns: the
  // routing preserved values and weights.
  auto snapshot = store.Current();
  auto col_a = snapshot->Resolve("t", "a");
  auto col_b = snapshot->Resolve("t", "b");
  ASSERT_TRUE(col_a.ok());
  ASSERT_TRUE(col_b.ok());
  EXPECT_DOUBLE_EQ(snapshot->stats(*col_a).num_tuples, kSkewedMass + 6.0);
  EXPECT_DOUBLE_EQ(snapshot->stats(*col_b).num_tuples, kSkewedMass + 1.0);
}

TEST(ShardedRefreshManagerTest, UnknownIdsAreCountedByTheHashOwnerShard) {
  SnapshotStore store;
  ShardedRefreshOptions options;
  options.shards = 2;
  ShardedRefreshManager manager(&store, options);
  ASSERT_TRUE(RegisterSkewed(&manager, "t", "a").ok());

  // Ids are validated at apply time, exactly like RefreshManager.
  ASSERT_TRUE(manager.RecordInsert(999, 1).ok());
  std::vector<UpdateRecord> batch = {UpdateRecord{12345, 7, +1.0}};
  ASSERT_TRUE(manager.RecordBatch(batch).ok());

  auto report = manager.Tick();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->deltas_applied, 0u);
  EXPECT_EQ(manager.stats().total.unknown_column_records, 2u);
}

TEST(ShardedRefreshManagerTest, TickSkipsPublicationWhenNothingChanged) {
  SnapshotStore store;
  ShardedRefreshOptions options;
  options.shards = 2;
  ShardedRefreshManager manager(&store, options);
  auto id = RegisterSkewed(&manager, "orders", "customer_id");
  ASSERT_TRUE(id.ok());
  const uint64_t version_after_register = store.Current()->source_version();

  // Idle tick: no publication, no RCU churn.
  auto idle = manager.Tick();
  ASSERT_TRUE(idle.ok());
  EXPECT_FALSE(idle->changed);
  EXPECT_FALSE(idle->republished);
  EXPECT_EQ(store.Current()->source_version(), version_after_register);

  // Busy tick: exactly one publication covering apply + rebuild.
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(manager.RecordInsert(*id, 5).ok());
  }
  const uint64_t republish_before = manager.stats().total.republish_count;
  auto busy = manager.Tick();
  ASSERT_TRUE(busy.ok());
  EXPECT_TRUE(busy->changed);
  EXPECT_TRUE(busy->republished);
  EXPECT_EQ(busy->deltas_applied, 60u);
  EXPECT_EQ(manager.stats().total.republish_count, republish_before + 1);

  ShardedRefreshStats stats = manager.stats();
  EXPECT_EQ(stats.total.ticks, 2u);
  EXPECT_EQ(stats.total.ticks_skipped, 1u);
  EXPECT_EQ(stats.shards, 2u);
  ASSERT_EQ(stats.per_shard.size(), 2u);
  // Shard pipelines never publish on their own; the coordinator owns both
  // the tick counter and the publication.
  for (const RefreshStats& s : stats.per_shard) {
    EXPECT_EQ(s.republish_count, 0u);
    EXPECT_EQ(s.ticks, 0u);
  }
}

TEST(ShardedRefreshManagerTest, NullStoreDisablesPublication) {
  ShardedRefreshOptions options;
  options.shards = 2;
  ShardedRefreshManager manager(/*store=*/nullptr, options);
  auto id = RegisterSkewed(&manager, "t", "a");
  ASSERT_TRUE(id.ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(manager.RecordInsert(*id, 5).ok());
  }
  auto report = manager.Tick();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->changed);          // the catalogs did move...
  EXPECT_FALSE(report->republished);     // ...but nothing was published
  EXPECT_EQ(manager.stats().total.republish_count, 0u);
}

TEST(ShardedRefreshManagerTest, ForceRebuildRebuildsAcrossShardsOnce) {
  SnapshotStore store;
  ShardedRefreshOptions options;
  options.shards = 3;
  ShardedRefreshManager manager(&store, options);
  std::vector<RefreshColumnId> ids;
  for (int c = 0; c < 5; ++c) {
    auto id = RegisterSkewed(&manager, "t", "col" + std::to_string(c));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  const uint64_t republish_before = manager.stats().total.republish_count;
  ASSERT_TRUE(manager.ForceRebuild(ids).ok());
  ShardedRefreshStats stats = manager.stats();
  EXPECT_EQ(stats.total.rebuilds_forced, 5u);
  EXPECT_EQ(stats.total.rebuilds_total, 5u);
  // One merged publication for the whole forced batch.
  EXPECT_EQ(stats.total.republish_count, republish_before + 1);

  std::vector<RefreshColumnId> bad = {424242};
  EXPECT_TRUE(manager.ForceRebuild(bad).IsInvalidArgument());
}

TEST(ShardedRefreshManagerTest, ScoreColumnsMergesShardsWorstFirst) {
  SnapshotStore store;
  ShardedRefreshOptions options;
  options.shards = 3;
  // Keep the churn visible to ScoreColumns: no rebuild may fire this tick.
  options.refresh.maintenance.rebuild_drift_fraction = 1e9;
  options.refresh.staleness.rebuild_score_threshold = 1e9;
  ShardedRefreshManager manager(&store, options);
  auto calm = RegisterSkewed(&manager, "t", "calm");
  auto churned = RegisterSkewed(&manager, "t", "churned");
  auto mild = RegisterSkewed(&manager, "t", "mild");
  ASSERT_TRUE(calm.ok());
  ASSERT_TRUE(churned.ok());
  ASSERT_TRUE(mild.ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(manager.RecordInsert(*churned, 7).ok());
  }
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(manager.RecordInsert(*mild, 7).ok());
  }
  auto report = manager.Tick();
  ASSERT_TRUE(report.ok());

  std::vector<ColumnStalenessReport> reports = manager.ScoreColumns();
  ASSERT_EQ(reports.size(), 3u);
  // Global ids survive the shard-local scoring.
  for (const ColumnStalenessReport& r : reports) {
    auto looked_up = manager.Lookup(r.table, r.column);
    ASSERT_TRUE(looked_up.ok());
    EXPECT_EQ(*looked_up, r.id);
  }
  // Sorted worst-first across shard boundaries.
  for (size_t i = 1; i < reports.size(); ++i) {
    EXPECT_GE(reports[i - 1].score.total, reports[i].score.total);
  }
}

TEST(ShardedRefreshManagerTest, FeedbackReachesTheOwningShardOnly) {
  SnapshotStore store;
  ShardedRefreshOptions options;
  options.shards = 3;
  ShardedRefreshManager manager(&store, options);
  auto id = RegisterSkewed(&manager, "orders", "customer_id");
  ASSERT_TRUE(id.ok());

  EstimationFeedbackSink* sink = &manager;
  sink->ReportEstimationError("orders", "customer_id", 100.0, 1000.0);
  sink->ReportEstimationError("orders", "unknown", 1.0, 2.0);  // ignored

  ShardedRefreshStats stats = manager.stats();
  EXPECT_EQ(stats.total.feedback_reports, 1u);
  // Exactly one shard (the owner) recorded it.
  size_t shards_with_reports = 0;
  for (const RefreshStats& s : stats.per_shard) {
    if (s.feedback_reports > 0) ++shards_with_reports;
  }
  EXPECT_EQ(shards_with_reports, 1u);

  std::vector<ColumnStalenessReport> reports = manager.ScoreColumns();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_GT(reports[0].score.signals.feedback_error, 0.5);
}

// The joint staleness signal in action: under rebuild-budget pressure
// (global budget = 1, several rebuild-recommended columns spread across
// shards) the slot goes to the shard whose relation runs hottest — not
// round-robin, not registration order.
TEST(ShardedRefreshManagerTest, JointBudgetPrefersTheHotRelation) {
  SnapshotStore store;
  ShardedRefreshOptions options;
  options.shards = 2;
  options.max_rebuilds_per_tick_total = 1;
  // Isolate the feedback signal so heat is exactly the reported q-error
  // EWMA and both columns cross the rebuild threshold.
  options.refresh.staleness.weight_drift = 0.0;
  options.refresh.staleness.weight_self_join = 0.0;
  options.refresh.maintenance.rebuild_drift_fraction = 1e9;
  ShardedRefreshManager manager(&store, options);

  // Register columns until both shards own at least one; keep one column
  // per shard, each in its own relation.
  RefreshColumnId on_shard[2] = {0, 0};
  bool have_shard[2] = {false, false};
  for (int c = 0; c < 16 && !(have_shard[0] && have_shard[1]); ++c) {
    auto id = RegisterSkewed(&manager, "rel" + std::to_string(c),
                             "col" + std::to_string(c));
    ASSERT_TRUE(id.ok());
    const size_t shard = manager.ShardOfColumn(*id);
    if (!have_shard[shard]) {
      on_shard[shard] = *id;
      have_shard[shard] = true;
    }
  }
  ASSERT_TRUE(have_shard[0] && have_shard[1]);

  std::vector<ColumnStalenessReport> scored = manager.ScoreColumns();
  auto table_of = [&](RefreshColumnId id) {
    for (const ColumnStalenessReport& r : scored) {
      if (r.id == id) return r.table;
    }
    ADD_FAILURE() << "id " << id << " not scored";
    return std::string();
  };
  auto column_of = [&](RefreshColumnId id) {
    for (const ColumnStalenessReport& r : scored) {
      if (r.id == id) return r.column;
    }
    return std::string();
  };

  // Shard 1's relation is hot (q-error 0.9); shard 0's is warm (0.2) —
  // both above the 0.10 rebuild threshold, so both DEMAND a slot.
  const size_t hot_shard = 1;
  const size_t warm_shard = 0;
  EstimationFeedbackSink* sink = &manager;
  sink->ReportEstimationError(table_of(on_shard[hot_shard]),
                              column_of(on_shard[hot_shard]), 100.0, 1000.0);
  sink->ReportEstimationError(table_of(on_shard[warm_shard]),
                              column_of(on_shard[warm_shard]), 120.0, 100.0);

  auto report = manager.Tick();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->columns_rebuilt, 1u);  // global budget bites

  ShardedRefreshStats stats = manager.stats();
  EXPECT_EQ(stats.per_shard[hot_shard].rebuilds_feedback, 1u);
  EXPECT_EQ(stats.per_shard[warm_shard].rebuilds_total, 0u);

  // The next tick serves the deferred warm column (its EWMA persists).
  auto next = manager.Tick();
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->columns_rebuilt, 1u);
  EXPECT_EQ(manager.stats().per_shard[warm_shard].rebuilds_feedback, 1u);
}

TEST(ShardedRefreshManagerTest, ComputeRelationHeatFoldsDriftAndFeedback) {
  std::vector<ColumnStalenessReport> reports(3);
  reports[0].table = "fact";
  reports[0].score.signals.drift_fraction = 0.4;
  reports[0].score.signals.feedback_error = 0.1;
  reports[1].table = "fact";
  reports[1].score.signals.drift_fraction = 0.2;
  reports[1].score.signals.feedback_error = 0.0;
  reports[1].score.signals.self_join_error = 1e9;  // deliberately ignored
  reports[2].table = "dim";
  reports[2].score.signals.drift_fraction = 0.0;
  reports[2].score.signals.feedback_error = 0.5;

  StalenessOptions options;
  options.weight_drift = 2.0;
  options.weight_feedback = 3.0;
  options.weight_self_join = 100.0;  // must not leak into heat

  auto heat = ComputeRelationHeat(reports, options);
  ASSERT_EQ(heat.size(), 2u);
  EXPECT_NEAR(heat["fact"], 2.0 * (0.4 + 0.2) + 3.0 * 0.1, 1e-12);
  EXPECT_NEAR(heat["dim"], 3.0 * 0.5, 1e-12);
}

// The headline identity: shards = 1 reproduces RefreshManager exactly —
// same rebuild decisions in the same order, same tick accounting, and
// bit-identical estimates served from the published snapshots.
TEST(ShardedRefreshManagerTest, ShardsOneMatchesRefreshManagerExactly) {
  RefreshOptions refresh;
  refresh.statistics.num_buckets = 6;
  refresh.maintenance.rebuild_drift_fraction = 0.05;
  refresh.max_rebuilds_per_tick = 2;

  Catalog baseline_catalog;
  SnapshotStore baseline_store;
  RefreshManager baseline(&baseline_catalog, &baseline_store, refresh);

  SnapshotStore sharded_store;
  ShardedRefreshOptions sharded_options;
  sharded_options.refresh = refresh;
  sharded_options.shards = 1;
  ShardedRefreshManager sharded(&sharded_store, sharded_options);

  // Identical workload on both: a drifting Zipf column plus a calm one.
  ZipfParams params;
  params.total = 5000.0;
  params.num_values = 50;
  params.skew = 1.0;
  auto zipf = ZipfFrequenciesInteger(params);
  ASSERT_TRUE(zipf.ok());
  std::vector<int64_t> values = TailValues(1, params.num_values);

  auto base_fact = baseline.RegisterColumn("fact", "key", values, *zipf);
  auto shard_fact = sharded.RegisterColumn("fact", "key", values, *zipf);
  ASSERT_TRUE(base_fact.ok());
  ASSERT_TRUE(shard_fact.ok());
  EXPECT_EQ(*base_fact, *shard_fact);
  auto base_dim = baseline.RegisterColumn("dim", "key", values, *zipf);
  auto shard_dim = sharded.RegisterColumn("dim", "key", values, *zipf);
  ASSERT_TRUE(base_dim.ok());
  ASSERT_TRUE(shard_dim.ok());
  EXPECT_EQ(*base_dim, *shard_dim);

  auto drive = [&](auto&& record_insert) {
    // Tail value 45 becomes the hottest value; the calm column sees a
    // trickle below the drift threshold.
    for (int i = 0; i < 1500; ++i) record_insert(0u, int64_t{45});
    for (int i = 0; i < 3; ++i) record_insert(1u, int64_t{7});
  };
  drive([&](RefreshColumnId id, int64_t v) {
    ASSERT_TRUE(baseline.RecordInsert(id, v).ok());
  });
  drive([&](RefreshColumnId id, int64_t v) {
    ASSERT_TRUE(sharded.RecordInsert(id, v).ok());
  });

  auto base_tick = baseline.Tick();
  auto shard_tick = sharded.Tick();
  ASSERT_TRUE(base_tick.ok());
  ASSERT_TRUE(shard_tick.ok());
  EXPECT_EQ(base_tick->deltas_applied, shard_tick->deltas_applied);
  EXPECT_EQ(base_tick->columns_rebuilt, shard_tick->columns_rebuilt);
  EXPECT_EQ(base_tick->columns_touched, shard_tick->columns_touched);
  EXPECT_EQ(base_tick->changed, shard_tick->changed);
  EXPECT_EQ(base_tick->republished, shard_tick->republished);

  RefreshStats base_stats = baseline.stats();
  ShardedRefreshStats shard_stats = sharded.stats();
  EXPECT_EQ(base_stats.deltas_applied, shard_stats.total.deltas_applied);
  EXPECT_EQ(base_stats.rebuilds_total, shard_stats.total.rebuilds_total);
  EXPECT_EQ(base_stats.rebuilds_drift, shard_stats.total.rebuilds_drift);
  EXPECT_EQ(base_stats.rebuilds_self_join,
            shard_stats.total.rebuilds_self_join);
  EXPECT_EQ(base_stats.republish_count, shard_stats.total.republish_count);

  // Published snapshots serve bit-identical estimates: CompileMerged of one
  // catalog IS Compile of it, and the shard applied/rebuilt identically.
  auto base_snapshot = baseline_store.Current();
  auto shard_snapshot = sharded_store.Current();
  EXPECT_EQ(base_snapshot->source_version(), shard_snapshot->source_version());

  auto specs_for = [&](const CatalogSnapshot& snapshot) {
    auto fact = snapshot.Resolve("fact", "key");
    auto dim = snapshot.Resolve("dim", "key");
    EXPECT_TRUE(fact.ok());
    EXPECT_TRUE(dim.ok());
    std::vector<EstimateSpec> specs;
    specs.push_back(EstimateSpec::Equality(*fact, Value(int64_t{45})));
    specs.push_back(EstimateSpec::Equality(*fact, Value(int64_t{1})));
    specs.push_back(EstimateSpec::Equality(*dim, Value(int64_t{7})));
    specs.push_back(EstimateSpec::Join(*fact, *dim));
    return specs;
  };
  std::vector<Result<double>> base_estimates =
      EstimateBatch(*base_snapshot, specs_for(*base_snapshot));
  std::vector<Result<double>> shard_estimates =
      EstimateBatch(*shard_snapshot, specs_for(*shard_snapshot));
  ASSERT_EQ(base_estimates.size(), shard_estimates.size());
  for (size_t i = 0; i < base_estimates.size(); ++i) {
    ASSERT_TRUE(base_estimates[i].ok());
    ASSERT_TRUE(shard_estimates[i].ok());
    EXPECT_EQ(*base_estimates[i], *shard_estimates[i]) << "spec " << i;
  }

  // An idle tick skips publication on both sides identically.
  auto base_idle = baseline.Tick();
  auto shard_idle = sharded.Tick();
  ASSERT_TRUE(base_idle.ok());
  ASSERT_TRUE(shard_idle.ok());
  EXPECT_FALSE(base_idle->republished);
  EXPECT_FALSE(shard_idle->republished);
  EXPECT_EQ(baseline.stats().ticks_skipped,
            sharded.stats().total.ticks_skipped);
}

TEST(ShardedRefreshManagerTest, PerShardTelemetryCarriesShardLabels) {
  telemetry::SetEnabled(true);
  SnapshotStore store;
  ShardedRefreshOptions options;
  options.shards = 2;
  ShardedRefreshManager manager(&store, options);
  auto id = RegisterSkewed(&manager, "t", "a");
  ASSERT_TRUE(id.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(manager.RecordInsert(*id, 5).ok());
  }
  ASSERT_TRUE(manager.Tick().ok());

  const telemetry::MetricsSnapshot snapshot =
      telemetry::MetricRegistry::Global().Collect();
  for (const char* shard : {"0", "1"}) {
    const telemetry::MetricSnapshot* span_count = snapshot.Find(
        "hops_span_total",
        telemetry::LabelSet{{"span", "Refresh.ShardTick"}, {"shard", shard}});
    ASSERT_NE(span_count, nullptr) << "shard " << shard;
    EXPECT_GE(span_count->value, 1.0);  // every tick spans every shard
  }
  const size_t owner = manager.ShardOfColumn(*id);
  const telemetry::MetricSnapshot* deltas = snapshot.Find(
      "hops_refresh_shard_deltas_total",
      telemetry::LabelSet{{"shard", std::to_string(owner)}});
  ASSERT_NE(deltas, nullptr);
  EXPECT_GE(deltas->value, 10.0);
}

TEST(ShardedRefreshManagerTest, CloseLogsFailsFurtherRecords) {
  SnapshotStore store;
  ShardedRefreshOptions options;
  options.shards = 2;
  ShardedRefreshManager manager(&store, options);
  auto id = RegisterSkewed(&manager, "t", "a");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(manager.RecordInsert(*id, 1).ok());
  manager.CloseLogs();
  EXPECT_TRUE(manager.RecordInsert(*id, 1).IsResourceExhausted());
  std::vector<UpdateRecord> batch = {UpdateRecord{*id, 1, +1.0}};
  EXPECT_TRUE(manager.RecordBatch(batch).IsResourceExhausted());
  // Queued records remain drainable by the consumer.
  auto report = manager.Tick();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->deltas_applied, 1u);
}

}  // namespace
}  // namespace hops
