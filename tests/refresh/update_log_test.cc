// UpdateLog: bounded MPSC delta queue — ordering, backpressure, shutdown.

#include "refresh/update_log.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace hops {
namespace {

TEST(UpdateLogTest, RecordsDrainInFifoOrder) {
  UpdateLog log(16);
  ASSERT_TRUE(log.RecordInsert(3, 10).ok());
  ASSERT_TRUE(log.RecordDelete(3, 10).ok());
  ASSERT_TRUE(log.RecordInsert(7, -5).ok());
  EXPECT_EQ(log.depth(), 3u);

  std::vector<UpdateRecord> out;
  EXPECT_EQ(log.Drain(&out), 3u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].column, 3u);
  EXPECT_EQ(out[0].value, 10);
  EXPECT_DOUBLE_EQ(out[0].weight, +1.0);
  EXPECT_DOUBLE_EQ(out[1].weight, -1.0);
  EXPECT_EQ(out[2].column, 7u);
  EXPECT_EQ(out[2].value, -5);
  EXPECT_EQ(log.depth(), 0u);
}

TEST(UpdateLogTest, DrainAppendsAndHonorsMax) {
  UpdateLog log(16);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(log.RecordInsert(0, i).ok());
  std::vector<UpdateRecord> out;
  out.push_back(UpdateRecord{99, 99, +1.0});  // pre-existing content survives
  EXPECT_EQ(log.Drain(&out, 4), 4u);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0].column, 99u);
  EXPECT_EQ(out[1].value, 0);
  EXPECT_EQ(out[4].value, 3);
  EXPECT_EQ(log.depth(), 2u);
  EXPECT_EQ(log.Drain(&out), 2u);
  EXPECT_EQ(log.depth(), 0u);
}

TEST(UpdateLogTest, TryRecordRefusesWhenFull) {
  UpdateLog log(2);
  EXPECT_TRUE(log.TryRecord(UpdateRecord{0, 1, +1.0}));
  EXPECT_TRUE(log.TryRecord(UpdateRecord{0, 2, +1.0}));
  EXPECT_FALSE(log.TryRecord(UpdateRecord{0, 3, +1.0}));
  UpdateLogStats stats = log.stats();
  EXPECT_EQ(stats.enqueued, 2u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.depth, 2u);
  EXPECT_EQ(stats.high_water, 2u);
  EXPECT_EQ(stats.capacity, 2u);
}

TEST(UpdateLogTest, CapacityClampedToAtLeastOne) {
  UpdateLog log(0);
  EXPECT_EQ(log.stats().capacity, 1u);
  EXPECT_TRUE(log.TryRecord(UpdateRecord{0, 1, +1.0}));
  EXPECT_FALSE(log.TryRecord(UpdateRecord{0, 2, +1.0}));
}

TEST(UpdateLogTest, ProducerBlocksUntilConsumerDrains) {
  UpdateLog log(1);
  ASSERT_TRUE(log.RecordInsert(0, 0).ok());  // fill the log

  std::atomic<bool> enqueued{false};
  std::thread producer([&] {
    ASSERT_TRUE(log.RecordInsert(0, 1).ok());  // must block until drain
    enqueued.store(true);
  });

  // The producer cannot finish while the log is full. (A sleep would be
  // flaky the other way; instead we just verify the unblock path.)
  std::vector<UpdateRecord> out;
  while (log.stats().producer_waits == 0 && !enqueued.load()) {
    std::this_thread::yield();
  }
  log.Drain(&out);
  producer.join();
  EXPECT_TRUE(enqueued.load());
  log.Drain(&out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].value, 1);
  EXPECT_GE(log.stats().producer_waits, 1u);
}

TEST(UpdateLogTest, RecordBatchLargerThanCapacityCompletesWithDrains) {
  UpdateLog log(2);
  std::vector<UpdateRecord> batch;
  for (int i = 0; i < 8; ++i) batch.push_back(UpdateRecord{0, i, +1.0});

  std::thread producer([&] { ASSERT_TRUE(log.RecordBatch(batch).ok()); });

  std::vector<UpdateRecord> out;
  while (out.size() < batch.size()) {
    log.Drain(&out);
    std::this_thread::yield();
  }
  producer.join();
  ASSERT_EQ(out.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i].value, i);
  EXPECT_EQ(log.stats().enqueued, 8u);
  EXPECT_EQ(log.stats().drained, 8u);
}

TEST(UpdateLogTest, CloseFailsFurtherRecordsButKeepsQueued) {
  UpdateLog log(4);
  ASSERT_TRUE(log.RecordInsert(1, 1).ok());
  log.Close();
  EXPECT_TRUE(log.closed());
  Status status = log.RecordInsert(1, 2);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(log.TryRecord(UpdateRecord{1, 3, +1.0}));
  std::vector<UpdateRecord> out;
  EXPECT_EQ(log.Drain(&out), 1u);  // queued records remain drainable
  EXPECT_EQ(out[0].value, 1);
}

TEST(UpdateLogTest, CloseWakesBlockedProducer) {
  UpdateLog log(1);
  ASSERT_TRUE(log.RecordInsert(0, 0).ok());
  std::atomic<bool> failed{false};
  std::thread producer([&] {
    Status status = log.RecordInsert(0, 1);  // blocks on full log
    failed.store(!status.ok());
  });
  while (log.stats().producer_waits == 0) std::this_thread::yield();
  log.Close();
  producer.join();
  EXPECT_TRUE(failed.load());  // woken with a closed error, not a deadlock
}

TEST(UpdateLogTest, ManyProducersLoseNothing) {
  UpdateLog log(64);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(
            log.RecordInsert(static_cast<RefreshColumnId>(p), i).ok());
      }
    });
  }
  std::vector<UpdateRecord> out;
  while (out.size() < kProducers * kPerProducer) {
    log.Drain(&out);
    std::this_thread::yield();
  }
  for (auto& thread : producers) thread.join();
  EXPECT_EQ(out.size(), static_cast<size_t>(kProducers * kPerProducer));
  // Per-producer order is preserved even though the global interleaving is
  // arbitrary.
  std::vector<int> next(kProducers, 0);
  for (const UpdateRecord& record : out) {
    ASSERT_LT(record.column, static_cast<RefreshColumnId>(kProducers));
    EXPECT_EQ(record.value, next[record.column]);
    ++next[record.column];
  }
}

}  // namespace
}  // namespace hops
