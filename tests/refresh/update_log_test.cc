// UpdateLog: bounded MPSC delta queue — ordering, backpressure, shutdown,
// batch atomicity (all-or-nothing chunks), and the blocked-interval
// accounting contract of producer_waits / UpdateLog.BackpressureWait.

#include "refresh/update_log.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/metrics.h"

namespace hops {
namespace {

// Current value of hops_span_total{span="UpdateLog.BackpressureWait"} in the
// global registry; 0 before the site's first use.
double BackpressureSpanCount() {
  const telemetry::MetricsSnapshot snapshot =
      telemetry::MetricRegistry::Global().Collect();
  const telemetry::MetricSnapshot* metric = snapshot.Find(
      "hops_span_total",
      telemetry::LabelSet{{"span", "UpdateLog.BackpressureWait"}});
  return metric == nullptr ? 0.0 : metric->value;
}

TEST(UpdateLogTest, RecordsDrainInFifoOrder) {
  UpdateLog log(16);
  ASSERT_TRUE(log.RecordInsert(3, 10).ok());
  ASSERT_TRUE(log.RecordDelete(3, 10).ok());
  ASSERT_TRUE(log.RecordInsert(7, -5).ok());
  EXPECT_EQ(log.depth(), 3u);

  std::vector<UpdateRecord> out;
  EXPECT_EQ(log.Drain(&out), 3u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].column, 3u);
  EXPECT_EQ(out[0].value, 10);
  EXPECT_DOUBLE_EQ(out[0].weight, +1.0);
  EXPECT_DOUBLE_EQ(out[1].weight, -1.0);
  EXPECT_EQ(out[2].column, 7u);
  EXPECT_EQ(out[2].value, -5);
  EXPECT_EQ(log.depth(), 0u);
}

TEST(UpdateLogTest, DrainAppendsAndHonorsMax) {
  UpdateLog log(16);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(log.RecordInsert(0, i).ok());
  std::vector<UpdateRecord> out;
  out.push_back(UpdateRecord{99, 99, +1.0});  // pre-existing content survives
  EXPECT_EQ(log.Drain(&out, 4), 4u);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0].column, 99u);
  EXPECT_EQ(out[1].value, 0);
  EXPECT_EQ(out[4].value, 3);
  EXPECT_EQ(log.depth(), 2u);
  EXPECT_EQ(log.Drain(&out), 2u);
  EXPECT_EQ(log.depth(), 0u);
}

TEST(UpdateLogTest, TryRecordRefusesWhenFull) {
  UpdateLog log(2);
  EXPECT_TRUE(log.TryRecord(UpdateRecord{0, 1, +1.0}));
  EXPECT_TRUE(log.TryRecord(UpdateRecord{0, 2, +1.0}));
  EXPECT_FALSE(log.TryRecord(UpdateRecord{0, 3, +1.0}));
  UpdateLogStats stats = log.stats();
  EXPECT_EQ(stats.enqueued, 2u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.depth, 2u);
  EXPECT_EQ(stats.high_water, 2u);
  EXPECT_EQ(stats.capacity, 2u);
}

TEST(UpdateLogTest, CapacityClampedToAtLeastOne) {
  UpdateLog log(0);
  EXPECT_EQ(log.stats().capacity, 1u);
  EXPECT_TRUE(log.TryRecord(UpdateRecord{0, 1, +1.0}));
  EXPECT_FALSE(log.TryRecord(UpdateRecord{0, 2, +1.0}));
}

TEST(UpdateLogTest, ProducerBlocksUntilConsumerDrains) {
  UpdateLog log(1);
  ASSERT_TRUE(log.RecordInsert(0, 0).ok());  // fill the log

  std::atomic<bool> enqueued{false};
  std::thread producer([&] {
    ASSERT_TRUE(log.RecordInsert(0, 1).ok());  // must block until drain
    enqueued.store(true);
  });

  // The producer cannot finish while the log is full. (A sleep would be
  // flaky the other way; instead we just verify the unblock path.)
  std::vector<UpdateRecord> out;
  while (log.stats().producer_waits == 0 && !enqueued.load()) {
    std::this_thread::yield();
  }
  log.Drain(&out);
  producer.join();
  EXPECT_TRUE(enqueued.load());
  log.Drain(&out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].value, 1);
  EXPECT_GE(log.stats().producer_waits, 1u);
}

TEST(UpdateLogTest, RecordBatchLargerThanCapacityCompletesWithDrains) {
  UpdateLog log(2);
  std::vector<UpdateRecord> batch;
  for (int i = 0; i < 8; ++i) batch.push_back(UpdateRecord{0, i, +1.0});

  std::thread producer([&] { ASSERT_TRUE(log.RecordBatch(batch).ok()); });

  std::vector<UpdateRecord> out;
  while (out.size() < batch.size()) {
    log.Drain(&out);
    std::this_thread::yield();
  }
  producer.join();
  ASSERT_EQ(out.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i].value, i);
  EXPECT_EQ(log.stats().enqueued, 8u);
  EXPECT_EQ(log.stats().drained, 8u);
}

TEST(UpdateLogTest, CloseFailsFurtherRecordsButKeepsQueued) {
  UpdateLog log(4);
  ASSERT_TRUE(log.RecordInsert(1, 1).ok());
  log.Close();
  EXPECT_TRUE(log.closed());
  Status status = log.RecordInsert(1, 2);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(log.TryRecord(UpdateRecord{1, 3, +1.0}));
  std::vector<UpdateRecord> out;
  EXPECT_EQ(log.Drain(&out), 1u);  // queued records remain drainable
  EXPECT_EQ(out[0].value, 1);
}

TEST(UpdateLogTest, CloseWakesBlockedProducer) {
  UpdateLog log(1);
  ASSERT_TRUE(log.RecordInsert(0, 0).ok());
  std::atomic<bool> failed{false};
  std::thread producer([&] {
    Status status = log.RecordInsert(0, 1);  // blocks on full log
    failed.store(!status.ok());
  });
  while (log.stats().producer_waits == 0) std::this_thread::yield();
  log.Close();
  producer.join();
  EXPECT_TRUE(failed.load());  // woken with a closed error, not a deadlock
}

TEST(UpdateLogTest, ManyProducersLoseNothing) {
  UpdateLog log(64);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(
            log.RecordInsert(static_cast<RefreshColumnId>(p), i).ok());
      }
    });
  }
  std::vector<UpdateRecord> out;
  while (out.size() < kProducers * kPerProducer) {
    log.Drain(&out);
    std::this_thread::yield();
  }
  for (auto& thread : producers) thread.join();
  EXPECT_EQ(out.size(), static_cast<size_t>(kProducers * kPerProducer));
  // Per-producer order is preserved even though the global interleaving is
  // arbitrary.
  std::vector<int> next(kProducers, 0);
  for (const UpdateRecord& record : out) {
    ASSERT_LT(record.column, static_cast<RefreshColumnId>(kProducers));
    EXPECT_EQ(record.value, next[record.column]);
    ++next[record.column];
  }
}

// ---------------------------------------------------------- batch atomicity

// A batch that fits the capacity is all-or-nothing: closing the log while
// the batch is blocked on backpressure must admit NONE of its records — no
// silent prefix that would skew the maintained statistics.
TEST(UpdateLogTest, RecordBatchAllOrNothingWhenClosedWhileBlocked) {
  UpdateLog log(4);
  ASSERT_TRUE(log.RecordInsert(9, 1).ok());  // prefill: 2 of 4 slots
  ASSERT_TRUE(log.RecordInsert(9, 2).ok());

  std::vector<UpdateRecord> batch;
  for (int i = 0; i < 4; ++i) batch.push_back(UpdateRecord{0, i, +1.0});

  Status batch_status = Status::OK();
  std::thread producer([&] {
    // Needs 4 free slots but only 2 exist: blocks without committing.
    batch_status = log.RecordBatch(batch);
  });
  while (log.stats().producer_waits == 0) std::this_thread::yield();
  log.Close();
  producer.join();

  EXPECT_TRUE(batch_status.IsResourceExhausted());
  EXPECT_NE(batch_status.message().find("0 of 4"), std::string::npos)
      << batch_status.message();

  // Only the prefill is in the log; the blocked batch left nothing behind.
  std::vector<UpdateRecord> out;
  EXPECT_EQ(log.Drain(&out), 2u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].value, 1);
  EXPECT_EQ(out[1].value, 2);
  EXPECT_EQ(log.stats().enqueued, 2u);
}

// A batch larger than the capacity commits in capacity-sized atomic chunks;
// a close mid-batch reports exactly the committed whole chunks.
TEST(UpdateLogTest, OversizeBatchClosedMidwayReportsWholeChunks) {
  UpdateLog log(2);
  std::vector<UpdateRecord> batch;
  for (int i = 0; i < 5; ++i) batch.push_back(UpdateRecord{0, i, +1.0});

  Status batch_status = Status::OK();
  std::thread producer([&] { batch_status = log.RecordBatch(batch); });

  // Chunk 1 (2 records) commits immediately; the producer then blocks for
  // chunk 2. Drain chunk 1, let chunk 2 commit, then close while the
  // producer is blocked for chunk 3.
  std::vector<UpdateRecord> out;
  while (log.stats().producer_waits < 1) std::this_thread::yield();
  EXPECT_EQ(log.Drain(&out), 2u);
  while (log.stats().producer_waits < 2) std::this_thread::yield();
  log.Close();
  producer.join();

  EXPECT_TRUE(batch_status.IsResourceExhausted());
  EXPECT_NE(batch_status.message().find("4 of 5"), std::string::npos)
      << batch_status.message();
  EXPECT_EQ(log.Drain(&out), 2u);  // chunk 2 was fully committed
  ASSERT_EQ(out.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i].value, i);
  EXPECT_EQ(log.stats().enqueued, 4u);
}

// ------------------------------------------------- blocked-interval counting

TEST(UpdateLogTest, RecordWithFreeSpaceNeverCountsAWait) {
  UpdateLog log(4);
  ASSERT_TRUE(log.RecordInsert(0, 1).ok());
  ASSERT_TRUE(log.RecordInsert(0, 2).ok());
  std::vector<UpdateRecord> batch = {UpdateRecord{0, 3, +1.0},
                                     UpdateRecord{0, 4, +1.0}};
  ASSERT_TRUE(log.RecordBatch(batch).ok());  // exactly fills the log
  EXPECT_EQ(log.stats().producer_waits, 0u);
}

// The counting contract, pinned deterministically: producer_waits (and the
// BackpressureWait span) count blocked *intervals*, not records and not
// wake-ups. A 6-record batch through a capacity-2 log blocks exactly twice
// (chunks 2 and 3; chunk 1 finds the log empty), even though the consumer's
// one-record drains wake each wait several times before enough space opens.
TEST(UpdateLogTest, ProducerWaitsCountBlockedIntervalsExactly) {
  telemetry::SetEnabled(true);
  const double spans_before = BackpressureSpanCount();

  UpdateLog log(2);
  std::vector<UpdateRecord> batch;
  for (int i = 0; i < 6; ++i) batch.push_back(UpdateRecord{0, i, +1.0});
  std::thread producer([&] { ASSERT_TRUE(log.RecordBatch(batch).ok()); });

  // Drain one record at a time: each chunk wait spans two one-slot drains.
  std::vector<UpdateRecord> out;
  while (out.size() < batch.size()) {
    if (log.Drain(&out, 1) == 0) std::this_thread::yield();
  }
  producer.join();

  for (int i = 0; i < 6; ++i) EXPECT_EQ(out[i].value, i);
  EXPECT_EQ(log.stats().producer_waits, 2u);
  EXPECT_DOUBLE_EQ(BackpressureSpanCount() - spans_before, 2.0);
}

// ----------------------------------------------- multi-producer close storms

// Close() racing several blocked batch producers: every producer fails
// exactly once with zero records admitted — nothing lost, nothing duplicated,
// nothing torn (ISSUE §10 write-path correctness).
TEST(UpdateLogTest, CloseWhileManyBatchProducersBlockedAdmitsNone) {
  UpdateLog log(2);
  ASSERT_TRUE(log.RecordInsert(9, 1).ok());  // fill the log
  ASSERT_TRUE(log.RecordInsert(9, 2).ok());

  constexpr int kProducers = 4;
  std::vector<Status> statuses(kProducers, Status::OK());
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::vector<UpdateRecord> batch = {
          UpdateRecord{static_cast<RefreshColumnId>(p), 0, +1.0},
          UpdateRecord{static_cast<RefreshColumnId>(p), 1, +1.0}};
      statuses[p] = log.RecordBatch(batch);
    });
  }
  while (log.stats().producer_waits <
         static_cast<uint64_t>(kProducers)) {
    std::this_thread::yield();
  }
  log.Close();
  for (auto& thread : producers) thread.join();

  for (int p = 0; p < kProducers; ++p) {
    EXPECT_TRUE(statuses[p].IsResourceExhausted()) << "producer " << p;
    EXPECT_NE(statuses[p].message().find("0 of 2"), std::string::npos)
        << statuses[p].message();
  }
  std::vector<UpdateRecord> out;
  EXPECT_EQ(log.Drain(&out), 2u);  // only the prefill survives
  EXPECT_EQ(log.stats().enqueued, 2u);
}

// Drain storm: many producers mixing singles and atomic batches against a
// tiny log while the consumer drains in small erratic chunks. Exact
// reconciliation — every record arrives once, per-producer FIFO holds, and
// enqueued == drained.
TEST(UpdateLogTest, DrainStormReconcilesExactly) {
  UpdateLog log(8);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 300;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      const auto column = static_cast<RefreshColumnId>(p);
      if (p % 2 == 0) {
        for (int i = 0; i < kPerProducer; ++i) {
          ASSERT_TRUE(log.RecordInsert(column, i).ok());
        }
      } else {
        for (int i = 0; i < kPerProducer; i += 3) {
          std::vector<UpdateRecord> batch;
          for (int j = i; j < i + 3 && j < kPerProducer; ++j) {
            batch.push_back(UpdateRecord{column, j, +1.0});
          }
          ASSERT_TRUE(log.RecordBatch(batch).ok());
        }
      }
    });
  }

  std::vector<UpdateRecord> out;
  size_t chunk = 1;
  while (out.size() < kProducers * kPerProducer) {
    if (log.Drain(&out, chunk) == 0) std::this_thread::yield();
    chunk = chunk % 5 + 1;  // erratic 1..5 record drains
  }
  for (auto& thread : producers) thread.join();

  ASSERT_EQ(out.size(), static_cast<size_t>(kProducers * kPerProducer));
  std::vector<int> next(kProducers, 0);
  for (const UpdateRecord& record : out) {
    ASSERT_LT(record.column, static_cast<RefreshColumnId>(kProducers));
    EXPECT_EQ(record.value, next[record.column]);
    ++next[record.column];
  }
  UpdateLogStats stats = log.stats();
  EXPECT_EQ(stats.enqueued, static_cast<uint64_t>(kProducers * kPerProducer));
  EXPECT_EQ(stats.drained, stats.enqueued);
  EXPECT_EQ(stats.depth, 0u);
}

}  // namespace
}  // namespace hops
