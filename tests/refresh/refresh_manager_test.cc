// RefreshManager: registration, delta application through the maintenance
// hooks, Prop 3.1 staleness scoring against the tracked ideal frequencies,
// rebuild policy, feedback loop, and RCU republication.

#include "refresh/refresh_manager.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "estimator/serving.h"
#include "stats/zipf.h"

namespace hops {
namespace {

// A small skewed column: two heavy hitters plus a flat tail. The v-optimal
// end-biased build stores the heavy values explicitly and pools the tail in
// the default bucket.
struct Fixture {
  Catalog catalog;
  SnapshotStore store;
};

std::vector<int64_t> TailValues(int64_t first, size_t count) {
  std::vector<int64_t> values;
  values.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    values.push_back(first + static_cast<int64_t>(i));
  }
  return values;
}

Result<RefreshColumnId> RegisterSkewed(RefreshManager* manager,
                                       const std::string& table,
                                       const std::string& column) {
  // Values 1..20: value 1 → 400, value 2 → 200, values 3..20 → 10 each.
  std::vector<int64_t> values = TailValues(1, 20);
  std::vector<double> freqs(20, 10.0);
  freqs[0] = 400.0;
  freqs[1] = 200.0;
  return manager->RegisterColumn(table, column, values, freqs);
}

TEST(RefreshManagerTest, RegisterColumnStoresAndPublishes) {
  Fixture f;
  RefreshManager manager(&f.catalog, &f.store);
  auto id = RegisterSkewed(&manager, "orders", "customer_id");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(manager.num_columns(), 1u);

  // Catalog holds the built statistics.
  auto stats = f.catalog.GetColumnStatistics("orders", "customer_id");
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats->num_tuples, 400.0 + 200.0 + 18 * 10.0);
  EXPECT_EQ(stats->num_distinct, 20u);
  EXPECT_EQ(stats->min_value, 1);
  EXPECT_EQ(stats->max_value, 20);

  // The snapshot was republished and resolves the column.
  auto snapshot = f.store.Current();
  EXPECT_EQ(snapshot->source_version(), f.catalog.version());
  EXPECT_TRUE(snapshot->Contains("orders", "customer_id"));

  // Lookup round-trips the id.
  auto looked_up = manager.Lookup("orders", "customer_id");
  ASSERT_TRUE(looked_up.ok());
  EXPECT_EQ(*looked_up, *id);
  EXPECT_TRUE(manager.Lookup("orders", "missing").status().IsNotFound());
}

TEST(RefreshManagerTest, RegisterColumnValidatesInput) {
  Fixture f;
  RefreshManager manager(&f.catalog, &f.store);

  std::vector<int64_t> values = {1, 2};
  std::vector<double> short_freqs = {1.0};
  EXPECT_TRUE(manager.RegisterColumn("t", "a", values, short_freqs)
                  .status()
                  .IsInvalidArgument());

  std::vector<int64_t> dup_values = {1, 1};
  std::vector<double> freqs = {1.0, 2.0};
  EXPECT_TRUE(manager.RegisterColumn("t", "b", dup_values, freqs)
                  .status()
                  .IsInvalidArgument());

  std::vector<double> negative = {1.0, -2.0};
  EXPECT_TRUE(manager.RegisterColumn("t", "c", values, negative)
                  .status()
                  .IsInvalidArgument());

  EXPECT_TRUE(manager.RegisterColumn("t", "d", {}, {})
                  .status()
                  .IsInvalidArgument());

  ASSERT_TRUE(RegisterSkewed(&manager, "t", "e").ok());
  EXPECT_TRUE(
      RegisterSkewed(&manager, "t", "e").status().IsAlreadyExists());
}

TEST(RefreshManagerTest, AppliedDeltasReachCatalogAndSnapshot) {
  Fixture f;
  RefreshManager manager(&f.catalog, &f.store);
  auto id = RegisterSkewed(&manager, "orders", "customer_id");
  ASSERT_TRUE(id.ok());
  const double tuples_before =
      f.catalog.GetColumnStatistics("orders", "customer_id")->num_tuples;
  const uint64_t version_before = f.store.Current()->source_version();

  // Three inserts of explicit value 1 and one delete of tail value 3.
  ASSERT_TRUE(manager.RecordInsert(*id, 1).ok());
  ASSERT_TRUE(manager.RecordInsert(*id, 1).ok());
  ASSERT_TRUE(manager.RecordInsert(*id, 1).ok());
  ASSERT_TRUE(manager.RecordDelete(*id, 3).ok());
  EXPECT_EQ(manager.update_log().depth(), 4u);

  auto applied = manager.ApplyPendingDeltas();
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, 4u);
  EXPECT_EQ(manager.update_log().depth(), 0u);

  auto stats = f.catalog.GetColumnStatistics("orders", "customer_id");
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats->num_tuples, tuples_before + 3.0 - 1.0);
  // Explicit value 1 now counts 403 in the maintained histogram.
  EXPECT_DOUBLE_EQ(stats->histogram.LookupFrequency(1), 403.0);

  // A fresh snapshot was published over the mutated catalog.
  auto snapshot = f.store.Current();
  EXPECT_GT(snapshot->source_version(), version_before);
  auto column = snapshot->Resolve("orders", "customer_id");
  ASSERT_TRUE(column.ok());
  EXPECT_DOUBLE_EQ(snapshot->stats(*column).num_tuples,
                   tuples_before + 2.0);
}

TEST(RefreshManagerTest, WeightedRecordsFoldMultipleUnits) {
  Fixture f;
  RefreshManager manager(&f.catalog, &f.store);
  auto id = RegisterSkewed(&manager, "orders", "customer_id");
  ASSERT_TRUE(id.ok());
  std::vector<UpdateRecord> batch = {UpdateRecord{*id, 2, +5.0},
                                     UpdateRecord{*id, 1, -2.0}};
  ASSERT_TRUE(manager.RecordBatch(batch).ok());
  ASSERT_TRUE(manager.ApplyPendingDeltas().ok());
  auto stats = f.catalog.GetColumnStatistics("orders", "customer_id");
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats->histogram.LookupFrequency(2), 205.0);
  EXPECT_DOUBLE_EQ(stats->histogram.LookupFrequency(1), 398.0);
  EXPECT_EQ(manager.stats().deltas_applied, 7u);
}

TEST(RefreshManagerTest, UnknownColumnRecordsAreCountedAndDropped) {
  Fixture f;
  RefreshManager manager(&f.catalog, &f.store);
  ASSERT_TRUE(RegisterSkewed(&manager, "orders", "customer_id").ok());
  ASSERT_TRUE(manager.RecordInsert(999, 1).ok());  // ids validated at apply
  auto applied = manager.ApplyPendingDeltas();
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, 0u);
  EXPECT_EQ(manager.stats().unknown_column_records, 1u);
}

TEST(RefreshManagerTest, FreshColumnScoresNearZero) {
  Fixture f;
  RefreshManager manager(&f.catalog, &f.store);
  auto id = RegisterSkewed(&manager, "orders", "customer_id");
  ASSERT_TRUE(id.ok());
  auto score = manager.ScoreColumn(*id);
  ASSERT_TRUE(score.ok());
  EXPECT_DOUBLE_EQ(score->signals.drift_fraction, 0.0);
  EXPECT_DOUBLE_EQ(score->signals.feedback_error, 0.0);
  EXPECT_FALSE(score->rebuild_recommended);
  EXPECT_TRUE(manager.ScoreColumn(999).status().IsInvalidArgument());
}

// The headline adaptivity property: let a Zipf column drift (a formerly
// cold tail value becomes a heavy hitter), watch the Prop 3.1 self-join
// staleness error grow, let the advisor trigger a rebuild, and verify the
// rebuilt bucketization strictly shrinks sum_i P_i V_i.
TEST(RefreshManagerTest, DriftingZipfRebuildShrinksSelfJoinError) {
  Fixture f;
  RefreshOptions options;
  options.statistics.num_buckets = 6;
  RefreshManager manager(&f.catalog, &f.store, options);

  // A Zipf(z=1) column over 50 values, integer frequencies.
  ZipfParams params;
  params.total = 5000.0;
  params.num_values = 50;
  params.skew = 1.0;
  auto zipf = ZipfFrequenciesInteger(params);
  ASSERT_TRUE(zipf.ok());
  std::vector<int64_t> values = TailValues(1, params.num_values);
  auto id = manager.RegisterColumn("fact", "key", values, *zipf);
  ASSERT_TRUE(id.ok());

  auto fresh = manager.ScoreColumn(*id);
  ASSERT_TRUE(fresh.ok());
  const double fresh_error = fresh->signals.self_join_error;

  // Drift: tail value 45 (deep in the default bucket) becomes the hottest
  // value in the relation.
  for (int i = 0; i < 1500; ++i) {
    ASSERT_TRUE(manager.RecordInsert(*id, 45).ok());
  }
  ASSERT_TRUE(manager.ApplyPendingDeltas().ok());

  auto stale = manager.ScoreColumn(*id);
  ASSERT_TRUE(stale.ok());
  // The mis-bucketed heavy hitter inflates the default bucket's P * V.
  EXPECT_GT(stale->signals.self_join_error, fresh_error);
  EXPECT_GT(stale->signals.self_join_error, 1000.0);
  EXPECT_TRUE(stale->rebuild_recommended);

  auto rebuilt_count = manager.RebuildIfStale();
  ASSERT_TRUE(rebuilt_count.ok());
  EXPECT_EQ(*rebuilt_count, 1u);

  auto rebuilt = manager.ScoreColumn(*id);
  ASSERT_TRUE(rebuilt.ok());
  // Post-rebuild sum_i P_i V_i strictly decreases: the new bucketization
  // reflects the drifted frequencies.
  EXPECT_LT(rebuilt->signals.self_join_error,
            stale->signals.self_join_error);
  EXPECT_DOUBLE_EQ(rebuilt->signals.drift_fraction, 0.0);

  // The rebuilt histogram serves the new heavy hitter near-exactly.
  auto stats = f.catalog.GetColumnStatistics("fact", "key");
  ASSERT_TRUE(stats.ok());
  bool is_explicit = false;
  const double served = stats->histogram.LookupFrequency(45, &is_explicit);
  EXPECT_TRUE(is_explicit);
  EXPECT_NEAR(served, 1500.0 + (*zipf)[44], 1e-9);

  RefreshStats refresh_stats = manager.stats();
  EXPECT_EQ(refresh_stats.rebuilds_total, 1u);
  EXPECT_GE(refresh_stats.rebuilds_drift + refresh_stats.rebuilds_self_join,
            1u);
}

TEST(RefreshManagerTest, FeedbackDrivesRebuildReason) {
  Fixture f;
  RefreshOptions options;
  // Isolate the feedback signal.
  options.staleness.weight_drift = 0.0;
  options.staleness.weight_self_join = 0.0;
  options.maintenance.rebuild_drift_fraction = 1e9;
  RefreshManager manager(&f.catalog, &f.store, options);
  auto id = RegisterSkewed(&manager, "orders", "customer_id");
  ASSERT_TRUE(id.ok());

  EstimationFeedbackSink* sink = &manager;
  sink->ReportEstimationError("orders", "customer_id", 100.0, 1000.0);
  sink->ReportEstimationError("orders", "unknown", 1.0, 2.0);  // ignored

  auto score = manager.ScoreColumn(*id);
  ASSERT_TRUE(score.ok());
  EXPECT_GT(score->signals.feedback_error, 0.5);
  EXPECT_TRUE(score->rebuild_recommended);
  EXPECT_EQ(score->reason, RebuildReason::kFeedback);

  auto rebuilt = manager.RebuildIfStale();
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(*rebuilt, 1u);
  RefreshStats stats = manager.stats();
  EXPECT_EQ(stats.rebuilds_feedback, 1u);
  EXPECT_EQ(stats.feedback_reports, 1u);

  // Rebuild resets the EWMA: the feedback referred to replaced statistics.
  auto after = manager.ScoreColumn(*id);
  ASSERT_TRUE(after.ok());
  EXPECT_DOUBLE_EQ(after->signals.feedback_error, 0.0);
}

TEST(RefreshManagerTest, FeedbackFoldsAsEwma) {
  Fixture f;
  RefreshOptions options;
  options.feedback_alpha = 0.5;
  RefreshManager manager(&f.catalog, &f.store, options);
  auto id = RegisterSkewed(&manager, "orders", "customer_id");
  ASSERT_TRUE(id.ok());
  EstimationFeedbackSink* sink = &manager;
  // First report seeds the EWMA: |10-20|/20 = 0.5.
  sink->ReportEstimationError("orders", "customer_id", 10.0, 20.0);
  // Second folds at alpha = 0.5: 0.5 * 1.0 + 0.5 * 0.5 = 0.75.
  sink->ReportEstimationError("orders", "customer_id", 40.0, 20.0);
  auto score = manager.ScoreColumn(*id);
  ASSERT_TRUE(score.ok());
  EXPECT_NEAR(score->signals.feedback_error, 0.75, 1e-12);
}

TEST(RefreshManagerTest, FeedbackEwmaSurvivesHostileMagnitudes) {
  // Regression: non-finite inputs (or finite opposite-sign inputs whose
  // difference overflows to inf) used to poison the EWMA permanently —
  // alpha-blending never recovers from an inf or NaN term.
  Fixture f;
  RefreshOptions options;
  options.feedback_alpha = 0.5;
  RefreshManager manager(&f.catalog, &f.store, options);
  auto id = RegisterSkewed(&manager, "orders", "customer_id");
  ASSERT_TRUE(id.ok());
  EstimationFeedbackSink* sink = &manager;

  // Non-finite magnitudes are dropped at the sink boundary.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  sink->ReportEstimationError("orders", "customer_id", nan, 20.0);
  sink->ReportEstimationError("orders", "customer_id", 10.0, inf);
  sink->ReportEstimationError("orders", "customer_id", -inf, -inf);
  auto score = manager.ScoreColumn(*id);
  ASSERT_TRUE(score.ok());
  EXPECT_DOUBLE_EQ(score->signals.feedback_error, 0.0);  // nothing folded
  EXPECT_EQ(manager.stats().feedback_reports, 0u);

  // Finite but extreme: |1e308 - (-1e308)| overflows to inf, so the fold
  // clamps the relative error instead of trusting the raw difference.
  sink->ReportEstimationError("orders", "customer_id", 1e308, -1e308);
  score = manager.ScoreColumn(*id);
  ASSERT_TRUE(score.ok());
  EXPECT_TRUE(std::isfinite(score->signals.feedback_error));
  EXPECT_LE(score->signals.feedback_error, 1e12);
  EXPECT_GT(score->signals.feedback_error, 0.0);

  // The EWMA still recovers: accurate follow-ups shrink it.
  for (int i = 0; i < 50; ++i) {
    sink->ReportEstimationError("orders", "customer_id", 20.0, 20.0);
  }
  score = manager.ScoreColumn(*id);
  ASSERT_TRUE(score.ok());
  EXPECT_LT(score->signals.feedback_error, 1.0);
}

TEST(RefreshManagerTest, SelfTuningAdjustsHistogramInPlace) {
  Fixture f;
  RefreshOptions options;
  options.tuning.enabled = true;  // damping 0.4
  RefreshManager manager(&f.catalog, &f.store, options);
  auto id = RegisterSkewed(&manager, "orders", "customer_id");
  ASSERT_TRUE(id.ok());
  const uint64_t published_before = f.store.publish_count();
  auto before = f.catalog.GetColumnStatistics("orders", "customer_id");
  ASSERT_TRUE(before.ok());
  bool is_explicit = false;
  const double stored = before->histogram.LookupFrequency(1, &is_explicit);
  ASSERT_TRUE(is_explicit);  // value 1 is the heavy hitter

  PredicateOutcome outcome;
  outcome.kind = EstimateKind::kEquality;
  outcome.has_range = true;
  outcome.lo = 1;
  outcome.hi = 1;
  outcome.estimated = stored;
  outcome.actual = stored * 3.0;
  manager.ReportPredicateOutcome("orders", "customer_id", outcome);

  auto tuned = manager.TuneColumns();
  ASSERT_TRUE(tuned.ok());
  EXPECT_TRUE(*tuned);

  // The catalog histogram moved a damped step toward the observed actual,
  // without a rebuild, and the adjusted statistics were republished.
  auto after = f.catalog.GetColumnStatistics("orders", "customer_id");
  ASSERT_TRUE(after.ok());
  EXPECT_DOUBLE_EQ(after->histogram.LookupFrequency(1),
                   stored + 0.4 * (outcome.actual - stored));
  EXPECT_GT(f.store.publish_count(), published_before);
  auto snapshot = f.store.Current();
  auto snapshot_id = snapshot->Resolve("orders", "customer_id");
  ASSERT_TRUE(snapshot_id.ok());
  auto served = EstimateOne(
      *snapshot, EstimateSpec::Equality(*snapshot_id, Value(int64_t{1})));
  ASSERT_TRUE(served.ok());
  EXPECT_DOUBLE_EQ(*served, stored + 0.4 * (outcome.actual - stored));

  RefreshStats stats = manager.stats();
  EXPECT_EQ(stats.rebuilds_total, 0u);
  EXPECT_EQ(stats.tuning_observations, 1u);
  EXPECT_GE(stats.tuning_adjustments, 1u);

  // The staleness report exposes the tuning state; the fresh adjustment
  // left the recency signal high so scoring relieves this column.
  std::vector<ColumnStalenessReport> reports = manager.ScoreColumns();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].tuning_observations, 1u);
  EXPECT_GE(reports[0].tuning_adjustments, 1u);
  EXPECT_GT(reports[0].tuning_recency, 0.0);
}

TEST(RefreshManagerTest, SelfTuningOffLeavesStatisticsByteIdentical) {
  Fixture f;
  RefreshManager manager(&f.catalog, &f.store);  // tuning off by default
  auto id = RegisterSkewed(&manager, "orders", "customer_id");
  ASSERT_TRUE(id.ok());
  auto before = f.catalog.GetColumnStatistics("orders", "customer_id");
  ASSERT_TRUE(before.ok());
  const std::string bytes_before = before->histogram.Encode();

  PredicateOutcome outcome;
  outcome.kind = EstimateKind::kEquality;
  outcome.has_range = true;
  outcome.lo = 1;
  outcome.hi = 1;
  outcome.estimated = 400.0;
  outcome.actual = 4000.0;
  manager.ReportPredicateOutcome("orders", "customer_id", outcome);

  auto tuned = manager.TuneColumns();
  ASSERT_TRUE(tuned.ok());
  EXPECT_FALSE(*tuned);  // nothing adjusted, nothing republished

  // The outcome still feeds the rebuild-priority EWMA, but the stored
  // statistics are bit-identical to a build without the tuner.
  auto after = f.catalog.GetColumnStatistics("orders", "customer_id");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->histogram.Encode(), bytes_before);
  EXPECT_EQ(manager.stats().tuning_observations, 0u);
  auto score = manager.ScoreColumn(*id);
  ASSERT_TRUE(score.ok());
  EXPECT_GT(score->signals.feedback_error, 0.0);
}

TEST(RefreshManagerTest, ForceRebuildCountsAsForced) {
  Fixture f;
  RefreshManager manager(&f.catalog, &f.store);
  auto id = RegisterSkewed(&manager, "orders", "customer_id");
  ASSERT_TRUE(id.ok());
  std::vector<RefreshColumnId> ids = {*id};
  ASSERT_TRUE(manager.ForceRebuild(ids).ok());
  RefreshStats stats = manager.stats();
  EXPECT_EQ(stats.rebuilds_forced, 1u);
  EXPECT_EQ(stats.rebuilds_total, 1u);

  std::vector<RefreshColumnId> bad = {42};
  EXPECT_TRUE(manager.ForceRebuild(bad).IsInvalidArgument());
}

TEST(RefreshManagerTest, MaxRebuildsPerTickCapsWork) {
  Fixture f;
  RefreshOptions options;
  options.max_rebuilds_per_tick = 1;
  options.maintenance.rebuild_drift_fraction = 0.01;
  RefreshManager manager(&f.catalog, &f.store, options);
  auto a = RegisterSkewed(&manager, "t", "a");
  auto b = RegisterSkewed(&manager, "t", "b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(manager.RecordInsert(*a, 1).ok());
    ASSERT_TRUE(manager.RecordInsert(*b, 1).ok());
  }
  ASSERT_TRUE(manager.ApplyPendingDeltas().ok());
  auto rebuilt = manager.RebuildIfStale();
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(*rebuilt, 1u);  // capped; the other column waits for next tick
  auto again = manager.RebuildIfStale();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 1u);
}

TEST(RefreshManagerTest, ScoreColumnsSortsWorstFirst) {
  Fixture f;
  RefreshManager manager(&f.catalog, &f.store);
  auto a = RegisterSkewed(&manager, "t", "calm");
  auto b = RegisterSkewed(&manager, "t", "churned");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(manager.RecordInsert(*b, 7).ok());
  }
  ASSERT_TRUE(manager.ApplyPendingDeltas().ok());
  std::vector<ColumnStalenessReport> reports = manager.ScoreColumns();
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].column, "churned");
  EXPECT_EQ(reports[0].deltas_applied, 50u);
  EXPECT_GE(reports[0].score.total, reports[1].score.total);
}

TEST(RefreshManagerTest, TickRunsTheFullCycle) {
  Fixture f;
  RefreshOptions options;
  options.maintenance.rebuild_drift_fraction = 0.05;
  RefreshManager manager(&f.catalog, &f.store, options);
  auto id = RegisterSkewed(&manager, "orders", "customer_id");
  ASSERT_TRUE(id.ok());

  // Idle tick: nothing applied, nothing rebuilt, nothing republished.
  auto idle = manager.Tick();
  ASSERT_TRUE(idle.ok());
  EXPECT_EQ(idle->deltas_applied, 0u);
  EXPECT_EQ(idle->columns_rebuilt, 0u);
  EXPECT_FALSE(idle->republished);

  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(manager.RecordInsert(*id, 5).ok());
  }
  auto busy = manager.Tick();
  ASSERT_TRUE(busy.ok());
  EXPECT_EQ(busy->deltas_applied, 60u);
  EXPECT_EQ(busy->columns_rebuilt, 1u);  // drift policy fires at 5%
  EXPECT_TRUE(busy->republished);
  EXPECT_GE(busy->seconds, 0.0);

  RefreshStats stats = manager.stats();
  EXPECT_EQ(stats.ticks, 2u);
  EXPECT_EQ(stats.deltas_applied, 60u);
  EXPECT_GE(stats.republish_count, 2u);  // registration + busy tick
  EXPECT_EQ(stats.columns_tracked, 1u);
}

// The single-publication contract (ISSUE §10 satellite): a busy tick that
// both applies deltas AND rebuilds coalesces its write-backs into exactly
// one RCU swap. Before the fix, ApplyPendingDeltas and the rebuild path
// each republished — two swaps per busy tick, doubling reader cache
// invalidations.
TEST(RefreshManagerTest, BusyTickPublishesExactlyOnce) {
  Fixture f;
  RefreshOptions options;
  options.maintenance.rebuild_drift_fraction = 0.05;
  RefreshManager manager(&f.catalog, &f.store, options);
  auto id = RegisterSkewed(&manager, "orders", "customer_id");
  ASSERT_TRUE(id.ok());

  const uint64_t republish_before = manager.stats().republish_count;
  const uint64_t version_before = f.store.Current()->source_version();
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(manager.RecordInsert(*id, 5).ok());
  }
  auto busy = manager.Tick();
  ASSERT_TRUE(busy.ok());
  EXPECT_EQ(busy->deltas_applied, 60u);
  EXPECT_EQ(busy->columns_rebuilt, 1u);  // apply AND rebuild in one tick
  EXPECT_TRUE(busy->changed);
  EXPECT_TRUE(busy->republished);
  // ... yet exactly ONE publication covers both write-backs.
  EXPECT_EQ(manager.stats().republish_count, republish_before + 1);
  EXPECT_GT(f.store.Current()->source_version(), version_before);
}

// A no-op tick must not churn the RCU epoch: nothing changed, nothing is
// published, and the skip is visible in RefreshStats::ticks_skipped.
TEST(RefreshManagerTest, NoOpTickSkipsPublication) {
  Fixture f;
  RefreshManager manager(&f.catalog, &f.store);
  auto id = RegisterSkewed(&manager, "orders", "customer_id");
  ASSERT_TRUE(id.ok());
  const uint64_t republish_before = manager.stats().republish_count;
  auto snapshot_before = f.store.Current();

  auto idle = manager.Tick();
  ASSERT_TRUE(idle.ok());
  EXPECT_FALSE(idle->changed);
  EXPECT_FALSE(idle->republished);
  RefreshStats stats = manager.stats();
  EXPECT_EQ(stats.ticks, 1u);
  EXPECT_EQ(stats.ticks_skipped, 1u);
  EXPECT_EQ(stats.republish_count, republish_before);
  // Readers keep the very same snapshot object — the epoch did not move.
  EXPECT_EQ(f.store.Current().get(), snapshot_before.get());

  // A record against an unknown id drains but changes nothing: still a
  // skip, not a publication.
  ASSERT_TRUE(manager.RecordInsert(999, 1).ok());
  auto unknown_only = manager.Tick();
  ASSERT_TRUE(unknown_only.ok());
  EXPECT_FALSE(unknown_only->republished);
  EXPECT_EQ(manager.stats().ticks_skipped, 2u);
}

// Null-store mode: the embedding coordinator (ShardedRefreshManager) owns
// publication, so the per-shard pipeline applies and rebuilds but never
// touches a SnapshotStore.
TEST(RefreshManagerTest, NullStoreDisablesPublication) {
  Catalog catalog;
  RefreshOptions options;
  options.maintenance.rebuild_drift_fraction = 0.05;
  RefreshManager manager(&catalog, /*store=*/nullptr, options);
  auto id = RegisterSkewed(&manager, "orders", "customer_id");
  ASSERT_TRUE(id.ok());
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(manager.RecordInsert(*id, 5).ok());
  }
  auto busy = manager.Tick();
  ASSERT_TRUE(busy.ok());
  EXPECT_EQ(busy->deltas_applied, 60u);
  EXPECT_TRUE(busy->changed);        // the catalog moved...
  EXPECT_FALSE(busy->republished);   // ...but nothing was published
  EXPECT_EQ(manager.stats().republish_count, 0u);
  // The catalog itself carries the maintained statistics regardless.
  auto stats = catalog.GetColumnStatistics("orders", "customer_id");
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats->num_tuples, 400.0 + 200.0 + 18 * 10.0 + 60.0);
}

TEST(RefreshManagerTest, RebuildColumnsAttributesReasonsAndPublishesOnce) {
  Fixture f;
  RefreshManager manager(&f.catalog, &f.store);
  auto a = RegisterSkewed(&manager, "t", "a");
  auto b = RegisterSkewed(&manager, "t", "b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const uint64_t republish_before = manager.stats().republish_count;
  std::vector<std::pair<RefreshColumnId, RebuildReason>> picks = {
      {*a, RebuildReason::kFeedback}, {*b, RebuildReason::kSelfJoin}};
  ASSERT_TRUE(manager.RebuildColumns(picks).ok());
  RefreshStats stats = manager.stats();
  EXPECT_EQ(stats.rebuilds_feedback, 1u);
  EXPECT_EQ(stats.rebuilds_self_join, 1u);
  EXPECT_EQ(stats.rebuilds_total, 2u);
  EXPECT_EQ(stats.republish_count, republish_before + 1);  // one swap

  std::vector<std::pair<RefreshColumnId, RebuildReason>> bad = {
      {42, RebuildReason::kForced}};
  EXPECT_TRUE(manager.RebuildColumns(bad).IsInvalidArgument());
}

TEST(RefreshManagerTest, DeleteOfUntrackedValueIsDriftOnly) {
  Fixture f;
  RefreshManager manager(&f.catalog, &f.store);
  auto id = RegisterSkewed(&manager, "orders", "customer_id");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(manager.RecordDelete(*id, 9999).ok());
  auto applied = manager.ApplyPendingDeltas();
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, 1u);
  // The untracked delete counts as churn but invents no tracked value.
  auto score = manager.ScoreColumn(*id);
  ASSERT_TRUE(score.ok());
  EXPECT_GT(score->signals.drift_fraction, 0.0);
  auto stats = f.catalog.GetColumnStatistics("orders", "customer_id");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->num_distinct, 20u);
}

}  // namespace
}  // namespace hops
