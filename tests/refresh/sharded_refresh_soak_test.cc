// ShardedRefreshManager concurrency soak (DESIGN.md §10): multi-producer
// writers fanning global-id deltas across shard-local logs (singles and
// atomic batches), reader threads serving estimates from the merged
// published snapshots, and the RefreshDaemon driving sharded ticks — all at
// once. Run under -DHOPS_SANITIZE=thread in CI (scripts/check.sh --tsan).
//
// Invariants proved from the reader side:
//   1. merged source_version is monotone (one RCU swap per tick, never a
//      torn multi-shard catalog);
//   2. every published column is internally consistent (scalar num_tuples
//      matches its compiled histogram's total mass);
//   3. estimates over the merged snapshot stay finite and nonnegative.
// And from the writer side after the drain: exact mass reconciliation —
// no delta lost or double-applied anywhere across shards.
//
// This suite is its own binary so the sanitizer job can run exactly the
// concurrency-sensitive tests (see tests/CMakeLists.txt).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "estimator/serving.h"
#include "refresh/refresh_daemon.h"
#include "refresh/sharded_refresh_manager.h"

namespace hops {
namespace {

Result<RefreshColumnId> RegisterSkewed(ShardedRefreshManager* manager,
                                       const std::string& table,
                                       const std::string& column) {
  std::vector<int64_t> values;
  std::vector<double> freqs;
  for (int64_t v = 1; v <= 20; ++v) {
    values.push_back(v);
    freqs.push_back(v == 1 ? 400.0 : v == 2 ? 200.0 : 10.0);
  }
  return manager->RegisterColumn(table, column, values, freqs);
}

TEST(ShardedRefreshSoakTest, WritersReadersDaemonAcrossShards) {
  SnapshotStore store;
  ShardedRefreshOptions options;
  options.shards = 3;
  options.refresh.queue_capacity = 256;  // exercise per-shard backpressure
  options.refresh.maintenance.rebuild_drift_fraction = 0.02;  // rebuild often
  ShardedRefreshManager manager(&store, options);

  constexpr int kColumns = 4;
  const char* kTables[kColumns] = {"fact", "dim", "orders", "items"};
  std::vector<RefreshColumnId> ids;
  for (int c = 0; c < kColumns; ++c) {
    auto id = RegisterSkewed(&manager, kTables[c], "key");
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }

  RefreshDaemonOptions daemon_options;
  daemon_options.tick_interval_micros = 200;
  RefreshDaemon daemon(&manager, daemon_options);
  ASSERT_TRUE(daemon.Start().ok());

  constexpr int kWriters = 4;
  constexpr int kSingleOps = 1500;   // per singles writer
  constexpr int kBatches = 500;      // per batch writer (3 records each)
  std::atomic<bool> writers_done{false};
  std::atomic<int> reader_failures{0};

  // Writers 0/1 use the single-record path; writers 2/3 use atomic
  // RecordBatch sub-batches. Each writer owns a fresh value on its column,
  // so maintained mass tracks ideal mass exactly.
  std::vector<int> net_growth(kWriters, 0);
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      const RefreshColumnId column = ids[static_cast<size_t>(w) % kColumns];
      const int64_t owned = 100 + w;
      if (w < 2) {
        int net = 0;
        for (int i = 0; i < kSingleOps; ++i) {
          // Two inserts then a delete: net growth, never below zero.
          if (i % 3 == 2 && net > 0) {
            ASSERT_TRUE(manager.RecordDelete(column, owned).ok());
            --net;
          } else {
            ASSERT_TRUE(manager.RecordInsert(column, owned).ok());
            ++net;
          }
        }
        net_growth[w] = net;
      } else {
        // insert, insert, delete — applied in order, so the owned value
        // never dips below zero; net +1 per batch.
        const std::vector<UpdateRecord> batch = {
            UpdateRecord{column, owned, +1.0},
            UpdateRecord{column, owned, +1.0},
            UpdateRecord{column, owned, -1.0}};
        for (int i = 0; i < kBatches; ++i) {
          ASSERT_TRUE(manager.RecordBatch(batch).ok());
        }
        net_growth[w] = kBatches;
      }
    });
  }

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      uint64_t last_version = 0;
      while (!writers_done.load(std::memory_order_acquire)) {
        std::shared_ptr<const CatalogSnapshot> snapshot = store.Current();
        // (1) Monotone merged publication.
        if (snapshot->source_version() < last_version) {
          ++reader_failures;
          return;
        }
        last_version = snapshot->source_version();
        // (2) Internal consistency of every merged column.
        for (ColumnId id = 0; id < snapshot->num_columns(); ++id) {
          const CompiledColumnStats& stats = snapshot->stats(id);
          if (stats.histogram == nullptr) {
            ++reader_failures;
            return;
          }
          const double mass = stats.histogram->EstimatedTotal();
          if (std::fabs(mass - stats.num_tuples) >
              1e-6 * (1.0 + stats.num_tuples)) {
            ++reader_failures;
            return;
          }
        }
        // (3) Estimates across shard-owned columns stay well-formed.
        auto fact = snapshot->Resolve("fact", "key");
        auto dim = snapshot->Resolve("dim", "key");
        if (!fact.ok() || !dim.ok()) {
          ++reader_failures;
          return;
        }
        std::vector<EstimateSpec> specs;
        specs.push_back(EstimateSpec::Equality(*fact, Value(int64_t{1})));
        specs.push_back(EstimateSpec::Equality(*fact, Value(int64_t{100})));
        specs.push_back(EstimateSpec::Equality(*dim, Value(int64_t{101})));
        specs.push_back(EstimateSpec::Join(*fact, *dim));
        std::vector<Result<double>> estimates =
            EstimateBatch(*snapshot, specs);
        for (const Result<double>& estimate : estimates) {
          if (!estimate.ok() || !std::isfinite(*estimate) || *estimate < 0) {
            ++reader_failures;
            return;
          }
        }
      }
    });
  }

  for (auto& thread : writers) thread.join();
  writers_done.store(true, std::memory_order_release);
  for (auto& thread : readers) thread.join();

  ASSERT_TRUE(daemon.DrainAndStop().ok());
  EXPECT_EQ(reader_failures.load(), 0);
  EXPECT_EQ(manager.pending_update_records(), 0u);

  ShardedRefreshStats stats = manager.stats();
  const uint64_t expected_records =
      2ull * kSingleOps + 2ull * kBatches * 3ull;
  EXPECT_EQ(stats.total.deltas_applied, expected_records);
  EXPECT_EQ(stats.total.unknown_column_records, 0u);
  EXPECT_GE(stats.total.republish_count, 1u);
  EXPECT_GT(stats.total.ticks, 0u);
  EXPECT_EQ(stats.total.log.enqueued, expected_records);
  EXPECT_EQ(stats.total.log.drained, expected_records);

  // Exact mass reconciliation, column by column, from the final published
  // merged snapshot — every shard's drain applied exactly once.
  const double initial_mass = 400.0 + 200.0 + 18 * 10.0;
  double expected_mass[kColumns] = {initial_mass, initial_mass, initial_mass,
                                    initial_mass};
  for (int w = 0; w < kWriters; ++w) {
    expected_mass[w % kColumns] += net_growth[w];
  }
  auto snapshot = store.Current();
  for (int c = 0; c < kColumns; ++c) {
    auto column = snapshot->Resolve(kTables[c], "key");
    ASSERT_TRUE(column.ok());
    EXPECT_NEAR(snapshot->stats(*column).num_tuples, expected_mass[c],
                1e-6 * expected_mass[c])
        << kTables[c];
  }

  // With 2% drift policy under this much churn, rebuilds must have fired.
  EXPECT_GE(stats.total.rebuilds_total, 1u);
}

}  // namespace
}  // namespace hops
