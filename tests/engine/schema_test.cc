#include "engine/schema.h"

#include <gtest/gtest.h>

namespace hops {
namespace {

Schema WorksForSchema() {
  auto s = Schema::Make({{"ename", ValueType::kString},
                         {"dname", ValueType::kString},
                         {"year", ValueType::kInt64}});
  EXPECT_TRUE(s.ok());
  return *std::move(s);
}

TEST(SchemaTest, MakeAndLookup) {
  Schema s = WorksForSchema();
  EXPECT_EQ(s.num_columns(), 3u);
  auto idx = s.ColumnIndex("year");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 2u);
  EXPECT_EQ(s.column(0).name, "ename");
}

TEST(SchemaTest, UnknownColumnIsNotFound) {
  Schema s = WorksForSchema();
  EXPECT_TRUE(s.ColumnIndex("salary").status().IsNotFound());
}

TEST(SchemaTest, RejectsEmptyAndDuplicates) {
  EXPECT_FALSE(Schema::Make({}).ok());
  EXPECT_FALSE(Schema::Make({{"a", ValueType::kInt64},
                             {"a", ValueType::kString}})
                   .ok());
  EXPECT_FALSE(Schema::Make({{"", ValueType::kInt64}}).ok());
}

TEST(SchemaTest, ValidateTupleChecksArityAndTypes) {
  Schema s = WorksForSchema();
  EXPECT_TRUE(s.ValidateTuple({Value("bob"), Value("toy"),
                               Value(int64_t{1990})})
                  .ok());
  EXPECT_TRUE(s.ValidateTuple({Value("bob"), Value("toy")})
                  .IsInvalidArgument());
  EXPECT_TRUE(s.ValidateTuple({Value("bob"), Value(int64_t{5}),
                               Value(int64_t{1990})})
                  .IsInvalidArgument());
}

TEST(SchemaTest, ToStringListsColumns) {
  Schema s = WorksForSchema();
  std::string str = s.ToString();
  EXPECT_NE(str.find("ename string"), std::string::npos);
  EXPECT_NE(str.find("year int64"), std::string::npos);
}

}  // namespace
}  // namespace hops
