#include "engine/csv_load.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "engine/hash_agg.h"

namespace hops {
namespace {

TEST(CsvLoadTest, InfersTypesPerColumn) {
  auto doc = ParseCsv("dept,year\ntoy,1990\nshoe,1991\ntoy,1990\n");
  ASSERT_TRUE(doc.ok());
  auto rel = RelationFromCsv("WorksFor", *doc);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->name(), "WorksFor");
  EXPECT_EQ(rel->schema().column(0).type, ValueType::kString);
  EXPECT_EQ(rel->schema().column(1).type, ValueType::kInt64);
  EXPECT_EQ(rel->num_tuples(), 3u);
  EXPECT_EQ(rel->tuple(0)[0].AsString(), "toy");
  EXPECT_EQ(rel->tuple(1)[1].AsInt64(), 1991);
}

TEST(CsvLoadTest, EmptyCellsLoadAsDefaults) {
  auto doc = ParseCsv("i,s\n,hello\n7,\n");
  ASSERT_TRUE(doc.ok());
  auto rel = RelationFromCsv("R", *doc);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->tuple(0)[0].AsInt64(), 0);
  EXPECT_EQ(rel->tuple(1)[1].AsString(), "");
}

TEST(CsvLoadTest, LoadCsvRelationNamesAfterFile) {
  std::string path = testing::TempDir() + "/orders.csv";
  {
    std::ofstream out(path);
    out << "cust,item\n1,100\n1,200\n2,100\n";
  }
  auto rel = LoadCsvRelation(path);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->name(), "orders");
  EXPECT_EQ(rel->num_tuples(), 3u);
  auto named = LoadCsvRelation(path, "Orders");
  ASSERT_TRUE(named.ok());
  EXPECT_EQ(named->name(), "Orders");
  std::remove(path.c_str());
}

TEST(CsvLoadTest, AllEmptyColumnInfersInt64Zeros) {
  auto doc = ParseCsv("x,y\n,a\n,b\n");
  ASSERT_TRUE(doc.ok());
  auto rel = RelationFromCsv("R", *doc);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->schema().column(0).type, ValueType::kInt64);
  EXPECT_EQ(rel->tuple(0)[0].AsInt64(), 0);
  EXPECT_EQ(rel->tuple(1)[0].AsInt64(), 0);
}

TEST(CsvLoadTest, HeaderOnlyCsvLoadsEmptyRelation) {
  auto doc = ParseCsv("a,b\n");
  ASSERT_TRUE(doc.ok());
  auto rel = RelationFromCsv("R", *doc);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->num_tuples(), 0u);
  EXPECT_EQ(rel->schema().num_columns(), 2u);
}

TEST(CsvLoadTest, MissingFileFails) {
  EXPECT_TRUE(LoadCsvRelation("/no/such.csv").status().IsNotFound());
}

TEST(CsvLoadTest, LoadedRelationFeedsStatisticsPipeline) {
  auto doc = ParseCsv("v\n1\n1\n1\n2\n2\n3\n");
  ASSERT_TRUE(doc.ok());
  auto rel = RelationFromCsv("R", *doc);
  ASSERT_TRUE(rel.ok());
  // The loaded relation behaves exactly like a hand-built one downstream.
  auto set = ComputeFrequencySet(*rel, "v");
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->Sorted(), (std::vector<Frequency>{1, 2, 3}));
}

}  // namespace
}  // namespace hops
