#include "engine/predicate.h"

#include <gtest/gtest.h>

namespace hops {
namespace {

Relation SampleRelation() {
  auto rel = Relation::Make(
      "R", *Schema::Make({{"dept", ValueType::kString},
                          {"year", ValueType::kInt64},
                          {"salary", ValueType::kInt64}}));
  EXPECT_TRUE(rel.ok());
  struct Row {
    const char* d;
    int64_t y, s;
  };
  for (Row r : std::initializer_list<Row>{{"toy", 1990, 40},
                                          {"toy", 1991, 55},
                                          {"toy", 1992, 70},
                                          {"shoe", 1990, 45},
                                          {"shoe", 1992, 60},
                                          {"candy", 1993, 30}}) {
    EXPECT_TRUE(rel->Append({Value(r.d), Value(r.y), Value(r.s)}).ok());
  }
  return *std::move(rel);
}

TEST(PredicateParseTest, SingleComparison) {
  auto p = Predicate::Parse("year = 1990");
  ASSERT_TRUE(p.ok()) << p.status();
  ASSERT_EQ(p->comparisons().size(), 1u);
  EXPECT_EQ(p->comparisons()[0].column, "year");
  EXPECT_EQ(p->comparisons()[0].op, PredicateOp::kEqual);
  EXPECT_EQ(p->comparisons()[0].literal, Value(int64_t{1990}));
}

TEST(PredicateParseTest, ConjunctionWithAllOperators) {
  auto p = Predicate::Parse(
      "a = 1 AND b != 2 AND c < 3 AND d <= 4 AND e > 5 AND f >= -6");
  ASSERT_TRUE(p.ok()) << p.status();
  ASSERT_EQ(p->comparisons().size(), 6u);
  EXPECT_EQ(p->comparisons()[1].op, PredicateOp::kNotEqual);
  EXPECT_EQ(p->comparisons()[2].op, PredicateOp::kLess);
  EXPECT_EQ(p->comparisons()[3].op, PredicateOp::kLessEqual);
  EXPECT_EQ(p->comparisons()[4].op, PredicateOp::kGreater);
  EXPECT_EQ(p->comparisons()[5].op, PredicateOp::kGreaterEqual);
  EXPECT_EQ(p->comparisons()[5].literal, Value(int64_t{-6}));
}

TEST(PredicateParseTest, StringLiterals) {
  auto p = Predicate::Parse("dept = 'toy store'");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->comparisons()[0].literal, Value("toy store"));
}

TEST(PredicateParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(Predicate::Parse("").ok());
  EXPECT_FALSE(Predicate::Parse("a =").ok());
  EXPECT_FALSE(Predicate::Parse("= 3").ok());
  EXPECT_FALSE(Predicate::Parse("a ~ 3").ok());
  EXPECT_FALSE(Predicate::Parse("a = 'unterminated").ok());
  EXPECT_FALSE(Predicate::Parse("a = 1 OR b = 2").ok());
  EXPECT_FALSE(Predicate::Parse("a = 1 AND").ok());
}

TEST(PredicateParseTest, ToStringRoundTrips) {
  auto p = Predicate::Parse("dept = 'toy' AND year >= 1991");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->ToString(), "dept = 'toy' AND year >= 1991");
  auto reparsed = Predicate::Parse(p->ToString());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->ToString(), p->ToString());
}

TEST(ComparisonTest, OrderedMismatchedTypesNeverMatch) {
  Comparison cmp{"c", PredicateOp::kLess, Value(int64_t{5}), {}};
  EXPECT_FALSE(cmp.Matches(Value("abc")));
  Comparison eq{"c", PredicateOp::kEqual, Value(int64_t{5}), {}};
  EXPECT_FALSE(eq.Matches(Value("5")));
  Comparison ne{"c", PredicateOp::kNotEqual, Value(int64_t{5}), {}};
  EXPECT_TRUE(ne.Matches(Value("5")));  // different type => not equal
}

TEST(CountWhereTest, MatchesHandCounts) {
  Relation rel = SampleRelation();
  struct Case {
    const char* text;
    double expected;
  };
  for (Case c : std::initializer_list<Case>{
           {"dept = 'toy'", 3},
           {"dept != 'toy'", 3},
           {"year >= 1992", 3},
           {"salary < 50", 3},
           {"dept = 'toy' AND year >= 1991", 2},
           {"dept = 'shoe' AND salary > 50", 1},
           {"dept = 'toy' AND dept = 'shoe'", 0},
       }) {
    auto p = Predicate::Parse(c.text);
    ASSERT_TRUE(p.ok()) << c.text;
    auto count = CountWhere(rel, *p);
    ASSERT_TRUE(count.ok()) << c.text;
    EXPECT_DOUBLE_EQ(*count, c.expected) << c.text;
  }
}

TEST(PredicateParseTest, InLists) {
  auto p = Predicate::Parse("year IN (1990, 1992) AND dept = 'toy'");
  ASSERT_TRUE(p.ok()) << p.status();
  ASSERT_EQ(p->comparisons().size(), 2u);
  EXPECT_EQ(p->comparisons()[0].op, PredicateOp::kIn);
  ASSERT_EQ(p->comparisons()[0].in_list.size(), 2u);
  EXPECT_EQ(p->comparisons()[0].in_list[1], Value(int64_t{1992}));
  EXPECT_EQ(p->ToString(), "year IN (1990, 1992) AND dept = 'toy'");
}

TEST(PredicateParseTest, InListMalformed) {
  EXPECT_FALSE(Predicate::Parse("a IN ()").ok());
  EXPECT_FALSE(Predicate::Parse("a IN (1, 2").ok());
  EXPECT_FALSE(Predicate::Parse("a IN 1, 2)").ok());
  // "IN" as a prefix of an identifier must not be treated as the keyword.
  auto p = Predicate::Parse("INx = 3");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->comparisons()[0].column, "INx");
}

TEST(CountWhereTest, InListCounts) {
  Relation rel = SampleRelation();
  auto p = Predicate::Parse("dept IN ('toy', 'candy')");
  ASSERT_TRUE(p.ok());
  auto count = CountWhere(rel, *p);
  ASSERT_TRUE(count.ok());
  EXPECT_DOUBLE_EQ(*count, 4.0);
  auto mixed = Predicate::Parse("year IN (1990, 1993) AND salary < 50");
  ASSERT_TRUE(mixed.ok());
  count = CountWhere(rel, *mixed);
  ASSERT_TRUE(count.ok());
  EXPECT_DOUBLE_EQ(*count, 3.0);  // (toy,1990,40), (shoe,1990,45), (candy,1993,30)
}

TEST(CountWhereTest, UnknownColumnFails) {
  Relation rel = SampleRelation();
  auto p = Predicate::Parse("bogus = 1");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(CountWhere(rel, *p).status().IsNotFound());
}

}  // namespace
}  // namespace hops
