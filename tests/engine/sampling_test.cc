#include "engine/sampling.h"

#include <gtest/gtest.h>

namespace hops {
namespace {

// A relation where value v appears `counts[v]` times.
Relation Skewed(const std::vector<size_t>& counts) {
  auto schema = Schema::Make({{"a", ValueType::kInt64}});
  auto rel = Relation::Make("R", *std::move(schema));
  EXPECT_TRUE(rel.ok());
  for (size_t v = 0; v < counts.size(); ++v) {
    for (size_t i = 0; i < counts[v]; ++i) {
      rel->AppendUnchecked({Value(static_cast<int64_t>(v))});
    }
  }
  return *std::move(rel);
}

TEST(SamplingTest, FindsDominantValues) {
  // Value 0: 5000 tuples, value 1: 2000, the rest 10 each (Zipf-like).
  std::vector<size_t> counts = {5000, 2000};
  for (int i = 0; i < 50; ++i) counts.push_back(10);
  Relation rel = Skewed(counts);
  auto top = EstimateTopFrequenciesBySampling(rel, "a", /*sample_size=*/500,
                                              /*top_k=*/2, /*seed=*/17);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 2u);
  EXPECT_EQ((*top)[0].value.AsInt64(), 0);
  EXPECT_EQ((*top)[1].value.AsInt64(), 1);
  // Extrapolated frequency within 30% of truth for the heavy hitter.
  EXPECT_NEAR((*top)[0].estimated_frequency, 5000.0, 1500.0);
}

TEST(SamplingTest, FailsToSeparateLowFrequencies) {
  // The paper's caveat: sampling cannot identify the *lowest* frequencies.
  // Reverse-Zipf: many values at 100, two rare values at 1 and 2 tuples.
  std::vector<size_t> counts(50, 100);
  counts.push_back(1);
  counts.push_back(2);
  Relation rel = Skewed(counts);
  auto top = EstimateTopFrequenciesBySampling(rel, "a", 100, 52, 17);
  ASSERT_TRUE(top.ok());
  // The two rare values almost surely never show up in a 100-tuple sample
  // (each is ~0.02%-0.04% of the data), so they cannot be ranked.
  bool saw_rare = false;
  for (const auto& sf : *top) {
    if (sf.value.AsInt64() >= 50) saw_rare = true;
  }
  EXPECT_FALSE(saw_rare);
}

TEST(SamplingTest, SampleSizeClampedToRelation) {
  Relation rel = Skewed({3, 2});
  auto top = EstimateTopFrequenciesBySampling(rel, "a", 100, 2, 1);
  ASSERT_TRUE(top.ok());
  // Full-population "sample": estimates are exact.
  EXPECT_DOUBLE_EQ((*top)[0].estimated_frequency, 3.0);
  EXPECT_DOUBLE_EQ((*top)[1].estimated_frequency, 2.0);
}

TEST(SamplingTest, Validation) {
  Relation rel = Skewed({1});
  EXPECT_FALSE(EstimateTopFrequenciesBySampling(rel, "nope", 1, 1, 1).ok());
  EXPECT_TRUE(EstimateTopFrequenciesBySampling(rel, "a", 0, 1, 1)
                  .status()
                  .IsInvalidArgument());
  auto schema = Schema::Make({{"a", ValueType::kInt64}});
  auto empty = Relation::Make("E", *std::move(schema));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(EstimateTopFrequenciesBySampling(*empty, "a", 1, 1, 1)
                  .status()
                  .IsInvalidArgument());
}

TEST(SamplingTest, DeterministicForSeed) {
  Relation rel = Skewed({100, 50, 25, 10, 5});
  auto a = EstimateTopFrequenciesBySampling(rel, "a", 30, 3, 9);
  auto b = EstimateTopFrequenciesBySampling(rel, "a", 30, 3, 9);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].value, (*b)[i].value);
    EXPECT_EQ((*a)[i].sample_count, (*b)[i].sample_count);
  }
}

TEST(SamplingTest, RefinementPassCountsExactly) {
  Relation rel = Skewed({500, 300, 7});
  std::vector<Value> candidates = {Value(int64_t{0}), Value(int64_t{2}),
                                   Value(int64_t{99})};
  auto exact = CountExactFrequencies(rel, "a", candidates);
  ASSERT_TRUE(exact.ok());
  ASSERT_EQ(exact->size(), 3u);
  EXPECT_DOUBLE_EQ((*exact)[0].frequency, 500.0);
  EXPECT_DOUBLE_EQ((*exact)[1].frequency, 7.0);
  EXPECT_DOUBLE_EQ((*exact)[2].frequency, 0.0);  // absent value
}

TEST(SamplingTest, SamplePlusRefineMatchesTruthOnHeavyHitters) {
  // The DB2-style pipeline: sample to *identify* candidates, then one exact
  // scan to count them.
  std::vector<size_t> counts = {4000, 2500, 1000};
  for (int i = 0; i < 40; ++i) counts.push_back(20);
  Relation rel = Skewed(counts);
  auto top = EstimateTopFrequenciesBySampling(rel, "a", 800, 3, 13);
  ASSERT_TRUE(top.ok());
  std::vector<Value> candidates;
  for (const auto& sf : *top) candidates.push_back(sf.value);
  auto exact = CountExactFrequencies(rel, "a", candidates);
  ASSERT_TRUE(exact.ok());
  // The three heavy hitters are identified and counted exactly.
  double sum = 0;
  for (const auto& vf : *exact) sum += vf.frequency;
  EXPECT_DOUBLE_EQ(sum, 7500.0);
}

}  // namespace
}  // namespace hops
