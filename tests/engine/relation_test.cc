#include "engine/relation.h"

#include <gtest/gtest.h>

namespace hops {
namespace {

Relation MakeWorksFor() {
  auto schema = Schema::Make({{"dname", ValueType::kString},
                              {"year", ValueType::kInt64}});
  EXPECT_TRUE(schema.ok());
  auto rel = Relation::Make("WorksFor", *std::move(schema));
  EXPECT_TRUE(rel.ok());
  return *std::move(rel);
}

TEST(RelationTest, MakeValidation) {
  auto schema = Schema::Make({{"a", ValueType::kInt64}});
  ASSERT_TRUE(schema.ok());
  EXPECT_FALSE(Relation::Make("", *schema).ok());
  auto ok = Relation::Make("R", *schema);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->name(), "R");
  EXPECT_EQ(ok->num_tuples(), 0u);
}

TEST(RelationTest, AppendValidatesSchema) {
  Relation rel = MakeWorksFor();
  EXPECT_TRUE(rel.Append({Value("toy"), Value(int64_t{1990})}).ok());
  EXPECT_TRUE(
      rel.Append({Value(int64_t{3}), Value(int64_t{1990})})
          .IsInvalidArgument());
  EXPECT_TRUE(rel.Append({Value("toy")}).IsInvalidArgument());
  EXPECT_EQ(rel.num_tuples(), 1u);
}

TEST(RelationTest, AppendUncheckedSkipsValidation) {
  Relation rel = MakeWorksFor();
  rel.AppendUnchecked({Value("toy"), Value(int64_t{1990})});
  EXPECT_EQ(rel.num_tuples(), 1u);
}

TEST(RelationTest, ValueAtResolvesColumn) {
  Relation rel = MakeWorksFor();
  ASSERT_TRUE(rel.Append({Value("shoe"), Value(int64_t{1993})}).ok());
  auto v = rel.ValueAt(0, "year");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt64(), 1993);
  EXPECT_TRUE(rel.ValueAt(0, "nope").status().IsNotFound());
  EXPECT_TRUE(rel.ValueAt(5, "year").status().IsOutOfRange());
}

TEST(RelationTest, TuplesAccessor) {
  Relation rel = MakeWorksFor();
  ASSERT_TRUE(rel.Append({Value("toy"), Value(int64_t{1990})}).ok());
  ASSERT_TRUE(rel.Append({Value("candy"), Value(int64_t{1991})}).ok());
  EXPECT_EQ(rel.tuples().size(), 2u);
  EXPECT_EQ(rel.tuple(1)[0].AsString(), "candy");
}

}  // namespace
}  // namespace hops
