#include "engine/catalog.h"

#include <gtest/gtest.h>

namespace hops {
namespace {

ColumnStatistics SampleStats() {
  ColumnStatistics stats;
  stats.num_tuples = 100.0;
  stats.num_distinct = 10;
  stats.min_value = 1;
  stats.max_value = 10;
  stats.histogram =
      *CatalogHistogram::Make({{1, 30.0}, {2, 20.0}}, 6.25, 8);
  return stats;
}

TEST(CatalogTest, PutGetRoundTrip) {
  Catalog catalog;
  ASSERT_TRUE(catalog.PutColumnStatistics("R", "a", SampleStats()).ok());
  auto got = catalog.GetColumnStatistics("R", "a");
  ASSERT_TRUE(got.ok());
  EXPECT_DOUBLE_EQ(got->num_tuples, 100.0);
  EXPECT_EQ(got->num_distinct, 10u);
  EXPECT_EQ(got->min_value, 1);
  EXPECT_EQ(got->max_value, 10);
  EXPECT_DOUBLE_EQ(got->histogram.LookupFrequency(1), 30.0);
  EXPECT_DOUBLE_EQ(got->histogram.LookupFrequency(5), 6.25);
}

TEST(CatalogTest, MissingEntryIsNotFound) {
  Catalog catalog;
  EXPECT_TRUE(
      catalog.GetColumnStatistics("R", "a").status().IsNotFound());
  EXPECT_FALSE(catalog.HasColumnStatistics("R", "a"));
}

TEST(CatalogTest, PutReplacesExisting) {
  Catalog catalog;
  ASSERT_TRUE(catalog.PutColumnStatistics("R", "a", SampleStats()).ok());
  ColumnStatistics updated = SampleStats();
  updated.num_tuples = 500.0;
  ASSERT_TRUE(catalog.PutColumnStatistics("R", "a", updated).ok());
  auto got = catalog.GetColumnStatistics("R", "a");
  ASSERT_TRUE(got.ok());
  EXPECT_DOUBLE_EQ(got->num_tuples, 500.0);
  EXPECT_EQ(catalog.ListEntries().size(), 1u);
}

TEST(CatalogTest, DropRemovesEntry) {
  Catalog catalog;
  ASSERT_TRUE(catalog.PutColumnStatistics("R", "a", SampleStats()).ok());
  ASSERT_TRUE(catalog.DropColumnStatistics("R", "a").ok());
  EXPECT_FALSE(catalog.HasColumnStatistics("R", "a"));
  EXPECT_TRUE(catalog.DropColumnStatistics("R", "a").IsNotFound());
}

TEST(CatalogTest, RejectsEmptyNames) {
  Catalog catalog;
  EXPECT_TRUE(catalog.PutColumnStatistics("", "a", SampleStats())
                  .IsInvalidArgument());
  EXPECT_TRUE(catalog.PutColumnStatistics("R", "", SampleStats())
                  .IsInvalidArgument());
}

TEST(CatalogTest, ListEntriesSorted) {
  Catalog catalog;
  ASSERT_TRUE(catalog.PutColumnStatistics("S", "b", SampleStats()).ok());
  ASSERT_TRUE(catalog.PutColumnStatistics("R", "a", SampleStats()).ok());
  ASSERT_TRUE(catalog.PutColumnStatistics("R", "c", SampleStats()).ok());
  auto entries = catalog.ListEntries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0], (std::pair<std::string, std::string>{"R", "a"}));
  EXPECT_EQ(entries[1], (std::pair<std::string, std::string>{"R", "c"}));
  EXPECT_EQ(entries[2], (std::pair<std::string, std::string>{"S", "b"}));
}

TEST(CatalogTest, TotalEncodedBytesTracksStorage) {
  Catalog catalog;
  EXPECT_EQ(catalog.TotalEncodedBytes(), 0u);
  ASSERT_TRUE(catalog.PutColumnStatistics("R", "a", SampleStats()).ok());
  size_t one = catalog.TotalEncodedBytes();
  EXPECT_GT(one, 0u);
  ASSERT_TRUE(catalog.PutColumnStatistics("R", "b", SampleStats()).ok());
  EXPECT_EQ(catalog.TotalEncodedBytes(), 2 * one);
}

TEST(CatalogTest, SerializeDeserializeRoundTrip) {
  Catalog catalog;
  ASSERT_TRUE(catalog.PutColumnStatistics("R", "a", SampleStats()).ok());
  ColumnStatistics other = SampleStats();
  other.num_tuples = 7;
  other.min_value = -5;
  ASSERT_TRUE(catalog.PutColumnStatistics("S", "b", other).ok());

  std::string bytes = catalog.Serialize();
  auto restored = Catalog::Deserialize(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->ListEntries(), catalog.ListEntries());
  auto got = restored->GetColumnStatistics("S", "b");
  ASSERT_TRUE(got.ok());
  EXPECT_DOUBLE_EQ(got->num_tuples, 7.0);
  EXPECT_EQ(got->min_value, -5);
  EXPECT_DOUBLE_EQ(got->histogram.LookupFrequency(1), 30.0);
}

TEST(CatalogTest, SerializeEmptyCatalog) {
  Catalog catalog;
  auto restored = Catalog::Deserialize(catalog.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->ListEntries().empty());
}

TEST(CatalogTest, DeserializeRejectsCorruptBytes) {
  Catalog catalog;
  ASSERT_TRUE(catalog.PutColumnStatistics("R", "a", SampleStats()).ok());
  std::string bytes = catalog.Serialize();
  EXPECT_FALSE(Catalog::Deserialize("").ok());
  EXPECT_FALSE(
      Catalog::Deserialize(bytes.substr(0, bytes.size() - 3)).ok());
  std::string bad = bytes;
  bad[0] = 'Z';
  EXPECT_FALSE(Catalog::Deserialize(bad).ok());
  EXPECT_FALSE(Catalog::Deserialize(bytes + "x").ok());
}

TEST(CatalogKeyTest, IntsMapToThemselvesStringsToHashes) {
  EXPECT_EQ(CatalogKeyFor(Value(int64_t{-42})), -42);
  EXPECT_EQ(CatalogKeyFor(Value("toy")), CatalogKeyFor(Value("toy")));
  EXPECT_NE(CatalogKeyFor(Value("toy")), CatalogKeyFor(Value("shoe")));
}

}  // namespace
}  // namespace hops
