#include "engine/hash_agg.h"

#include <gtest/gtest.h>

namespace hops {
namespace {

Relation MakeWorksFor() {
  auto schema = Schema::Make({{"dname", ValueType::kString},
                              {"year", ValueType::kInt64}});
  auto rel = Relation::Make("WorksFor", *std::move(schema));
  EXPECT_TRUE(rel.ok());
  // toy x3, shoe x2, candy x1; years 1990 x2, 1991 x3, 1992 x1.
  struct Row {
    const char* d;
    int64_t y;
  };
  for (Row r : std::initializer_list<Row>{{"toy", 1990},
                                          {"toy", 1991},
                                          {"toy", 1991},
                                          {"shoe", 1990},
                                          {"shoe", 1992},
                                          {"candy", 1991}}) {
    EXPECT_TRUE(rel->Append({Value(r.d), Value(r.y)}).ok());
  }
  return *std::move(rel);
}

TEST(HashAggTest, FrequencyTableCountsAndSorts) {
  Relation rel = MakeWorksFor();
  auto table = ComputeFrequencyTable(rel, "dname");
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->size(), 3u);
  // Sorted by value: candy, shoe, toy.
  EXPECT_EQ((*table)[0].value.AsString(), "candy");
  EXPECT_DOUBLE_EQ((*table)[0].frequency, 1.0);
  EXPECT_EQ((*table)[1].value.AsString(), "shoe");
  EXPECT_DOUBLE_EQ((*table)[1].frequency, 2.0);
  EXPECT_EQ((*table)[2].value.AsString(), "toy");
  EXPECT_DOUBLE_EQ((*table)[2].frequency, 3.0);
}

TEST(HashAggTest, FrequencyTableUnknownColumnFails) {
  Relation rel = MakeWorksFor();
  EXPECT_TRUE(ComputeFrequencyTable(rel, "nope").status().IsNotFound());
}

TEST(HashAggTest, FrequencySetDropsValueAssociation) {
  Relation rel = MakeWorksFor();
  auto set = ComputeFrequencySet(rel, "year");
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->size(), 3u);
  EXPECT_DOUBLE_EQ(set->Total(), 6.0);
  EXPECT_EQ(set->Sorted(), (std::vector<Frequency>{1, 2, 3}));
}

TEST(HashAggTest, TwoColumnFrequenciesBuildDenseMatrix) {
  Relation rel = MakeWorksFor();
  auto two = ComputeTwoColumnFrequencies(rel, "dname", "year");
  ASSERT_TRUE(two.ok());
  ASSERT_EQ(two->row_domain.size(), 3u);  // candy, shoe, toy
  ASSERT_EQ(two->col_domain.size(), 3u);  // 1990, 1991, 1992
  EXPECT_EQ(two->matrix.rows(), 3u);
  EXPECT_EQ(two->matrix.cols(), 3u);
  // toy (row 2) x 1991 (col 1) appears twice.
  EXPECT_DOUBLE_EQ(two->matrix.At(2, 1), 2.0);
  // candy x 1990 never.
  EXPECT_DOUBLE_EQ(two->matrix.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(two->matrix.Total(), 6.0);
}

TEST(HashAggTest, TwoColumnRejectsSameColumnAndEmpty) {
  Relation rel = MakeWorksFor();
  EXPECT_TRUE(ComputeTwoColumnFrequencies(rel, "dname", "dname")
                  .status()
                  .IsInvalidArgument());
  auto schema = Schema::Make({{"a", ValueType::kInt64},
                              {"b", ValueType::kInt64}});
  auto empty = Relation::Make("E", *std::move(schema));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(ComputeTwoColumnFrequencies(*empty, "a", "b")
                  .status()
                  .IsInvalidArgument());
}

TEST(HashAggTest, FrequencySetMatchesRelationSize) {
  Relation rel = MakeWorksFor();
  for (const char* col : {"dname", "year"}) {
    auto set = ComputeFrequencySet(rel, col);
    ASSERT_TRUE(set.ok());
    EXPECT_DOUBLE_EQ(set->Total(),
                     static_cast<double>(rel.num_tuples()));
  }
}

}  // namespace
}  // namespace hops
