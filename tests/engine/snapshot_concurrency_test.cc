// Concurrency contract of the snapshot serving layer, exercised under
// ThreadSanitizer by scripts/run_benchmarks.sh (-DHOPS_SANITIZE=thread):
// readers acquire snapshots and estimate while a writer keeps re-analyzing
// and republishing — readers never block, never see a torn snapshot, and
// always observe internally consistent statistics.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "engine/catalog.h"
#include "engine/catalog_snapshot.h"
#include "estimator/serving.h"
#include "util/thread_pool.h"

namespace hops {
namespace {

// Statistics for generation g: every frequency is g+1, so any estimate
// derived from a single snapshot is internally consistent iff all values
// come from one generation.
ColumnStatistics GenerationStats(uint64_t generation) {
  const double f = static_cast<double>(generation + 1);
  ColumnStatistics stats;
  stats.num_distinct = 14;
  stats.min_value = 0;
  stats.max_value = 13;
  std::vector<std::pair<int64_t, double>> entries;
  for (int64_t v = 0; v < 4; ++v) entries.emplace_back(v, f);
  stats.histogram = *CatalogHistogram::Make(std::move(entries), f, 10);
  stats.num_tuples = stats.histogram.EstimatedTotal();
  return stats;
}

TEST(SnapshotConcurrencyTest, ReadersNeverSeeTornSnapshots) {
  constexpr int kReaders = 4;
  constexpr uint64_t kGenerations = 200;

  Catalog catalog;
  catalog.PutColumnStatistics("t", "a", GenerationStats(0)).Check();
  catalog.PutColumnStatistics("t", "b", GenerationStats(0)).Check();
  SnapshotStore store;
  ASSERT_TRUE(store.RepublishFrom(catalog).ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  std::atomic<bool> failed{false};

  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      uint64_t last_version = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        std::shared_ptr<const CatalogSnapshot> snap = store.Current();
        // Published versions are monotone per reader.
        if (snap->source_version() < last_version) failed = true;
        last_version = snap->source_version();
        auto a = snap->Resolve("t", "a");
        auto b = snap->Resolve("t", "b");
        if (!a.ok() || !b.ok()) {
          failed = true;
          continue;
        }
        // All statistics inside one snapshot come from one generation:
        // every lookup returns the same frequency.
        const double fa = snap->stats(*a).histogram->LookupFrequency(1);
        const double fb = snap->stats(*b).histogram->LookupFrequency(99);
        auto eq = EstimateOne(*snap,
                              EstimateSpec::Equality(*a, Value(int64_t{2})));
        if (!eq.ok() || fa != fb || *eq != fa) failed = true;
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Writer: mutate the catalog (two puts = a torn state between them) and
  // republish. Readers must only ever observe the compiled, consistent
  // snapshots, never the in-between catalog state.
  for (uint64_t g = 1; g <= kGenerations; ++g) {
    catalog.PutColumnStatistics("t", "a", GenerationStats(g)).Check();
    catalog.PutColumnStatistics("t", "b", GenerationStats(g)).Check();
    ASSERT_TRUE(store.RepublishFrom(catalog).ok());
  }
  // On a single-CPU machine the writer can finish before any reader is
  // scheduled; keep serving until at least one full read has completed.
  while (reads.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }
  stop = true;
  for (std::thread& t : readers) t.join();

  EXPECT_FALSE(failed.load());
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(store.Current()->stats(*store.Current()->Resolve("t", "a"))
                .histogram->LookupFrequency(1),
            static_cast<double>(kGenerations + 1));
}

TEST(SnapshotConcurrencyTest, ConcurrentBatchesShareOneSnapshot) {
  Catalog catalog;
  catalog.PutColumnStatistics("t", "a", GenerationStats(7)).Check();
  SnapshotStore store;
  ASSERT_TRUE(store.RepublishFrom(catalog).ok());
  std::shared_ptr<const CatalogSnapshot> snap = store.Current();
  const ColumnId id = *snap->Resolve("t", "a");

  std::vector<EstimateSpec> specs;
  for (int64_t v = 0; v < 64; ++v) {
    specs.push_back(EstimateSpec::Equality(id, Value(v % 14)));
  }
  // Two concurrent batches over the same immutable snapshot while a writer
  // republishes: estimates stay consistent because the snapshot never
  // mutates underneath them.
  ThreadPool pool(3);
  std::vector<Result<double>> batch1, batch2;
  std::thread writer([&] {
    for (uint64_t g = 0; g < 50; ++g) {
      catalog.PutColumnStatistics("t", "a", GenerationStats(g)).Check();
      store.RepublishFrom(catalog).status().Check();
    }
  });
  std::thread t1([&] { batch1 = EstimateBatch(*snap, specs, &pool); });
  std::thread t2([&] { batch2 = EstimateBatch(*snap, specs, &pool); });
  t1.join();
  t2.join();
  writer.join();

  ASSERT_EQ(batch1.size(), specs.size());
  ASSERT_EQ(batch2.size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    ASSERT_TRUE(batch1[i].ok());
    ASSERT_TRUE(batch2[i].ok());
    EXPECT_EQ(*batch1[i], *batch2[i]);
    EXPECT_EQ(*batch1[i], 8.0);  // generation 7 -> frequency 8 everywhere
  }
}

TEST(SnapshotConcurrencyTest, CacheHitsStayExactDuringRepublish) {
  // The §12 estimate cache under contention: several threads run the same
  // batch against one shared snapshot, so every slot sees racing CAS claims,
  // pending tags, and concurrent hits, while a writer keeps republishing
  // (retiring other snapshots — invalidation is RCU retirement, so this
  // must never touch the cache the readers hold). Every result from every
  // thread and round must carry the exact bits of the uncached EstimateOne
  // reference.
  constexpr int kThreads = 4;
  constexpr int kRounds = 25;

  Catalog catalog;
  catalog.PutColumnStatistics("t", "a", GenerationStats(3)).Check();
  catalog.PutColumnStatistics("t", "b", GenerationStats(3)).Check();
  SnapshotStore store;
  ASSERT_TRUE(store.RepublishFrom(catalog).ok());
  std::shared_ptr<const CatalogSnapshot> snap = store.Current();
  ASSERT_GT(snap->estimate_cache().capacity(), 0u);
  const ColumnId a = *snap->Resolve("t", "a");
  const ColumnId b = *snap->Resolve("t", "b");

  std::vector<EstimateSpec> specs;
  for (int64_t v = -4; v < 20; ++v) {
    specs.push_back(EstimateSpec::Equality(a, Value(v)));
    specs.push_back(EstimateSpec::NotEquals(b, Value(v)));
    specs.push_back(EstimateSpec::Range(b, RangeBounds{v, v + 5, true, false}));
  }
  specs.push_back(EstimateSpec::Join(a, b));

  std::vector<double> reference(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    reference[i] = *EstimateOne(*snap, specs[i]);
  }

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        const std::vector<Result<double>> got = EstimateBatch(*snap, specs);
        for (size_t i = 0; i < specs.size(); ++i) {
          if (!got[i].ok() || *got[i] != reference[i]) failed = true;
        }
      }
    });
  }
  std::thread writer([&] {
    for (uint64_t g = 0; g < 40; ++g) {
      catalog.PutColumnStatistics("t", "a", GenerationStats(g)).Check();
      store.RepublishFrom(catalog).status().Check();
    }
  });
  for (std::thread& t : threads) t.join();
  writer.join();

  EXPECT_FALSE(failed.load());
  // The shared snapshot (and its cache) survived the republishes untouched.
  const std::vector<Result<double>> after = EstimateBatch(*snap, specs);
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(*after[i], reference[i]) << i;
  }
}

}  // namespace
}  // namespace hops
