#include "engine/joint_statistics.h"

#include <gtest/gtest.h>

namespace hops {
namespace {

// A relation with strongly correlated columns: b == a for most tuples.
Relation Correlated(size_t n) {
  auto schema = Schema::Make({{"a", ValueType::kInt64},
                              {"b", ValueType::kInt64}});
  auto rel = Relation::Make("R", *std::move(schema));
  EXPECT_TRUE(rel.ok());
  for (size_t i = 0; i < n; ++i) {
    int64_t a = static_cast<int64_t>(i % 10);
    int64_t b = (i % 17 == 0) ? (a + 1) % 10 : a;  // mostly b == a
    rel->AppendUnchecked({Value(a), Value(b)});
  }
  return *std::move(rel);
}

TEST(JointStatisticsTest, PairKeyIsOrderSensitiveAndStable) {
  Value a(int64_t{1}), b(int64_t{2});
  EXPECT_EQ(CatalogKeyForPair(a, b), CatalogKeyForPair(a, b));
  EXPECT_NE(CatalogKeyForPair(a, b), CatalogKeyForPair(b, a));
}

TEST(JointStatisticsTest, ColumnKeyFormat) {
  EXPECT_EQ(JointStatisticsColumnKey("a", "b"), "a+b");
}

TEST(JointStatisticsTest, AnalyzePairCountsObservedPairs) {
  Relation rel = Correlated(1000);
  auto stats = AnalyzeColumnPair(rel, "a", "b");
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_DOUBLE_EQ(stats->num_tuples, 1000.0);
  // Pairs observed: (a, a) for all 10 a's plus (a, a+1) for some.
  EXPECT_GE(stats->num_distinct, 10u);
  EXPECT_LE(stats->num_distinct, 20u);
  EXPECT_NEAR(stats->histogram.EstimatedTotal(), 1000.0, 1.0);
}

TEST(JointStatisticsTest, JointBeatsIndependenceOnCorrelatedData) {
  Relation rel = Correlated(1000);
  Catalog catalog;
  StatisticsOptions single;
  single.num_buckets = 11;
  ASSERT_TRUE(AnalyzeAndStore(rel, "a", &catalog, single).ok());
  ASSERT_TRUE(AnalyzeAndStore(rel, "b", &catalog, single).ok());
  JointStatisticsOptions joint_options;
  joint_options.num_buckets = 12;
  ASSERT_TRUE(AnalyzeAndStorePair(rel, "a", "b", &catalog, joint_options)
                  .ok());

  auto sa = catalog.GetColumnStatistics("R", "a");
  auto sb = catalog.GetColumnStatistics("R", "b");
  auto sj = catalog.GetColumnStatistics("R", "a+b");
  ASSERT_TRUE(sa.ok() && sb.ok() && sj.ok());

  // True count of (a = 3 AND b = 3): ~100 * 16/17.
  double truth = 0;
  for (const auto& t : rel.tuples()) {
    if (t[0].AsInt64() == 3 && t[1].AsInt64() == 3) truth += 1;
  }
  double joint_est =
      EstimateConjunctiveEquality(*sj, Value(int64_t{3}), Value(int64_t{3}));
  double indep_est = EstimateConjunctiveEqualityIndependent(
      *sa, *sb, Value(int64_t{3}), Value(int64_t{3}));
  // Independence predicts ~100*100/1000 = 10; joint statistics see ~94.
  EXPECT_GT(truth, 80.0);
  EXPECT_LT(std::abs(joint_est - truth), std::abs(indep_est - truth));
  EXPECT_LT(indep_est, truth / 2);
}

TEST(JointStatisticsTest, ZeroCellsEstimateLow) {
  Relation rel = Correlated(1000);
  JointStatisticsOptions options;
  options.num_buckets = 12;
  auto stats = AnalyzeColumnPair(rel, "a", "b", options);
  ASSERT_TRUE(stats.ok());
  // (a=0, b=5) never occurs; the joint estimate lands in the (mostly zero)
  // default bucket, far below any observed diagonal pair.
  double absent =
      EstimateConjunctiveEquality(*stats, Value(int64_t{0}),
                                  Value(int64_t{5}));
  double present =
      EstimateConjunctiveEquality(*stats, Value(int64_t{0}),
                                  Value(int64_t{0}));
  EXPECT_LT(absent, present / 4);
}

TEST(JointStatisticsTest, CellCapEnforced) {
  Relation rel = Correlated(1000);
  JointStatisticsOptions options;
  options.max_cells = 10;  // 10x10 observed domains -> 100 cells > cap
  EXPECT_TRUE(AnalyzeColumnPair(rel, "a", "b", options)
                  .status()
                  .IsResourceExhausted());
}

TEST(JointStatisticsTest, Validation) {
  Relation rel = Correlated(10);
  JointStatisticsOptions options;
  options.num_buckets = 0;
  EXPECT_TRUE(AnalyzeColumnPair(rel, "a", "b", options)
                  .status()
                  .IsInvalidArgument());
  EXPECT_FALSE(AnalyzeColumnPair(rel, "a", "zzz").ok());
  EXPECT_TRUE(
      AnalyzeAndStorePair(rel, "a", "b", nullptr).IsInvalidArgument());
}

}  // namespace
}  // namespace hops
