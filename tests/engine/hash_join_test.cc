#include "engine/hash_join.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace hops {
namespace {

Relation IntRelation(const std::string& name, const std::string& col,
                     std::vector<int64_t> values) {
  auto schema = Schema::Make({{col, ValueType::kInt64}});
  auto rel = Relation::Make(name, *std::move(schema));
  EXPECT_TRUE(rel.ok());
  for (int64_t v : values) {
    EXPECT_TRUE(rel->Append({Value(v)}).ok());
  }
  return *std::move(rel);
}

TEST(HashJoinTest, CountsMatchingPairs) {
  Relation r = IntRelation("R", "a", {1, 1, 2, 3});
  Relation s = IntRelation("S", "b", {1, 2, 2, 4});
  auto count = HashJoinCount(r, "a", s, "b");
  ASSERT_TRUE(count.ok());
  // 1 matches twice x once = 2; 2 matches once x twice = 2.
  EXPECT_DOUBLE_EQ(*count, 4.0);
}

TEST(HashJoinTest, NoMatchesIsZero) {
  Relation r = IntRelation("R", "a", {1, 2});
  Relation s = IntRelation("S", "b", {3, 4});
  auto count = HashJoinCount(r, "a", s, "b");
  ASSERT_TRUE(count.ok());
  EXPECT_DOUBLE_EQ(*count, 0.0);
}

TEST(HashJoinTest, SelfJoinIsSumOfSquaredFrequencies) {
  Relation r = IntRelation("R", "a", {7, 7, 7, 9, 9, 4});
  auto count = HashJoinCount(r, "a", r, "a");
  ASSERT_TRUE(count.ok());
  EXPECT_DOUBLE_EQ(*count, 9.0 + 4.0 + 1.0);
}

TEST(HashJoinTest, UnknownColumnFails) {
  Relation r = IntRelation("R", "a", {1});
  Relation s = IntRelation("S", "b", {1});
  EXPECT_FALSE(HashJoinCount(r, "zzz", s, "b").ok());
  EXPECT_FALSE(HashJoinCount(r, "a", s, "zzz").ok());
}

TEST(JointFrequenciesTest, JoinsFrequencyTablesOnValue) {
  Relation r = IntRelation("R", "a", {1, 1, 2, 3});
  Relation s = IntRelation("S", "b", {1, 2, 2, 4});
  auto joint = ComputeJointFrequencies(r, "a", s, "b");
  ASSERT_TRUE(joint.ok());
  ASSERT_EQ(joint->size(), 2u);  // values 1 and 2 appear in both
  EXPECT_EQ((*joint)[0].value.AsInt64(), 1);
  EXPECT_DOUBLE_EQ((*joint)[0].frequency_left, 2.0);
  EXPECT_DOUBLE_EQ((*joint)[0].frequency_right, 1.0);
  EXPECT_EQ((*joint)[1].value.AsInt64(), 2);
  EXPECT_DOUBLE_EQ((*joint)[1].frequency_left, 1.0);
  EXPECT_DOUBLE_EQ((*joint)[1].frequency_right, 2.0);
}

TEST(JointFrequenciesTest, JoinSizeFromJointMatchesHashJoin) {
  Rng rng(555);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<int64_t> rv, sv;
    for (int i = 0; i < 200; ++i) {
      rv.push_back(static_cast<int64_t>(rng.NextBounded(20)));
      sv.push_back(static_cast<int64_t>(rng.NextBounded(20)));
    }
    Relation r = IntRelation("R", "a", rv);
    Relation s = IntRelation("S", "b", sv);
    auto joint = ComputeJointFrequencies(r, "a", s, "b");
    auto direct = HashJoinCount(r, "a", s, "b");
    ASSERT_TRUE(joint.ok());
    ASSERT_TRUE(direct.ok());
    EXPECT_DOUBLE_EQ(JoinSizeFromJointFrequencies(*joint), *direct);
  }
}

TEST(JointFrequenciesTest, StringJoinColumnsWork) {
  auto schema = Schema::Make({{"name", ValueType::kString}});
  auto r = Relation::Make("R", *schema);
  auto s = Relation::Make("S", *schema);
  ASSERT_TRUE(r.ok() && s.ok());
  for (const char* v : {"x", "x", "y"}) {
    ASSERT_TRUE(r->Append({Value(v)}).ok());
  }
  for (const char* v : {"x", "z"}) {
    ASSERT_TRUE(s->Append({Value(v)}).ok());
  }
  auto count = HashJoinCount(*r, "name", *s, "name");
  ASSERT_TRUE(count.ok());
  EXPECT_DOUBLE_EQ(*count, 2.0);
}

}  // namespace
}  // namespace hops
