#include "engine/sampled_statistics.h"

#include <gtest/gtest.h>

#include "engine/statistics.h"

namespace hops {
namespace {

// Relation where value v appears counts[v] times.
Relation Skewed(const std::vector<size_t>& counts) {
  auto schema = Schema::Make({{"a", ValueType::kInt64}});
  auto rel = Relation::Make("R", *std::move(schema));
  EXPECT_TRUE(rel.ok());
  for (size_t v = 0; v < counts.size(); ++v) {
    for (size_t i = 0; i < counts[v]; ++i) {
      rel->AppendUnchecked({Value(static_cast<int64_t>(v))});
    }
  }
  return *std::move(rel);
}

// A Zipf-ish layout: heavy hitters + a long uniform tail.
Relation ZipfLike() {
  std::vector<size_t> counts = {4000, 2000, 1000, 500};
  for (int i = 0; i < 60; ++i) counts.push_back(25);
  return Skewed(counts);
}

TEST(SampledStatisticsTest, HeavyHittersStoredExactly) {
  Relation rel = ZipfLike();
  SampledStatisticsOptions options;
  options.sample_size = 800;
  options.num_buckets = 5;
  auto stats = AnalyzeColumnSampled(rel, "a", options);
  ASSERT_TRUE(stats.ok()) << stats.status();
  // The dominant values must be explicit with their EXACT counts (the one
  // refinement scan).
  bool is_explicit = false;
  EXPECT_DOUBLE_EQ(stats->histogram.LookupFrequency(0, &is_explicit),
                   4000.0);
  EXPECT_TRUE(is_explicit);
  EXPECT_DOUBLE_EQ(stats->histogram.LookupFrequency(1, &is_explicit),
                   2000.0);
  EXPECT_TRUE(is_explicit);
}

TEST(SampledStatisticsTest, TotalsApproximatelyPreserved) {
  Relation rel = ZipfLike();
  SampledStatisticsOptions options;
  options.sample_size = 800;
  auto stats = AnalyzeColumnSampled(rel, "a", options);
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats->num_tuples,
                   static_cast<double>(rel.num_tuples()));
  EXPECT_NEAR(stats->histogram.EstimatedTotal(), stats->num_tuples,
              0.05 * stats->num_tuples);
}

TEST(SampledStatisticsTest, CloseToFullAnalyzeOnZipfData) {
  // The paper's Section 4.2 pitch: on Zipf-like data the sampled pipeline
  // approximates the full Matrix+V-OptBiasHist result. Compare equality
  // estimates on the heavy hitters.
  Relation rel = ZipfLike();
  StatisticsOptions full_options;
  full_options.num_buckets = 5;
  auto full = AnalyzeColumn(rel, "a", full_options);
  SampledStatisticsOptions sampled_options;
  sampled_options.sample_size = 800;
  sampled_options.num_buckets = 5;
  auto sampled = AnalyzeColumnSampled(rel, "a", sampled_options);
  ASSERT_TRUE(full.ok() && sampled.ok());
  for (int64_t v : {0, 1, 2}) {
    EXPECT_NEAR(sampled->histogram.LookupFrequency(v),
                full->histogram.LookupFrequency(v),
                0.01 + 0.01 * full->histogram.LookupFrequency(v))
        << "value " << v;
  }
}

TEST(SampledStatisticsTest, FailsToSeeLowOutliersOnReverseZipf) {
  // The documented failure mode: many high frequencies, few low ones. The
  // full V-OptBiasHist isolates the two rare values; the sampled pipeline
  // cannot (they never make the candidate list).
  std::vector<size_t> counts(40, 250);
  counts.push_back(1);
  counts.push_back(2);
  Relation rel = Skewed(counts);
  SampledStatisticsOptions options;
  options.sample_size = 400;
  options.num_buckets = 5;
  auto sampled = AnalyzeColumnSampled(rel, "a", options);
  ASSERT_TRUE(sampled.ok());
  bool is_explicit = true;
  sampled->histogram.LookupFrequency(40, &is_explicit);
  EXPECT_FALSE(is_explicit);  // the rare value stayed in the default bucket

  StatisticsOptions full_options;
  full_options.num_buckets = 5;
  auto full = AnalyzeColumn(rel, "a", full_options);
  ASSERT_TRUE(full.ok());
  full->histogram.LookupFrequency(40, &is_explicit);
  EXPECT_TRUE(is_explicit);  // V-OptBiasHist put it in a univalued bucket
}

TEST(SampledStatisticsTest, DistinctEstimateInSaneRange) {
  Relation rel = ZipfLike();  // 64 distinct values
  SampledStatisticsOptions options;
  options.sample_size = 1000;
  auto stats = AnalyzeColumnSampled(rel, "a", options);
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->num_distinct, 30u);
  EXPECT_LE(stats->num_distinct, 200u);
}

TEST(SampledStatisticsTest, Validation) {
  auto schema = Schema::Make({{"a", ValueType::kInt64}});
  auto empty = Relation::Make("E", *std::move(schema));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(AnalyzeColumnSampled(*empty, "a").status().IsInvalidArgument());
  Relation rel = Skewed({3});
  SampledStatisticsOptions options;
  options.num_buckets = 0;
  EXPECT_TRUE(
      AnalyzeColumnSampled(rel, "a", options).status().IsInvalidArgument());
  EXPECT_FALSE(AnalyzeColumnSampled(rel, "zzz").ok());
}

TEST(SampledStatisticsTest, DeterministicForSeed) {
  Relation rel = ZipfLike();
  SampledStatisticsOptions options;
  options.seed = 99;
  auto a = AnalyzeColumnSampled(rel, "a", options);
  auto b = AnalyzeColumnSampled(rel, "a", options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->histogram, b->histogram);
}

}  // namespace
}  // namespace hops
