#include "engine/value.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace hops {
namespace {

TEST(ValueTest, DefaultIsIntZero) {
  Value v;
  EXPECT_TRUE(v.is_int64());
  EXPECT_EQ(v.AsInt64(), 0);
}

TEST(ValueTest, TypesAndAccessors) {
  Value i(int64_t{42});
  EXPECT_TRUE(i.is_int64());
  EXPECT_EQ(i.type(), ValueType::kInt64);
  EXPECT_EQ(i.AsInt64(), 42);
  Value s("toy");
  EXPECT_TRUE(s.is_string());
  EXPECT_EQ(s.AsString(), "toy");
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(int64_t{-7}).ToString(), "-7");
  EXPECT_EQ(Value("jewelry").ToString(), "jewelry");
}

TEST(ValueTest, EqualityByTypeAndContent) {
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_FALSE(Value(int64_t{1}) == Value(int64_t{2}));
  EXPECT_EQ(Value("a"), Value("a"));
  EXPECT_FALSE(Value("a") == Value("b"));
  EXPECT_FALSE(Value(int64_t{1}) == Value("1"));
}

TEST(ValueTest, OrderingIsTotalWithIntsFirst) {
  EXPECT_TRUE(Value(int64_t{1}) < Value(int64_t{2}));
  EXPECT_TRUE(Value("a") < Value("b"));
  EXPECT_TRUE(Value(int64_t{999}) < Value("a"));
  EXPECT_FALSE(Value("a") < Value(int64_t{999}));
}

TEST(ValueTest, HashSpreadsSmallInts) {
  std::unordered_set<size_t> hashes;
  for (int64_t i = 0; i < 1000; ++i) {
    hashes.insert(Value(i).Hash());
  }
  EXPECT_EQ(hashes.size(), 1000u);  // no collisions among small ints
}

TEST(ValueTest, HashEqualValuesAgree) {
  EXPECT_EQ(Value(int64_t{5}).Hash(), Value(int64_t{5}).Hash());
  EXPECT_EQ(Value("shoe").Hash(), Value("shoe").Hash());
}

TEST(ValueTest, HashFunctorWorksInContainers) {
  std::unordered_set<Value, ValueHash> set;
  set.insert(Value(int64_t{1}));
  set.insert(Value("candy"));
  set.insert(Value(int64_t{1}));  // duplicate
  EXPECT_EQ(set.size(), 2u);
}

TEST(ValueTest, TypeNames) {
  EXPECT_STREQ(ValueTypeToString(ValueType::kInt64), "int64");
  EXPECT_STREQ(ValueTypeToString(ValueType::kString), "string");
}

}  // namespace
}  // namespace hops
