#include "engine/statistics.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace hops {
namespace {

Relation ZipfIntRelation(size_t num_values, size_t tuples_per_rank_base,
                         uint64_t /*seed*/) {
  // value v in [0, num_values) appears roughly (num_values - v) times:
  // a simple deterministic skewed column.
  auto schema = Schema::Make({{"a", ValueType::kInt64}});
  auto rel = Relation::Make("Z", *std::move(schema));
  EXPECT_TRUE(rel.ok());
  for (size_t v = 0; v < num_values; ++v) {
    size_t count = tuples_per_rank_base * (num_values - v);
    for (size_t i = 0; i < count; ++i) {
      rel->AppendUnchecked({Value(static_cast<int64_t>(v))});
    }
  }
  return *std::move(rel);
}

TEST(StatisticsTest, AnalyzeColumnBasicCounts) {
  Relation rel = ZipfIntRelation(10, 1, 0);  // 10+9+...+1 = 55 tuples
  auto stats = AnalyzeColumn(rel, "a");
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats->num_tuples, 55.0);
  EXPECT_EQ(stats->num_distinct, 10u);
  EXPECT_EQ(stats->min_value, 0);
  EXPECT_EQ(stats->max_value, 9);
  EXPECT_EQ(stats->histogram.num_values(), 10u);
}

TEST(StatisticsTest, EndBiasedKeepsExactTopFrequencies) {
  Relation rel = ZipfIntRelation(20, 2, 0);
  StatisticsOptions options;
  options.histogram_class = StatisticsHistogramClass::kVOptEndBiased;
  options.num_buckets = 5;
  auto stats = AnalyzeColumn(rel, "a", options);
  ASSERT_TRUE(stats.ok());
  // Value 0 is the most frequent (40 tuples); end-biased statistics store
  // it exactly.
  bool is_explicit = false;
  double f = stats->histogram.LookupFrequency(0, &is_explicit);
  EXPECT_TRUE(is_explicit);
  EXPECT_DOUBLE_EQ(f, 40.0);
}

TEST(StatisticsTest, HistogramTotalsApproximateRelationSize) {
  Relation rel = ZipfIntRelation(30, 1, 0);
  for (auto cls : {StatisticsHistogramClass::kTrivial,
                   StatisticsHistogramClass::kEquiWidth,
                   StatisticsHistogramClass::kEquiDepth,
                   StatisticsHistogramClass::kVOptEndBiased,
                   StatisticsHistogramClass::kVOptSerialDP}) {
    StatisticsOptions options;
    options.histogram_class = cls;
    options.num_buckets = 4;
    auto stats = AnalyzeColumn(rel, "a", options);
    ASSERT_TRUE(stats.ok()) << StatisticsHistogramClassToString(cls);
    EXPECT_NEAR(stats->histogram.EstimatedTotal(), stats->num_tuples,
                1e-6 * stats->num_tuples)
        << StatisticsHistogramClassToString(cls);
  }
}

TEST(StatisticsTest, BucketCountCappedAtDistinct) {
  Relation rel = ZipfIntRelation(3, 1, 0);
  StatisticsOptions options;
  options.num_buckets = 50;
  auto stats = AnalyzeColumn(rel, "a", options);
  ASSERT_TRUE(stats.ok());
  // With beta capped at 3, the end-biased histogram is exact.
  for (int64_t v = 0; v < 3; ++v) {
    bool is_explicit = false;
    double f = stats->histogram.LookupFrequency(v, &is_explicit);
    EXPECT_DOUBLE_EQ(f, static_cast<double>(3 - v));
  }
}

TEST(StatisticsTest, EmptyRelationFails) {
  auto schema = Schema::Make({{"a", ValueType::kInt64}});
  auto rel = Relation::Make("E", *std::move(schema));
  ASSERT_TRUE(rel.ok());
  EXPECT_TRUE(AnalyzeColumn(*rel, "a").status().IsInvalidArgument());
}

TEST(StatisticsTest, AnalyzeAndStoreRoundTripsThroughCatalog) {
  Relation rel = ZipfIntRelation(12, 1, 0);
  Catalog catalog;
  ASSERT_TRUE(AnalyzeAndStore(rel, "a", &catalog).ok());
  ASSERT_TRUE(catalog.HasColumnStatistics("Z", "a"));
  auto stats = catalog.GetColumnStatistics("Z", "a");
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats->num_tuples, 78.0);  // 12+11+...+1
  EXPECT_EQ(stats->num_distinct, 12u);
}

TEST(StatisticsTest, AnalyzeAndStoreRequiresCatalog) {
  Relation rel = ZipfIntRelation(3, 1, 0);
  EXPECT_TRUE(AnalyzeAndStore(rel, "a", nullptr).IsInvalidArgument());
}

TEST(StatisticsTest, ClassNamesAreStable) {
  EXPECT_STREQ(
      StatisticsHistogramClassToString(StatisticsHistogramClass::kTrivial),
      "trivial");
  EXPECT_STREQ(StatisticsHistogramClassToString(
                   StatisticsHistogramClass::kVOptEndBiased),
               "v-opt-end-biased");
}

}  // namespace
}  // namespace hops
