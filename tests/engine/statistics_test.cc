#include "engine/statistics.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace hops {
namespace {

Relation ZipfIntRelation(size_t num_values, size_t tuples_per_rank_base,
                         uint64_t /*seed*/) {
  // value v in [0, num_values) appears roughly (num_values - v) times:
  // a simple deterministic skewed column.
  auto schema = Schema::Make({{"a", ValueType::kInt64}});
  auto rel = Relation::Make("Z", *std::move(schema));
  EXPECT_TRUE(rel.ok());
  for (size_t v = 0; v < num_values; ++v) {
    size_t count = tuples_per_rank_base * (num_values - v);
    for (size_t i = 0; i < count; ++i) {
      rel->AppendUnchecked({Value(static_cast<int64_t>(v))});
    }
  }
  return *std::move(rel);
}

TEST(StatisticsTest, AnalyzeColumnBasicCounts) {
  Relation rel = ZipfIntRelation(10, 1, 0);  // 10+9+...+1 = 55 tuples
  auto stats = AnalyzeColumn(rel, "a");
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats->num_tuples, 55.0);
  EXPECT_EQ(stats->num_distinct, 10u);
  EXPECT_EQ(stats->min_value, 0);
  EXPECT_EQ(stats->max_value, 9);
  EXPECT_EQ(stats->histogram.num_values(), 10u);
}

TEST(StatisticsTest, EndBiasedKeepsExactTopFrequencies) {
  Relation rel = ZipfIntRelation(20, 2, 0);
  StatisticsOptions options;
  options.histogram_class = StatisticsHistogramClass::kVOptEndBiased;
  options.num_buckets = 5;
  auto stats = AnalyzeColumn(rel, "a", options);
  ASSERT_TRUE(stats.ok());
  // Value 0 is the most frequent (40 tuples); end-biased statistics store
  // it exactly.
  bool is_explicit = false;
  double f = stats->histogram.LookupFrequency(0, &is_explicit);
  EXPECT_TRUE(is_explicit);
  EXPECT_DOUBLE_EQ(f, 40.0);
}

TEST(StatisticsTest, HistogramTotalsApproximateRelationSize) {
  Relation rel = ZipfIntRelation(30, 1, 0);
  for (auto cls : {StatisticsHistogramClass::kTrivial,
                   StatisticsHistogramClass::kEquiWidth,
                   StatisticsHistogramClass::kEquiDepth,
                   StatisticsHistogramClass::kVOptEndBiased,
                   StatisticsHistogramClass::kVOptSerialDP}) {
    StatisticsOptions options;
    options.histogram_class = cls;
    options.num_buckets = 4;
    auto stats = AnalyzeColumn(rel, "a", options);
    ASSERT_TRUE(stats.ok()) << StatisticsHistogramClassToString(cls);
    EXPECT_NEAR(stats->histogram.EstimatedTotal(), stats->num_tuples,
                1e-6 * stats->num_tuples)
        << StatisticsHistogramClassToString(cls);
  }
}

TEST(StatisticsTest, BucketCountCappedAtDistinct) {
  Relation rel = ZipfIntRelation(3, 1, 0);
  StatisticsOptions options;
  options.num_buckets = 50;
  auto stats = AnalyzeColumn(rel, "a", options);
  ASSERT_TRUE(stats.ok());
  // With beta capped at 3, the end-biased histogram is exact.
  for (int64_t v = 0; v < 3; ++v) {
    bool is_explicit = false;
    double f = stats->histogram.LookupFrequency(v, &is_explicit);
    EXPECT_DOUBLE_EQ(f, static_cast<double>(3 - v));
  }
}

TEST(StatisticsTest, EmptyRelationFails) {
  auto schema = Schema::Make({{"a", ValueType::kInt64}});
  auto rel = Relation::Make("E", *std::move(schema));
  ASSERT_TRUE(rel.ok());
  EXPECT_TRUE(AnalyzeColumn(*rel, "a").status().IsInvalidArgument());
}

TEST(StatisticsTest, AnalyzeAndStoreRoundTripsThroughCatalog) {
  Relation rel = ZipfIntRelation(12, 1, 0);
  Catalog catalog;
  ASSERT_TRUE(AnalyzeAndStore(rel, "a", &catalog).ok());
  ASSERT_TRUE(catalog.HasColumnStatistics("Z", "a"));
  auto stats = catalog.GetColumnStatistics("Z", "a");
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats->num_tuples, 78.0);  // 12+11+...+1
  EXPECT_EQ(stats->num_distinct, 12u);
}

TEST(StatisticsTest, AnalyzeAndStoreRequiresCatalog) {
  Relation rel = ZipfIntRelation(3, 1, 0);
  EXPECT_TRUE(AnalyzeAndStore(rel, "a", nullptr).IsInvalidArgument());
}

void ExpectStatsEqual(const ColumnStatistics& a, const ColumnStatistics& b) {
  EXPECT_DOUBLE_EQ(a.num_tuples, b.num_tuples);
  EXPECT_EQ(a.num_distinct, b.num_distinct);
  EXPECT_EQ(a.min_value, b.min_value);
  EXPECT_EQ(a.max_value, b.max_value);
  EXPECT_DOUBLE_EQ(a.histogram.default_frequency(),
                   b.histogram.default_frequency());
  EXPECT_EQ(a.histogram.num_default_values(), b.histogram.num_default_values());
  ASSERT_EQ(a.histogram.explicit_entries().size(),
            b.histogram.explicit_entries().size());
  for (size_t i = 0; i < a.histogram.explicit_entries().size(); ++i) {
    EXPECT_EQ(a.histogram.explicit_entries()[i].first,
              b.histogram.explicit_entries()[i].first);
    EXPECT_DOUBLE_EQ(a.histogram.explicit_entries()[i].second,
                     b.histogram.explicit_entries()[i].second);
  }
}

Relation TwoColumnRelation(size_t num_values) {
  auto schema = Schema::Make(
      {{"a", ValueType::kInt64}, {"b", ValueType::kInt64}});
  auto rel = Relation::Make("T2", *std::move(schema));
  EXPECT_TRUE(rel.ok());
  for (size_t v = 0; v < num_values; ++v) {
    for (size_t i = 0; i < num_values - v; ++i) {
      rel->AppendUnchecked({Value(static_cast<int64_t>(v)),
                            Value(static_cast<int64_t>(v % 7))});
    }
  }
  return *std::move(rel);
}

TEST(StatisticsTest, BatchAnalyzeMatchesSequentialAnalyze) {
  Relation rel = TwoColumnRelation(40);
  std::vector<AnalyzeRequest> requests;
  for (const char* column : {"a", "b"}) {
    for (auto cls : {StatisticsHistogramClass::kEquiDepth,
                     StatisticsHistogramClass::kVOptEndBiased,
                     StatisticsHistogramClass::kVOptSerialDP}) {
      AnalyzeRequest req;
      req.relation = &rel;
      req.column = column;
      req.options.histogram_class = cls;
      req.options.num_buckets = 6;
      requests.push_back(std::move(req));
    }
  }
  auto batch = AnalyzeColumnsBatch(requests);
  ASSERT_EQ(batch.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    auto sequential =
        AnalyzeColumn(rel, requests[i].column, requests[i].options);
    ASSERT_TRUE(sequential.ok());
    ASSERT_TRUE(batch[i].ok()) << "request " << i;
    ExpectStatsEqual(*sequential, *batch[i]);
  }
}

TEST(StatisticsTest, BatchAnalyzeReportsPerRequestFailures) {
  Relation rel = ZipfIntRelation(8, 1, 0);
  std::vector<AnalyzeRequest> requests(3);
  requests[0].relation = &rel;
  requests[0].column = "a";
  requests[1].relation = &rel;
  requests[1].column = "no_such_column";
  requests[2].relation = nullptr;  // must fail without crashing
  requests[2].column = "a";
  auto results = AnalyzeColumnsBatch(requests);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_TRUE(results[2].status().IsInvalidArgument());
}

TEST(StatisticsTest, AnalyzeRelationAndStoreCoversEveryColumn) {
  Relation rel = TwoColumnRelation(25);
  Catalog batch_catalog;
  StatisticsOptions options;
  options.num_buckets = 5;
  ASSERT_TRUE(AnalyzeRelationAndStore(rel, &batch_catalog, options).ok());
  // Equivalent to per-column AnalyzeAndStore.
  Catalog sequential_catalog;
  for (const char* column : {"a", "b"}) {
    ASSERT_TRUE(
        AnalyzeAndStore(rel, column, &sequential_catalog, options).ok());
  }
  for (const char* column : {"a", "b"}) {
    auto from_batch = batch_catalog.GetColumnStatistics("T2", column);
    auto from_sequential =
        sequential_catalog.GetColumnStatistics("T2", column);
    ASSERT_TRUE(from_batch.ok());
    ASSERT_TRUE(from_sequential.ok());
    ExpectStatsEqual(*from_sequential, *from_batch);
  }
}

TEST(StatisticsTest, ClassNamesAreStable) {
  EXPECT_STREQ(
      StatisticsHistogramClassToString(StatisticsHistogramClass::kTrivial),
      "trivial");
  EXPECT_STREQ(StatisticsHistogramClassToString(
                   StatisticsHistogramClass::kVOptEndBiased),
               "v-opt-end-biased");
}

}  // namespace
}  // namespace hops
