#include "engine/executor.h"

#include <gtest/gtest.h>

#include "engine/hash_join.h"
#include "util/random.h"

namespace hops {
namespace {

Relation TwoColRelation(const std::string& name,
                        std::vector<std::pair<int64_t, int64_t>> rows) {
  auto schema = Schema::Make({{"l", ValueType::kInt64},
                              {"r", ValueType::kInt64}});
  auto rel = Relation::Make(name, *std::move(schema));
  EXPECT_TRUE(rel.ok());
  for (auto [l, r] : rows) {
    EXPECT_TRUE(rel->Append({Value(l), Value(r)}).ok());
  }
  return *std::move(rel);
}

Relation OneColRelation(const std::string& name, const std::string& col,
                        std::vector<int64_t> values) {
  auto schema = Schema::Make({{col, ValueType::kInt64}});
  auto rel = Relation::Make(name, *std::move(schema));
  EXPECT_TRUE(rel.ok());
  for (int64_t v : values) {
    EXPECT_TRUE(rel->Append({Value(v)}).ok());
  }
  return *std::move(rel);
}

TEST(ExecutorTest, TwoWayChainMatchesHashJoin) {
  Relation r0 = OneColRelation("R0", "a", {1, 1, 2, 3, 3, 3});
  Relation r1 = OneColRelation("R1", "a", {1, 3, 3, 4});
  std::vector<ChainJoinStep> steps = {
      {&r0, "", "a"},
      {&r1, "a", ""},
  };
  auto chain = ExecuteChainJoinCount(steps);
  auto direct = HashJoinCount(r0, "a", r1, "a");
  ASSERT_TRUE(chain.ok());
  ASSERT_TRUE(direct.ok());
  EXPECT_DOUBLE_EQ(*chain, *direct);
  EXPECT_DOUBLE_EQ(*chain, 2.0 * 1 + 3.0 * 2);
}

TEST(ExecutorTest, ThreeWayChain) {
  // R0(a) -- R1(a, b) -- R2(b).
  Relation r0 = OneColRelation("R0", "a", {1, 2});
  Relation r1 = TwoColRelation("R1", {{1, 10}, {1, 20}, {2, 10}, {3, 30}});
  Relation r2 = OneColRelation("R2", "b", {10, 10, 20});
  std::vector<ChainJoinStep> steps = {
      {&r0, "", "a"},
      {&r1, "l", "r"},
      {&r2, "b", ""},
  };
  auto count = ExecuteChainJoinCount(steps);
  ASSERT_TRUE(count.ok());
  // (1,10): 1*1*2=2; (1,20): 1*1*1=1; (2,10): 1*1*2=2; (3,30): a=3 absent.
  EXPECT_DOUBLE_EQ(*count, 5.0);
}

TEST(ExecutorTest, Validation) {
  Relation r0 = OneColRelation("R0", "a", {1});
  Relation r1 = OneColRelation("R1", "a", {1});
  // Too few relations.
  std::vector<ChainJoinStep> one = {{&r0, "", ""}};
  EXPECT_TRUE(ExecuteChainJoinCount(one).status().IsInvalidArgument());
  // Null relation.
  std::vector<ChainJoinStep> null_steps = {{&r0, "", "a"},
                                           {nullptr, "a", ""}};
  EXPECT_TRUE(
      ExecuteChainJoinCount(null_steps).status().IsInvalidArgument());
  // First step declaring a left column.
  std::vector<ChainJoinStep> bad_first = {{&r0, "a", "a"}, {&r1, "a", ""}};
  EXPECT_TRUE(
      ExecuteChainJoinCount(bad_first).status().IsInvalidArgument());
  // Last step declaring a right column.
  std::vector<ChainJoinStep> bad_last = {{&r0, "", "a"}, {&r1, "a", "a"}};
  EXPECT_TRUE(ExecuteChainJoinCount(bad_last).status().IsInvalidArgument());
  // Missing interior column.
  std::vector<ChainJoinStep> gap = {{&r0, "", ""}, {&r1, "a", ""}};
  EXPECT_TRUE(ExecuteChainJoinCount(gap).status().IsInvalidArgument());
}

TEST(ExecutorTest, EmptyIntermediateGivesZero) {
  Relation r0 = OneColRelation("R0", "a", {1});
  Relation r1 = TwoColRelation("R1", {{9, 9}});  // no a=1
  Relation r2 = OneColRelation("R2", "b", {9});
  std::vector<ChainJoinStep> steps = {
      {&r0, "", "a"},
      {&r1, "l", "r"},
      {&r2, "b", ""},
  };
  auto count = ExecuteChainJoinCount(steps);
  ASSERT_TRUE(count.ok());
  EXPECT_DOUBLE_EQ(*count, 0.0);
}

TEST(ExecutorTest, StringJoinColumnsWork) {
  auto sschema = Schema::Make({{"d", ValueType::kString}});
  auto s2schema = Schema::Make({{"d", ValueType::kString},
                                {"y", ValueType::kInt64}});
  auto depts = Relation::Make("D", *sschema);
  auto works = Relation::Make("W", *s2schema);
  ASSERT_TRUE(depts.ok() && works.ok());
  for (const char* d : {"toy", "shoe"}) {
    ASSERT_TRUE(depts->Append({Value(d)}).ok());
  }
  ASSERT_TRUE(works->Append({Value("toy"), Value(int64_t{1990})}).ok());
  ASSERT_TRUE(works->Append({Value("toy"), Value(int64_t{1991})}).ok());
  ASSERT_TRUE(works->Append({Value("candy"), Value(int64_t{1991})}).ok());
  auto yschema = Schema::Make({{"y", ValueType::kInt64}});
  auto years = Relation::Make("Y", *yschema);
  ASSERT_TRUE(years.ok());
  ASSERT_TRUE(years->Append({Value(int64_t{1991})}).ok());

  std::vector<ChainJoinStep> steps = {
      {&*depts, "", "d"}, {&*works, "d", "y"}, {&*years, "y", ""}};
  auto count = ExecuteChainJoinCount(steps);
  ASSERT_TRUE(count.ok());
  // Only (toy, 1991) survives both joins.
  EXPECT_DOUBLE_EQ(*count, 1.0);
}

TEST(ExecutorTest, LongChainAgainstBruteForce) {
  // 4-relation chain over a small domain, validated against an O(n^4)
  // nested-loop count.
  Rng rng(99);
  auto gen = [&](size_t n) {
    std::vector<std::pair<int64_t, int64_t>> rows;
    for (size_t i = 0; i < n; ++i) {
      rows.push_back({static_cast<int64_t>(rng.NextBounded(4)),
                      static_cast<int64_t>(rng.NextBounded(4))});
    }
    return rows;
  };
  Relation r0 = OneColRelation("R0", "a", {0, 1, 2, 3, 1, 2});
  Relation r1 = TwoColRelation("R1", gen(12));
  Relation r2 = TwoColRelation("R2", gen(12));
  Relation r3 = OneColRelation("R3", "b", {0, 0, 1, 3});

  double brute = 0;
  for (const auto& t0 : r0.tuples()) {
    for (const auto& t1 : r1.tuples()) {
      if (!(t0[0] == t1[0])) continue;
      for (const auto& t2 : r2.tuples()) {
        if (!(t1[1] == t2[0])) continue;
        for (const auto& t3 : r3.tuples()) {
          if (t2[1] == t3[0]) brute += 1;
        }
      }
    }
  }
  std::vector<ChainJoinStep> steps = {
      {&r0, "", "a"},
      {&r1, "l", "r"},
      {&r2, "l", "r"},
      {&r3, "b", ""},
  };
  auto count = ExecuteChainJoinCount(steps);
  ASSERT_TRUE(count.ok());
  EXPECT_DOUBLE_EQ(*count, brute);
}

}  // namespace
}  // namespace hops
