// CatalogSnapshot / SnapshotStore: compilation, name interning, versioning,
// and RCU-style publication.

#include "engine/catalog_snapshot.h"

#include <gtest/gtest.h>

#include "engine/statistics.h"
#include "histogram/maintenance.h"

namespace hops {
namespace {

ColumnStatistics MakeStats(double num_tuples,
                           std::vector<std::pair<int64_t, double>> entries,
                           double default_frequency, uint64_t num_default) {
  ColumnStatistics stats;
  stats.num_tuples = num_tuples;
  stats.num_distinct = entries.size() + num_default;
  stats.min_value = entries.empty() ? 0 : entries.front().first;
  stats.max_value = entries.empty() ? 0 : entries.back().first;
  stats.histogram = *CatalogHistogram::Make(std::move(entries),
                                            default_frequency, num_default);
  return stats;
}

Catalog SmallCatalog() {
  Catalog catalog;
  catalog
      .PutColumnStatistics("orders", "customer_id",
                           MakeStats(100.0, {{1, 30.0}, {2, 20.0}}, 6.25, 8))
      .Check();
  catalog
      .PutColumnStatistics("orders", "status",
                           MakeStats(100.0, {{0, 90.0}}, 10.0, 1))
      .Check();
  catalog
      .PutColumnStatistics("customers", "id",
                           MakeStats(50.0, {{1, 1.0}, {2, 1.0}}, 1.0, 48))
      .Check();
  return catalog;
}

TEST(CatalogSnapshotTest, CompileCapturesEveryEntry) {
  Catalog catalog = SmallCatalog();
  auto snapshot = CatalogSnapshot::Compile(catalog);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ((*snapshot)->num_columns(), 3u);
  EXPECT_EQ((*snapshot)->source_version(), catalog.version());
}

TEST(CatalogSnapshotTest, ResolveInternsNames) {
  Catalog catalog = SmallCatalog();
  auto snapshot = *CatalogSnapshot::Compile(catalog);
  auto id = snapshot->Resolve("orders", "customer_id");
  ASSERT_TRUE(id.ok());
  const CompiledColumnStats& stats = snapshot->stats(*id);
  EXPECT_EQ(stats.table, "orders");
  EXPECT_EQ(stats.column, "customer_id");
  EXPECT_DOUBLE_EQ(stats.num_tuples, 100.0);
  ASSERT_NE(stats.histogram, nullptr);
  EXPECT_EQ(stats.histogram->LookupFrequency(1), 30.0);

  EXPECT_TRUE(snapshot->Contains("customers", "id"));
  EXPECT_FALSE(snapshot->Contains("orders", "nope"));
  EXPECT_FALSE(snapshot->Resolve("nope", "customer_id").ok());
}

TEST(CatalogSnapshotTest, SnapshotIsImmutableUnderCatalogMutation) {
  Catalog catalog = SmallCatalog();
  auto snapshot = *CatalogSnapshot::Compile(catalog);
  const uint64_t version_at_compile = catalog.version();

  catalog
      .PutColumnStatistics("orders", "customer_id",
                           MakeStats(200.0, {{1, 60.0}}, 10.0, 14))
      .Check();
  catalog.DropColumnStatistics("customers", "id").Check();

  // The snapshot still serves the old statistics...
  auto id = snapshot->Resolve("orders", "customer_id");
  ASSERT_TRUE(id.ok());
  EXPECT_DOUBLE_EQ(snapshot->stats(*id).num_tuples, 100.0);
  EXPECT_EQ(snapshot->stats(*id).histogram->LookupFrequency(1), 30.0);
  EXPECT_TRUE(snapshot->Contains("customers", "id"));
  // ...and staleness is detectable through the version counter.
  EXPECT_EQ(snapshot->source_version(), version_at_compile);
  EXPECT_GT(catalog.version(), version_at_compile);
}

TEST(CatalogSnapshotTest, VersionBumpsOnPutAndDrop) {
  Catalog catalog;
  const uint64_t v0 = catalog.version();
  catalog
      .PutColumnStatistics("t", "c", MakeStats(1.0, {{1, 1.0}}, 0.0, 0))
      .Check();
  EXPECT_GT(catalog.version(), v0);
  const uint64_t v1 = catalog.version();
  catalog.DropColumnStatistics("t", "c").Check();
  EXPECT_GT(catalog.version(), v1);
  // Failed mutations do not bump.
  const uint64_t v2 = catalog.version();
  EXPECT_FALSE(catalog.DropColumnStatistics("t", "c").ok());
  EXPECT_EQ(catalog.version(), v2);
}

TEST(SnapshotStoreTest, StartsWithEmptySnapshot) {
  SnapshotStore store;
  auto current = store.Current();
  ASSERT_NE(current, nullptr);
  EXPECT_EQ(current->num_columns(), 0u);
}

TEST(SnapshotStoreTest, PublishSwapsAtomically) {
  SnapshotStore store;
  Catalog catalog = SmallCatalog();
  auto snapshot = *CatalogSnapshot::Compile(catalog);
  store.Publish(snapshot);
  EXPECT_EQ(store.Current(), snapshot);
  // Readers holding the old snapshot keep it alive (RCU).
  auto held = store.Current();
  store.Publish(nullptr);  // null -> replaced by an empty snapshot
  ASSERT_NE(store.Current(), nullptr);
  EXPECT_EQ(store.Current()->num_columns(), 0u);
  EXPECT_EQ(held->num_columns(), 3u);
}

TEST(SnapshotStoreTest, RepublishFromCompilesAndPublishes) {
  SnapshotStore store;
  Catalog catalog = SmallCatalog();
  auto published = store.RepublishFrom(catalog);
  ASSERT_TRUE(published.ok());
  EXPECT_EQ(store.Current(), *published);
  EXPECT_EQ((*published)->source_version(), catalog.version());
}

TEST(SnapshotStoreTest, AnalyzeRelationAndPublishEndToEnd) {
  auto schema = Schema::Make({{"a", ValueType::kInt64}});
  auto rel = Relation::Make("R", *std::move(schema));
  ASSERT_TRUE(rel.ok());
  for (int64_t v = 0; v < 10; ++v) {
    for (int64_t i = 0; i <= v; ++i) {
      rel->AppendUnchecked({Value(v)});
    }
  }
  Catalog catalog;
  SnapshotStore store;
  ASSERT_TRUE(AnalyzeRelationAndPublish(*rel, &catalog, &store).ok());
  auto snapshot = store.Current();
  auto id = snapshot->Resolve("R", "a");
  ASSERT_TRUE(id.ok());
  EXPECT_DOUBLE_EQ(snapshot->stats(*id).num_tuples, 55.0);
  EXPECT_EQ(snapshot->source_version(), catalog.version());

  EXPECT_FALSE(AnalyzeRelationAndPublish(*rel, &catalog, nullptr).ok());
  EXPECT_FALSE(AnalyzeRelationAndPublish(*rel, nullptr, &store).ok());
}

// --- Staleness coverage: maintenance write-backs and publication races ----

TEST(SnapshotStoreTest, MaintenanceWriteBackMakesSnapshotStale) {
  Catalog catalog = SmallCatalog();
  SnapshotStore store;
  auto published = store.RepublishFrom(catalog);
  ASSERT_TRUE(published.ok());
  auto before = store.Current();
  EXPECT_EQ(before->source_version(), catalog.version());

  // Incremental maintenance mutates statistics off to the side and writes
  // them back through the catalog (the refresh subsystem's write path).
  auto stats = catalog.GetColumnStatistics("orders", "customer_id");
  ASSERT_TRUE(stats.ok());
  HistogramMaintainer maintainer(stats->histogram, stats->num_tuples);
  ASSERT_TRUE(maintainer.ApplyInsert(1).ok());
  ASSERT_TRUE(maintainer.ApplyInsert(1).ok());
  ColumnStatistics updated = *stats;
  updated.num_tuples = maintainer.num_tuples();
  updated.histogram = maintainer.current();
  ASSERT_TRUE(
      catalog.PutColumnStatistics("orders", "customer_id", updated).ok());

  // The published snapshot is now detectably stale...
  EXPECT_LT(store.Current()->source_version(), catalog.version());
  // ...and still serves the pre-maintenance statistics (immutability).
  auto id = before->Resolve("orders", "customer_id");
  ASSERT_TRUE(id.ok());
  EXPECT_DOUBLE_EQ(before->stats(*id).histogram->LookupFrequency(1), 30.0);

  // Republication clears the staleness and serves the maintained counts.
  ASSERT_TRUE(store.RepublishFrom(catalog).ok());
  auto after = store.Current();
  EXPECT_EQ(after->source_version(), catalog.version());
  auto after_id = after->Resolve("orders", "customer_id");
  ASSERT_TRUE(after_id.ok());
  EXPECT_DOUBLE_EQ(after->stats(*after_id).histogram->LookupFrequency(1),
                   32.0);
  EXPECT_DOUBLE_EQ(after->stats(*after_id).num_tuples, 102.0);
}

TEST(SnapshotStoreTest, PublishWhileRebuildInterleavingIsLastWriteWins) {
  Catalog catalog = SmallCatalog();
  SnapshotStore store;

  // A rebuild compiles from the catalog as of version v1...
  auto stale_compile = *CatalogSnapshot::Compile(catalog);
  const uint64_t v1 = catalog.version();

  // ...while a concurrent writer mutates and republishes (version v2).
  catalog
      .PutColumnStatistics("orders", "customer_id",
                           MakeStats(500.0, {{1, 300.0}}, 12.5, 16))
      .Check();
  ASSERT_TRUE(store.RepublishFrom(catalog).ok());
  const uint64_t v2 = catalog.version();
  ASSERT_GT(v2, v1);
  EXPECT_EQ(store.Current()->source_version(), v2);

  // The slow rebuild finishing late wins the swap (the store is a plain
  // last-write-wins RCU cell)...
  store.Publish(stale_compile);
  EXPECT_EQ(store.Current()->source_version(), v1);
  // ...which is exactly why the RefreshManager serializes every republish
  // under its mutex, and why readers can always detect the regression by
  // comparing source_version against the live catalog.
  EXPECT_LT(store.Current()->source_version(), catalog.version());

  // Re-running the republish converges back to the newest statistics.
  ASSERT_TRUE(store.RepublishFrom(catalog).ok());
  EXPECT_EQ(store.Current()->source_version(), v2);
  auto id = store.Current()->Resolve("orders", "customer_id");
  ASSERT_TRUE(id.ok());
  EXPECT_DOUBLE_EQ(store.Current()->stats(*id).num_tuples, 500.0);
}

TEST(SnapshotStoreTest, RepublishVersionsAreMonotoneUnderMutation) {
  Catalog catalog = SmallCatalog();
  SnapshotStore store;
  uint64_t last = 0;
  for (int round = 0; round < 5; ++round) {
    catalog
        .PutColumnStatistics(
            "orders", "customer_id",
            MakeStats(100.0 + round, {{1, 30.0 + round}}, 6.25, 8))
        .Check();
    ASSERT_TRUE(store.RepublishFrom(catalog).ok());
    const uint64_t version = store.Current()->source_version();
    EXPECT_GT(version, last);
    last = version;
  }
}

// ------------------------- multi-source compilation (DESIGN.md §10 merging)

TEST(CatalogSnapshotTest, CompileMergedUnionsDisjointCatalogs) {
  Catalog left;
  left.PutColumnStatistics("orders", "customer_id",
                           MakeStats(100.0, {{1, 30.0}, {2, 20.0}}, 6.25, 8))
      .Check();
  Catalog right;
  right
      .PutColumnStatistics("customers", "id",
                           MakeStats(50.0, {{1, 1.0}, {2, 1.0}}, 1.0, 48))
      .Check();
  right.PutColumnStatistics("orders", "status",
                            MakeStats(100.0, {{0, 90.0}}, 10.0, 1))
      .Check();

  const Catalog* sources[] = {&left, &right};
  auto merged = CatalogSnapshot::CompileMerged(sources);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ((*merged)->num_columns(), 3u);
  // source_version is the SUM of the source versions: any source moving
  // moves the merged version, so staleness detection still works.
  EXPECT_EQ((*merged)->source_version(), left.version() + right.version());
  for (const char* name : {"customer_id", "status"}) {
    EXPECT_TRUE((*merged)->Contains("orders", name));
  }
  auto id = (*merged)->Resolve("customers", "id");
  ASSERT_TRUE(id.ok());
  EXPECT_DOUBLE_EQ((*merged)->stats(*id).num_tuples, 50.0);
}

TEST(CatalogSnapshotTest, CompileMergedOfOneCatalogIsCompile) {
  // The shards = 1 degeneracy the sharded refresh manager relies on.
  Catalog catalog = SmallCatalog();
  const Catalog* sources[] = {&catalog};
  auto merged = CatalogSnapshot::CompileMerged(sources);
  auto plain = CatalogSnapshot::Compile(catalog);
  ASSERT_TRUE(merged.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ((*merged)->num_columns(), (*plain)->num_columns());
  EXPECT_EQ((*merged)->source_version(), (*plain)->source_version());
  auto merged_id = (*merged)->Resolve("orders", "customer_id");
  auto plain_id = (*plain)->Resolve("orders", "customer_id");
  ASSERT_TRUE(merged_id.ok());
  ASSERT_TRUE(plain_id.ok());
  EXPECT_EQ((*merged)->stats(*merged_id).histogram->LookupFrequency(1),
            (*plain)->stats(*plain_id).histogram->LookupFrequency(1));
}

TEST(CatalogSnapshotTest, CompileMergedRejectsDuplicatesAndNulls) {
  Catalog a = SmallCatalog();
  Catalog b;
  b.PutColumnStatistics("orders", "customer_id",  // duplicate key across sources
                        MakeStats(7.0, {{1, 7.0}}, 0.0, 0))
      .Check();
  const Catalog* duplicate[] = {&a, &b};
  EXPECT_TRUE(CatalogSnapshot::CompileMerged(duplicate)
                  .status()
                  .IsInvalidArgument());

  const Catalog* with_null[] = {&a, nullptr};
  EXPECT_TRUE(CatalogSnapshot::CompileMerged(with_null)
                  .status()
                  .IsInvalidArgument());

  // Zero sources compile to a valid empty snapshot.
  auto empty = CatalogSnapshot::CompileMerged({});
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ((*empty)->num_columns(), 0u);
  EXPECT_EQ((*empty)->source_version(), 0u);
}

TEST(SnapshotStoreTest, RepublishFromMergedPublishesOneSnapshot) {
  Catalog left;
  left.PutColumnStatistics("fact", "key",
                           MakeStats(10.0, {{1, 10.0}}, 0.0, 0))
      .Check();
  Catalog right;
  right.PutColumnStatistics("dim", "key", MakeStats(5.0, {{1, 5.0}}, 0.0, 0))
      .Check();
  SnapshotStore store;
  const Catalog* sources[] = {&left, &right};
  auto published = store.RepublishFromMerged(sources);
  ASSERT_TRUE(published.ok());
  EXPECT_EQ(store.Current(), *published);
  EXPECT_TRUE(store.Current()->Contains("fact", "key"));
  EXPECT_TRUE(store.Current()->Contains("dim", "key"));
  EXPECT_EQ(store.Current()->source_version(),
            left.version() + right.version());
}

}  // namespace
}  // namespace hops

