// Direct numerical verification of the paper's theorems on small domains
// where expectations over arrangements can be enumerated exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "histogram/builders.h"
#include "histogram/self_join.h"
#include "util/random.h"

namespace hops {
namespace {

// All 2-bucket bucketizations of m items (both buckets non-empty), each as
// an assignment vector; complements deduplicated.
std::vector<std::vector<uint32_t>> AllTwoBucketAssignments(size_t m) {
  std::vector<std::vector<uint32_t>> out;
  for (uint32_t mask = 1; mask + 1 < (1u << m); ++mask) {
    if ((mask & 1u) != 0) continue;  // fix item 0 in bucket 0 to dedupe
    std::vector<uint32_t> assign(m);
    for (size_t i = 0; i < m; ++i) assign[i] = (mask >> i) & 1;
    out.push_back(std::move(assign));
  }
  return out;
}

// Approximate frequencies of `freqs` under an assignment.
std::vector<double> Approx(const std::vector<double>& freqs,
                           const std::vector<uint32_t>& assign) {
  double sum[2] = {0, 0};
  double cnt[2] = {0, 0};
  for (size_t i = 0; i < freqs.size(); ++i) {
    sum[assign[i]] += freqs[i];
    cnt[assign[i]] += 1;
  }
  std::vector<double> out(freqs.size());
  for (size_t i = 0; i < freqs.size(); ++i) {
    out[i] = sum[assign[i]] / cnt[assign[i]];
  }
  return out;
}

// Mean and mean-square of (S - S') over all relative arrangements of a
// 2-way join R0(B0) |x| R1(B1) under fixed per-relation approximations.
// Enumerating all permutations of one side is exact: S depends only on the
// relative arrangement.
struct ErrorMoments {
  double mean = 0;
  double mean_square = 0;
};
ErrorMoments EnumerateMoments(const std::vector<double>& f0,
                              const std::vector<double>& a0,
                              const std::vector<double>& f1,
                              const std::vector<double>& a1) {
  const size_t m = f0.size();
  std::vector<size_t> perm(m);
  std::iota(perm.begin(), perm.end(), size_t{0});
  double sum = 0, sum_sq = 0;
  size_t count = 0;
  do {
    double s = 0, s_approx = 0;
    for (size_t v = 0; v < m; ++v) {
      s += f0[v] * f1[perm[v]];
      s_approx += a0[v] * a1[perm[v]];
    }
    double err = s - s_approx;
    sum += err;
    sum_sq += err * err;
    ++count;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return {sum / static_cast<double>(count),
          sum_sq / static_cast<double>(count)};
}

TEST(TheoremsTest, Theorem32ExpectedErrorIsZeroForEveryHistogramPair) {
  // E[S - S'] = 0 for *all* histograms, serial or not.
  std::vector<double> b0 = {9, 4, 2, 1, 0};
  std::vector<double> b1 = {7, 7, 3, 2, 1};
  auto assignments = AllTwoBucketAssignments(5);
  for (const auto& as0 : assignments) {
    for (const auto& as1 : assignments) {
      ErrorMoments m =
          EnumerateMoments(b0, Approx(b0, as0), b1, Approx(b1, as1));
      EXPECT_NEAR(m.mean, 0.0, 1e-9) << "a histogram pair violated E[S-S']=0";
    }
  }
}

TEST(TheoremsTest, Theorem33SelfJoinOptimalPairIsVOptimal) {
  // The histogram pair formed by each relation's self-join-optimal serial
  // histogram minimizes E[(S - S')^2] over ALL pairs of 2-bucket
  // histograms — optimality is local and query-independent.
  std::vector<double> b0 = {9, 4, 2, 1, 0};
  std::vector<double> b1 = {7, 7, 3, 2, 1};
  auto set0 = FrequencySet::Make(b0);
  auto set1 = FrequencySet::Make(b1);
  ASSERT_TRUE(set0.ok() && set1.ok());
  auto h0 = BuildVOptSerialExhaustive(*set0, 2);
  auto h1 = BuildVOptSerialExhaustive(*set1, 2);
  ASSERT_TRUE(h0.ok() && h1.ok());
  std::vector<double> a0(b0.size()), a1(b1.size());
  for (size_t i = 0; i < b0.size(); ++i) a0[i] = h0->ApproxFrequency(i);
  for (size_t i = 0; i < b1.size(); ++i) a1[i] = h1->ApproxFrequency(i);
  double vopt_ms = EnumerateMoments(b0, a0, b1, a1).mean_square;

  auto assignments = AllTwoBucketAssignments(5);
  for (const auto& as0 : assignments) {
    for (const auto& as1 : assignments) {
      ErrorMoments m =
          EnumerateMoments(b0, Approx(b0, as0), b1, Approx(b1, as1));
      EXPECT_LE(vopt_ms, m.mean_square + 1e-9);
    }
  }
}

TEST(TheoremsTest, Theorem33HoldsOnRandomIntegerSets) {
  Rng rng(808);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> b0(5), b1(5);
    for (auto& f : b0) f = static_cast<double>(rng.NextBounded(10));
    for (auto& f : b1) f = static_cast<double>(rng.NextBounded(10));
    auto set0 = FrequencySet::Make(b0);
    auto set1 = FrequencySet::Make(b1);
    ASSERT_TRUE(set0.ok() && set1.ok());
    auto h0 = BuildVOptSerialExhaustive(*set0, 2);
    auto h1 = BuildVOptSerialExhaustive(*set1, 2);
    ASSERT_TRUE(h0.ok() && h1.ok());
    std::vector<double> a0(5), a1(5);
    for (size_t i = 0; i < 5; ++i) {
      a0[i] = h0->ApproxFrequency(i);
      a1[i] = h1->ApproxFrequency(i);
    }
    double vopt_ms = EnumerateMoments(b0, a0, b1, a1).mean_square;
    for (const auto& as0 : AllTwoBucketAssignments(5)) {
      for (const auto& as1 : AllTwoBucketAssignments(5)) {
        ErrorMoments m =
            EnumerateMoments(b0, Approx(b0, as0), b1, Approx(b1, as1));
        EXPECT_LE(vopt_ms, m.mean_square + 1e-9) << "trial " << trial;
      }
    }
  }
}

TEST(TheoremsTest, Theorem31SelfJoinOptimumIsSerial) {
  // For self-joins the optimal histogram within all 2-bucket histograms is
  // serial (a contiguous partition of the sorted multiset).
  Rng rng(4242);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> freqs(7);
    for (auto& f : freqs) f = static_cast<double>(rng.NextBounded(30));
    auto set = FrequencySet::Make(freqs);
    ASSERT_TRUE(set.ok());
    double best_any = -1;
    bool best_is_serial = false;
    for (uint32_t mask = 2; mask + 1 < (1u << 7); mask += 2) {
      std::vector<uint32_t> assign(7);
      for (size_t i = 0; i < 7; ++i) assign[i] = (mask >> i) & 1;
      auto bz = Bucketization::FromAssignments(assign, 2);
      if (!bz.ok()) continue;
      auto h = Histogram::Make(*set, *bz);
      ASSERT_TRUE(h.ok());
      double err = SelfJoinError(*h);
      if (best_any < 0 || err < best_any - 1e-12) {
        best_any = err;
        best_is_serial = h->IsSerial();
      } else if (std::fabs(err - best_any) <= 1e-12 && h->IsSerial()) {
        best_is_serial = true;  // a serial histogram ties the optimum
      }
    }
    EXPECT_TRUE(best_is_serial) << "trial " << trial;
  }
}

TEST(TheoremsTest, Theorem31ExtremeCaseOptimaAreSerial) {
  // Theorem 3.1 proper: when the arrangement maximizes the result size
  // (both frequency sets similarly ordered — the rearrangement inequality),
  // some optimal histogram pair is serial. Verify over all 2-bucket pairs.
  Rng rng(1913);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<double> b0(6), b1(6);
    for (auto& f : b0) f = static_cast<double>(rng.NextBounded(20));
    for (auto& f : b1) f = static_cast<double>(rng.NextBounded(20));
    std::sort(b0.begin(), b0.end(), std::greater<>());
    std::sort(b1.begin(), b1.end(), std::greater<>());
    // Sanity: this arrangement maximizes S over relative permutations.
    double s_max = 0;
    for (size_t v = 0; v < 6; ++v) s_max += b0[v] * b1[v];
    {
      std::vector<size_t> perm(6);
      std::iota(perm.begin(), perm.end(), size_t{0});
      do {
        double s = 0;
        for (size_t v = 0; v < 6; ++v) s += b0[v] * b1[perm[v]];
        ASSERT_LE(s, s_max + 1e-9);
      } while (std::next_permutation(perm.begin(), perm.end()));
    }
    // Search all 2-bucket histogram pairs for the |S - S'| optimum.
    auto assignments = AllTwoBucketAssignments(6);
    double best = -1;
    bool serial_pair_optimal = false;
    // Two passes: find the optimum, then check whether a pair of *serial*
    // histograms attains it.
    std::vector<std::pair<double, std::pair<size_t, size_t>>> errs;
    for (size_t i = 0; i < assignments.size(); ++i) {
      for (size_t j = 0; j < assignments.size(); ++j) {
        std::vector<double> a0 = Approx(b0, assignments[i]);
        std::vector<double> a1 = Approx(b1, assignments[j]);
        double s_approx = 0;
        for (size_t v = 0; v < 6; ++v) s_approx += a0[v] * a1[v];
        double err = std::fabs(s_max - s_approx);
        if (best < 0 || err < best) best = err;
        errs.push_back({err, {i, j}});
      }
    }
    auto is_serial = [&](const std::vector<double>& freqs,
                         const std::vector<uint32_t>& assign) {
      // Bucket frequency ranges must not interleave.
      double min0 = 1e300, max0 = -1e300, min1 = 1e300, max1 = -1e300;
      for (size_t v = 0; v < freqs.size(); ++v) {
        if (assign[v] == 0) {
          min0 = std::min(min0, freqs[v]);
          max0 = std::max(max0, freqs[v]);
        } else {
          min1 = std::min(min1, freqs[v]);
          max1 = std::max(max1, freqs[v]);
        }
      }
      return max0 <= min1 || max1 <= min0;
    };
    for (const auto& [err, pair] : errs) {
      if (err > best + 1e-9) continue;
      if (is_serial(b0, assignments[pair.first]) &&
          is_serial(b1, assignments[pair.second])) {
        serial_pair_optimal = true;
        break;
      }
    }
    EXPECT_TRUE(serial_pair_optimal) << "trial " << trial;
  }
}

TEST(TheoremsTest, Corollary31ExtremeCaseBiasedOptimaAreEndBiased) {
  // Corollary 3.1: in the extreme arrangement, the optimal *biased*
  // histogram (beta-1 singletons + 1 bucket) is end-biased. beta = 2: one
  // singleton per relation; check every singleton-pair choice.
  std::vector<double> b0 = {17, 9, 5, 3, 2, 1};
  std::vector<double> b1 = {14, 11, 6, 4, 2, 2};  // both sorted descending
  double s_max = 0;
  for (size_t v = 0; v < 6; ++v) s_max += b0[v] * b1[v];
  auto approx_single = [](const std::vector<double>& f, size_t singleton) {
    double total = 0;
    for (double x : f) total += x;
    double rest_avg = (total - f[singleton]) / 5.0;
    std::vector<double> out(6, rest_avg);
    out[singleton] = f[singleton];
    return out;
  };
  double best = -1;
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < 6; ++j) {
      std::vector<double> a0 = approx_single(b0, i);
      std::vector<double> a1 = approx_single(b1, j);
      double s_approx = 0;
      for (size_t v = 0; v < 6; ++v) s_approx += a0[v] * a1[v];
      double err = std::fabs(s_max - s_approx);
      if (best < 0 || err < best) best = err;
    }
  }
  bool end_biased_optimal = false;
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < 6; ++j) {
      std::vector<double> a0 = approx_single(b0, i);
      std::vector<double> a1 = approx_single(b1, j);
      double s_approx = 0;
      for (size_t v = 0; v < 6; ++v) s_approx += a0[v] * a1[v];
      if (std::fabs(s_max - s_approx) > best + 1e-9) continue;
      // End-biased for distinct descending values: singleton is position 0
      // (highest) or 5 (lowest).
      if ((i == 0 || i == 5) && (j == 0 || j == 5)) {
        end_biased_optimal = true;
      }
    }
  }
  EXPECT_TRUE(end_biased_optimal);
}

TEST(TheoremsTest, Proposition31MatchesDirectEnumeration) {
  // S' and S - S' from the formulas equal the values computed by expanding
  // the self-join explicitly.
  std::vector<double> freqs = {6, 6, 2, 1, 10};
  auto set = FrequencySet::Make(freqs);
  ASSERT_TRUE(set.ok());
  auto h = BuildVOptSerialExhaustive(*set, 2);
  ASSERT_TRUE(h.ok());
  double s_direct = 0, s_approx_direct = 0;
  for (size_t v = 0; v < freqs.size(); ++v) {
    s_direct += freqs[v] * freqs[v];
    double a = h->ApproxFrequency(v);
    s_approx_direct += a * a;
  }
  EXPECT_NEAR(SelfJoinApproxSize(*h), s_approx_direct, 1e-9);
  EXPECT_NEAR(SelfJoinError(*h), s_direct - s_approx_direct, 1e-9);
}

}  // namespace
}  // namespace hops
