// Full-pipeline integration tests: load relations into the engine, ANALYZE
// into the catalog, estimate with the optimizer-facing API, and compare
// against executed ground truth.

#include <gtest/gtest.h>

#include "engine/executor.h"
#include "engine/hash_join.h"
#include "engine/statistics.h"
#include "histogram/maintenance.h"
#include "estimator/join_estimator.h"
#include "estimator/selectivity.h"
#include "stats/nba_data.h"
#include "stats/zipf.h"
#include "util/random.h"

namespace hops {
namespace {

// A WorksFor-like relation: employees working in departments, with a skewed
// department-size distribution.
Relation MakeWorksFor(uint64_t seed, size_t num_employees) {
  auto schema = Schema::Make({{"ename", ValueType::kString},
                              {"dname", ValueType::kString},
                              {"year", ValueType::kInt64}});
  auto rel = Relation::Make("WorksFor", *std::move(schema));
  EXPECT_TRUE(rel.ok());
  const std::vector<std::string> departments = {"toy", "jewelry", "shoe",
                                                "candy"};
  // Zipf-ish department sizes: toy gets ~half the employees.
  const std::vector<double> weights = {0.5, 0.25, 0.15, 0.1};
  Rng rng(seed);
  for (size_t i = 0; i < num_employees; ++i) {
    double draw = rng.NextDouble();
    size_t dept = 0;
    double acc = 0;
    for (size_t d = 0; d < weights.size(); ++d) {
      acc += weights[d];
      if (draw < acc) {
        dept = d;
        break;
      }
    }
    int64_t year = 1990 + rng.NextInt(0, 4);
    rel->AppendUnchecked({Value("e" + std::to_string(i)),
                          Value(departments[dept]), Value(year)});
  }
  return *std::move(rel);
}

TEST(EndToEndTest, SelectionEstimatesMatchTruthForExplicitValues) {
  Relation rel = MakeWorksFor(7, 2000);
  Catalog catalog;
  StatisticsOptions options;
  options.histogram_class = StatisticsHistogramClass::kVOptEndBiased;
  options.num_buckets = 3;
  ASSERT_TRUE(AnalyzeAndStore(rel, "dname", &catalog, options).ok());
  auto stats = catalog.GetColumnStatistics("WorksFor", "dname");
  ASSERT_TRUE(stats.ok());

  // Count truth directly.
  double toy_truth = 0;
  for (const auto& t : rel.tuples()) {
    if (t[1] == Value("toy")) toy_truth += 1;
  }
  // "toy" is the dominant department; the end-biased histogram stores its
  // frequency exactly.
  double toy_est = EstimateEqualitySelection(*stats, Value("toy"));
  EXPECT_DOUBLE_EQ(toy_est, toy_truth);
  // Complement estimate is consistent.
  EXPECT_DOUBLE_EQ(EstimateNotEqualsSelection(*stats, Value("toy")),
                   2000.0 - toy_truth);
}

TEST(EndToEndTest, YearRangeEstimateIsReasonable) {
  Relation rel = MakeWorksFor(11, 3000);
  Catalog catalog;
  StatisticsOptions options;
  options.num_buckets = 3;
  ASSERT_TRUE(AnalyzeAndStore(rel, "year", &catalog, options).ok());
  auto stats = catalog.GetColumnStatistics("WorksFor", "year");
  ASSERT_TRUE(stats.ok());
  double truth = 0;
  for (const auto& t : rel.tuples()) {
    int64_t y = t[2].AsInt64();
    if (y >= 1991 && y <= 1993) truth += 1;
  }
  auto est = EstimateRangeSelection(*stats, RangeBounds{1991, 1993});
  ASSERT_TRUE(est.ok());
  // Years are near-uniform; a 3-bucket histogram should land close.
  EXPECT_NEAR(*est, truth, 0.15 * truth);
}

TEST(EndToEndTest, JoinEstimateTracksExecutedTruth) {
  // Employees join Departments through dname; Departments has one tuple
  // per department name plus a few extinct departments.
  Relation works = MakeWorksFor(13, 2500);
  auto dschema = Schema::Make({{"dname", ValueType::kString}});
  auto depts = Relation::Make("Departments", *std::move(dschema));
  ASSERT_TRUE(depts.ok());
  for (const char* d :
       {"toy", "jewelry", "shoe", "candy", "hat", "umbrella"}) {
    ASSERT_TRUE(depts->Append({Value(d)}).ok());
  }

  Catalog catalog;
  StatisticsOptions options;
  options.num_buckets = 5;
  ASSERT_TRUE(AnalyzeAndStore(works, "dname", &catalog, options).ok());
  ASSERT_TRUE(AnalyzeAndStore(*depts, "dname", &catalog, options).ok());

  auto ls = catalog.GetColumnStatistics("WorksFor", "dname");
  auto rs = catalog.GetColumnStatistics("Departments", "dname");
  ASSERT_TRUE(ls.ok() && rs.ok());
  double est = EstimateEquiJoinSize(*ls, *rs);

  auto truth = HashJoinCount(works, "dname", *depts, "dname");
  ASSERT_TRUE(truth.ok());
  // Every employee matches exactly one department: truth = 2500.
  EXPECT_DOUBLE_EQ(*truth, 2500.0);
  EXPECT_NEAR(est, *truth, 0.25 * *truth);
}

TEST(EndToEndTest, ChainEstimateAgainstExecutedChain) {
  // R0(a) -- R1(a, b) -- R2(b) with skewed columns; compare the catalog
  // estimate against execution.
  Rng rng(17);
  auto schema0 = Schema::Make({{"a", ValueType::kInt64}});
  auto r0 = Relation::Make("R0", *std::move(schema0));
  ASSERT_TRUE(r0.ok());
  for (int i = 0; i < 600; ++i) {
    // Skewed toward small values.
    int64_t v = static_cast<int64_t>(
        std::min(rng.NextBounded(10), rng.NextBounded(10)));
    r0->AppendUnchecked({Value(v)});
  }
  auto schema1 = Schema::Make({{"a", ValueType::kInt64},
                               {"b", ValueType::kInt64}});
  auto r1 = Relation::Make("R1", *std::move(schema1));
  ASSERT_TRUE(r1.ok());
  for (int i = 0; i < 400; ++i) {
    r1->AppendUnchecked({Value(static_cast<int64_t>(rng.NextBounded(10))),
                         Value(static_cast<int64_t>(rng.NextBounded(8)))});
  }
  auto schema2 = Schema::Make({{"b", ValueType::kInt64}});
  auto r2 = Relation::Make("R2", *std::move(schema2));
  ASSERT_TRUE(r2.ok());
  for (int i = 0; i < 300; ++i) {
    r2->AppendUnchecked({Value(static_cast<int64_t>(
        std::min(rng.NextBounded(8), rng.NextBounded(8))))});
  }

  Catalog catalog;
  StatisticsOptions options;
  options.num_buckets = 10;
  ASSERT_TRUE(AnalyzeAndStore(*r0, "a", &catalog, options).ok());
  ASSERT_TRUE(AnalyzeAndStore(*r1, "a", &catalog, options).ok());
  ASSERT_TRUE(AnalyzeAndStore(*r1, "b", &catalog, options).ok());
  ASSERT_TRUE(AnalyzeAndStore(*r2, "b", &catalog, options).ok());

  std::vector<ChainJoinSpec> specs = {
      {"R0", "", "a"}, {"R1", "a", "b"}, {"R2", "b", ""}};
  auto est = EstimateChainJoinSize(catalog, specs);
  ASSERT_TRUE(est.ok());

  std::vector<ChainJoinStep> steps = {
      {&*r0, "", "a"}, {&*r1, "a", "b"}, {&*r2, "b", ""}};
  auto truth = ExecuteChainJoinCount(steps);
  ASSERT_TRUE(truth.ok());
  ASSERT_GT(*truth, 0.0);
  // The chain estimate relies on attribute independence (which holds here
  // by construction) and fine histograms: expect within 2x.
  EXPECT_GT(*est, *truth / 2);
  EXPECT_LT(*est, *truth * 2);
}

TEST(EndToEndTest, MaintainedStatisticsServeFreshEstimates) {
  // ANALYZE once, then keep the catalog entry fresh through a stream of
  // inserts with the maintenance machinery; equality estimates for
  // explicitly stored values must track the live relation exactly.
  Relation rel = MakeWorksFor(31, 1500);
  StatisticsOptions options;
  options.num_buckets = 3;
  auto stats = AnalyzeColumn(rel, "dname", options);
  ASSERT_TRUE(stats.ok());
  HistogramMaintainer maintainer(stats->histogram, stats->num_tuples);

  // Stream 300 new toy-department hires.
  double toy_before = EstimateEqualitySelection(*stats, Value("toy"));
  for (int i = 0; i < 300; ++i) {
    rel.AppendUnchecked({Value("n" + std::to_string(i)), Value("toy"),
                         Value(int64_t{1994})});
    ASSERT_TRUE(maintainer.ApplyInsert(CatalogKeyFor(Value("toy"))).ok());
  }
  ColumnStatistics live = *stats;
  live.histogram = maintainer.current();
  live.num_tuples = maintainer.num_tuples();
  double toy_after = EstimateEqualitySelection(live, Value("toy"));
  EXPECT_DOUBLE_EQ(toy_after, toy_before + 300.0);

  double truth = 0;
  for (const auto& t : rel.tuples()) {
    if (t[1] == Value("toy")) truth += 1;
  }
  EXPECT_DOUBLE_EQ(toy_after, truth);
  // 300/1500 churn exceeds the default 10% drift threshold.
  EXPECT_TRUE(maintainer.NeedsRebuild());
}

TEST(EndToEndTest, CatalogSurvivesSerializationMidWorkload) {
  // ANALYZE -> serialize -> "restart" -> estimates unchanged.
  Relation rel = MakeWorksFor(37, 1200);
  Catalog catalog;
  StatisticsOptions options;
  options.num_buckets = 4;
  ASSERT_TRUE(AnalyzeAndStore(rel, "dname", &catalog, options).ok());
  ASSERT_TRUE(AnalyzeAndStore(rel, "year", &catalog, options).ok());
  auto before = catalog.GetColumnStatistics("WorksFor", "dname");
  ASSERT_TRUE(before.ok());

  auto restored = Catalog::Deserialize(catalog.Serialize());
  ASSERT_TRUE(restored.ok());
  auto after = restored->GetColumnStatistics("WorksFor", "dname");
  ASSERT_TRUE(after.ok());
  for (const char* dept : {"toy", "jewelry", "shoe", "candy"}) {
    EXPECT_DOUBLE_EQ(EstimateEqualitySelection(*after, Value(dept)),
                     EstimateEqualitySelection(*before, Value(dept)));
  }
}

TEST(EndToEndTest, NbaWorkloadSelectionsFromCatalog) {
  auto ds = NbaDataset::Generate(1000, 23);
  ASSERT_TRUE(ds.ok());
  auto schema = Schema::Make({{"points", ValueType::kInt64},
                              {"minutes", ValueType::kInt64},
                              {"games", ValueType::kInt64}});
  auto rel = Relation::Make("Players", *std::move(schema));
  ASSERT_TRUE(rel.ok());
  for (const PlayerSeason& p : ds->players()) {
    rel->AppendUnchecked({Value(static_cast<int64_t>(p.points)),
                          Value(static_cast<int64_t>(p.minutes)),
                          Value(static_cast<int64_t>(p.games))});
  }
  Catalog catalog;
  StatisticsOptions options;
  options.num_buckets = 11;  // DB2-style: 10 frequent values + default
  for (const char* col : {"points", "minutes", "games"}) {
    ASSERT_TRUE(AnalyzeAndStore(*rel, col, &catalog, options).ok());
  }
  // Every explicit (top-10) value estimates exactly.
  for (const char* col : {"points", "minutes", "games"}) {
    auto stats = catalog.GetColumnStatistics("Players", col);
    ASSERT_TRUE(stats.ok());
    for (const auto& [value, freq] : stats->histogram.explicit_entries()) {
      double truth = 0;
      auto col_idx = rel->schema().ColumnIndex(col);
      ASSERT_TRUE(col_idx.ok());
      for (const auto& t : rel->tuples()) {
        if (t[*col_idx].AsInt64() == value) truth += 1;
      }
      EXPECT_DOUBLE_EQ(freq, truth) << col << "=" << value;
    }
    // And total estimated mass equals the relation size.
    EXPECT_NEAR(stats->histogram.EstimatedTotal(), 1000.0, 1.0);
  }
}

}  // namespace
}  // namespace hops
