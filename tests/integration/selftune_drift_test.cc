// Self-tuning under drift, end to end (DESIGN.md §15): a v-optimal build
// goes stale when the underlying Zipf distribution drifts, and the
// SelfTuner — fed only (estimated, actual) query outcomes through the
// serving-layer feedback hook — must pull the served estimates back toward
// the drifted truth without a rebuild. The flip side of the contract is
// determinism: with tuning off, feeding the very same outcomes must leave
// both the stored statistics and every served estimate bit-identical to a
// process that never saw feedback at all.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "estimator/serving.h"
#include "refresh/refresh_manager.h"
#include "stats/zipf.h"

namespace hops {
namespace {

constexpr size_t kDomain = 200;    // values 0 .. 199
constexpr int64_t kDriftShift = 60;

// q-error with the standard one-tuple clamp (telemetry/accuracy.h).
double QError(double estimated, double actual) {
  const double e = std::max(estimated, 1.0);
  const double a = std::max(actual, 1.0);
  return std::max(e / a, a / e);
}

// Zipf frequencies assigned to values by rank: at build time value v holds
// the frequency of rank v; after the drift the whole skew pattern rotates
// by kDriftShift, so yesterday's heavy hitters go cold and a fresh set of
// (mostly default-bucket) values heats up — the adversarial case for a
// frozen end-biased histogram.
std::vector<double> BaseFrequencies() {
  ZipfParams params;
  params.total = 20000.0;
  params.num_values = kDomain;
  params.skew = 1.0;
  auto zipf = ZipfFrequencies(params);
  zipf.status().Check();
  return *zipf;
}

double DriftedTruth(const std::vector<double>& base, int64_t value) {
  return base[static_cast<size_t>((value + kDriftShift) %
                                  static_cast<int64_t>(kDomain))];
}

// The query workload: every point value plus a few wide ranges, resolved
// against whatever snapshot the store currently publishes.
std::vector<EstimateSpec> Workload(ColumnId id) {
  std::vector<EstimateSpec> specs;
  for (int64_t v = 0; v < static_cast<int64_t>(kDomain); ++v) {
    specs.push_back(EstimateSpec::Equality(id, Value(v)));
  }
  for (int64_t lo = 0; lo < static_cast<int64_t>(kDomain); lo += 50) {
    RangeBounds bounds;
    bounds.low = lo;
    bounds.high = lo + 49;
    specs.push_back(EstimateSpec::Range(id, bounds));
  }
  return specs;
}

double TrueResultSize(const std::vector<double>& base,
                      const EstimateSpec& spec) {
  if (spec.kind == EstimateKind::kEquality) {
    return DriftedTruth(base, spec.literal.AsInt64());
  }
  double total = 0;
  for (int64_t v = spec.bounds.low; v <= spec.bounds.high; ++v) {
    total += DriftedTruth(base, v);
  }
  return total;
}

struct Harness {
  Catalog catalog;
  SnapshotStore store;
  std::unique_ptr<RefreshManager> manager;
  RefreshColumnId column = 0;

  explicit Harness(bool tuning_enabled) {
    RefreshOptions options;
    options.statistics.num_buckets = 16;
    options.tuning.enabled = tuning_enabled;
    // Aggressive promotion policy: after the drift a band of values sits
    // well above the default average but below the conservative 4x bar;
    // left in the default bucket they drag its shared average up and away
    // from the quiet majority. Promoting at 2x with a wider per-tick
    // budget pulls that band out instead.
    options.tuning.promotion_ratio = 2.0;
    options.tuning.max_promotions_per_tick = 8;
    manager = std::make_unique<RefreshManager>(&catalog, &store, options);
    std::vector<int64_t> values;
    std::vector<double> freqs = BaseFrequencies();
    for (int64_t v = 0; v < static_cast<int64_t>(kDomain); ++v) {
      values.push_back(v);
    }
    auto id = manager->RegisterColumn("events", "kind", values, freqs);
    id.status().Check();
    column = *id;
  }

  // Serves the workload from the current snapshot and returns the per-spec
  // estimates (the drifted truth is never consulted here — this is exactly
  // what a client would see).
  std::vector<double> Serve(const std::vector<double>& base,
                            std::vector<double>* qerrors) const {
    const std::shared_ptr<const CatalogSnapshot> snapshot = store.Current();
    auto snapshot_id = snapshot->Resolve("events", "kind");
    snapshot_id.status().Check();
    std::vector<double> estimates;
    for (const EstimateSpec& spec : Workload(*snapshot_id)) {
      auto estimate = EstimateOne(*snapshot, spec);
      estimate.status().Check();
      estimates.push_back(*estimate);
      if (qerrors != nullptr) {
        qerrors->push_back(QError(*estimate, TrueResultSize(base, spec)));
      }
    }
    return estimates;
  }

  // One feedback round: serve, report every outcome with its true (drifted)
  // result size through the serving-layer hook, then let the tuner fold the
  // buffered observations in. With tuning off this still feeds the rebuild
  // EWMA — but must adjust nothing.
  void FeedAndTune(const std::vector<double>& base) {
    const std::shared_ptr<const CatalogSnapshot> snapshot = store.Current();
    auto snapshot_id = snapshot->Resolve("events", "kind");
    snapshot_id.status().Check();
    for (const EstimateSpec& spec : Workload(*snapshot_id)) {
      auto estimate = EstimateOne(*snapshot, spec);
      estimate.status().Check();
      ReportEstimateOutcome(*snapshot, spec, *estimate,
                            TrueResultSize(base, spec), manager.get())
          .Check();
    }
    auto tuned = manager->TuneColumns();
    tuned.status().Check();
  }

  std::string HistogramBytes() const {
    auto stats = catalog.GetColumnStatistics("events", "kind");
    stats.status().Check();
    return stats->histogram.Encode();
  }
};

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

TEST(SelfTuneDriftTest, TunedMedianQErrorBeatsStaleVOpt) {
  const std::vector<double> base = BaseFrequencies();
  Harness stale(/*tuning_enabled=*/false);
  Harness tuned(/*tuning_enabled=*/true);

  std::vector<double> stale_q;
  stale.Serve(base, &stale_q);

  // Repeated serve → feed → tune rounds, exactly the production loop
  // between two full rebuilds (each round re-serves from the republished
  // snapshot). The damped updates need several rounds: promotions are
  // capped per tick and the shared default bucket moves by error/count.
  for (int round = 0; round < 12; ++round) tuned.FeedAndTune(base);
  std::vector<double> tuned_q;
  tuned.Serve(base, &tuned_q);

  const double stale_median = Median(stale_q);
  const double tuned_median = Median(tuned_q);
  EXPECT_LT(tuned_median, stale_median);  // strictly better, the whole point
  // And not marginally: the damped updates converge most of the way on the
  // point workload within four rounds.
  EXPECT_LT(tuned_median, 1.0 + 0.5 * (stale_median - 1.0));

  // The tuner worked in place: no rebuild happened, yet the snapshot moved.
  RefreshStats stats = tuned.manager->stats();
  EXPECT_EQ(stats.rebuilds_total, 0u);
  EXPECT_GT(stats.tuning_adjustments, 0u);
  EXPECT_GT(tuned.store.publish_count(), 1u);
}

TEST(SelfTuneDriftTest, TuningOffIsBitIdenticalToNeverFed) {
  const std::vector<double> base = BaseFrequencies();
  Harness never_fed(/*tuning_enabled=*/false);
  Harness fed(/*tuning_enabled=*/false);

  const uint64_t published_before = fed.store.publish_count();
  for (int round = 0; round < 4; ++round) fed.FeedAndTune(base);

  // Same stored bytes, same served bits, no extra publication: feeding
  // outcomes with tuning off is observationally free.
  EXPECT_EQ(fed.HistogramBytes(), never_fed.HistogramBytes());
  EXPECT_EQ(fed.store.publish_count(), published_before);
  const std::vector<double> a = never_fed.Serve(base, nullptr);
  const std::vector<double> b = fed.Serve(base, nullptr);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "spec " << i;  // exact bits, not EXPECT_NEAR
  }
  // The feedback EWMA did move — the signal is alive, only the in-place
  // mutation is fenced off.
  auto score = fed.manager->ScoreColumn(fed.column);
  score.status().Check();
  EXPECT_GT(score->signals.feedback_error, 0.0);
}

}  // namespace
}  // namespace hops
