// Workload-level integration: a small analytics schema, a mixed batch of
// predicates and joins, and aggregate estimation-quality assertions
// (q-error), comparing the paper's recommended statistics against the
// uniformity assumption end to end.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "engine/executor.h"
#include "engine/predicate.h"
#include "engine/statistics.h"
#include "estimator/join_estimator.h"
#include "estimator/predicate_estimator.h"
#include "util/random.h"

namespace hops {
namespace {

double QError(double estimate, double truth) {
  // Standard plan-quality metric: max(est/truth, truth/est), with a +1
  // smoothing so empty results do not blow up.
  double e = estimate + 1.0, t = truth + 1.0;
  return std::max(e / t, t / e);
}

struct Workload {
  Relation customers, orders, items;
  Catalog catalog;

  static Workload Make(StatisticsHistogramClass cls) {
    Workload w;
    Rng rng(0xBEEF);
    w.customers = *Relation::Make(
        "Customers", *Schema::Make({{"cust", ValueType::kInt64},
                                    {"tier", ValueType::kInt64}}));
    w.orders = *Relation::Make(
        "Orders", *Schema::Make({{"cust", ValueType::kInt64},
                                 {"item", ValueType::kInt64},
                                 {"qty", ValueType::kInt64}}));
    w.items = *Relation::Make(
        "Items", *Schema::Make({{"item", ValueType::kInt64}}));
    for (int64_t c = 0; c < 100; ++c) {
      w.customers.AppendUnchecked(
          {Value(c), Value(static_cast<int64_t>(rng.NextBounded(4)))});
    }
    for (int i = 0; i < 8000; ++i) {
      int64_t cust = static_cast<int64_t>(std::min(
          {rng.NextBounded(100), rng.NextBounded(100),
           rng.NextBounded(100)}));
      int64_t item = static_cast<int64_t>(
          std::min(rng.NextBounded(300), rng.NextBounded(300)));
      int64_t qty = 1 + static_cast<int64_t>(
                            std::min(rng.NextBounded(12),
                                     rng.NextBounded(12)));
      w.orders.AppendUnchecked({Value(cust), Value(item), Value(qty)});
    }
    for (int64_t it = 0; it < 300; ++it) {
      w.items.AppendUnchecked({Value(it)});
    }
    StatisticsOptions options;
    options.histogram_class = cls;
    options.num_buckets = 11;
    AnalyzeAndStore(w.customers, "cust", &w.catalog, options).Check();
    AnalyzeAndStore(w.customers, "tier", &w.catalog, options).Check();
    AnalyzeAndStore(w.orders, "cust", &w.catalog, options).Check();
    AnalyzeAndStore(w.orders, "item", &w.catalog, options).Check();
    AnalyzeAndStore(w.orders, "qty", &w.catalog, options).Check();
    AnalyzeAndStore(w.items, "item", &w.catalog, options).Check();
    return w;
  }

  // Median q-error over the selection batch.
  double SelectionMedianQError() const {
    const char* predicates[] = {
        "cust = 0",       "cust = 1",         "cust = 50",
        "qty = 1",        "qty >= 8",         "qty <= 2",
        "item = 0",       "cust < 10",        "cust = 0 AND qty = 1",
        "qty > 3 AND qty < 9",
    };
    std::vector<double> qs;
    for (const char* text : predicates) {
      auto pred = Predicate::Parse(text);
      EXPECT_TRUE(pred.ok()) << text;
      auto est = EstimatePredicateCardinality(catalog, "Orders", *pred);
      EXPECT_TRUE(est.ok()) << text;
      auto truth = CountWhere(orders, *pred);
      EXPECT_TRUE(truth.ok()) << text;
      qs.push_back(QError(*est, *truth));
    }
    std::sort(qs.begin(), qs.end());
    return qs[qs.size() / 2];
  }

  // q-error of the 3-way chain join estimate.
  double ChainQError() const {
    std::vector<ChainJoinSpec> specs = {{"Customers", "", "cust"},
                                        {"Orders", "cust", "item"},
                                        {"Items", "item", ""}};
    auto est = EstimateChainJoinSize(catalog, specs);
    EXPECT_TRUE(est.ok());
    std::vector<ChainJoinStep> steps = {{&customers, "", "cust"},
                                        {&orders, "cust", "item"},
                                        {&items, "item", ""}};
    auto truth = ExecuteChainJoinCount(steps);
    EXPECT_TRUE(truth.ok());
    return QError(*est, *truth);
  }
};

TEST(WorkloadTest, EndBiasedStatisticsKeepSelectionQErrorLow) {
  Workload w = Workload::Make(StatisticsHistogramClass::kVOptEndBiased);
  EXPECT_LE(w.SelectionMedianQError(), 1.5);
}

TEST(WorkloadTest, EndBiasedBeatsTrivialAcrossTheWorkload) {
  Workload good = Workload::Make(StatisticsHistogramClass::kVOptEndBiased);
  Workload bad = Workload::Make(StatisticsHistogramClass::kTrivial);
  EXPECT_LT(good.SelectionMedianQError(), bad.SelectionMedianQError());
}

TEST(WorkloadTest, ChainJoinEstimateWithinSmallFactor) {
  Workload w = Workload::Make(StatisticsHistogramClass::kVOptEndBiased);
  EXPECT_LE(w.ChainQError(), 1.6);
}

TEST(WorkloadTest, SerialStatisticsAtLeastAsGoodAsEndBiasedOnSelections) {
  Workload serial = Workload::Make(StatisticsHistogramClass::kVOptSerialDP);
  Workload biased = Workload::Make(StatisticsHistogramClass::kVOptEndBiased);
  // Serial statistics should not be meaningfully worse on the same batch.
  EXPECT_LE(serial.SelectionMedianQError(),
            1.25 * biased.SelectionMedianQError());
}

}  // namespace
}  // namespace hops
