#include "stats/frequency_tensor.h"

#include <gtest/gtest.h>

namespace hops {
namespace {

FrequencyTensor MustMake(std::vector<size_t> shape,
                         std::vector<Frequency> data) {
  auto t = FrequencyTensor::Make(std::move(shape), std::move(data));
  EXPECT_TRUE(t.ok()) << t.status();
  return *std::move(t);
}

TEST(FrequencyTensorTest, ZeroAndShape) {
  auto t = FrequencyTensor::Zero({2, 3, 4});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->rank(), 3u);
  EXPECT_EQ(t->num_cells(), 24u);
  EXPECT_DOUBLE_EQ(t->Total(), 0.0);
}

TEST(FrequencyTensorTest, Validation) {
  EXPECT_FALSE(FrequencyTensor::Zero({2, 0}).ok());
  EXPECT_TRUE(FrequencyTensor::Make({2, 2}, {1, 2, 3})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(FrequencyTensor::Make({2}, {1, -1})
                  .status()
                  .IsInvalidArgument());
  // Cap on dense size.
  EXPECT_TRUE(FrequencyTensor::Zero({100000, 100000})
                  .status()
                  .IsResourceExhausted());
}

TEST(FrequencyTensorTest, RowMajorIndexing) {
  FrequencyTensor t = MustMake({2, 3}, {1, 2, 3, 4, 5, 6});
  std::vector<size_t> idx = {1, 2};
  EXPECT_DOUBLE_EQ(t.At(idx), 6.0);
  idx = {0, 1};
  EXPECT_DOUBLE_EQ(t.At(idx), 2.0);
  t.Set(idx, 20.0);
  EXPECT_DOUBLE_EQ(t.At(idx), 20.0);
  EXPECT_EQ(t.FlatIndex(idx), 1u);
}

TEST(FrequencyTensorTest, Rank3Indexing) {
  std::vector<Frequency> data(24);
  for (size_t i = 0; i < 24; ++i) data[i] = static_cast<double>(i);
  FrequencyTensor t = MustMake({2, 3, 4}, data);
  std::vector<size_t> idx = {1, 2, 3};
  EXPECT_DOUBLE_EQ(t.At(idx), 23.0);
  idx = {1, 0, 0};
  EXPECT_DOUBLE_EQ(t.At(idx), 12.0);
}

TEST(FrequencyTensorTest, ContractMatrixMatchesMatVec) {
  // Rank-2 contraction along dim 1 = matrix * vector.
  FrequencyTensor t = MustMake({2, 3}, {1, 2, 3, 4, 5, 6});
  std::vector<Frequency> v = {1, 0, 2};
  auto c = t.ContractDimension(1, v);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->rank(), 1u);
  std::vector<size_t> i0 = {0}, i1 = {1};
  EXPECT_DOUBLE_EQ(c->At(i0), 1 + 6.0);
  EXPECT_DOUBLE_EQ(c->At(i1), 4 + 12.0);
}

TEST(FrequencyTensorTest, ContractDim0MatchesVecMat) {
  FrequencyTensor t = MustMake({2, 3}, {1, 2, 3, 4, 5, 6});
  std::vector<Frequency> v = {2, 1};
  auto c = t.ContractDimension(0, v);
  ASSERT_TRUE(c.ok());
  std::vector<size_t> idx = {0};
  EXPECT_DOUBLE_EQ(c->At(idx), 2 * 1 + 4.0);
  idx = {2};
  EXPECT_DOUBLE_EQ(c->At(idx), 2 * 3 + 6.0);
}

TEST(FrequencyTensorTest, FullContractionYieldsScalar) {
  FrequencyTensor t = MustMake({2, 2}, {1, 2, 3, 4});
  std::vector<Frequency> v0 = {1, 1}, v1 = {1, 1};
  auto c1 = t.ContractDimension(0, v0);
  ASSERT_TRUE(c1.ok());
  auto c2 = c1->ContractDimension(0, v1);
  ASSERT_TRUE(c2.ok());
  EXPECT_EQ(c2->rank(), 0u);
  auto s = c2->ScalarValue();
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(*s, 10.0);
}

TEST(FrequencyTensorTest, ContractValidation) {
  FrequencyTensor t = MustMake({2, 3}, {1, 2, 3, 4, 5, 6});
  std::vector<Frequency> wrong = {1, 2};
  EXPECT_TRUE(t.ContractDimension(1, wrong).status().IsInvalidArgument());
  std::vector<Frequency> ok = {1, 2};
  EXPECT_TRUE(t.ContractDimension(5, ok).status().IsOutOfRange());
  auto scalar = FrequencyTensor::Make({}, {7});
  ASSERT_TRUE(scalar.ok());
  EXPECT_TRUE(scalar->ContractDimension(0, ok)
                  .status()
                  .IsInvalidArgument());
  EXPECT_DOUBLE_EQ(*scalar->ScalarValue(), 7.0);
  EXPECT_TRUE(t.ScalarValue().status().IsInvalidArgument());
}

TEST(FrequencyTensorTest, ToFrequencySetFlattens) {
  FrequencyTensor t = MustMake({2, 2}, {5, 1, 3, 2});
  FrequencySet set = t.ToFrequencySet();
  EXPECT_EQ(set.size(), 4u);
  EXPECT_DOUBLE_EQ(set.Total(), 11.0);
}

TEST(FrequencyTensorTest, ChainProductMatchesFrequencyMatrix) {
  // The rank-2 tensor contraction pipeline reproduces the chain-product of
  // frequency_matrix.h on a 2-join query.
  FrequencyTensor center = MustMake({2, 3}, {1, 2, 3, 4, 5, 6});
  std::vector<Frequency> left = {2, 7};   // R0
  std::vector<Frequency> right = {1, 0, 5};  // R2
  auto c1 = center.ContractDimension(0, left);
  ASSERT_TRUE(c1.ok());
  auto c2 = c1->ContractDimension(0, right);
  ASSERT_TRUE(c2.ok());
  // Direct: sum_{i,j} left[i]*T[i,j]*right[j].
  double direct = 0;
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      std::vector<size_t> idx = {i, j};
      direct += left[i] * center.At(idx) * right[j];
    }
  }
  EXPECT_DOUBLE_EQ(*c2->ScalarValue(), direct);
}

}  // namespace
}  // namespace hops
