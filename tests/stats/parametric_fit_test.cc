#include "stats/parametric_fit.h"

#include <gtest/gtest.h>

#include "stats/distributions.h"
#include "stats/zipf.h"

namespace hops {
namespace {

TEST(ParametricFitTest, RecoversTrueZipfSkew) {
  for (double z : {0.0, 0.5, 1.0, 2.0, 3.0}) {
    auto set = ZipfFrequencySet({1000.0, 100, z});
    ASSERT_TRUE(set.ok());
    auto fit = FitZipf(*set);
    ASSERT_TRUE(fit.ok());
    EXPECT_NEAR(fit->skew, z, 0.02) << "z=" << z;
    EXPECT_NEAR(fit->objective, 0.0, 1e-3);
    EXPECT_DOUBLE_EQ(fit->total, 1000.0);
    EXPECT_EQ(fit->num_values, 100u);
  }
}

TEST(ParametricFitTest, FitIgnoresValueOrder) {
  // The fit works on the sorted frequencies, so shuffled sets fit the same.
  auto ranked = ZipfFrequencySet({1000.0, 50, 1.5});
  ASSERT_TRUE(ranked.ok());
  std::vector<Frequency> reversed(ranked->values().rbegin(),
                                  ranked->values().rend());
  auto shuffled = FrequencySet::Make(std::move(reversed));
  ASSERT_TRUE(shuffled.ok());
  auto f1 = FitZipf(*ranked);
  auto f2 = FitZipf(*shuffled);
  ASSERT_TRUE(f1.ok() && f2.ok());
  EXPECT_NEAR(f1->skew, f2->skew, 1e-6);
}

TEST(ParametricFitTest, SelfJoinPredictionExactOnTrueZipf) {
  auto set = ZipfFrequencySet({1000.0, 100, 1.0});
  ASSERT_TRUE(set.ok());
  auto fit = FitZipf(*set);
  ASSERT_TRUE(fit.ok());
  auto predicted = ZipfFitSelfJoinSize(*fit);
  ASSERT_TRUE(predicted.ok());
  EXPECT_NEAR(*predicted, set->SelfJoinSize(),
              1e-3 * set->SelfJoinSize());
}

TEST(ParametricFitTest, PoorOnNonZipfShapes) {
  // The Section 1 claim: parametric models break on data that follows no
  // known distribution. A two-step distribution is badly misfit: the
  // residual is a large share of the total squared mass.
  DistributionSpec spec;
  spec.kind = DistributionKind::kTwoStep;
  spec.total = 1000.0;
  spec.num_values = 100;
  spec.skew = 20.0;
  auto set = GenerateFrequencySet(spec);
  ASSERT_TRUE(set.ok());
  auto fit = FitZipf(*set);
  ASSERT_TRUE(fit.ok());
  EXPECT_GT(fit->objective, 0.05 * set->SelfJoinSize());
}

TEST(ParametricFitTest, RankFrequencyAccessor) {
  auto set = ZipfFrequencySet({100.0, 4, 1.0});
  ASSERT_TRUE(set.ok());
  auto fit = FitZipf(*set);
  ASSERT_TRUE(fit.ok());
  auto f0 = ZipfFitFrequency(*fit, 0);
  auto f3 = ZipfFitFrequency(*fit, 3);
  ASSERT_TRUE(f0.ok() && f3.ok());
  EXPECT_GT(*f0, *f3);
  EXPECT_TRUE(ZipfFitFrequency(*fit, 4).status().IsOutOfRange());
}

TEST(ParametricFitTest, Validation) {
  auto empty = FrequencySet::Make({});
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(FitZipf(*empty).ok());
  auto set = FrequencySet::Make({1, 2});
  ASSERT_TRUE(set.ok());
  EXPECT_FALSE(FitZipf(*set, 0.0).ok());
}

}  // namespace
}  // namespace hops
