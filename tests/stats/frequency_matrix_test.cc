#include "stats/frequency_matrix.h"

#include <gtest/gtest.h>

namespace hops {
namespace {

FrequencyMatrix MustMake(size_t r, size_t c, std::vector<Frequency> d) {
  auto res = FrequencyMatrix::Make(r, c, std::move(d));
  EXPECT_TRUE(res.ok()) << res.status();
  return *std::move(res);
}

TEST(FrequencyMatrixTest, ZeroMatrix) {
  auto r = FrequencyMatrix::Zero(2, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows(), 2u);
  EXPECT_EQ(r->cols(), 3u);
  EXPECT_EQ(r->Total(), 0.0);
}

TEST(FrequencyMatrixTest, RejectsZeroDimensions) {
  EXPECT_FALSE(FrequencyMatrix::Zero(0, 3).ok());
  EXPECT_FALSE(FrequencyMatrix::Zero(3, 0).ok());
}

TEST(FrequencyMatrixTest, RejectsShapeMismatch) {
  EXPECT_TRUE(FrequencyMatrix::Make(2, 2, {1, 2, 3})
                  .status()
                  .IsInvalidArgument());
}

TEST(FrequencyMatrixTest, RejectsNegativeEntries) {
  EXPECT_TRUE(
      FrequencyMatrix::Make(1, 2, {1, -2}).status().IsInvalidArgument());
}

TEST(FrequencyMatrixTest, RowMajorAccess) {
  FrequencyMatrix m = MustMake(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(m.At(0, 0), 1.0);
  EXPECT_EQ(m.At(0, 2), 3.0);
  EXPECT_EQ(m.At(1, 0), 4.0);
  EXPECT_EQ(m.At(1, 2), 6.0);
  m.Set(1, 1, 50.0);
  EXPECT_EQ(m.At(1, 1), 50.0);
}

TEST(FrequencyMatrixTest, VectorFactories) {
  auto h = FrequencyMatrix::HorizontalVector({1, 2, 3});
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->rows(), 1u);
  EXPECT_EQ(h->cols(), 3u);
  auto v = FrequencyMatrix::VerticalVector({1, 2});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->rows(), 2u);
  EXPECT_EQ(v->cols(), 1u);
}

TEST(FrequencyMatrixTest, ToFrequencySetFlattens) {
  FrequencyMatrix m = MustMake(2, 2, {1, 2, 3, 4});
  FrequencySet set = m.ToFrequencySet();
  EXPECT_EQ(set.size(), 4u);
  EXPECT_DOUBLE_EQ(set.Total(), 10.0);
}

TEST(FrequencyMatrixTest, MultiplyMatchesHandComputation) {
  FrequencyMatrix a = MustMake(2, 2, {1, 2, 3, 4});
  FrequencyMatrix b = MustMake(2, 2, {5, 6, 7, 8});
  auto p = a.Multiply(b);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->At(0, 0), 19.0);
  EXPECT_EQ(p->At(0, 1), 22.0);
  EXPECT_EQ(p->At(1, 0), 43.0);
  EXPECT_EQ(p->At(1, 1), 50.0);
}

TEST(FrequencyMatrixTest, MultiplyRejectsDimensionMismatch) {
  FrequencyMatrix a = MustMake(2, 3, {1, 2, 3, 4, 5, 6});
  FrequencyMatrix b = MustMake(2, 2, {1, 2, 3, 4});
  EXPECT_TRUE(a.Multiply(b).status().IsInvalidArgument());
}

TEST(FrequencyMatrixTest, TransposedSwapsShape) {
  FrequencyMatrix a = MustMake(2, 3, {1, 2, 3, 4, 5, 6});
  FrequencyMatrix t = a.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(a.At(r, c), t.At(c, r));
    }
  }
}

TEST(ChainResultSizeTest, RequiresVectorEnds) {
  std::vector<FrequencyMatrix> ms;
  ms.push_back(MustMake(2, 2, {1, 2, 3, 4}));
  EXPECT_TRUE(ChainResultSize(ms).status().IsInvalidArgument());
}

TEST(ChainResultSizeTest, TwoWayJoinIsDotProduct) {
  std::vector<FrequencyMatrix> ms;
  ms.push_back(*FrequencyMatrix::HorizontalVector({2, 3}));
  ms.push_back(*FrequencyMatrix::VerticalVector({5, 7}));
  auto s = ChainResultSize(ms);
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(*s, 2 * 5 + 3 * 7);
}

TEST(ChainResultSizeTest, EmptyChainFails) {
  EXPECT_TRUE(ChainResultSize({}).status().IsInvalidArgument());
}

TEST(SelfJoinResultSizeTest, SumOfSquares) {
  auto set = FrequencySet::Make({2, 3, 4});
  ASSERT_TRUE(set.ok());
  EXPECT_DOUBLE_EQ(SelfJoinResultSize(*set), 4 + 9 + 16);
}

}  // namespace
}  // namespace hops
