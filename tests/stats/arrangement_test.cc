#include "stats/arrangement.h"

#include <gtest/gtest.h>

#include <numeric>

namespace hops {
namespace {

FrequencySet MustSet(std::vector<Frequency> f) {
  auto r = FrequencySet::Make(std::move(f));
  EXPECT_TRUE(r.ok());
  return *std::move(r);
}

TEST(IsPermutationTest, Basics) {
  std::vector<size_t> p = {2, 0, 1};
  EXPECT_TRUE(IsPermutation(p, 3));
  EXPECT_FALSE(IsPermutation(p, 4));
  std::vector<size_t> dup = {0, 0, 1};
  EXPECT_FALSE(IsPermutation(dup, 3));
  std::vector<size_t> oob = {0, 1, 3};
  EXPECT_FALSE(IsPermutation(oob, 3));
  EXPECT_TRUE(IsPermutation(std::vector<size_t>{}, 0));
}

TEST(ArrangementTest, IdentityKeepsRowMajorOrder) {
  FrequencySet set = MustSet({1, 2, 3, 4, 5, 6});
  auto m = ArrangeIdentity(set, 2, 3);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->At(0, 0), 1.0);
  EXPECT_EQ(m->At(0, 2), 3.0);
  EXPECT_EQ(m->At(1, 0), 4.0);
}

TEST(ArrangementTest, ExplicitPermutationPlacesEntries) {
  FrequencySet set = MustSet({10, 20, 30, 40});
  // set[i] goes to flat cell perm[i].
  std::vector<size_t> perm = {3, 2, 1, 0};
  auto m = ArrangeAsMatrix(set, 2, 2, perm);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->At(0, 0), 40.0);
  EXPECT_EQ(m->At(0, 1), 30.0);
  EXPECT_EQ(m->At(1, 0), 20.0);
  EXPECT_EQ(m->At(1, 1), 10.0);
}

TEST(ArrangementTest, SizeMismatchFails) {
  FrequencySet set = MustSet({1, 2, 3});
  std::vector<size_t> perm = {0, 1, 2};
  EXPECT_TRUE(
      ArrangeAsMatrix(set, 2, 2, perm).status().IsInvalidArgument());
  EXPECT_TRUE(ArrangeIdentity(set, 2, 2).status().IsInvalidArgument());
}

TEST(ArrangementTest, BadPermutationFails) {
  FrequencySet set = MustSet({1, 2, 3, 4});
  std::vector<size_t> dup = {0, 0, 1, 2};
  EXPECT_TRUE(ArrangeAsMatrix(set, 2, 2, dup).status().IsInvalidArgument());
}

TEST(ArrangementTest, RandomArrangementPreservesMultiset) {
  FrequencySet set = MustSet({1, 2, 3, 4, 5, 6});
  Rng rng(99);
  auto m = ArrangeRandom(set, 2, 3, &rng);
  ASSERT_TRUE(m.ok());
  FrequencySet cells = m->ToFrequencySet();
  EXPECT_EQ(cells.Sorted(), set.Sorted());
}

TEST(ArrangementTest, RandomArrangementNeedsRng) {
  FrequencySet set = MustSet({1, 2});
  EXPECT_TRUE(
      ArrangeRandom(set, 1, 2, nullptr).status().IsInvalidArgument());
}

TEST(ArrangementTest, ArrangementsPreserveChainTotals) {
  // Any arrangement preserves the relation size (sum of cells).
  FrequencySet set = MustSet({5, 1, 7, 3, 9, 2, 8, 4, 6});
  Rng rng(123);
  for (int rep = 0; rep < 5; ++rep) {
    auto m = ArrangeRandom(set, 3, 3, &rng);
    ASSERT_TRUE(m.ok());
    EXPECT_DOUBLE_EQ(m->Total(), set.Total());
  }
}

}  // namespace
}  // namespace hops
