#include "stats/nba_data.h"

#include <gtest/gtest.h>

namespace hops {
namespace {

TEST(NbaDataTest, GeneratesRequestedPlayers) {
  auto ds = NbaDataset::Generate(450, 1);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->players().size(), 450u);
}

TEST(NbaDataTest, RejectsZeroPlayers) {
  EXPECT_TRUE(NbaDataset::Generate(0, 1).status().IsInvalidArgument());
}

TEST(NbaDataTest, DeterministicForSeed) {
  auto a = NbaDataset::Generate(100, 7);
  auto b = NbaDataset::Generate(100, 7);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a->players()[i].points, b->players()[i].points);
    EXPECT_EQ(a->players()[i].games, b->players()[i].games);
  }
}

TEST(NbaDataTest, StatsStayInDomainBounds) {
  auto ds = NbaDataset::Generate(2000, 11);
  ASSERT_TRUE(ds.ok());
  for (const PlayerSeason& p : ds->players()) {
    EXPECT_GE(p.points, 0);
    EXPECT_LE(p.points, 40);
    EXPECT_GE(p.rebounds, 0);
    EXPECT_LE(p.rebounds, 20);
    EXPECT_GE(p.assists, 0);
    EXPECT_LE(p.assists, 15);
    EXPECT_GE(p.minutes, 0);
    EXPECT_LE(p.minutes, 48);
    EXPECT_GE(p.games, 1);
    EXPECT_LE(p.games, 82);
  }
}

TEST(NbaDataTest, FrequencySetsCoverAllPlayers) {
  auto ds = NbaDataset::Generate(500, 3);
  ASSERT_TRUE(ds.ok());
  for (const std::string& attr : NbaDataset::AttributeNames()) {
    auto set = ds->AttributeFrequencySet(attr);
    ASSERT_TRUE(set.ok()) << attr;
    EXPECT_DOUBLE_EQ(set->Total(), 500.0) << attr;
    EXPECT_GT(set->size(), 1u) << attr;
  }
}

TEST(NbaDataTest, UnknownAttributeFails) {
  auto ds = NbaDataset::Generate(10, 3);
  ASSERT_TRUE(ds.ok());
  EXPECT_TRUE(ds->AttributeFrequencySet("steals").status().IsNotFound());
}

TEST(NbaDataTest, ScoringIsHeavyTailed) {
  // The scoring frequency set should be skewed: its top frequency well above
  // the mean frequency (many players at low scoring values).
  auto ds = NbaDataset::Generate(2000, 5);
  ASSERT_TRUE(ds.ok());
  auto set = ds->AttributeFrequencySet("points");
  ASSERT_TRUE(set.ok());
  double mean = set->Total() / static_cast<double>(set->size());
  EXPECT_GT(set->Max(), 2.0 * mean);
}

TEST(NbaDataTest, GamesPlayedIsSpiky) {
  // More than a third of players land in the healthy 70-82 band.
  auto ds = NbaDataset::Generate(2000, 5);
  ASSERT_TRUE(ds.ok());
  size_t healthy = 0;
  for (const PlayerSeason& p : ds->players()) {
    if (p.games >= 70) ++healthy;
  }
  EXPECT_GT(healthy, ds->players().size() / 3);
}

}  // namespace
}  // namespace hops
