#include "stats/zipf.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hops {
namespace {

TEST(ZipfTest, ZeroSkewIsUniform) {
  auto r = ZipfFrequencies({1000.0, 100, 0.0});
  ASSERT_TRUE(r.ok());
  for (double f : *r) EXPECT_NEAR(f, 10.0, 1e-9);
}

TEST(ZipfTest, FrequenciesAreDescendingInRank) {
  auto r = ZipfFrequencies({1000.0, 100, 1.0});
  ASSERT_TRUE(r.ok());
  for (size_t i = 0; i + 1 < r->size(); ++i) {
    EXPECT_GE((*r)[i], (*r)[i + 1]);
  }
}

TEST(ZipfTest, TotalIsPreserved) {
  for (double z : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    auto r = ZipfFrequencies({1234.0, 57, z});
    ASSERT_TRUE(r.ok());
    double sum = 0;
    for (double f : *r) sum += f;
    EXPECT_NEAR(sum, 1234.0, 1e-6);
  }
}

TEST(ZipfTest, MatchesPaperFormula) {
  // t_i = T * (1/i^z) / sum_k (1/k^z), checked directly for M = 4, z = 1:
  // weights 1, 1/2, 1/3, 1/4; norm = 25/12.
  auto r = ZipfFrequencies({100.0, 4, 1.0});
  ASSERT_TRUE(r.ok());
  double norm = 1.0 + 0.5 + 1.0 / 3 + 0.25;
  EXPECT_NEAR((*r)[0], 100.0 / norm, 1e-9);
  EXPECT_NEAR((*r)[1], 100.0 * 0.5 / norm, 1e-9);
  EXPECT_NEAR((*r)[3], 100.0 * 0.25 / norm, 1e-9);
}

TEST(ZipfTest, SkewIncreasesTopFrequency) {
  double prev_top = 0;
  for (double z : {0.0, 0.5, 1.0, 2.0}) {
    auto r = ZipfFrequencies({1000.0, 50, z});
    ASSERT_TRUE(r.ok());
    EXPECT_GT((*r)[0], prev_top);
    prev_top = (*r)[0];
  }
}

TEST(ZipfTest, RejectsBadParams) {
  EXPECT_FALSE(ZipfFrequencies({-1.0, 10, 1.0}).ok());
  EXPECT_FALSE(ZipfFrequencies({10.0, 0, 1.0}).ok());
  EXPECT_FALSE(ZipfFrequencies({10.0, 10, -1.0}).ok());
}

TEST(ZipfIntegerTest, SumsExactlyToTotal) {
  for (double z : {0.0, 0.3, 1.0, 2.5}) {
    auto r = ZipfFrequenciesInteger({1000.0, 97, z});
    ASSERT_TRUE(r.ok());
    double sum = 0;
    for (double f : *r) {
      EXPECT_EQ(f, std::floor(f)) << "must be integral";
      sum += f;
    }
    EXPECT_EQ(sum, 1000.0);
  }
}

TEST(ZipfIntegerTest, StaysDescending) {
  auto r = ZipfFrequenciesInteger({1000.0, 100, 1.5});
  ASSERT_TRUE(r.ok());
  for (size_t i = 0; i + 1 < r->size(); ++i) {
    EXPECT_GE((*r)[i], (*r)[i + 1]);
  }
}

TEST(ZipfIntegerTest, CloseToRealValued) {
  auto real = ZipfFrequencies({1000.0, 100, 1.0});
  auto integer = ZipfFrequenciesInteger({1000.0, 100, 1.0});
  ASSERT_TRUE(real.ok());
  ASSERT_TRUE(integer.ok());
  for (size_t i = 0; i < real->size(); ++i) {
    EXPECT_NEAR((*integer)[i], (*real)[i], 1.0);
  }
}

TEST(ZipfFrequencySetTest, WrapsIntoSet) {
  auto set = ZipfFrequencySet({500.0, 25, 1.0});
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->size(), 25u);
  EXPECT_NEAR(set->Total(), 500.0, 1e-6);
  auto int_set = ZipfFrequencySet({500.0, 25, 1.0}, /*integer_valued=*/true);
  ASSERT_TRUE(int_set.ok());
  EXPECT_EQ(int_set->Total(), 500.0);
}

TEST(ZipfTest, SingleValueTakesWholeTotal) {
  auto r = ZipfFrequencies({42.0, 1, 3.0});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR((*r)[0], 42.0, 1e-12);
}

}  // namespace
}  // namespace hops
