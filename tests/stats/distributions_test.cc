#include "stats/distributions.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hops {
namespace {

DistributionSpec Spec(DistributionKind kind, double skew = 1.0) {
  DistributionSpec spec;
  spec.kind = kind;
  spec.total = 1000.0;
  spec.num_values = 100;
  spec.skew = skew;
  return spec;
}

TEST(DistributionsTest, NamesAreStable) {
  EXPECT_STREQ(DistributionKindToString(DistributionKind::kUniform),
               "uniform");
  EXPECT_STREQ(DistributionKindToString(DistributionKind::kZipf), "zipf");
  EXPECT_STREQ(DistributionKindToString(DistributionKind::kReverseZipf),
               "reverse-zipf");
  EXPECT_STREQ(DistributionKindToString(DistributionKind::kTwoStep),
               "two-step");
  EXPECT_STREQ(DistributionKindToString(DistributionKind::kNoisyUniform),
               "noisy-uniform");
}

TEST(DistributionsTest, AllKindsPreserveTotal) {
  for (auto kind :
       {DistributionKind::kUniform, DistributionKind::kZipf,
        DistributionKind::kReverseZipf, DistributionKind::kTwoStep,
        DistributionKind::kNoisyUniform}) {
    auto set = GenerateFrequencySet(Spec(kind));
    ASSERT_TRUE(set.ok()) << DistributionKindToString(kind);
    EXPECT_NEAR(set->Total(), 1000.0, 1e-6) << DistributionKindToString(kind);
    EXPECT_EQ(set->size(), 100u);
  }
}

TEST(DistributionsTest, AllKindsDescending) {
  for (auto kind :
       {DistributionKind::kUniform, DistributionKind::kZipf,
        DistributionKind::kReverseZipf, DistributionKind::kTwoStep,
        DistributionKind::kNoisyUniform}) {
    auto set = GenerateFrequencySet(Spec(kind));
    ASSERT_TRUE(set.ok());
    for (size_t i = 0; i + 1 < set->size(); ++i) {
      EXPECT_GE((*set)[i], (*set)[i + 1]) << DistributionKindToString(kind);
    }
  }
}

TEST(DistributionsTest, UniformHasZeroSpread) {
  auto set = GenerateFrequencySet(Spec(DistributionKind::kUniform));
  ASSERT_TRUE(set.ok());
  EXPECT_DOUBLE_EQ(set->Max(), set->Min());
}

TEST(DistributionsTest, ReverseZipfHasManyHighFewLow) {
  // Median should sit near the maximum, not near the minimum (the mirror
  // image of Zipf).
  auto set = GenerateFrequencySet(Spec(DistributionKind::kReverseZipf, 1.5));
  ASSERT_TRUE(set.ok());
  double median = (*set)[set->size() / 2];
  EXPECT_GT(median - set->Min(), set->Max() - median);

  auto zipf = GenerateFrequencySet(Spec(DistributionKind::kZipf, 1.5));
  ASSERT_TRUE(zipf.ok());
  double zmedian = (*zipf)[zipf->size() / 2];
  EXPECT_LT(zmedian - zipf->Min(), zipf->Max() - zmedian);
}

TEST(DistributionsTest, TwoStepHasExactlyTwoLevels) {
  auto set = GenerateFrequencySet(Spec(DistributionKind::kTwoStep, 5.0));
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->NumDistinct(), 2u);
}

TEST(DistributionsTest, NoisyUniformIsSeededDeterministically) {
  DistributionSpec a = Spec(DistributionKind::kNoisyUniform);
  a.seed = 5;
  DistributionSpec b = a;
  auto ra = GenerateFrequencySet(a);
  auto rb = GenerateFrequencySet(b);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  for (size_t i = 0; i < ra->size(); ++i) {
    EXPECT_EQ((*ra)[i], (*rb)[i]);
  }
  b.seed = 6;
  auto rc = GenerateFrequencySet(b);
  ASSERT_TRUE(rc.ok());
  bool any_different = false;
  for (size_t i = 0; i < ra->size(); ++i) {
    if ((*ra)[i] != (*rc)[i]) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(DistributionsTest, IntegerValuedSumsExactly) {
  DistributionSpec spec = Spec(DistributionKind::kZipf, 2.0);
  spec.integer_valued = true;
  auto set = GenerateFrequencySet(spec);
  ASSERT_TRUE(set.ok());
  double sum = 0;
  for (double f : set->values()) {
    EXPECT_EQ(f, std::floor(f));
    sum += f;
  }
  EXPECT_EQ(sum, 1000.0);
}

TEST(DistributionsTest, RejectsBadArguments) {
  DistributionSpec spec = Spec(DistributionKind::kZipf);
  spec.num_values = 0;
  EXPECT_FALSE(GenerateFrequencySet(spec).ok());
  spec = Spec(DistributionKind::kNoisyUniform);
  spec.noise = 1.5;
  EXPECT_FALSE(GenerateFrequencySet(spec).ok());
  spec = Spec(DistributionKind::kZipf);
  spec.total = -2.0;
  EXPECT_FALSE(GenerateFrequencySet(spec).ok());
}

}  // namespace
}  // namespace hops
