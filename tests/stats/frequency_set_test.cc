#include "stats/frequency_set.h"

#include <gtest/gtest.h>

#include <limits>

namespace hops {
namespace {

Result<FrequencySet> MakeSet(std::vector<Frequency> f) {
  return FrequencySet::Make(std::move(f));
}

TEST(FrequencySetTest, MakeAcceptsNonNegative) {
  auto r = MakeSet({1, 0, 2.5});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);
  EXPECT_FALSE(r->empty());
}

TEST(FrequencySetTest, MakeRejectsNegative) {
  EXPECT_TRUE(MakeSet({1, -1}).status().IsInvalidArgument());
}

TEST(FrequencySetTest, MakeRejectsNonFinite) {
  EXPECT_TRUE(MakeSet({std::numeric_limits<double>::infinity()})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(MakeSet({std::numeric_limits<double>::quiet_NaN()})
                  .status()
                  .IsInvalidArgument());
}

TEST(FrequencySetTest, EmptySetIsAllowed) {
  auto r = MakeSet({});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
  EXPECT_EQ(r->Total(), 0.0);
  EXPECT_EQ(r->Max(), 0.0);
  EXPECT_EQ(r->Min(), 0.0);
}

TEST(FrequencySetTest, TotalIsRelationSize) {
  auto r = MakeSet({20, 15, 5});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->Total(), 40.0);
}

TEST(FrequencySetTest, SelfJoinSizeIsSumOfSquares) {
  auto r = MakeSet({3, 4});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->SelfJoinSize(), 25.0);
}

TEST(FrequencySetTest, SortedOrders) {
  auto r = MakeSet({5, 1, 3});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Sorted(), (std::vector<Frequency>{1, 3, 5}));
  EXPECT_EQ(r->SortedDescending(), (std::vector<Frequency>{5, 3, 1}));
}

TEST(FrequencySetTest, NumDistinctIgnoresDuplicates) {
  auto r = MakeSet({2, 2, 3, 3, 3, 7});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumDistinct(), 3u);
}

TEST(FrequencySetTest, MinMax) {
  auto r = MakeSet({2, 9, 4});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Max(), 9.0);
  EXPECT_EQ(r->Min(), 2.0);
}

TEST(FrequencySetTest, IndexingPreservesInsertionOrder) {
  auto r = MakeSet({8, 6, 7});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0], 8.0);
  EXPECT_EQ((*r)[1], 6.0);
  EXPECT_EQ((*r)[2], 7.0);
}

TEST(FrequencySetTest, ToStringTruncates) {
  std::vector<Frequency> many(100, 1.0);
  auto r = MakeSet(many);
  ASSERT_TRUE(r.ok());
  std::string s = r->ToString(4);
  EXPECT_NE(s.find("..."), std::string::npos);
  EXPECT_NE(s.find("M=100"), std::string::npos);
}

}  // namespace
}  // namespace hops
