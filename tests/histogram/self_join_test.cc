#include "histogram/self_join.h"

#include <gtest/gtest.h>

#include "histogram/builders.h"

namespace hops {
namespace {

FrequencySet MustSet(std::vector<Frequency> f) {
  auto r = FrequencySet::Make(std::move(f));
  EXPECT_TRUE(r.ok());
  return *std::move(r);
}

TEST(SelfJoinTest, ExactSizeIsSumOfSquares) {
  EXPECT_DOUBLE_EQ(ExactSelfJoinSize(MustSet({2, 3, 4})), 29.0);
  EXPECT_DOUBLE_EQ(ExactSelfJoinSize(MustSet({})), 0.0);
}

TEST(SelfJoinTest, Proposition31SizeFormula) {
  // Buckets {10, 20} and {1, 2, 3}:
  // S' = 30^2/2 + 6^2/3 = 450 + 12 = 462.
  FrequencySet set = MustSet({10, 20, 1, 2, 3});
  auto b = Bucketization::FromAssignments({0, 0, 1, 1, 1}, 2);
  ASSERT_TRUE(b.ok());
  auto h = Histogram::Make(set, *b);
  ASSERT_TRUE(h.ok());
  EXPECT_DOUBLE_EQ(SelfJoinApproxSize(*h), 462.0);
}

TEST(SelfJoinTest, Proposition31ErrorFormula) {
  // S = 100 + 400 + 1 + 4 + 9 = 514; error = S - S' = 514 - 462 = 52.
  // Also directly: P0*V0 + P1*V1 = 2*25 + 3*(2/3) = 52.
  FrequencySet set = MustSet({10, 20, 1, 2, 3});
  auto b = Bucketization::FromAssignments({0, 0, 1, 1, 1}, 2);
  ASSERT_TRUE(b.ok());
  auto h = Histogram::Make(set, *b);
  ASSERT_TRUE(h.ok());
  EXPECT_DOUBLE_EQ(SelfJoinError(*h), 52.0);
  EXPECT_DOUBLE_EQ(ExactSelfJoinSize(set) - SelfJoinApproxSize(*h),
                   SelfJoinError(*h));
}

TEST(SelfJoinTest, ErrorIsAlwaysNonNegative) {
  // The uniform-in-bucket approximation always *underestimates* a self-join.
  FrequencySet set = MustSet({5, 1, 9, 9, 2, 7, 0, 3});
  for (uint32_t pattern = 0; pattern < 8; ++pattern) {
    std::vector<uint32_t> assign(8);
    for (size_t i = 0; i < 8; ++i) assign[i] = (i + pattern) % 2;
    auto b = Bucketization::FromAssignments(assign, 2);
    ASSERT_TRUE(b.ok());
    auto h = Histogram::Make(set, *b);
    ASSERT_TRUE(h.ok());
    EXPECT_GE(SelfJoinError(*h), 0.0);
  }
}

TEST(SelfJoinTest, TrivialHistogramErrorIsTotalVariance) {
  FrequencySet set = MustSet({1, 2, 3, 4});
  auto h = BuildTrivialHistogram(set);
  ASSERT_TRUE(h.ok());
  // P*V = 4 * 1.25 = 5; S = 30, S' = 10^2/4 = 25.
  EXPECT_DOUBLE_EQ(SelfJoinError(*h), 5.0);
  EXPECT_DOUBLE_EQ(SelfJoinApproxSize(*h), 25.0);
}

TEST(SelfJoinTest, PerfectHistogramHasZeroError) {
  FrequencySet set = MustSet({4, 8, 15, 16});
  auto b = Bucketization::FromAssignments({0, 1, 2, 3}, 4);
  ASSERT_TRUE(b.ok());
  auto h = Histogram::Make(set, *b);
  ASSERT_TRUE(h.ok());
  EXPECT_DOUBLE_EQ(SelfJoinError(*h), 0.0);
  EXPECT_DOUBLE_EQ(SelfJoinApproxSize(*h), ExactSelfJoinSize(set));
}

TEST(SelfJoinTest, RoundedModeDiffersWhenAverageFractional) {
  FrequencySet set = MustSet({1, 2});
  auto h = BuildTrivialHistogram(set);
  ASSERT_TRUE(h.ok());
  EXPECT_DOUBLE_EQ(SelfJoinApproxSize(*h, BucketAverageMode::kExact), 4.5);
  EXPECT_DOUBLE_EQ(
      SelfJoinApproxSize(*h, BucketAverageMode::kRoundToInteger), 8.0);
}

TEST(PrefixSumTest, RangeErrorMatchesDirectComputation) {
  std::vector<double> sorted = {1, 2, 3, 10, 20};
  std::vector<double> ps, pss;
  BuildPrefixSums(sorted, &ps, &pss);
  ASSERT_EQ(ps.size(), 6u);
  // Range [0, 3): {1,2,3}: sum 6, sumsq 14, err = 14 - 36/3 = 2.
  EXPECT_DOUBLE_EQ(RangeSelfJoinError(ps, pss, 0, 3), 2.0);
  // Range [3, 5): {10,20}: err = 500 - 900/2 = 50.
  EXPECT_DOUBLE_EQ(RangeSelfJoinError(ps, pss, 3, 5), 50.0);
  // Empty range.
  EXPECT_DOUBLE_EQ(RangeSelfJoinError(ps, pss, 2, 2), 0.0);
}

TEST(PrefixSumTest, PartitionErrorSumsRangeErrors) {
  std::vector<double> sorted = {1, 2, 3, 10, 20};
  std::vector<double> ps, pss;
  BuildPrefixSums(sorted, &ps, &pss);
  std::vector<size_t> ends = {3, 5};
  EXPECT_DOUBLE_EQ(PartitionSelfJoinError(ps, pss, ends), 52.0);
}

TEST(PrefixSumTest, PartitionErrorConsistentWithHistogram) {
  // The prefix-sum fast path must agree with the Histogram object path.
  std::vector<double> sorted = {0, 1, 1, 4, 9, 9, 12, 50};
  std::vector<double> ps, pss;
  BuildPrefixSums(sorted, &ps, &pss);
  std::vector<size_t> ends = {2, 5, 8};

  std::vector<uint32_t> assign(8);
  size_t begin = 0;
  for (uint32_t k = 0; k < ends.size(); ++k) {
    for (size_t i = begin; i < ends[k]; ++i) assign[i] = k;
    begin = ends[k];
  }
  auto b = Bucketization::FromAssignments(assign, 3);
  ASSERT_TRUE(b.ok());
  auto h = Histogram::Make(MustSet({0, 1, 1, 4, 9, 9, 12, 50}), *b);
  ASSERT_TRUE(h.ok());
  EXPECT_NEAR(PartitionSelfJoinError(ps, pss, ends), SelfJoinError(*h),
              1e-9);
}

}  // namespace
}  // namespace hops
