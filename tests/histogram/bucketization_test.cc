#include "histogram/bucketization.h"

#include <gtest/gtest.h>

namespace hops {
namespace {

TEST(BucketizationTest, FromAssignmentsBasic) {
  auto b = Bucketization::FromAssignments({0, 1, 0, 1, 2}, 3);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->num_items(), 5u);
  EXPECT_EQ(b->num_buckets(), 3u);
  EXPECT_EQ(b->bucket_of(0), 0u);
  EXPECT_EQ(b->bucket_of(4), 2u);
}

TEST(BucketizationTest, RejectsEmptyItems) {
  EXPECT_TRUE(
      Bucketization::FromAssignments({}, 1).status().IsInvalidArgument());
}

TEST(BucketizationTest, RejectsEmptyBucket) {
  // Bucket 1 unused.
  EXPECT_TRUE(Bucketization::FromAssignments({0, 0, 2}, 3)
                  .status()
                  .IsInvalidArgument());
}

TEST(BucketizationTest, RejectsOutOfRangeBucketId) {
  EXPECT_TRUE(Bucketization::FromAssignments({0, 3}, 2)
                  .status()
                  .IsInvalidArgument());
}

TEST(BucketizationTest, RejectsMoreBucketsThanItems) {
  EXPECT_TRUE(Bucketization::FromAssignments({0, 1}, 3)
                  .status()
                  .IsInvalidArgument());
}

TEST(BucketizationTest, SingleBucket) {
  auto b = Bucketization::SingleBucket(4);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->num_buckets(), 1u);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(b->bucket_of(i), 0u);
}

TEST(BucketizationTest, FromOrderedPartitionMapsThroughOrder) {
  // Items sorted by frequency: order = {2, 0, 1}; parts {2} and {0, 1}.
  std::vector<size_t> order = {2, 0, 1};
  std::vector<size_t> ends = {1, 3};
  auto b = Bucketization::FromOrderedPartition(order, ends);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->num_buckets(), 2u);
  EXPECT_EQ(b->bucket_of(2), 0u);
  EXPECT_EQ(b->bucket_of(0), 1u);
  EXPECT_EQ(b->bucket_of(1), 1u);
}

TEST(BucketizationTest, FromOrderedPartitionValidation) {
  std::vector<size_t> order = {0, 1, 2};
  EXPECT_TRUE(Bucketization::FromOrderedPartition(order, std::vector<size_t>{})
                  .status()
                  .IsInvalidArgument());
  // Ends not reaching num_items.
  EXPECT_TRUE(Bucketization::FromOrderedPartition(order,
                                                  std::vector<size_t>{1, 2})
                  .status()
                  .IsInvalidArgument());
  // Not strictly increasing.
  EXPECT_TRUE(Bucketization::FromOrderedPartition(
                  order, std::vector<size_t>{2, 2, 3})
                  .status()
                  .IsInvalidArgument());
  // Order not a permutation.
  std::vector<size_t> bad_order = {0, 0, 2};
  EXPECT_TRUE(Bucketization::FromOrderedPartition(bad_order,
                                                  std::vector<size_t>{3})
                  .status()
                  .IsInvalidArgument());
}

TEST(BucketizationTest, BucketMembersAndSizes) {
  auto b = Bucketization::FromAssignments({1, 0, 1, 1}, 2);
  ASSERT_TRUE(b.ok());
  auto members = b->BucketMembers();
  ASSERT_EQ(members.size(), 2u);
  EXPECT_EQ(members[0], std::vector<size_t>({1}));
  EXPECT_EQ(members[1], std::vector<size_t>({0, 2, 3}));
  EXPECT_EQ(b->BucketSizes(), std::vector<size_t>({1, 3}));
}

TEST(BucketizationTest, EqualityIsStructural) {
  auto a = Bucketization::FromAssignments({0, 1}, 2);
  auto b = Bucketization::FromAssignments({0, 1}, 2);
  auto c = Bucketization::FromAssignments({1, 0}, 2);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_FALSE(*a == *c);
}

}  // namespace
}  // namespace hops
