#include "histogram/serialization.h"

#include <gtest/gtest.h>

#include "histogram/builders.h"

namespace hops {
namespace {

FrequencySet MustSet(std::vector<Frequency> f) {
  auto r = FrequencySet::Make(std::move(f));
  EXPECT_TRUE(r.ok());
  return *std::move(r);
}

TEST(CatalogHistogramTest, MakeSortsAndValidates) {
  auto h = CatalogHistogram::Make({{5, 2.0}, {1, 7.0}}, 1.5, 10);
  ASSERT_TRUE(h.ok());
  ASSERT_EQ(h->explicit_entries().size(), 2u);
  EXPECT_EQ(h->explicit_entries()[0].first, 1);
  EXPECT_EQ(h->explicit_entries()[1].first, 5);
  EXPECT_EQ(h->num_values(), 12u);
}

TEST(CatalogHistogramTest, MakeRejectsDuplicatesAndNegatives) {
  EXPECT_FALSE(CatalogHistogram::Make({{1, 2.0}, {1, 3.0}}, 0, 0).ok());
  EXPECT_FALSE(CatalogHistogram::Make({{1, -2.0}}, 0, 0).ok());
  EXPECT_FALSE(CatalogHistogram::Make({}, -1.0, 0).ok());
}

TEST(CatalogHistogramTest, LookupExplicitVsDefault) {
  auto h = CatalogHistogram::Make({{10, 100.0}, {20, 50.0}}, 2.5, 8);
  ASSERT_TRUE(h.ok());
  bool is_explicit = false;
  EXPECT_DOUBLE_EQ(h->LookupFrequency(10, &is_explicit), 100.0);
  EXPECT_TRUE(is_explicit);
  EXPECT_DOUBLE_EQ(h->LookupFrequency(15, &is_explicit), 2.5);
  EXPECT_FALSE(is_explicit);
  EXPECT_DOUBLE_EQ(h->LookupFrequency(20), 50.0);
}

TEST(CatalogHistogramTest, EstimatedTotal) {
  auto h = CatalogHistogram::Make({{1, 100.0}}, 2.0, 10);
  ASSERT_TRUE(h.ok());
  EXPECT_DOUBLE_EQ(h->EstimatedTotal(), 120.0);
}

TEST(CatalogHistogramTest, EncodeDecodeRoundTrip) {
  auto h = CatalogHistogram::Make({{-3, 9.5}, {42, 1.0}}, 0.25, 97);
  ASSERT_TRUE(h.ok());
  std::string bytes = h->Encode();
  EXPECT_EQ(bytes.size(), h->EncodedSize());
  auto decoded = CatalogHistogram::Decode(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, *h);
}

TEST(CatalogHistogramTest, DecodeRejectsCorruptInput) {
  auto h = CatalogHistogram::Make({{1, 1.0}}, 0.5, 3);
  ASSERT_TRUE(h.ok());
  std::string bytes = h->Encode();
  // Truncated.
  EXPECT_FALSE(
      CatalogHistogram::Decode(bytes.substr(0, bytes.size() - 1)).ok());
  // Bad magic.
  std::string bad = bytes;
  bad[0] = 'X';
  EXPECT_FALSE(CatalogHistogram::Decode(bad).ok());
  // Trailing garbage.
  EXPECT_FALSE(CatalogHistogram::Decode(bytes + "z").ok());
  // Empty.
  EXPECT_FALSE(CatalogHistogram::Decode("").ok());
}

TEST(CatalogHistogramTest, FromEndBiasedHistogramStoresSingletons) {
  // Values 100..104 with frequencies; the v-opt end-biased histogram with
  // beta = 3 stores two extremes explicitly.
  FrequencySet set = MustSet({90, 40, 10, 11, 12});
  std::vector<int64_t> ids = {100, 101, 102, 103, 104};
  auto hist = BuildVOptEndBiased(set, 3);
  ASSERT_TRUE(hist.ok());
  auto compact = CatalogHistogram::FromHistogram(*hist, ids);
  ASSERT_TRUE(compact.ok());
  // The multivalued bucket (3 members) is the default.
  EXPECT_EQ(compact->num_default_values(), 3u);
  EXPECT_EQ(compact->explicit_entries().size(), 2u);
  bool is_explicit = false;
  EXPECT_DOUBLE_EQ(compact->LookupFrequency(100, &is_explicit), 90.0);
  EXPECT_TRUE(is_explicit);
  EXPECT_DOUBLE_EQ(compact->LookupFrequency(101, &is_explicit), 40.0);
  EXPECT_TRUE(is_explicit);
  // Middle values fall through to the default average (10+11+12)/3 = 11.
  EXPECT_DOUBLE_EQ(compact->LookupFrequency(102, &is_explicit), 11.0);
  EXPECT_FALSE(is_explicit);
}

TEST(CatalogHistogramTest, FromHistogramPicksLargestBucketAsDefault) {
  // Serial histogram with buckets of sizes 2 and 4: the 4-bucket becomes
  // implicit.
  FrequencySet set = MustSet({100, 90, 1, 2, 3, 4});
  auto b = Bucketization::FromAssignments({0, 0, 1, 1, 1, 1}, 2);
  ASSERT_TRUE(b.ok());
  auto hist = Histogram::Make(set, *b);
  ASSERT_TRUE(hist.ok());
  std::vector<int64_t> ids = {1, 2, 3, 4, 5, 6};
  auto compact = CatalogHistogram::FromHistogram(*hist, ids);
  ASSERT_TRUE(compact.ok());
  EXPECT_EQ(compact->num_default_values(), 4u);
  EXPECT_EQ(compact->explicit_entries().size(), 2u);
  EXPECT_DOUBLE_EQ(compact->default_frequency(), 2.5);
}

TEST(CatalogHistogramTest, FromHistogramRoundedMode) {
  FrequencySet set = MustSet({1, 2, 10});
  auto b = Bucketization::FromAssignments({0, 0, 1}, 2);
  ASSERT_TRUE(b.ok());
  auto hist = Histogram::Make(set, *b);
  ASSERT_TRUE(hist.ok());
  std::vector<int64_t> ids = {7, 8, 9};
  auto compact = CatalogHistogram::FromHistogram(
      *hist, ids, BucketAverageMode::kRoundToInteger);
  ASSERT_TRUE(compact.ok());
  // Bucket {1,2} avg 1.5 -> 2 after rounding; it is the default (2 members).
  EXPECT_DOUBLE_EQ(compact->default_frequency(), 2.0);
}

TEST(CatalogHistogramTest, FromHistogramRejectsIdMismatch) {
  FrequencySet set = MustSet({1, 2});
  auto hist = BuildTrivialHistogram(set);
  ASSERT_TRUE(hist.ok());
  std::vector<int64_t> ids = {1};
  EXPECT_FALSE(CatalogHistogram::FromHistogram(*hist, ids).ok());
}

TEST(CatalogHistogramTest, CompactFormIsSmallForEndBiased) {
  // The whole point of end-biased histograms: encoded size grows with beta,
  // not with M.
  std::vector<Frequency> freqs(1000);
  std::vector<int64_t> ids(1000);
  for (size_t i = 0; i < 1000; ++i) {
    freqs[i] = static_cast<double>(i % 13 + 1);
    ids[i] = static_cast<int64_t>(i);
  }
  auto hist = BuildVOptEndBiased(MustSet(freqs), 10);
  ASSERT_TRUE(hist.ok());
  auto compact = CatalogHistogram::FromHistogram(*hist, ids);
  ASSERT_TRUE(compact.ok());
  EXPECT_LE(compact->EncodedSize(), 200u);  // 9 entries + header + trailer
}

}  // namespace
}  // namespace hops
