#include "histogram/grid_equi_depth.h"

#include <gtest/gtest.h>

#include "histogram/builders.h"
#include "histogram/self_join.h"
#include "stats/arrangement.h"
#include "stats/zipf.h"
#include "util/random.h"

namespace hops {
namespace {

FrequencyMatrix MustMatrix(size_t r, size_t c, std::vector<Frequency> d) {
  auto m = FrequencyMatrix::Make(r, c, std::move(d));
  EXPECT_TRUE(m.ok());
  return *std::move(m);
}

TEST(GridEquiDepthTest, UniformMatrixGetsFullGrid) {
  FrequencyMatrix m = MustMatrix(4, 4, std::vector<Frequency>(16, 1.0));
  auto bz = BuildGridEquiDepthBucketization(m, 2, 2);
  ASSERT_TRUE(bz.ok());
  EXPECT_EQ(bz->num_buckets(), 4u);
  // Each bucket is one quadrant of 4 cells.
  std::vector<size_t> sizes = bz->BucketSizes();
  for (size_t s : sizes) EXPECT_EQ(s, 4u);
}

TEST(GridEquiDepthTest, BucketsAreRectanglesOfTheGrid) {
  FrequencyMatrix m = MustMatrix(4, 6, std::vector<Frequency>(24, 2.0));
  auto bz = BuildGridEquiDepthBucketization(m, 2, 3);
  ASSERT_TRUE(bz.ok());
  // Cells in the same (row-strip, column-band) share a bucket: rows 0-1 vs
  // 2-3; columns 0-1 / 2-3 / 4-5.
  auto bucket = [&](size_t r, size_t c) {
    return bz->bucket_of(r * 6 + c);
  };
  EXPECT_EQ(bucket(0, 0), bucket(1, 1));
  EXPECT_EQ(bucket(2, 4), bucket(3, 5));
  EXPECT_NE(bucket(0, 0), bucket(0, 2));
  EXPECT_NE(bucket(0, 0), bucket(2, 0));
}

TEST(GridEquiDepthTest, HeavyRowGetsItsOwnStrip) {
  // Row 0 carries nearly all the mass: it becomes its own strip.
  std::vector<Frequency> cells = {100, 100, 100,  //
                                  1,   1,   1,    //
                                  1,   1,   1};
  FrequencyMatrix m = MustMatrix(3, 3, cells);
  auto bz = BuildGridEquiDepthBucketization(m, 3, 1);
  ASSERT_TRUE(bz.ok());
  uint32_t strip0 = bz->bucket_of(0);
  EXPECT_EQ(bz->bucket_of(1), strip0);
  EXPECT_NE(bz->bucket_of(3), strip0);
}

TEST(GridEquiDepthTest, Validation) {
  FrequencyMatrix m = MustMatrix(2, 2, {1, 2, 3, 4});
  EXPECT_FALSE(BuildGridEquiDepthBucketization(m, 0, 1).ok());
  EXPECT_FALSE(BuildGridEquiDepthBucketization(m, 3, 1).ok());
  EXPECT_FALSE(BuildGridEquiDepthBucketization(m, 1, 0).ok());
  EXPECT_FALSE(BuildGridEquiDepthBucketization(m, 1, 3).ok());
}

TEST(GridEquiDepthTest, AllZeroMatrixCollapses) {
  FrequencyMatrix m = MustMatrix(2, 2, {0, 0, 0, 0});
  auto bz = BuildGridEquiDepthBucketization(m, 2, 2);
  ASSERT_TRUE(bz.ok());
  EXPECT_GE(bz->num_buckets(), 1u);
}

TEST(GridEquiDepthTest, HistogramWrapperApproximates) {
  FrequencyMatrix m = MustMatrix(2, 2, {4, 4, 1, 1});
  auto mh = BuildGridEquiDepthHistogram(m, 2, 1);
  ASSERT_TRUE(mh.ok());
  auto am = mh->ApproximateMatrix();
  ASSERT_TRUE(am.ok());
  EXPECT_DOUBLE_EQ(am->At(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(am->At(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(am->Total(), m.Total());
}

TEST(GridEquiDepthTest, SerialBucketingOfCellsBeatsGridOnSelfJoinError) {
  // The paper's point extended to two dimensions: grouping *cells* by
  // frequency (serial over the flattened matrix) yields lower variance than
  // any positional grid with a comparable bucket budget.
  Rng rng(31);
  auto set = ZipfFrequencySet({1000.0, 36, 1.5}, true);
  ASSERT_TRUE(set.ok());
  auto matrix = ArrangeRandom(*set, 6, 6, &rng);
  ASSERT_TRUE(matrix.ok());
  auto grid = BuildGridEquiDepthHistogram(*matrix, 3, 3);  // <= 9 buckets
  ASSERT_TRUE(grid.ok());
  size_t budget = grid->cell_histogram().num_buckets();
  auto serial = BuildVOptSerialDP(matrix->ToFrequencySet(), budget);
  ASSERT_TRUE(serial.ok());
  double grid_err = 0;
  for (const auto& b : grid->cell_histogram().bucket_stats()) {
    grid_err += b.error_contribution();
  }
  EXPECT_LT(SelfJoinError(*serial), grid_err);
}

}  // namespace
}  // namespace hops
