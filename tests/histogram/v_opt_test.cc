#include <gtest/gtest.h>

#include "histogram/builders.h"
#include "histogram/self_join.h"
#include "stats/zipf.h"
#include "util/random.h"

namespace hops {
namespace {

FrequencySet MustSet(std::vector<Frequency> f) {
  auto r = FrequencySet::Make(std::move(f));
  EXPECT_TRUE(r.ok());
  return *std::move(r);
}

TEST(VOptSerialTest, GroupsByFrequencyProximity) {
  // {1, 2, 100, 101}: with 2 buckets the optimum is {1,2} | {100,101}
  // regardless of value positions.
  auto h = BuildVOptSerialExhaustive(MustSet({100, 1, 101, 2}), 2);
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(h->IsSerial());
  const auto& bz = h->bucketization();
  EXPECT_EQ(bz.bucket_of(1), bz.bucket_of(3));  // 1 with 2
  EXPECT_EQ(bz.bucket_of(0), bz.bucket_of(2));  // 100 with 101
  EXPECT_NE(bz.bucket_of(0), bz.bucket_of(1));
  EXPECT_DOUBLE_EQ(SelfJoinError(*h), 0.5 + 0.5);  // 2*0.25 per bucket
}

TEST(VOptSerialTest, BetaOneIsTrivialBucketization) {
  auto h = BuildVOptSerialExhaustive(MustSet({3, 1, 4}), 1);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->num_buckets(), 1u);
}

TEST(VOptSerialTest, BetaEqualsMGivesZeroError) {
  auto h = BuildVOptSerialExhaustive(MustSet({3, 1, 4, 1, 5}), 5);
  ASSERT_TRUE(h.ok());
  EXPECT_DOUBLE_EQ(SelfJoinError(*h), 0.0);
}

TEST(VOptSerialTest, BeatsOrMatchesEveryOtherBucketization) {
  // Exhaustive cross-check on a small set: the v-opt serial error must be
  // <= the error of every possible 2-bucket assignment (serial or not),
  // since self-join optimality is attained within serial histograms
  // (Theorem 3.1 applied to self-joins).
  std::vector<Frequency> freqs = {7, 1, 9, 4, 4, 12};
  auto best = BuildVOptSerialExhaustive(MustSet(freqs), 2);
  ASSERT_TRUE(best.ok());
  double best_err = SelfJoinError(*best);
  const size_t m = freqs.size();
  for (uint32_t mask = 1; mask + 1 < (1u << m); ++mask) {
    std::vector<uint32_t> assign(m);
    for (size_t i = 0; i < m; ++i) assign[i] = (mask >> i) & 1;
    auto b = Bucketization::FromAssignments(assign, 2);
    if (!b.ok()) continue;  // empty bucket
    auto h = Histogram::Make(MustSet(freqs), *b);
    ASSERT_TRUE(h.ok());
    EXPECT_LE(best_err, SelfJoinError(*h) + 1e-9)
        << "mask=" << mask;
  }
}

TEST(VOptSerialTest, DiagnosticsCountCandidates) {
  VOptDiagnostics diag;
  auto h =
      BuildVOptSerialExhaustive(MustSet({1, 2, 3, 4, 5}), 3, {}, &diag);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(diag.candidates_examined, 6u);  // C(4, 2)
  EXPECT_DOUBLE_EQ(diag.best_error, SelfJoinError(*h));
}

TEST(VOptSerialTest, ResourceLimitTriggers) {
  VOptSerialOptions options;
  options.max_candidates = 10;
  std::vector<Frequency> many(40);
  for (size_t i = 0; i < many.size(); ++i) {
    many[i] = static_cast<double>(i);
  }
  auto h = BuildVOptSerialExhaustive(MustSet(many), 5, options);
  EXPECT_TRUE(h.status().IsResourceExhausted());
}

TEST(VOptSerialTest, InvalidBeta) {
  EXPECT_FALSE(BuildVOptSerialExhaustive(MustSet({1, 2}), 0).ok());
  EXPECT_FALSE(BuildVOptSerialExhaustive(MustSet({1, 2}), 3).ok());
}

TEST(VOptSerialDPTest, MatchesExhaustiveOnRandomSets) {
  Rng rng(2024);
  for (int trial = 0; trial < 25; ++trial) {
    size_t m = 4 + static_cast<size_t>(rng.NextBounded(9));  // 4..12
    std::vector<Frequency> freqs(m);
    for (auto& f : freqs) {
      f = static_cast<double>(rng.NextBounded(50));
    }
    for (size_t beta = 1; beta <= std::min<size_t>(m, 5); ++beta) {
      VOptDiagnostics de, dd;
      auto he = BuildVOptSerialExhaustive(MustSet(freqs), beta, {}, &de);
      auto hd = BuildVOptSerialDP(MustSet(freqs), beta, &dd);
      ASSERT_TRUE(he.ok()) << he.status();
      ASSERT_TRUE(hd.ok()) << hd.status();
      EXPECT_NEAR(de.best_error, dd.best_error, 1e-9 + 1e-9 * de.best_error)
          << "trial=" << trial << " m=" << m << " beta=" << beta;
      EXPECT_NEAR(SelfJoinError(*he), SelfJoinError(*hd),
                  1e-9 + 1e-9 * de.best_error);
    }
  }
}

TEST(VOptSerialDPTest, HandlesLargerSetsThanExhaustive) {
  auto set = ZipfFrequencySet({1000.0, 200, 1.0});
  ASSERT_TRUE(set.ok());
  auto h = BuildVOptSerialDP(*set, 20);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->num_buckets(), 20u);
  EXPECT_TRUE(h->IsSerial());
}

TEST(VOptSerialDPTest, ErrorDecreasesMonotonicallyInBeta) {
  auto set = ZipfFrequencySet({1000.0, 60, 1.5});
  ASSERT_TRUE(set.ok());
  double prev = -1;
  for (size_t beta = 1; beta <= 12; ++beta) {
    auto h = BuildVOptSerialDP(*set, beta);
    ASSERT_TRUE(h.ok());
    double err = SelfJoinError(*h);
    if (prev >= 0) {
      EXPECT_LE(err, prev + 1e-9);
    }
    prev = err;
  }
}

TEST(VOptSerialDPFastTest, MatchesQuadraticDPOnRandomSets) {
  Rng rng(31337);
  for (int trial = 0; trial < 30; ++trial) {
    size_t m = 3 + static_cast<size_t>(rng.NextBounded(40));
    std::vector<Frequency> freqs(m);
    for (auto& f : freqs) {
      f = static_cast<double>(rng.NextBounded(100));
    }
    for (size_t beta : {1u, 2u, 3u, 5u, 8u}) {
      if (beta > m) continue;
      VOptDiagnostics slow, fast;
      auto hs = BuildVOptSerialDP(MustSet(freqs), beta, &slow);
      auto hf = BuildVOptSerialDPFast(MustSet(freqs), beta, &fast);
      ASSERT_TRUE(hs.ok() && hf.ok());
      EXPECT_NEAR(slow.best_error, fast.best_error,
                  1e-9 + 1e-9 * slow.best_error)
          << "trial=" << trial << " m=" << m << " beta=" << beta;
      // The D&C layer evaluates strictly fewer candidates on larger inputs.
      if (m >= 30 && beta >= 5) {
        EXPECT_LT(fast.candidates_examined, slow.candidates_examined);
      }
    }
  }
}

TEST(VOptSerialDPFastTest, MatchesExhaustiveOptimum) {
  Rng rng(515151);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Frequency> freqs(9);
    for (auto& f : freqs) {
      f = static_cast<double>(rng.NextBounded(40));
    }
    for (size_t beta = 1; beta <= 4; ++beta) {
      VOptDiagnostics de, df;
      auto he = BuildVOptSerialExhaustive(MustSet(freqs), beta, {}, &de);
      auto hf = BuildVOptSerialDPFast(MustSet(freqs), beta, &df);
      ASSERT_TRUE(he.ok() && hf.ok());
      EXPECT_NEAR(de.best_error, df.best_error,
                  1e-9 + 1e-9 * de.best_error);
    }
  }
}

TEST(VOptSerialDPFastTest, LargeInputStaysSerialAndOptimalShaped) {
  auto set = ZipfFrequencySet({10000.0, 2000, 1.2});
  ASSERT_TRUE(set.ok());
  auto h = BuildVOptSerialDPFast(*set, 24);
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(h->IsSerial());
  EXPECT_EQ(h->num_buckets(), 24u);
}

TEST(VOptEndBiasedTest, PicksExtremesNotMiddles) {
  // {100, 50, 10, 10, 10, 1}: with beta=3 (two singletons), the optimal
  // end-biased histogram stores 100 and 50 exactly (high variance there).
  EndBiasedChoice choice;
  auto h =
      BuildVOptEndBiased(MustSet({100, 50, 10, 10, 10, 1}), 3, &choice);
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(h->IsEndBiased());
  EXPECT_EQ(choice.num_high + choice.num_low, 2u);
  EXPECT_DOUBLE_EQ(h->ApproxFrequency(0), 100.0);
  EXPECT_DOUBLE_EQ(h->ApproxFrequency(1), 50.0);
}

TEST(VOptEndBiasedTest, ChoosesLowSingletonsWhenLowsSpread) {
  // Reverse-Zipf-like: many equal highs, two stray lows.
  EndBiasedChoice choice;
  auto h = BuildVOptEndBiased(MustSet({50, 50, 50, 50, 3, 1}), 3, &choice);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(choice.num_low, 2u);
  EXPECT_EQ(choice.num_high, 0u);
  EXPECT_DOUBLE_EQ(SelfJoinError(*h), 0.0);  // remaining bucket univalued
}

TEST(VOptEndBiasedTest, OptimalWithinEndBiasedClass) {
  // Brute force over all (h, l) splits must not beat the builder.
  std::vector<Frequency> freqs = {23, 17, 17, 9, 4, 4, 2, 1};
  const size_t beta = 4;
  EndBiasedChoice choice;
  auto best = BuildVOptEndBiased(MustSet(freqs), beta, &choice);
  ASSERT_TRUE(best.ok());
  double best_err = SelfJoinError(*best);
  for (size_t high = 0; high + 1 <= beta; ++high) {
    size_t low = beta - 1 - high;
    auto h = BuildEndBiasedHistogram(MustSet(freqs), high, low);
    ASSERT_TRUE(h.ok());
    EXPECT_GE(SelfJoinError(*h) + 1e-9, best_err)
        << "high=" << high << " low=" << low;
  }
  EXPECT_DOUBLE_EQ(choice.error, best_err);
}

TEST(VOptEndBiasedTest, BetaOneFallsBackToTrivial) {
  EndBiasedChoice choice;
  auto h = BuildVOptEndBiased(MustSet({1, 2, 3}), 1, &choice);
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(h->IsTrivial());
  EXPECT_EQ(choice.num_high, 0u);
  EXPECT_EQ(choice.num_low, 0u);
}

TEST(VOptEndBiasedTest, BetaEqualsMZeroError) {
  auto h = BuildVOptEndBiased(MustSet({9, 7, 5, 3}), 4);
  ASSERT_TRUE(h.ok());
  EXPECT_DOUBLE_EQ(SelfJoinError(*h), 0.0);
}

TEST(VOptEndBiasedTest, NeverBeatsVOptSerial) {
  // End-biased is a subclass of serial: its optimum cannot be better.
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Frequency> freqs(10);
    for (auto& f : freqs) {
      f = static_cast<double>(rng.NextBounded(100));
    }
    for (size_t beta = 2; beta <= 4; ++beta) {
      auto serial = BuildVOptSerialExhaustive(MustSet(freqs), beta);
      auto biased = BuildVOptEndBiased(MustSet(freqs), beta);
      ASSERT_TRUE(serial.ok());
      ASSERT_TRUE(biased.ok());
      EXPECT_LE(SelfJoinError(*serial), SelfJoinError(*biased) + 1e-9);
    }
  }
}

TEST(VOptEndBiasedGroupedTest, TiedExtremesShareBuckets) {
  // {9, 9, 5, 5, 5, 1} with beta = 3: grouping puts {9, 9} in one univalued
  // bucket and {1} in another, leaving {5, 5, 5} univalued too — zero
  // error. The singleton variant cannot do this.
  EndBiasedChoice grouped_choice, singleton_choice;
  auto grouped = BuildVOptEndBiasedGrouped(MustSet({9, 9, 5, 5, 5, 1}), 3,
                                           &grouped_choice);
  auto singleton =
      BuildVOptEndBiased(MustSet({9, 9, 5, 5, 5, 1}), 3, &singleton_choice);
  ASSERT_TRUE(grouped.ok() && singleton.ok());
  EXPECT_DOUBLE_EQ(SelfJoinError(*grouped), 0.0);
  EXPECT_GT(SelfJoinError(*singleton), 0.0);
  EXPECT_TRUE(grouped->IsEndBiased());
  EXPECT_TRUE(grouped->IsSerial());
}

TEST(VOptEndBiasedGroupedTest, NeverWorseThanSingletonVariant) {
  Rng rng(2468);
  for (int trial = 0; trial < 30; ++trial) {
    size_t m = 4 + rng.NextBounded(30);
    std::vector<Frequency> freqs(m);
    for (auto& f : freqs) {
      f = static_cast<double>(rng.NextBounded(8));  // many ties
    }
    for (size_t beta = 1; beta <= std::min<size_t>(m, 6); ++beta) {
      auto grouped = BuildVOptEndBiasedGrouped(MustSet(freqs), beta);
      auto singleton = BuildVOptEndBiased(MustSet(freqs), beta);
      ASSERT_TRUE(grouped.ok() && singleton.ok());
      EXPECT_LE(SelfJoinError(*grouped), SelfJoinError(*singleton) + 1e-9)
          << "trial " << trial << " beta " << beta;
    }
  }
}

TEST(VOptEndBiasedGroupedTest, EqualsSingletonVariantWithoutTies) {
  // Distinct frequencies: runs are singletons, both variants coincide.
  std::vector<Frequency> freqs = {1, 3, 7, 15, 31, 63, 127};
  for (size_t beta = 1; beta <= 5; ++beta) {
    auto grouped = BuildVOptEndBiasedGrouped(MustSet(freqs), beta);
    auto singleton = BuildVOptEndBiased(MustSet(freqs), beta);
    ASSERT_TRUE(grouped.ok() && singleton.ok());
    EXPECT_DOUBLE_EQ(SelfJoinError(*grouped), SelfJoinError(*singleton));
  }
}

TEST(VOptEndBiasedGroupedTest, AllValuesEqualCollapsesToOneBucket) {
  auto h = BuildVOptEndBiasedGrouped(MustSet({4, 4, 4, 4}), 3);
  ASSERT_TRUE(h.ok());
  EXPECT_DOUBLE_EQ(SelfJoinError(*h), 0.0);
  EXPECT_LE(h->num_buckets(), 3u);
}

TEST(VOptEndBiasedTest, LabelsReflectConstruction) {
  auto h = BuildVOptEndBiased(MustSet({5, 1, 9}), 2);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->label(), "v-opt-end-biased");
}

}  // namespace
}  // namespace hops
