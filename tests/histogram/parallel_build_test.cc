// Equivalence tests for the batched, pool-parallel histogram pipeline: for
// every builder kind the parallel batch result must be bit-identical to the
// serial baseline (the determinism contract of histogram/parallel_build.h).

#include "histogram/parallel_build.h"

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "histogram/builders.h"
#include "stats/frequency_set.h"
#include "stats/zipf.h"
#include "util/thread_pool.h"

namespace hops {
namespace {

FrequencySet MustZipf(size_t m, double skew, double total_factor = 10.0) {
  ZipfParams params;
  params.total = total_factor * static_cast<double>(m);
  params.num_values = m;
  params.skew = skew;
  auto set = ZipfFrequencySet(params, /*integer_valued=*/true);
  EXPECT_TRUE(set.ok()) << set.status().ToString();
  return *std::move(set);
}

FrequencySet MustRandomSet(size_t m, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(1.0, 1000.0);
  std::vector<Frequency> freqs(m);
  for (auto& f : freqs) f = dist(rng);
  auto set = FrequencySet::Make(std::move(freqs));
  EXPECT_TRUE(set.ok()) << set.status().ToString();
  return *std::move(set);
}

/// True when the two histograms are indistinguishable: same construction
/// label, same bucket count, and the exact same bucket assignment for every
/// set entry.
void ExpectIdentical(const Histogram& a, const Histogram& b,
                     const std::string& context) {
  EXPECT_EQ(a.label(), b.label()) << context;
  ASSERT_EQ(a.num_buckets(), b.num_buckets()) << context;
  const auto aa = a.bucketization().assignments();
  const auto ba = b.bucketization().assignments();
  ASSERT_EQ(aa.size(), ba.size()) << context;
  for (size_t i = 0; i < aa.size(); ++i) {
    ASSERT_EQ(aa[i], ba[i]) << context << " at entry " << i;
  }
}

std::vector<HistogramBuildRequest> MakeRequests(
    const std::vector<FrequencySet>& sets,
    const std::vector<HistogramBuilderKind>& kinds, size_t num_buckets) {
  std::vector<HistogramBuildRequest> requests;
  for (HistogramBuilderKind kind : kinds) {
    for (const FrequencySet& set : sets) {
      HistogramBuildRequest req;
      req.set = set;
      req.num_buckets = std::min(num_buckets, set.size());
      req.kind = kind;
      requests.push_back(std::move(req));
    }
  }
  return requests;
}

void CheckParallelMatchesSerial(const std::vector<FrequencySet>& sets,
                                const std::vector<HistogramBuilderKind>& kinds,
                                size_t num_buckets) {
  ParallelBuildOptions serial_opts;
  serial_opts.serial = true;
  auto serial = BuildHistogramBatch(MakeRequests(sets, kinds, num_buckets),
                                    serial_opts);
  auto parallel = BuildHistogramBatch(MakeRequests(sets, kinds, num_buckets));
  ASSERT_EQ(serial.size(), parallel.size());
  size_t r = 0;
  for (HistogramBuilderKind kind : kinds) {
    for (size_t s = 0; s < sets.size(); ++s, ++r) {
      const std::string context =
          std::string(HistogramBuilderKindToString(kind)) + " set " +
          std::to_string(s) + " beta " + std::to_string(num_buckets);
      ASSERT_TRUE(serial[r].ok()) << context << ": "
                                  << serial[r].status().ToString();
      ASSERT_TRUE(parallel[r].ok()) << context << ": "
                                    << parallel[r].status().ToString();
      ExpectIdentical(*serial[r], *parallel[r], context);
    }
  }
}

/// Builder kinds that are feasible on small/medium sets (the exhaustive
/// builder is exponential; it gets its own tiny-set test).
std::vector<HistogramBuilderKind> PolynomialKinds() {
  return {
      HistogramBuilderKind::kTrivial,
      HistogramBuilderKind::kEquiWidth,
      HistogramBuilderKind::kEquiDepth,
      HistogramBuilderKind::kVOptEndBiased,
      HistogramBuilderKind::kVOptEndBiasedGrouped,
      HistogramBuilderKind::kVOptSerialDP,
      HistogramBuilderKind::kVOptSerialDPFast,
  };
}

TEST(ParallelBuildTest, ParallelMatchesSerialOnZipfColumns) {
  std::vector<FrequencySet> sets;
  for (double skew : {0.0, 0.5, 1.0, 2.0}) {
    sets.push_back(MustZipf(/*m=*/503, skew));
  }
  CheckParallelMatchesSerial(sets, PolynomialKinds(), /*num_buckets=*/20);
}

TEST(ParallelBuildTest, ParallelMatchesSerialOnRandomSets) {
  std::vector<FrequencySet> sets;
  for (uint32_t seed = 1; seed <= 6; ++seed) {
    sets.push_back(MustRandomSet(/*m=*/241 + 37 * seed, seed));
  }
  for (size_t beta : {size_t{1}, size_t{7}, size_t{64}}) {
    CheckParallelMatchesSerial(sets, PolynomialKinds(), beta);
  }
}

TEST(ParallelBuildTest, BetaOneAndBetaMEdgeCases) {
  std::vector<FrequencySet> sets = {MustZipf(/*m=*/97, /*skew=*/1.0),
                                    MustRandomSet(/*m=*/97, /*seed=*/11)};
  // beta = 1: every builder degenerates to the trivial single bucket.
  CheckParallelMatchesSerial(sets, PolynomialKinds(), /*num_buckets=*/1);
  // beta = M: every entry can get its own bucket (zero error partition).
  CheckParallelMatchesSerial(sets, PolynomialKinds(), /*num_buckets=*/97);
}

TEST(ParallelBuildTest, LargeSetExercisesIntraBuildParallelism) {
  // Big enough that SortedFrequencyOrder and BuildPrefixSums take their
  // parallel paths (m > kParallelSortGrain and m > kPrefixSumGrain).
  std::vector<FrequencySet> sets = {MustZipf(/*m=*/100000, /*skew=*/1.0)};
  std::vector<HistogramBuilderKind> kinds = {
      HistogramBuilderKind::kEquiDepth,
      HistogramBuilderKind::kVOptEndBiased,
      HistogramBuilderKind::kVOptSerialDPFast,
  };
  CheckParallelMatchesSerial(sets, kinds, /*num_buckets=*/50);
}

TEST(ParallelBuildTest, ExhaustiveBuilderMatchesOnTinySets) {
  std::vector<FrequencySet> sets = {MustRandomSet(/*m=*/9, /*seed=*/3),
                                    MustRandomSet(/*m=*/10, /*seed=*/4)};
  CheckParallelMatchesSerial(
      sets, {HistogramBuilderKind::kVOptSerialExhaustive}, /*num_buckets=*/3);
}

TEST(ParallelBuildTest, ResultsAlignWithRequestsAndMixKinds) {
  // A deliberately heterogeneous batch: results must align index-for-index.
  std::vector<HistogramBuildRequest> requests;
  FrequencySet zipf = MustZipf(/*m=*/128, /*skew=*/1.0);
  for (size_t beta : {size_t{2}, size_t{5}, size_t{16}}) {
    for (HistogramBuilderKind kind : PolynomialKinds()) {
      HistogramBuildRequest req;
      req.set = zipf;
      req.num_buckets = beta;
      req.kind = kind;
      requests.push_back(std::move(req));
    }
  }
  auto results = BuildHistogramBatch(std::move(requests));
  ASSERT_EQ(results.size(), 3 * PolynomialKinds().size());
  size_t r = 0;
  for (size_t beta : {size_t{2}, size_t{5}, size_t{16}}) {
    for (HistogramBuilderKind kind : PolynomialKinds()) {
      ASSERT_TRUE(results[r].ok()) << HistogramBuilderKindToString(kind);
      // The trivial builder always produces one bucket; the others may merge
      // ties, so they respect the beta budget without necessarily using it.
      if (kind == HistogramBuilderKind::kTrivial) {
        EXPECT_EQ(results[r]->num_buckets(), 1u);
      } else {
        EXPECT_LE(results[r]->num_buckets(), beta)
            << HistogramBuilderKindToString(kind);
        EXPECT_GE(results[r]->num_buckets(), 1u);
      }
      EXPECT_EQ(results[r]->label(), HistogramBuilderKindToString(kind));
      ++r;
    }
  }
}

TEST(ParallelBuildTest, PerRequestFailuresDoNotAbortTheBatch) {
  // An invalid request (empty frequency set) fails alone; its neighbors
  // still build.
  std::vector<HistogramBuildRequest> requests(3);
  requests[0].set = MustZipf(/*m=*/50, /*skew=*/1.0);
  requests[0].num_buckets = 5;
  // requests[1].set stays empty -> the builder must report an error.
  requests[1].num_buckets = 5;
  requests[2].set = MustZipf(/*m=*/50, /*skew=*/0.5);
  requests[2].num_buckets = 5;
  auto results = BuildHistogramBatch(std::move(requests));
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_TRUE(results[2].ok());
}

TEST(ParallelBuildTest, DiagnosticsAreFilledPerRequest) {
  std::vector<VOptDiagnostics> diags(2);
  std::vector<HistogramBuildRequest> requests(2);
  requests[0].set = MustZipf(/*m=*/200, /*skew=*/1.0);
  requests[0].num_buckets = 10;
  requests[0].kind = HistogramBuilderKind::kVOptSerialDP;
  requests[0].diagnostics = &diags[0];
  requests[1].set = MustZipf(/*m=*/200, /*skew=*/1.0);
  requests[1].num_buckets = 10;
  requests[1].kind = HistogramBuilderKind::kVOptSerialDPFast;
  requests[1].diagnostics = &diags[1];
  auto results = BuildHistogramBatch(std::move(requests));
  ASSERT_TRUE(results[0].ok());
  ASSERT_TRUE(results[1].ok());
  EXPECT_GT(diags[0].candidates_examined, 0u);
  EXPECT_GT(diags[1].candidates_examined, 0u);
  // The divide-and-conquer variant must not examine more candidates than the
  // quadratic DP on the same problem.
  EXPECT_LE(diags[1].candidates_examined, diags[0].candidates_examined);
  EXPECT_EQ(results[0]->num_buckets(), 10u);
  EXPECT_EQ(results[1]->num_buckets(), 10u);
}

TEST(ParallelBuildTest, ExplicitPoolAndDefaultPoolAgree) {
  ThreadPool pool(2);
  std::vector<FrequencySet> sets = {MustZipf(/*m=*/300, /*skew=*/1.5)};
  ParallelBuildOptions with_pool;
  with_pool.pool = &pool;
  auto a = BuildHistogramBatch(
      MakeRequests(sets, PolynomialKinds(), /*num_buckets=*/12), with_pool);
  auto b = BuildHistogramBatch(
      MakeRequests(sets, PolynomialKinds(), /*num_buckets=*/12));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].ok());
    ASSERT_TRUE(b[i].ok());
    ExpectIdentical(*a[i], *b[i], "pool size 2 vs global pool");
  }
}

}  // namespace
}  // namespace hops
