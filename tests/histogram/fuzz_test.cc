// Randomized robustness tests: encode/decode round trips under random
// inputs, byte-level corruption, and long random maintenance sequences.
// These are deterministic "fuzz-style" sweeps (seeded), not coverage-guided
// fuzzing — but they exercise the same invariants.

#include <gtest/gtest.h>

#include <unordered_map>

#include "engine/catalog.h"
#include "histogram/builders.h"
#include "histogram/maintenance.h"
#include "histogram/serialization.h"
#include "util/random.h"

namespace hops {
namespace {

CatalogHistogram RandomCatalogHistogram(Rng* rng) {
  size_t num_explicit = rng->NextBounded(20);
  std::vector<std::pair<int64_t, double>> entries;
  std::unordered_map<int64_t, bool> used;
  for (size_t i = 0; i < num_explicit; ++i) {
    int64_t value = rng->NextInt(-1000, 1000);
    if (used.count(value)) continue;
    used[value] = true;
    entries.emplace_back(value,
                         static_cast<double>(rng->NextBounded(10000)) / 4);
  }
  double default_freq = static_cast<double>(rng->NextBounded(400)) / 8;
  uint64_t num_default = rng->NextBounded(100000);
  auto hist = CatalogHistogram::Make(std::move(entries), default_freq,
                                     num_default);
  EXPECT_TRUE(hist.ok());
  return *std::move(hist);
}

TEST(FuzzTest, CatalogHistogramEncodeDecodeRoundTrips) {
  Rng rng(0xF022);
  for (int trial = 0; trial < 200; ++trial) {
    CatalogHistogram hist = RandomCatalogHistogram(&rng);
    auto decoded = CatalogHistogram::Decode(hist.Encode());
    ASSERT_TRUE(decoded.ok()) << "trial " << trial;
    EXPECT_EQ(*decoded, hist) << "trial " << trial;
  }
}

TEST(FuzzTest, CorruptedBytesNeverCrashDecoder) {
  Rng rng(0xF023);
  for (int trial = 0; trial < 300; ++trial) {
    CatalogHistogram hist = RandomCatalogHistogram(&rng);
    std::string bytes = hist.Encode();
    // Random single-byte flip, truncation, or extension.
    switch (rng.NextBounded(3)) {
      case 0: {
        size_t pos = static_cast<size_t>(rng.NextBounded(bytes.size()));
        bytes[pos] = static_cast<char>(bytes[pos] ^
                                       static_cast<char>(rng.NextInt(1, 255)));
        break;
      }
      case 1:
        bytes.resize(static_cast<size_t>(rng.NextBounded(bytes.size())));
        break;
      default:
        bytes += static_cast<char>(rng.NextInt(0, 255));
        break;
    }
    // Must either fail cleanly or produce a structurally valid histogram;
    // it must never crash or loop.
    auto decoded = CatalogHistogram::Decode(bytes);
    if (decoded.ok()) {
      EXPECT_GE(decoded->default_frequency(), 0.0);
    }
  }
}

TEST(FuzzTest, CatalogSerializeRoundTripsUnderRandomContents) {
  Rng rng(0xF024);
  for (int trial = 0; trial < 30; ++trial) {
    Catalog catalog;
    size_t entries = 1 + rng.NextBounded(6);
    for (size_t e = 0; e < entries; ++e) {
      ColumnStatistics stats;
      stats.num_tuples = static_cast<double>(rng.NextBounded(100000));
      stats.num_distinct = rng.NextBounded(1000);
      stats.min_value = rng.NextInt(-100, 0);
      stats.max_value = rng.NextInt(1, 100);
      stats.histogram = RandomCatalogHistogram(&rng);
      ASSERT_TRUE(catalog
                      .PutColumnStatistics("t" + std::to_string(e % 3),
                                           "c" + std::to_string(e), stats)
                      .ok());
    }
    auto restored = Catalog::Deserialize(catalog.Serialize());
    ASSERT_TRUE(restored.ok()) << "trial " << trial;
    EXPECT_EQ(restored->ListEntries(), catalog.ListEntries());
    EXPECT_EQ(restored->TotalEncodedBytes(), catalog.TotalEncodedBytes());
  }
}

TEST(FuzzTest, MaintenanceInvariantsUnderRandomOpSequences) {
  Rng rng(0xF025);
  for (int trial = 0; trial < 20; ++trial) {
    CatalogHistogram hist =
        *CatalogHistogram::Make({{1, 50.0}, {2, 25.0}, {3, 10.0}}, 4.0, 20);
    HistogramMaintainer m(hist, 165.0);
    double tracked = 165.0;
    for (int op = 0; op < 500; ++op) {
      int64_t value = rng.NextInt(0, 30);
      if (rng.NextBounded(2) == 0) {
        ASSERT_TRUE(m.ApplyInsert(value).ok());
        tracked += 1;
      } else {
        ASSERT_TRUE(m.ApplyDelete(value).ok());
        tracked = std::max(0.0, tracked - 1);
      }
      // Invariants after every op: non-negative frequencies, tuple count
      // tracked exactly, estimated total within the clamping slack.
      EXPECT_GE(m.current().default_frequency(), 0.0);
      for (const auto& [v, f] : m.current().explicit_entries()) {
        EXPECT_GE(f, 0.0);
      }
      EXPECT_DOUBLE_EQ(m.num_tuples(), tracked);
    }
    EXPECT_EQ(m.updates_applied(), 500u);
    EXPECT_NEAR(m.current().EstimatedTotal(), tracked,
                0.35 * (tracked + 100));
  }
}

TEST(FuzzTest, BuildersNeverProduceInvalidHistogramsOnRandomSets) {
  Rng rng(0xF026);
  for (int trial = 0; trial < 60; ++trial) {
    size_t m = 1 + rng.NextBounded(40);
    std::vector<Frequency> freqs(m);
    for (auto& f : freqs) {
      f = static_cast<double>(rng.NextBounded(1000)) / 7;
    }
    auto set = FrequencySet::Make(freqs);
    ASSERT_TRUE(set.ok());
    size_t beta = 1 + rng.NextBounded(m);
    for (auto builder :
         {+[](const FrequencySet& s, size_t b) {
            return BuildEquiWidthHistogram(s, b);
          },
          +[](const FrequencySet& s, size_t b) {
            return BuildEquiDepthHistogram(s, b);
          },
          +[](const FrequencySet& s, size_t b) {
            return BuildVOptEndBiased(s, b, nullptr);
          },
          +[](const FrequencySet& s, size_t b) {
            return BuildVOptSerialDPFast(s, b, nullptr);
          }}) {
      auto h = builder(*set, beta);
      ASSERT_TRUE(h.ok()) << "trial " << trial;
      // Structural invariants.
      EXPECT_LE(h->num_buckets(), beta);
      size_t covered = 0;
      double mass = 0;
      for (const auto& b : h->bucket_stats()) {
        EXPECT_GT(b.count, 0u);
        EXPECT_GE(b.variance, 0.0);
        EXPECT_LE(b.min, b.max);
        covered += b.count;
        mass += b.sum;
      }
      EXPECT_EQ(covered, m);
      EXPECT_NEAR(mass, set->Total(), 1e-6 * (1 + set->Total()));
    }
  }
}

}  // namespace
}  // namespace hops
