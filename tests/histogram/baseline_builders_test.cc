#include <gtest/gtest.h>

#include "histogram/builders.h"
#include "histogram/self_join.h"

namespace hops {
namespace {

FrequencySet MustSet(std::vector<Frequency> f) {
  auto r = FrequencySet::Make(std::move(f));
  EXPECT_TRUE(r.ok());
  return *std::move(r);
}

TEST(TrivialBuilderTest, SingleBucketOverEverything) {
  auto h = BuildTrivialHistogram(MustSet({1, 5, 9}));
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(h->IsTrivial());
  EXPECT_EQ(h->num_buckets(), 1u);
  EXPECT_DOUBLE_EQ(h->ApproxFrequency(0), 5.0);
  EXPECT_EQ(h->label(), "trivial");
}

TEST(TrivialBuilderTest, FailsOnEmptySet) {
  EXPECT_FALSE(BuildTrivialHistogram(MustSet({})).ok());
}

TEST(EquiWidthTest, SplitsValueOrderEvenly) {
  // 6 values, 3 buckets -> ranges of 2 consecutive positions.
  auto h = BuildEquiWidthHistogram(MustSet({9, 1, 7, 2, 8, 3}), 3);
  ASSERT_TRUE(h.ok());
  const auto& bz = h->bucketization();
  EXPECT_EQ(bz.bucket_of(0), 0u);
  EXPECT_EQ(bz.bucket_of(1), 0u);
  EXPECT_EQ(bz.bucket_of(2), 1u);
  EXPECT_EQ(bz.bucket_of(3), 1u);
  EXPECT_EQ(bz.bucket_of(4), 2u);
  EXPECT_EQ(bz.bucket_of(5), 2u);
}

TEST(EquiWidthTest, UnevenSizesDifferByAtMostOne) {
  auto h = BuildEquiWidthHistogram(MustSet({1, 2, 3, 4, 5, 6, 7}), 3);
  ASSERT_TRUE(h.ok());
  std::vector<size_t> sizes = h->bucketization().BucketSizes();
  EXPECT_EQ(sizes, (std::vector<size_t>{3, 2, 2}));
}

TEST(EquiWidthTest, RejectsBadBucketCounts) {
  EXPECT_FALSE(BuildEquiWidthHistogram(MustSet({1, 2}), 0).ok());
  EXPECT_FALSE(BuildEquiWidthHistogram(MustSet({1, 2}), 3).ok());
}

TEST(EquiDepthTest, BalancesTupleCounts) {
  // Values (in value order) 5,5,5,5,10,10: total 40, 2 buckets -> close
  // the first bucket once cumulative >= 20.
  auto h = BuildEquiDepthHistogram(MustSet({5, 5, 5, 5, 10, 10}), 2);
  ASSERT_TRUE(h.ok());
  const auto& bz = h->bucketization();
  EXPECT_EQ(bz.bucket_of(0), 0u);
  EXPECT_EQ(bz.bucket_of(3), 0u);
  EXPECT_EQ(bz.bucket_of(4), 1u);
  EXPECT_EQ(bz.bucket_of(5), 1u);
}

TEST(EquiDepthTest, GiantFrequencyIsIsolated) {
  // Tuple-quantile semantics: a value heavier than the bucket depth owns
  // its bucket(s); the buckets it fully covers are merged away, so the
  // histogram may end up with fewer buckets than requested (all non-empty).
  auto h = BuildEquiDepthHistogram(MustSet({1000, 1, 1, 1}), 3);
  ASSERT_TRUE(h.ok());
  std::vector<size_t> sizes = h->bucketization().BucketSizes();
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0], 1u);  // giant value alone
  EXPECT_EQ(sizes[1], 3u);
  EXPECT_DOUBLE_EQ(h->bucket_stats()[0].variance, 0.0);
}

TEST(EquiDepthTest, HighSkewErrorStaysBounded) {
  // The Figure 5 behaviour: because heavy values are isolated, the
  // equi-depth self-join error does not explode with skew the way the
  // trivial histogram's does.
  std::vector<Frequency> freqs = {900, 50, 20, 10, 5, 5, 4, 3, 2, 1};
  auto depth = BuildEquiDepthHistogram(MustSet(freqs), 5);
  auto trivial = BuildTrivialHistogram(MustSet(freqs));
  ASSERT_TRUE(depth.ok() && trivial.ok());
  double depth_err = 0, trivial_err = 0;
  for (const auto& b : depth->bucket_stats()) {
    depth_err += b.error_contribution();
  }
  for (const auto& b : trivial->bucket_stats()) {
    trivial_err += b.error_contribution();
  }
  EXPECT_LT(depth_err, trivial_err / 10);
}

TEST(EquiDepthTest, UniformInputGivesEqualWidthBuckets) {
  auto h = BuildEquiDepthHistogram(MustSet(std::vector<Frequency>(8, 3.0)),
                                   4);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->bucketization().BucketSizes(),
            (std::vector<size_t>{2, 2, 2, 2}));
}

TEST(EndBiasedBuilderTest, SingletonsAtBothEnds) {
  auto h = BuildEndBiasedHistogram(MustSet({50, 3, 9, 1, 7}), /*num_high=*/1,
                                   /*num_low=*/1);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->num_buckets(), 3u);
  EXPECT_TRUE(h->IsEndBiased());
  EXPECT_TRUE(h->IsBiased());
  // The high (50) and low (1) entries approximate exactly.
  EXPECT_DOUBLE_EQ(h->ApproxFrequency(0), 50.0);
  EXPECT_DOUBLE_EQ(h->ApproxFrequency(3), 1.0);
  // The middle {3, 9, 7} share their average.
  EXPECT_NEAR(h->ApproxFrequency(1), 19.0 / 3, 1e-12);
}

TEST(EndBiasedBuilderTest, ZeroSingletonsIsTrivial) {
  auto h = BuildEndBiasedHistogram(MustSet({1, 2, 3}), 0, 0);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->num_buckets(), 1u);
}

TEST(EndBiasedBuilderTest, AllSingletonsAllowed) {
  auto h = BuildEndBiasedHistogram(MustSet({1, 2, 3}), 2, 1);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->num_buckets(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(h->ApproxFrequency(i),
                     static_cast<double>(i + 1));
  }
}

TEST(EndBiasedBuilderTest, RejectsTooManySingletons) {
  EXPECT_FALSE(BuildEndBiasedHistogram(MustSet({1, 2}), 2, 1).ok());
}

TEST(EndBiasedBuilderTest, TiesResolveDeterministically) {
  auto a = BuildEndBiasedHistogram(MustSet({5, 5, 5, 5}), 1, 1);
  auto b = BuildEndBiasedHistogram(MustSet({5, 5, 5, 5}), 1, 1);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->bucketization(), b->bucketization());
}

}  // namespace
}  // namespace hops
