// Property-based tests: parameterized sweeps over distribution shapes,
// sizes, and bucket counts, asserting the paper's invariants on every
// combination.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "histogram/builders.h"
#include "histogram/matrix_histogram.h"
#include "histogram/self_join.h"
#include "stats/arrangement.h"
#include "stats/distributions.h"
#include "util/random.h"

namespace hops {
namespace {

using PropertyParams =
    std::tuple<DistributionKind, size_t /*M*/, double /*skew*/,
               size_t /*beta*/>;

class HistogramPropertyTest
    : public testing::TestWithParam<PropertyParams> {
 protected:
  FrequencySet MakeSet() const {
    auto [kind, m, skew, beta] = GetParam();
    DistributionSpec spec;
    spec.kind = kind;
    spec.total = 1000.0;
    spec.num_values = m;
    spec.skew = skew;
    spec.seed = 17;
    auto set = GenerateFrequencySet(spec);
    EXPECT_TRUE(set.ok()) << set.status();
    return *std::move(set);
  }
  size_t Beta() const {
    auto [kind, m, skew, beta] = GetParam();
    return std::min(beta, std::get<1>(GetParam()));
  }
};

TEST_P(HistogramPropertyTest, ApproximationPreservesTotalExactly) {
  // Every histogram preserves the relation size under exact averages:
  // sum of approximate frequencies == sum of true frequencies.
  FrequencySet set = MakeSet();
  for (auto builder :
       {+[](const FrequencySet& s, size_t b) {
          return BuildEquiWidthHistogram(s, b);
        },
        +[](const FrequencySet& s, size_t b) {
          return BuildEquiDepthHistogram(s, b);
        },
        +[](const FrequencySet& s, size_t b) {
          return BuildVOptEndBiased(s, b, nullptr);
        },
        +[](const FrequencySet& s, size_t b) {
          return BuildVOptSerialDP(s, b, nullptr);
        },
        +[](const FrequencySet& s, size_t b) {
          return BuildVOptSerialDPFast(s, b, nullptr);
        }}) {
    auto h = builder(set, Beta());
    ASSERT_TRUE(h.ok()) << h.status();
    double approx_total = 0;
    for (double f : h->ApproximateFrequencies()) approx_total += f;
    EXPECT_NEAR(approx_total, set.Total(), 1e-6 * (1 + set.Total()));
  }
}

TEST_P(HistogramPropertyTest, DPVariantsAgreeExactly) {
  FrequencySet set = MakeSet();
  VOptDiagnostics slow, fast;
  auto hs = BuildVOptSerialDP(set, Beta(), &slow);
  auto hf = BuildVOptSerialDPFast(set, Beta(), &fast);
  ASSERT_TRUE(hs.ok() && hf.ok());
  EXPECT_NEAR(slow.best_error, fast.best_error,
              1e-9 + 1e-9 * slow.best_error);
  EXPECT_NEAR(SelfJoinError(*hs), SelfJoinError(*hf),
              1e-9 + 1e-9 * slow.best_error);
}

TEST_P(HistogramPropertyTest, SelfJoinUnderestimatesForEveryClass) {
  // S' <= S for self-joins under exact bucket averages (Proposition 3.1:
  // the error sum_i P_i V_i is non-negative).
  FrequencySet set = MakeSet();
  double s = ExactSelfJoinSize(set);
  for (auto builder :
       {+[](const FrequencySet& s2, size_t b) {
          return BuildEquiWidthHistogram(s2, b);
        },
        +[](const FrequencySet& s2, size_t b) {
          return BuildEquiDepthHistogram(s2, b);
        },
        +[](const FrequencySet& s2, size_t b) {
          return BuildVOptEndBiased(s2, b, nullptr);
        },
        +[](const FrequencySet& s2, size_t b) {
          return BuildVOptSerialDP(s2, b, nullptr);
        }}) {
    auto h = builder(set, Beta());
    ASSERT_TRUE(h.ok());
    EXPECT_LE(SelfJoinApproxSize(*h), s + 1e-6 * (1 + s));
    EXPECT_GE(SelfJoinError(*h), -1e-9);
  }
}

TEST_P(HistogramPropertyTest, VOptSerialDominatesAllOtherClasses) {
  // Theorem 3.3 + Proposition 3.1: the v-optimal serial histogram minimizes
  // the self-join error over every class we build.
  FrequencySet set = MakeSet();
  auto serial = BuildVOptSerialDP(set, Beta());
  ASSERT_TRUE(serial.ok());
  double serial_err = SelfJoinError(*serial);
  for (auto builder :
       {+[](const FrequencySet& s2, size_t b) {
          return BuildEquiWidthHistogram(s2, b);
        },
        +[](const FrequencySet& s2, size_t b) {
          return BuildEquiDepthHistogram(s2, b);
        },
        +[](const FrequencySet& s2, size_t b) {
          return BuildVOptEndBiased(s2, b, nullptr);
        }}) {
    auto h = builder(set, Beta());
    ASSERT_TRUE(h.ok());
    EXPECT_LE(serial_err, SelfJoinError(*h) + 1e-6 * (1 + serial_err));
  }
}

TEST_P(HistogramPropertyTest, VOptHistogramsAreSerialAndEndBiasedIsBiased) {
  FrequencySet set = MakeSet();
  auto serial = BuildVOptSerialDP(set, Beta());
  ASSERT_TRUE(serial.ok());
  EXPECT_TRUE(serial->IsSerial());
  auto biased = BuildVOptEndBiased(set, Beta());
  ASSERT_TRUE(biased.ok());
  EXPECT_TRUE(biased->IsBiased());
  EXPECT_TRUE(biased->IsEndBiased());
  EXPECT_TRUE(biased->IsSerial());  // Corollary: end-biased => serial
}

TEST_P(HistogramPropertyTest, ArrangedApproximationConsistent) {
  // ApproximateArrangedMatrix must agree with bucketizing the arranged
  // matrix directly under the same bucket assignment.
  FrequencySet set = MakeSet();
  if (set.size() % 2 != 0) return;  // need a rectangular shape
  size_t rows = 2, cols = set.size() / 2;
  auto h = BuildVOptEndBiased(set, Beta());
  ASSERT_TRUE(h.ok());
  Rng rng(5);
  std::vector<size_t> perm = rng.Permutation(set.size());
  auto am = ApproximateArrangedMatrix(*h, rows, cols, perm);
  ASSERT_TRUE(am.ok());
  // Every cell must equal the approximate frequency of its source entry.
  for (size_t i = 0; i < set.size(); ++i) {
    size_t flat = perm[i];
    EXPECT_DOUBLE_EQ(am->At(flat / cols, flat % cols),
                     h->ApproxFrequency(i));
  }
  // And the cell multiset totals must match.
  EXPECT_NEAR(am->Total(), set.Total(), 1e-6 * (1 + set.Total()));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HistogramPropertyTest,
    testing::Combine(
        testing::Values(DistributionKind::kUniform, DistributionKind::kZipf,
                        DistributionKind::kReverseZipf,
                        DistributionKind::kTwoStep,
                        DistributionKind::kNoisyUniform),
        testing::Values<size_t>(4, 10, 64),
        testing::Values(0.5, 1.0, 2.0),
        testing::Values<size_t>(1, 2, 3, 5)),
    [](const testing::TestParamInfo<PropertyParams>& param_info) {
      // NOTE: no structured bindings here — their square brackets break
      // macro argument parsing inside INSTANTIATE_TEST_SUITE_P.
      std::string name =
          DistributionKindToString(std::get<0>(param_info.param));
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name + "_M" + std::to_string(std::get<1>(param_info.param)) +
             "_z" +
             std::to_string(
                 static_cast<int>(std::get<2>(param_info.param) * 10)) +
             "_b" + std::to_string(std::get<3>(param_info.param));
    });

}  // namespace
}  // namespace hops
