#include "histogram/maintenance.h"

#include <gtest/gtest.h>

namespace hops {
namespace {

CatalogHistogram SampleHistogram() {
  // Values 1, 2 explicit (30 and 20 tuples); 8 default values averaging 5.
  return *CatalogHistogram::Make({{1, 30.0}, {2, 20.0}}, 5.0, 8);
}

TEST(MaintenanceTest, InsertExplicitValueAdjustsCountExactly) {
  HistogramMaintainer m(SampleHistogram(), 90.0);
  ASSERT_TRUE(m.ApplyInsert(1).ok());
  ASSERT_TRUE(m.ApplyInsert(1).ok());
  EXPECT_DOUBLE_EQ(m.current().LookupFrequency(1), 32.0);
  EXPECT_DOUBLE_EQ(m.current().LookupFrequency(2), 20.0);
  EXPECT_DOUBLE_EQ(m.num_tuples(), 92.0);
  EXPECT_EQ(m.updates_applied(), 2u);
}

TEST(MaintenanceTest, DeleteExplicitValueClampsAtZero) {
  HistogramMaintainer m(SampleHistogram(), 90.0);
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(m.ApplyDelete(2).ok());
  }
  EXPECT_DOUBLE_EQ(m.current().LookupFrequency(2), 0.0);
  EXPECT_GE(m.num_tuples(), 0.0);
}

TEST(MaintenanceTest, DefaultBucketSpreadsUpdates) {
  HistogramMaintainer m(SampleHistogram(), 90.0);
  // 8 inserts of default values raise the average by exactly 1.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(m.ApplyInsert(100 + i).ok());
  }
  EXPECT_DOUBLE_EQ(m.current().default_frequency(), 6.0);
  // 8 deletes bring it back.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(m.ApplyDelete(100 + i).ok());
  }
  EXPECT_DOUBLE_EQ(m.current().default_frequency(), 5.0);
}

TEST(MaintenanceTest, DefaultFrequencyNeverNegative) {
  HistogramMaintainer m(SampleHistogram(), 90.0);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(m.ApplyDelete(500).ok());
  }
  EXPECT_GE(m.current().default_frequency(), 0.0);
}

TEST(MaintenanceTest, EstimatedTotalTracksUpdates) {
  HistogramMaintainer m(SampleHistogram(), 90.0);
  double before = m.current().EstimatedTotal();
  ASSERT_TRUE(m.ApplyInsert(1).ok());     // explicit
  ASSERT_TRUE(m.ApplyInsert(300).ok());   // default
  EXPECT_NEAR(m.current().EstimatedTotal(), before + 2.0, 1e-9);
}

TEST(MaintenanceTest, DriftTriggersRebuild) {
  MaintenanceOptions options;
  options.rebuild_drift_fraction = 0.10;
  HistogramMaintainer m(SampleHistogram(), 90.0, options);
  EXPECT_FALSE(m.NeedsRebuild());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(m.ApplyInsert(1).ok());
  }
  EXPECT_FALSE(m.NeedsRebuild());  // 8/90 < 10%
  ASSERT_TRUE(m.ApplyInsert(1).ok());
  ASSERT_TRUE(m.ApplyInsert(1).ok());
  EXPECT_TRUE(m.NeedsRebuild());  // 10/90 > 10%
}

TEST(MaintenanceTest, EmergingHeavyHitterTriggersRebuild) {
  MaintenanceOptions options;
  options.rebuild_drift_fraction = 10.0;  // disable the drift path
  options.promotion_ratio = 3.0;
  HistogramMaintainer m(SampleHistogram(), 90.0, options);
  // Hammer one default value until its sketched count passes
  // (ratio - 1) * default_frequency = 2 * ~5.
  int inserts = 0;
  while (!m.NeedsRebuild() && inserts < 100) {
    ASSERT_TRUE(m.ApplyInsert(777).ok());
    ++inserts;
  }
  EXPECT_TRUE(m.NeedsRebuild());
  EXPECT_LE(inserts, 15);
}

TEST(MaintenanceTest, ExplicitChurnDoesNotTriggerPromotion) {
  MaintenanceOptions options;
  options.rebuild_drift_fraction = 10.0;
  options.promotion_ratio = 3.0;
  HistogramMaintainer m(SampleHistogram(), 90.0, options);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(m.ApplyInsert(1).ok());  // explicit value: no sketch
  }
  EXPECT_FALSE(m.NeedsRebuild());
}

TEST(MaintenanceTest, RebuiltResetsDriftTracking) {
  MaintenanceOptions options;
  options.rebuild_drift_fraction = 0.05;
  HistogramMaintainer m(SampleHistogram(), 90.0, options);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(m.ApplyInsert(1).ok());
  }
  ASSERT_TRUE(m.NeedsRebuild());
  m.Rebuilt(SampleHistogram(), 110.0);
  EXPECT_FALSE(m.NeedsRebuild());
  EXPECT_EQ(m.updates_applied(), 0u);
  EXPECT_DOUBLE_EQ(m.num_tuples(), 110.0);
}

TEST(MaintenanceTest, MixedWorkloadStaysConsistent) {
  // Long interleaved run: the maintained estimated total must track the
  // true tuple count within the default-bucket rounding.
  HistogramMaintainer m(SampleHistogram(), 90.0);
  double truth = 90.0;
  for (int i = 0; i < 500; ++i) {
    int64_t v = (i * 7) % 12;  // mixes explicit (1, 2) and default values
    if (i % 3 == 0) {
      ASSERT_TRUE(m.ApplyDelete(v).ok());
      truth -= 1;
    } else {
      ASSERT_TRUE(m.ApplyInsert(v).ok());
      truth += 1;
    }
  }
  EXPECT_NEAR(m.current().EstimatedTotal(), truth, 30.0);
  EXPECT_EQ(m.updates_applied(), 500u);
}

}  // namespace
}  // namespace hops
