#include "histogram/tuning.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "histogram/serialization.h"

namespace hops {
namespace {

TEST(BucketRefinementTreeTest, MakeUniformValidates) {
  EXPECT_FALSE(BucketRefinementTree::MakeUniform(10, 5, 4).ok());
  EXPECT_FALSE(BucketRefinementTree::MakeUniform(0, 10, 0).ok());
  auto tree = BucketRefinementTree::MakeUniform(0, 99, 4);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_leaves(), 4u);
  EXPECT_TRUE(tree->IsUniform());
}

TEST(BucketRefinementTreeTest, LeavesClampToDomainWidth) {
  // A 3-value domain cannot support 64 leaves — no cell narrower than one
  // value.
  auto tree = BucketRefinementTree::MakeUniform(5, 7, 64);
  ASSERT_TRUE(tree.ok());
  EXPECT_LE(tree->num_leaves(), 3u);
}

TEST(BucketRefinementTreeTest, UniformFractionMatchesLinearSpread) {
  auto tree = BucketRefinementTree::MakeUniform(0, 99, 8);
  ASSERT_TRUE(tree.ok());
  // Uniform density: a half-domain range holds (roughly) half the mass.
  EXPECT_NEAR(tree->FractionInRange(0, 49), 0.5, 1e-9);
  EXPECT_NEAR(tree->FractionInRange(0, 99), 1.0, 1e-12);
  EXPECT_NEAR(tree->FractionInRange(25, 74), 0.5, 1e-9);
  // Out-of-domain clamps.
  EXPECT_NEAR(tree->FractionInRange(-100, 1000), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(tree->FractionInRange(50, 40), 0.0);
}

TEST(BucketRefinementTreeTest, ScaleRangeConservesMassAndShiftsDensity) {
  auto tree = BucketRefinementTree::MakeUniform(0, 99, 10);
  ASSERT_TRUE(tree.ok());
  const double before = tree->FractionInRange(0, 19);
  tree->ScaleRange(0, 19, 4.0);
  EXPECT_FALSE(tree->IsUniform());
  const double after = tree->FractionInRange(0, 19);
  EXPECT_GT(after, before);
  // Total mass stays exactly 1 (mass-conserving update).
  double total = 0;
  for (double w : tree->leaf_weights()) total += w;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(tree->FractionInRange(0, 99), 1.0, 1e-12);
  // The rest of the domain gave the mass up.
  EXPECT_LT(tree->FractionInRange(20, 99), 0.8);
}

TEST(BucketRefinementTreeTest, ScaleRangeIgnoresInvalidFactors) {
  auto tree = BucketRefinementTree::MakeUniform(0, 9, 4);
  ASSERT_TRUE(tree.ok());
  tree->ScaleRange(0, 4, 0.0);
  tree->ScaleRange(0, 4, -2.0);
  tree->ScaleRange(0, 4, std::nan(""));
  EXPECT_TRUE(tree->IsUniform());
}

TEST(BucketRefinementTreeTest, FromWeightsRoundTripsExactly) {
  auto tree = BucketRefinementTree::MakeUniform(0, 999, 16);
  ASSERT_TRUE(tree.ok());
  tree->ScaleRange(100, 300, 3.0);
  tree->ScaleRange(700, 900, 0.25);
  auto copy = BucketRefinementTree::FromWeights(
      tree->domain_lo(), tree->domain_hi(), tree->leaf_weights());
  ASSERT_TRUE(copy.ok());
  EXPECT_TRUE(*copy == *tree);  // bit-exact weights, not just close
}

TEST(BucketRefinementTreeTest, FromWeightsValidates) {
  EXPECT_FALSE(BucketRefinementTree::FromWeights(0, 9, {}).ok());
  EXPECT_FALSE(BucketRefinementTree::FromWeights(0, 9, {0.0, 0.0}).ok());
  EXPECT_FALSE(BucketRefinementTree::FromWeights(0, 9, {1.0, -0.5}).ok());
  EXPECT_FALSE(
      BucketRefinementTree::FromWeights(0, 9, {1.0, std::nan("")}).ok());
}

TEST(CatalogHistogramTuningTest, PromoteToExplicitMovesValueOut) {
  auto h = CatalogHistogram::Make({{10, 100.0}}, 2.0, 5);
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(h->PromoteToExplicit(42, 8.0));
  EXPECT_EQ(h->explicit_entries().size(), 2u);
  EXPECT_EQ(h->num_default_values(), 4u);
  bool is_explicit = false;
  EXPECT_DOUBLE_EQ(h->LookupFrequency(42, &is_explicit), 8.0);
  EXPECT_TRUE(is_explicit);
  // Already explicit / empty default bucket / bad frequency all refuse.
  EXPECT_FALSE(h->PromoteToExplicit(42, 9.0));
  EXPECT_FALSE(h->PromoteToExplicit(50, -1.0));
  auto empty_default = CatalogHistogram::Make({{1, 5.0}}, 0.0, 0);
  ASSERT_TRUE(empty_default.ok());
  EXPECT_FALSE(empty_default->PromoteToExplicit(9, 1.0));
}

TEST(CatalogHistogramTuningTest, ScaleExplicitRangeTouchesOnlyInRange) {
  auto h = CatalogHistogram::Make({{1, 10.0}, {5, 20.0}, {9, 30.0}}, 1.0, 3);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->ScaleExplicitRange(2, 8, 2.0), 1u);
  EXPECT_DOUBLE_EQ(h->LookupFrequency(1), 10.0);
  EXPECT_DOUBLE_EQ(h->LookupFrequency(5), 40.0);
  EXPECT_DOUBLE_EQ(h->LookupFrequency(9), 30.0);
  EXPECT_EQ(h->ScaleExplicitRange(100, 200, 2.0), 0u);
}

TEST(CatalogHistogramTuningTest, EncodeWithoutTreeStaysVersion1Identical) {
  auto h = CatalogHistogram::Make({{-3, 9.5}, {42, 1.0}}, 0.25, 97);
  ASSERT_TRUE(h.ok());
  const std::string before = h->Encode();
  // Installing and clearing a refinement must restore the historic bytes.
  auto tree = BucketRefinementTree::MakeUniform(0, 99, 4);
  ASSERT_TRUE(tree.ok());
  h->SetRefinement(std::make_shared<const BucketRefinementTree>(
      std::move(*tree)));
  EXPECT_NE(h->Encode(), before);
  h->SetRefinement(nullptr);
  EXPECT_EQ(h->Encode(), before);
}

TEST(CatalogHistogramTuningTest, EncodeDecodeRoundTripsRefinement) {
  auto h = CatalogHistogram::Make({{1, 10.0}, {9, 3.0}}, 2.0, 40);
  ASSERT_TRUE(h.ok());
  auto tree = BucketRefinementTree::MakeUniform(0, 999, 8);
  ASSERT_TRUE(tree.ok());
  tree->ScaleRange(0, 499, 2.5);
  h->SetRefinement(std::make_shared<const BucketRefinementTree>(
      std::move(*tree)));
  const std::string bytes = h->Encode();
  EXPECT_EQ(bytes.size(), h->EncodedSize());
  auto decoded = CatalogHistogram::Decode(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, *h);
  ASSERT_NE(decoded->refinement(), nullptr);
  EXPECT_TRUE(*decoded->refinement() == *h->refinement());
  // Re-encoding the decoded form is byte-stable (no normalization drift).
  EXPECT_EQ(decoded->Encode(), bytes);
}

TEST(ApplyTuningDeltaTest, AppliesAllDeltaKinds) {
  auto h = CatalogHistogram::Make({{1, 10.0}, {5, 20.0}}, 2.0, 10);
  ASSERT_TRUE(h.ok());
  TuningDelta delta;
  delta.explicit_adjustments.push_back({1, 5.0});
  delta.promotions.push_back({7, 9.0});
  delta.range_scales.push_back({4, 6, 2.0});
  delta.default_frequency = 3.0;
  auto report = ApplyTuningDelta(&*h, delta);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->changed());
  EXPECT_EQ(report->promotions, 1u);
  EXPECT_GE(report->adjustments, 3u);
  EXPECT_DOUBLE_EQ(h->LookupFrequency(1), 15.0);
  EXPECT_DOUBLE_EQ(h->LookupFrequency(5), 40.0);
  EXPECT_DOUBLE_EQ(h->LookupFrequency(7), 9.0);
  EXPECT_DOUBLE_EQ(h->default_frequency(), 3.0);
  EXPECT_EQ(h->num_default_values(), 9u);
}

TEST(ApplyTuningDeltaTest, SkipsBenignRacesAndRejectsInvalid) {
  auto h = CatalogHistogram::Make({{1, 10.0}}, 2.0, 4);
  ASSERT_TRUE(h.ok());
  // Promoting an already-explicit value is a skip, not an error.
  TuningDelta benign;
  benign.promotions.push_back({1, 5.0});
  auto report = ApplyTuningDelta(&*h, benign);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->promotions, 0u);
  // Non-finite inputs are rejected outright.
  TuningDelta bad;
  bad.explicit_adjustments.push_back({1, std::nan("")});
  EXPECT_FALSE(ApplyTuningDelta(&*h, bad).ok());
  TuningDelta bad_scale;
  bad_scale.range_scales.push_back(
      {0, 9, std::numeric_limits<double>::infinity()});
  EXPECT_FALSE(ApplyTuningDelta(&*h, bad_scale).ok());
}

TEST(ApplyTuningDeltaTest, RangeScaleRefinesInstalledTree) {
  auto h = CatalogHistogram::Make({{500, 50.0}}, 2.0, 100);
  ASSERT_TRUE(h.ok());
  auto tree = BucketRefinementTree::MakeUniform(0, 999, 8);
  ASSERT_TRUE(tree.ok());
  h->SetRefinement(std::make_shared<const BucketRefinementTree>(
      std::move(*tree)));
  const auto shared_before = h->refinement();
  TuningDelta delta;
  delta.range_scales.push_back({0, 249, 4.0});
  auto report = ApplyTuningDelta(&*h, delta);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->changed());
  // Copy-on-write: the previously shared tree is untouched.
  ASSERT_NE(h->refinement(), nullptr);
  EXPECT_NE(h->refinement().get(), shared_before.get());
  EXPECT_TRUE(shared_before->IsUniform());
  EXPECT_FALSE(h->refinement()->IsUniform());
  EXPECT_GT(h->refinement()->FractionInRange(0, 249), 0.25);
}

}  // namespace
}  // namespace hops
