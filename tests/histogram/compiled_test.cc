// CompiledHistogram: the read-optimized serving view must agree with its
// CatalogHistogram source bit for bit, stay coherent under maintenance, and
// classify the prefix-sum fast path correctly.

#include "histogram/compiled.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "histogram/maintenance.h"
#include "histogram/serialization.h"
#include "util/math.h"

namespace hops {
namespace {

CatalogHistogram IntegerHistogram() {
  // Integer frequencies -> the exact prefix regime.
  return *CatalogHistogram::Make(
      {{-5, 7.0}, {0, 30.0}, {2, 20.0}, {9, 1.0}, {40, 12.0}}, 3.0, 10);
}

CatalogHistogram FractionalHistogram() {
  // A non-integer frequency disables the prefix fast path.
  return *CatalogHistogram::Make({{1, 30.5}, {2, 20.25}, {7, 6.125}}, 1.5, 4);
}

TEST(CompiledHistogramTest, LookupMatchesCatalogHistogram) {
  CatalogHistogram h = IntegerHistogram();
  CompiledHistogram c = CompiledHistogram::Compile(h);
  ASSERT_EQ(c.num_explicit(), 5u);
  EXPECT_EQ(c.default_frequency(), h.default_frequency());
  EXPECT_EQ(c.num_default_values(), h.num_default_values());
  EXPECT_EQ(c.num_values(), h.num_values());
  for (int64_t v = -10; v <= 50; ++v) {
    bool catalog_explicit = false;
    bool compiled_explicit = false;
    const double want = h.LookupFrequency(v, &catalog_explicit);
    const double got = c.LookupFrequency(v, &compiled_explicit);
    EXPECT_EQ(want, got) << "value " << v;
    EXPECT_EQ(catalog_explicit, compiled_explicit) << "value " << v;
  }
}

TEST(CompiledHistogramTest, BoundsMatchStdAlgorithms) {
  CompiledHistogram c = CompiledHistogram::Compile(IntegerHistogram());
  const std::vector<int64_t> keys(c.keys().begin(), c.keys().end());
  for (int64_t v = -10; v <= 50; ++v) {
    const auto lb = std::lower_bound(keys.begin(), keys.end(), v);
    const auto ub = std::upper_bound(keys.begin(), keys.end(), v);
    EXPECT_EQ(c.LowerBound(v), static_cast<size_t>(lb - keys.begin()));
    EXPECT_EQ(c.UpperBound(v), static_cast<size_t>(ub - keys.begin()));
  }
}

TEST(CompiledHistogramTest, ExplicitRangeSelectsClosedInterval) {
  CompiledHistogram c = CompiledHistogram::Compile(IntegerHistogram());
  auto [b1, e1] = c.ExplicitRange(-5, 2);  // {-5, 0, 2}
  EXPECT_EQ(b1, 0u);
  EXPECT_EQ(e1, 3u);
  auto [b2, e2] = c.ExplicitRange(3, 8);  // none
  EXPECT_EQ(b2, e2);
  auto [b3, e3] = c.ExplicitRange(10, 5);  // inverted -> empty
  EXPECT_EQ(b3, e3);
}

TEST(CompiledHistogramTest, IntegerFrequenciesUseExactPrefix) {
  CompiledHistogram c = CompiledHistogram::Compile(IntegerHistogram());
  EXPECT_TRUE(c.prefix_exact());
  ASSERT_EQ(c.prefix_sums().size(), c.num_explicit() + 1);
  EXPECT_EQ(c.prefix_sums().front(), 0.0);
  EXPECT_EQ(c.explicit_mass_total(), 70.0);
  // Every subrange must match a fresh Kahan accumulation bit for bit.
  for (size_t b = 0; b <= c.num_explicit(); ++b) {
    for (size_t e = b; e <= c.num_explicit(); ++e) {
      KahanSum fresh;
      for (size_t i = b; i < e; ++i) fresh.Add(c.frequencies()[i]);
      EXPECT_EQ(c.ExplicitMass(b, e), fresh.Value()) << b << ".." << e;
    }
  }
}

TEST(CompiledHistogramTest, FractionalFrequenciesFallBackToKahanScan) {
  CompiledHistogram c = CompiledHistogram::Compile(FractionalHistogram());
  EXPECT_FALSE(c.prefix_exact());
  for (size_t b = 0; b <= c.num_explicit(); ++b) {
    for (size_t e = b; e <= c.num_explicit(); ++e) {
      KahanSum fresh;
      for (size_t i = b; i < e; ++i) fresh.Add(c.frequencies()[i]);
      EXPECT_EQ(c.ExplicitMass(b, e), fresh.Value()) << b << ".." << e;
    }
  }
}

TEST(CompiledHistogramTest, EstimatedTotalMatchesCatalogForm) {
  for (const CatalogHistogram& h :
       {IntegerHistogram(), FractionalHistogram()}) {
    CompiledHistogram c = CompiledHistogram::Compile(h);
    EXPECT_EQ(c.EstimatedTotal(), h.EstimatedTotal());
  }
}

TEST(CompiledHistogramTest, EmptyHistogramCompiles) {
  CatalogHistogram h = *CatalogHistogram::Make({}, 0.0, 0);
  CompiledHistogram c = CompiledHistogram::Compile(h);
  EXPECT_EQ(c.num_explicit(), 0u);
  EXPECT_EQ(c.ExplicitMass(0, 0), 0.0);
  EXPECT_EQ(c.LookupFrequency(42), 0.0);
  // Default-constructed (never compiled) is also safe to query.
  CompiledHistogram def;
  EXPECT_EQ(def.explicit_mass_total(), 0.0);
  EXPECT_EQ(def.EstimatedTotal(), 0.0);
}

// ---------------------------------------------------------------------------
// Serving coherence: mutations invalidate the cached compiled view.

TEST(CompiledHistogramTest, CachedViewInvalidatedByAdjust) {
  CatalogHistogram h = IntegerHistogram();
  const CompiledHistogram& before = h.compiled();
  EXPECT_EQ(before.LookupFrequency(0), 30.0);
  ASSERT_TRUE(h.AdjustExplicitFrequency(0, +5.0));
  const CompiledHistogram& after = h.compiled();
  EXPECT_EQ(after.LookupFrequency(0), 35.0);
  // The rebuilt view equals compiling from scratch.
  CompiledHistogram fresh = CompiledHistogram::Compile(h);
  EXPECT_EQ(after.explicit_mass_total(), fresh.explicit_mass_total());
}

TEST(CompiledHistogramTest, CachedViewInvalidatedBySetDefault) {
  CatalogHistogram h = IntegerHistogram();
  EXPECT_EQ(h.compiled().LookupFrequency(100), 3.0);  // default bucket
  ASSERT_TRUE(h.SetDefaultFrequency(4.5).ok());
  EXPECT_EQ(h.compiled().LookupFrequency(100), 4.5);
}

TEST(CompiledHistogramTest, FailedMutationKeepsCachedView) {
  CatalogHistogram h = IntegerHistogram();
  const CompiledHistogram* before = &h.compiled();
  EXPECT_FALSE(h.AdjustExplicitFrequency(12345, +1.0));  // not explicit
  EXPECT_FALSE(h.SetDefaultFrequency(-1.0).ok());        // invalid
  EXPECT_EQ(before, &h.compiled());  // same cached object, no rebuild
}

TEST(CompiledHistogramTest, CompiledSharedSurvivesMutation) {
  CatalogHistogram h = IntegerHistogram();
  std::shared_ptr<const CompiledHistogram> view = h.compiled_shared();
  ASSERT_TRUE(h.AdjustExplicitFrequency(0, -10.0));
  // The old view is immutable and still serves the old statistics (RCU).
  EXPECT_EQ(view->LookupFrequency(0), 30.0);
  EXPECT_EQ(h.compiled().LookupFrequency(0), 20.0);
}

TEST(CompiledHistogramTest, MaintainerCompiledStaysCoherent) {
  HistogramMaintainer maintainer(IntegerHistogram(), 100.0);
  EXPECT_EQ(maintainer.compiled().LookupFrequency(2), 20.0);
  ASSERT_TRUE(maintainer.ApplyInsert(2).ok());
  ASSERT_TRUE(maintainer.ApplyInsert(2).ok());
  ASSERT_TRUE(maintainer.ApplyDelete(0).ok());
  EXPECT_EQ(maintainer.compiled().LookupFrequency(2), 22.0);
  EXPECT_EQ(maintainer.compiled().LookupFrequency(0), 29.0);
  // Coherence: the served view equals compiling the maintained histogram.
  CompiledHistogram fresh = CompiledHistogram::Compile(maintainer.current());
  for (int64_t v = -10; v <= 50; ++v) {
    EXPECT_EQ(maintainer.compiled().LookupFrequency(v),
              fresh.LookupFrequency(v))
        << "value " << v;
  }
}

TEST(CompiledHistogramTest, EqualityIgnoresCompiledCache) {
  CatalogHistogram a = IntegerHistogram();
  CatalogHistogram b = IntegerHistogram();
  (void)a.compiled();  // a has a cache, b does not
  EXPECT_TRUE(a == b);
  ASSERT_TRUE(b.AdjustExplicitFrequency(0, 1.0));
  EXPECT_FALSE(a == b);
}

TEST(CompiledHistogramTest, EncodeDecodeRoundTripKeepsCompiledCoherent) {
  CatalogHistogram h = IntegerHistogram();
  auto decoded = CatalogHistogram::Decode(h.Encode());
  ASSERT_TRUE(decoded.ok());
  CompiledHistogram c = CompiledHistogram::Compile(*decoded);
  for (int64_t v = -10; v <= 50; ++v) {
    EXPECT_EQ(c.LookupFrequency(v), h.LookupFrequency(v));
  }
}

}  // namespace
}  // namespace hops
