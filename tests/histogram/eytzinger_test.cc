// Exhaustive equivalence proof for the Eytzinger search layout (DESIGN.md
// §12): for a compiled histogram built from EVERY seed histogram class —
// trivial, equi-width, equi-depth, end-biased, v-optimal serial, v-optimal
// end-biased, plus the empty and single-bucket edge shapes —
// EytzingerLowerBound/EytzingerUpperBound must return exactly the index
// std::lower_bound/std::upper_bound (and the branchy LowerBound/UpperBound)
// return, for every probe in an extended domain including INT64_MIN/MAX.
// The batched multi-probe kernel builds on this layout; its own equivalence
// test lives in tests/estimator/probe_kernel_test.cc.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "histogram/builders.h"
#include "histogram/compiled.h"
#include "histogram/serialization.h"
#include "stats/frequency_set.h"

namespace hops {
namespace {

// A frequency set with ties, spread, and a unique extreme — enough texture
// that every builder produces a different bucketization.
std::vector<double> SeedFrequencies(size_t m) {
  std::vector<double> frequencies;
  frequencies.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    frequencies.push_back(
        static_cast<double>(1 + (i * 7 + 3) % 11 + (i == m / 2 ? 90 : 0)));
  }
  return frequencies;
}

// Attribute values with uneven gaps so probes fall both on and between
// stored keys.
std::vector<int64_t> SeedValueIds(size_t m) {
  std::vector<int64_t> ids;
  ids.reserve(m);
  int64_t v = -17;
  for (size_t i = 0; i < m; ++i) {
    ids.push_back(v);
    v += 1 + static_cast<int64_t>((i * 5) % 9);
  }
  return ids;
}

struct NamedHistogram {
  std::string name;
  CatalogHistogram catalog;
};

// One compact catalog histogram per builder class over the same seed set.
std::vector<NamedHistogram> AllSeedClasses() {
  constexpr size_t kM = 60;
  constexpr size_t kBuckets = 7;
  const std::vector<int64_t> ids = SeedValueIds(kM);
  auto set = [&] { return *FrequencySet::Make(SeedFrequencies(kM)); };
  auto compact = [&](const Result<Histogram>& histogram) {
    histogram.status().Check();
    return *CatalogHistogram::FromHistogram(*histogram, ids);
  };

  std::vector<NamedHistogram> out;
  out.push_back({"trivial", compact(BuildTrivialHistogram(set()))});
  out.push_back({"equi_width",
                 compact(BuildEquiWidthHistogram(set(), kBuckets))});
  out.push_back({"equi_depth",
                 compact(BuildEquiDepthHistogram(set(), kBuckets))});
  out.push_back({"end_biased",
                 compact(BuildEndBiasedHistogram(set(), 3, 2))});
  out.push_back({"v_opt_serial_dp",
                 compact(BuildVOptSerialDP(set(), kBuckets))});
  out.push_back({"v_opt_serial_dp_fast",
                 compact(BuildVOptSerialDPFast(set(), kBuckets))});
  out.push_back({"v_opt_end_biased",
                 compact(BuildVOptEndBiased(set(), kBuckets))});
  out.push_back({"v_opt_end_biased_grouped",
                 compact(BuildVOptEndBiasedGrouped(set(), kBuckets))});
  // Edge shapes the builders cannot produce: no explicit entries at all,
  // and exactly one.
  out.push_back({"empty", *CatalogHistogram::Make({}, 2.0, 10)});
  out.push_back({"one_key", *CatalogHistogram::Make({{5, 4.0}}, 1.0, 3)});
  return out;
}

// Every stored key, its neighbors, far outliers, and the int64 extremes.
std::vector<int64_t> ProbeSet(const CompiledHistogram& compiled) {
  std::vector<int64_t> probes;
  for (int64_t key : compiled.keys()) {
    probes.push_back(key - 1);
    probes.push_back(key);
    probes.push_back(key + 1);
  }
  probes.push_back(std::numeric_limits<int64_t>::min());
  probes.push_back(std::numeric_limits<int64_t>::max());
  probes.push_back(-1000000);
  probes.push_back(1000000);
  probes.push_back(0);
  return probes;
}

TEST(EytzingerLayoutTest, MatchesLowerBoundOnEverySeedClass) {
  for (const NamedHistogram& seed : AllSeedClasses()) {
    const CompiledHistogram compiled =
        CompiledHistogram::Compile(seed.catalog);
    const std::vector<int64_t> keys(compiled.keys().begin(),
                                    compiled.keys().end());
    ASSERT_TRUE(std::is_sorted(keys.begin(), keys.end())) << seed.name;
    for (int64_t probe : ProbeSet(compiled)) {
      const size_t want_lower = static_cast<size_t>(
          std::lower_bound(keys.begin(), keys.end(), probe) - keys.begin());
      const size_t want_upper = static_cast<size_t>(
          std::upper_bound(keys.begin(), keys.end(), probe) - keys.begin());
      EXPECT_EQ(compiled.LowerBound(probe), want_lower)
          << seed.name << " probe " << probe;
      EXPECT_EQ(compiled.EytzingerLowerBound(probe), want_lower)
          << seed.name << " probe " << probe;
      EXPECT_EQ(compiled.UpperBound(probe), want_upper)
          << seed.name << " probe " << probe;
      EXPECT_EQ(compiled.EytzingerUpperBound(probe), want_upper)
          << seed.name << " probe " << probe;
    }
  }
}

TEST(EytzingerLayoutTest, LayoutIsPaddedCompleteTree) {
  for (const NamedHistogram& seed : AllSeedClasses()) {
    const CompiledHistogram compiled =
        CompiledHistogram::Compile(seed.catalog);
    const size_t n = compiled.num_explicit();
    if (n == 0) {
      EXPECT_EQ(compiled.eytzinger_depth(), 0u) << seed.name;
      continue;
    }
    // Depth d is minimal with 2^d - 1 >= n; nodes are 1-based.
    const uint32_t depth = compiled.eytzinger_depth();
    const size_t nodes = (size_t{1} << depth) - 1;
    ASSERT_GE(nodes, n) << seed.name;
    EXPECT_LT(depth == 0 ? 0 : (size_t{1} << (depth - 1)) - 1, n)
        << seed.name;
    ASSERT_EQ(compiled.eytzinger_keys().size(), nodes + 1) << seed.name;
    ASSERT_EQ(compiled.eytzinger_ranks().size(), nodes + 1) << seed.name;
    // Every real key appears exactly once; pads carry the +inf sentinel and
    // a clamped rank.
    std::vector<int64_t> seen;
    for (size_t node = 1; node <= nodes; ++node) {
      const uint32_t rank = compiled.eytzinger_ranks()[node];
      const int64_t key = compiled.eytzinger_keys()[node];
      if (rank < n) {
        EXPECT_EQ(key, compiled.keys()[rank]) << seed.name;
        seen.push_back(key);
      } else {
        EXPECT_EQ(rank, n) << seed.name;
        EXPECT_EQ(key, std::numeric_limits<int64_t>::max()) << seed.name;
      }
    }
    std::sort(seen.begin(), seen.end());
    EXPECT_TRUE(std::equal(seen.begin(), seen.end(),
                           compiled.keys().begin(), compiled.keys().end()))
        << seed.name;
  }
}

}  // namespace
}  // namespace hops
