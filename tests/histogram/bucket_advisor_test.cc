#include "histogram/bucket_advisor.h"

#include <gtest/gtest.h>

#include "stats/zipf.h"

namespace hops {
namespace {

FrequencySet MustSet(std::vector<Frequency> f) {
  auto r = FrequencySet::Make(std::move(f));
  EXPECT_TRUE(r.ok());
  return *std::move(r);
}

TEST(BucketAdvisorTest, UniformNeedsOneBucket) {
  // "When applied to distributions that are close to uniform, the value
  // returned will be close to zero independent of the number of buckets."
  FrequencySet uniform = MustSet(std::vector<Frequency>(50, 20.0));
  auto advice = AdviseBucketCount(uniform, {});
  ASSERT_TRUE(advice.ok());
  EXPECT_EQ(advice->num_buckets, 1u);
  EXPECT_TRUE(advice->tolerance_met);
  EXPECT_DOUBLE_EQ(advice->relative_error, 0.0);
}

TEST(BucketAdvisorTest, SkewedNeedsMoreBuckets) {
  auto zipf = ZipfFrequencySet({1000.0, 100, 1.5});
  ASSERT_TRUE(zipf.ok());
  AdvisorOptions options;
  options.max_relative_error = 0.01;
  auto advice = AdviseBucketCount(*zipf, options);
  ASSERT_TRUE(advice.ok());
  EXPECT_GT(advice->num_buckets, 1u);
  EXPECT_TRUE(advice->tolerance_met);
  EXPECT_LE(advice->relative_error, 0.01);
}

TEST(BucketAdvisorTest, ErrorCurveIsMonotoneNonIncreasing) {
  auto zipf = ZipfFrequencySet({1000.0, 60, 1.0});
  ASSERT_TRUE(zipf.ok());
  AdvisorOptions options;
  options.max_relative_error = 0.0;  // force the full sweep
  options.max_buckets = 12;
  auto advice = AdviseBucketCount(*zipf, options);
  ASSERT_TRUE(advice.ok());
  ASSERT_GE(advice->error_curve.size(), 2u);
  for (size_t i = 0; i + 1 < advice->error_curve.size(); ++i) {
    EXPECT_LE(advice->error_curve[i + 1], advice->error_curve[i] + 1e-12);
  }
}

TEST(BucketAdvisorTest, MaxBucketsCapsRecommendation) {
  auto zipf = ZipfFrequencySet({10000.0, 200, 2.0});
  ASSERT_TRUE(zipf.ok());
  AdvisorOptions options;
  options.max_relative_error = 1e-12;
  options.max_buckets = 3;
  auto advice = AdviseBucketCount(*zipf, options);
  ASSERT_TRUE(advice.ok());
  EXPECT_EQ(advice->num_buckets, 3u);
  EXPECT_FALSE(advice->tolerance_met);
}

TEST(BucketAdvisorTest, SerialClassNeverWorseThanEndBiased) {
  auto zipf = ZipfFrequencySet({1000.0, 40, 1.0});
  ASSERT_TRUE(zipf.ok());
  AdvisorOptions eb;
  eb.max_relative_error = 0.0;
  eb.max_buckets = 8;
  eb.histogram_class = AdvisorClass::kEndBiased;
  AdvisorOptions serial = eb;
  serial.histogram_class = AdvisorClass::kSerial;
  auto a = AdviseBucketCount(*zipf, eb);
  auto b = AdviseBucketCount(*zipf, serial);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < std::min(a->error_curve.size(),
                                  b->error_curve.size());
       ++i) {
    EXPECT_LE(b->error_curve[i], a->error_curve[i] + 1e-12) << "beta " << i;
  }
}

TEST(BucketAdvisorTest, PerfectHistogramAtDistinctCount) {
  // With beta = number of distinct frequencies, a serial histogram is exact.
  FrequencySet set = MustSet({5, 5, 9, 9, 2});
  AdvisorOptions options;
  options.max_relative_error = 0.0;
  options.histogram_class = AdvisorClass::kSerial;
  auto advice = AdviseBucketCount(set, options);
  ASSERT_TRUE(advice.ok());
  EXPECT_LE(advice->num_buckets, 3u);
  EXPECT_TRUE(advice->tolerance_met);
  EXPECT_DOUBLE_EQ(advice->absolute_error, 0.0);
}

TEST(BucketAdvisorTest, InputValidation) {
  FrequencySet empty = MustSet({});
  EXPECT_FALSE(AdviseBucketCount(empty, {}).ok());
  FrequencySet one = MustSet({1});
  AdvisorOptions options;
  options.max_buckets = 0;
  EXPECT_FALSE(AdviseBucketCount(one, options).ok());
  options.max_buckets = 4;
  options.max_relative_error = -0.5;
  EXPECT_FALSE(AdviseBucketCount(one, options).ok());
}

TEST(BucketAdvisorTest, ZeroSelfJoinSizeIsHandled) {
  FrequencySet zeros = MustSet({0, 0, 0});
  auto advice = AdviseBucketCount(zeros, {});
  ASSERT_TRUE(advice.ok());
  EXPECT_EQ(advice->num_buckets, 1u);
  EXPECT_DOUBLE_EQ(advice->relative_error, 0.0);
}

}  // namespace
}  // namespace hops
