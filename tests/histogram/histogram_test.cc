#include "histogram/histogram.h"

#include <gtest/gtest.h>

namespace hops {
namespace {

FrequencySet MustSet(std::vector<Frequency> f) {
  auto r = FrequencySet::Make(std::move(f));
  EXPECT_TRUE(r.ok());
  return *std::move(r);
}

Histogram MustHist(std::vector<Frequency> f, std::vector<uint32_t> assign,
                   size_t beta) {
  auto b = Bucketization::FromAssignments(std::move(assign), beta);
  EXPECT_TRUE(b.ok()) << b.status();
  auto h = Histogram::Make(MustSet(std::move(f)), *std::move(b), "test");
  EXPECT_TRUE(h.ok()) << h.status();
  return *std::move(h);
}

TEST(HistogramTest, RejectsSizeMismatch) {
  auto b = Bucketization::SingleBucket(3);
  ASSERT_TRUE(b.ok());
  auto h = Histogram::Make(MustSet({1, 2}), *b);
  EXPECT_TRUE(h.status().IsInvalidArgument());
}

TEST(HistogramTest, BucketStatsMatchHandComputation) {
  // Buckets: {10, 20} and {1, 2, 3}.
  Histogram h = MustHist({10, 20, 1, 2, 3}, {0, 0, 1, 1, 1}, 2);
  const auto& stats = h.bucket_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].count, 2u);
  EXPECT_DOUBLE_EQ(stats[0].sum, 30.0);
  EXPECT_DOUBLE_EQ(stats[0].mean, 15.0);
  EXPECT_DOUBLE_EQ(stats[0].variance, 25.0);
  EXPECT_DOUBLE_EQ(stats[0].min, 10.0);
  EXPECT_DOUBLE_EQ(stats[0].max, 20.0);
  EXPECT_EQ(stats[1].count, 3u);
  EXPECT_DOUBLE_EQ(stats[1].sum, 6.0);
  EXPECT_DOUBLE_EQ(stats[1].mean, 2.0);
  EXPECT_NEAR(stats[1].variance, 2.0 / 3.0, 1e-12);
}

TEST(HistogramTest, DerivedBucketQuantities) {
  Histogram h = MustHist({10, 20}, {0, 0}, 1);
  const BucketStats& b = h.bucket_stats()[0];
  EXPECT_DOUBLE_EQ(b.square_over_count(), 450.0);  // 30^2 / 2
  EXPECT_DOUBLE_EQ(b.error_contribution(), 50.0);  // 2 * 25
  EXPECT_FALSE(b.univalued());
}

TEST(HistogramTest, UnivaluedDetection) {
  Histogram h = MustHist({7, 7, 3}, {0, 0, 1}, 2);
  EXPECT_TRUE(h.bucket_stats()[0].univalued());
  EXPECT_TRUE(h.bucket_stats()[1].univalued());  // singleton
}

TEST(HistogramTest, ApproxFrequencyIsBucketAverage) {
  Histogram h = MustHist({10, 20, 1, 2, 3}, {0, 0, 1, 1, 1}, 2);
  EXPECT_DOUBLE_EQ(h.ApproxFrequency(0), 15.0);
  EXPECT_DOUBLE_EQ(h.ApproxFrequency(1), 15.0);
  EXPECT_DOUBLE_EQ(h.ApproxFrequency(2), 2.0);
  std::vector<Frequency> approx = h.ApproximateFrequencies();
  EXPECT_EQ(approx, (std::vector<Frequency>{15, 15, 2, 2, 2}));
}

TEST(HistogramTest, RoundToIntegerMode) {
  // Bucket {1, 2}: mean 1.5 -> rounds to 2 under the paper's convention.
  Histogram h = MustHist({1, 2}, {0, 0}, 1);
  EXPECT_DOUBLE_EQ(h.ApproxFrequency(0, BucketAverageMode::kExact), 1.5);
  EXPECT_DOUBLE_EQ(h.ApproxFrequency(0, BucketAverageMode::kRoundToInteger),
                   2.0);
}

TEST(HistogramTest, TrivialPredicate) {
  EXPECT_TRUE(MustHist({1, 2, 3}, {0, 0, 0}, 1).IsTrivial());
  EXPECT_FALSE(MustHist({1, 2, 3}, {0, 0, 1}, 2).IsTrivial());
}

TEST(HistogramTest, SerialAcceptsContiguousFrequencyGroups) {
  // {1, 2} and {5, 9}: ranges [1,2] and [5,9] do not interleave.
  Histogram h = MustHist({1, 5, 2, 9}, {0, 1, 0, 1}, 2);
  EXPECT_TRUE(h.IsSerial());
  EXPECT_TRUE(h.IsStrictlySerial());
}

TEST(HistogramTest, SerialRejectsInterleavedBuckets) {
  // {1, 5} and {2, 9} interleave.
  Histogram h = MustHist({1, 2, 5, 9}, {0, 1, 0, 1}, 2);
  EXPECT_FALSE(h.IsSerial());
  EXPECT_FALSE(h.IsStrictlySerial());
}

TEST(HistogramTest, WeakSerialAllowsSharedBoundaryFrequency) {
  // {1, 3} and {3, 9}: share the boundary value 3.
  Histogram h = MustHist({1, 3, 3, 9}, {0, 0, 1, 1}, 2);
  EXPECT_TRUE(h.IsSerial());
  EXPECT_FALSE(h.IsStrictlySerial());
}

TEST(HistogramTest, PaperExampleFigure2SerialAndNot) {
  // Figure 2's WorksFor matrix frequencies, flattened:
  // 10 5 4 0 0 / 8 6 0 0 0 / 4 2 2 0 0 / 9 5 3 2 0
  std::vector<Frequency> freqs = {10, 5, 4, 0, 0, 8, 6, 0, 0, 0,
                                  4,  2, 2, 0, 0, 9, 5, 3, 2, 0};
  // Serial histogram (like Figs 2(d)-(e)): high bucket = {10, 8, 9, 6, 5,
  // 5, 4, 4}? The paper groups high frequencies vs low; emulate by
  // thresholding at >= 4.
  std::vector<uint32_t> serial_assign(20), nonserial_assign(20);
  for (size_t i = 0; i < 20; ++i) {
    serial_assign[i] = freqs[i] >= 4 ? 0 : 1;
  }
  // Non-serial (like Figs 2(b)-(c)): split by matrix position irrespective
  // of frequency: first two rows vs rest.
  for (size_t i = 0; i < 20; ++i) nonserial_assign[i] = i < 10 ? 0 : 1;

  auto bs = Bucketization::FromAssignments(serial_assign, 2);
  auto bn = Bucketization::FromAssignments(nonserial_assign, 2);
  ASSERT_TRUE(bs.ok());
  ASSERT_TRUE(bn.ok());
  auto hs = Histogram::Make(MustSet(freqs), *bs);
  auto hn = Histogram::Make(MustSet(freqs), *bn);
  ASSERT_TRUE(hs.ok());
  ASSERT_TRUE(hn.ok());
  EXPECT_TRUE(hs->IsSerial());
  EXPECT_FALSE(hn->IsSerial());
}

TEST(HistogramTest, BiasedPredicate) {
  // One multivalued bucket + singletons: biased.
  EXPECT_TRUE(MustHist({9, 1, 2, 3}, {0, 1, 1, 1}, 2).IsBiased());
  // Two multivalued buckets: not biased.
  EXPECT_FALSE(MustHist({9, 8, 1, 2}, {0, 0, 1, 1}, 2).IsBiased());
  // Trivial: biased (single multivalued bucket).
  EXPECT_TRUE(MustHist({1, 2, 3}, {0, 0, 0}, 1).IsBiased());
}

TEST(HistogramTest, EndBiasedHighs) {
  // Singletons carry the two highest frequencies.
  Histogram h = MustHist({9, 8, 1, 2, 3}, {0, 1, 2, 2, 2}, 3);
  EXPECT_TRUE(h.IsBiased());
  EXPECT_TRUE(h.IsEndBiased());
}

TEST(HistogramTest, EndBiasedMixedEnds) {
  // Singletons: highest (9) and lowest (1).
  Histogram h = MustHist({9, 1, 4, 5, 6}, {0, 1, 2, 2, 2}, 3);
  EXPECT_TRUE(h.IsEndBiased());
}

TEST(HistogramTest, BiasedButNotEndBiased) {
  // Singleton carries a *middle* frequency (5).
  Histogram h = MustHist({9, 5, 1, 2}, {1, 0, 1, 1}, 2);
  EXPECT_TRUE(h.IsBiased());
  EXPECT_FALSE(h.IsEndBiased());
}

TEST(HistogramTest, EndBiasedHistogramsAreSerial) {
  // Paper: "Note that end-biased histograms are serial."
  Histogram h = MustHist({9, 1, 4, 5, 6}, {0, 1, 2, 2, 2}, 3);
  EXPECT_TRUE(h.IsEndBiased());
  EXPECT_TRUE(h.IsSerial());
}

TEST(HistogramTest, ToStringMentionsLabelAndBuckets) {
  Histogram h = MustHist({1, 2}, {0, 1}, 2);
  std::string s = h.ToString();
  EXPECT_NE(s.find("test"), std::string::npos);
  EXPECT_NE(s.find("beta=2"), std::string::npos);
}

}  // namespace
}  // namespace hops
