#include "histogram/matrix_histogram.h"

#include <gtest/gtest.h>

#include "histogram/builders.h"
#include "util/random.h"

namespace hops {
namespace {

FrequencyMatrix MustMatrix(size_t r, size_t c, std::vector<Frequency> d) {
  auto m = FrequencyMatrix::Make(r, c, std::move(d));
  EXPECT_TRUE(m.ok());
  return *std::move(m);
}

TEST(MatrixHistogramTest, MakeRejectsSizeMismatch) {
  FrequencyMatrix m = MustMatrix(2, 2, {1, 2, 3, 4});
  auto bz = Bucketization::SingleBucket(3);
  ASSERT_TRUE(bz.ok());
  EXPECT_FALSE(MatrixHistogram::Make(m, *bz).ok());
}

TEST(MatrixHistogramTest, ApproximateMatrixAveragesBuckets) {
  FrequencyMatrix m = MustMatrix(2, 2, {10, 20, 1, 3});
  // Bucket 0: cells (0,0),(0,1); bucket 1: cells (1,0),(1,1).
  auto bz = Bucketization::FromAssignments({0, 0, 1, 1}, 2);
  ASSERT_TRUE(bz.ok());
  auto mh = MatrixHistogram::Make(m, *bz, "rows");
  ASSERT_TRUE(mh.ok());
  EXPECT_EQ(mh->rows(), 2u);
  EXPECT_EQ(mh->cols(), 2u);
  auto am = mh->ApproximateMatrix();
  ASSERT_TRUE(am.ok());
  EXPECT_DOUBLE_EQ(am->At(0, 0), 15.0);
  EXPECT_DOUBLE_EQ(am->At(0, 1), 15.0);
  EXPECT_DOUBLE_EQ(am->At(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(am->At(1, 1), 2.0);
  EXPECT_EQ(mh->cell_histogram().label(), "rows");
}

TEST(MatrixHistogramTest, RoundedModeRoundsCellAverages) {
  FrequencyMatrix m = MustMatrix(1, 2, {1, 2});
  auto bz = Bucketization::SingleBucket(2);
  ASSERT_TRUE(bz.ok());
  auto mh = MatrixHistogram::Make(m, *bz);
  ASSERT_TRUE(mh.ok());
  auto rounded = mh->ApproximateMatrix(BucketAverageMode::kRoundToInteger);
  ASSERT_TRUE(rounded.ok());
  EXPECT_DOUBLE_EQ(rounded->At(0, 0), 2.0);  // 1.5 -> 2
}

TEST(MatrixHistogramTest, ApproximationPreservesTotal) {
  Rng rng(9);
  std::vector<Frequency> cells(24);
  for (auto& c : cells) c = static_cast<double>(rng.NextBounded(50));
  FrequencyMatrix m = MustMatrix(4, 6, cells);
  auto hist = BuildVOptEndBiased(m.ToFrequencySet(), 5);
  ASSERT_TRUE(hist.ok());
  auto mh = MatrixHistogram::Make(m, hist->bucketization());
  ASSERT_TRUE(mh.ok());
  auto am = mh->ApproximateMatrix();
  ASSERT_TRUE(am.ok());
  EXPECT_NEAR(am->Total(), m.Total(), 1e-9 * (1 + m.Total()));
}

TEST(ApproximateArrangedMatrixTest, ValidatesInputs) {
  auto set = FrequencySet::Make({1, 2, 3, 4});
  ASSERT_TRUE(set.ok());
  auto hist = BuildTrivialHistogram(*set);
  ASSERT_TRUE(hist.ok());
  std::vector<size_t> perm = {0, 1, 2, 3};
  // Shape mismatch.
  EXPECT_FALSE(ApproximateArrangedMatrix(*hist, 3, 2, perm).ok());
  // Bad permutation.
  std::vector<size_t> dup = {0, 0, 1, 2};
  EXPECT_FALSE(ApproximateArrangedMatrix(*hist, 2, 2, dup).ok());
}

TEST(ApproximateArrangedMatrixTest, InverseArrangementRoundTrip) {
  // Arranging the exact set and the approximate set with the same
  // permutation keeps cellwise correspondence.
  auto set = FrequencySet::Make({5, 9, 9, 1, 3, 7});
  ASSERT_TRUE(set.ok());
  auto hist = BuildVOptSerialDP(*set, 3);
  ASSERT_TRUE(hist.ok());
  Rng rng(77);
  std::vector<size_t> perm = rng.Permutation(6);
  auto am = ApproximateArrangedMatrix(*hist, 2, 3, perm);
  ASSERT_TRUE(am.ok());
  for (size_t i = 0; i < 6; ++i) {
    size_t flat = perm[i];
    EXPECT_DOUBLE_EQ(am->At(flat / 3, flat % 3), hist->ApproxFrequency(i));
  }
}

}  // namespace
}  // namespace hops
