// Codec tests for the §12 binary batch framing: encode→decode must be a
// lossless round trip for every spec shape the frame supports, raw double
// bits must survive the response path untouched, and every structural
// violation the format doc enumerates (bad magic, wrong version, truncated
// prelude, hostile counts, undeclared trailing bytes, illegal field
// combinations) must reject the whole frame with InvalidArgument.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "net/wire_format.h"

namespace hops::net {
namespace {

std::vector<WireSpec> AllShapes() {
  std::vector<WireSpec> specs;
  {
    WireSpec s;
    s.kind = WireSpec::Kind::kEquality;
    s.table = "orders";
    s.column = "customer_id";
    s.a = -42;
    specs.push_back(s);
  }
  {
    WireSpec s;
    s.kind = WireSpec::Kind::kEquality;
    s.table = "orders";
    s.column = "region";
    s.value_is_string = true;
    s.value_string = "EMEA \xc3\xa9";  // arbitrary bytes survive
    specs.push_back(s);
  }
  {
    WireSpec s;
    s.kind = WireSpec::Kind::kNotEquals;
    s.table = "t";
    s.column = "c";
    s.a = std::numeric_limits<int64_t>::min();
    specs.push_back(s);
  }
  {
    WireSpec s;
    s.kind = WireSpec::Kind::kRange;
    s.table = "orders";
    s.column = "item_id";
    s.a = -7;
    s.b = std::numeric_limits<int64_t>::max();
    s.include_low = false;
    s.include_high = true;
    specs.push_back(s);
  }
  {
    WireSpec s;
    s.kind = WireSpec::Kind::kJoin;
    s.table = "orders";
    s.column = "customer_id";
    s.right_table = "customers";
    s.right_column = "id";
    specs.push_back(s);
  }
  return specs;
}

TEST(WireFormatTest, RequestRoundTripsEverySpecShape) {
  const std::vector<WireSpec> specs = AllShapes();
  const std::string frame = EncodeBatchRequest(specs);
  const Result<std::vector<WireSpec>> decoded = DecodeBatchRequest(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  ASSERT_EQ(decoded->size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    const WireSpec& want = specs[i];
    const WireSpec& got = (*decoded)[i];
    EXPECT_EQ(got.kind, want.kind) << i;
    EXPECT_EQ(got.table, want.table) << i;
    EXPECT_EQ(got.column, want.column) << i;
    EXPECT_EQ(got.right_table, want.right_table) << i;
    EXPECT_EQ(got.right_column, want.right_column) << i;
    EXPECT_EQ(got.value_is_string, want.value_is_string) << i;
    EXPECT_EQ(got.value_string, want.value_string) << i;
    EXPECT_EQ(got.a, want.a) << i;
    EXPECT_EQ(got.b, want.b) << i;
    EXPECT_EQ(got.include_low, want.include_low) << i;
    EXPECT_EQ(got.include_high, want.include_high) << i;
  }
}

TEST(WireFormatTest, EmptyBatchRoundTrips) {
  const std::string frame = EncodeBatchRequest({});
  const Result<std::vector<WireSpec>> decoded = DecodeBatchRequest(frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(WireFormatTest, ResponsePreservesRawDoubleBits) {
  std::vector<WireResult> results;
  results.push_back({WireStatus::kOk, 0.1 + 0.2});  // != 0.3 in doubles
  results.push_back({WireStatus::kOk, -0.0});
  results.push_back({WireStatus::kOk, std::nextafter(1.0, 2.0)});
  results.push_back({WireStatus::kUnknownColumn, 0.0});
  results.push_back({WireStatus::kEstimateFailed, 0.0});
  const std::string frame = EncodeBatchResponse(77, results);
  const Result<WireResponse> decoded = DecodeBatchResponse(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded->snapshot_version, 77u);
  ASSERT_EQ(decoded->results.size(), results.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(decoded->results[i].status, results[i].status) << i;
    const double a = decoded->results[i].estimate;
    const double b = results[i].estimate;
    EXPECT_EQ(std::memcmp(&a, &b, sizeof(a)), 0) << i;
  }
  EXPECT_TRUE(std::signbit(decoded->results[1].estimate));
}

TEST(WireFormatTest, EncodingIsFixedLittleEndian) {
  // The frame layout is part of the public contract — pin the header bytes
  // so an accidental host-endian encode cannot slip through on any machine.
  WireSpec spec;
  spec.kind = WireSpec::Kind::kEquality;
  spec.table = "t";
  spec.column = "c";
  spec.a = 0x0102030405060708;
  const std::string frame = EncodeBatchRequest({&spec, 1});
  ASSERT_GE(frame.size(), size_t{12} + 32 + 2);
  EXPECT_EQ(frame.substr(0, 4), "HOPB");
  EXPECT_EQ(static_cast<uint8_t>(frame[4]), 1);  // version lo
  EXPECT_EQ(static_cast<uint8_t>(frame[5]), 0);  // version hi
  EXPECT_EQ(static_cast<uint8_t>(frame[8]), 1);  // spec_count lo
  // a at prelude offset 16, little-endian.
  EXPECT_EQ(static_cast<uint8_t>(frame[12 + 16]), 0x08);
  EXPECT_EQ(static_cast<uint8_t>(frame[12 + 23]), 0x01);
  EXPECT_EQ(frame.substr(frame.size() - 2), "tc");
}

// ------------------------------------------------------- structural errors

std::string ValidFrame() { return EncodeBatchRequest(AllShapes()); }

void ExpectRejected(std::string frame, const char* why) {
  const Result<std::vector<WireSpec>> decoded = DecodeBatchRequest(frame);
  EXPECT_FALSE(decoded.ok()) << why;
  if (!decoded.ok()) {
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument) << why;
  }
}

TEST(WireFormatTest, RejectsMalformedFrames) {
  ExpectRejected("", "empty body");
  ExpectRejected("HOPB", "truncated header");
  {
    std::string f = ValidFrame();
    f[0] = 'X';
    ExpectRejected(f, "bad magic");
  }
  {
    std::string f = ValidFrame();
    f[4] = 2;
    ExpectRejected(f, "unknown version");
  }
  {
    std::string f = ValidFrame();
    f.pop_back();
    ExpectRejected(f, "truncated name bytes");
  }
  {
    std::string f = ValidFrame();
    f.push_back('\0');
    ExpectRejected(f, "undeclared trailing byte");
  }
  {
    std::string f = ValidFrame();
    f.resize(12 + 16);
    ExpectRejected(f, "truncated prelude");
  }
  {
    // Hostile count: claims 2^32-1 specs with an empty payload. Must fail
    // fast without attempting a 4-billion-element reserve.
    std::string f = ValidFrame().substr(0, 12);
    f[8] = f[9] = f[10] = f[11] = '\xff';
    ExpectRejected(f, "hostile spec count");
  }
}

TEST(WireFormatTest, RejectsIllegalFieldCombinations) {
  {
    // Kind byte 4 (would be an IN-list or chain) is JSON-only.
    std::string f = ValidFrame();
    f[12] = 4;
    ExpectRejected(f, "unsupported kind");
  }
  {
    // A range spec declaring string-literal bytes.
    WireSpec s;
    s.kind = WireSpec::Kind::kRange;
    s.table = "t";
    s.column = "c";
    std::string f = EncodeBatchRequest({&s, 1});
    f[12 + 1] = static_cast<char>(f[12 + 1] | 4);  // value_is_string flag
    f[12 + 10] = 1;                                // value_len = 1
    f.push_back('x');
    ExpectRejected(f, "string literal on a range spec");
  }
  {
    // A non-join spec declaring right-side names.
    WireSpec s;
    s.kind = WireSpec::Kind::kEquality;
    s.table = "t";
    s.column = "c";
    std::string f = EncodeBatchRequest({&s, 1});
    f[12 + 6] = 1;  // right_table_len = 1
    f.push_back('r');
    ExpectRejected(f, "right-side name on a point spec");
  }
}

TEST(WireFormatTest, RejectsMalformedResponses) {
  const std::string ok = EncodeBatchResponse(1, {});
  EXPECT_TRUE(DecodeBatchResponse(ok).ok());
  {
    std::string f = EncodeBatchResponse(1, {});
    f[0] = 'X';
    EXPECT_FALSE(DecodeBatchResponse(f).ok());
  }
  {
    // Count that disagrees with the actual record bytes.
    std::vector<WireResult> one = {{WireStatus::kOk, 1.0}};
    std::string f = EncodeBatchResponse(1, one);
    f[8] = 2;
    EXPECT_FALSE(DecodeBatchResponse(f).ok());
  }
  {
    // Status outside the enum.
    std::vector<WireResult> one = {{WireStatus::kOk, 1.0}};
    std::string f = EncodeBatchResponse(1, one);
    f[20] = 9;
    EXPECT_FALSE(DecodeBatchResponse(f).ok());
  }
}

}  // namespace
}  // namespace hops::net
