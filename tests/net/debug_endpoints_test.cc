// Golden tests for the observability surface (DESIGN.md §14): trace
// ingress/echo over real sockets with the span tree asserted from
// GET /debug/tracez, plus /debug/logz, /debug/columns, /debug/snapshots,
// /debug/wal, tail-keep, and the /healthz readiness gate.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/statistics.h"
#include "net/estimate_service.h"
#include "net/server.h"
#include "refresh/refresh_manager.h"
#include "telemetry/log.h"
#include "telemetry/trace_recorder.h"
#include "util/json.h"

namespace hops::net {
namespace {

// Blocking client that keeps the response headers (the trace-id echo is a
// header; net_server_test's client discards them).
class HeaderClient {
 public:
  explicit HeaderClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }

  ~HeaderClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  /// Writes \p wire, reads one response. \p headers receives everything
  /// between the status line and the blank line.
  bool Request(const std::string& wire, std::string* status_line,
               std::string* headers, std::string* body) {
    size_t sent = 0;
    while (sent < wire.size()) {
      const ssize_t n = ::send(fd_, wire.data() + sent, wire.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    std::string buffer;
    size_t header_end = std::string::npos;
    while ((header_end = buffer.find("\r\n\r\n")) == std::string::npos) {
      if (!Fill(&buffer)) return false;
    }
    const std::string head = buffer.substr(0, header_end + 4);
    const size_t line_end = head.find("\r\n");
    *status_line = head.substr(0, line_end);
    *headers = head.substr(line_end + 2, header_end + 2 - (line_end + 2));
    const char* key = "Content-Length: ";
    const size_t pos = head.find(key);
    if (pos == std::string::npos) return false;
    const size_t content_length = static_cast<size_t>(
        std::strtoull(head.c_str() + pos + std::strlen(key), nullptr, 10));
    std::string rest = buffer.substr(header_end + 4);
    while (rest.size() < content_length) {
      if (!Fill(&rest)) return false;
    }
    *body = rest.substr(0, content_length);
    return true;
  }

 private:
  bool Fill(std::string* buffer) {
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer->append(chunk, static_cast<size_t>(n));
    return true;
  }

  int fd_ = -1;
  bool connected_ = false;
};

std::string Post(const std::string& target, const std::string& body,
                 const std::string& extra_headers = {}) {
  return "POST " + target + " HTTP/1.1\r\nHost: t\r\n" + extra_headers +
         "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n" + body;
}

std::string Get(const std::string& target) {
  return "GET " + target + " HTTP/1.1\r\nHost: t\r\n\r\n";
}

// Serving fixture with tracing wired the way serve_estimates wires it: a
// process-wide recorder (spans capture TraceRecorder::Current()) that
// never head-samples, so ONLY requests carrying an explicit sampled
// traceparent record — each test starts from an empty, deterministic ring.
class DebugEndpointsTest : public ::testing::Test {
 protected:
  DebugEndpointsTest()
      : recorder_(telemetry::TraceRecorder::Options{.ring_capacity = 256,
                                                    .sample_one_in = 0}) {}

  void SetUp() override {
    telemetry::TraceRecorder::Install(&recorder_);
    RefreshOptions options;
    options.statistics.num_buckets = 8;
    manager_ = std::make_unique<RefreshManager>(&catalog_, &store_, options);
    std::vector<int64_t> values;
    std::vector<double> uniform, skewed;
    for (int64_t v = 0; v < 40; ++v) {
      values.push_back(v);
      uniform.push_back(25.0);
      skewed.push_back(static_cast<double>(v + 1));
    }
    manager_->RegisterColumn("orders", "customer_id", values, uniform)
        .status()
        .Check();
    manager_->RegisterColumn("orders", "item_id", values, skewed)
        .status()
        .Check();

    EstimateServiceOptions service_options;
    service_options.store = &store_;
    service_options.updates = manager_.get();
    service_options.registry = &registry_;
    service_options.recorder = &recorder_;
    service_ = std::make_unique<EstimateService>(service_options);

    HttpServerOptions server_options;
    server_options.num_workers = 2;
    server_options.registry = &registry_;
    server_ = std::make_unique<HttpServer>(service_->AsHandler(),
                                           server_options);
    server_->Start().Check();
  }

  void TearDown() override { server_->Shutdown().Check(); }

  uint16_t port() const { return server_->port(); }

  telemetry::TraceRecorder recorder_;  // dtor CAS-uninstalls itself
  Catalog catalog_;
  SnapshotStore store_;
  std::unique_ptr<RefreshManager> manager_;
  telemetry::MetricRegistry registry_;
  std::unique_ptr<EstimateService> service_;
  std::unique_ptr<HttpServer> server_;
};

// --------------------------------------------------- trace ingress + tracez

// The acceptance-criteria proof: a request carrying a W3C traceparent gets
// that trace id echoed in x-hops-trace-id, and /debug/tracez afterwards
// shows the complete span tree — Net.Request parented under the client's
// span, the estimator batch under the request, the probe kernels (with
// their cache detail) under the batch.
TEST_F(DebugEndpointsTest, TraceparentYieldsEchoAndACompleteSpanTree) {
  constexpr char kTraceId[] = "0123456789abcdef0123456789abcdef";
  constexpr char kClientSpan[] = "00f067aa0ba902b7";
  const std::string traceparent = std::string("traceparent: 00-") + kTraceId +
                                  "-" + kClientSpan + "-01\r\n";
  const std::string body = R"({"specs": [
    {"kind":"equality","table":"orders","column":"customer_id","value":5},
    {"kind":"range","table":"orders","column":"item_id",
     "low":3,"high":17,"include_high":false}
  ]})";

  HeaderClient client(port());
  ASSERT_TRUE(client.connected());
  std::string status_line, headers, response_body;
  ASSERT_TRUE(client.Request(Post("/estimate", body, traceparent),
                             &status_line, &headers, &response_body));
  EXPECT_NE(status_line.find("200"), std::string::npos);
  EXPECT_NE(headers.find(std::string("x-hops-trace-id: ") + kTraceId),
            std::string::npos)
      << headers;

  // The whole tree must already be in the ring: spans close before the
  // response is written, and the recorder is this fixture's own.
  ASSERT_TRUE(client.Request(Get("/debug/tracez"), &status_line, &headers,
                             &response_body));
  EXPECT_NE(status_line.find("200"), std::string::npos);
  Result<JsonValue> document = ParseJson(response_body);
  ASSERT_TRUE(document.ok()) << document.status().message();
  const JsonValue* events = document->Find("traceEvents");
  ASSERT_NE(events, nullptr);

  struct Span {
    std::string span_id, parent, detail;
  };
  std::map<std::string, Span> by_name;
  for (const JsonValue& event : events->AsArray()) {
    const JsonValue* args = event.Find("args");
    ASSERT_NE(args, nullptr);
    if (args->GetString("trace_id").ValueOrDie() != kTraceId) continue;
    EXPECT_EQ(event.GetString("ph").ValueOrDie(), "X");
    Span span;
    span.span_id = args->GetString("span_id").ValueOrDie();
    if (const JsonValue* parent = args->Find("parent_span_id")) {
      span.parent = parent->AsString();
    }
    if (const JsonValue* detail = args->Find("detail")) {
      span.detail = detail->AsString();
    }
    by_name.emplace(event.GetString("name").ValueOrDie(), span);
  }

  ASSERT_TRUE(by_name.count("Net.Request")) << response_body;
  ASSERT_TRUE(by_name.count("Serving.EstimateBatch")) << response_body;
  ASSERT_TRUE(by_name.count("Serving.PointKernel")) << response_body;
  ASSERT_TRUE(by_name.count("Serving.RangeKernel")) << response_body;

  // Parentage: client span → Net.Request → EstimateBatch → kernels.
  const Span& request = by_name["Net.Request"];
  const Span& batch = by_name["Serving.EstimateBatch"];
  EXPECT_EQ(request.parent, kClientSpan);
  EXPECT_EQ(batch.parent, request.span_id);
  EXPECT_EQ(by_name["Serving.PointKernel"].parent, batch.span_id);
  EXPECT_EQ(by_name["Serving.RangeKernel"].parent, batch.span_id);

  // The batch span carries the estimate-cache outcome for this request.
  EXPECT_NE(batch.detail.find("specs=2"), std::string::npos) << batch.detail;
  EXPECT_NE(batch.detail.find("cache_hits="), std::string::npos);
  EXPECT_NE(batch.detail.find("cache_misses="), std::string::npos);
  EXPECT_NE(by_name["Net.Request"].detail.find("bytes="), std::string::npos);
  EXPECT_NE(by_name["Serving.PointKernel"].detail.find("probes="),
            std::string::npos);
}

TEST_F(DebugEndpointsTest, UnsampledRequestsLeaveTheRingEmpty) {
  HeaderClient client(port());
  std::string status_line, headers, body;
  // No traceparent, head-sampling disabled: a trace id is still minted and
  // echoed, but nothing records.
  ASSERT_TRUE(client.Request(Get("/healthz"), &status_line, &headers, &body));
  EXPECT_NE(headers.find("x-hops-trace-id: "), std::string::npos);
  EXPECT_EQ(recorder_.Collect().size(), 0u);
}

TEST_F(DebugEndpointsTest, DebugEndpointsAreGetOnly) {
  for (const char* target :
       {"/debug/tracez", "/debug/logz", "/debug/columns", "/debug/snapshots",
        "/debug/wal"}) {
    HeaderClient client(port());
    std::string status_line, headers, body;
    ASSERT_TRUE(client.Request(Post(target, "{}"), &status_line, &headers,
                               &body));
    EXPECT_NE(status_line.find("405"), std::string::npos) << target;
  }
}

TEST(TracezStandaloneTest, Answers503WithoutARecorder) {
  // No recorder installed anywhere: the endpoint says so instead of
  // pretending an empty trace is the truth.
  ASSERT_EQ(telemetry::TraceRecorder::Current(), nullptr);
  telemetry::MetricRegistry registry;
  SnapshotStore store;
  EstimateServiceOptions options;
  options.store = &store;
  options.registry = &registry;
  EstimateService service(options);
  HttpRequest request;
  request.method = "GET";
  request.target = "/debug/tracez";
  const HttpResponse response = service.Handle(request);
  EXPECT_EQ(response.status, 503);
  EXPECT_NE(response.body.find("no trace recorder"), std::string::npos);
}

// ------------------------------------------------------------- tail-keep

// A slow request that head-sampling skipped still leaves one root event
// (trace id + endpoint + wall interval) and a rate-limited warn line.
TEST(TailKeepTest, SlowUnsampledRequestLeavesARootEventAndAWarnLine) {
  telemetry::TraceRecorder recorder(
      telemetry::TraceRecorder::Options{.ring_capacity = 64,
                                        .sample_one_in = 0});
  telemetry::MetricRegistry registry;
  SnapshotStore store;
  EstimateServiceOptions options;
  options.store = &store;
  options.registry = &registry;
  options.recorder = &recorder;
  options.slow_request_seconds = 0.0;  // every request counts as slow
  EstimateService service(options);

  HttpRequest request;
  request.method = "GET";
  request.target = "/healthz";
  const HttpResponse response = service.Handle(request);
  EXPECT_EQ(response.status, 503);  // nothing published yet — also "slow"

  const std::vector<telemetry::TraceEvent> events = recorder.Collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "Net.TailKeep");
  EXPECT_NE(std::string(events[0].detail).find("GET /healthz"),
            std::string::npos);
  EXPECT_NE(events[0].trace_lo, 0u);
  EXPECT_GE(events[0].end_nanos, events[0].start_nanos);

  // The warn line is trace-correlated with the event's trace id.
  const std::vector<std::string> lines =
      telemetry::LogBuffer::Global().Snapshot(4);
  bool found = false;
  for (const std::string& line : lines) {
    found = found || line.find("slow request") != std::string::npos;
  }
  EXPECT_TRUE(found) << "no slow-request log line";
}

// ---------------------------------------------------------------- healthz

TEST(HealthzReadinessTest, Is503BeforeTheFirstPublishAnd200After) {
  telemetry::MetricRegistry registry;
  Catalog catalog;
  SnapshotStore store;
  EstimateServiceOptions options;
  options.store = &store;
  options.registry = &registry;
  EstimateService service(options);

  HttpRequest request;
  request.method = "GET";
  request.target = "/healthz";
  {
    const HttpResponse response = service.Handle(request);
    EXPECT_EQ(response.status, 503);
    Result<JsonValue> document = ParseJson(response.body);
    ASSERT_TRUE(document.ok());
    EXPECT_EQ(document->GetString("status").ValueOrDie(), "starting");
    EXPECT_EQ(document->GetInt("publish_count").ValueOrDie(), 0);
    const JsonValue* age = document->Find("snapshot_age_seconds");
    ASSERT_NE(age, nullptr);
    EXPECT_TRUE(age->is_null()) << "no publish yet, so no age";
  }

  // First real publication flips readiness.
  RefreshOptions refresh_options;
  refresh_options.statistics.num_buckets = 4;
  RefreshManager manager(&catalog, &store, refresh_options);
  const std::vector<int64_t> values{1, 2, 3};
  const std::vector<double> frequencies{5.0, 5.0, 5.0};
  manager.RegisterColumn("t", "c", values, frequencies).status().Check();
  {
    const HttpResponse response = service.Handle(request);
    EXPECT_EQ(response.status, 200);
    Result<JsonValue> document = ParseJson(response.body);
    ASSERT_TRUE(document.ok());
    EXPECT_EQ(document->GetString("status").ValueOrDie(), "ok");
    EXPECT_EQ(document->GetInt("columns").ValueOrDie(), 1);
    EXPECT_GE(document->GetInt("publish_count").ValueOrDie(), 1);
    EXPECT_GE(document->GetNumber("snapshot_age_seconds").ValueOrDie(), 0.0);
  }
}

// ------------------------------------------------------------------- logz

TEST_F(DebugEndpointsTest, LogzServesRecentStructuredLines) {
  HOPS_LOG(telemetry::LogLevel::kInfo, "test", "logz golden marker",
           {"k", telemetry::LogValue(int64_t{7})});
  HeaderClient client(port());
  std::string status_line, headers, body;
  ASSERT_TRUE(client.Request(Get("/debug/logz"), &status_line, &headers,
                             &body));
  EXPECT_NE(status_line.find("200"), std::string::npos);
  Result<JsonValue> document = ParseJson(body);
  ASSERT_TRUE(document.ok()) << document.status().message();
  EXPECT_GE(document->GetInt("total").ValueOrDie(), 1);
  const JsonValue* lines = document->Find("lines");
  ASSERT_NE(lines, nullptr);
  ASSERT_TRUE(lines->is_array());
  bool found = false;
  for (const JsonValue& line : lines->AsArray()) {
    ASSERT_TRUE(line.is_object()) << "lines embed as JSON objects, not text";
    if (line.Find("message") != nullptr &&
        line.GetString("message").ValueOrDie() == "logz golden marker") {
      found = true;
      EXPECT_EQ(line.GetString("component").ValueOrDie(), "test");
      EXPECT_EQ(line.GetInt("k").ValueOrDie(), 7);
    }
  }
  EXPECT_TRUE(found) << body;
}

// ---------------------------------------------------------------- columns

TEST_F(DebugEndpointsTest, ColumnsReportsStatisticsAndStalenessVerdicts) {
  HeaderClient client(port());
  std::string status_line, headers, body;
  ASSERT_TRUE(client.Request(Get("/debug/columns"), &status_line, &headers,
                             &body));
  EXPECT_NE(status_line.find("200"), std::string::npos);
  Result<JsonValue> document = ParseJson(body);
  ASSERT_TRUE(document.ok()) << document.status().message();

  EXPECT_EQ(document->GetInt("snapshot_version").ValueOrDie(),
            static_cast<int64_t>(store_.Current()->source_version()));
  EXPECT_EQ(document->GetString("histogram_class").ValueOrDie(),
            StatisticsHistogramClassToString(
                manager_->options().statistics.histogram_class));

  const JsonValue* columns = document->Find("columns");
  ASSERT_NE(columns, nullptr);
  ASSERT_EQ(columns->AsArray().size(), 2u);
  for (const JsonValue& column : columns->AsArray()) {
    EXPECT_EQ(column.GetString("table").ValueOrDie(), "orders");
    EXPECT_EQ(column.GetInt("num_distinct").ValueOrDie(), 40);
    EXPECT_EQ(column.GetNumber("num_tuples").ValueOrDie(),
              column.GetString("column").ValueOrDie() == "customer_id"
                  ? 40 * 25.0
                  : (40.0 * 41.0) / 2.0);
    EXPECT_GE(column.GetInt("explicit_entries").ValueOrDie(), 1);
    EXPECT_GE(column.GetInt("histogram_values").ValueOrDie(), 1);
    const JsonValue* staleness = column.Find("staleness");
    ASSERT_NE(staleness, nullptr) << "refresh manager attached: join holds";
    EXPECT_GE(staleness->GetNumber("score").ValueOrDie(), 0.0);
    EXPECT_NE(staleness->Find("drift_fraction"), nullptr);
    EXPECT_NE(staleness->Find("rebuild_recommended"), nullptr);
    EXPECT_FALSE(staleness->GetString("reason").ValueOrDie().empty());
    EXPECT_EQ(staleness->GetInt("deltas_applied").ValueOrDie(), 0);
  }
}

// -------------------------------------------------------------- snapshots

TEST_F(DebugEndpointsTest, SnapshotsReportsPublishAndCacheState) {
  HeaderClient client(port());
  std::string status_line, headers, body;
  ASSERT_TRUE(client.Request(Get("/debug/snapshots"), &status_line, &headers,
                             &body));
  EXPECT_NE(status_line.find("200"), std::string::npos);
  Result<JsonValue> document = ParseJson(body);
  ASSERT_TRUE(document.ok()) << document.status().message();
  EXPECT_EQ(document->GetInt("columns").ValueOrDie(), 2);
  EXPECT_GE(document->GetInt("publish_count").ValueOrDie(), 2);
  EXPECT_GE(document->GetNumber("seconds_since_publish").ValueOrDie(), 0.0);
  const JsonValue* cache = document->Find("estimate_cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_GT(cache->GetInt("capacity").ValueOrDie(), 0);
  EXPECT_GE(cache->GetInt("hits").ValueOrDie(), 0);
  EXPECT_GE(cache->GetInt("misses").ValueOrDie(), 0);
  const double hit_rate = cache->GetNumber("hit_rate").ValueOrDie();
  EXPECT_GE(hit_rate, 0.0);
  EXPECT_LE(hit_rate, 1.0);
}

// ------------------------------------------------------------------- wal

TEST_F(DebugEndpointsTest, WalReportsDetachedWithoutDurableStorage) {
  HeaderClient client(port());
  std::string status_line, headers, body;
  ASSERT_TRUE(
      client.Request(Get("/debug/wal"), &status_line, &headers, &body));
  EXPECT_NE(status_line.find("200"), std::string::npos);
  Result<JsonValue> document = ParseJson(body);
  ASSERT_TRUE(document.ok());
  EXPECT_EQ(document->GetBool("attached").ValueOrDie(), false);
  EXPECT_EQ(document->Find("next_lsn"), nullptr);
}

TEST(WalDebugTest, EchoesEveryFieldTheProviderFills) {
  telemetry::MetricRegistry registry;
  SnapshotStore store;
  EstimateServiceOptions options;
  options.store = &store;
  options.registry = &registry;
  options.storage_debug = [] {
    WalDebugInfo info;
    info.attached = true;
    info.durability = "batch";
    info.warm_restart = true;
    info.recovered_snapshot_seq = 7;
    info.recovered_high_water = 41;
    info.replayed_deltas = 12;
    info.replayed_registrations = 2;
    info.next_lsn = 43;
    info.records_appended = 14;
    info.bytes_appended = 2048;
    info.fsyncs = 3;
    info.writeback_kicks = 1;
    info.segments_created = 2;
    info.segments_retired = 1;
    return info;
  };
  EstimateService service(options);
  HttpRequest request;
  request.method = "GET";
  request.target = "/debug/wal";
  const HttpResponse response = service.Handle(request);
  EXPECT_EQ(response.status, 200);
  Result<JsonValue> document = ParseJson(response.body);
  ASSERT_TRUE(document.ok());
  EXPECT_EQ(document->GetBool("attached").ValueOrDie(), true);
  EXPECT_EQ(document->GetString("durability").ValueOrDie(), "batch");
  EXPECT_EQ(document->GetBool("warm_restart").ValueOrDie(), true);
  EXPECT_EQ(document->GetInt("recovered_snapshot_seq").ValueOrDie(), 7);
  EXPECT_EQ(document->GetInt("recovered_high_water").ValueOrDie(), 41);
  EXPECT_EQ(document->GetInt("replayed_deltas").ValueOrDie(), 12);
  EXPECT_EQ(document->GetInt("replayed_registrations").ValueOrDie(), 2);
  EXPECT_EQ(document->GetInt("next_lsn").ValueOrDie(), 43);
  EXPECT_EQ(document->GetInt("records_appended").ValueOrDie(), 14);
  EXPECT_EQ(document->GetInt("bytes_appended").ValueOrDie(), 2048);
  EXPECT_EQ(document->GetInt("fsyncs").ValueOrDie(), 3);
  EXPECT_EQ(document->GetInt("writeback_kicks").ValueOrDie(), 1);
  EXPECT_EQ(document->GetInt("segments_created").ValueOrDie(), 2);
  EXPECT_EQ(document->GetInt("segments_retired").ValueOrDie(), 1);
}

}  // namespace
}  // namespace hops::net
