// HTTP/1.1 parser hardening tests (src/net/http.h): split-at-every-byte
// incremental feeds, pipelining, limit enforcement, and malformed input
// degrading to clean 4xx verdicts — never a crash.

#include "net/http.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace hops::net {
namespace {

// Feeds the whole input at once and pulls one request.
HttpParser::Event ParseOne(std::string_view wire, HttpRequest* out,
                           HttpParserLimits limits = {}) {
  HttpParser parser(limits);
  parser.Feed(wire);
  return parser.Next(out);
}

TEST(HttpParserTest, ParsesSimpleGet) {
  HttpRequest request;
  ASSERT_EQ(ParseOne("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n", &request),
            HttpParser::Event::kRequest);
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/metrics");
  EXPECT_EQ(request.version_minor, 1);
  EXPECT_TRUE(request.keep_alive);
  ASSERT_NE(request.FindHeader("host"), nullptr);
  EXPECT_EQ(*request.FindHeader("HOST"), "x");
  EXPECT_TRUE(request.body.empty());
}

TEST(HttpParserTest, ParsesPostWithBody) {
  HttpRequest request;
  ASSERT_EQ(ParseOne("POST /estimate HTTP/1.1\r\nContent-Length: 11\r\n\r\n"
                     "{\"specs\":1}",
                     &request),
            HttpParser::Event::kRequest);
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.body, "{\"specs\":1}");
}

// The core incremental-parsing property: splitting the wire bytes at EVERY
// byte boundary (two feeds) must yield the identical request.
TEST(HttpParserTest, SplitAtEveryByteBoundary) {
  const std::string wire =
      "POST /estimate HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Length: 17\r\n"
      "\r\n"
      "{\"specs\":[1,2,3]}";
  for (size_t split = 0; split <= wire.size(); ++split) {
    HttpParser parser;
    parser.Feed(std::string_view(wire).substr(0, split));
    HttpRequest request;
    const HttpParser::Event first = parser.Next(&request);
    if (first == HttpParser::Event::kRequest) {
      // Only possible when the split point is at the very end.
      EXPECT_EQ(split, wire.size()) << "early completion at split " << split;
    } else {
      ASSERT_EQ(first, HttpParser::Event::kNeedMore) << "split " << split;
      parser.Feed(std::string_view(wire).substr(split));
      ASSERT_EQ(parser.Next(&request), HttpParser::Event::kRequest)
          << "split " << split;
    }
    EXPECT_EQ(request.method, "POST") << "split " << split;
    EXPECT_EQ(request.target, "/estimate") << "split " << split;
    EXPECT_EQ(request.body, "{\"specs\":[1,2,3]}") << "split " << split;
    EXPECT_EQ(parser.buffered_bytes(), 0u) << "split " << split;
  }
}

// One-byte-at-a-time is the adversarial extreme of the same property.
TEST(HttpParserTest, ByteAtATimeFeed) {
  const std::string wire =
      "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
  HttpParser parser;
  HttpRequest request;
  HttpParser::Event event = HttpParser::Event::kNeedMore;
  for (char c : wire) {
    ASSERT_EQ(event, HttpParser::Event::kNeedMore);
    parser.Feed(std::string_view(&c, 1));
    event = parser.Next(&request);
  }
  ASSERT_EQ(event, HttpParser::Event::kRequest);
  EXPECT_EQ(request.target, "/healthz");
  EXPECT_FALSE(request.keep_alive);
}

TEST(HttpParserTest, PipelinedRequestsComeOutInOrder) {
  HttpParser parser;
  parser.Feed(
      "GET /a HTTP/1.1\r\n\r\n"
      "POST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi"
      "GET /c HTTP/1.1\r\n\r\n");
  HttpRequest request;
  ASSERT_EQ(parser.Next(&request), HttpParser::Event::kRequest);
  EXPECT_EQ(request.target, "/a");
  ASSERT_EQ(parser.Next(&request), HttpParser::Event::kRequest);
  EXPECT_EQ(request.target, "/b");
  EXPECT_EQ(request.body, "hi");
  ASSERT_EQ(parser.Next(&request), HttpParser::Event::kRequest);
  EXPECT_EQ(request.target, "/c");
  EXPECT_EQ(parser.Next(&request), HttpParser::Event::kNeedMore);
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(HttpParserTest, ToleratesStrayCrlfBetweenPipelinedRequests) {
  HttpParser parser;
  parser.Feed("GET /a HTTP/1.1\r\n\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
  HttpRequest request;
  ASSERT_EQ(parser.Next(&request), HttpParser::Event::kRequest);
  ASSERT_EQ(parser.Next(&request), HttpParser::Event::kRequest);
  EXPECT_EQ(request.target, "/b");
}

TEST(HttpParserTest, Http10DefaultsToClose) {
  HttpRequest request;
  ASSERT_EQ(ParseOne("GET / HTTP/1.0\r\n\r\n", &request),
            HttpParser::Event::kRequest);
  EXPECT_EQ(request.version_minor, 0);
  EXPECT_FALSE(request.keep_alive);

  ASSERT_EQ(ParseOne("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n",
                     &request),
            HttpParser::Event::kRequest);
  EXPECT_TRUE(request.keep_alive);
}

TEST(HttpParserTest, OversizedHeadersAre431) {
  HttpParserLimits limits;
  limits.max_header_bytes = 128;
  // Terminated but oversized block.
  std::string wire = "GET / HTTP/1.1\r\nX-Pad: ";
  wire.append(200, 'a');
  wire += "\r\n\r\n";
  HttpRequest request;
  ASSERT_EQ(ParseOne(wire, &request, limits), HttpParser::Event::kError);

  // Unterminated flood must also trip the limit (no unbounded buffering).
  HttpParser parser(limits);
  parser.Feed("GET / HTTP/1.1\r\nX-Pad: " + std::string(500, 'b'));
  ASSERT_EQ(parser.Next(&request), HttpParser::Event::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParserTest, OversizedBodyIs413BeforeAnyBodyByteArrives) {
  HttpParserLimits limits;
  limits.max_body_bytes = 16;
  HttpRequest request;
  HttpParser parser(limits);
  parser.Feed("POST / HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n");
  ASSERT_EQ(parser.Next(&request), HttpParser::Event::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpParserTest, ChunkedTransferEncodingIs501) {
  HttpRequest request;
  HttpParser parser;
  parser.Feed("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  ASSERT_EQ(parser.Next(&request), HttpParser::Event::kError);
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(HttpParserTest, UnsupportedVersionIs505) {
  HttpRequest request;
  HttpParser parser;
  parser.Feed("GET / HTTP/2.0\r\n\r\n");
  ASSERT_EQ(parser.Next(&request), HttpParser::Event::kError);
  EXPECT_EQ(parser.error_status(), 505);
}

TEST(HttpParserTest, MalformedInputsAre400) {
  const std::vector<std::string> bad = {
      "GARBAGE\r\n\r\n",                                    // no spaces
      "GET /\r\n\r\n",                                      // no version
      "GET / HTTP/1.1 extra\r\n\r\n",                       // 3rd space
      "G@T / HTTP/1.1\r\n\r\n",                             // method char
      "GET nopath HTTP/1.1\r\n\r\n",                        // bad target
      "GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",              // no colon
      "GET / HTTP/1.1\r\nBad Header : x\r\n\r\n",           // space in name
      "POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n",      // negative
      "POST / HTTP/1.1\r\nContent-Length: 1x\r\n\r\n",      // non-digit
      "POST / HTTP/1.1\r\nContent-Length: 1\r\n"
      "Content-Length: 2\r\n\r\n",                          // duplicate
  };
  for (const std::string& wire : bad) {
    HttpParser parser;
    parser.Feed(wire);
    HttpRequest request;
    ASSERT_EQ(parser.Next(&request), HttpParser::Event::kError) << wire;
    EXPECT_EQ(parser.error_status(), 400) << wire;
    EXPECT_FALSE(parser.error_message().empty()) << wire;
    // The parser stays in the error state — no resynchronization.
    parser.Feed("GET / HTTP/1.1\r\n\r\n");
    EXPECT_EQ(parser.Next(&request), HttpParser::Event::kError) << wire;
  }
}

TEST(HttpParserTest, PartialRequestDetection) {
  HttpParser parser;
  EXPECT_FALSE(parser.has_partial_request());
  parser.Feed("POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nab");
  HttpRequest request;
  EXPECT_EQ(parser.Next(&request), HttpParser::Event::kNeedMore);
  EXPECT_TRUE(parser.has_partial_request());
  parser.Feed("cde");
  ASSERT_EQ(parser.Next(&request), HttpParser::Event::kRequest);
  EXPECT_EQ(request.body, "abcde");
  EXPECT_FALSE(parser.has_partial_request());
}

TEST(HttpRenderTest, RendersStatusLineHeadersAndBody) {
  HttpResponse response;
  response.status = 200;
  response.body = "{\"ok\":true}";
  const std::string wire = RenderHttpResponse(response, /*keep_alive=*/true);
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 11\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\n{\"ok\":true}"), std::string::npos);

  response.close = true;  // response-side close overrides keep-alive
  EXPECT_NE(RenderHttpResponse(response, true).find("Connection: close"),
            std::string::npos);
}

TEST(HttpRenderTest, ErrorResponseEscapesMessage) {
  const HttpResponse response =
      MakeErrorResponse(400, "bad \"quote\" and\ncontrol");
  EXPECT_EQ(response.status, 400);
  EXPECT_NE(response.body.find("\\\"quote\\\""), std::string::npos);
  EXPECT_NE(response.body.find("\\n"), std::string::npos);
}

}  // namespace
}  // namespace hops::net
