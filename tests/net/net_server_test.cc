// End-to-end tests of the epoll serving front-end (src/net/): real sockets
// over loopback, the estimate/feedback/metrics endpoints against a live
// RCU snapshot, bit-identical wire-vs-in-process estimates, and the
// graceful-shutdown contract under SIGTERM with clients in flight.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "estimator/serving.h"
#include "net/estimate_service.h"
#include "net/serving_stack.h"
#include "net/wire_format.h"
#include "refresh/refresh_daemon.h"
#include "refresh/refresh_manager.h"
#include "storage/recovery.h"
#include "storage/snapshot_file.h"
#include "util/json.h"

namespace hops::net {
namespace {

// ------------------------------------------------------- blocking client

// Minimal blocking HTTP client for tests: connect, write raw bytes, read
// one response (headers + Content-Length body).
class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }

  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  bool SendAll(std::string_view bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  // Reads exactly one HTTP response. Returns false on EOF/error before a
  // complete response arrived.
  bool ReadResponse(std::string* status_line, std::string* body) {
    std::string buffer;
    size_t header_end = std::string::npos;
    while (true) {
      header_end = buffer.find("\r\n\r\n");
      if (header_end != std::string::npos) break;
      if (!Fill(&buffer)) return false;
    }
    const std::string headers = buffer.substr(0, header_end + 4);
    *status_line = headers.substr(0, headers.find("\r\n"));
    size_t content_length = 0;
    if (!FindContentLength(headers, &content_length)) return false;
    std::string rest = buffer.substr(header_end + 4);
    while (rest.size() < content_length) {
      if (!Fill(&rest)) return false;
    }
    *body = rest.substr(0, content_length);
    leftover_ = rest.substr(content_length);
    return true;
  }

  std::string Request(const std::string& wire) {
    if (!SendAll(wire)) return "";
    std::string status_line, body;
    if (!ReadResponse(&status_line, &body)) return "";
    return status_line + "\n" + body;
  }

 private:
  bool Fill(std::string* buffer) {
    if (!leftover_.empty()) {
      buffer->append(leftover_);
      leftover_.clear();
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer->append(chunk, static_cast<size_t>(n));
    return true;
  }

  static bool FindContentLength(const std::string& headers, size_t* out) {
    const char* key = "Content-Length: ";
    const size_t pos = headers.find(key);
    if (pos == std::string::npos) return false;
    *out = static_cast<size_t>(
        std::strtoull(headers.c_str() + pos + std::strlen(key), nullptr, 10));
    return true;
  }

  int fd_ = -1;
  bool connected_ = false;
  std::string leftover_;  // pipelined bytes past the current response
};

std::string Post(const std::string& target, const std::string& body) {
  return "POST " + target + " HTTP/1.1\r\nHost: t\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\n\r\n" + body;
}

std::string Get(const std::string& target) {
  return "GET " + target + " HTTP/1.1\r\nHost: t\r\n\r\n";
}

std::string PostBinary(const std::string& target, const std::string& body) {
  return "POST " + target + " HTTP/1.1\r\nHost: t\r\nContent-Type: " +
         std::string(kBatchContentType) +
         "\r\nContent-Length: " + std::to_string(body.size()) + "\r\n\r\n" +
         body;
}

// ------------------------------------------------------------- fixture

class RecordingSink : public EstimationFeedbackSink {
 public:
  void ReportEstimationError(std::string_view table, std::string_view column,
                             double estimated, double actual) override {
    std::lock_guard<std::mutex> lock(mutex_);
    reports_.push_back({std::string(table), std::string(column), estimated,
                        actual});
  }

  struct Report {
    std::string table, column;
    double estimated, actual;
  };

  std::vector<Report> reports() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return reports_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<Report> reports_;
};

// Serving stack over a two-column catalog: customer_id uniform,
// item_id linearly skewed.
class NetServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RefreshOptions options;
    options.statistics.num_buckets = 8;
    manager_ = std::make_unique<RefreshManager>(&catalog_, &store_, options);
    std::vector<int64_t> values;
    std::vector<double> uniform, skewed;
    for (int64_t v = 0; v < 40; ++v) {
      values.push_back(v);
      uniform.push_back(25.0);
      skewed.push_back(static_cast<double>(v + 1));
    }
    manager_->RegisterColumn("orders", "customer_id", values, uniform)
        .status()
        .Check();
    manager_->RegisterColumn("orders", "item_id", values, skewed)
        .status()
        .Check();

    EstimateServiceOptions service_options;
    service_options.store = &store_;
    service_options.feedback = &sink_;
    service_options.registry = &registry_;
    service_ = std::make_unique<EstimateService>(service_options);

    HttpServerOptions server_options;
    server_options.num_workers = 2;
    server_options.registry = &registry_;
    server_ = std::make_unique<HttpServer>(service_->AsHandler(),
                                           server_options);
    server_->Start().Check();
  }

  void TearDown() override { server_->Shutdown().Check(); }

  uint16_t port() const { return server_->port(); }

  Catalog catalog_;
  SnapshotStore store_;
  std::unique_ptr<RefreshManager> manager_;
  RecordingSink sink_;
  telemetry::MetricRegistry registry_;
  std::unique_ptr<EstimateService> service_;
  std::unique_ptr<HttpServer> server_;
};

// --------------------------------------------------------------- endpoints

TEST_F(NetServerTest, HealthzReportsSnapshotVersion) {
  TestClient client(port());
  ASSERT_TRUE(client.connected());
  const std::string response = client.Request(Get("/healthz"));
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(response.find("snapshot_version"), std::string::npos);
}

TEST_F(NetServerTest, MetricsExposesPrometheusFamilies) {
  TestClient client(port());
  // A first request populates the per-endpoint counters...
  ASSERT_FALSE(client.Request(Get("/healthz")).empty());
  // ...which the second request's scrape must include.
  const std::string response = client.Request(Get("/metrics"));
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("# TYPE hops_http_requests_total counter"),
            std::string::npos);
  EXPECT_NE(response.find("endpoint=\"/healthz\""), std::string::npos);
  EXPECT_NE(response.find("hops_http_connections_total"), std::string::npos);
  EXPECT_NE(response.find("hops_http_request_seconds"), std::string::npos);
}

TEST_F(NetServerTest, MetricsJsonCarriesExemplars) {
  TestClient client(port());
  ASSERT_FALSE(client.Request(Get("/healthz")).empty());
  const std::string response = client.Request(Get("/metrics.json"));
  // The /healthz request above was recorded with an exemplar naming its
  // method, target, and status.
  EXPECT_NE(response.find("\"exemplars\":["), std::string::npos);
  EXPECT_NE(response.find("GET /healthz status=200"), std::string::npos);
}

// The acceptance-criteria proof: a /estimate response is bit-identical to
// EstimateBatch run in-process on the same snapshot.
TEST_F(NetServerTest, EstimateMatchesInProcessBitIdentically) {
  const std::string body = R"({"specs": [
    {"kind":"equality","table":"orders","column":"customer_id","value":5},
    {"kind":"not_equals","table":"orders","column":"item_id","value":39},
    {"kind":"in","table":"orders","column":"customer_id","values":[1,2,3,2]},
    {"kind":"range","table":"orders","column":"item_id",
     "low":3,"high":17,"include_high":false},
    {"kind":"join","left":{"table":"orders","column":"customer_id"},
     "right":{"table":"orders","column":"item_id"}},
    {"kind":"chain","steps":[
      {"left":{"table":"orders","column":"customer_id"},
       "right":{"table":"orders","column":"item_id"}}]}
  ]})";

  TestClient client(port());
  ASSERT_TRUE(client.SendAll(Post("/estimate", body)));
  std::string status_line, response_body;
  ASSERT_TRUE(client.ReadResponse(&status_line, &response_body));
  EXPECT_NE(status_line.find("200"), std::string::npos);

  Result<JsonValue> document = ParseJson(response_body);
  ASSERT_TRUE(document.ok()) << document.status().ToString();
  const JsonValue* results = document->Find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->AsArray().size(), 6u);

  // Re-run the identical batch in-process on the same snapshot.
  const std::shared_ptr<const CatalogSnapshot> snapshot = store_.Current();
  EXPECT_EQ(document->GetInt("snapshot_version").ValueOrDie(),
            static_cast<int64_t>(snapshot->source_version()));
  const ColumnId customer =
      snapshot->Resolve("orders", "customer_id").ValueOrDie();
  const ColumnId item = snapshot->Resolve("orders", "item_id").ValueOrDie();
  std::vector<EstimateSpec> specs;
  specs.push_back(EstimateSpec::Equality(customer, Value(int64_t{5})));
  specs.push_back(EstimateSpec::NotEquals(item, Value(int64_t{39})));
  specs.push_back(EstimateSpec::In(
      customer, {Value(int64_t{1}), Value(int64_t{2}), Value(int64_t{3}),
                 Value(int64_t{2})}));
  RangeBounds bounds;
  bounds.low = 3;
  bounds.high = 17;
  bounds.include_high = false;
  specs.push_back(EstimateSpec::Range(item, bounds));
  specs.push_back(EstimateSpec::Join(customer, item));
  specs.push_back(EstimateSpec::Chain({SnapshotChainStep{customer, item}}));

  const std::vector<Result<double>> expected =
      EstimateBatch(*snapshot, specs);
  ASSERT_EQ(expected.size(), 6u);
  for (size_t i = 0; i < expected.size(); ++i) {
    const JsonValue& slot = results->AsArray()[i];
    if (expected[i].ok()) {
      const JsonValue* estimate = slot.Find("estimate");
      ASSERT_NE(estimate, nullptr)
          << "slot " << i << " missing estimate: " << response_body;
      // Bit-identical: %.17g rendering followed by strtod is lossless.
      EXPECT_EQ(estimate->AsDouble(), expected[i].ValueOrDie())
          << "slot " << i;
    } else {
      EXPECT_NE(slot.Find("error"), nullptr) << "slot " << i;
    }
  }
}

TEST_F(NetServerTest, EstimateReportsPerSpecErrorsWithoutAbortingBatch) {
  const std::string body = R"({"specs": [
    {"kind":"equality","table":"orders","column":"customer_id","value":5},
    {"kind":"equality","table":"nope","column":"missing","value":1},
    {"kind":"wat"},
    {"kind":"equality","table":"orders","column":"item_id","value":0}
  ]})";
  TestClient client(port());
  ASSERT_TRUE(client.SendAll(Post("/estimate", body)));
  std::string status_line, response_body;
  ASSERT_TRUE(client.ReadResponse(&status_line, &response_body));
  EXPECT_NE(status_line.find("200"), std::string::npos);
  Result<JsonValue> document = ParseJson(response_body);
  ASSERT_TRUE(document.ok());
  const JsonValue::Array& results = document->Find("results")->AsArray();
  ASSERT_EQ(results.size(), 4u);
  EXPECT_NE(results[0].Find("estimate"), nullptr);
  EXPECT_NE(results[1].Find("error"), nullptr);
  EXPECT_NE(results[2].Find("error"), nullptr);
  EXPECT_NE(results[3].Find("estimate"), nullptr);
}

TEST_F(NetServerTest, FeedbackRoutesIntoTheSink) {
  const std::string body = R"({"reports": [
    {"kind":"equality","table":"orders","column":"customer_id","value":5,
     "estimated":25.0,"actual":40.0},
    {"kind":"equality","table":"nope","column":"missing","value":1,
     "estimated":1.0,"actual":2.0}
  ]})";
  TestClient client(port());
  const std::string response = client.Request(Post("/feedback", body));
  EXPECT_NE(response.find("\"accepted\": 1"), std::string::npos) << response;
  EXPECT_NE(response.find("\"rejected\": 1"), std::string::npos) << response;
  const std::vector<RecordingSink::Report> reports = sink_.reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].table, "orders");
  EXPECT_EQ(reports[0].column, "customer_id");
  EXPECT_DOUBLE_EQ(reports[0].estimated, 25.0);
  EXPECT_DOUBLE_EQ(reports[0].actual, 40.0);
}

TEST_F(NetServerTest, FeedbackBatchKeepsPerSlotStatus) {
  // A hostile magnitude (NaN) and an unknown column each reject only their
  // own slot; the valid records around them are still applied, and the
  // response carries a per-slot results array so clients can retry exactly
  // the failed indices.
  const std::string body = R"({"reports": [
    {"kind":"equality","table":"orders","column":"customer_id","value":5,
     "estimated":25.0,"actual":40.0},
    {"kind":"equality","table":"orders","column":"customer_id","value":6,
     "estimated":"nan","actual":40.0},
    {"kind":"equality","table":"nope","column":"missing","value":1,
     "estimated":1.0,"actual":2.0},
    {"kind":"equality","table":"orders","column":"item_id","value":7,
     "estimated":8.0,"actual":-3.0},
    {"kind":"equality","table":"orders","column":"item_id","value":9,
     "estimated":10.0,"actual":12.0}
  ]})";
  TestClient client(port());
  ASSERT_TRUE(client.SendAll(Post("/feedback", body)));
  std::string status_line, response_body;
  ASSERT_TRUE(client.ReadResponse(&status_line, &response_body));
  EXPECT_NE(status_line.find("200"), std::string::npos);

  Result<JsonValue> document = ParseJson(response_body);
  ASSERT_TRUE(document.ok()) << response_body;
  EXPECT_EQ(document->Find("accepted")->AsInt64(), 2);
  EXPECT_EQ(document->Find("rejected")->AsInt64(), 3);
  const JsonValue* results = document->Find("results");
  ASSERT_NE(results, nullptr);
  const JsonValue::Array& slots = results->AsArray();
  ASSERT_EQ(slots.size(), 5u);
  const bool expected_ok[] = {true, false, false, false, true};
  for (size_t i = 0; i < 5; ++i) {
    ASSERT_NE(slots[i].Find("ok"), nullptr) << "slot " << i;
    EXPECT_EQ(slots[i].Find("ok")->AsBool(), expected_ok[i]) << "slot " << i;
    // Failing slots say why; passing slots carry no error message.
    EXPECT_EQ(slots[i].Find("error") != nullptr, !expected_ok[i])
        << "slot " << i;
  }

  // Both valid reports reached the sink, in order.
  const std::vector<RecordingSink::Report> reports = sink_.reports();
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].column, "customer_id");
  EXPECT_DOUBLE_EQ(reports[0].actual, 40.0);
  EXPECT_EQ(reports[1].column, "item_id");
  EXPECT_DOUBLE_EQ(reports[1].actual, 12.0);
}

TEST_F(NetServerTest, ErrorStatusesAreClean4xx) {
  {
    TestClient client(port());
    EXPECT_NE(client.Request(Get("/nope")).find("404"), std::string::npos);
  }
  {
    TestClient client(port());
    EXPECT_NE(client.Request(Get("/estimate")).find("405"),
              std::string::npos);
  }
  {
    TestClient client(port());
    const std::string response =
        client.Request(Post("/estimate", "{not json"));
    EXPECT_NE(response.find("400"), std::string::npos);
    EXPECT_NE(response.find("JSON parse error"), std::string::npos);
  }
  {
    // Malformed HTTP: the connection answers 400 and closes.
    TestClient client(port());
    const std::string response = client.Request("BOGUS\r\n\r\n");
    EXPECT_NE(response.find("400"), std::string::npos);
  }
}

TEST_F(NetServerTest, KeepAliveServesPipelinedRequests) {
  TestClient client(port());
  // Both requests written before any response is read.
  ASSERT_TRUE(client.SendAll(Get("/healthz") + Get("/healthz")));
  std::string status_line, body;
  ASSERT_TRUE(client.ReadResponse(&status_line, &body));
  EXPECT_NE(status_line.find("200"), std::string::npos);
  ASSERT_TRUE(client.ReadResponse(&status_line, &body));
  EXPECT_NE(status_line.find("200"), std::string::npos);
  EXPECT_GE(server_->requests_served(), 2u);
}

// ------------------------------------------------------ graceful shutdown

// SIGTERM under load: every response the server generated reaches a client
// completely — the drain flushes before closing, so "accepted" work is
// never lost. Clients whose requests the server never read just see a
// clean close (those were never accepted). A durable store rides along:
// the post-drain hook must leave a loadable shutdown snapshot behind.
TEST_F(NetServerTest, SigtermUnderLoadLosesNoAcceptedResponses) {
  ASSERT_TRUE(ServingStack::InstallSignalHandlers().ok());
  ServingStack stack(server_.get(), /*daemon=*/nullptr, /*sink=*/nullptr);

  // Mount durable storage over an empty directory: nothing to restore, but
  // the shutdown path below must checkpoint the live catalog into it.
  std::string data_dir = ::testing::TempDir() + "hops_sigterm_XXXXXX";
  ASSERT_NE(::mkdtemp(data_dir.data()), nullptr);
  storage::StorageOptions storage_options;
  storage_options.data_dir = data_dir;
  auto durable = storage::RecoveryManager::Open(storage_options);
  ASSERT_TRUE(durable.ok()) << durable.status().message();
  ASSERT_TRUE((*durable)->RecoverAndAttach(manager_.get()).ok());
  stack.SetPostDrainHook(
      [&durable] { return (*durable)->CloseAndSnapshot(); });

  std::atomic<uint64_t> received{0};
  std::atomic<bool> go{true};
  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([this, &received, &go] {
      while (go.load(std::memory_order_acquire)) {
        TestClient client(port());
        if (!client.connected()) return;  // listeners are gone
        // Several keep-alive requests per connection.
        for (int i = 0; i < 8; ++i) {
          if (!client.SendAll(Get("/healthz"))) return;
          std::string status_line, body;
          if (!client.ReadResponse(&status_line, &body)) return;
          received.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Let real load build up, then deliver SIGTERM mid-flight.
  while (received.load(std::memory_order_relaxed) < 50) {
    std::this_thread::yield();
  }
  ASSERT_EQ(::raise(SIGTERM), 0);
  ASSERT_TRUE(ServingStack::WaitForShutdownSignal(/*timeout_millis=*/5000));
  ASSERT_TRUE(stack.ShutdownOrdered().ok());
  go.store(false, std::memory_order_release);
  for (std::thread& thread : clients) thread.join();

  EXPECT_FALSE(server_->running());
  // The invariant: responses generated == responses fully delivered.
  EXPECT_EQ(server_->requests_served(), received.load());
  EXPECT_GE(received.load(), 50u);

  // The post-drain hook ran: a shutdown snapshot exists and loads with the
  // fixture's two columns, so a warm restart could serve immediately.
  auto snapshots = storage::ListSnapshotFiles(data_dir);
  ASSERT_TRUE(snapshots.ok()) << snapshots.status().message();
  ASSERT_FALSE(snapshots->empty()) << "post-drain hook wrote no snapshot";
  auto loaded = storage::ReadSnapshotFile(snapshots->back().path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded->columns.size(), 2u);
}

// Requests already received by the server when shutdown starts are
// answered before the connection closes.
TEST_F(NetServerTest, ShutdownAnswersFullyReceivedRequests) {
  TestClient client(port());
  ASSERT_TRUE(client.SendAll(Get("/healthz")));
  // Give the worker a beat to accept the connection and buffer the request;
  // whether it answered already or the drain's final read pass does, the
  // response must be delivered before the close.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(server_->Shutdown().ok());
  std::string status_line, body;
  ASSERT_TRUE(client.ReadResponse(&status_line, &body));
  EXPECT_NE(status_line.find("200"), std::string::npos);
}

TEST_F(NetServerTest, ShutdownIsIdempotent) {
  ASSERT_TRUE(server_->Shutdown().ok());
  ASSERT_TRUE(server_->Shutdown().ok());
  EXPECT_FALSE(server_->running());
}

// ------------------------------------------------- binary batch framing

// The §12 binary fast lane: the same batch sent as application/x-hops-batch
// must return raw doubles bit-identical to an in-process EstimateBatch on
// the same snapshot — no 17-digit text round-trip involved.
TEST_F(NetServerTest, EstimateBinaryIsBitIdenticalToInProcess) {
  std::vector<WireSpec> wire_specs;
  {
    WireSpec s;
    s.kind = WireSpec::Kind::kEquality;
    s.table = "orders";
    s.column = "customer_id";
    s.a = 5;
    wire_specs.push_back(s);
  }
  {
    WireSpec s;
    s.kind = WireSpec::Kind::kNotEquals;
    s.table = "orders";
    s.column = "item_id";
    s.a = 39;
    wire_specs.push_back(s);
  }
  {
    WireSpec s;
    s.kind = WireSpec::Kind::kRange;
    s.table = "orders";
    s.column = "item_id";
    s.a = 3;
    s.b = 17;
    s.include_high = false;
    wire_specs.push_back(s);
  }
  {
    WireSpec s;
    s.kind = WireSpec::Kind::kJoin;
    s.table = "orders";
    s.column = "customer_id";
    s.right_table = "orders";
    s.right_column = "item_id";
    wire_specs.push_back(s);
  }
  {
    // Unknown column: fails its slot without aborting the batch.
    WireSpec s;
    s.kind = WireSpec::Kind::kEquality;
    s.table = "nope";
    s.column = "missing";
    s.a = 1;
    wire_specs.push_back(s);
  }

  TestClient client(port());
  ASSERT_TRUE(
      client.SendAll(PostBinary("/estimate", EncodeBatchRequest(wire_specs))));
  std::string status_line, response_body;
  ASSERT_TRUE(client.ReadResponse(&status_line, &response_body));
  EXPECT_NE(status_line.find("200"), std::string::npos);

  const Result<WireResponse> response = DecodeBatchResponse(response_body);
  ASSERT_TRUE(response.ok()) << response.status().message();
  ASSERT_EQ(response->results.size(), wire_specs.size());

  const std::shared_ptr<const CatalogSnapshot> snapshot = store_.Current();
  EXPECT_EQ(response->snapshot_version, snapshot->source_version());
  const ColumnId customer =
      snapshot->Resolve("orders", "customer_id").ValueOrDie();
  const ColumnId item = snapshot->Resolve("orders", "item_id").ValueOrDie();
  std::vector<EstimateSpec> specs;
  specs.push_back(EstimateSpec::Equality(customer, Value(int64_t{5})));
  specs.push_back(EstimateSpec::NotEquals(item, Value(int64_t{39})));
  specs.push_back(
      EstimateSpec::Range(item, RangeBounds{3, 17, true, false}));
  specs.push_back(EstimateSpec::Join(customer, item));
  const std::vector<Result<double>> expected = EstimateBatch(*snapshot, specs);

  for (size_t i = 0; i < specs.size(); ++i) {
    ASSERT_TRUE(expected[i].ok()) << i;
    EXPECT_EQ(response->results[i].status, WireStatus::kOk) << i;
    const double got = response->results[i].estimate;
    const double want = *expected[i];
    EXPECT_EQ(std::memcmp(&got, &want, sizeof(got)), 0) << "slot " << i;
  }
  EXPECT_EQ(response->results[4].status, WireStatus::kUnknownColumn);
  EXPECT_EQ(response->results[4].estimate, 0.0);
}

TEST_F(NetServerTest, MalformedBinaryFrameIsWholeRequest400) {
  TestClient client(port());
  // Not even a magic number: the frame is rejected as a unit with a JSON
  // error body (the one place the binary path answers in JSON).
  const std::string response =
      client.Request(PostBinary("/estimate", "garbage"));
  EXPECT_NE(response.find("400"), std::string::npos);
  EXPECT_NE(response.find("error"), std::string::npos);
  // The connection is still usable afterwards — a 400 is not fatal.
  const std::string ok = client.Request(Get("/healthz"));
  EXPECT_NE(ok.find("200"), std::string::npos);
}

// ------------------------------------------------------ idle-connection reap

HttpResponse TinyOkResponse(const HttpRequest&) {
  HttpResponse response;
  response.body = "{}";
  return response;
}

TEST(IdleReapTest, IdleKeepAliveConnectionIsReaped) {
  telemetry::MetricRegistry registry;
  HttpServerOptions options;
  options.num_workers = 1;
  options.idle_timeout_millis = 50;
  options.registry = &registry;
  HttpServer server(TinyOkResponse, options);
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_FALSE(client.Request(Get("/x")).empty());
  EXPECT_EQ(server.open_connections(), 1u);

  // Go idle past the deadline; the sweep (epoll timeout max(10, 50/4) ms)
  // must close the connection within ~1.25x the deadline — poll with a
  // generous bound for slow CI machines.
  telemetry::Counter* reaped = registry.GetCounter(
      "hops_http_connections_reaped_total",
      "Keep-alive connections closed by the idle-timeout sweep");
  for (int i = 0; i < 300 && reaped->Value() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(reaped->Value(), 1u);
  EXPECT_EQ(server.open_connections(), 0u);
  // The client observes the close: no further response arrives.
  std::string status_line, body;
  EXPECT_FALSE(client.SendAll(Get("/x")) &&
               client.ReadResponse(&status_line, &body));
  ASSERT_TRUE(server.Shutdown().ok());
}

TEST(IdleReapTest, ActiveConnectionSurvivesSweeps) {
  telemetry::MetricRegistry registry;
  HttpServerOptions options;
  options.num_workers = 1;
  options.idle_timeout_millis = 400;
  options.registry = &registry;
  HttpServer server(TinyOkResponse, options);
  ASSERT_TRUE(server.Start().ok());

  // Keep one connection alive well past several deadlines' worth of wall
  // clock, but never idle longer than a fraction of the deadline: every
  // request must succeed on the same connection.
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  for (int i = 0; i < 10; ++i) {
    ASSERT_FALSE(client.Request(Get("/x")).empty()) << "request " << i;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  telemetry::Counter* reaped = registry.GetCounter(
      "hops_http_connections_reaped_total",
      "Keep-alive connections closed by the idle-timeout sweep");
  EXPECT_EQ(reaped->Value(), 0u);
  EXPECT_EQ(server.open_connections(), 1u);
  ASSERT_TRUE(server.Shutdown().ok());
}

TEST(IdleReapTest, ZeroTimeoutDisablesReaping) {
  telemetry::MetricRegistry registry;
  HttpServerOptions options;
  options.num_workers = 1;
  options.idle_timeout_millis = 0;
  options.registry = &registry;
  HttpServer server(TinyOkResponse, options);
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_FALSE(client.Request(Get("/x")).empty());
  // With reaping disabled the event loop blocks indefinitely; the idle
  // connection simply stays.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(server.open_connections(), 1u);
  ASSERT_FALSE(client.Request(Get("/x")).empty());
  ASSERT_TRUE(server.Shutdown().ok());
}

// Full stack ordering: server drains, daemon drains its update log, sink
// writes its final snapshot — in that order, all observable afterwards.
TEST(ServingStackTest, ShutdownOrderedStopsComponentsInOrder) {
  Catalog catalog;
  SnapshotStore store;
  RefreshOptions options;
  options.statistics.num_buckets = 8;
  RefreshManager manager(&catalog, &store, options);
  std::vector<int64_t> values{0, 1, 2, 3};
  std::vector<double> freqs{10.0, 10.0, 10.0, 10.0};
  auto column = manager.RegisterColumn("t", "c", values, freqs);
  column.status().Check();

  telemetry::MetricRegistry registry;
  EstimateServiceOptions service_options;
  service_options.store = &store;
  service_options.registry = &registry;
  EstimateService service(service_options);

  HttpServerOptions server_options;
  server_options.num_workers = 1;
  server_options.registry = &registry;
  HttpServer server(service.AsHandler(), server_options);

  RefreshDaemonOptions daemon_options;
  daemon_options.tick_interval_micros = 2000;
  RefreshDaemon daemon(&manager, daemon_options);

  const std::string sink_path =
      ::testing::TempDir() + "/serving_stack_final.prom";
  telemetry::TelemetrySinkOptions sink_options;
  sink_options.path = sink_path;
  sink_options.registry = &registry;
  telemetry::TelemetrySink sink(sink_options);

  ServingStack stack(&server, &daemon, &sink);
  ASSERT_TRUE(stack.Start().ok());
  ASSERT_TRUE(server.running());
  ASSERT_TRUE(daemon.running());
  ASSERT_TRUE(sink.running());

  // Traffic + pending write-path work the drain must not lose.
  {
    TestClient client(server.port());
    ASSERT_FALSE(client.Request(Get("/healthz")).empty());
  }
  for (int i = 0; i < 100; ++i) {
    manager.RecordInsert(*column, i % 4).Check();
  }

  ASSERT_TRUE(stack.ShutdownOrdered().ok());
  EXPECT_FALSE(server.running());
  EXPECT_FALSE(daemon.running());
  EXPECT_FALSE(sink.running());
  // Idempotent.
  EXPECT_TRUE(stack.ShutdownOrdered().ok());

  // The daemon drained: the deltas were applied, not stranded in the log.
  EXPECT_EQ(manager.stats().log.depth, 0u);

  // The sink's final write captured the request that was served.
  std::ifstream in(sink_path);
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_NE(contents.str().find("hops_http_requests_total"),
            std::string::npos);
}

}  // namespace
}  // namespace hops::net
