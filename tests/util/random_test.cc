#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace hops {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, NextDoubleInHalfOpenUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoubleRangeRespectsBounds) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble(-5.0, 5.0);
    EXPECT_GE(d, -5.0);
    EXPECT_LT(d, 5.0);
  }
}

TEST(RngTest, NextDoubleIsRoughlyUniform) {
  Rng rng(19);
  int below_half = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextDouble() < 0.5) ++below_half;
  }
  // 5-sigma band around n/2.
  EXPECT_NEAR(below_half, n / 2, 5 * std::sqrt(n / 4.0));
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(23);
  for (size_t n : {1u, 2u, 17u, 100u}) {
    std::vector<size_t> perm = rng.Permutation(n);
    ASSERT_EQ(perm.size(), n);
    std::vector<size_t> sorted = perm;
    std::sort(sorted.begin(), sorted.end());
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(sorted[i], i);
  }
}

TEST(RngTest, PermutationOfZeroIsEmpty) {
  Rng rng(29);
  EXPECT_TRUE(rng.Permutation(0).empty());
}

TEST(RngTest, ShuffleKeepsMultiset) {
  Rng rng(31);
  std::vector<int> v = {1, 2, 2, 3, 5, 8, 13};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  std::sort(original.begin(), original.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctSubset) {
  Rng rng(37);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(100, 30);
  ASSERT_EQ(sample.size(), 30u);
  std::set<size_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 30u);
  for (size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleFullPopulationIsPermutation) {
  Rng rng(41);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(43);
  Rng child = parent.Split();
  // Child should not replay the parent's stream.
  Rng parent_copy(43);
  (void)parent_copy.Next();  // advance past the split draw
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.Next() == parent_copy.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(SplitMix64Test, KnownSequenceIsStable) {
  uint64_t state = 0;
  uint64_t first = SplitMix64(&state);
  uint64_t second = SplitMix64(&state);
  EXPECT_NE(first, second);
  // Reference value for seed 0 (widely published SplitMix64 vector).
  uint64_t state2 = 0;
  EXPECT_EQ(SplitMix64(&state2), first);
}

}  // namespace
}  // namespace hops
