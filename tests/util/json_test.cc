// util/json.h tests: hardened string escaping (control bytes, invalid
// UTF-8), writer round-trip precision, and the strict RFC 8259 parser.

#include "util/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>

namespace hops {
namespace {

std::string Escaped(std::string_view raw) {
  std::string out;
  AppendJsonEscaped(&out, raw);
  return out;
}

TEST(JsonEscapeTest, PassesPlainAsciiThrough) {
  EXPECT_EQ(Escaped("orders.customer_id"), "orders.customer_id");
}

TEST(JsonEscapeTest, EscapesMandatoryCharacters) {
  EXPECT_EQ(Escaped("a\"b\\c"), "a\\\"b\\\\c");
}

TEST(JsonEscapeTest, EscapesControlCharacters) {
  EXPECT_EQ(Escaped("\b\f\n\r\t"), "\\b\\f\\n\\r\\t");
  EXPECT_EQ(Escaped(std::string("\x01\x1f", 2)), "\\u0001\\u001f");
  // NUL must not truncate anything.
  EXPECT_EQ(Escaped(std::string("a\0b", 3)), "a\\u0000b");
}

TEST(JsonEscapeTest, ValidUtf8PassesThrough) {
  const std::string utf8 = "caf\xc3\xa9 \xe2\x82\xac \xf0\x9f\x92\xa1";
  EXPECT_EQ(Escaped(utf8), utf8);
}

TEST(JsonEscapeTest, InvalidUtf8BecomesReplacementCharacter) {
  const std::string replacement = "\\ufffd";  // escaped U+FFFD
  // 0x80-0xBF alone are stray continuations; 0xFF is never valid.
  EXPECT_EQ(Escaped("\x80"), replacement);
  EXPECT_EQ(Escaped("\xff"), replacement);
  // Truncated 3-byte sequence: one replacement per bad byte.
  EXPECT_EQ(Escaped("\xe2\x82"), replacement + replacement);
  // Overlong encoding of '/' (0xC0 0xAF) must not decode.
  EXPECT_EQ(Escaped("\xc0\xaf"), replacement + replacement);
  // CESU-8 surrogate half (0xED 0xA0 0x80) is not scalar-value UTF-8.
  EXPECT_EQ(Escaped("\xed\xa0\x80"), replacement + replacement + replacement);
  // A valid character after garbage still passes through.
  EXPECT_EQ(Escaped("\xffok"), replacement + "ok");
}

TEST(JsonWriterTest, WritesNestedDocument) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name");
  w.String("x");
  w.Key("values");
  w.BeginArray();
  w.Int(1);
  w.Int(-2);
  w.EndArray();
  w.Key("ok");
  w.Bool(true);
  w.EndObject();
  // Parseable by our own parser and structurally faithful.
  Result<JsonValue> parsed = ParseJson(w.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("name")->AsString(), "x");
  EXPECT_EQ(parsed->Find("values")->AsArray().size(), 2u);
  EXPECT_EQ(parsed->Find("values")->AsArray()[1].AsInt64(), -2);
  EXPECT_TRUE(parsed->Find("ok")->AsBool());
}

TEST(JsonWriterTest, DoublesRoundTripBitIdentically) {
  const double values[] = {0.1, 1.0 / 3.0, 1234.5678901234567, 1e-300,
                           123456789.123456789};
  for (double v : values) {
    JsonWriter w;
    w.Double(v);
    const double back = std::strtod(w.str().c_str(), nullptr);
    EXPECT_EQ(back, v) << w.str();  // bit-identical, not approximately
  }
}

TEST(JsonWriterTest, NonFiniteDoublesRenderAsNull) {
  JsonWriter w;
  w.Double(std::nan(""));
  EXPECT_EQ(w.str(), "null");
}

TEST(JsonParseTest, ParsesScalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_EQ(ParseJson("true")->AsBool(), true);
  EXPECT_EQ(ParseJson("-42")->AsInt64(), -42);
  EXPECT_TRUE(ParseJson("-42")->is_integer());
  EXPECT_FALSE(ParseJson("42.5")->is_integer());
  EXPECT_DOUBLE_EQ(ParseJson("42.5")->AsDouble(), 42.5);
  EXPECT_DOUBLE_EQ(ParseJson("1e3")->AsDouble(), 1000.0);
  EXPECT_EQ(ParseJson("\"hi\"")->AsString(), "hi");
}

TEST(JsonParseTest, DecodesEscapesAndSurrogatePairs) {
  Result<JsonValue> v = ParseJson("\"a\\n\\t\\\"\\\\\\u0041\\ud83d\\udca1\"");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->AsString(), "a\n\t\"\\A\xf0\x9f\x92\xa1");
}

TEST(JsonParseTest, ObjectPreservesOrderAndFinds) {
  Result<JsonValue> v = ParseJson("{\"b\": 1, \"a\": {\"c\": [true]}}");
  ASSERT_TRUE(v.ok());
  ASSERT_NE(v->Find("a"), nullptr);
  EXPECT_EQ(v->AsObject()[0].first, "b");
  EXPECT_TRUE(v->Find("a")->Find("c")->AsArray()[0].AsBool());
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonParseTest, TypedAccessorsNameTheKey) {
  Result<JsonValue> v = ParseJson("{\"n\": 7, \"s\": \"x\"}");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->GetInt("n").ValueOrDie(), 7);
  EXPECT_EQ(v->GetString("s").ValueOrDie(), "x");
  const Status missing = v->GetNumber("absent").status();
  EXPECT_TRUE(missing.IsInvalidArgument());
  EXPECT_NE(missing.message().find("absent"), std::string::npos);
  EXPECT_FALSE(v->GetInt("s").ok());  // wrong type
}

TEST(JsonParseTest, RejectsMalformedInput) {
  const char* bad[] = {
      "",            "{",           "[1,]",         "{\"a\":}",
      "{\"a\" 1}",   "tru",         "01",           "1.",
      "\"unterminated", "\"bad\\q\"", "\"\\ud83d\"",  // lone surrogate
      "{} trailing", "[1 2]",       "nul",          "+1",
  };
  for (const char* wire : bad) {
    Result<JsonValue> v = ParseJson(wire);
    EXPECT_FALSE(v.ok()) << "accepted: " << wire;
    if (!v.ok()) {
      EXPECT_NE(v.status().message().find("byte"), std::string::npos)
          << v.status().ToString();
    }
  }
}

TEST(JsonParseTest, RejectsRawControlCharactersInStrings) {
  EXPECT_FALSE(ParseJson(std::string("\"a\nb\"")).ok());
}

TEST(JsonParseTest, EnforcesDepthLimit) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  JsonParseOptions options;
  options.max_depth = 32;
  EXPECT_FALSE(ParseJson(deep, options).ok());
  // A document within the limit parses.
  EXPECT_TRUE(ParseJson("[[[[1]]]]", options).ok());
}

TEST(JsonParseTest, RoundTripsThroughWriter) {
  // Writer output with hostile strings parses back to the same content.
  JsonWriter w;
  w.BeginObject();
  w.Key(std::string("k\x01\xff", 3));
  w.String("v\"\\\n");
  w.EndObject();
  Result<JsonValue> parsed = ParseJson(w.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->AsObject()[0].second.AsString(), "v\"\\\n");
}

}  // namespace
}  // namespace hops
