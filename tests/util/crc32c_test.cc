#include "util/crc32c.h"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

namespace hops {
namespace {

// iSCSI / RFC 3720 test vectors, the industry-standard CRC32C checks that
// RocksDB and LevelDB also assert.
TEST(Crc32cTest, KnownVectors) {
  // CRC32C of the ASCII digits "123456789".
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);

  std::vector<unsigned char> zeros(32, 0x00);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);

  std::vector<unsigned char> ones(32, 0xFF);
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62A8AB43u);

  std::vector<unsigned char> ascending(32);
  for (size_t i = 0; i < ascending.size(); ++i) {
    ascending[i] = static_cast<unsigned char>(i);
  }
  EXPECT_EQ(Crc32c(ascending.data(), ascending.size()), 0x46DD794Eu);
}

TEST(Crc32cTest, EmptyInputIsZero) {
  EXPECT_EQ(Crc32c(nullptr, 0), 0u);
  EXPECT_EQ(Crc32cExtend(0x12345678u, nullptr, 0), 0x12345678u);
}

TEST(Crc32cTest, SoftwareMatchesKnownVectors) {
  EXPECT_EQ(internal::Crc32cExtendSoftware(0, "123456789", 9), 0xE3069283u);
}

// The dispatching implementation (hardware when the CPU has SSE4.2) must be
// bit-identical to the software table walk on every input — sizes straddle
// the 8-byte fast-path boundaries and every alignment offset.
TEST(Crc32cTest, HardwareMatchesSoftware) {
  std::mt19937_64 rng(42);
  std::vector<unsigned char> buffer(4096 + 16);
  for (auto& byte : buffer) {
    byte = static_cast<unsigned char>(rng());
  }
  for (size_t size : {0UL, 1UL, 2UL, 7UL, 8UL, 9UL, 15UL, 16UL, 17UL, 63UL,
                      64UL, 255UL, 1024UL, 4093UL, 4096UL}) {
    for (size_t offset = 0; offset < 9; ++offset) {
      const unsigned char* p = buffer.data() + offset;
      EXPECT_EQ(Crc32cExtend(0, p, size),
                internal::Crc32cExtendSoftware(0, p, size))
          << "size=" << size << " offset=" << offset;
      EXPECT_EQ(Crc32cExtend(0xDEADBEEFu, p, size),
                internal::Crc32cExtendSoftware(0xDEADBEEFu, p, size))
          << "size=" << size << " offset=" << offset;
    }
  }
}

// Extend() over chunks must equal one call over the concatenation — the
// property the snapshot writer relies on when checksumming streamed
// sections.
TEST(Crc32cTest, ExtendComposes) {
  std::mt19937_64 rng(7);
  std::vector<unsigned char> buffer(1000);
  for (auto& byte : buffer) {
    byte = static_cast<unsigned char>(rng());
  }
  const uint32_t whole = Crc32c(buffer.data(), buffer.size());
  for (size_t split : {0UL, 1UL, 7UL, 8UL, 500UL, 999UL, 1000UL}) {
    uint32_t crc = Crc32cExtend(0, buffer.data(), split);
    crc = Crc32cExtend(crc, buffer.data() + split, buffer.size() - split);
    EXPECT_EQ(crc, whole) << "split=" << split;
  }
}

// A single flipped bit anywhere in a buffer must change the checksum —
// the guarantee the corruption-matrix test of the storage layer builds on.
TEST(Crc32cTest, DetectsSingleBitFlips) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t clean = Crc32c(data.data(), data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      data[i] = static_cast<char>(data[i] ^ (1 << bit));
      EXPECT_NE(Crc32c(data.data(), data.size()), clean)
          << "byte " << i << " bit " << bit;
      data[i] = static_cast<char>(data[i] ^ (1 << bit));
    }
  }
  EXPECT_EQ(Crc32c(data.data(), data.size()), clean);
}

}  // namespace
}  // namespace hops
