#include "util/status.h"

#include <gtest/gtest.h>

#include <sstream>

namespace hops {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad beta");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad beta");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad beta");
}

TEST(StatusTest, PredicatesMatchExactlyOneCode) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_FALSE(Status::NotFound("x").IsInvalidArgument());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, StreamInsertionUsesToString) {
  std::ostringstream os;
  os << Status::Internal("broken");
  EXPECT_EQ(os.str(), "Internal: broken");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "ResourceExhausted");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "payload");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UseReturnNotOk(int x) {
  HOPS_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(UseReturnNotOk(1).ok());
  EXPECT_TRUE(UseReturnNotOk(-1).IsInvalidArgument());
}

using StatusDeathTest = testing::Test;

TEST(StatusDeathTest, CheckAbortsOnError) {
  EXPECT_DEATH(Status::Internal("boom").Check(), "Fatal status: Internal");
  Status ok;  // Check on OK must be a no-op.
  ok.Check();
}

TEST(StatusDeathTest, ValueOrDieAbortsOnError) {
  Result<int> r(Status::NotFound("gone"));
  EXPECT_DEATH((void)r.ValueOrDie(), "ValueOrDie on error");
}

Result<int> Doubled(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return 2 * x;
}

Result<int> UseAssignOrReturn(int x) {
  HOPS_ASSIGN_OR_RETURN(int d, Doubled(x));
  return d + 1;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = UseAssignOrReturn(3);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 7);
  Result<int> err = UseAssignOrReturn(-3);
  EXPECT_TRUE(err.status().IsInvalidArgument());
}

}  // namespace
}  // namespace hops
