#include "util/csv_reader.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace hops {
namespace {

TEST(CsvReaderTest, BasicParseWithHeader) {
  auto doc = ParseCsv("a,b\n1,2\n3,4\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(doc->rows.size(), 2u);
  EXPECT_EQ(doc->rows[0], (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(doc->rows[1], (std::vector<std::string>{"3", "4"}));
}

TEST(CsvReaderTest, NoHeaderGeneratesNames) {
  auto doc = ParseCsv("1,2,3\n", /*has_header=*/false);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->header, (std::vector<std::string>{"c0", "c1", "c2"}));
  ASSERT_EQ(doc->rows.size(), 1u);
}

TEST(CsvReaderTest, QuotedCellsWithCommasQuotesNewlines) {
  auto doc = ParseCsv("name,notes\n\"Doe, Jane\",\"said \"\"hi\"\"\"\n"
                      "plain,\"two\nlines\"\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 2u);
  EXPECT_EQ(doc->rows[0][0], "Doe, Jane");
  EXPECT_EQ(doc->rows[0][1], "said \"hi\"");
  EXPECT_EQ(doc->rows[1][1], "two\nlines");
}

TEST(CsvReaderTest, CrLfLineEndings) {
  auto doc = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows[0], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvReaderTest, MissingTrailingNewline) {
  auto doc = ParseCsv("a\nx");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 1u);
  EXPECT_EQ(doc->rows[0][0], "x");
}

TEST(CsvReaderTest, ShortRowsPaddedLongRowsRejected) {
  auto padded = ParseCsv("a,b,c\n1\n");
  ASSERT_TRUE(padded.ok());
  EXPECT_EQ(padded->rows[0], (std::vector<std::string>{"1", "", ""}));
  EXPECT_FALSE(ParseCsv("a\n1,2\n").ok());
}

TEST(CsvReaderTest, MalformedInputRejected) {
  EXPECT_FALSE(ParseCsv("").ok());
  EXPECT_FALSE(ParseCsv("a\n\"unterminated").ok());
  EXPECT_FALSE(ParseCsv("a\nx\"y\n").ok());
}

TEST(CsvReaderTest, EmptyQuotedCellSurvives) {
  auto doc = ParseCsv("a,b\n\"\",x\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows[0][0], "");
  EXPECT_EQ(doc->rows[0][1], "x");
}

TEST(CsvReaderTest, ReadCsvFileRoundTrip) {
  std::string path = testing::TempDir() + "/hops_reader_test.csv";
  {
    std::ofstream out(path);
    out << "k,v\n10,foo\n20,bar\n";
  }
  auto doc = ReadCsvFile(path);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows.size(), 2u);
  std::remove(path.c_str());
  EXPECT_TRUE(ReadCsvFile("/no/such/file.csv").status().IsNotFound());
}

TEST(CsvReaderTest, Int64CellParsing) {
  auto v = ParseInt64Cell("-42");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, -42);
  EXPECT_FALSE(ParseInt64Cell("").ok());
  EXPECT_FALSE(ParseInt64Cell("12x").ok());
  EXPECT_FALSE(ParseInt64Cell("1.5").ok());
  EXPECT_TRUE(
      ParseInt64Cell("999999999999999999999999").status().IsOutOfRange());
}

TEST(CsvReaderTest, ColumnTypeDetection) {
  auto doc = ParseCsv("i,s,mixed\n1,a,1\n2,b,x\n,c,3\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(ColumnIsInt64(*doc, 0));   // empties tolerated
  EXPECT_FALSE(ColumnIsInt64(*doc, 1));
  EXPECT_FALSE(ColumnIsInt64(*doc, 2));  // one non-numeric cell
  EXPECT_FALSE(ColumnIsInt64(*doc, 9));  // out of range
}

}  // namespace
}  // namespace hops
