#include "util/combinatorics.h"

#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <vector>

namespace hops {
namespace {

TEST(BinomialTest, SmallValues) {
  EXPECT_EQ(BinomialCoefficient(0, 0), 1u);
  EXPECT_EQ(BinomialCoefficient(5, 0), 1u);
  EXPECT_EQ(BinomialCoefficient(5, 5), 1u);
  EXPECT_EQ(BinomialCoefficient(5, 2), 10u);
  EXPECT_EQ(BinomialCoefficient(10, 3), 120u);
  EXPECT_EQ(BinomialCoefficient(52, 5), 2598960u);
}

TEST(BinomialTest, KGreaterThanNIsZero) {
  EXPECT_EQ(BinomialCoefficient(3, 4), 0u);
}

TEST(BinomialTest, Symmetry) {
  for (uint64_t n = 1; n < 30; ++n) {
    for (uint64_t k = 0; k <= n; ++k) {
      EXPECT_EQ(BinomialCoefficient(n, k), BinomialCoefficient(n, n - k));
    }
  }
}

TEST(BinomialTest, PascalIdentity) {
  for (uint64_t n = 2; n < 40; ++n) {
    for (uint64_t k = 1; k < n; ++k) {
      EXPECT_EQ(BinomialCoefficient(n, k),
                BinomialCoefficient(n - 1, k - 1) +
                    BinomialCoefficient(n - 1, k));
    }
  }
}

TEST(BinomialTest, SaturatesOnOverflow) {
  EXPECT_EQ(BinomialCoefficient(1000, 500),
            std::numeric_limits<uint64_t>::max());
}

TEST(PartitionArgsTest, Validation) {
  EXPECT_TRUE(ValidatePartitionArgs(5, 1).ok());
  EXPECT_TRUE(ValidatePartitionArgs(5, 5).ok());
  EXPECT_TRUE(ValidatePartitionArgs(5, 0).IsInvalidArgument());
  EXPECT_TRUE(ValidatePartitionArgs(5, 6).IsInvalidArgument());
  EXPECT_TRUE(ValidatePartitionArgs(0, 1).IsInvalidArgument());
}

TEST(PartitionEnumeratorTest, SinglePartHasOnePartition) {
  ContiguousPartitionEnumerator e(4, 1);
  EXPECT_EQ(e.part_ends(), std::vector<size_t>({4}));
  EXPECT_FALSE(e.Advance());
  EXPECT_EQ(e.TotalCount(), 1u);
}

TEST(PartitionEnumeratorTest, AllSingletonsHasOnePartition) {
  ContiguousPartitionEnumerator e(4, 4);
  EXPECT_EQ(e.part_ends(), std::vector<size_t>({1, 2, 3, 4}));
  EXPECT_FALSE(e.Advance());
}

TEST(PartitionEnumeratorTest, CountsMatchBinomial) {
  for (size_t m = 1; m <= 9; ++m) {
    for (size_t beta = 1; beta <= m; ++beta) {
      ContiguousPartitionEnumerator e(m, beta);
      size_t count = 0;
      do {
        ++count;
      } while (e.Advance());
      EXPECT_EQ(count, BinomialCoefficient(m - 1, beta - 1))
          << "m=" << m << " beta=" << beta;
    }
  }
}

TEST(PartitionEnumeratorTest, PartitionsAreValidAndDistinct) {
  ContiguousPartitionEnumerator e(6, 3);
  std::set<std::vector<size_t>> seen;
  do {
    const auto& ends = e.part_ends();
    ASSERT_EQ(ends.size(), 3u);
    EXPECT_EQ(ends.back(), 6u);
    size_t prev = 0;
    for (size_t end : ends) {
      EXPECT_GT(end, prev);  // non-empty parts
      prev = end;
    }
    EXPECT_TRUE(seen.insert(ends).second) << "duplicate partition";
  } while (e.Advance());
  EXPECT_EQ(seen.size(), 10u);  // C(5, 2)
}

TEST(CombinationEnumeratorTest, ZeroKYieldsOneEmptyCombination) {
  CombinationEnumerator e(5, 0);
  EXPECT_TRUE(e.current().empty());
  EXPECT_FALSE(e.Advance());
  EXPECT_EQ(e.TotalCount(), 1u);
}

TEST(CombinationEnumeratorTest, FullKYieldsIdentity) {
  CombinationEnumerator e(4, 4);
  EXPECT_EQ(e.current(), std::vector<size_t>({0, 1, 2, 3}));
  EXPECT_FALSE(e.Advance());
}

TEST(CombinationEnumeratorTest, EnumeratesAllDistinctSorted) {
  CombinationEnumerator e(6, 3);
  std::set<std::vector<size_t>> seen;
  do {
    const auto& c = e.current();
    ASSERT_EQ(c.size(), 3u);
    for (size_t i = 0; i + 1 < c.size(); ++i) EXPECT_LT(c[i], c[i + 1]);
    EXPECT_LT(c.back(), 6u);
    EXPECT_TRUE(seen.insert(c).second);
  } while (e.Advance());
  EXPECT_EQ(seen.size(), 20u);  // C(6, 3)
}

TEST(CombinationEnumeratorTest, LexicographicOrder) {
  CombinationEnumerator e(4, 2);
  std::vector<std::vector<size_t>> order;
  do {
    order.push_back(e.current());
  } while (e.Advance());
  std::vector<std::vector<size_t>> expected = {
      {0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}};
  EXPECT_EQ(order, expected);
}

}  // namespace
}  // namespace hops
