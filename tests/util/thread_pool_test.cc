#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace hops {
namespace {

TEST(LatchTest, CountsDownToZero) {
  Latch latch(3);
  EXPECT_FALSE(latch.Ready());
  latch.CountDown();
  latch.CountDown();
  EXPECT_FALSE(latch.Ready());
  latch.CountDown();
  EXPECT_TRUE(latch.Ready());
  latch.Wait();  // must not block once ready
}

TEST(LatchTest, WaitBlocksUntilCountedDownFromAnotherThread) {
  Latch latch(1);
  std::thread t([&] { latch.CountDown(); });
  latch.Wait();
  EXPECT_TRUE(latch.Ready());
  t.join();
}

TEST(LatchTest, WaitForTimesOutWhenNotReady) {
  Latch latch(1);
  EXPECT_FALSE(latch.WaitFor(/*micros=*/1000));
  latch.CountDown();
  EXPECT_TRUE(latch.WaitFor(/*micros=*/1000));
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 100000;
  std::vector<int> hits(kN, 0);
  pool.ParallelFor(0, kN, 1024, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(kN));
  EXPECT_EQ(*std::min_element(hits.begin(), hits.end()), 1);
  EXPECT_EQ(*std::max_element(hits.begin(), hits.end()), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyAndSingleChunkRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(5, 5, 16, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(0, 10, 16, [&](size_t begin, size_t end) {
    ++calls;
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 10u);
  });
  EXPECT_EQ(calls, 1);  // fits one grain: runs inline exactly once
}

TEST(ThreadPoolTest, OneThreadDegenerateCaseRunsInline) {
  ThreadPool pool(1);
  constexpr size_t kN = 10000;
  std::atomic<size_t> sum{0};
  const auto caller = std::this_thread::get_id();
  std::set<std::thread::id> bodies;
  std::mutex mutex;
  pool.ParallelFor(0, kN, 64, [&](size_t begin, size_t end) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      bodies.insert(std::this_thread::get_id());
    }
    size_t local = 0;
    for (size_t i = begin; i < end; ++i) local += i;
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), kN * (kN - 1) / 2);
  // A 1-thread pool never forks: every chunk ran on the calling thread.
  ASSERT_EQ(bodies.size(), 1u);
  EXPECT_EQ(*bodies.begin(), caller);
}

TEST(ThreadPoolTest, ExceptionsPropagateFromParallelFor) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 1000, 10,
                       [&](size_t begin, size_t) {
                         if (begin == 500) {
                           throw std::runtime_error("boom");
                         }
                       }),
      std::runtime_error);
  // The pool survives an exception and stays usable.
  std::atomic<int> count{0};
  pool.ParallelFor(0, 100, 10, [&](size_t begin, size_t end) {
    count.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ExceptionsPropagateFromRunBatch) {
  ThreadPool pool(2);
  std::vector<std::function<void()>> tasks;
  std::atomic<int> ran{0};
  for (int i = 0; i < 20; ++i) {
    tasks.push_back([&ran, i] {
      ran.fetch_add(1);
      if (i == 7) throw std::logic_error("task 7 failed");
    });
  }
  EXPECT_THROW(pool.RunBatch(tasks), std::logic_error);
  // Latch accounting stays sound: every task still ran.
  EXPECT_EQ(ran.load(), 20);
}

TEST(ThreadPoolTest, ExceptionsPropagateFromParallelInvoke) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelInvoke([] { throw std::runtime_error("left"); },
                                   [] {}),
               std::runtime_error);
  EXPECT_THROW(pool.ParallelInvoke([] {},
                                   [] { throw std::runtime_error("right"); }),
               std::runtime_error);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  constexpr size_t kOuter = 16;
  constexpr size_t kInner = 4096;
  std::vector<size_t> sums(kOuter, 0);
  pool.ParallelFor(0, kOuter, 1, [&](size_t ob, size_t oe) {
    for (size_t o = ob; o < oe; ++o) {
      std::atomic<size_t> inner_sum{0};
      pool.ParallelFor(0, kInner, 64, [&](size_t begin, size_t end) {
        size_t local = 0;
        for (size_t i = begin; i < end; ++i) local += i;
        inner_sum.fetch_add(local);
      });
      sums[o] = inner_sum.load();
    }
  });
  for (size_t o = 0; o < kOuter; ++o) {
    EXPECT_EQ(sums[o], kInner * (kInner - 1) / 2);
  }
}

TEST(ThreadPoolTest, RunBatchExecutesEveryTaskOnce) {
  ThreadPool pool(3);
  constexpr size_t kTasks = 100;
  std::vector<std::atomic<int>> hits(kTasks);
  for (auto& h : hits) h.store(0);
  std::vector<std::function<void()>> tasks;
  for (size_t i = 0; i < kTasks; ++i) {
    tasks.push_back([&hits, i] { hits[i].fetch_add(1); });
  }
  pool.RunBatch(tasks);
  for (size_t i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, SubmitWithLatchActsAsBatchBarrier) {
  ThreadPool pool(4);
  constexpr size_t kTasks = 64;
  Latch latch(kTasks);
  std::atomic<int> done{0};
  for (size_t i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      done.fetch_add(1);
      latch.CountDown();
    });
  }
  latch.Wait();
  EXPECT_EQ(done.load(), static_cast<int>(kTasks));
}

TEST(ThreadPoolTest, ScopedSerialForcesInlineExecution) {
  ThreadPool pool(4);
  const auto caller = std::this_thread::get_id();
  std::set<std::thread::id> bodies;
  std::mutex mutex;
  {
    ScopedSerial serial;
    ASSERT_TRUE(ThreadPool::SerialRegionActive());
    pool.ParallelFor(0, 100000, 16, [&](size_t, size_t) {
      std::lock_guard<std::mutex> lock(mutex);
      bodies.insert(std::this_thread::get_id());
    });
  }
  EXPECT_FALSE(ThreadPool::SerialRegionActive());
  ASSERT_EQ(bodies.size(), 1u);
  EXPECT_EQ(*bodies.begin(), caller);
}

TEST(ThreadPoolTest, ParallelInvokeRunsBothBranches) {
  ThreadPool pool(2);
  std::atomic<int> left{0}, right{0};
  pool.ParallelInvoke([&] { left.store(1); }, [&] { right.store(1); });
  EXPECT_EQ(left.load(), 1);
  EXPECT_EQ(right.load(), 1);
}

TEST(ThreadPoolTest, DefaultThreadCountHonorsEnvOverride) {
  // Note: cannot portably setenv after threads exist; only sanity-check the
  // default is positive and the global pool matches it on first use.
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
  EXPECT_GE(ThreadPool::Global().num_threads(), 1u);
}

TEST(ThreadPoolTest, ManyConcurrentSmallLoopsStressScheduler) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  pool.ParallelFor(0, 64, 1, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      std::atomic<size_t> local{0};
      pool.ParallelFor(0, 100, 7,
                       [&](size_t ib, size_t ie) { local.fetch_add(ie - ib); });
      total.fetch_add(local.load());
    }
  });
  EXPECT_EQ(total.load(), 64u * 100u);
}

}  // namespace
}  // namespace hops
