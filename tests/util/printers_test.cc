#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv_writer.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace hops {
namespace {

TEST(TablePrinterTest, AlignsColumnsRightJustified) {
  TablePrinter tp({"m", "sigma"});
  tp.AddRow({"10", "1.5"});
  tp.AddRow({"1000", "12.25"});
  std::ostringstream os;
  tp.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("   m"), std::string::npos);
  EXPECT_NE(out.find("1000"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_EQ(tp.num_rows(), 2u);
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter tp({"a", "b", "c"});
  tp.AddRow({"1"});
  std::ostringstream os;
  tp.Print(os);  // must not crash; missing cells become empty
  EXPECT_EQ(tp.num_rows(), 1u);
}

TEST(TablePrinterTest, Formatters) {
  EXPECT_EQ(TablePrinter::FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::FormatInt(-42), "-42");
  EXPECT_EQ(TablePrinter::FormatSci(12345.0, 2), "1.23e+04");
}

TEST(CsvWriterTest, BasicRoundTrip) {
  CsvWriter w({"x", "y"});
  w.AddRow({"1", "2"});
  w.AddRow({"3", "4"});
  EXPECT_EQ(w.ToString(), "x,y\n1,2\n3,4\n");
}

TEST(CsvWriterTest, EscapesSpecialCells) {
  EXPECT_EQ(CsvWriter::EscapeCell("plain"), "plain");
  EXPECT_EQ(CsvWriter::EscapeCell("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::EscapeCell("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::EscapeCell("two\nlines"), "\"two\nlines\"");
}

TEST(CsvWriterTest, WriteToFile) {
  CsvWriter w({"h"});
  w.AddRow({"v"});
  std::string path = testing::TempDir() + "/hops_csv_test.csv";
  ASSERT_TRUE(w.WriteToFile(path).ok());
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), "h\nv\n");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, WriteToBadPathFails) {
  CsvWriter w({"h"});
  EXPECT_FALSE(w.WriteToFile("/nonexistent_dir_zz/x.csv").ok());
}

TEST(StopwatchTest, MeasuresNonNegativeMonotonicTime) {
  Stopwatch sw;
  double t1 = sw.ElapsedSeconds();
  double t2 = sw.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  EXPECT_GE(sw.ElapsedNanos(), 0);
  sw.Reset();
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
}

}  // namespace
}  // namespace hops
