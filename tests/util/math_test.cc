#include "util/math.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace hops {
namespace {

TEST(KahanSumTest, MatchesNaiveOnSmallInput) {
  KahanSum acc;
  for (double v : {1.0, 2.0, 3.5}) acc.Add(v);
  EXPECT_DOUBLE_EQ(acc.Value(), 6.5);
}

TEST(KahanSumTest, CompensatesCatastrophicCancellation) {
  // 1 + 1e16 - 1e16 repeatedly: naive summation loses the ones.
  KahanSum acc;
  for (int i = 0; i < 1000; ++i) {
    acc.Add(1.0);
    acc.Add(1e16);
    acc.Add(-1e16);
  }
  EXPECT_DOUBLE_EQ(acc.Value(), 1000.0);
}

TEST(SumTest, EmptyIsZero) {
  EXPECT_EQ(Sum({}), 0.0);
  EXPECT_EQ(SumOfSquares({}), 0.0);
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(PopulationVariance({}), 0.0);
}

TEST(SumTest, BasicValues) {
  std::vector<double> v = {2.0, 4.0, 6.0};
  EXPECT_DOUBLE_EQ(Sum(v), 12.0);
  EXPECT_DOUBLE_EQ(SumOfSquares(v), 4.0 + 16.0 + 36.0);
  EXPECT_DOUBLE_EQ(Mean(v), 4.0);
}

TEST(VarianceTest, ConstantVectorHasZeroVariance) {
  std::vector<double> v(100, 3.25);
  EXPECT_DOUBLE_EQ(PopulationVariance(v), 0.0);
}

TEST(VarianceTest, KnownPopulationVariance) {
  // {1,2,3,4}: mean 2.5, population variance 1.25 (divides by N).
  std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(PopulationVariance(v), 1.25);
}

TEST(VarianceTest, NeverNegative) {
  // Values engineered so the naive formula could round below zero.
  std::vector<double> v(1000, 1e8 + 0.5);
  EXPECT_GE(PopulationVariance(v), 0.0);
}

TEST(BucketMomentsTest, TracksCountSumAndSquares) {
  BucketMoments m;
  for (double v : {1.0, 2.0, 3.0}) m.Add(v);
  EXPECT_EQ(m.count(), 3u);
  EXPECT_DOUBLE_EQ(m.sum(), 6.0);
  EXPECT_DOUBLE_EQ(m.sum_of_squares(), 14.0);
  EXPECT_DOUBLE_EQ(m.mean(), 2.0);
  EXPECT_DOUBLE_EQ(m.population_variance(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.square_over_count(), 12.0);
}

TEST(BucketMomentsTest, EmptyBucketIsAllZero) {
  BucketMoments m;
  EXPECT_EQ(m.count(), 0u);
  EXPECT_EQ(m.mean(), 0.0);
  EXPECT_EQ(m.population_variance(), 0.0);
  EXPECT_EQ(m.square_over_count(), 0.0);
}

TEST(BucketMomentsTest, SelfJoinIdentity) {
  // For any bucket: sum_squares == T^2/P + P*V (the Proposition 3.1 split).
  BucketMoments m;
  for (double v : {3.0, 7.0, 7.0, 12.0, 100.0}) m.Add(v);
  double lhs = m.sum_of_squares();
  double rhs = m.square_over_count() +
               static_cast<double>(m.count()) * m.population_variance();
  EXPECT_NEAR(lhs, rhs, 1e-9 * lhs);
}

TEST(AlmostEqualTest, RelativeAndAbsoluteTolerance) {
  EXPECT_TRUE(AlmostEqual(1.0, 1.0));
  EXPECT_TRUE(AlmostEqual(1e9, 1e9 * (1 + 1e-12)));
  EXPECT_FALSE(AlmostEqual(1.0, 1.1));
  EXPECT_TRUE(AlmostEqual(0.0, 1e-13));
  EXPECT_FALSE(AlmostEqual(0.0, 1e-6));
}

}  // namespace
}  // namespace hops
