#!/usr/bin/env bash
# Concurrency verification + perf trajectory for the parallel histogram
# pipeline and the read-optimized serving layer:
#
#   1. Build with -DHOPS_SANITIZE=thread and run the concurrency suite
#      (thread_pool_test, parallel_build_test, snapshot_concurrency_test)
#      under ThreadSanitizer.
#   2. Build optimized and run bench/bench_json, which times serial vs
#      parallel batched construction, verifies the parallel results are
#      bit-identical to serial, and writes BENCH_histograms.json.
#   3. Run bench/bench_estimation, which times the legacy decode-per-query
#      estimators against the compiled snapshot serving path and the §12
#      batched fast lane (Eytzinger multi-probe kernel + per-snapshot
#      estimate cache), verifies bit-identical estimates on every rep, and
#      writes BENCH_estimation.json.
#   4. Run bench/bench_refresh, which measures the adaptive refresh
#      subsystem (delta-apply throughput, batched rebuild latency, reader
#      p50/p99 while the daemon churns, and the §15 selftune axis: tuned
#      vs stale q-error on a drifting Zipf workload, per-adjustment cost
#      vs a rebuild, tuning-off bit-identical) and writes
#      BENCH_refresh.json.
#   5. Run bench/bench_serving, which drives the epoll HTTP front-end over
#      loopback with a closed-loop load generator swept over concurrent
#      connections, compares the JSON and §12 binary framings on the same
#      batch, and writes BENCH_serving.json (requests/sec, p50/p99/p999
#      request latency per point, binary_vs_json axis).
#   6. Run bench/bench_storage, which times §13 durable storage: snapshot
#      write/load bandwidth, WAL append throughput across the fsync modes,
#      WAL replay rate, and the accept-path overhead of write-before-ack
#      durability on the serving /update path (target < 10%), and writes
#      BENCH_storage.json.
#
# Usage: scripts/run_benchmarks.sh [--quick] [--skip-tsan]
#   --quick      restrict the bench sweep (CI smoke)
#   --skip-tsan  skip step 1 (e.g. when TSan is unavailable on the host)
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK_ARGS=()
RUN_TSAN=1
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK_ARGS=(--quick) ;;
    --skip-tsan) RUN_TSAN=0 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

if [[ "$RUN_TSAN" == 1 ]]; then
  echo "== ThreadSanitizer pass (thread_pool_test, parallel_build_test," \
       "snapshot_concurrency_test, refresh_daemon_test," \
       "trace_recorder_test) =="
  cmake -B build-tsan -G Ninja -DHOPS_SANITIZE=thread \
    -DHOPS_BUILD_BENCHMARKS=OFF -DHOPS_BUILD_EXAMPLES=OFF \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan --target thread_pool_test parallel_build_test \
    snapshot_concurrency_test refresh_daemon_test trace_recorder_test
  # Oversubscribe the pool so TSan sees real interleavings even on small
  # CI machines.
  HOPS_THREADS=4 ./build-tsan/tests/thread_pool_test
  HOPS_THREADS=4 ./build-tsan/tests/parallel_build_test
  HOPS_THREADS=4 ./build-tsan/tests/snapshot_concurrency_test
  HOPS_THREADS=4 ./build-tsan/tests/refresh_daemon_test
  HOPS_THREADS=4 ./build-tsan/tests/trace_recorder_test
fi

echo "== Optimized bench: serial vs parallel batched construction =="
# RelWithDebInfo is the repo's default optimized configuration (-O2); -O3
# Release trips a known GCC-12 -Wrestrict false positive in libstdc++'s
# std::string::replace under -Werror.
cmake -B build-release -G Ninja -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DHOPS_BUILD_EXAMPLES=OFF
cmake --build build-release --target bench_json
./build-release/bench/bench_json BENCH_histograms.json "${QUICK_ARGS[@]}"

# Sanity-check the emitted JSON (parses, has the headline block).
python3 - <<'EOF'
import json
with open("BENCH_histograms.json") as f:
    doc = json.load(f)
assert doc["bench"] == "histogram_construction", doc.get("bench")
assert isinstance(doc["runs"], list) and doc["runs"], "empty runs"
assert all(r["identical"] for r in doc["runs"]), "non-identical run"
head = doc["headline"]
print(f"headline: M={head['m']} beta={head['beta']} "
      f"speedup={head['speedup']:.2f}x identical={head['identical']} "
      f"meets_2x_target={head['meets_2x_target']} "
      f"(threads={doc['threads']})")
assert head["identical"]
assert head["meets_2x_target"]
EOF

echo "== Optimized bench: legacy estimators vs compiled snapshot serving =="
cmake --build build-release --target bench_estimation
./build-release/bench/bench_estimation BENCH_estimation.json "${QUICK_ARGS[@]}"

# Sanity-check the emitted JSON (parses, bit-identical, headline gate).
python3 - <<'EOF'
import json
with open("BENCH_estimation.json") as f:
    doc = json.load(f)
assert doc["bench"] == "estimation_serving", doc.get("bench")
assert isinstance(doc["workloads"], list) and doc["workloads"], "no workloads"
assert all(w["identical"] for w in doc["workloads"]), "non-identical workload"
# The §12 ordering gate: the batched lane builds on the snapshot lane and
# must never lose to it.
for w in doc["workloads"]:
    assert w["speedup_batched"] >= w["speedup_snapshot"], (
        f"{w['name']}: batched lost to snapshot")
sweep = doc["eytzinger_vs_lower_bound"]
assert sweep["identical"], "eytzinger sweep: index mismatch"
head = doc["headline"]
print(f"headline: workload={head['workload']} m={head['m']} "
      f"speedup={head['speedup']:.2f}x identical={head['identical']} "
      f"meets_10x_target={head['meets_10x_target']} "
      f"(threads={doc['threads']})")
assert head["identical"]
assert head["meets_10x_target"]
point = doc["point_headline"]
print(f"point_headline: batched {point['speedup_batched']:.2f}x vs snapshot "
      f"{point['speedup_snapshot']:.2f}x, multiprobe sweep "
      f"{sweep['speedup_multiprobe']:.2f}x, "
      f"meets_1p5x_target={point['meets_1p5x_target']}")
assert point["batched_beats_snapshot"]
EOF

echo "== Optimized bench: adaptive refresh subsystem =="
cmake --build build-release --target bench_refresh
./build-release/bench/bench_refresh BENCH_refresh.json "${QUICK_ARGS[@]}"

# Sanity-check the emitted JSON (parses, well-formed estimates under churn,
# the daemon actually applied/rebuilt/republished while readers ran).
python3 - <<'EOF'
import json
with open("BENCH_refresh.json") as f:
    doc = json.load(f)
assert doc["bench"] == "refresh_subsystem", doc.get("bench")
assert doc["timestamp_utc"] and doc["git_rev"], "missing provenance"
apply_phase = doc["delta_apply"]
assert apply_phase["deltas"] > 0 and apply_phase["deltas_per_second"] > 0
reader = doc["reader_under_churn"]
assert reader["well_formed"], "malformed estimates under churn"
assert reader["p99_micros"] >= reader["p50_micros"] >= 0
assert reader["writer_deltas"] > 0, "no churn reached the readers"
stats = doc["refresh_stats"]
assert stats["deltas_applied"] > 0
assert stats["republish_count"] > 0
assert stats["log"]["drained"] <= stats["log"]["enqueued"]
# The §15 self-tuning axis: feedback-tuned estimates must beat the stale
# v-opt baseline on the drifting workload, each in-place adjustment must be
# far cheaper than a rebuild, and the tuning-off serving path must be
# bit-identical to a process that never saw feedback.
tune = doc["selftune"]
assert tune["rounds"] > 0 and tune["workload_queries"] > 0
assert tune["tuned_beats_stale"], (
    f"tuned median q-error {tune['tuned_median_qerror']:.4f} did not beat "
    f"stale {tune['stale_median_qerror']:.4f}")
assert tune["tuned_median_qerror"] < tune["stale_median_qerror"]
assert tune["adjustments"] > 0 and tune["observations"] > 0
assert tune["seconds_per_adjustment"] < tune["rebuild_seconds_per_column"], (
    "an in-place adjustment cost as much as a full rebuild")
assert tune["tuning_off_bit_identical"], (
    "tuning-off serving diverged from the never-fed baseline")
print(f"selftune: median q-error {tune['stale_median_qerror']:.4f} stale -> "
      f"{tune['tuned_median_qerror']:.4f} tuned over {tune['rounds']} rounds, "
      f"{tune['adjustments']} adjustments at "
      f"{tune['seconds_per_adjustment']*1e6:.2f}us each "
      f"({tune['adjustment_cost_vs_rebuild']:.2e} of a rebuild), "
      f"off-path bit-identical={tune['tuning_off_bit_identical']}")
print(f"refresh: {apply_phase['deltas_per_second']:.0f} deltas/s applied, "
      f"{doc['force_rebuild']['seconds_per_column']*1e3:.2f} ms/column "
      f"rebuild, reader p50 {reader['p50_micros']:.2f}us "
      f"p99 {reader['p99_micros']:.2f}us under "
      f"{stats['rebuilds_total']} rebuilds / "
      f"{stats['republish_count']} republishes")
EOF

echo "== Optimized bench: HTTP serving front-end =="
cmake --build build-release --target bench_serving
./build-release/bench/bench_serving BENCH_serving.json "${QUICK_ARGS[@]}"

# Sanity-check the emitted JSON (parses, sweep covers the connections
# axis, quantiles ordered, no client-visible errors).
python3 - <<'EOF'
import json
with open("BENCH_serving.json") as f:
    doc = json.load(f)
assert doc["bench"] == "http_serving", doc.get("bench")
assert doc["timestamp_utc"] and doc["git_rev"], "missing provenance"
sweep = doc["serving_sweep"]
assert isinstance(sweep, list) and sweep, "empty sweep"
for point in sweep:
    assert point["connections"] > 0
    assert point["requests"] > 0 and point["requests_per_second"] > 0
    assert point["p999_micros"] >= point["p99_micros"] >= point["p50_micros"]
    assert point["errors"] == 0, f"client errors at {point['connections']}"
head = sweep[0]
print(f"serving: connections axis {[p['connections'] for p in sweep]}, "
      f"{head['requests_per_second']:.0f} req/s at 1 connection, "
      f"p50 {head['p50_micros']:.1f}us p99 {head['p99_micros']:.1f}us "
      f"({doc['workers']} workers)")
bvj = doc["binary_vs_json"]
assert bvj["identical"], "binary framing not bit-identical to JSON"
assert bvj["errors"] == 0, "binary_vs_json client errors"
print(f"binary_vs_json: {bvj['json_rps']:.0f} req/s json vs "
      f"{bvj['binary_rps']:.0f} req/s binary "
      f"({bvj['binary_speedup']:.2f}x, identical={bvj['identical']})")
tracing = doc["tracing_overhead"]
assert tracing["identical"], "traced estimates not bit-identical"
assert tracing["errors"] == 0, "tracing_overhead client errors"
print(f"tracing_overhead: {tracing['overhead_percent']:.2f}% at 1/"
      f"{tracing['sample_one_in']} sampling "
      f"(target < {tracing['target_percent']:.0f}%, "
      f"identical={tracing['identical']})")
EOF

echo "== Optimized bench: durable storage (snapshot + WAL + recovery) =="
cmake --build build-release --target bench_storage
./build-release/bench/bench_storage BENCH_storage.json "${QUICK_ARGS[@]}"

# Sanity-check the emitted JSON (parses, every fsync mode measured, replay
# recovered records, the accept-path overhead gate holds).
python3 - <<'EOF'
import json
with open("BENCH_storage.json") as f:
    doc = json.load(f)
assert doc["bench"] == "durable_storage", doc.get("bench")
assert doc["timestamp_utc"] and doc["git_rev"], "missing provenance"
snap = doc["snapshot"]
assert snap["bytes"] > 0
assert snap["write_mb_per_second"] > 0 and snap["load_mb_per_second"] > 0
modes = {point["fsync"] for point in doc["wal_append"]}
assert modes == {"none", "batch", "every"}, f"fsync axis incomplete: {modes}"
for point in doc["wal_append"]:
    assert point["records"] > 0 and point["records_per_second"] > 0
recovery = doc["recovery"]
assert recovery, "empty recovery sweep"
for point in recovery:
    assert point["wal_records"] > 0 and point["records_per_second"] > 0
accept = doc["accept_overhead"]
assert accept["overhead_percent"] < accept["target_percent"], (
    f"accept-path overhead {accept['overhead_percent']:.2f}% exceeds the "
    f"{accept['target_percent']}% target")
print(f"storage: snapshot {snap['write_mb_per_second']:.0f} MB/s write / "
      f"{snap['load_mb_per_second']:.0f} MB/s load, wal replay "
      f"{recovery[-1]['records_per_second']:.0f} records/s, /update "
      f"overhead {accept['overhead_percent']:.2f}% "
      f"(target < {accept['target_percent']}%)")
EOF

echo "run_benchmarks.sh: all checks passed; wrote BENCH_histograms.json," \
     "BENCH_estimation.json, BENCH_refresh.json, BENCH_serving.json, and" \
     "BENCH_storage.json"
