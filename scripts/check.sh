#!/usr/bin/env bash
# Full verification pipeline: configure, build, test, regenerate every
# table/figure. This is the same entrypoint CI runs (.github/workflows/ci.yml):
#   (no flag)  tier-1 job: configure, build, ctest, regenerate benches
#   --asan     also run the ASan+UBSan build + tests
#   --tsan     also run the ThreadSanitizer build over the concurrency
#              suites (thread_pool_test, parallel_build_test,
#              snapshot_concurrency_test, refresh_daemon_test,
#              telemetry_concurrency_test, trace_recorder_test,
#              sharded_refresh_soak_test, http_parser_test,
#              net_server_test, storage_test, storage_crash_test)
#   --telemetry-smoke  build + run examples/feedback_loop and grep its
#              Prometheus dump for the expected metric families (the §9
#              end-to-end observability gate)
#   --serving-smoke  build + run examples/serve_estimates, curl /metrics
#              and /estimate over loopback, and grep the responses for the
#              expected metric families (the §11 end-to-end serving gate)
#   --probe-smoke  build + run bench_estimation --quick and assert the §12
#              determinism gates: eytzinger_vs_lower_bound.identical, every
#              workload bit-identical, and batched >= snapshot per workload
#   --recovery-smoke  build + run serve_estimates with a data dir, accept
#              updates over /update, kill -9 the server, restart it on the
#              same dir, and assert the /estimate answer is bit-identical —
#              the §13 end-to-end crash-recovery gate
#   --trace-smoke  build + run serve_estimates with --trace-file, drive a
#              traced request (W3C traceparent) and assert the trace id is
#              echoed, hit /debug/tracez + /debug/logz + /healthz, SIGTERM,
#              then validate the dumped Chrome trace JSON — the §14
#              end-to-end tracing gate
#   --selftune-smoke  build + run serve_estimates with HOPS_SELFTUNE=on,
#              POST skewed /feedback outcomes, and assert the tuning
#              counters move in /debug/columns — the §15 end-to-end
#              self-tuning gate
#   --skip-tier1  skip the default build+ctest+bench stage (used by the CI
#              sanitizer jobs so they only pay for their own build)
set -euo pipefail
cd "$(dirname "$0")/.."

RUN_TIER1=1
RUN_ASAN=0
RUN_TSAN=0
RUN_TELEMETRY_SMOKE=0
RUN_SERVING_SMOKE=0
RUN_PROBE_SMOKE=0
RUN_RECOVERY_SMOKE=0
RUN_TRACE_SMOKE=0
RUN_SELFTUNE_SMOKE=0
for arg in "$@"; do
  case "$arg" in
    --asan) RUN_ASAN=1 ;;
    --tsan) RUN_TSAN=1 ;;
    --telemetry-smoke) RUN_TELEMETRY_SMOKE=1 ;;
    --serving-smoke) RUN_SERVING_SMOKE=1 ;;
    --probe-smoke) RUN_PROBE_SMOKE=1 ;;
    --recovery-smoke) RUN_RECOVERY_SMOKE=1 ;;
    --trace-smoke) RUN_TRACE_SMOKE=1 ;;
    --selftune-smoke) RUN_SELFTUNE_SMOKE=1 ;;
    --skip-tier1) RUN_TIER1=0 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

# The §12 batched-fast-lane gates, shared by tier-1 (on the full bench
# output) and --probe-smoke (on a fresh --quick run): every workload must be
# bit-identical to the legacy reference, the Eytzinger sweep must agree with
# std::lower_bound, and the batched lane must never lose to the plain
# snapshot lane it builds on.
assert_estimation_gates() {
  python3 - "$1" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
sweep = doc["eytzinger_vs_lower_bound"]
assert sweep["identical"], "eytzinger_vs_lower_bound: index mismatch"
for w in doc["workloads"]:
    name = w["name"]
    assert w["identical"], f"{name}: batched estimates not bit-identical"
    assert w["speedup_batched"] >= w["speedup_snapshot"], (
        f"{name}: batched lane ({w['speedup_batched']:.3f}x) lost to the "
        f"snapshot lane ({w['speedup_snapshot']:.3f}x)")
print(f"estimation gates: {len(doc['workloads'])} workloads bit-identical, "
      f"batched >= snapshot everywhere, eytzinger sweep identical "
      f"({sweep['speedup_multiprobe']:.2f}x multiprobe).")
PY
}

if [[ "$RUN_TIER1" == 1 ]]; then
  cmake -B build -G Ninja
  cmake --build build
  ctest --test-dir build --output-on-failure

  echo "== Regenerating paper tables/figures =="
  for b in build/bench/*; do
    "$b"
  done

  # The refresh bench must carry the §10 shards axis plus the provenance
  # fields every BENCH_*.json promises — a silent schema regression here
  # would break cross-PR perf tracking.
  echo "== Checking BENCH_refresh.json schema (shards axis + provenance) =="
  for field in '"shards"' '"speedup_vs_1"' '"ticks_skipped"' \
      '"selftune"' '"tuned_median_qerror"' '"tuned_beats_stale"' \
      '"seconds_per_adjustment"' '"tuning_off_bit_identical"' \
      '"timestamp_utc"' '"git_rev"'; do
    if ! grep -q "$field" BENCH_refresh.json; then
      echo "BENCH_refresh.json: missing field $field" >&2
      exit 1
    fi
  done

  # Same contract for the §11 serving bench: the connections sweep axis,
  # the latency quantiles, and the provenance header.
  echo "== Checking BENCH_serving.json schema (connections axis + provenance) =="
  for field in '"connections"' '"requests_per_second"' '"p50_micros"' \
      '"p99_micros"' '"p999_micros"' '"binary_vs_json"' '"binary_speedup"' \
      '"tracing_overhead"' '"overhead_percent"' '"target_percent"' \
      '"timestamp_utc"' '"git_rev"'; do
    if ! grep -q "$field" BENCH_serving.json; then
      echo "BENCH_serving.json: missing field $field" >&2
      exit 1
    fi
  done

  # The §14 tracing budget: the traced serving path must answer
  # bit-identically and stay within its overhead target at the default
  # 1/64 head-sampling rate.
  echo "== Checking BENCH_serving.json tracing-overhead gate =="
  python3 - BENCH_serving.json <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
t = doc["tracing_overhead"]
assert t["identical"], "tracing_overhead: traced estimates not bit-identical"
assert t["errors"] == 0, f"tracing_overhead: {t['errors']} request errors"
assert t["overhead_percent"] < t["target_percent"], (
    f"tracing overhead {t['overhead_percent']:.2f}% exceeds the "
    f"{t['target_percent']:.0f}% budget")
print(f"tracing gate: {t['overhead_percent']:.2f}% overhead at 1/"
      f"{t['sample_one_in']} sampling (< {t['target_percent']:.0f}% budget), "
      f"estimates bit-identical.")
PY

  # And the §12 estimation bench: the batched/multiprobe axes, the cold-call
  # record, the point-workload headline, and provenance.
  echo "== Checking BENCH_estimation.json schema (batched axes + provenance) =="
  for field in '"eytzinger_vs_lower_bound"' '"speedup_multiprobe"' \
      '"speedup_batched"' '"batched_cold_seconds"' '"point_headline"' \
      '"identical"' '"timestamp_utc"' '"git_rev"'; do
    if ! grep -q "$field" BENCH_estimation.json; then
      echo "BENCH_estimation.json: missing field $field" >&2
      exit 1
    fi
  done
  echo "== Checking BENCH_estimation.json determinism/ordering gates =="
  assert_estimation_gates BENCH_estimation.json

  # And the §13 storage bench: fsync-mode axis, recovery sweep, the
  # accept-path overhead scored against its target, and provenance.
  echo "== Checking BENCH_storage.json schema (durability axes + provenance) =="
  for field in '"snapshot"' '"write_mb_per_second"' '"load_mb_per_second"' \
      '"wal_append"' '"fsync"' '"writeback_kicks"' '"recovery"' \
      '"wal_records"' '"accept_overhead"' '"overhead_percent"' \
      '"target_percent"' '"timestamp_utc"' '"git_rev"'; do
    if ! grep -q "$field" BENCH_storage.json; then
      echo "BENCH_storage.json: missing field $field" >&2
      exit 1
    fi
  done
fi

if [[ "$RUN_ASAN" == 1 ]]; then
  echo "== ASan+UBSan pass =="
  cmake -B build-asan -G Ninja -DHOPS_BUILD_BENCHMARKS=OFF \
    -DHOPS_BUILD_EXAMPLES=OFF -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
  cmake --build build-asan
  ctest --test-dir build-asan --output-on-failure
fi

if [[ "$RUN_TSAN" == 1 ]]; then
  echo "== ThreadSanitizer pass =="
  cmake -B build-tsan -G Ninja -DHOPS_SANITIZE=thread \
    -DHOPS_BUILD_BENCHMARKS=OFF -DHOPS_BUILD_EXAMPLES=OFF \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan --target thread_pool_test parallel_build_test \
    snapshot_concurrency_test refresh_daemon_test telemetry_concurrency_test \
    trace_recorder_test sharded_refresh_soak_test http_parser_test \
    net_server_test storage_test storage_crash_test
  # Oversubscribe the pool so TSan sees real interleavings even on small
  # CI machines.
  HOPS_THREADS=4 ./build-tsan/tests/thread_pool_test
  HOPS_THREADS=4 ./build-tsan/tests/parallel_build_test
  HOPS_THREADS=4 ./build-tsan/tests/snapshot_concurrency_test
  HOPS_THREADS=4 ./build-tsan/tests/refresh_daemon_test
  HOPS_THREADS=4 ./build-tsan/tests/telemetry_concurrency_test
  HOPS_THREADS=4 ./build-tsan/tests/trace_recorder_test
  HOPS_THREADS=4 ./build-tsan/tests/sharded_refresh_soak_test
  HOPS_THREADS=4 ./build-tsan/tests/http_parser_test
  HOPS_THREADS=4 ./build-tsan/tests/net_server_test
  # The storage suites include the kill-9-under-churn soak: the crash child
  # runs instrumented too, so TSan watches the WAL accept path right up to
  # the SIGKILL.
  HOPS_THREADS=4 ./build-tsan/tests/storage_test
  HOPS_THREADS=4 ./build-tsan/tests/storage_crash_test
fi

if [[ "$RUN_TELEMETRY_SMOKE" == 1 ]]; then
  echo "== Telemetry smoke (feedback_loop example) =="
  cmake -B build -G Ninja
  cmake --build build --target feedback_loop
  SMOKE_OUT=$(./build/examples/feedback_loop)
  # The example exits nonzero itself if the feedback loop produced no
  # accuracy signal; additionally require the exported families that every
  # dashboard would scrape.
  for family in hops_estimates_total hops_estimate_qerror_bucket \
      hops_span_duration_seconds_bucket hops_snapshot_publish_total \
      hops_histogram_builds_total; do
    if ! grep -q "$family" <<<"$SMOKE_OUT"; then
      echo "telemetry smoke: family '$family' missing from export" >&2
      exit 1
    fi
  done
  echo "telemetry smoke: all expected metric families exported."
fi

if [[ "$RUN_SERVING_SMOKE" == 1 ]]; then
  echo "== Serving smoke (serve_estimates example over loopback) =="
  cmake -B build -G Ninja
  cmake --build build --target serve_estimates
  SERVE_LOG=$(mktemp)
  ./build/examples/serve_estimates --port=0 --max-seconds=60 >"$SERVE_LOG" 2>&1 &
  SERVE_PID=$!
  trap 'kill -TERM "$SERVE_PID" 2>/dev/null || true' EXIT
  # The daemon prints its resolved ephemeral port on the first line.
  SERVE_PORT=""
  for _ in $(seq 1 50); do
    SERVE_PORT=$(grep -oE 'serving on 127.0.0.1:[0-9]+' "$SERVE_LOG" \
      | grep -oE '[0-9]+$' || true)
    [[ -n "$SERVE_PORT" ]] && break
    sleep 0.1
  done
  if [[ -z "$SERVE_PORT" ]]; then
    echo "serving smoke: server never reported a port" >&2
    cat "$SERVE_LOG" >&2
    exit 1
  fi
  ESTIMATE_OUT=$(curl -sf -X POST "http://127.0.0.1:$SERVE_PORT/estimate" \
    -d '{"specs":[{"kind":"equality","table":"orders","column":"customer_id","value":7}]}')
  if ! grep -q '"estimate"' <<<"$ESTIMATE_OUT"; then
    echo "serving smoke: /estimate returned no estimate: $ESTIMATE_OUT" >&2
    exit 1
  fi
  METRICS_OUT=$(curl -sf "http://127.0.0.1:$SERVE_PORT/metrics")
  for family in hops_http_requests_total hops_http_request_seconds_bucket \
      hops_http_connections_total hops_span_duration_seconds_bucket; do
    if ! grep -q "$family" <<<"$METRICS_OUT"; then
      echo "serving smoke: family '$family' missing from /metrics" >&2
      exit 1
    fi
  done
  kill -TERM "$SERVE_PID"
  wait "$SERVE_PID"
  trap - EXIT
  rm -f "$SERVE_LOG"
  echo "serving smoke: /estimate answered and /metrics exported all families."
fi

if [[ "$RUN_RECOVERY_SMOKE" == 1 ]]; then
  echo "== Recovery smoke (kill -9 serve_estimates, warm restart, §13 gate) =="
  cmake -B build -G Ninja
  cmake --build build --target serve_estimates
  RECOVERY_DIR=$(mktemp -d /tmp/recovery_smoke.XXXXXX)
  RECOVERY_LOG=$(mktemp)
  SERVE_PID=""
  cleanup_recovery() {
    [[ -n "$SERVE_PID" ]] && kill -9 "$SERVE_PID" 2>/dev/null || true
    rm -rf "$RECOVERY_DIR" "$RECOVERY_LOG"
  }
  trap cleanup_recovery EXIT

  # Boots the server on the shared data dir and waits for its port.
  start_server() {
    : >"$RECOVERY_LOG"
    ./build/examples/serve_estimates --port=0 --max-seconds=120 \
      --data-dir="$RECOVERY_DIR" >"$RECOVERY_LOG" 2>&1 &
    SERVE_PID=$!
    SERVE_PORT=""
    for _ in $(seq 1 50); do
      SERVE_PORT=$(grep -oE 'serving on 127.0.0.1:[0-9]+' "$RECOVERY_LOG" \
        | grep -oE '[0-9]+$' || true)
      [[ -n "$SERVE_PORT" ]] && break
      sleep 0.1
    done
    if [[ -z "$SERVE_PORT" ]]; then
      echo "recovery smoke: server never reported a port" >&2
      cat "$RECOVERY_LOG" >&2
      exit 1
    fi
  }

  ESTIMATE_BODY='{"specs":[{"kind":"equality","table":"orders","column":"customer_id","value":7}]}'
  # The refresh daemon folds accepted deltas into a published snapshot on
  # its own tick; sample only once two reads 0.3s apart agree, so both
  # sides of the comparison see a settled histogram.
  settled_estimate() {
    local prev="" cur=""
    for _ in $(seq 1 30); do
      cur=$(curl -sf -X POST "http://127.0.0.1:$SERVE_PORT/estimate" \
        -d "$ESTIMATE_BODY")
      [[ -n "$prev" && "$cur" == "$prev" ]] && { echo "$cur"; return 0; }
      prev="$cur"
      sleep 0.3
    done
    echo "$cur"
  }

  start_server
  # Push accepted updates so recovery has real WAL state to replay, not
  # just the seed catalog. Weight 7's bucket so the estimate visibly moves.
  for i in $(seq 1 40); do
    curl -sf -X POST "http://127.0.0.1:$SERVE_PORT/update" \
      -d "{\"updates\":[{\"table\":\"orders\",\"column\":\"customer_id\",\"value\":$((i % 64)),\"weight\":2.5}]}" \
      >/dev/null
  done
  BEFORE=$(settled_estimate)

  # No SIGTERM courtesy: the whole point is surviving an unclean death.
  kill -9 "$SERVE_PID"
  wait "$SERVE_PID" 2>/dev/null || true
  SERVE_PID=""

  start_server
  AFTER=$(settled_estimate)
  kill -TERM "$SERVE_PID"
  wait "$SERVE_PID" 2>/dev/null || true
  SERVE_PID=""
  trap - EXIT
  cleanup_recovery

  # Compare the estimate values only: snapshot_version is a process-local
  # RCU counter and legitimately differs across the restart.
  BEFORE_EST=$(grep -o '"estimate": *[0-9.eE+-]*' <<<"$BEFORE" || true)
  AFTER_EST=$(grep -o '"estimate": *[0-9.eE+-]*' <<<"$AFTER" || true)
  if [[ -z "$BEFORE_EST" || -z "$AFTER_EST" ]]; then
    echo "recovery smoke: /estimate returned no estimate" >&2
    echo "  before: $BEFORE" >&2
    echo "  after:  $AFTER" >&2
    exit 1
  fi
  if [[ "$BEFORE_EST" != "$AFTER_EST" ]]; then
    echo "recovery smoke: estimate changed across kill -9 + warm restart" >&2
    echo "  before: $BEFORE_EST" >&2
    echo "  after:  $AFTER_EST" >&2
    exit 1
  fi
  echo "recovery smoke: estimate bit-identical across kill -9 ($BEFORE_EST)."
fi

if [[ "$RUN_TRACE_SMOKE" == 1 ]]; then
  echo "== Trace smoke (traced serve_estimates, §14 gate) =="
  cmake -B build -G Ninja
  cmake --build build --target serve_estimates
  TRACE_LOG=$(mktemp)
  TRACE_OUT=$(mktemp /tmp/trace_smoke.XXXXXX.json)
  ./build/examples/serve_estimates --port=0 --max-seconds=60 \
    --trace-file="$TRACE_OUT" >"$TRACE_LOG" 2>&1 &
  SERVE_PID=$!
  trap 'kill -TERM "$SERVE_PID" 2>/dev/null || true; rm -f "$TRACE_LOG" "$TRACE_OUT"' EXIT
  SERVE_PORT=""
  for _ in $(seq 1 50); do
    SERVE_PORT=$(grep -oE 'serving on 127.0.0.1:[0-9]+' "$TRACE_LOG" \
      | grep -oE '[0-9]+$' || true)
    [[ -n "$SERVE_PORT" ]] && break
    sleep 0.1
  done
  if [[ -z "$SERVE_PORT" ]]; then
    echo "trace smoke: server never reported a port" >&2
    cat "$TRACE_LOG" >&2
    exit 1
  fi

  # A W3C-traced request: sampled flag 01 forces recording regardless of
  # the head-sampling rate, and the trace id must come back in the echo
  # header so a caller can find its own spans.
  TRACE_ID="4bf92f3577b34da6a3ce929d0e0e4736"
  TRACED_OUT=$(curl -si -X POST "http://127.0.0.1:$SERVE_PORT/estimate" \
    -H "traceparent: 00-$TRACE_ID-00f067aa0ba902b7-01" \
    -d '{"specs":[{"kind":"equality","table":"orders","column":"customer_id","value":7}]}')
  if ! grep -qi "x-hops-trace-id: $TRACE_ID" <<<"$TRACED_OUT"; then
    echo "trace smoke: trace id not echoed in x-hops-trace-id" >&2
    echo "$TRACED_OUT" >&2
    exit 1
  fi
  # Mixed untraced load so the dump holds more than one request's spans.
  for i in $(seq 1 64); do
    curl -sf -X POST "http://127.0.0.1:$SERVE_PORT/estimate" \
      -d "{\"specs\":[{\"kind\":\"equality\",\"table\":\"orders\",\"column\":\"customer_id\",\"value\":$((i % 32))}]}" \
      >/dev/null
  done

  TRACEZ_OUT=$(curl -sf "http://127.0.0.1:$SERVE_PORT/debug/tracez")
  if ! grep -q "$TRACE_ID" <<<"$TRACEZ_OUT"; then
    echo "trace smoke: traced request's spans missing from /debug/tracez" >&2
    exit 1
  fi
  LOGZ_OUT=$(curl -sf "http://127.0.0.1:$SERVE_PORT/debug/logz")
  if ! grep -q '"lines"' <<<"$LOGZ_OUT"; then
    echo "trace smoke: /debug/logz returned no lines array" >&2
    exit 1
  fi
  if ! curl -sf "http://127.0.0.1:$SERVE_PORT/healthz" | grep -q '"ok"'; then
    echo "trace smoke: /healthz not ready" >&2
    exit 1
  fi

  kill -TERM "$SERVE_PID"
  wait "$SERVE_PID"
  trap - EXIT

  # The shutdown dump must be a well-formed Chrome trace: complete ("X")
  # events sorted by start time, carrying the span tree a viewer needs.
  python3 - "$TRACE_OUT" "$TRACE_ID" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
assert events, "trace dump is empty"
assert all(e["ph"] == "X" for e in events), "non-complete event in dump"
ts = [e["ts"] for e in events]
assert ts == sorted(ts), "events not sorted by start time"
names = {e["name"] for e in events}
for expected in ("Net.Request", "Serving.EstimateBatch"):
    assert expected in names, f"span {expected} missing from dump"
traced = [e for e in events if e["args"].get("trace_id") == sys.argv[2]]
assert traced, "forced-sample trace id missing from dump"
print(f"trace dump: {len(events)} events, {len(names)} span names, "
      f"{len(traced)} spans under the forced trace id.")
PY
  rm -f "$TRACE_LOG" "$TRACE_OUT"
  echo "trace smoke: traceparent echoed, tracez/logz/healthz live, dump valid."
fi

if [[ "$RUN_PROBE_SMOKE" == 1 ]]; then
  echo "== Probe smoke (bench_estimation --quick, §12 gates) =="
  cmake -B build -G Ninja
  cmake --build build --target bench_estimation
  PROBE_OUT=$(mktemp /tmp/probe_smoke.XXXXXX.json)
  ./build/bench/bench_estimation "$PROBE_OUT" --quick
  assert_estimation_gates "$PROBE_OUT"
  rm -f "$PROBE_OUT"
  echo "probe smoke: all §12 gates hold."
fi

if [[ "$RUN_SELFTUNE_SMOKE" == 1 ]]; then
  echo "== Selftune smoke (serve_estimates with HOPS_SELFTUNE=on, §15 gate) =="
  cmake -B build -G Ninja
  cmake --build build --target serve_estimates
  TUNE_LOG=$(mktemp)
  HOPS_SELFTUNE=on ./build/examples/serve_estimates --port=0 --max-seconds=60 \
    >"$TUNE_LOG" 2>&1 &
  SERVE_PID=$!
  trap 'kill -TERM "$SERVE_PID" 2>/dev/null || true; rm -f "$TUNE_LOG"' EXIT
  SERVE_PORT=""
  for _ in $(seq 1 50); do
    SERVE_PORT=$(grep -oE 'serving on 127.0.0.1:[0-9]+' "$TUNE_LOG" \
      | grep -oE '[0-9]+$' || true)
    [[ -n "$SERVE_PORT" ]] && break
    sleep 0.1
  done
  if [[ -z "$SERVE_PORT" ]]; then
    echo "selftune smoke: server never reported a port" >&2
    cat "$TUNE_LOG" >&2
    exit 1
  fi

  # Heavily skewed outcomes: the served estimate is far off the reported
  # actual on every record, so the tuner has real error to fold in.
  FEEDBACK_OUT=$(curl -sf -X POST "http://127.0.0.1:$SERVE_PORT/feedback" \
    -d '{"reports":[
      {"kind":"equality","table":"orders","column":"customer_id","value":3,"estimated":2.0,"actual":600.0},
      {"kind":"equality","table":"orders","column":"customer_id","value":7,"estimated":4.0,"actual":450.0},
      {"kind":"equality","table":"orders","column":"item_id","value":11,"estimated":1.0,"actual":300.0}
    ]}')
  if ! grep -q '"accepted": 3' <<<"$FEEDBACK_OUT"; then
    echo "selftune smoke: /feedback did not accept all records: $FEEDBACK_OUT" >&2
    exit 1
  fi

  # The refresh daemon ticks every 10ms and folds buffered outcomes into
  # the histograms; poll /debug/columns until the tuning counters move.
  COLUMNS_OUT=""
  TUNED=0
  for _ in $(seq 1 50); do
    COLUMNS_OUT=$(curl -sf "http://127.0.0.1:$SERVE_PORT/debug/columns")
    if grep -qE '"observations": [1-9]' <<<"$COLUMNS_OUT"; then
      TUNED=1
      break
    fi
    sleep 0.1
  done
  if ! grep -q '"selftune_enabled": true' <<<"$COLUMNS_OUT"; then
    echo "selftune smoke: HOPS_SELFTUNE=on not reflected in /debug/columns" >&2
    echo "$COLUMNS_OUT" >&2
    exit 1
  fi
  if [[ "$TUNED" != 1 ]]; then
    echo "selftune smoke: tuning counters never moved after feedback" >&2
    echo "$COLUMNS_OUT" >&2
    exit 1
  fi
  # The hot default-bucket values get promoted to explicit entries; explicit
  # hits get damped in-place adjustments. Either way the histogram moved.
  if ! grep -qE '"(adjustments|promotions)": [1-9]' <<<"$COLUMNS_OUT"; then
    echo "selftune smoke: observations consumed but histogram never moved" >&2
    echo "$COLUMNS_OUT" >&2
    exit 1
  fi

  kill -TERM "$SERVE_PID"
  wait "$SERVE_PID"
  trap - EXIT
  rm -f "$TUNE_LOG"
  echo "selftune smoke: feedback accepted, tuning counters moved in /debug/columns."
fi

echo "All checks passed."
