#!/usr/bin/env bash
# Full verification pipeline: configure, build, test, regenerate every
# table/figure. This is the same entrypoint CI runs (.github/workflows/ci.yml):
#   (no flag)  tier-1 job: configure, build, ctest, regenerate benches
#   --asan     also run the ASan+UBSan build + tests
#   --tsan     also run the ThreadSanitizer build over the concurrency
#              suites (thread_pool_test, parallel_build_test,
#              snapshot_concurrency_test, refresh_daemon_test,
#              telemetry_concurrency_test, sharded_refresh_soak_test)
#   --telemetry-smoke  build + run examples/feedback_loop and grep its
#              Prometheus dump for the expected metric families (the §9
#              end-to-end observability gate)
#   --skip-tier1  skip the default build+ctest+bench stage (used by the CI
#              sanitizer jobs so they only pay for their own build)
set -euo pipefail
cd "$(dirname "$0")/.."

RUN_TIER1=1
RUN_ASAN=0
RUN_TSAN=0
RUN_TELEMETRY_SMOKE=0
for arg in "$@"; do
  case "$arg" in
    --asan) RUN_ASAN=1 ;;
    --tsan) RUN_TSAN=1 ;;
    --telemetry-smoke) RUN_TELEMETRY_SMOKE=1 ;;
    --skip-tier1) RUN_TIER1=0 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

if [[ "$RUN_TIER1" == 1 ]]; then
  cmake -B build -G Ninja
  cmake --build build
  ctest --test-dir build --output-on-failure

  echo "== Regenerating paper tables/figures =="
  for b in build/bench/*; do
    "$b"
  done

  # The refresh bench must carry the §10 shards axis plus the provenance
  # fields every BENCH_*.json promises — a silent schema regression here
  # would break cross-PR perf tracking.
  echo "== Checking BENCH_refresh.json schema (shards axis + provenance) =="
  for field in '"shards"' '"speedup_vs_1"' '"ticks_skipped"' \
      '"timestamp_utc"' '"git_rev"'; do
    if ! grep -q "$field" BENCH_refresh.json; then
      echo "BENCH_refresh.json: missing field $field" >&2
      exit 1
    fi
  done
fi

if [[ "$RUN_ASAN" == 1 ]]; then
  echo "== ASan+UBSan pass =="
  cmake -B build-asan -G Ninja -DHOPS_BUILD_BENCHMARKS=OFF \
    -DHOPS_BUILD_EXAMPLES=OFF -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
  cmake --build build-asan
  ctest --test-dir build-asan --output-on-failure
fi

if [[ "$RUN_TSAN" == 1 ]]; then
  echo "== ThreadSanitizer pass =="
  cmake -B build-tsan -G Ninja -DHOPS_SANITIZE=thread \
    -DHOPS_BUILD_BENCHMARKS=OFF -DHOPS_BUILD_EXAMPLES=OFF \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan --target thread_pool_test parallel_build_test \
    snapshot_concurrency_test refresh_daemon_test telemetry_concurrency_test \
    sharded_refresh_soak_test
  # Oversubscribe the pool so TSan sees real interleavings even on small
  # CI machines.
  HOPS_THREADS=4 ./build-tsan/tests/thread_pool_test
  HOPS_THREADS=4 ./build-tsan/tests/parallel_build_test
  HOPS_THREADS=4 ./build-tsan/tests/snapshot_concurrency_test
  HOPS_THREADS=4 ./build-tsan/tests/refresh_daemon_test
  HOPS_THREADS=4 ./build-tsan/tests/telemetry_concurrency_test
  HOPS_THREADS=4 ./build-tsan/tests/sharded_refresh_soak_test
fi

if [[ "$RUN_TELEMETRY_SMOKE" == 1 ]]; then
  echo "== Telemetry smoke (feedback_loop example) =="
  cmake -B build -G Ninja
  cmake --build build --target feedback_loop
  SMOKE_OUT=$(./build/examples/feedback_loop)
  # The example exits nonzero itself if the feedback loop produced no
  # accuracy signal; additionally require the exported families that every
  # dashboard would scrape.
  for family in hops_estimates_total hops_estimate_qerror_bucket \
      hops_span_duration_seconds_bucket hops_snapshot_publish_total \
      hops_histogram_builds_total; do
    if ! grep -q "$family" <<<"$SMOKE_OUT"; then
      echo "telemetry smoke: family '$family' missing from export" >&2
      exit 1
    fi
  done
  echo "telemetry smoke: all expected metric families exported."
fi

echo "All checks passed."
