#!/usr/bin/env bash
# Full verification pipeline: configure, build, test, regenerate every
# table/figure. Pass --asan to also run the sanitizer build.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

echo "== Regenerating paper tables/figures =="
for b in build/bench/*; do
  "$b"
done

if [[ "${1:-}" == "--asan" ]]; then
  echo "== ASan+UBSan pass =="
  cmake -B build-asan -G Ninja -DHOPS_BUILD_BENCHMARKS=OFF \
    -DHOPS_BUILD_EXAMPLES=OFF -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
  cmake --build build-asan
  ctest --test-dir build-asan --output-on-failure
fi

echo "All checks passed."
